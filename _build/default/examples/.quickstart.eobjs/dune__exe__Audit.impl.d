examples/audit.ml: Format List Netsim Printf Rvaas Sdnctl Workload
