examples/audit.mli:
