examples/federation_check.ml: Cryptosim Geo List Netsim Printf Rvaas String Support Workload
