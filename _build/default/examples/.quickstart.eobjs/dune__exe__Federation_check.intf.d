examples/federation_check.mli:
