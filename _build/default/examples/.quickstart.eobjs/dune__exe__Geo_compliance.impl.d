examples/geo_compliance.ml: Geo List Netsim Option Printf Rvaas Sdnctl String Workload
