examples/geo_compliance.mli:
