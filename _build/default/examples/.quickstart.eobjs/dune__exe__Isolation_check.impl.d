examples/isolation_check.ml: List Netsim Ofproto Printf Rvaas Sdnctl Workload
