examples/isolation_check.mli:
