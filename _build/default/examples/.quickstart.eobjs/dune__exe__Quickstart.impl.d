examples/quickstart.ml: Cryptosim Format List Printf Rvaas Workload
