examples/quickstart.mli:
