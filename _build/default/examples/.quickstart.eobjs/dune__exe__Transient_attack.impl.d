examples/transient_attack.ml: List Printf Rvaas Sdnctl Workload
