examples/transient_attack.mli:
