(* Service-side audit workflow: everything the operator of an RVaaS
   server runs periodically, independent of client queries.

   1. Verify the physical wiring against the trusted plan with
      LLDP-like probes (paper §IV-A.1).
   2. Compare the monitoring history against the commissioned baseline
      (drift detection — catches transient attacks after the fact).
   3. For each suspicious rule, trace back which access points gained
      reachability through it (paper §IV-C.b).

   Run with:  dune exec examples/audit.exe *)

let banner title = Printf.printf "\n=== %s ===\n" title

let () =
  let topo = Workload.Topogen.isp Workload.Topogen.default_params ~core:4 ~pops_per_core:2 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 2 }
  in
  Printf.printf "ISP topology: %d switches (4 core + 8 PoPs), %d hosts, 2 clients\n"
    (Workload.Topogen.switch_count topo)
    (Workload.Topogen.host_count topo);

  banner "Step 1: wiring verification";
  let wiring_report = ref None in
  Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.5 ~on_complete:(fun r ->
      wiring_report := Some r);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  (match !wiring_report with
  | Some r ->
    Printf.printf "probes: %d, confirmed: %d, misdelivered: %d, missing: %d\n"
      r.Rvaas.Monitor.probes_sent r.confirmed
      (List.length r.misdelivered) (List.length r.missing)
  | None -> print_endline "wiring verification did not complete");

  banner "Step 2: commission the baseline";
  let baseline = Workload.Scenario.baseline s in
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  let baseline_flows =
    List.map
      (fun sw -> (sw, Rvaas.Snapshot.flows snapshot ~sw))
      (Rvaas.Snapshot.switches snapshot)
  in
  let t_commission = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Printf.printf "baseline captured at t=%.3f s over %d rules\n" t_commission
    (Rvaas.Snapshot.total_flows snapshot);

  banner "Step 3: a transient compromise happens";
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Transient
       {
         attack = Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 };
         start = t_commission +. 0.1;
         duration = 0.15;
       });
  Workload.Scenario.run s ~until:(t_commission +. 0.5);
  print_endline "attacker joined client 0's domain for 150 ms, then retracted";

  banner "Step 4: drift audit (after the attack is long gone)";
  let entries =
    List.filter
      (fun (e : Rvaas.Monitor.history_entry) -> e.at > t_commission)
      (Rvaas.Monitor.history s.monitor)
  in
  let drifts = Rvaas.Detector.check_history baseline entries in
  Printf.printf "%d drift alarm(s):\n" (List.length drifts);
  List.iteri
    (fun i alarm ->
      if i < 3 then Printf.printf "  %s\n" (Rvaas.Detector.describe alarm))
    drifts;
  if List.length drifts > 3 then
    Printf.printf "  ... and %d more\n" (List.length drifts - 3);

  banner "Step 5: traceback";
  let victim =
    List.find
      (fun (e : Rvaas.Verifier.endpoint) -> e.host = 0)
      (Rvaas.Verifier.access_points (Netsim.Net.topology s.net))
  in
  let incidents =
    Rvaas.Traceback.investigate ~baseline_flows
      ~history:(Rvaas.Monitor.history s.monitor)
      (Netsim.Net.topology s.net) ~victim
  in
  List.iter
    (fun (i : Rvaas.Traceback.incident) ->
      if i.reaches_victim then Format.printf "%a@." Rvaas.Traceback.pp_incident i)
    incidents;
  if not (List.exists (fun (i : Rvaas.Traceback.incident) -> i.reaches_victim) incidents)
  then print_endline "no incident affecting the victim (unexpected)"
