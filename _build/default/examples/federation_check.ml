(* Multi-provider federation (paper §IV-C.a).

   A route crosses two providers.  Each provider runs its own RVaaS
   server over its own configuration view; neither reveals its topology
   to the other.  A client query in provider A's network is answered by
   A's server, which — on seeing traffic leave through the peering
   link — issues a signed sub-query to provider B's server and merges
   the signed sub-answer.  If B's key is not trusted, its sub-answer is
   rejected and the client learns only about A.

   Run with:  dune exec examples/federation_check.exe *)

let () =
  (* An internetwork: 6 switches in a chain, providers A = {0,1,2} and
     B = {3,4,5}, one host per switch, single tenant, plain routing. *)
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 6 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 1; isolation = false }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  let rng = Support.Rng.create 1 in
  let geo_of jurisdiction sws =
    let reg = Geo.Registry.create () in
    List.iter
      (fun sw ->
        Geo.Registry.set_switch reg ~sw
          (Geo.Location.random rng ~jurisdictions:[ jurisdiction ]))
      sws;
    reg
  in
  let domain name member geo =
    {
      Rvaas.Federation.name;
      member;
      flows_of = Workload.Scenario.actual_flows s;
      geo;
      keypair = Cryptosim.Keys.generate rng ~owner:name;
    }
  in
  let provider_a = domain "provider-A" (fun sw -> sw <= 2) (geo_of "EU" [ 0; 1; 2 ])
  and provider_b = domain "provider-B" (fun sw -> sw >= 3) (geo_of "US" [ 3; 4; 5 ]) in
  let fed = Rvaas.Federation.create topo [ provider_a; provider_b ] in

  let show label =
    let r =
      Rvaas.Federation.reach fed ~start_domain:"provider-A" ~src_sw:0 ~src_port:0
        ~hs:(Rvaas.Verifier.ip_traffic_hs ())
    in
    Printf.printf "%s:\n  endpoints: %s\n  jurisdictions: %s\n  sub-queries: %d\n"
      label
      (String.concat ", "
         (List.map
            (fun ((ep : Rvaas.Verifier.endpoint), _) -> Printf.sprintf "h%d" ep.host)
            r.endpoints))
      (String.concat ", " r.jurisdictions)
      r.sub_queries;
    (match r.untrusted_domains with
    | [] -> ()
    | ds -> Printf.printf "  REJECTED sub-answers from: %s\n" (String.concat ", " ds))
  in

  print_endline "federated query from h0 (provider A), both providers trusted:";
  show "trusted";

  print_endline "\nprovider A revokes trust in provider B's RVaaS key:";
  Rvaas.Federation.distrust fed ~of_domain:"provider-A" ~peer:"provider-B";
  show "after revocation";

  print_endline
    "\nas the paper notes, cross-provider verification extends the trust\n\
     assumptions to the peer RVaaS servers - revoking a peer's key\n\
     truncates the answer to the home domain rather than importing\n\
     unverifiable claims."
