(* Geo-location compliance check (paper §IV-B.2).

   A client whose data must not traverse a given jurisdiction asks
   RVaaS which locations its traffic can pass through.  The provider's
   compromised control plane has quietly diverted the client's traffic
   through a switch in a forbidden region; the geo query exposes the
   detour without revealing the provider's topology (only the
   jurisdiction set is disclosed).

   Run with:  dune exec examples/geo_compliance.exe *)

(* The client scopes the geo query to its sensitive flow (traffic to a
   specific peer), not to everything its card could emit: other
   destinations may legitimately sit in other jurisdictions. *)
let geo_answer scenario ~host ~dst_ip =
  match
    Workload.Scenario.query_and_wait scenario ~host
      (Rvaas.Query.make ~scope:(Rvaas.Verifier.dst_ip_hs dst_ip) Rvaas.Query.Geo)
      ~timeout:1.0
  with
  | None -> None
  | Some outcome -> Some outcome.Rvaas.Client_agent.answer

let () =
  (* A 3x3 grid; single client so routing (not ACLs) is the story.
     Ground-truth locations are drawn per switch; we then *force* a
     known layout: the grid's corner switch 8 sits in "RU". *)
  let topo = Workload.Topogen.grid Workload.Topogen.default_params ~rows:3 ~cols:3 in
  let scenario =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        clients = 1;
        jurisdictions = [ "EU" ];
      }
  in
  Geo.Registry.set_switch scenario.geo_truth ~sw:8
    (Geo.Location.make ~lat:55.75 ~lon:37.62 ~jurisdiction:"RU");
  Printf.printf "grid 3x3, switch 8 is in RU; client policy forbids RU\n";

  let policy =
    {
      (Workload.Scenario.policy_for scenario ~client:0) with
      Rvaas.Detector.forbidden_jurisdictions = [ "RU" ];
    }
  in

  let peer_ip =
    (Option.get (Sdnctl.Addressing.host scenario.addressing ~host:4)).ip
  in

  (* Baseline: shortest-path routing from host 0 (on switch 0) to its
     peer on switch 4 should not cross the far corner. *)
  (match geo_answer scenario ~host:0 ~dst_ip:peer_ip with
  | None -> print_endline "no answer"
  | Some answer ->
    Printf.printf "before attack, jurisdictions: %s\n"
      (String.concat ", " answer.jurisdictions);
    (match Rvaas.Detector.check_answer policy answer with
    | [] -> print_endline "  compliance: OK"
    | alarms ->
      List.iter (fun a -> Printf.printf "  ALARM: %s\n" (Rvaas.Detector.describe a)) alarms));

  (* The attacker diverts host0 -> host4 traffic through corner switch 8. *)
  Sdnctl.Attack.launch scenario.net scenario.addressing
    ~conn:(Sdnctl.Provider.conn scenario.provider)
    (Sdnctl.Attack.Divert { src_host = 0; dst_host = 4; via_sw = 8 });
  Workload.Scenario.run scenario
    ~until:(Netsim.Sim.now (Netsim.Net.sim scenario.net) +. 0.1);
  print_endline "\nattacker diverted traffic through switch 8 (RU)";

  match geo_answer scenario ~host:0 ~dst_ip:peer_ip with
  | None -> print_endline "no answer"
  | Some answer ->
    Printf.printf "after attack, jurisdictions: %s\n"
      (String.concat ", " answer.jurisdictions);
    (match Rvaas.Detector.check_answer policy answer with
    | [] -> print_endline "  compliance: OK (attack NOT detected?)"
    | alarms ->
      List.iter (fun a -> Printf.printf "  ALARM: %s\n" (Rvaas.Detector.describe a)) alarms)
