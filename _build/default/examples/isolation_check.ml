(* Isolation check under a join attack — the executable version of the
   paper's Figures 1 and 2.

   A cyber attacker who compromised the provider's control plane adds a
   secret access point into a victim client's isolation domain (a "join
   attack", §IV-B.1).  The victim's isolation query exposes it: the
   RVaaS controller computes all access points that can communicate
   with the request point, probes each with an authenticated request in
   the data plane, and returns the collected (and counted) replies.

   Run with:  dune exec examples/isolation_check.exe *)

let banner title = Printf.printf "\n=== %s ===\n" title

let show_isolation scenario ~host ~label =
  match
    Workload.Scenario.query_and_wait scenario ~host
      (Rvaas.Query.make Rvaas.Query.Isolation)
      ~timeout:1.0
  with
  | None -> Printf.printf "%s: no answer\n" label
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    Printf.printf "%s: %d access point(s) can reach client 0, %d/%d authenticated\n"
      label
      (List.length answer.endpoints)
      answer.auth_replies answer.total_auth_requests;
    List.iter
      (fun (e : Rvaas.Query.endpoint_report) ->
        Printf.printf "  - sw%d port%d%s%s\n" e.sw e.port
          (match e.client with
          | Some c -> Printf.sprintf " (client %d)" c
          | None -> " (did not authenticate)")
          (match e.ip with Some ip -> Printf.sprintf " ip=0x%08x" ip | None -> ""))
      answer.endpoints;
    let policy = Workload.Scenario.policy_for scenario ~client:0 in
    (match Rvaas.Detector.check_answer policy answer with
    | [] -> print_endline "  verdict: isolation intact"
    | alarms ->
      List.iter (fun a -> Printf.printf "  ALARM: %s\n" (Rvaas.Detector.describe a)) alarms)

let () =
  (* Fat-tree k=4 (20 switches); hosts round-robin over 2 clients. *)
  let topo =
    Workload.Topogen.fat_tree { Workload.Topogen.default_params with hosts_per_switch = 1 }
      ~k:4
  in
  let scenario =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 2 }
  in
  Printf.printf "fat-tree k=4: %d switches, %d hosts\n"
    (Workload.Topogen.switch_count topo)
    (Workload.Topogen.host_count topo);

  banner "Step 1: benign network (Fig. 1 + 2 message flow)";
  (* Fig. 1: integrity request -> Packet-In -> analysis -> Packet-Out
     auth requests.  Fig. 2: auth replies -> Packet-In -> collected ->
     Packet-Out integrity reply.  Both happen inside query_and_wait. *)
  let s0 = Rvaas.Service.stats scenario.service in
  let before_auth = s0.auth_requests_sent in
  show_isolation scenario ~host:0 ~label:"benign";
  Printf.printf "  protocol cost: %d auth requests dispatched\n"
    ((Rvaas.Service.stats scenario.service).auth_requests_sent - before_auth);

  banner "Step 2: control plane compromised — join attack";
  (* The attacker (client 1's host 1) gains a forwarding path into
     client 0's subnet, bypassing the isolation ACL. *)
  Sdnctl.Attack.launch scenario.net scenario.addressing
    ~conn:(Sdnctl.Provider.conn scenario.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run scenario
    ~until:(Netsim.Sim.now (Netsim.Net.sim scenario.net) +. 0.1);
  print_endline "attacker installed rogue rules via the provider connection";

  banner "Step 3: the victim re-runs the isolation query";
  show_isolation scenario ~host:0 ~label:"under attack";

  banner "Step 4: service-side history audit";
  let baseline = Workload.Scenario.baseline scenario in
  (* Note: the baseline here is captured after the attack for demo
     simplicity; a real deployment captures it at commissioning time.
     The per-event history still shows when each rule appeared. *)
  ignore baseline;
  let history = Rvaas.Monitor.history scenario.monitor in
  let adds =
    List.filter
      (fun { Rvaas.Monitor.what; _ } ->
        match what with
        | Rvaas.Monitor.Event (Ofproto.Message.Flow_added _) -> true
        | _ -> false)
      history
  in
  Printf.printf "monitoring history holds %d observations (%d rule additions)\n"
    (List.length history) (List.length adds)
