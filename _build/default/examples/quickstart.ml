(* Quickstart: stand up a small software-defined network with an RVaaS
   deployment, ask one question, and read the answer.

   Run with:  dune exec examples/quickstart.exe *)

let () =
  (* 1. A 4-switch linear network, one host per switch, two clients
        (hosts are assigned round-robin: h0,h2 -> client 0; h1,h3 ->
        client 1).  The provider installs shortest-path routing and
        inter-client isolation ACLs; RVaaS monitors every switch. *)
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let scenario = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  Printf.printf "network: %d switches, %d hosts, 2 clients\n"
    (Workload.Topogen.switch_count topo)
    (Workload.Topogen.host_count topo);

  (* 2. Before trusting the service, verify its attestation quote. *)
  let quote = Rvaas.Service.attest scenario.service ~nonce:"quickstart-nonce" in
  let genuine =
    Rvaas.Client_agent.verify_service
      (Workload.Scenario.agent scenario ~host:0)
      ~quote ~nonce:"quickstart-nonce"
      ~expected:(Cryptosim.Attest.measure ~code_identity:Rvaas.Service.code_identity)
  in
  Printf.printf "service attestation: %s\n" (if genuine then "verified" else "FAILED");

  (* 3. Client 0 (from host 0) asks: which access points can enter my
        isolation domain?  The query travels in-band (magic UDP port →
        Packet-In), RVaaS analyses its configuration snapshot with
        header-space reachability, probes every candidate endpoint with
        signed auth requests, and returns a signed, counted answer. *)
  match
    Workload.Scenario.query_and_wait scenario ~host:0
      (Rvaas.Query.make Rvaas.Query.Isolation)
      ~timeout:1.0
  with
  | None -> print_endline "no answer (timeout)"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    Format.printf "@.%a@.@." Rvaas.Query.pp_answer answer;
    Printf.printf "query round-trip: %.3f ms\n"
      (1000.0 *. (outcome.answered_at -. outcome.issued_at));

    (* 4. Check the answer against the client's policy. *)
    let policy = Workload.Scenario.policy_for scenario ~client:0 in
    (match Rvaas.Detector.check_answer policy answer with
    | [] -> print_endline "policy check: clean (no unexpected access points)"
    | alarms ->
      List.iter
        (fun a -> Printf.printf "ALARM: %s\n" (Rvaas.Detector.describe a))
        alarms)
