(* Transient reconfiguration attacks vs. randomized polling (paper
   §IV-A.1).

   An adversary who knows *when* RVaaS inspects switch configurations
   can misbehave between inspections and restore the correct rules just
   in time.  The paper's defences: (a) flow-monitor events make every
   change visible unless the channel loses them, (b) active polls at
   *random* times are impossible to schedule around, and (c) a bounded
   history keeps convicting evidence after the attacker retracts.

   This example degrades the event channel (80% loss) and compares
   periodic vs. randomized polling against a periodic attacker who
   aligns its attack window right after each periodic poll.

   Run with:  dune exec examples/transient_attack.exe *)

let poll_period = 0.1

let attack_duration = 0.05

let trials = 30

(* One trial: does any history observation convict the attacker? *)
let detected ~polling ~seed =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let scenario =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        clients = 2;
        seed;
        polling;
        rvaas_loss = 0.8;
      }
  in
  (* Let the configuration view converge, then commission the baseline
     (a real deployment snapshots the approved config at that point). *)
  let commission_time = 5.0 *. poll_period in
  Workload.Scenario.run scenario ~until:commission_time;
  let baseline = Workload.Scenario.baseline scenario in
  (* The attacker knows periodic polls land at multiples of the period
     (modulo channel delay) and strikes right after one. *)
  let start = (8.0 *. poll_period) +. 0.005 in
  Sdnctl.Attack.launch scenario.net scenario.addressing
    ~conn:(Sdnctl.Provider.conn scenario.provider)
    (Sdnctl.Attack.Transient
       {
         attack = Sdnctl.Attack.Blackhole { victim_host = 0 };
         start;
         duration = attack_duration;
       });
  Workload.Scenario.run scenario ~until:(start +. (4.0 *. poll_period));
  let post_commission =
    List.filter
      (fun (e : Rvaas.Monitor.history_entry) -> e.at > commission_time)
      (Rvaas.Monitor.history scenario.monitor)
  in
  let alarms = Rvaas.Detector.check_history baseline post_commission in
  List.exists (function Rvaas.Detector.Config_drift _ -> true | _ -> false) alarms

let rate polling =
  let hits = ref 0 in
  for seed = 1 to trials do
    if detected ~polling ~seed then incr hits
  done;
  float_of_int !hits /. float_of_int trials

let () =
  Printf.printf
    "transient blackhole (%.0f ms) vs. polling, 80%% event loss, %d trials each\n\n"
    (attack_duration *. 1000.0) trials;
  Printf.printf "%-34s %s\n" "polling strategy" "detection rate";
  let periodic = rate (Rvaas.Monitor.Periodic poll_period) in
  Printf.printf "%-34s %.0f%%\n"
    (Printf.sprintf "periodic (%.0f ms)" (poll_period *. 1000.0))
    (100.0 *. periodic);
  let randomized = rate (Rvaas.Monitor.Randomized poll_period) in
  Printf.printf "%-34s %.0f%%\n"
    (Printf.sprintf "randomized (mean %.0f ms)" (poll_period *. 1000.0))
    (100.0 *. randomized);
  let nothing = rate Rvaas.Monitor.No_polling in
  Printf.printf "%-34s %.0f%% (events only, lossy)\n" "no polling" (100.0 *. nothing);
  print_newline ();
  if randomized >= periodic then
    print_endline
      "randomized polling is at least as hard to evade as periodic polling,\n\
       as the paper argues: poll times must be hard for the adversary to guess."
  else
    print_endline "unexpected: periodic outperformed randomized on this seed set"
