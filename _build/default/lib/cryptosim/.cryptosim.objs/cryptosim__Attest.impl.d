lib/cryptosim/attest.ml: Hash Hmac String
