lib/cryptosim/attest.mli:
