lib/cryptosim/box.ml: Buffer Char Hash Int64 Keys String
