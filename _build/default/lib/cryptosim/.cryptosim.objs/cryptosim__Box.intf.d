lib/cryptosim/box.mli: Keys
