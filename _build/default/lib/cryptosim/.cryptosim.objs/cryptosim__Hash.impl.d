lib/cryptosim/hash.ml: Char Int64 Printf String
