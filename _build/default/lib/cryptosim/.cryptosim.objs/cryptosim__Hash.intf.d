lib/cryptosim/hash.mli:
