lib/cryptosim/hmac.ml: Hash String Support
