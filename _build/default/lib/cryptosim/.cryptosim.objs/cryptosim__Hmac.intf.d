lib/cryptosim/hmac.mli: Support
