lib/cryptosim/keys.ml: Hash Hashtbl Hmac
