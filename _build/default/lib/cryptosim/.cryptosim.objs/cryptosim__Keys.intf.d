lib/cryptosim/keys.mli: Support
