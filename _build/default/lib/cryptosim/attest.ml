type measurement = string

type quote = { measurement : measurement; nonce : string; endorsement : string }

(* Simulated hardware root key baked into every (simulated) CPU. *)
let hardware_key = Hmac.key_of_string "sgx-root-of-trust"

let measure ~code_identity = "mrenclave:" ^ Hash.digest_hex code_identity

let quote ~measurement ~nonce =
  { measurement; nonce; endorsement = Hmac.mac hardware_key (measurement ^ "#" ^ nonce) }

let verify q ~expected ~nonce =
  String.equal q.measurement expected
  && String.equal q.nonce nonce
  && Hmac.verify hardware_key (q.measurement ^ "#" ^ q.nonce) q.endorsement

let forge ~measurement ~nonce =
  { measurement; nonce; endorsement = Hash.digest_hex ("forged#" ^ measurement ^ nonce) }

let measurement_to_string m = m
