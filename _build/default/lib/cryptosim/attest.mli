(** SGX-style remote attestation (simulated).

    The paper relies on trusted hardware in two directions: the client
    verifies it is talking to the genuine RVaaS application, and the
    provider verifies the RVaaS server runs the agreed code and will
    not leak topology details (§IV-A).  We model an enclave as a code
    measurement; a quote binds a measurement to a caller-chosen nonce
    under a simulated hardware key. *)

type measurement = string

type quote

(** [measure ~code_identity] hashes a code identity string into a
    measurement. *)
val measure : code_identity:string -> measurement

(** [quote ~measurement ~nonce] produces a quote, as the (simulated)
    hardware would. *)
val quote : measurement:measurement -> nonce:string -> quote

(** [verify q ~expected ~nonce] checks that [q] attests [expected]
    under [nonce]. *)
val verify : quote -> expected:measurement -> nonce:string -> bool

(** [forge ~measurement ~nonce] builds a quote NOT endorsed by the
    hardware key; {!verify} rejects it.  Used in negative tests. *)
val forge : measurement:measurement -> nonce:string -> quote

val measurement_to_string : measurement -> string
