(* Layout: recipient-digest (16 hex) ^ integrity tag (16 hex) ^ keystream(body). *)

let keystream key len =
  let buffer = Buffer.create len in
  let block = ref (Hash.digest ("stream:" ^ key)) in
  while Buffer.length buffer < len do
    block := Hash.combine !block 0x5DEECE66DL;
    for i = 0 to 7 do
      if Buffer.length buffer < len then
        Buffer.add_char buffer
          (Char.chr (Int64.to_int (Int64.shift_right_logical !block (8 * i)) land 0xFF))
    done
  done;
  Buffer.contents buffer

let xor_with key s =
  let ks = keystream key (String.length s) in
  String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code ks.[i])) s

let seal ~recipient plaintext =
  let tag = Hash.digest_hex (recipient ^ ":" ^ plaintext) in
  Hash.digest_hex recipient ^ tag ^ xor_with recipient plaintext

let open_ ~keypair ciphertext =
  let public = Keys.public keypair in
  if String.length ciphertext < 32 then None
  else
    let addressed_to = String.sub ciphertext 0 16 in
    if not (String.equal addressed_to (Hash.digest_hex public)) then None
    else
      let tag = String.sub ciphertext 16 16 in
      let body = String.sub ciphertext 32 (String.length ciphertext - 32) in
      let plaintext = xor_with public body in
      if String.equal tag (Hash.digest_hex (public ^ ":" ^ plaintext)) then Some plaintext
      else None
