(** Sealed boxes (simulated public-key encryption).

    Clients seal their queries to the RVaaS controller's public key so
    the provider cannot read query contents (the paper's client-privacy
    requirement, §III).  The "ciphertext" is an XOR keystream derived
    from the recipient key — opaque to honest-but-curious inspection in
    the simulation, not actually secure. *)

(** [seal ~recipient plaintext] encrypts to a {!Keys.public}. *)
val seal : recipient:Keys.public -> string -> string

(** [open_ ~keypair ciphertext] decrypts a box sealed to [keypair]'s
    public key.  Returns [None] when the box was sealed to a different
    key or is malformed. *)
val open_ : keypair:Keys.keypair -> string -> string option
