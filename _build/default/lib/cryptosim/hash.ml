let fnv_offset = 0xCBF29CE484222325L

let fnv_prime = 0x100000001B3L

let digest s =
  let h = ref fnv_offset in
  String.iter
    (fun c ->
      h := Int64.logxor !h (Int64.of_int (Char.code c));
      h := Int64.mul !h fnv_prime)
    s;
  !h

let digest_hex s = Printf.sprintf "%016Lx" (digest s)

let int64_to_bytes v =
  String.init 8 (fun i -> Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * i)) land 0xFF))

let combine a b = digest (int64_to_bytes a ^ int64_to_bytes b)
