(** 64-bit non-cryptographic hash (FNV-1a).

    This is the primitive under all of {!Hmac}, {!Keys} and {!Box}.  It
    is deliberately NOT cryptographically secure: the repository
    simulates the *protocol roles* of crypto (authenticate, verify,
    seal) in a sealed offline environment, as documented in DESIGN.md
    §3.  Determinism is a feature here — tests and benchmarks are
    reproducible. *)

(** [digest s] hashes a string to 64 bits. *)
val digest : string -> int64

(** [digest_hex s] renders {!digest} as 16 hex characters. *)
val digest_hex : string -> string

(** [combine a b] hashes the concatenation of two digests. *)
val combine : int64 -> int64 -> int64
