type key = string

let key_of_string s = "k:" ^ Hash.digest_hex s

let random_key rng = key_of_string (string_of_int (Support.Rng.bits rng))

let mac key msg = Hash.digest_hex (key ^ "|" ^ msg ^ "|" ^ key)

let verify key msg tag = String.equal (mac key msg) tag

let key_to_string key = key
