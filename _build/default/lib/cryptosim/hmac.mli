(** Keyed message authentication codes (simulated).

    Used for the auth request/reply packets of the RVaaS in-band
    protocol: clients prove possession of their registered key without
    per-packet public-key operations (paper §III rules those out). *)

type key

(** [key_of_string s] derives a key from secret material. *)
val key_of_string : string -> key

(** [random_key rng] draws a fresh key. *)
val random_key : Support.Rng.t -> key

(** [mac key msg] tags [msg]. *)
val mac : key -> string -> string

(** [verify key msg tag] checks a tag. *)
val verify : key -> string -> string -> bool

(** [key_to_string key] serialises the key (for registry storage). *)
val key_to_string : key -> string
