lib/geo/infer.ml: Hashtbl List Location Option Registry String
