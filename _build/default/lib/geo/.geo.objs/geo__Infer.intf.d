lib/geo/infer.mli: Location Registry
