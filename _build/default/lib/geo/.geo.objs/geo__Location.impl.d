lib/geo/location.ml: Float Format List String Support
