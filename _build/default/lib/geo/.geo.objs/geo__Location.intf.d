lib/geo/location.mli: Format Support
