lib/geo/registry.ml: Hashtbl List Location String
