lib/geo/registry.mli: Location
