type ground_truth = {
  switch_locations : (int * Location.t) list;
  client_reports : (Location.t * int) list;
  switch_mgmt_ip : (int * int) list;
}

let disclosed gt =
  let reg = Registry.create () in
  List.iter (fun (sw, loc) -> Registry.set_switch reg ~sw loc) gt.switch_locations;
  reg

let crowd_sourced gt =
  let reg = Registry.create () in
  let by_switch = Hashtbl.create 16 in
  List.iter
    (fun (loc, sw) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_switch sw) in
      Hashtbl.replace by_switch sw (loc :: existing))
    gt.client_reports;
  Hashtbl.iter
    (fun sw reports -> Registry.set_switch reg ~sw (Location.centroid reports))
    by_switch;
  reg

let geo_ip gt ~table =
  let reg = Registry.create () in
  let lookup ip =
    let matches (value, len, _) =
      len >= 0 && len <= 32
      && (len = 0 || ip lsr (32 - len) = value lsr (32 - len))
    in
    let candidates = List.filter matches table in
    List.fold_left
      (fun best ((_, len, _) as entry) ->
        match best with
        | None -> Some entry
        | Some (_, best_len, _) -> if len > best_len then Some entry else best)
      None candidates
  in
  List.iter
    (fun (sw, ip) ->
      match lookup ip with
      | Some (_, _, loc) -> Registry.set_switch reg ~sw loc
      | None -> ())
    gt.switch_mgmt_ip;
  reg

let comparable ~truth ~believed =
  List.filter_map
    (fun (sw, true_loc) ->
      match Registry.switch believed ~sw with
      | Some believed_loc -> Some (true_loc, believed_loc)
      | None -> None)
    (Registry.switches truth)

let mean_error_km ~truth ~believed =
  match comparable ~truth ~believed with
  | [] -> None
  | pairs ->
    let total =
      List.fold_left (fun acc (a, b) -> acc +. Location.distance_km a b) 0.0 pairs
    in
    Some (total /. float_of_int (List.length pairs))

let jurisdiction_accuracy ~truth ~believed =
  match comparable ~truth ~believed with
  | [] -> None
  | pairs ->
    let agree =
      List.length
        (List.filter
           (fun (a, b) ->
             String.equal a.Location.jurisdiction b.Location.jurisdiction)
           pairs)
    in
    Some (float_of_int agree /. float_of_int (List.length pairs))
