(** The paper's three switch-location inference modes (§IV-B.2):

    1. provider-disclosed: the infrastructure provider hands RVaaS the
       exact locations;
    2. crowd-sourced: clients report their own locations and RVaaS
       estimates each switch as the centroid of the clients attached to
       it (falling back to reports from nearby switches);
    3. geo-IP: a prefix → location table (as built from public geo-IP
       data), looked up by the switch's management IP.

    Each mode produces a {!Registry.t}; the E8 experiment measures the
    positional error and the jurisdiction mislabel rate of modes 2 and
    3 against ground truth. *)

(** Ground truth: switch id → location, plus client attachment
    (client's location, switch it attaches to). *)
type ground_truth = {
  switch_locations : (int * Location.t) list;
  client_reports : (Location.t * int) list;
      (** (client location, switch the client attaches to) *)
  switch_mgmt_ip : (int * int) list;  (** switch id → management IPv4 *)
}

(** [disclosed gt] — mode 1: copies ground truth. *)
val disclosed : ground_truth -> Registry.t

(** [crowd_sourced gt] — mode 2: centroid of attached client reports;
    switches without attached clients stay unknown. *)
val crowd_sourced : ground_truth -> Registry.t

(** [geo_ip gt ~table] — mode 3: looks each switch's management IP up
    in a (prefix value, prefix length, location) table; longest prefix
    wins. *)
val geo_ip : ground_truth -> table:(int * int * Location.t) list -> Registry.t

(** [mean_error_km ~truth ~believed] averages the positional error over
    switches known to both registries; [None] when no switch is
    comparable. *)
val mean_error_km : truth:Registry.t -> believed:Registry.t -> float option

(** [jurisdiction_accuracy ~truth ~believed] is the fraction of
    switches known to both whose jurisdiction labels agree. *)
val jurisdiction_accuracy : truth:Registry.t -> believed:Registry.t -> float option
