type jurisdiction = string

type t = { lat : float; lon : float; jurisdiction : jurisdiction }

let make ~lat ~lon ~jurisdiction =
  if lat < -90.0 || lat > 90.0 then invalid_arg "Location.make: latitude out of range";
  if lon < -180.0 || lon > 180.0 then invalid_arg "Location.make: longitude out of range";
  { lat; lon; jurisdiction }

let earth_radius_km = 6371.0

let to_radians deg = deg *. Float.pi /. 180.0

let distance_km a b =
  let dlat = to_radians (b.lat -. a.lat) and dlon = to_radians (b.lon -. a.lon) in
  let h =
    (sin (dlat /. 2.0) ** 2.0)
    +. (cos (to_radians a.lat) *. cos (to_radians b.lat) *. (sin (dlon /. 2.0) ** 2.0))
  in
  2.0 *. earth_radius_km *. asin (Float.min 1.0 (sqrt h))

let centroid locations =
  match locations with
  | [] -> invalid_arg "Location.centroid: empty list"
  | _ ->
    let n = float_of_int (List.length locations) in
    let lat = List.fold_left (fun acc l -> acc +. l.lat) 0.0 locations /. n in
    let lon = List.fold_left (fun acc l -> acc +. l.lon) 0.0 locations /. n in
    let center = { lat; lon; jurisdiction = "" } in
    let nearest =
      List.fold_left
        (fun best l ->
          match best with
          | None -> Some l
          | Some b -> if distance_km center l < distance_km center b then Some l else best)
        None locations
    in
    (match nearest with
    | Some l -> { lat; lon; jurisdiction = l.jurisdiction }
    | None -> assert false)

let random rng ~jurisdictions =
  let lat = Support.Rng.float rng 50.0 +. 20.0 in
  let lon = Support.Rng.float rng 80.0 -. 40.0 in
  let jurisdiction =
    match jurisdictions with
    | [] -> "unknown"
    | _ -> Support.Rng.pick rng jurisdictions
  in
  { lat; lon; jurisdiction }

let equal a b = a.lat = b.lat && a.lon = b.lon && String.equal a.jurisdiction b.jurisdiction

let pp fmt t = Format.fprintf fmt "(%.2f,%.2f;%s)" t.lat t.lon t.jurisdiction
