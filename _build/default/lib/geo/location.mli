(** Geographic locations and jurisdictions.

    The paper's geo-location case study (§IV-B.2) asks which
    jurisdictions a client's traffic can traverse.  A location is a
    point with a jurisdiction label; distances use the haversine
    formula on a spherical Earth. *)

type jurisdiction = string

type t = { lat : float; lon : float; jurisdiction : jurisdiction }

(** [make ~lat ~lon ~jurisdiction] builds a location.
    @raise Invalid_argument when coordinates are out of range. *)
val make : lat:float -> lon:float -> jurisdiction:jurisdiction -> t

(** [distance_km a b] is the great-circle distance. *)
val distance_km : t -> t -> float

(** [centroid locations] averages coordinates (jurisdiction taken from
    the nearest input location).  @raise Invalid_argument on empty. *)
val centroid : t list -> t

(** [random rng ~jurisdictions] draws a location uniformly over a
    continental-scale box with a random jurisdiction from the list. *)
val random : Support.Rng.t -> jurisdictions:jurisdiction list -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
