type t = { switches : (int, Location.t) Hashtbl.t }

let create () = { switches = Hashtbl.create 32 }

let set_switch t ~sw loc = Hashtbl.replace t.switches sw loc

let switch t ~sw = Hashtbl.find_opt t.switches sw

let switches t =
  Hashtbl.fold (fun sw loc acc -> (sw, loc) :: acc) t.switches []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let jurisdictions_of t ~sws =
  let named =
    List.map
      (fun sw ->
        match switch t ~sw with
        | Some loc -> loc.Location.jurisdiction
        | None -> "unknown")
      sws
  in
  List.sort_uniq String.compare named

let coverage t ~sws =
  match sws with
  | [] -> 1.0
  | _ ->
    let known = List.length (List.filter (fun sw -> Hashtbl.mem t.switches sw) sws) in
    float_of_int known /. float_of_int (List.length sws)
