(** Location registry: what the RVaaS controller knows about where
    switches and links sit.

    The registry distinguishes *ground truth* (used by simulations and
    accuracy experiments) from *believed* locations obtained through
    one of the paper's three inference modes ({!Infer}). *)

type t

val create : unit -> t

(** [set_switch t ~sw loc] records the believed location of switch [sw]. *)
val set_switch : t -> sw:int -> Location.t -> unit

(** [switch t ~sw] is the believed location, if known. *)
val switch : t -> sw:int -> Location.t option

(** [switches t] lists all (switch, location) pairs. *)
val switches : t -> (int * Location.t) list

(** [jurisdictions_of t ~sws] is the deduplicated jurisdiction set of
    the given switches (unknown switches are reported as ["unknown"]). *)
val jurisdictions_of : t -> sws:int list -> Location.jurisdiction list

(** [coverage t ~sws] is the fraction of [sws] with a known location. *)
val coverage : t -> sws:int list -> float
