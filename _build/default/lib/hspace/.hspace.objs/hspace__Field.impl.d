lib/hspace/field.ml: Format Hashtbl List Tern
