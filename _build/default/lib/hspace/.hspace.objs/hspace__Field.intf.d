lib/hspace/field.mli: Format Tern
