lib/hspace/header.ml: Field Format List Support Tern
