lib/hspace/header.mli: Field Format Support Tern
