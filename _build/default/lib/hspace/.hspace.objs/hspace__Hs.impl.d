lib/hspace/hs.ml: Format List Support Tern
