lib/hspace/hs.mli: Format Support Tern
