lib/hspace/tern.ml: Array Format List Stdlib String Support
