lib/hspace/tern.mli: Format Support
