type name =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Tp_src
  | Tp_dst

let all =
  [ Eth_src; Eth_dst; Eth_type; Vlan; Ip_src; Ip_dst; Ip_proto; Tp_src; Tp_dst ]

let bit_width = function
  | Eth_src | Eth_dst -> 48
  | Eth_type -> 16
  | Vlan -> 12
  | Ip_src | Ip_dst -> 32
  | Ip_proto -> 8
  | Tp_src | Tp_dst -> 16

let offset =
  let table = Hashtbl.create 16 in
  let next = ref 0 in
  List.iter
    (fun f ->
      Hashtbl.replace table f !next;
      next := !next + bit_width f)
    all;
  fun f -> Hashtbl.find table f

let total_width = List.fold_left (fun acc f -> acc + bit_width f) 0 all

let name_to_string = function
  | Eth_src -> "eth_src"
  | Eth_dst -> "eth_dst"
  | Eth_type -> "eth_type"
  | Vlan -> "vlan"
  | Ip_src -> "ip_src"
  | Ip_dst -> "ip_dst"
  | Ip_proto -> "ip_proto"
  | Tp_src -> "tp_src"
  | Tp_dst -> "tp_dst"

let set_masked t f ~value ~mask =
  let base = offset f and w = bit_width f in
  let t = ref t in
  for i = 0 to w - 1 do
    if (mask lsr i) land 1 = 1 then
      let b = if (value lsr i) land 1 = 1 then Tern.One else Tern.Zero in
      t := Tern.set !t (base + i) b
  done;
  !t

let full_mask f =
  let w = bit_width f in
  if w >= 63 then -1 else (1 lsl w) - 1

let set_exact t f v = set_masked t f ~value:v ~mask:(full_mask f)

let prefix_mask f prefix_len =
  let w = bit_width f in
  if prefix_len < 0 || prefix_len > w then
    invalid_arg "Field.prefix_mask: prefix length out of range";
  if prefix_len = 0 then 0 else ((1 lsl prefix_len) - 1) lsl (w - prefix_len)

let set_prefix t f ~value ~prefix_len =
  set_masked t f ~value ~mask:(prefix_mask f prefix_len)

let clear t f =
  let base = offset f and w = bit_width f in
  let t = ref t in
  for i = 0 to w - 1 do
    t := Tern.set !t (base + i) Tern.Any
  done;
  !t

let get_exact t f =
  let base = offset f and w = bit_width f in
  let rec go i acc =
    if i >= w then Some acc
    else
      match Tern.get t (base + i) with
      | Tern.Zero -> go (i + 1) acc
      | Tern.One -> go (i + 1) (acc lor (1 lsl i))
      | Tern.Any | Tern.Empty -> None
  in
  go 0 0

let pp_name fmt f = Format.pp_print_string fmt (name_to_string f)
