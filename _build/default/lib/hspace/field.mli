(** Header field layout.

    Defines the packet-header bit layout shared by the concrete data
    plane ({!Header}), the OpenFlow match language ([Ofproto.Match])
    and the header-space verifier.  Bit 0 of a field is its least
    significant bit and is stored at the field's offset. *)

type name =
  | Eth_src
  | Eth_dst
  | Eth_type
  | Vlan
  | Ip_src
  | Ip_dst
  | Ip_proto
  | Tp_src
  | Tp_dst

(** All fields in layout order. *)
val all : name list

(** [offset f] is the first header bit of [f]. *)
val offset : name -> int

(** [bit_width f] is the width of [f] in bits. *)
val bit_width : name -> int

(** Total header width in bits (sum of all field widths). *)
val total_width : int

(** [name_to_string f] is a stable lower-case name. *)
val name_to_string : name -> string

(** [set_exact t f v] constrains field [f] of cube [t] to the exact
    value [v] (low [bit_width f] bits of [v]). *)
val set_exact : Tern.t -> name -> int -> Tern.t

(** [set_masked t f ~value ~mask] constrains the bits of [f] whose mask
    bit is 1 to the corresponding bit of [value]; other bits are left
    unchanged.  With [mask = 0] this is the identity. *)
val set_masked : Tern.t -> name -> value:int -> mask:int -> Tern.t

(** [set_prefix t f ~value ~prefix_len] constrains the [prefix_len]
    most significant bits of [f] — the CIDR-style prefix match. *)
val set_prefix : Tern.t -> name -> value:int -> prefix_len:int -> Tern.t

(** [clear t f] sets all bits of [f] to [*] (used before a rewrite). *)
val clear : Tern.t -> name -> Tern.t

(** [get_exact t f] returns the concrete value of [f] when all its bits
    are 0/1, otherwise [None]. *)
val get_exact : Tern.t -> name -> int option

(** [prefix_mask f prefix_len] is the integer mask with the
    [prefix_len] most significant bits of field [f] set. *)
val prefix_mask : name -> int -> int

val pp_name : Format.formatter -> name -> unit
