type t = {
  eth_src : int;
  eth_dst : int;
  eth_type : int;
  vlan : int;
  ip_src : int;
  ip_dst : int;
  ip_proto : int;
  tp_src : int;
  tp_dst : int;
}

let default =
  {
    eth_src = 0;
    eth_dst = 0;
    eth_type = 0;
    vlan = 0;
    ip_src = 0;
    ip_dst = 0;
    ip_proto = 0;
    tp_src = 0;
    tp_dst = 0;
  }

let eth_type_ip = 0x0800

let proto_udp = 17

let proto_tcp = 6

let truncate f v =
  let w = Field.bit_width f in
  if w >= 63 then v else v land ((1 lsl w) - 1)

let get h = function
  | Field.Eth_src -> h.eth_src
  | Field.Eth_dst -> h.eth_dst
  | Field.Eth_type -> h.eth_type
  | Field.Vlan -> h.vlan
  | Field.Ip_src -> h.ip_src
  | Field.Ip_dst -> h.ip_dst
  | Field.Ip_proto -> h.ip_proto
  | Field.Tp_src -> h.tp_src
  | Field.Tp_dst -> h.tp_dst

let set h f v =
  let v = truncate f v in
  match f with
  | Field.Eth_src -> { h with eth_src = v }
  | Field.Eth_dst -> { h with eth_dst = v }
  | Field.Eth_type -> { h with eth_type = v }
  | Field.Vlan -> { h with vlan = v }
  | Field.Ip_src -> { h with ip_src = v }
  | Field.Ip_dst -> { h with ip_dst = v }
  | Field.Ip_proto -> { h with ip_proto = v }
  | Field.Tp_src -> { h with tp_src = v }
  | Field.Tp_dst -> { h with tp_dst = v }

let to_tern h =
  List.fold_left
    (fun t f -> Field.set_exact t f (get h f))
    (Tern.all_x Field.total_width) Field.all

let of_tern t =
  if Tern.width t <> Field.total_width then
    invalid_arg "Header.of_tern: wrong width";
  List.fold_left
    (fun h f ->
      match Field.get_exact t f with
      | Some v -> set h f v
      | None -> invalid_arg "Header.of_tern: vector is not concrete")
    default Field.all

let udp ~src_ip ~dst_ip ~src_port ~dst_port =
  {
    default with
    eth_type = eth_type_ip;
    ip_src = src_ip;
    ip_dst = dst_ip;
    ip_proto = proto_udp;
    tp_src = src_port;
    tp_dst = dst_port;
  }

let equal (a : t) (b : t) = a = b

let random rng =
  List.fold_left
    (fun h f ->
      let w = Field.bit_width f in
      let v =
        if w >= 62 then Support.Rng.bits rng
        else Support.Rng.int rng (1 lsl w)
      in
      set h f v)
    default Field.all

let pp fmt h =
  Format.fprintf fmt
    "{eth %012x->%012x type %04x vlan %x ip %08x->%08x proto %d ports %d->%d}"
    h.eth_src h.eth_dst h.eth_type h.vlan h.ip_src h.ip_dst h.ip_proto h.tp_src
    h.tp_dst
