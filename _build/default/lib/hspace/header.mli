(** Concrete packet headers.

    The record mirrors the field layout of {!Field}; conversion to a
    concrete {!Tern} vector links the simulated data plane with the
    logical header-space analysis. *)

type t = {
  eth_src : int;
  eth_dst : int;
  eth_type : int;
  vlan : int;
  ip_src : int;
  ip_dst : int;
  ip_proto : int;
  tp_src : int;
  tp_dst : int;
}

(** A zeroed header. *)
val default : t

(** Well-known [eth_type] values used in the simulation. *)
val eth_type_ip : int

(** Well-known [ip_proto] values. *)
val proto_udp : int

val proto_tcp : int

(** [get h f] reads field [f] as an integer. *)
val get : t -> Field.name -> int

(** [set h f v] returns [h] with field [f] replaced by the low bits of
    [v] (truncated to the field width). *)
val set : t -> Field.name -> int -> t

(** [to_tern h] is the concrete ternary vector encoding [h]. *)
val to_tern : t -> Tern.t

(** [of_tern t] decodes a concrete vector into a header.
    @raise Invalid_argument if [t] is not concrete. *)
val of_tern : Tern.t -> t

(** [udp ~src_ip ~dst_ip ~src_port ~dst_port] builds a UDP header. *)
val udp : src_ip:int -> dst_ip:int -> src_port:int -> dst_port:int -> t

(** [equal a b] is structural equality. *)
val equal : t -> t -> bool

(** [random rng] draws a uniform header. *)
val random : Support.Rng.t -> t

val pp : Format.formatter -> t -> unit
