type t = { width : int; cubes : Tern.t list }

let width t = t.width

(* Drop empty cubes and cubes subsumed by another cube.  When two cubes
   subsume each other (equal), keep the first. *)
let normalise width cubes =
  let nonempty = List.filter (fun c -> not (Tern.is_empty c)) cubes in
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let subsumed_later = List.exists (fun d -> Tern.subset c d) rest in
      let subsumed_earlier = List.exists (fun d -> Tern.subset c d) acc in
      if subsumed_later || subsumed_earlier then keep acc rest
      else keep (c :: acc) rest
  in
  { width; cubes = keep [] nonempty }

let empty width = { width; cubes = [] }

let full width = { width; cubes = [ Tern.all_x width ] }

let of_cube c = normalise (Tern.width c) [ c ]

let of_cubes width cs =
  List.iter
    (fun c ->
      if Tern.width c <> width then invalid_arg "Hs.of_cubes: width mismatch")
    cs;
  normalise width cs

let cubes t = t.cubes

let cube_count t = List.length t.cubes

let is_empty t = t.cubes = []

let check_width name a b =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch")

let union a b =
  check_width "Hs.union" a b;
  normalise a.width (a.cubes @ b.cubes)

let inter a b =
  check_width "Hs.inter" a b;
  let pairs =
    List.concat_map (fun ca -> List.map (fun cb -> Tern.inter ca cb) b.cubes) a.cubes
  in
  normalise a.width pairs

let diff_cube_list cubes c =
  List.concat_map (fun cube -> Tern.diff cube c) cubes

let diff a b =
  check_width "Hs.diff" a b;
  let remaining = List.fold_left diff_cube_list a.cubes b.cubes in
  normalise a.width remaining

let inter_cube t c =
  if Tern.width c <> t.width then invalid_arg "Hs.inter_cube: width mismatch";
  normalise t.width (List.map (fun cube -> Tern.inter cube c) t.cubes)

let diff_cube t c =
  if Tern.width c <> t.width then invalid_arg "Hs.diff_cube: width mismatch";
  normalise t.width (diff_cube_list t.cubes c)

let complement t = diff (full t.width) t

let mem concrete t = List.exists (fun c -> Tern.mem concrete c) t.cubes

let subset a b = is_empty (diff a b)

let equal a b = subset a b && subset b a

let overlaps a b = not (is_empty (inter a b))

let sample rng t =
  match t.cubes with
  | [] -> None
  | cubes ->
    let cube = Support.Rng.pick rng cubes in
    let concrete = ref cube in
    for i = 0 to Tern.width cube - 1 do
      match Tern.get cube i with
      | Tern.Any ->
        concrete :=
          Tern.set !concrete i (if Support.Rng.bool rng then Tern.One else Tern.Zero)
      | Tern.Zero | Tern.One -> ()
      | Tern.Empty -> assert false
    done;
    Some !concrete

let pp fmt t =
  match t.cubes with
  | [] -> Format.fprintf fmt "(empty/%d)" t.width
  | cubes ->
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Tern.pp)
      cubes
