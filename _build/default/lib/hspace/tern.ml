(* Packed ternary bit-vectors: 31 header bits per word, 2 encoding bits
   per header bit (01 = 0, 10 = 1, 11 = *, 00 = z).  The pairs beyond
   [width] in the last word are kept at 11 so that word-wise [land]
   (intersection) and pair-wise subset tests need no special casing. *)

type t = { width : int; words : int array }

type bit = Zero | One | Any | Empty

let bits_per_word = 31

let evens_mask = 0x1555555555555555 (* 01 repeated over 62 bits *)

let full_word = 0x3FFFFFFFFFFFFFFF (* all 31 pairs = 11 *)

let word_count width = (width + bits_per_word - 1) / bits_per_word

(* Mask with 11 on the pairs that encode valid header bits of word [k]. *)
let valid_mask width k =
  let used = min bits_per_word (width - (k * bits_per_word)) in
  if used >= bits_per_word then full_word else (1 lsl (2 * used)) - 1

let all_x width =
  if width <= 0 then invalid_arg "Tern.all_x: width must be positive";
  { width; words = Array.make (word_count width) full_word }

let width t = t.width

let encode = function Empty -> 0 | Zero -> 1 | One -> 2 | Any -> 3

let decode = function 0 -> Empty | 1 -> Zero | 2 -> One | _ -> Any

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Tern.get: index out of range";
  let w = t.words.(i / bits_per_word) in
  decode ((w lsr (2 * (i mod bits_per_word))) land 3)

let set t i b =
  if i < 0 || i >= t.width then invalid_arg "Tern.set: index out of range";
  let words = Array.copy t.words in
  let k = i / bits_per_word and pos = 2 * (i mod bits_per_word) in
  words.(k) <- (words.(k) land lnot (3 lsl pos)) lor (encode b lsl pos);
  { t with words }

let is_empty t =
  let n = Array.length t.words in
  let rec go k =
    if k >= n then false
    else
      let w = t.words.(k) in
      let valid = valid_mask t.width k in
      (* A pair is 00 iff neither of its bits is set. *)
      let occupied = (w lor (w lsr 1)) land evens_mask land valid in
      if occupied <> evens_mask land valid then true else go (k + 1)
  in
  go 0

let is_full t = Array.for_all (fun w -> w = full_word) t.words

let is_concrete t =
  let n = Array.length t.words in
  let rec go k =
    if k >= n then true
    else
      let w = t.words.(k) in
      let valid = valid_mask t.width k in
      (* Concrete: every valid pair is 01 or 10, i.e. exactly one bit set. *)
      let lo = w land evens_mask and hi = (w lsr 1) land evens_mask in
      let both = lo land hi land valid and none = lnot (lo lor hi) land evens_mask land valid in
      if both <> 0 || none <> 0 then false else go (k + 1)
  in
  go 0

let check_width name a b =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch")

let inter a b =
  check_width "Tern.inter" a b;
  { width = a.width; words = Array.map2 ( land ) a.words b.words }

let subset a b =
  check_width "Tern.subset" a b;
  if is_empty a then true
  else
    let n = Array.length a.words in
    let rec go k =
      if k >= n then true
      else if a.words.(k) land b.words.(k) <> a.words.(k) then false
      else go (k + 1)
    in
    go 0

let overlaps a b = not (is_empty (inter a b))

let equal a b = a.width = b.width && a.words = b.words

let compare a b = Stdlib.compare (a.width, a.words) (b.width, b.words)

(* Iterate [f] over the positions of [t] holding a fixed (0/1) value,
   without scanning wildcard positions: enumerate set bits of the
   per-word "exactly one encoding bit" mask. *)
let iter_fixed_bits t f =
  let n = Array.length t.words in
  for k = 0 to n - 1 do
    let w = t.words.(k) in
    let lo = w land evens_mask and hi = (w lsr 1) land evens_mask in
    let fixed = ref ((lo lxor hi) land valid_mask t.width k land evens_mask) in
    while !fixed <> 0 do
      let lowest = !fixed land - !fixed in
      fixed := !fixed lxor lowest;
      (* [lowest] is a single even bit 2*j; recover j by bit count. *)
      let rec log2 v acc = if v = 1 then acc else log2 (v lsr 1) (acc + 1) in
      let pair = log2 lowest 0 / 2 in
      let i = (k * bits_per_word) + pair in
      f i (decode ((w lsr (2 * pair)) land 3))
    done
  done

let complement t =
  if is_empty t then [ all_x t.width ]
  else begin
    let cubes = ref [] in
    iter_fixed_bits t (fun i b ->
        match b with
        | Zero -> cubes := set (all_x t.width) i One :: !cubes
        | One -> cubes := set (all_x t.width) i Zero :: !cubes
        | Any | Empty -> assert false);
    List.rev !cubes
  end

let diff a b =
  check_width "Tern.diff" a b;
  if not (overlaps a b) then (if is_empty a then [] else [ a ])
  else begin
    (* a \ b = union over constrained bits i of b of
       { h in a : h_i <> b_i }. *)
    let cubes = ref [] in
    iter_fixed_bits b (fun i bi ->
        let flipped = match bi with Zero -> One | One -> Zero | Any | Empty -> assert false in
        match get a i with
        | Any -> cubes := set a i flipped :: !cubes
        | v when v = flipped -> cubes := a :: !cubes
        | Zero | One | Empty -> ());
    List.rev !cubes
  end

let mem concrete t =
  if not (is_concrete concrete) then invalid_arg "Tern.mem: vector is not concrete";
  subset concrete t

let count_fixed t =
  let count = ref 0 in
  for i = 0 to t.width - 1 do
    match get t i with Zero | One -> incr count | Any | Empty -> ()
  done;
  !count

let random rng w ~fixed_prob =
  let t = ref (all_x w) in
  for i = 0 to w - 1 do
    if Support.Rng.bernoulli rng fixed_prob then
      t := set !t i (if Support.Rng.bool rng then One else Zero)
  done;
  !t

let random_concrete rng w =
  let t = ref (all_x w) in
  for i = 0 to w - 1 do
    t := set !t i (if Support.Rng.bool rng then One else Zero)
  done;
  !t

let of_string s =
  let w = String.length s in
  let t = ref (all_x w) in
  String.iteri
    (fun i c ->
      let b =
        match c with
        | '0' -> Zero
        | '1' -> One
        | 'x' | 'X' | '*' -> Any
        | 'z' | 'Z' -> Empty
        | _ -> invalid_arg "Tern.of_string: bad character"
      in
      t := set !t i b)
    s;
  !t

let to_string t =
  String.init t.width (fun i ->
      match get t i with Zero -> '0' | One -> '1' | Any -> 'x' | Empty -> 'z')

let pp fmt t = Format.pp_print_string fmt (to_string t)
