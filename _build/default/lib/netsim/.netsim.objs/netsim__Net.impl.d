lib/netsim/net.ml: Hashtbl List Ofproto Option Packet Sim Support Topology
