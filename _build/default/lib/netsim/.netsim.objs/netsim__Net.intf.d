lib/netsim/net.mli: Ofproto Packet Sim Topology
