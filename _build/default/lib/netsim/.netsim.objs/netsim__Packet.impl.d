lib/netsim/packet.ml: Format Hspace String
