lib/netsim/packet.mli: Format Hspace
