lib/netsim/sim.ml: Float Support
