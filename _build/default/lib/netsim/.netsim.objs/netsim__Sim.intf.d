lib/netsim/sim.mli: Support
