lib/netsim/topology.ml: Format Hashtbl List Option Queue
