lib/netsim/topology.mli: Format Hashtbl
