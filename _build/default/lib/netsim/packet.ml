type t = {
  header : Hspace.Header.t;
  payload : string;
  size_bytes : int;
  hops : int;
}

let max_hops = 64

let make ?size_bytes ~header payload =
  let size_bytes =
    match size_bytes with
    | Some s -> s
    | None -> max 64 (String.length payload + 42)
  in
  { header; payload; size_bytes; hops = 0 }

let hop p ~header = { p with header; hops = p.hops + 1 }

let pp fmt p =
  Format.fprintf fmt "%a payload=%dB hops=%d" Hspace.Header.pp p.header
    (String.length p.payload) p.hops
