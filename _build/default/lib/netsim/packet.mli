(** Data-plane packets. *)

type t = {
  header : Hspace.Header.t;
  payload : string;
  size_bytes : int;
  hops : int;  (** switches traversed so far; the simulator drops a
                   packet at {!max_hops} as a loop guard *)
}

(** Loop guard: packets are dropped after traversing this many
    switches. *)
val max_hops : int

(** [make ?size_bytes ~header payload] builds a fresh packet.  The
    default size is max(64, payload length + 42) — a minimal Ethernet
    frame plus headers. *)
val make : ?size_bytes:int -> header:Hspace.Header.t -> string -> t

(** [hop p ~header] advances the hop count and replaces the (possibly
    rewritten) header. *)
val hop : t -> header:Hspace.Header.t -> t

val pp : Format.formatter -> t -> unit
