type node = Switch of int | Host of int

type endpoint = { node : node; port : int }

type link = { a : endpoint; b : endpoint; delay : float }

type t = {
  mutable switch_ids : int list; (* descending insertion; sorted on read *)
  mutable host_ids : int list;
  mutable link_list : link list; (* reverse insertion order *)
  wiring : (endpoint, endpoint * float) Hashtbl.t;
}

let create () =
  { switch_ids = []; host_ids = []; link_list = []; wiring = Hashtbl.create 64 }

let add_switch t id =
  if List.mem id t.switch_ids then invalid_arg "Topology.add_switch: duplicate id";
  t.switch_ids <- id :: t.switch_ids

let add_host t id =
  if List.mem id t.host_ids then invalid_arg "Topology.add_host: duplicate id";
  t.host_ids <- id :: t.host_ids

let declared t = function
  | Switch id -> List.mem id t.switch_ids
  | Host id -> List.mem id t.host_ids

let connect t a b ~delay =
  if not (declared t a.node) then invalid_arg "Topology.connect: undeclared node";
  if not (declared t b.node) then invalid_arg "Topology.connect: undeclared node";
  if Hashtbl.mem t.wiring a || Hashtbl.mem t.wiring b then
    invalid_arg "Topology.connect: endpoint already wired";
  if delay < 0.0 then invalid_arg "Topology.connect: negative delay";
  Hashtbl.replace t.wiring a (b, delay);
  Hashtbl.replace t.wiring b (a, delay);
  t.link_list <- { a; b; delay } :: t.link_list

let peer t e = Option.map fst (Hashtbl.find_opt t.wiring e)

let link_delay t e = Option.map snd (Hashtbl.find_opt t.wiring e)

let switches t = List.sort compare t.switch_ids

let hosts t = List.sort compare t.host_ids

let links t = List.rev t.link_list

let switch_ports t sw =
  Hashtbl.fold
    (fun e _ acc -> match e.node with Switch id when id = sw -> e.port :: acc | _ -> acc)
    t.wiring []
  |> List.sort compare

let host_attachment t host =
  let candidates =
    Hashtbl.fold
      (fun e (far, _) acc ->
        match e.node, far.node with
        | Host id, Switch _ when id = host -> far :: acc
        | _ -> acc)
      t.wiring []
  in
  match candidates with [ e ] -> Some e | [] | _ :: _ -> None

let hosts_on_switch t sw =
  Hashtbl.fold
    (fun e (far, _) acc ->
      match e.node, far.node with
      | Switch id, Host h when id = sw -> (h, e.port) :: acc
      | _ -> acc)
    t.wiring []
  |> List.sort compare

let neighbor_switches t sw =
  Hashtbl.fold
    (fun e (far, _) acc ->
      match e.node, far.node with
      | Switch id, Switch remote when id = sw -> (e.port, remote, far.port) :: acc
      | _ -> acc)
    t.wiring []
  |> List.sort compare

let shortest_paths t ~from_sw =
  let dist = Hashtbl.create 32 and via = Hashtbl.create 32 in
  Hashtbl.replace dist from_sw 0;
  let queue = Queue.create () in
  Queue.add from_sw queue;
  while not (Queue.is_empty queue) do
    let sw = Queue.pop queue in
    let d = Hashtbl.find dist sw in
    List.iter
      (fun (out_port, remote, _remote_port) ->
        if not (Hashtbl.mem dist remote) then begin
          Hashtbl.replace dist remote (d + 1);
          Hashtbl.replace via remote (out_port, sw);
          Queue.add remote queue
        end)
      (neighbor_switches t sw)
  done;
  (dist, via)

let next_hop_port t ~from_sw ~to_sw =
  if from_sw = to_sw then None
  else
    let _dist, via = shortest_paths t ~from_sw in
    (* Walk back from to_sw to from_sw, remembering the first hop. *)
    let rec back sw =
      match Hashtbl.find_opt via sw with
      | None -> None
      | Some (port, prev) -> if prev = from_sw then Some port else back prev
    in
    back to_sw

let shortest_switch_path t ~from_sw ~to_sw =
  if from_sw = to_sw then Some [ from_sw ]
  else
    let _dist, via = shortest_paths t ~from_sw in
    let rec back sw acc =
      if sw = from_sw then Some (from_sw :: acc)
      else
        match Hashtbl.find_opt via sw with
        | None -> None
        | Some (_port, prev) -> back prev (sw :: acc)
    in
    back to_sw []

let shortest_switch_path_avoiding t ~from_sw ~to_sw ~avoid =
  if from_sw = to_sw then Some [ from_sw ]
  else begin
    let blocked sw = sw <> from_sw && sw <> to_sw && List.mem sw avoid in
    let via = Hashtbl.create 32 in
    let visited = Hashtbl.create 32 in
    Hashtbl.replace visited from_sw ();
    let queue = Queue.create () in
    Queue.add from_sw queue;
    while not (Queue.is_empty queue) do
      let sw = Queue.pop queue in
      List.iter
        (fun (_port, remote, _) ->
          if not (Hashtbl.mem visited remote) && not (blocked remote) then begin
            Hashtbl.replace visited remote ();
            Hashtbl.replace via remote sw;
            Queue.add remote queue
          end)
        (neighbor_switches t sw)
    done;
    let rec back sw acc =
      if sw = from_sw then Some (from_sw :: acc)
      else
        match Hashtbl.find_opt via sw with
        | None -> None
        | Some prev -> back prev (sw :: acc)
    in
    back to_sw []
  end

let port_towards t ~sw ~neighbor =
  List.find_map
    (fun (port, remote, _) -> if remote = neighbor then Some port else None)
    (neighbor_switches t sw)

let pp_node fmt = function
  | Switch id -> Format.fprintf fmt "s%d" id
  | Host id -> Format.fprintf fmt "h%d" id

let pp_endpoint fmt e = Format.fprintf fmt "%a:%d" pp_node e.node e.port
