lib/ofproto/action.ml: Format Hspace List
