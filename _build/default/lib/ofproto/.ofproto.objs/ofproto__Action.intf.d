lib/ofproto/action.mli: Format Hspace
