lib/ofproto/flow_entry.ml: Action Format List Match_
