lib/ofproto/flow_entry.mli: Action Format Match_
