lib/ofproto/flow_table.ml: Flow_entry Format List Match_
