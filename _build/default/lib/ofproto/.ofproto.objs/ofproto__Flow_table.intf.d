lib/ofproto/flow_table.mli: Flow_entry Format Hspace Match_
