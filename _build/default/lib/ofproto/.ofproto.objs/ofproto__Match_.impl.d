lib/ofproto/match_.ml: Format Hspace List
