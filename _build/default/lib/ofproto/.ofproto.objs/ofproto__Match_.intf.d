lib/ofproto/match_.mli: Format Hspace
