lib/ofproto/message.ml: Flow_entry Format Hspace List Match_ Meter
