lib/ofproto/message.mli: Flow_entry Format Hspace Match_ Meter
