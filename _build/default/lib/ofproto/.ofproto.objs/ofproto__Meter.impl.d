lib/ofproto/meter.ml: Float Hashtbl List Option
