lib/ofproto/meter.mli:
