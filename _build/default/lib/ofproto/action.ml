type t =
  | Output of int
  | In_port
  | Flood
  | To_controller
  | Set_field of Hspace.Field.name * int
  | Set_queue of int

type applied = {
  outputs : (int * Hspace.Header.t) list;
  to_controller : Hspace.Header.t option;
  final_header : Hspace.Header.t;
  queue : int option;
}

let apply ~ports ~in_port header actions =
  let flood_ports = List.filter (fun p -> p <> in_port) ports in
  let step acc action =
    match action with
    | Output p ->
      (* OpenFlow suppresses output to the ingress port; hairpinning
         requires the dedicated [In_port] action. *)
      if p = in_port then acc
      else { acc with outputs = (p, acc.final_header) :: acc.outputs }
    | In_port -> { acc with outputs = (in_port, acc.final_header) :: acc.outputs }
    | Flood ->
      let outs = List.map (fun p -> (p, acc.final_header)) flood_ports in
      { acc with outputs = List.rev_append outs acc.outputs }
    | To_controller ->
      (* Keep the first controller copy: OpenFlow duplicates are
         redundant for our model. *)
      let to_controller =
        match acc.to_controller with
        | Some _ as existing -> existing
        | None -> Some acc.final_header
      in
      { acc with to_controller }
    | Set_field (f, v) ->
      { acc with final_header = Hspace.Header.set acc.final_header f v }
    | Set_queue q -> { acc with queue = Some q }
  in
  let init = { outputs = []; to_controller = None; final_header = header; queue = None } in
  let result = List.fold_left step init actions in
  { result with outputs = List.rev result.outputs }

let rewrites actions =
  List.filter_map (function Set_field (f, v) -> Some (f, v) | _ -> None) actions

let output_ports ~ports ~in_port actions =
  let flood_ports = List.filter (fun p -> p <> in_port) ports in
  List.concat_map
    (function
      | Output p -> if p = in_port then [] else [ p ]
      | In_port -> [ in_port ]
      | Flood -> flood_ports
      | To_controller | Set_field _ | Set_queue _ -> [])
    actions

let sends_to_controller actions =
  List.exists (function To_controller -> true | _ -> false) actions

let equal (a : t) (b : t) = a = b

let pp fmt = function
  | Output p -> Format.fprintf fmt "output:%d" p
  | In_port -> Format.pp_print_string fmt "in_port" 
  | Flood -> Format.pp_print_string fmt "flood"
  | To_controller -> Format.pp_print_string fmt "controller"
  | Set_field (f, v) -> Format.fprintf fmt "set_%a:%x" Hspace.Field.pp_name f v
  | Set_queue q -> Format.fprintf fmt "queue:%d" q

let pp_list fmt actions =
  if actions = [] then Format.pp_print_string fmt "drop"
  else
    Format.pp_print_list
      ~pp_sep:(fun fmt () -> Format.pp_print_string fmt ",")
      pp fmt actions
