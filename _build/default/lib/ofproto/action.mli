(** OpenFlow actions.

    An action list is applied in order; header rewrites affect
    subsequent outputs.  An empty action list drops the packet. *)

type t =
  | Output of int  (** forward out of a specific port *)
  | In_port  (** forward back out of the ingress port (OFPP_IN_PORT) —
                 the only way to hairpin, since a plain [Output] naming
                 the ingress port is suppressed *)
  | Flood  (** forward out of all ports except the ingress port *)
  | To_controller  (** encapsulate in a Packet-In to the controllers *)
  | Set_field of Hspace.Field.name * int  (** rewrite a header field *)
  | Set_queue of int  (** select an egress queue (QoS modelling) *)

(** Result of applying an action list to a header arriving on a port. *)
type applied = {
  outputs : (int * Hspace.Header.t) list;
      (** concrete egress ports with the header as rewritten at that
          point of the action list *)
  to_controller : Hspace.Header.t option;
      (** header sent to the controller, if [To_controller] appears *)
  final_header : Hspace.Header.t;
  queue : int option;
}

(** [apply ~ports ~in_port header actions] executes [actions]:
    [Flood] expands to [ports] minus [in_port], rewrites apply to all
    later outputs, and — as in OpenFlow — an [Output] naming the
    ingress port itself is suppressed. *)
val apply :
  ports:int list -> in_port:int -> Hspace.Header.t -> t list -> applied

(** [rewrites actions] is the net field-rewrite list of [actions] in
    application order (used by the header-space transfer function). *)
val rewrites : t list -> (Hspace.Field.name * int) list

(** [output_ports ~ports ~in_port actions] lists concrete egress ports
    without computing rewrites. *)
val output_ports : ports:int list -> in_port:int -> t list -> int list

(** [sends_to_controller actions] is true when the list contains
    [To_controller]. *)
val sends_to_controller : t list -> bool

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit

val pp_list : Format.formatter -> t list -> unit
