type spec = {
  priority : int;
  match_ : Match_.t;
  actions : Action.t list;
  cookie : int;
  meter : int option;
  hard_timeout : float option;
}

type t = {
  spec : spec;
  installed_at : float;
  mutable packets : int;
  mutable bytes : int;
}

let make_spec ?(cookie = 0) ?meter ?hard_timeout ~priority match_ actions =
  { priority; match_; actions; cookie; meter; hard_timeout }

let install spec ~now = { spec; installed_at = now; packets = 0; bytes = 0 }

let spec_equal a b =
  a.priority = b.priority
  && Match_.equal a.match_ b.match_
  && List.length a.actions = List.length b.actions
  && List.for_all2 Action.equal a.actions b.actions
  && a.cookie = b.cookie
  && a.meter = b.meter

let account t ~bytes =
  t.packets <- t.packets + 1;
  t.bytes <- t.bytes + bytes

let pp_spec fmt s =
  Format.fprintf fmt "@[prio=%d cookie=%d %a -> %a%a@]" s.priority s.cookie
    Match_.pp s.match_ Action.pp_list s.actions
    (fun fmt -> function
      | None -> ()
      | Some m -> Format.fprintf fmt " meter:%d" m)
    s.meter

let pp fmt t =
  Format.fprintf fmt "%a (pkts=%d bytes=%d)" pp_spec t.spec t.packets t.bytes
