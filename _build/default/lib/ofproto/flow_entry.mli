(** Flow entries: the unit of data-plane configuration.

    A [spec] is the immutable description a controller sends in a
    Flow-Mod; an installed entry additionally carries mutable counters
    maintained by the switch. *)

type spec = {
  priority : int;
  match_ : Match_.t;
  actions : Action.t list;
  cookie : int;  (** opaque controller tag, used for deletion *)
  meter : int option;  (** optional meter id for rate limiting *)
  hard_timeout : float option;  (** seconds until unconditional removal *)
}

type t = {
  spec : spec;
  installed_at : float;
  mutable packets : int;
  mutable bytes : int;
}

(** [spec ?cookie ?meter ?hard_timeout ~priority match_ actions]
    builds a specification.  [cookie] defaults to 0. *)
val make_spec :
  ?cookie:int ->
  ?meter:int ->
  ?hard_timeout:float ->
  priority:int ->
  Match_.t ->
  Action.t list ->
  spec

(** [install spec ~now] creates an installed entry with zero counters. *)
val install : spec -> now:float -> t

(** [spec_equal a b] compares priority, match semantics, actions,
    cookie and meter (timeouts excluded: they do not affect forwarding). *)
val spec_equal : spec -> spec -> bool

(** [account t ~bytes] bumps the counters for one matched packet. *)
val account : t -> bytes:int -> unit

val pp_spec : Format.formatter -> spec -> unit

val pp : Format.formatter -> t -> unit
