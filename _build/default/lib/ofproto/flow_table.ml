type change =
  | Added of Flow_entry.spec
  | Removed of Flow_entry.spec * [ `Delete | `Hard_timeout ]
  | Modified of Flow_entry.spec

type t = {
  mutable entries : Flow_entry.t list; (* priority desc, FIFO within priority *)
  mutable version : int;
  mutable observers : (change -> unit) list;
}

let create () = { entries = []; version = 0; observers = [] }

let version t = t.version

let on_change t f = t.observers <- f :: t.observers

let notify t change =
  t.version <- t.version + 1;
  List.iter (fun f -> f change) t.observers

(* Insert keeping priority-descending order; within a priority the new
   entry goes last (FIFO). *)
let rec insert entry = function
  | [] -> [ entry ]
  | e :: rest when e.Flow_entry.spec.priority >= entry.Flow_entry.spec.priority ->
    e :: insert entry rest
  | rest -> entry :: rest

let add t (spec : Flow_entry.spec) ~now =
  let same_slot (e : Flow_entry.t) =
    e.spec.priority = spec.priority && Match_.equal e.spec.match_ spec.match_
  in
  let replaced = List.exists same_slot t.entries in
  let remaining = List.filter (fun e -> not (same_slot e)) t.entries in
  t.entries <- insert (Flow_entry.install spec ~now) remaining;
  notify t (if replaced then Modified spec else Added spec)

let remove_matching t ~reason pred =
  let removed, kept = List.partition pred t.entries in
  t.entries <- kept;
  List.iter (fun (e : Flow_entry.t) -> notify t (Removed (e.spec, reason))) removed;
  List.length removed

let delete t ~match_ ?priority () =
  let pred (e : Flow_entry.t) =
    (match priority with None -> true | Some p -> e.spec.priority = p)
    && Match_.subset e.spec.match_ match_
  in
  remove_matching t ~reason:`Delete pred

let delete_by_cookie t cookie =
  remove_matching t ~reason:`Delete (fun e -> e.Flow_entry.spec.cookie = cookie)

let expire t ~now =
  let expired (e : Flow_entry.t) =
    match e.spec.hard_timeout with
    | None -> false
    | Some timeout -> now >= e.installed_at +. timeout
  in
  let specs =
    List.filter_map
      (fun (e : Flow_entry.t) -> if expired e then Some e.spec else None)
      t.entries
  in
  let _count = remove_matching t ~reason:`Hard_timeout expired in
  specs

let lookup t ~in_port header =
  List.find_opt
    (fun (e : Flow_entry.t) -> Match_.matches e.spec.match_ ~in_port header)
    t.entries

let entries t = t.entries

let specs t = List.map (fun (e : Flow_entry.t) -> e.spec) t.entries

let size t = List.length t.entries

let clear t = t.entries <- []

let pp fmt t =
  Format.fprintf fmt "@[<v>%a@]"
    (Format.pp_print_list ~pp_sep:Format.pp_print_cut Flow_entry.pp)
    t.entries
