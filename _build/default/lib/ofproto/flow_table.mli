(** A priority-ordered flow table with OpenFlow add/modify/delete
    semantics.

    Lookup selects the highest-priority matching entry; among equal
    priorities the earliest-installed entry wins (deterministic model
    of the OpenFlow "overlapping entries" behaviour).  Every mutation
    bumps a version counter and is reported to registered observers —
    the hook used by flow-monitor events. *)

type t

type change =
  | Added of Flow_entry.spec
  | Removed of Flow_entry.spec * [ `Delete | `Hard_timeout ]
  | Modified of Flow_entry.spec  (** new spec after modification *)

(** [create ()] returns an empty table. *)
val create : unit -> t

(** [version t] increases on every mutation. *)
val version : t -> int

(** [on_change t f] registers an observer invoked synchronously after
    each mutation. *)
val on_change : t -> (change -> unit) -> unit

(** [add t spec ~now] installs a flow.  An existing entry with an
    identical priority and match predicate is replaced (OpenFlow
    overwrite semantics), reported as [Modified]. *)
val add : t -> Flow_entry.spec -> now:float -> unit

(** [delete t ~match_ ?priority ()] removes all entries whose match is
    a subset of [match_] (OpenFlow non-strict delete); when [priority]
    is given only entries of that exact priority are removed.  Returns
    the number removed. *)
val delete : t -> match_:Match_.t -> ?priority:int -> unit -> int

(** [delete_by_cookie t cookie] removes all entries carrying [cookie].
    Returns the number removed. *)
val delete_by_cookie : t -> int -> int

(** [expire t ~now] removes entries whose hard timeout has elapsed.
    Returns the expired specs. *)
val expire : t -> now:float -> Flow_entry.spec list

(** [lookup t ~in_port header] returns the winning entry, if any. *)
val lookup : t -> in_port:int -> Hspace.Header.t -> Flow_entry.t option

(** [entries t] lists installed entries in priority order (highest
    first, FIFO within a priority). *)
val entries : t -> Flow_entry.t list

(** [specs t] lists installed specs in the same order. *)
val specs : t -> Flow_entry.spec list

(** [size t] is the number of installed entries. *)
val size : t -> int

(** [clear t] removes everything without reporting changes (used to
    reset benchmark fixtures). *)
val clear : t -> unit

val pp : Format.formatter -> t -> unit
