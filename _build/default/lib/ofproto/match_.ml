type field_match = { value : int; mask : int }

type t = { in_port : int option; fields : (Hspace.Field.name * field_match) list }

let any = { in_port = None; fields = [] }

let with_in_port t p = { t with in_port = Some p }

let field_order f =
  let rec idx i = function
    | [] -> assert false
    | g :: rest -> if g = f then i else idx (i + 1) rest
  in
  idx 0 Hspace.Field.all

let normalise_fields fields =
  List.sort (fun (a, _) (b, _) -> compare (field_order a) (field_order b)) fields

let with_field t f ~value ~mask =
  let w = Hspace.Field.bit_width f in
  let full = if w >= 63 then -1 else (1 lsl w) - 1 in
  let mask = mask land full in
  let value = value land mask in
  if mask = 0 then { t with fields = List.remove_assoc f t.fields }
  else
    let fields = (f, { value; mask }) :: List.remove_assoc f t.fields in
    { t with fields = normalise_fields fields }

let with_exact t f v =
  let w = Hspace.Field.bit_width f in
  let full = if w >= 63 then -1 else (1 lsl w) - 1 in
  with_field t f ~value:v ~mask:full

let with_prefix t f ~value ~prefix_len =
  with_field t f ~value ~mask:(Hspace.Field.prefix_mask f prefix_len)

let in_port t = t.in_port

let fields t = t.fields

let matches t ~in_port header =
  (match t.in_port with None -> true | Some p -> p = in_port)
  && List.for_all
       (fun (f, { value; mask }) ->
         Hspace.Header.get header f land mask = value)
       t.fields

let to_tern t =
  List.fold_left
    (fun cube (f, { value; mask }) -> Hspace.Field.set_masked cube f ~value ~mask)
    (Hspace.Tern.all_x Hspace.Field.total_width)
    t.fields

let port_subset a b =
  match a, b with
  | _, None -> true
  | Some pa, Some pb -> pa = pb
  | None, Some _ -> false

let subset a b = port_subset a.in_port b.in_port && Hspace.Tern.subset (to_tern a) (to_tern b)

let port_overlap a b =
  match a, b with
  | None, _ | _, None -> true
  | Some pa, Some pb -> pa = pb

let overlaps a b =
  port_overlap a.in_port b.in_port && Hspace.Tern.overlaps (to_tern a) (to_tern b)

let equal a b = subset a b && subset b a

let pp fmt t =
  let pp_port fmt = function
    | None -> ()
    | Some p -> Format.fprintf fmt "in_port=%d " p
  in
  let pp_field fmt (f, { value; mask }) =
    Format.fprintf fmt "%a=%x/%x" Hspace.Field.pp_name f value mask
  in
  Format.fprintf fmt "{%a%a}" pp_port t.in_port
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt " ") pp_field)
    t.fields
