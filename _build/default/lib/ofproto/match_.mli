(** OpenFlow match expressions.

    A match constrains the ingress port and any subset of header fields
    with value/mask pairs, as in OpenFlow 1.3 OXM.  Matches convert to
    {!Hspace.Tern} cubes for logical verification and evaluate directly
    against concrete headers in the data plane. *)

type field_match = { value : int; mask : int }

type t

(** Matches every packet on every port. *)
val any : t

(** [with_in_port t p] additionally requires ingress port [p]. *)
val with_in_port : t -> int -> t

(** [with_field t f ~value ~mask] adds a masked field constraint
    (replacing any existing constraint on [f]). *)
val with_field : t -> Hspace.Field.name -> value:int -> mask:int -> t

(** [with_exact t f v] adds an exact-value constraint on [f]. *)
val with_exact : t -> Hspace.Field.name -> int -> t

(** [with_prefix t f ~value ~prefix_len] adds a CIDR-prefix constraint. *)
val with_prefix : t -> Hspace.Field.name -> value:int -> prefix_len:int -> t

(** [in_port t] is the required ingress port, if constrained. *)
val in_port : t -> int option

(** [fields t] lists the field constraints in a stable order. *)
val fields : t -> (Hspace.Field.name * field_match) list

(** [matches t ~in_port header] evaluates [t] against a concrete
    packet arriving on [in_port]. *)
val matches : t -> in_port:int -> Hspace.Header.t -> bool

(** [to_tern t] is the header-space cube of [t] (the in-port constraint
    is not part of the header and is returned by {!in_port}). *)
val to_tern : t -> Hspace.Tern.t

(** [subset a b] is true when every (port, header) matched by [a] is
    matched by [b]. *)
val subset : t -> t -> bool

(** [overlaps a b] is true when some (port, header) is matched by both. *)
val overlaps : t -> t -> bool

(** [equal a b] is semantic equality of the match predicates. *)
val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
