type packet_in_reason = No_match | Action_to_controller

type flow_mod =
  | Add_flow of Flow_entry.spec
  | Delete_flow of { match_ : Match_.t; priority : int option }
  | Delete_by_cookie of int

type monitor_event =
  | Flow_added of Flow_entry.spec
  | Flow_deleted of Flow_entry.spec
  | Flow_modified of Flow_entry.spec

type to_controller =
  | Packet_in of {
      sw : int;
      in_port : int;
      reason : packet_in_reason;
      header : Hspace.Header.t;
      payload : string;
    }
  | Flow_removed of { sw : int; spec : Flow_entry.spec; reason : [ `Delete | `Hard_timeout ] }
  | Monitor of { sw : int; event : monitor_event }
  | Flow_stats_reply of { sw : int; xid : int; flows : Flow_entry.spec list }
  | Meter_stats_reply of { sw : int; xid : int; meters : (int * Meter.band) list }
  | Echo_reply of { sw : int; xid : int }
  | Barrier_reply of { sw : int; xid : int }
  | Error of { sw : int; code : string }

type to_switch =
  | Flow_mod of flow_mod
  | Meter_mod of { id : int; band : Meter.band option }
  | Packet_out of { port : int; header : Hspace.Header.t; payload : string }
  | Flow_stats_request of { xid : int }
  | Meter_stats_request of { xid : int }
  | Echo_request of { xid : int }
  | Barrier_request of { xid : int }

let pp_to_controller fmt = function
  | Packet_in { sw; in_port; reason; header; _ } ->
    Format.fprintf fmt "packet_in sw=%d port=%d reason=%s %a" sw in_port
      (match reason with No_match -> "no_match" | Action_to_controller -> "action")
      Hspace.Header.pp header
  | Flow_removed { sw; spec; _ } ->
    Format.fprintf fmt "flow_removed sw=%d %a" sw Flow_entry.pp_spec spec
  | Monitor { sw; event } ->
    let kind, spec =
      match event with
      | Flow_added s -> ("add", s)
      | Flow_deleted s -> ("del", s)
      | Flow_modified s -> ("mod", s)
    in
    Format.fprintf fmt "monitor sw=%d %s %a" sw kind Flow_entry.pp_spec spec
  | Flow_stats_reply { sw; xid; flows } ->
    Format.fprintf fmt "flow_stats_reply sw=%d xid=%d (%d flows)" sw xid
      (List.length flows)
  | Meter_stats_reply { sw; xid; meters } ->
    Format.fprintf fmt "meter_stats_reply sw=%d xid=%d (%d meters)" sw xid
      (List.length meters)
  | Echo_reply { sw; xid } -> Format.fprintf fmt "echo_reply sw=%d xid=%d" sw xid
  | Barrier_reply { sw; xid } -> Format.fprintf fmt "barrier_reply sw=%d xid=%d" sw xid
  | Error { sw; code } -> Format.fprintf fmt "error sw=%d %s" sw code

let pp_to_switch fmt = function
  | Flow_mod (Add_flow spec) -> Format.fprintf fmt "flow_mod add %a" Flow_entry.pp_spec spec
  | Flow_mod (Delete_flow { match_; priority }) ->
    Format.fprintf fmt "flow_mod del %a%a" Match_.pp match_
      (fun fmt -> function
        | None -> ()
        | Some p -> Format.fprintf fmt " prio=%d" p)
      priority
  | Flow_mod (Delete_by_cookie c) -> Format.fprintf fmt "flow_mod del cookie=%d" c
  | Meter_mod { id; band } ->
    Format.fprintf fmt "meter_mod id=%d %s" id
      (match band with None -> "remove" | Some b -> string_of_int b.Meter.rate_kbps ^ "kbps")
  | Packet_out { port; header; _ } ->
    Format.fprintf fmt "packet_out port=%d %a" port Hspace.Header.pp header
  | Flow_stats_request { xid } -> Format.fprintf fmt "flow_stats_request xid=%d" xid
  | Meter_stats_request { xid } -> Format.fprintf fmt "meter_stats_request xid=%d" xid
  | Echo_request { xid } -> Format.fprintf fmt "echo_request xid=%d" xid
  | Barrier_request { xid } -> Format.fprintf fmt "barrier_request xid=%d" xid
