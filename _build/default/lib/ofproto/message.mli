(** Controller ↔ switch messages.

    A faithful (but simplified) model of the OpenFlow 1.3 message
    subset that RVaaS relies on: Packet-In/Packet-Out for in-band
    client interaction, Flow-Mod for configuration, flow-monitor events
    and multipart flow-stats for configuration monitoring (paper §II
    and §IV-A.1). *)

type packet_in_reason = No_match | Action_to_controller

type flow_mod =
  | Add_flow of Flow_entry.spec
  | Delete_flow of { match_ : Match_.t; priority : int option }
  | Delete_by_cookie of int

type monitor_event =
  | Flow_added of Flow_entry.spec
  | Flow_deleted of Flow_entry.spec
  | Flow_modified of Flow_entry.spec

(** Messages sent by a switch to a controller. *)
type to_controller =
  | Packet_in of {
      sw : int;
      in_port : int;
      reason : packet_in_reason;
      header : Hspace.Header.t;
      payload : string;
    }
  | Flow_removed of { sw : int; spec : Flow_entry.spec; reason : [ `Delete | `Hard_timeout ] }
  | Monitor of { sw : int; event : monitor_event }
  | Flow_stats_reply of { sw : int; xid : int; flows : Flow_entry.spec list }
  | Meter_stats_reply of { sw : int; xid : int; meters : (int * Meter.band) list }
  | Echo_reply of { sw : int; xid : int }
  | Barrier_reply of { sw : int; xid : int }
  | Error of { sw : int; code : string }

(** Messages sent by a controller to a switch. *)
type to_switch =
  | Flow_mod of flow_mod
  | Meter_mod of { id : int; band : Meter.band option }
  | Packet_out of { port : int; header : Hspace.Header.t; payload : string }
  | Flow_stats_request of { xid : int }
  | Meter_stats_request of { xid : int }
  | Echo_request of { xid : int }
  | Barrier_request of { xid : int }

val pp_to_controller : Format.formatter -> to_controller -> unit

val pp_to_switch : Format.formatter -> to_switch -> unit
