type band = { rate_kbps : int }

type bucket = {
  mutable band : band;
  mutable tokens : float; (* bytes *)
  mutable refreshed : float; (* sim time of last refill *)
}

type t = {
  meters : (int, bucket) Hashtbl.t;
  mutable version : int;
  mutable observers : (int * band option -> unit) list;
}

(* Burst allowance: one second at line rate. *)
let burst_bytes band = float_of_int band.rate_kbps *. 1000.0 /. 8.0

let create () = { meters = Hashtbl.create 8; version = 0; observers = [] }

let notify t change =
  t.version <- t.version + 1;
  List.iter (fun f -> f change) t.observers

let set t ~id band =
  let bucket = { band; tokens = burst_bytes band; refreshed = 0.0 } in
  Hashtbl.replace t.meters id bucket;
  notify t (id, Some band)

let remove t ~id =
  if Hashtbl.mem t.meters id then begin
    Hashtbl.remove t.meters id;
    notify t (id, None);
    true
  end
  else false

let find t ~id =
  Option.map (fun b -> b.band) (Hashtbl.find_opt t.meters id)

let to_list t =
  Hashtbl.fold (fun id b acc -> (id, b.band) :: acc) t.meters []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let allows t ~id ~now ~bytes =
  match Hashtbl.find_opt t.meters id with
  | None -> true
  | Some bucket ->
    let rate_bytes_per_s = float_of_int bucket.band.rate_kbps *. 1000.0 /. 8.0 in
    let elapsed = max 0.0 (now -. bucket.refreshed) in
    let cap = burst_bytes bucket.band in
    bucket.tokens <- Float.min cap (bucket.tokens +. (elapsed *. rate_bytes_per_s));
    bucket.refreshed <- now;
    let need = float_of_int bytes in
    if bucket.tokens >= need then begin
      bucket.tokens <- bucket.tokens -. need;
      true
    end
    else false

let version t = t.version

let on_change t f = t.observers <- f :: t.observers
