(** Meter table: token-bucket rate limiters referenced by flow entries.

    Meters are the configuration surface for the paper's fairness /
    network-neutrality queries: an attacker who throttles one client's
    traffic must install or modify a meter, which RVaaS observes in its
    configuration snapshot. *)

type band = { rate_kbps : int }

type t

val create : unit -> t

(** [set t ~id band] installs or replaces meter [id]. *)
val set : t -> id:int -> band -> unit

(** [remove t ~id] deletes meter [id]; returns whether it existed. *)
val remove : t -> id:int -> bool

(** [find t ~id] looks a meter up. *)
val find : t -> id:int -> band option

(** [to_list t] lists meters sorted by id. *)
val to_list : t -> (int * band) list

(** [allows t ~id ~now ~bytes] consumes tokens from meter [id]'s bucket
    and reports whether the packet passes; an unknown id always passes. *)
val allows : t -> id:int -> now:float -> bytes:int -> bool

(** [version t] increases on every configuration mutation. *)
val version : t -> int

(** [on_change t f] registers an observer of configuration changes. *)
val on_change : t -> (int * band option -> unit) -> unit
