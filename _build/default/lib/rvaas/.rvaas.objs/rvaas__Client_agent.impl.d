lib/rvaas/client_agent.ml: Codec Cryptosim Hashtbl Hspace List Netsim Printf Query Support Wire
