lib/rvaas/client_agent.mli: Cryptosim Netsim Query
