lib/rvaas/codec.ml: Cryptosim Hspace List Option Printf Query Result String
