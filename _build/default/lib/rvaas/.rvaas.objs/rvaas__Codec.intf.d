lib/rvaas/codec.mli: Cryptosim Query
