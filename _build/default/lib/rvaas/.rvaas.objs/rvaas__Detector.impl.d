lib/rvaas/detector.ml: Cryptosim Format Hashtbl Int64 List Monitor Ofproto Printf Query String
