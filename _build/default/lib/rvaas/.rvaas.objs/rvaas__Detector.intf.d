lib/rvaas/detector.mli: Format Monitor Ofproto Query
