lib/rvaas/directory.ml: Cryptosim Hashtbl List Netsim Option
