lib/rvaas/directory.mli: Cryptosim Netsim
