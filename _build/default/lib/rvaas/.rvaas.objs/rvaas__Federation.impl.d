lib/rvaas/federation.ml: Cryptosim Geo Hashtbl Hspace List Netsim Ofproto Option Printf Queue String Verifier
