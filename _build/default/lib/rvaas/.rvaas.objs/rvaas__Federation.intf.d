lib/rvaas/federation.mli: Cryptosim Geo Hspace Netsim Ofproto Verifier
