lib/rvaas/monitor.ml: Hashtbl Hspace List Netsim Ofproto Printf Snapshot String Support Wire
