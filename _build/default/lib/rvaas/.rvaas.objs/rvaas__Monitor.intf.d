lib/rvaas/monitor.mli: Hspace Netsim Ofproto Snapshot
