lib/rvaas/query.ml: Format Hspace String
