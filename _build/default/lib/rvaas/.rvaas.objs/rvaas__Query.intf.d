lib/rvaas/query.mli: Format Hspace
