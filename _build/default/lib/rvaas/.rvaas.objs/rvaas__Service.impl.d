lib/rvaas/service.ml: Codec Cryptosim Directory Geo Hashtbl Hspace List Monitor Netsim Ofproto Option Printf Query Snapshot String Support Verifier Wire
