lib/rvaas/service.mli: Cryptosim Directory Geo Monitor Netsim Query Verifier
