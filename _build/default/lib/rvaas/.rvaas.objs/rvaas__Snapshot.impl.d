lib/rvaas/snapshot.ml: Cryptosim Float Format Hashtbl List Ofproto String
