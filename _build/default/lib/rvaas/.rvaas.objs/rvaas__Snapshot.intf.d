lib/rvaas/snapshot.mli: Ofproto
