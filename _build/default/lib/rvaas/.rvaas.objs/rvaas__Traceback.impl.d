lib/rvaas/traceback.ml: Format Hashtbl List Monitor Ofproto Option Printf Verifier
