lib/rvaas/traceback.mli: Format Monitor Netsim Ofproto Verifier
