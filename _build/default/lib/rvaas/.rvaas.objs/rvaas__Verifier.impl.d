lib/rvaas/verifier.ml: Hashtbl Hspace List Netsim Ofproto Option Queue
