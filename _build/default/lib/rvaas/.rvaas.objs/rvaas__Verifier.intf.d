lib/rvaas/verifier.mli: Hspace Netsim Ofproto
