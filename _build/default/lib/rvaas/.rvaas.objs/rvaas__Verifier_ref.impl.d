lib/rvaas/verifier_ref.ml: Hashtbl Hspace List Netsim Ofproto Option Queue Verifier
