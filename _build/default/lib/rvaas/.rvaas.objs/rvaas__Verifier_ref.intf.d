lib/rvaas/verifier_ref.mli: Hspace Netsim Ofproto Verifier
