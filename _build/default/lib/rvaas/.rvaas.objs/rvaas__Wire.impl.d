lib/rvaas/wire.ml: Hspace List Ofproto
