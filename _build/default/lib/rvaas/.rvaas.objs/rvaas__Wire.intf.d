lib/rvaas/wire.mli: Ofproto
