(** Wire codec for the in-band protocol payloads.

    Four payload kinds travel inside the UDP packets of {!Wire}:

    - {b request} (client → service): sealed to the service's public
      key so the provider cannot read query contents, and HMAC-tagged
      with the client's registered key so the service can authenticate
      the requester.
    - {b auth request} (service → endpoint host): a fresh challenge,
      signed by the service so hosts only answer the genuine RVaaS.
    - {b auth reply} (endpoint host → service): echoes the challenge
      under the host's client key.
    - {b answer} (service → client): the query answer, signed by the
      service.

    The format is line-oriented [key=value] text — easy to inspect in
    tests and logs. *)

type request = { client : int; nonce : string; query : Query.t }

(** [encode_request r ~key ~recipient] authenticates with the client
    [key] and seals to the service public key. *)
val encode_request : request -> key:Cryptosim.Hmac.key -> recipient:Cryptosim.Keys.public -> string

(** [decode_request payload ~keypair ~lookup_key] opens the box with
    the service [keypair], parses, and verifies the client tag using
    [lookup_key client]. *)
val decode_request :
  string ->
  keypair:Cryptosim.Keys.keypair ->
  lookup_key:(int -> Cryptosim.Hmac.key option) ->
  (request, string) result

(** [encode_auth_request ~challenge ~signer] signs a challenge. *)
val encode_auth_request : challenge:string -> signer:Cryptosim.Keys.keypair -> string

(** [decode_auth_request payload ~service_public] verifies and returns
    the challenge. *)
val decode_auth_request :
  string -> service_public:Cryptosim.Keys.public -> (string, string) result

type auth_reply = { reply_client : int; challenge : string }

(** [encode_auth_reply ~client ~challenge ~key] tags the echo with the
    client key. *)
val encode_auth_reply : client:int -> challenge:string -> key:Cryptosim.Hmac.key -> string

(** [decode_auth_reply payload ~lookup_key] parses and verifies. *)
val decode_auth_reply :
  string -> lookup_key:(int -> Cryptosim.Hmac.key option) -> (auth_reply, string) result

(** [encode_answer a ~signer] signs the serialised answer. *)
val encode_answer : Query.answer -> signer:Cryptosim.Keys.keypair -> string

(** [decode_answer payload ~service_public] verifies the service
    signature and parses. *)
val decode_answer :
  string -> service_public:Cryptosim.Keys.public -> (Query.answer, string) result
