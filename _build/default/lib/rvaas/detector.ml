type alarm =
  | Unknown_access_point of { sw : int; port : int }
  | Unauthenticated_endpoint of { sw : int; port : int }
  | Missing_replies of { expected : int; got : int }
  | Forbidden_jurisdiction of string
  | Path_stretch of { observed : int; optimal : int; bound : float }
  | Throttled of { meter : int; rate_kbps : int; floor_kbps : int }
  | Unreachable_expected of { sw : int; port : int }
  | Config_drift of { at : float; sw : int; detail : string }

type policy = {
  own_points : (int * int) list;
  allowed_peer_points : (int * int) list;
  forbidden_jurisdictions : string list;
  max_path_stretch : float;
  min_rate_kbps : int option;
  expected_reachable : (int * int) list;
}

let default_policy ~own_points =
  {
    own_points;
    allowed_peer_points = [];
    forbidden_jurisdictions = [];
    max_path_stretch = 1.0;
    min_rate_kbps = None;
    expected_reachable = [];
  }

let check_answer policy (a : Query.answer) =
  let alarms = ref [] in
  let add alarm = alarms := alarm :: !alarms in
  let known (sw, port) =
    List.mem (sw, port) policy.own_points || List.mem (sw, port) policy.allowed_peer_points
  in
  List.iter
    (fun (e : Query.endpoint_report) ->
      if not (known (e.sw, e.port)) then add (Unknown_access_point { sw = e.sw; port = e.port });
      if not e.authenticated then
        add (Unauthenticated_endpoint { sw = e.sw; port = e.port }))
    a.endpoints;
  if a.auth_replies < a.total_auth_requests then
    add (Missing_replies { expected = a.total_auth_requests; got = a.auth_replies });
  List.iter
    (fun j ->
      if List.mem j policy.forbidden_jurisdictions then add (Forbidden_jurisdiction j))
    a.jurisdictions;
  (match a.path_hops with
  | Some (observed, optimal)
    when optimal > 0 && float_of_int observed > policy.max_path_stretch *. float_of_int optimal
    ->
    add (Path_stretch { observed; optimal; bound = policy.max_path_stretch })
  | Some _ | None -> ());
  (match policy.min_rate_kbps with
  | None -> ()
  | Some floor_kbps ->
    List.iter
      (fun (meter, rate_kbps) ->
        if rate_kbps < floor_kbps then add (Throttled { meter; rate_kbps; floor_kbps }))
      a.meters);
  (* Only endpoint-style answers can witness reachability. *)
  (match a.kind with
  | Query.Reachable_endpoints | Query.Sources_reaching_me | Query.Isolation ->
    List.iter
      (fun (sw, port) ->
        let present =
          List.exists (fun (e : Query.endpoint_report) -> e.sw = sw && e.port = port)
            a.endpoints
        in
        if not present then add (Unreachable_expected { sw; port }))
      policy.expected_reachable
  | Query.Geo | Query.Path_length _ | Query.Fairness | Query.Transfer_summary -> ());
  List.rev !alarms

(* ---- history-based drift detection ---- *)

type baseline = {
  per_switch : (int, string list) Hashtbl.t; (* sorted fingerprints *)
  digest : int64;
}

let fingerprint spec = Format.asprintf "%a" Ofproto.Flow_entry.pp_spec spec

let baseline_of_flows flows =
  let per_switch = Hashtbl.create 16 in
  List.iter
    (fun (sw, specs) ->
      Hashtbl.replace per_switch sw (List.sort String.compare (List.map fingerprint specs)))
    flows;
  let lines =
    List.concat_map
      (fun (sw, specs) -> List.map (fun s -> string_of_int sw ^ "|" ^ fingerprint s) specs)
      flows
  in
  let digest = Cryptosim.Hash.digest (String.concat "\n" (List.sort String.compare lines)) in
  { per_switch; digest }

let in_baseline baseline sw spec =
  match Hashtbl.find_opt baseline.per_switch sw with
  | None -> false
  | Some fps -> List.mem (fingerprint spec) fps

let check_history baseline entries =
  List.filter_map
    (fun { Monitor.at; sw; what } ->
      let drift detail = Some (Config_drift { at; sw; detail }) in
      match what with
      | Monitor.Event (Ofproto.Message.Flow_added spec)
      | Monitor.Event (Ofproto.Message.Flow_modified spec) ->
        if in_baseline baseline sw spec then None
        else drift (Printf.sprintf "unexpected rule: %s" (fingerprint spec))
      | Monitor.Event (Ofproto.Message.Flow_deleted spec) | Monitor.Removed spec ->
        if in_baseline baseline sw spec then
          drift (Printf.sprintf "baseline rule removed: %s" (fingerprint spec))
        else None
      | Monitor.Poll { digest; _ } ->
        if Int64.equal digest baseline.digest then None
        else drift "poll snapshot diverges from baseline")
    entries

let describe = function
  | Unknown_access_point { sw; port } ->
    Printf.sprintf "unknown access point sw=%d port=%d can reach the client" sw port
  | Unauthenticated_endpoint { sw; port } ->
    Printf.sprintf "endpoint sw=%d port=%d did not authenticate" sw port
  | Missing_replies { expected; got } ->
    Printf.sprintf "only %d of %d auth requests were answered" got expected
  | Forbidden_jurisdiction j -> Printf.sprintf "traffic can traverse jurisdiction %s" j
  | Path_stretch { observed; optimal; bound } ->
    Printf.sprintf "path of %d hops exceeds %.2fx the optimal %d" observed bound optimal
  | Throttled { meter; rate_kbps; floor_kbps } ->
    Printf.sprintf "meter %d limits to %dkbps, below the agreed %dkbps" meter rate_kbps
      floor_kbps
  | Unreachable_expected { sw; port } ->
    Printf.sprintf "expected endpoint sw=%d port=%d is no longer reachable" sw port
  | Config_drift { at; sw; detail } ->
    Printf.sprintf "config drift at t=%.6f on sw%d: %s" at sw detail

let pp fmt alarm = Format.pp_print_string fmt (describe alarm)
