(** Detection logic: turning answers and monitoring history into
    alarms.

    Two complementary detectors, matching the paper's passive/active
    split:

    - {b answer-based} (client side): compare a query answer against
      the client's policy — expected access points, forbidden
      jurisdictions, path-stretch bounds, minimum rates, and the
      counting defence (missing auth replies).
    - {b history-based} (service side): compare the monitoring history
      against a baseline configuration; any added/removed rule outside
      the baseline is drift, with the observation timestamp — this is
      what catches transient reconfiguration attacks after the fact. *)

type alarm =
  | Unknown_access_point of { sw : int; port : int }
      (** an access point outside the client's own set can reach it *)
  | Unauthenticated_endpoint of { sw : int; port : int }
      (** a probed endpoint never answered — possible suppression *)
  | Missing_replies of { expected : int; got : int }
      (** counting defence: fewer replies than requests *)
  | Forbidden_jurisdiction of string
  | Path_stretch of { observed : int; optimal : int; bound : float }
  | Throttled of { meter : int; rate_kbps : int; floor_kbps : int }
  | Unreachable_expected of { sw : int; port : int }
      (** an endpoint the client expects to reach is missing from the
          answer — e.g. a blackholed peer *)
  | Config_drift of { at : float; sw : int; detail : string }

(** Client-side policy. *)
type policy = {
  own_points : (int * int) list;  (** legitimate access points *)
  allowed_peer_points : (int * int) list;
      (** whitelisted foreign access points (e.g. approved peers) *)
  forbidden_jurisdictions : string list;
  max_path_stretch : float;  (** observed/optimal bound, e.g. 1.5 *)
  min_rate_kbps : int option;  (** agreed rate floor, for fairness *)
  expected_reachable : (int * int) list;
      (** access points the client expects endpoint answers to include *)
}

(** [default_policy ~own_points] permits only the client's own points,
    forbids nothing geographically, allows stretch 1.0 and sets no rate
    floor. *)
val default_policy : own_points:(int * int) list -> policy

(** [check_answer policy answer] returns alarms raised by one answer. *)
val check_answer : policy -> Query.answer -> alarm list

(** [baseline_of_flows flows] fingerprints a believed-good
    configuration: a list of (switch, rule list) pairs. *)
type baseline

val baseline_of_flows : (int * Ofproto.Flow_entry.spec list) list -> baseline

(** [check_history baseline history] returns drift alarms: monitor
    events or polls that show rules beyond (or missing from) the
    baseline. *)
val check_history : baseline -> Monitor.history_entry list -> alarm list

(** [describe alarm] is a one-line rendering. *)
val describe : alarm -> string

val pp : Format.formatter -> alarm -> unit
