type client_record = {
  client : int;
  name : string;
  key : Cryptosim.Hmac.key;
  hosts : (int * int) list;
  subnet : (int * int) option;
}

type t = { records : (int, client_record) Hashtbl.t }

let create () = { records = Hashtbl.create 8 }

let register t record = Hashtbl.replace t.records record.client record

let find t ~client = Hashtbl.find_opt t.records client

let key t ~client = Option.map (fun r -> r.key) (find t ~client)

let clients t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.records [] |> List.sort compare

let fold_hosts t f =
  Hashtbl.fold
    (fun _ record acc ->
      List.fold_left (fun acc (host, ip) -> f acc record host ip) acc record.hosts)
    t.records

let host_ip t ~host =
  fold_hosts t (fun acc _record h ip -> if h = host then Some ip else acc) None

let client_of_host t ~host =
  fold_hosts t (fun acc record h _ip -> if h = host then Some record.client else acc) None

let access_points t topo ~client =
  match find t ~client with
  | None -> []
  | Some record ->
    List.filter_map
      (fun (host, _ip) ->
        match Netsim.Topology.host_attachment topo host with
        | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } -> Some (sw, port)
        | Some _ | None -> None)
      record.hosts
    |> List.sort_uniq compare
