(** Client directory: what RVaaS knows about registered clients.

    Populated out of band at subscription time (the paper assumes each
    client registers keys and its legitimate access points with the
    service).  The directory is the reference against which isolation
    answers are interpreted: an access point that can reach a client
    but does not belong to it is a violation. *)

type client_record = {
  client : int;
  name : string;
  key : Cryptosim.Hmac.key;
  hosts : (int * int) list;  (** (host id, host IPv4) *)
  subnet : (int * int) option;  (** (prefix value, prefix length) *)
}

type t

val create : unit -> t

(** [register t record] adds or replaces a client record. *)
val register : t -> client_record -> unit

(** [find t ~client] looks a record up. *)
val find : t -> client:int -> client_record option

(** [key t ~client] is the client's HMAC key, if registered. *)
val key : t -> client:int -> Cryptosim.Hmac.key option

(** [clients t] lists registered client ids, ascending. *)
val clients : t -> int list

(** [host_ip t ~host] resolves a registered host's address. *)
val host_ip : t -> host:int -> int option

(** [client_of_host t ~host] is the owning client of a registered
    host. *)
val client_of_host : t -> host:int -> int option

(** [access_points t topo ~client] derives the client's legitimate
    access points from the trusted wiring plan. *)
val access_points : t -> Netsim.Topology.t -> client:int -> (int * int) list
