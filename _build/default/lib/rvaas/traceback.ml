type incident = {
  sw : int;
  spec : Ofproto.Flow_entry.spec;
  first_seen : float;
  retracted : float option;
  suspect_sources : Verifier.endpoint list;
  reaches_victim : bool;
}

let fingerprint spec = Format.asprintf "%a" Ofproto.Flow_entry.pp_spec spec

let in_baseline baseline_flows sw spec =
  match List.assoc_opt sw baseline_flows with
  | None -> false
  | Some specs -> List.exists (fun s -> fingerprint s = fingerprint spec) specs

(* Foreign rule lifetimes: pair every non-baseline Flow_added with the
   next observed deletion of the same spec on the same switch. *)
let lifetimes baseline_flows history =
  let open_incidents : (string * int, float * Ofproto.Flow_entry.spec) Hashtbl.t =
    Hashtbl.create 8
  in
  let closed = ref [] in
  List.iter
    (fun { Monitor.at; sw; what } ->
      match what with
      | Monitor.Event (Ofproto.Message.Flow_added spec)
      | Monitor.Event (Ofproto.Message.Flow_modified spec) ->
        if not (in_baseline baseline_flows sw spec) then begin
          let key = (fingerprint spec, sw) in
          if not (Hashtbl.mem open_incidents key) then
            Hashtbl.replace open_incidents key (at, spec)
        end
      | Monitor.Event (Ofproto.Message.Flow_deleted spec) | Monitor.Removed spec ->
        let key = (fingerprint spec, sw) in
        (match Hashtbl.find_opt open_incidents key with
        | Some (first_seen, spec) ->
          Hashtbl.remove open_incidents key;
          closed := (sw, spec, first_seen, Some at) :: !closed
        | None -> ())
      | Monitor.Poll _ -> ())
    history;
  let still_open =
    Hashtbl.fold
      (fun (_fp, sw) (first_seen, spec) acc -> (sw, spec, first_seen, None) :: acc)
      open_incidents []
  in
  List.sort
    (fun (_, _, a, _) (_, _, b, _) -> compare a b)
    (List.rev_append !closed still_open)

let sources_reaching_with topo flows_of ~victim =
  Verifier.sources_reaching ~flows_of topo ~dst:victim ~hs:(Verifier.ip_traffic_hs ())
  |> List.map fst

let investigate ~baseline_flows ~history topo ~victim =
  let baseline_of sw = Option.value ~default:[] (List.assoc_opt sw baseline_flows) in
  let baseline_sources = sources_reaching_with topo baseline_of ~victim in
  List.map
    (fun (sw, spec, first_seen, retracted) ->
      (* Hypothetical configuration: baseline plus the foreign rule,
         inserted in priority position. *)
      let flows_of sw' =
        let base = baseline_of sw' in
        if sw' <> sw then base
        else
          let rec insert = function
            | [] -> [ spec ]
            | (s : Ofproto.Flow_entry.spec) :: rest
              when s.priority >= spec.Ofproto.Flow_entry.priority ->
              s :: insert rest
            | rest -> spec :: rest
          in
          insert base
      in
      let with_rule = sources_reaching_with topo flows_of ~victim in
      let suspect_sources =
        List.filter (fun src -> not (List.mem src baseline_sources)) with_rule
      in
      {
        sw;
        spec;
        first_seen;
        retracted;
        suspect_sources;
        reaches_victim = suspect_sources <> [] || with_rule <> baseline_sources;
      })
    (lifetimes baseline_flows history)

let pp_incident fmt i =
  Format.fprintf fmt "@[<v2>sw%d at t=%.6f%s: %a@ suspects: %a@]" i.sw i.first_seen
    (match i.retracted with
    | None -> " (still live)"
    | Some t -> Printf.sprintf " (retracted t=%.6f)" t)
    Ofproto.Flow_entry.pp_spec i.spec
    (Format.pp_print_list
       ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       (fun fmt (e : Verifier.endpoint) ->
         Format.fprintf fmt "h%d@@sw%d:%d" e.host e.sw e.port))
    i.suspect_sources
