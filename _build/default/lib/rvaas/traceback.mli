(** Attack traceback from the monitoring history (paper §IV-C.b).

    "A slightly more complex service may also maintain some history of
    the recent past, allowing RVaaS for example to traceback the
    ingress port of an attack."

    Given a baseline configuration, the monitoring history and a victim
    access point, {!investigate} reconstructs each foreign rule's
    lifetime and attributes it: which access points could reach the
    victim while the rule was installed *that could not under the
    baseline alone* — the candidate ingress ports of the attack. *)

type incident = {
  sw : int;  (** switch the foreign rule appeared on *)
  spec : Ofproto.Flow_entry.spec;
  first_seen : float;
  retracted : float option;
      (** when its deletion was observed; [None] if still live *)
  suspect_sources : Verifier.endpoint list;
      (** access points gaining reachability to the victim through the
          rule (empty when the rule does not affect the victim) *)
  reaches_victim : bool;
      (** whether the rule changes what can reach the victim at all *)
}

(** [investigate ~baseline_flows ~history topo ~victim] returns
    incidents ordered by [first_seen].  [baseline_flows] is the
    commissioned configuration as (switch, rules) pairs; [history] the
    monitor's observation log. *)
val investigate :
  baseline_flows:(int * Ofproto.Flow_entry.spec list) list ->
  history:Monitor.history_entry list ->
  Netsim.Topology.t ->
  victim:Verifier.endpoint ->
  incident list

val pp_incident : Format.formatter -> incident -> unit
