let width = Hspace.Field.total_width

(* Explicit guards: cube_i minus union of higher-priority cubes. *)
let explicit_guards flows_of sw port =
  let applicable =
    List.filter
      (fun (spec : Ofproto.Flow_entry.spec) ->
        match Ofproto.Match_.in_port spec.match_ with
        | None -> true
        | Some p -> p = port)
      (flows_of sw)
  in
  let _, guarded =
    List.fold_left
      (fun (shadow, acc) (spec : Ofproto.Flow_entry.spec) ->
        let cube = Hspace.Hs.of_cube (Ofproto.Match_.to_tern spec.match_) in
        let guard = Hspace.Hs.diff cube shadow in
        let shadow = Hspace.Hs.union shadow cube in
        let acc = if Hspace.Hs.is_empty guard then acc else (spec, guard) :: acc in
        (shadow, acc))
      (Hspace.Hs.empty width, [])
      applicable
  in
  List.rev guarded

let symbolic_apply ~ports ~in_port hs actions =
  let flood_ports = List.filter (fun p -> p <> in_port) ports in
  let cur = ref hs
  and outs = ref []
  and ctrl = ref (Hspace.Hs.empty width) in
  List.iter
    (fun action ->
      match action with
      | Ofproto.Action.Output p -> if p <> in_port then outs := (p, !cur) :: !outs
      | Ofproto.Action.In_port -> outs := (in_port, !cur) :: !outs
      | Ofproto.Action.Flood -> List.iter (fun p -> outs := (p, !cur) :: !outs) flood_ports
      | Ofproto.Action.To_controller -> ctrl := Hspace.Hs.union !ctrl !cur
      | Ofproto.Action.Set_field (f, v) ->
        cur :=
          Hspace.Hs.of_cubes width
            (List.map (fun c -> Hspace.Field.set_exact c f v) (Hspace.Hs.cubes !cur))
      | Ofproto.Action.Set_queue _ -> ())
    actions;
  (List.rev !outs, !ctrl)

let reach ~flows_of topo ~src_sw ~src_port ~hs =
  let seen : (int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 64 in
  let guards_cache = Hashtbl.create 64 in
  let guards sw port =
    match Hashtbl.find_opt guards_cache (sw, port) with
    | Some g -> g
    | None ->
      let g = explicit_guards flows_of sw port in
      Hashtbl.replace guards_cache (sw, port) g;
      g
  in
  let endpoints = Hashtbl.create 16 in
  let controller = Hashtbl.create 16 in
  let paths = Hashtbl.create 16 in
  let traversed = Hashtbl.create 16 in
  let rule_visits = ref 0 in
  let queue = Queue.create () in
  let enqueue sw port hs path =
    if not (Hspace.Hs.is_empty hs) then begin
      let old =
        Option.value ~default:(Hspace.Hs.empty width) (Hashtbl.find_opt seen (sw, port))
      in
      let fresh = Hspace.Hs.diff hs old in
      if not (Hspace.Hs.is_empty fresh) then begin
        Hashtbl.replace seen (sw, port) (Hspace.Hs.union old fresh);
        Queue.add (sw, port, fresh, path) queue
      end
    end
  in
  enqueue src_sw src_port hs [ src_sw ];
  while not (Queue.is_empty queue) do
    let sw, port, hs, path = Queue.pop queue in
    Hashtbl.replace traversed sw ();
    if List.length path <= Netsim.Packet.max_hops then
      List.iter
        (fun ((spec : Ofproto.Flow_entry.spec), guard) ->
          incr rule_visits;
          let matched = Hspace.Hs.inter hs guard in
          if not (Hspace.Hs.is_empty matched) then begin
            let ports = Netsim.Topology.switch_ports topo sw in
            let outs, ctrl = symbolic_apply ~ports ~in_port:port matched spec.actions in
            if not (Hspace.Hs.is_empty ctrl) then begin
              let old =
                Option.value ~default:(Hspace.Hs.empty width)
                  (Hashtbl.find_opt controller sw)
              in
              Hashtbl.replace controller sw (Hspace.Hs.union old ctrl)
            end;
            List.iter
              (fun (out_port, out) ->
                let here = Netsim.Topology.{ node = Switch sw; port = out_port } in
                match Netsim.Topology.peer topo here with
                | None -> ()
                | Some far -> (
                  match far.Netsim.Topology.node with
                  | Netsim.Topology.Host host ->
                    let ep = { Verifier.host; sw; port = out_port } in
                    let old =
                      Option.value ~default:(Hspace.Hs.empty width)
                        (Hashtbl.find_opt endpoints ep)
                    in
                    Hashtbl.replace endpoints ep (Hspace.Hs.union old out);
                    if not (Hashtbl.mem paths ep) then
                      Hashtbl.replace paths ep (List.rev path)
                  | Netsim.Topology.Switch next_sw ->
                    enqueue next_sw far.Netsim.Topology.port out (next_sw :: path)))
              outs
          end)
        (guards sw port)
  done;
  {
    Verifier.endpoints =
      Hashtbl.fold (fun ep hs acc -> (ep, hs) :: acc) endpoints []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    controller_hits =
      Hashtbl.fold (fun sw hs acc -> (sw, hs) :: acc) controller []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    traversed =
      Hashtbl.fold (fun sw () acc -> sw :: acc) traversed [] |> List.sort compare;
    sample_paths =
      Hashtbl.fold (fun ep path acc -> (ep, path) :: acc) paths []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    handoffs = [];
    rule_visits = !rule_visits;
  }
