(** Reference reachability implementation (naive, obviously correct).

    Materialises every rule's guard as an explicit header-space value
    (match cube minus the union of all strictly-higher-priority
    applicable cubes) and intersects propagated sets against it — the
    textbook HSA formulation.  Exponentially slower than
    {!Verifier.reach_in}'s lazy shadow subtraction on overlapping rule
    sets, but a direct transcription of the semantics.

    Used by differential tests (optimised verifier ≡ reference on small
    networks) and by the ablation benchmark that justifies the
    optimisation in DESIGN.md. *)

(** [reach ~flows_of topo ~src_sw ~src_port ~hs] mirrors
    {!Verifier.reach}; results are comparable field by field
    ([handoffs] is always empty — the reference supports no
    boundaries). *)
val reach :
  flows_of:(int -> Ofproto.Flow_entry.spec list) ->
  Netsim.Topology.t ->
  src_sw:int ->
  src_port:int ->
  hs:Hspace.Hs.t ->
  Verifier.reach_result
