lib/sdnctl/addressing.ml: Format Hashtbl List Netsim Option
