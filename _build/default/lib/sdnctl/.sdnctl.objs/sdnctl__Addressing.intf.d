lib/sdnctl/addressing.mli: Format Netsim
