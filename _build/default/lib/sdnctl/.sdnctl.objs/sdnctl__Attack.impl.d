lib/sdnctl/attack.ml: Addressing Format Hspace List Netsim Ofproto Printf
