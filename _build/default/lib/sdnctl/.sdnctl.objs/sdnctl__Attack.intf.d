lib/sdnctl/attack.mli: Addressing Format Netsim
