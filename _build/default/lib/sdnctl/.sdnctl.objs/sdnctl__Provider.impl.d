lib/sdnctl/provider.ml: Addressing Hspace List Netsim Ofproto Option
