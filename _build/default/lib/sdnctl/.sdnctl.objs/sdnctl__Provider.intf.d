lib/sdnctl/provider.mli: Addressing Netsim
