type host_info = { host : int; client : int; ip : int; mac : int }

type client_state = { name : string; mutable next_host_index : int; mutable members : int list }

type t = {
  client_table : (int, client_state) Hashtbl.t;
  host_table : (int, host_info) Hashtbl.t;
  ip_table : (int, host_info) Hashtbl.t;
}

let create () =
  {
    client_table = Hashtbl.create 8;
    host_table = Hashtbl.create 32;
    ip_table = Hashtbl.create 32;
  }

let base_prefix = 10 lsl 24 (* 10.0.0.0 *)

let add_client t ~client ~name =
  if client < 0 || client > 255 then invalid_arg "Addressing.add_client: id out of range";
  if Hashtbl.mem t.client_table client then
    invalid_arg "Addressing.add_client: duplicate client";
  Hashtbl.replace t.client_table client { name; next_host_index = 1; members = [] }

let add_host t ~host ~client =
  if Hashtbl.mem t.host_table host then invalid_arg "Addressing.add_host: duplicate host";
  match Hashtbl.find_opt t.client_table client with
  | None -> invalid_arg "Addressing.add_host: unknown client"
  | Some state ->
    let index = state.next_host_index in
    if index > 0xFFFF then invalid_arg "Addressing.add_host: client subnet exhausted";
    state.next_host_index <- index + 1;
    state.members <- host :: state.members;
    let ip = base_prefix lor (client lsl 16) lor index in
    let info = { host; client; ip; mac = 0x020000000000 lor host } in
    Hashtbl.replace t.host_table host info;
    Hashtbl.replace t.ip_table ip info;
    info

let client_name t ~client =
  Option.map (fun s -> s.name) (Hashtbl.find_opt t.client_table client)

let clients t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.client_table [] |> List.sort compare

let host t ~host = Hashtbl.find_opt t.host_table host

let host_by_ip t ~ip = Hashtbl.find_opt t.ip_table ip

let hosts_of_client t ~client =
  match Hashtbl.find_opt t.client_table client with
  | None -> []
  | Some state ->
    List.sort compare state.members
    |> List.filter_map (fun h -> Hashtbl.find_opt t.host_table h)

let all_hosts t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.host_table []
  |> List.sort (fun a b -> compare a.host b.host)

let subnet _t ~client = (base_prefix lor (client lsl 16), 16)

let client_of_ip t ~ip =
  let client = (ip lsr 16) land 0xFF in
  if ip lsr 24 = 10 && Hashtbl.mem t.client_table client then Some client else None

let access_points t topo ~client =
  hosts_of_client t ~client
  |> List.filter_map (fun info ->
         match Netsim.Topology.host_attachment topo info.host with
         | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } -> Some (sw, port)
         | Some _ | None -> None)
  |> List.sort_uniq compare

let pp_ip fmt ip =
  Format.fprintf fmt "%d.%d.%d.%d" ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
    ((ip lsr 8) land 0xFF) (ip land 0xFF)
