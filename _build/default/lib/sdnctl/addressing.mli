(** Client and host addressing.

    Each client owns an IPv4 /16 subnet (10.c.0.0/16); its hosts get
    sequential addresses within it.  The registry also records which
    access points (switch, port) belong to which client — the ground
    truth against which RVaaS isolation answers are judged. *)

type host_info = { host : int; client : int; ip : int; mac : int }

type t

val create : unit -> t

(** [add_client t ~client ~name] declares a client.
    @raise Invalid_argument on duplicates or ids outside [0, 255]. *)
val add_client : t -> client:int -> name:string -> unit

(** [add_host t ~host ~client] registers a host under a client and
    assigns its address.  @raise Invalid_argument when the host is
    already registered or the client unknown. *)
val add_host : t -> host:int -> client:int -> host_info

(** [client_name t ~client] looks a client's name up. *)
val client_name : t -> client:int -> string option

(** [clients t] lists client ids, ascending. *)
val clients : t -> int list

(** [host t ~host] looks a host's addressing up. *)
val host : t -> host:int -> host_info option

(** [host_by_ip t ~ip] reverse-resolves an address. *)
val host_by_ip : t -> ip:int -> host_info option

(** [hosts_of_client t ~client] lists a client's hosts, ascending by
    host id. *)
val hosts_of_client : t -> client:int -> host_info list

(** [all_hosts t] lists all registered hosts, ascending by host id. *)
val all_hosts : t -> host_info list

(** [subnet t ~client] is the client's (prefix value, prefix length).
    The prefix value is the full 32-bit address of the subnet base. *)
val subnet : t -> client:int -> int * int

(** [client_of_ip t ~ip] derives the owning client from an address
    inside a registered client subnet. *)
val client_of_ip : t -> ip:int -> int option

(** [access_points t net_topo ~client] lists the (switch, port)
    attachment points of the client's hosts. *)
val access_points : t -> Netsim.Topology.t -> client:int -> (int * int) list

val pp_ip : Format.formatter -> int -> unit
