type t =
  | Join of { victim_client : int; attacker_host : int }
  | Divert of { src_host : int; dst_host : int; via_sw : int }
  | Exfiltrate of { victim_host : int; attacker_host : int }
  | Blackhole of { victim_host : int }
  | Meter_squeeze of { victim_host : int; rate_kbps : int }
  | Transient of { attack : t; start : float; duration : float }

let cookie = 0xBAD

let priority = 400

let meter_id = 0xBAD

let host_info_exn addressing host =
  match Addressing.host ~host addressing with
  | Some info -> info
  | None -> invalid_arg "Attack: unknown host"

let attachment_exn topo host =
  match Netsim.Topology.host_attachment topo host with
  | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } -> (sw, port)
  | Some _ | None -> invalid_arg "Attack: host is not attached to a switch"

let ip_dst_match ?in_port ip =
  let m = Ofproto.Match_.any in
  let m = match in_port with None -> m | Some p -> Ofproto.Match_.with_in_port m p in
  let m = Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip in
  Ofproto.Match_.with_exact m Hspace.Field.Ip_dst ip

let add_flow ?meter match_ actions =
  let spec = Ofproto.Flow_entry.make_spec ~cookie ?meter ~priority match_ actions in
  Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec)

(* Route action from [sw] towards [dst_host]'s attachment. *)
let towards topo sw dst_host =
  let dst_sw, dst_port = attachment_exn topo dst_host in
  if sw = dst_sw then Ofproto.Action.Output dst_port
  else
    match Netsim.Topology.next_hop_port topo ~from_sw:sw ~to_sw:dst_sw with
    | Some port -> Ofproto.Action.Output port
    | None -> invalid_arg "Attack: destination unreachable in wiring plan"

let join_mods net addressing ~victim_client ~attacker_host =
  let topo = Netsim.Net.topology net in
  let _, attacker_port = attachment_exn topo attacker_host in
  let attacker_sw, _ = attachment_exn topo attacker_host in
  List.map
    (fun (victim : Addressing.host_info) ->
      let match_ = ip_dst_match ~in_port:attacker_port victim.ip in
      (attacker_sw, add_flow match_ [ towards topo attacker_sw victim.host ]))
    (Addressing.hosts_of_client addressing ~client:victim_client)

let divert_mods net addressing ~src_host ~dst_host ~via_sw =
  let topo = Netsim.Net.topology net in
  let src_sw, _ = attachment_exn topo src_host in
  let dst_sw, dst_port = attachment_exn topo dst_host in
  let dst_info = host_info_exn addressing dst_host in
  let path_exn from_sw to_sw =
    match Netsim.Topology.shortest_switch_path topo ~from_sw ~to_sw with
    | Some p -> p
    | None -> invalid_arg "Attack.Divert: no path through the detour switch"
  in
  let first_leg = path_exn src_sw via_sw in
  (* The second leg must not revisit the first (except at the detour
     switch), or the per-destination rules would loop. *)
  let avoid = List.filter (fun sw -> sw <> via_sw) first_leg in
  let second_leg =
    match
      Netsim.Topology.shortest_switch_path_avoiding topo ~from_sw:via_sw ~to_sw:dst_sw
        ~avoid
    with
    | Some p -> p
    | None -> invalid_arg "Attack.Divert: no loop-free detour exists"
  in
  let detour =
    match second_leg with
    | [] -> first_leg
    | _ :: rest -> first_leg @ rest
  in
  let simple =
    List.length (List.sort_uniq compare detour) = List.length detour
  in
  if not simple then invalid_arg "Attack.Divert: detour is not loop-free";
  let rec hops acc = function
    | a :: (b :: _ as rest) ->
      let port =
        match Netsim.Topology.port_towards topo ~sw:a ~neighbor:b with
        | Some p -> p
        | None -> invalid_arg "Attack.Divert: detour uses unwired switches"
      in
      hops ((a, add_flow (ip_dst_match dst_info.ip) [ Ofproto.Action.Output port ]) :: acc) rest
    | [ last ] ->
      (last, add_flow (ip_dst_match dst_info.ip) [ Ofproto.Action.Output dst_port ]) :: acc
    | [] -> acc
  in
  List.rev (hops [] detour)

let exfiltrate_mods net addressing ~victim_host ~attacker_host =
  let topo = Netsim.Net.topology net in
  let victim = host_info_exn addressing victim_host
  and attacker = host_info_exn addressing attacker_host in
  let victim_sw, victim_port = attachment_exn topo victim_host in
  (* Duplicate to the victim as usual, then rewrite the destination so
     ordinary routing carries the copy to the attacker.  The copy's
     next hop may coincide with the packet's ingress port, where a
     plain Output is suppressed — so install one rule per ingress port
     and hairpin with IN_PORT when needed. *)
  let copy_towards_attacker ~in_port =
    match towards topo victim_sw attacker_host with
    | Ofproto.Action.Output p when p = in_port -> Ofproto.Action.In_port
    | action -> action
  in
  List.filter_map
    (fun in_port ->
      if in_port = victim_port then None
      else
        let actions =
          [
            Ofproto.Action.Output victim_port;
            Ofproto.Action.Set_field (Hspace.Field.Ip_dst, attacker.ip);
            copy_towards_attacker ~in_port;
          ]
        in
        Some (victim_sw, add_flow (ip_dst_match ~in_port victim.ip) actions))
    (Netsim.Topology.switch_ports topo victim_sw)

let blackhole_mods net addressing ~victim_host =
  let topo = Netsim.Net.topology net in
  let victim = host_info_exn addressing victim_host in
  let victim_sw, _ = attachment_exn topo victim_host in
  [ (victim_sw, add_flow (ip_dst_match victim.ip) []) ]

let meter_mods net addressing ~victim_host ~rate_kbps =
  let topo = Netsim.Net.topology net in
  let victim = host_info_exn addressing victim_host in
  let victim_sw, victim_port = attachment_exn topo victim_host in
  [
    (victim_sw, Ofproto.Message.Meter_mod { id = meter_id; band = Some { Ofproto.Meter.rate_kbps } });
    ( victim_sw,
      add_flow ~meter:meter_id (ip_dst_match victim.ip)
        [ Ofproto.Action.Output victim_port ] );
  ]

let rec mods net addressing = function
  | Join { victim_client; attacker_host } ->
    join_mods net addressing ~victim_client ~attacker_host
  | Divert { src_host; dst_host; via_sw } ->
    divert_mods net addressing ~src_host ~dst_host ~via_sw
  | Exfiltrate { victim_host; attacker_host } ->
    exfiltrate_mods net addressing ~victim_host ~attacker_host
  | Blackhole { victim_host } -> blackhole_mods net addressing ~victim_host
  | Meter_squeeze { victim_host; rate_kbps } ->
    meter_mods net addressing ~victim_host ~rate_kbps
  | Transient { attack; _ } -> mods net addressing attack

let retract_mods net touched =
  let switches = List.sort_uniq compare (List.map fst touched) in
  ignore net;
  List.concat_map
    (fun sw ->
      [
        (sw, Ofproto.Message.Flow_mod (Ofproto.Message.Delete_by_cookie cookie));
        (sw, Ofproto.Message.Meter_mod { id = meter_id; band = None });
      ])
    switches

let launch net addressing ~conn attack =
  match attack with
  | Transient { attack = inner; start; duration } ->
    let touched = mods net addressing inner in
    let sim = Netsim.Net.sim net in
    Netsim.Sim.schedule_at sim ~time:start (fun () ->
        List.iter (fun (sw, msg) -> Netsim.Net.send net conn ~sw msg) touched);
    Netsim.Sim.schedule_at sim ~time:(start +. duration) (fun () ->
        List.iter
          (fun (sw, msg) -> Netsim.Net.send net conn ~sw msg)
          (retract_mods net touched))
  | _ ->
    List.iter (fun (sw, msg) -> Netsim.Net.send net conn ~sw msg) (mods net addressing attack)

let rec describe = function
  | Join { victim_client; attacker_host } ->
    Printf.sprintf "join(victim_client=%d, attacker_host=%d)" victim_client attacker_host
  | Divert { src_host; dst_host; via_sw } ->
    Printf.sprintf "divert(h%d->h%d via s%d)" src_host dst_host via_sw
  | Exfiltrate { victim_host; attacker_host } ->
    Printf.sprintf "exfiltrate(h%d to h%d)" victim_host attacker_host
  | Blackhole { victim_host } -> Printf.sprintf "blackhole(h%d)" victim_host
  | Meter_squeeze { victim_host; rate_kbps } ->
    Printf.sprintf "meter_squeeze(h%d, %dkbps)" victim_host rate_kbps
  | Transient { attack; start; duration } ->
    Printf.sprintf "transient(%s, t=%.3f..%.3f)" (describe attack) start (start +. duration)

let pp fmt t = Format.pp_print_string fmt (describe t)
