(** The compromised control plane (paper §III threat model).

    An attacker who hacked the provider's management system issues
    Flow-Mods through the provider's own controller connection.  The
    taxonomy covers the misbehaviours the paper's case studies discuss:

    {ul
    {- [Join]: secretly add an access point into a victim client's
       isolation domain (paper §IV-B.1 "join attacks")}
    {- [Divert]: reroute victim traffic through a chosen switch, e.g.
       one in a foreign jurisdiction (paper §IV-B.2)}
    {- [Exfiltrate]: duplicate traffic addressed to a victim host
       towards an attacker host (paper §I "exfiltrate confidential
       traffic")}
    {- [Blackhole]: silently drop a victim host's traffic}
    {- [Meter_squeeze]: throttle a victim's traffic with a meter,
       violating neutrality/fairness (paper §IV-C.b)}
    {- [Transient]: run any of the above only during a short window, to
       evade naive configuration checks (paper §IV-A "short term
       reconfiguration attacks")}} *)

type t =
  | Join of { victim_client : int; attacker_host : int }
  | Divert of { src_host : int; dst_host : int; via_sw : int }
  | Exfiltrate of { victim_host : int; attacker_host : int }
  | Blackhole of { victim_host : int }
  | Meter_squeeze of { victim_host : int; rate_kbps : int }
  | Transient of { attack : t; start : float; duration : float }

(** Cookie tagging attacker rules (used by the attacker itself to
    retract transient rules; invisible to RVaaS's reasoning, which
    never trusts cookies). *)
val cookie : int

(** Priority of attacker rules: above all provider rules. *)
val priority : int

(** [launch net addressing ~conn attack] issues the attack's Flow-Mods
    on the (compromised) controller connection [conn].  [Transient]
    schedules installation at [start] and retraction at
    [start +. duration] in absolute simulation time.

    @raise Invalid_argument when the attack references unknown hosts or
    no loop-free detour exists for [Divert]. *)
val launch : Netsim.Net.t -> Addressing.t -> conn:Netsim.Net.conn -> t -> unit

(** [describe attack] is a short human-readable label. *)
val describe : t -> string

val pp : Format.formatter -> t -> unit
