type policy = {
  isolation : bool;
  whitelist : (int * int) list;
}

type t = {
  net : Netsim.Net.t;
  addressing : Addressing.t;
  policy : policy;
  conn : Netsim.Net.conn;
}

let routing_priority = 100

let acl_priority = 200

let whitelist_priority = 300

let cookie = 0x9407 (* "provider" tag *)

let create net addressing ~policy ~conn_delay =
  let conn =
    Netsim.Net.register_controller net ~name:"provider" ~delay:conn_delay ()
  in
  List.iter
    (fun sw -> Netsim.Net.attach net conn ~sw ~monitor:false)
    (Netsim.Topology.switches (Netsim.Net.topology net));
  { net; addressing; policy; conn }

let conn t = t.conn

(* Egress action at switch [sw] for traffic addressed to [info]:
   directly to the host when attached here, otherwise towards the next
   hop on a shortest path. *)
let route_action t sw (info : Addressing.host_info) =
  let topo = Netsim.Net.topology t.net in
  match Netsim.Topology.host_attachment topo info.host with
  | None -> None
  | Some { Netsim.Topology.node = Netsim.Topology.Switch dst_sw; port = dst_port } ->
    if sw = dst_sw then Some (Ofproto.Action.Output dst_port)
    else
      Option.map
        (fun port -> Ofproto.Action.Output port)
        (Netsim.Topology.next_hop_port topo ~from_sw:sw ~to_sw:dst_sw)
  | Some _ -> None

let routing_mods t =
  let topo = Netsim.Net.topology t.net in
  let switches = Netsim.Topology.switches topo in
  List.concat_map
    (fun (info : Addressing.host_info) ->
      List.filter_map
        (fun sw ->
          match route_action t sw info with
          | None -> None
          | Some action ->
            let match_ =
              Ofproto.Match_.any
              |> fun m ->
              Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip
              |> fun m -> Ofproto.Match_.with_exact m Hspace.Field.Ip_dst info.ip
            in
            let spec =
              Ofproto.Flow_entry.make_spec ~cookie ~priority:routing_priority match_
                [ action ]
            in
            Some (sw, Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec)))
        switches)
    (Addressing.all_hosts t.addressing)

(* Ingress isolation: at each client-facing port, drop IP traffic
   addressed into any *other* client's subnet unless whitelisted. *)
let acl_mods t =
  if not t.policy.isolation then []
  else
    let topo = Netsim.Net.topology t.net in
    let clients = Addressing.clients t.addressing in
    List.concat_map
      (fun src_client ->
        let allowed dst_client =
          dst_client = src_client
          || List.mem (src_client, dst_client) t.policy.whitelist
        in
        let points = Addressing.access_points t.addressing topo ~client:src_client in
        List.concat_map
          (fun (sw, port) ->
            List.filter_map
              (fun dst_client ->
                if allowed dst_client then None
                else
                  let value, prefix_len = Addressing.subnet t.addressing ~client:dst_client in
                  let match_ =
                    Ofproto.Match_.any
                    |> fun m ->
                    Ofproto.Match_.with_in_port m port
                    |> fun m ->
                    Ofproto.Match_.with_exact m Hspace.Field.Eth_type
                      Hspace.Header.eth_type_ip
                    |> fun m ->
                    Ofproto.Match_.with_prefix m Hspace.Field.Ip_dst ~value ~prefix_len
                  in
                  let spec =
                    Ofproto.Flow_entry.make_spec ~cookie ~priority:acl_priority match_ []
                  in
                  Some (sw, Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec)))
              clients)
          points)
      clients

(* Whitelisted cross-client pairs get explicit allow rules above the
   ACLs, replicating the routing action at the source's ingress. *)
let whitelist_mods t =
  let topo = Netsim.Net.topology t.net in
  List.concat_map
    (fun (src_client, dst_client) ->
      let points = Addressing.access_points t.addressing topo ~client:src_client in
      List.concat_map
        (fun (sw, port) ->
          List.filter_map
            (fun (info : Addressing.host_info) ->
              match route_action t sw info with
              | None -> None
              | Some action ->
                let match_ =
                  Ofproto.Match_.any
                  |> fun m ->
                  Ofproto.Match_.with_in_port m port
                  |> fun m ->
                  Ofproto.Match_.with_exact m Hspace.Field.Eth_type
                    Hspace.Header.eth_type_ip
                  |> fun m -> Ofproto.Match_.with_exact m Hspace.Field.Ip_dst info.ip
                in
                let spec =
                  Ofproto.Flow_entry.make_spec ~cookie ~priority:whitelist_priority
                    match_ [ action ]
                in
                Some (sw, Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec)))
            (Addressing.hosts_of_client t.addressing ~client:dst_client))
        points)
    t.policy.whitelist

let all_mods t = routing_mods t @ acl_mods t @ whitelist_mods t

let install_all t =
  List.iter (fun (sw, msg) -> Netsim.Net.send t.net t.conn ~sw msg) (all_mods t)

let rule_count t = List.length (all_mods t)
