lib/support/pqueue.ml: Array
