lib/support/pqueue.mli:
