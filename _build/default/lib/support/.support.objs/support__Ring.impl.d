lib/support/ring.ml: Array List
