lib/support/ring.mli:
