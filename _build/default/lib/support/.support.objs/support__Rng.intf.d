lib/support/rng.mli:
