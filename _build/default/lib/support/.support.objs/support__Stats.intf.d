lib/support/stats.mli:
