type 'a entry = { prio : float; seq : int; value : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create () = { heap = [||]; size = 0; next_seq = 0 }

let is_empty q = q.size = 0

let length q = q.size

let less a b = a.prio < b.prio || (a.prio = b.prio && a.seq < b.seq)

let grow q entry =
  let capacity = Array.length q.heap in
  if q.size = capacity then begin
    let new_capacity = if capacity = 0 then 16 else capacity * 2 in
    let heap = Array.make new_capacity entry in
    Array.blit q.heap 0 heap 0 q.size;
    q.heap <- heap
  end

let push q prio value =
  let entry = { prio; seq = q.next_seq; value } in
  q.next_seq <- q.next_seq + 1;
  grow q entry;
  (* Sift up. *)
  let i = ref q.size in
  q.size <- q.size + 1;
  q.heap.(!i) <- entry;
  let continue = ref true in
  while !continue && !i > 0 do
    let parent = (!i - 1) / 2 in
    if less q.heap.(!i) q.heap.(parent) then begin
      let tmp = q.heap.(parent) in
      q.heap.(parent) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := parent
    end
    else continue := false
  done

let sift_down q =
  let i = ref 0 in
  let continue = ref true in
  while !continue do
    let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
    let smallest = ref !i in
    if l < q.size && less q.heap.(l) q.heap.(!smallest) then smallest := l;
    if r < q.size && less q.heap.(r) q.heap.(!smallest) then smallest := r;
    if !smallest <> !i then begin
      let tmp = q.heap.(!smallest) in
      q.heap.(!smallest) <- q.heap.(!i);
      q.heap.(!i) <- tmp;
      i := !smallest
    end
    else continue := false
  done

let pop q =
  if q.size = 0 then None
  else begin
    let top = q.heap.(0) in
    q.size <- q.size - 1;
    if q.size > 0 then begin
      q.heap.(0) <- q.heap.(q.size);
      sift_down q
    end;
    Some (top.prio, top.value)
  end

let peek q = if q.size = 0 then None else Some (q.heap.(0).prio, q.heap.(0).value)

let clear q =
  q.heap <- [||];
  q.size <- 0
