(** Imperative binary min-heap priority queue keyed by float priority.

    Ties are broken by insertion order (FIFO), which gives the
    discrete-event simulator deterministic execution. *)

type 'a t

(** [create ()] returns an empty queue. *)
val create : unit -> 'a t

(** [is_empty q] is true when [q] holds no elements. *)
val is_empty : 'a t -> bool

(** [length q] is the number of queued elements. *)
val length : 'a t -> int

(** [push q priority v] inserts [v] with the given [priority]. *)
val push : 'a t -> float -> 'a -> unit

(** [pop q] removes and returns the minimum-priority element together
    with its priority.  Ties pop in insertion order. *)
val pop : 'a t -> (float * 'a) option

(** [peek q] returns the minimum element without removing it. *)
val peek : 'a t -> (float * 'a) option

(** [clear q] removes all elements. *)
val clear : 'a t -> unit
