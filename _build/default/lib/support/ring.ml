type 'a t = {
  items : 'a option array;
  mutable start : int; (* index of oldest item *)
  mutable len : int;
}

let create capacity =
  if capacity <= 0 then invalid_arg "Ring.create: capacity must be positive";
  { items = Array.make capacity None; start = 0; len = 0 }

let capacity b = Array.length b.items

let length b = b.len

let push b x =
  let cap = capacity b in
  if b.len < cap then begin
    b.items.((b.start + b.len) mod cap) <- Some x;
    b.len <- b.len + 1
  end
  else begin
    b.items.(b.start) <- Some x;
    b.start <- (b.start + 1) mod cap
  end

let nth_exn b i =
  match b.items.((b.start + i) mod capacity b) with
  | Some x -> x
  | None -> assert false

let to_list b = List.init b.len (nth_exn b)

let fold b ~init ~f =
  let acc = ref init in
  for i = 0 to b.len - 1 do
    acc := f !acc (nth_exn b i)
  done;
  !acc

let latest b = if b.len = 0 then None else Some (nth_exn b (b.len - 1))

let find b ~f =
  let rec go i = if i < 0 then None else
    let x = nth_exn b i in
    if f x then Some x else go (i - 1)
  in
  go (b.len - 1)

let clear b =
  Array.fill b.items 0 (capacity b) None;
  b.start <- 0;
  b.len <- 0
