(** Bounded ring buffer retaining the most recent [capacity] items.

    Used for the RVaaS configuration-history store: the monitor keeps a
    bounded window of timestamped snapshot diffs to detect short-lived
    reconfiguration attacks. *)

type 'a t

(** [create capacity] returns an empty buffer holding at most
    [capacity] items.  @raise Invalid_argument if [capacity <= 0]. *)
val create : int -> 'a t

(** [push b x] appends [x], evicting the oldest item when full. *)
val push : 'a t -> 'a -> unit

(** [length b] is the number of retained items. *)
val length : 'a t -> int

(** [capacity b] is the maximum number of retained items. *)
val capacity : 'a t -> int

(** [to_list b] returns retained items, oldest first. *)
val to_list : 'a t -> 'a list

(** [fold b ~init ~f] folds over retained items, oldest first. *)
val fold : 'a t -> init:'b -> f:('b -> 'a -> 'b) -> 'b

(** [latest b] is the most recently pushed item, if any. *)
val latest : 'a t -> 'a option

(** [find b ~f] returns the most recent item satisfying [f]. *)
val find : 'a t -> f:('a -> bool) -> 'a option

(** [clear b] removes all items. *)
val clear : 'a t -> unit
