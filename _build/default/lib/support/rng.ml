type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let next t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let create seed = { state = mix (Int64.of_int seed) }

let split t = { state = mix (next t) }

let copy t = { state = t.state }

let bits t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_range t lo hi =
  if hi < lo then invalid_arg "Rng.int_range: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next t) 11) in
  bound *. r /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (next t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let exponential t ~mean =
  let u = float t 1.0 in
  (* Guard against log 0. *)
  let u = if u <= 0.0 then 1e-300 else u in
  -.mean *. log u

let pick t xs =
  match xs with
  | [] -> invalid_arg "Rng.pick: empty list"
  | _ -> List.nth xs (int t (List.length xs))

let pick_array t a =
  if Array.length a = 0 then invalid_arg "Rng.pick_array: empty array";
  a.(int t (Array.length a))

let shuffle t xs =
  let a = Array.of_list xs in
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done;
  Array.to_list a

let sample t k xs =
  let n = List.length xs in
  if k >= n then xs
  else
    let shuffled = shuffle t xs in
    List.filteri (fun i _ -> i < k) shuffled
