(** Deterministic, splittable pseudo-random number generator.

    All randomness in the repository flows through this module so that
    simulations, workload generation and property tests are reproducible
    from a single integer seed.  The generator is SplitMix64, which has
    good statistical quality for simulation purposes and supports cheap
    splitting into independent streams. *)

type t

(** [create seed] returns a fresh generator determined by [seed]. *)
val create : int -> t

(** [split t] returns a new generator whose stream is independent of
    subsequent draws from [t]. *)
val split : t -> t

(** [copy t] duplicates the current state (same future stream). *)
val copy : t -> t

(** [bits t] returns 62 uniformly distributed bits as a non-negative int. *)
val bits : t -> int

(** [int t bound] returns a uniform integer in [\[0, bound)].  [bound]
    must be positive. *)
val int : t -> int -> int

(** [int_range t lo hi] returns a uniform integer in [\[lo, hi\]]. *)
val int_range : t -> int -> int -> int

(** [float t bound] returns a uniform float in [\[0, bound)]. *)
val float : t -> float -> float

(** [bool t] returns a fair coin flip. *)
val bool : t -> bool

(** [bernoulli t p] returns [true] with probability [p]. *)
val bernoulli : t -> float -> bool

(** [exponential t ~mean] samples an exponential variate. *)
val exponential : t -> mean:float -> float

(** [pick t xs] returns a uniformly chosen element of [xs].
    @raise Invalid_argument if [xs] is empty. *)
val pick : t -> 'a list -> 'a

(** [pick_array t a] returns a uniformly chosen element of [a].
    @raise Invalid_argument if [a] is empty. *)
val pick_array : t -> 'a array -> 'a

(** [shuffle t xs] returns a uniformly shuffled copy of [xs]. *)
val shuffle : t -> 'a list -> 'a list

(** [sample t k xs] returns [k] distinct elements of [xs] chosen
    uniformly (all of [xs] if it has fewer than [k] elements). *)
val sample : t -> int -> 'a list -> 'a list
