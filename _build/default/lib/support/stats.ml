let mean = function
  | [] -> 0.0
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  match xs with
  | [] | [ _ ] -> 0.0
  | _ ->
    let m = mean xs in
    let sq = List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs in
    sqrt (sq /. float_of_int (List.length xs))

let percentile p xs =
  if xs = [] then invalid_arg "Stats.percentile: empty list";
  let sorted = List.sort compare xs in
  let n = List.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  let rank = max 1 (min n rank) in
  List.nth sorted (rank - 1)

let minimum = function
  | [] -> invalid_arg "Stats.minimum: empty list"
  | x :: xs -> List.fold_left min x xs

let maximum = function
  | [] -> invalid_arg "Stats.maximum: empty list"
  | x :: xs -> List.fold_left max x xs

let histogram ~buckets ~lo ~hi xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  if hi <= lo then invalid_arg "Stats.histogram: empty range";
  let counts = Array.make buckets 0 in
  let width = (hi -. lo) /. float_of_int buckets in
  let bucket_of x =
    let i = int_of_float ((x -. lo) /. width) in
    max 0 (min (buckets - 1) i)
  in
  List.iter (fun x -> let i = bucket_of x in counts.(i) <- counts.(i) + 1) xs;
  counts
