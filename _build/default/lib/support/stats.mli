(** Small statistics helpers used by the benchmark harness. *)

(** [mean xs] is the arithmetic mean; 0 for the empty list. *)
val mean : float list -> float

(** [stddev xs] is the population standard deviation; 0 for fewer than
    two samples. *)
val stddev : float list -> float

(** [percentile p xs] returns the [p]-th percentile (0..100) using
    nearest-rank on the sorted samples.  @raise Invalid_argument on an
    empty list. *)
val percentile : float -> float list -> float

(** [minimum xs] / [maximum xs]. @raise Invalid_argument on empty. *)
val minimum : float list -> float

val maximum : float list -> float

(** [histogram ~buckets ~lo ~hi xs] counts samples in [buckets] equal
    bins over [\[lo, hi\]]; samples outside are clamped. *)
val histogram : buckets:int -> lo:float -> hi:float -> float list -> int array
