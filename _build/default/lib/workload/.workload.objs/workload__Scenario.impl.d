lib/workload/scenario.ml: Cryptosim Float Geo List Netsim Ofproto Option Printf Rvaas Sdnctl String Support
