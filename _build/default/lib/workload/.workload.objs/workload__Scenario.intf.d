lib/workload/scenario.mli: Cryptosim Geo Netsim Ofproto Rvaas Sdnctl
