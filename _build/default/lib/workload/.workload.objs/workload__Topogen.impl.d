lib/workload/topogen.ml: Array Hashtbl List Netsim Support
