lib/workload/topogen.mli: Netsim Support
