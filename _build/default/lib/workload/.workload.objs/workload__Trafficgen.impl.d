lib/workload/trafficgen.ml: Array Hashtbl Hspace List Netsim Option Scenario Sdnctl
