lib/workload/trafficgen.mli: Scenario
