type params = { hosts_per_switch : int; link_delay : float }

let default_params = { hosts_per_switch = 1; link_delay = 1e-4 }

(* Builder state: next free structural port per switch and next host id. *)
type builder = {
  topo : Netsim.Topology.t;
  params : params;
  next_port : (int, int) Hashtbl.t;
  mutable next_host : int;
}

let start params = { topo = Netsim.Topology.create (); params; next_port = Hashtbl.create 32; next_host = 0 }

let add_switch b sw =
  Netsim.Topology.add_switch b.topo sw;
  Hashtbl.replace b.next_port sw b.params.hosts_per_switch

let claim_port b sw =
  let p = Hashtbl.find b.next_port sw in
  Hashtbl.replace b.next_port sw (p + 1);
  p

let link_switches b a c =
  let pa = claim_port b a and pc = claim_port b c in
  Netsim.Topology.connect b.topo
    { Netsim.Topology.node = Netsim.Topology.Switch a; port = pa }
    { Netsim.Topology.node = Netsim.Topology.Switch c; port = pc }
    ~delay:b.params.link_delay

let attach_hosts b sw =
  for port = 0 to b.params.hosts_per_switch - 1 do
    let host = b.next_host in
    b.next_host <- host + 1;
    Netsim.Topology.add_host b.topo host;
    Netsim.Topology.connect b.topo
      { Netsim.Topology.node = Netsim.Topology.Host host; port = 0 }
      { Netsim.Topology.node = Netsim.Topology.Switch sw; port }
      ~delay:b.params.link_delay
  done

let linear params n =
  if n < 1 then invalid_arg "Topogen.linear: need at least one switch";
  let b = start params in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  for sw = 0 to n - 2 do
    link_switches b sw (sw + 1)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let ring params n =
  if n < 3 then invalid_arg "Topogen.ring: need at least three switches";
  let b = start params in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  for sw = 0 to n - 1 do
    link_switches b sw ((sw + 1) mod n)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let star params n =
  if n < 1 then invalid_arg "Topogen.star: need at least one leaf";
  let b = start params in
  add_switch b 0;
  for leaf = 1 to n do
    add_switch b leaf;
    link_switches b 0 leaf;
    attach_hosts b leaf
  done;
  b.topo

let grid params ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topogen.grid: empty grid";
  let b = start params in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      add_switch b (id r c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then link_switches b (id r c) (id r (c + 1));
      if r + 1 < rows then link_switches b (id r c) (id (r + 1) c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      attach_hosts b (id r c)
    done
  done;
  b.topo

let fat_tree params ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topogen.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  (* Switch ids: cores [0, cores); then per pod p: aggs
     [cores + p*k, cores + p*k + half) and edges
     [cores + p*k + half, cores + (p+1)*k). *)
  let agg p i = cores + (p * k) + i
  and edge p i = cores + (p * k) + half + i in
  let b = start params in
  for sw = 0 to cores + (k * k) - 1 do
    add_switch b sw
  done;
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* Each aggregation switch connects to [half] cores. *)
      for c = 0 to half - 1 do
        link_switches b (agg p a) ((a * half) + c)
      done;
      (* And to every edge switch in its pod. *)
      for e = 0 to half - 1 do
        link_switches b (agg p a) (edge p e)
      done
    done;
    for e = 0 to half - 1 do
      attach_hosts b (edge p e)
    done
  done;
  b.topo

let waxman params rng ~n ~alpha ~beta =
  if n < 2 then invalid_arg "Topogen.waxman: need at least two switches";
  let b = start params in
  let xs = Array.init n (fun _ -> Support.Rng.float rng 1.0)
  and ys = Array.init n (fun _ -> Support.Rng.float rng 1.0) in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.0) +. ((ys.(i) -. ys.(j)) ** 2.0)) in
  let max_dist = sqrt 2.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. max_dist)) in
      if Support.Rng.bernoulli rng p then link_switches b i j
    done
  done;
  (* Guarantee connectivity with a spanning chain. *)
  for sw = 0 to n - 2 do
    link_switches b sw (sw + 1)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let isp params ~core ~pops_per_core =
  if core < 3 then invalid_arg "Topogen.isp: need at least three core switches";
  if pops_per_core < 1 then invalid_arg "Topogen.isp: need at least one PoP per core";
  let b = start params in
  for sw = 0 to core - 1 do
    add_switch b sw
  done;
  for sw = 0 to core - 1 do
    link_switches b sw ((sw + 1) mod core)
  done;
  let next_pop = ref core in
  for c = 0 to core - 1 do
    for _ = 1 to pops_per_core do
      let pop = !next_pop in
      incr next_pop;
      add_switch b pop;
      link_switches b c pop;
      attach_hosts b pop
    done
  done;
  b.topo

let switch_count topo = List.length (Netsim.Topology.switches topo)

let host_count topo = List.length (Netsim.Topology.hosts topo)
