(** Topology generators for tests and benchmarks.

    All generators number switches from 0 and hosts from 0, attach
    [hosts_per_switch] hosts to every switch (beyond the structural
    ports), and use [link_delay] on every link.  Port numbering: ports
    0..[hosts_per_switch-1] face hosts; structural (switch-to-switch)
    ports start at [hosts_per_switch]. *)

type params = { hosts_per_switch : int; link_delay : float }

val default_params : params

(** [linear p n] is a chain of [n] switches. *)
val linear : params -> int -> Netsim.Topology.t

(** [ring p n] is a cycle of [n] switches ([n >= 3]). *)
val ring : params -> int -> Netsim.Topology.t

(** [star p n] is one core switch with [n] leaves (switch 0 is the
    core; hosts attach to leaves only). *)
val star : params -> int -> Netsim.Topology.t

(** [grid p ~rows ~cols] is a [rows]×[cols] mesh. *)
val grid : params -> rows:int -> cols:int -> Netsim.Topology.t

(** [fat_tree p ~k] is a k-ary fat tree (k even): (k/2)² core switches,
    k pods of k/2 aggregation + k/2 edge switches; hosts attach to edge
    switches only.  [hosts_per_switch] hosts per edge switch. *)
val fat_tree : params -> k:int -> Netsim.Topology.t

(** [waxman p rng ~n ~alpha ~beta] is a Waxman random graph over [n]
    switches placed uniformly in the unit square, made connected by
    adding a spanning chain. *)
val waxman : params -> Support.Rng.t -> n:int -> alpha:float -> beta:float -> Netsim.Topology.t

(** [isp p ~core ~pops_per_core] is a two-level ISP-like topology: a
    ring of [core] backbone switches (no hosts), each serving
    [pops_per_core] point-of-presence switches where hosts attach.
    Core switches are numbered [0, core); PoPs follow. *)
val isp : params -> core:int -> pops_per_core:int -> Netsim.Topology.t

(** [switch_count topo] / [host_count topo]: convenience. *)
val switch_count : Netsim.Topology.t -> int

val host_count : Netsim.Topology.t -> int
