test/test_cryptosim.ml: Alcotest Char Cryptosim Int64 QCheck2 QCheck_alcotest String Support
