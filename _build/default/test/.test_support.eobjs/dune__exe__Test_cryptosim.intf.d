test/test_cryptosim.mli:
