test/test_federation.ml: Alcotest Cryptosim Geo Hspace List Netsim Printf Rvaas Sdnctl Support Workload
