test/test_federation.mli:
