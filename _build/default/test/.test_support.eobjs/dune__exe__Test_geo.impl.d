test/test_geo.ml: Alcotest Geo
