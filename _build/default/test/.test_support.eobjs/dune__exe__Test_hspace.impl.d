test/test_hspace.ml: Alcotest Hspace List QCheck2 QCheck_alcotest String Support
