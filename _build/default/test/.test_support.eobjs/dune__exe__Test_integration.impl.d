test/test_integration.ml: Alcotest Hashtbl Hspace List Netsim Ofproto Option Printf Rvaas Sdnctl Support Workload
