test/test_netsim.ml: Alcotest Hashtbl Hspace List Netsim Ofproto String
