test/test_ofproto.ml: Alcotest Format Hspace List Ofproto QCheck2 QCheck_alcotest String Support
