test/test_ofproto.mli:
