test/test_queries.ml: Alcotest Geo Hspace List Netsim Option Rvaas Sdnctl Workload
