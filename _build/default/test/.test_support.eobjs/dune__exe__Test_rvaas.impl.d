test/test_rvaas.ml: Alcotest Char Cryptosim Hspace Int64 List Netsim Ofproto Option Printf Result Rvaas Sdnctl String Support Workload
