test/test_rvaas.mli:
