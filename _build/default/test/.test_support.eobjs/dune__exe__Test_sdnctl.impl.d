test/test_sdnctl.ml: Alcotest Hspace List Netsim Ofproto Option Sdnctl Workload
