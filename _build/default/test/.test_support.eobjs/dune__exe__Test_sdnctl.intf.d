test/test_sdnctl.mli:
