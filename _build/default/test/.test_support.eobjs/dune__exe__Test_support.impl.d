test/test_support.ml: Alcotest Fun List Option QCheck2 QCheck_alcotest Support
