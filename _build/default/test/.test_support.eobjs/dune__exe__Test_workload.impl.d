test/test_workload.ml: Alcotest Hashtbl List Netsim Option Printf Rvaas Sdnctl Support Workload
