(* Unit tests for the simulated crypto substrate. *)

let check = Alcotest.check

let rng () = Support.Rng.create 99

(* ---- Hash ---- *)

let test_hash_deterministic () =
  check Alcotest.bool "same input same digest" true
    (Int64.equal (Cryptosim.Hash.digest "abc") (Cryptosim.Hash.digest "abc"));
  check Alcotest.bool "different input different digest" false
    (Int64.equal (Cryptosim.Hash.digest "abc") (Cryptosim.Hash.digest "abd"))

let test_hash_hex () =
  check Alcotest.int "16 hex chars" 16 (String.length (Cryptosim.Hash.digest_hex "x"))

let test_hash_combine () =
  let a = Cryptosim.Hash.digest "a" and b = Cryptosim.Hash.digest "b" in
  check Alcotest.bool "combine not commutative" false
    (Int64.equal (Cryptosim.Hash.combine a b) (Cryptosim.Hash.combine b a))

(* ---- Hmac ---- *)

let test_hmac_roundtrip () =
  let key = Cryptosim.Hmac.random_key (rng ()) in
  let tag = Cryptosim.Hmac.mac key "hello" in
  check Alcotest.bool "verifies" true (Cryptosim.Hmac.verify key "hello" tag);
  check Alcotest.bool "wrong message" false (Cryptosim.Hmac.verify key "hellp" tag);
  let other = Cryptosim.Hmac.key_of_string "other" in
  check Alcotest.bool "wrong key" false (Cryptosim.Hmac.verify other "hello" tag)

let test_hmac_key_derivation () =
  check Alcotest.bool "same material same key" true
    (Cryptosim.Hmac.key_of_string "s" = Cryptosim.Hmac.key_of_string "s");
  check Alcotest.bool "different material different key" false
    (Cryptosim.Hmac.key_of_string "s" = Cryptosim.Hmac.key_of_string "t")

(* ---- Keys ---- *)

let test_keys_sign_verify () =
  let kp = Cryptosim.Keys.generate (rng ()) ~owner:"alice" in
  let s = Cryptosim.Keys.sign kp "msg" in
  check Alcotest.bool "verifies" true
    (Cryptosim.Keys.verify ~public:(Cryptosim.Keys.public kp) "msg" ~signature:s);
  check Alcotest.bool "wrong message" false
    (Cryptosim.Keys.verify ~public:(Cryptosim.Keys.public kp) "other" ~signature:s);
  check Alcotest.bool "forged signature" false
    (Cryptosim.Keys.verify ~public:(Cryptosim.Keys.public kp) "msg"
       ~signature:(Cryptosim.Keys.forge_signature "msg"));
  check Alcotest.bool "unknown public key" false
    (Cryptosim.Keys.verify ~public:"pub:nobody:0" "msg" ~signature:s)

let test_keys_cross_verify () =
  let r = rng () in
  let a = Cryptosim.Keys.generate r ~owner:"a" and b = Cryptosim.Keys.generate r ~owner:"b" in
  let s = Cryptosim.Keys.sign a "msg" in
  check Alcotest.bool "b's key rejects a's signature" false
    (Cryptosim.Keys.verify ~public:(Cryptosim.Keys.public b) "msg" ~signature:s)

(* ---- Box ---- *)

let test_box_roundtrip () =
  let kp = Cryptosim.Keys.generate (rng ()) ~owner:"service" in
  let sealed = Cryptosim.Box.seal ~recipient:(Cryptosim.Keys.public kp) "secret query" in
  check Alcotest.bool "opens" true
    (Cryptosim.Box.open_ ~keypair:kp sealed = Some "secret query");
  check Alcotest.bool "ciphertext differs from plaintext" false
    (String.equal sealed "secret query")

let test_box_wrong_recipient () =
  let r = rng () in
  let a = Cryptosim.Keys.generate r ~owner:"a" and b = Cryptosim.Keys.generate r ~owner:"b" in
  let sealed = Cryptosim.Box.seal ~recipient:(Cryptosim.Keys.public a) "x" in
  check Alcotest.bool "wrong key cannot open" true
    (Cryptosim.Box.open_ ~keypair:b sealed = None)

let test_box_tamper () =
  let kp = Cryptosim.Keys.generate (rng ()) ~owner:"s" in
  let sealed = Cryptosim.Box.seal ~recipient:(Cryptosim.Keys.public kp) "payload" in
  let tampered =
    String.mapi (fun i c -> if i = String.length sealed - 1 then Char.chr (Char.code c lxor 1) else c) sealed
  in
  check Alcotest.bool "tampered box rejected" true
    (Cryptosim.Box.open_ ~keypair:kp tampered = None)

let test_box_short_input () =
  let kp = Cryptosim.Keys.generate (rng ()) ~owner:"s" in
  check Alcotest.bool "garbage rejected" true (Cryptosim.Box.open_ ~keypair:kp "short" = None)

let test_box_empty_plaintext () =
  let kp = Cryptosim.Keys.generate (rng ()) ~owner:"s" in
  let sealed = Cryptosim.Box.seal ~recipient:(Cryptosim.Keys.public kp) "" in
  check Alcotest.bool "empty plaintext roundtrips" true
    (Cryptosim.Box.open_ ~keypair:kp sealed = Some "")

(* ---- Attest ---- *)

let test_attest_roundtrip () =
  let m = Cryptosim.Attest.measure ~code_identity:"rvaas-v1" in
  let q = Cryptosim.Attest.quote ~measurement:m ~nonce:"n1" in
  check Alcotest.bool "verifies" true (Cryptosim.Attest.verify q ~expected:m ~nonce:"n1");
  check Alcotest.bool "wrong nonce" false (Cryptosim.Attest.verify q ~expected:m ~nonce:"n2");
  let other = Cryptosim.Attest.measure ~code_identity:"evil-v1" in
  check Alcotest.bool "wrong measurement" false
    (Cryptosim.Attest.verify q ~expected:other ~nonce:"n1")

let test_attest_forge_rejected () =
  let m = Cryptosim.Attest.measure ~code_identity:"rvaas-v1" in
  let q = Cryptosim.Attest.forge ~measurement:m ~nonce:"n1" in
  check Alcotest.bool "forged quote rejected" false
    (Cryptosim.Attest.verify q ~expected:m ~nonce:"n1")

(* ---- qcheck ---- *)

let prop_box_roundtrip =
  QCheck2.Test.make ~name:"box roundtrips arbitrary strings" ~count:200
    QCheck2.Gen.string (fun s ->
      let kp = Cryptosim.Keys.generate (Support.Rng.create 1) ~owner:"p" in
      Cryptosim.Box.open_ ~keypair:kp
        (Cryptosim.Box.seal ~recipient:(Cryptosim.Keys.public kp) s)
      = Some s)

let prop_hmac_verifies =
  QCheck2.Test.make ~name:"hmac verifies arbitrary strings" ~count:200 QCheck2.Gen.string
    (fun s ->
      let key = Cryptosim.Hmac.key_of_string "k" in
      Cryptosim.Hmac.verify key s (Cryptosim.Hmac.mac key s))

let () =
  Alcotest.run "cryptosim"
    [
      ( "hash",
        [
          Alcotest.test_case "deterministic" `Quick test_hash_deterministic;
          Alcotest.test_case "hex" `Quick test_hash_hex;
          Alcotest.test_case "combine" `Quick test_hash_combine;
        ] );
      ( "hmac",
        [
          Alcotest.test_case "roundtrip" `Quick test_hmac_roundtrip;
          Alcotest.test_case "key derivation" `Quick test_hmac_key_derivation;
          QCheck_alcotest.to_alcotest prop_hmac_verifies;
        ] );
      ( "keys",
        [
          Alcotest.test_case "sign/verify" `Quick test_keys_sign_verify;
          Alcotest.test_case "cross verify" `Quick test_keys_cross_verify;
        ] );
      ( "box",
        [
          Alcotest.test_case "roundtrip" `Quick test_box_roundtrip;
          Alcotest.test_case "wrong recipient" `Quick test_box_wrong_recipient;
          Alcotest.test_case "tamper" `Quick test_box_tamper;
          Alcotest.test_case "short input" `Quick test_box_short_input;
          Alcotest.test_case "empty plaintext" `Quick test_box_empty_plaintext;
          QCheck_alcotest.to_alcotest prop_box_roundtrip;
        ] );
      ( "attest",
        [
          Alcotest.test_case "roundtrip" `Quick test_attest_roundtrip;
          Alcotest.test_case "forge rejected" `Quick test_attest_forge_rejected;
        ] );
    ]
