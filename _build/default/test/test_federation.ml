(* Tests for the multi-provider extensions: verifier boundaries,
   federated queries (§IV-C.a) and history traceback (§IV-C.b). *)

let check = Alcotest.check

(* Internetwork: domain A = switches {0,1}, domain B = {2,3}, peering
   link 1 <-> 2; one host per switch; global destination routing. *)
let internetwork () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 1; isolation = false }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  s

let rng = Support.Rng.create 77

let make_domains s =
  let geo_a = Geo.Registry.create () and geo_b = Geo.Registry.create () in
  Geo.Registry.set_switch geo_a ~sw:0 (Geo.Location.make ~lat:50.0 ~lon:8.0 ~jurisdiction:"EU");
  Geo.Registry.set_switch geo_a ~sw:1 (Geo.Location.make ~lat:50.5 ~lon:8.5 ~jurisdiction:"EU");
  Geo.Registry.set_switch geo_b ~sw:2 (Geo.Location.make ~lat:40.0 ~lon:(-74.0) ~jurisdiction:"US");
  Geo.Registry.set_switch geo_b ~sw:3 (Geo.Location.make ~lat:41.0 ~lon:(-73.0) ~jurisdiction:"US");
  let flows sw = Workload.Scenario.actual_flows s sw in
  [
    {
      Rvaas.Federation.name = "provider-A";
      member = (fun sw -> sw <= 1);
      flows_of = flows;
      geo = geo_a;
      keypair = Cryptosim.Keys.generate rng ~owner:"provider-A";
    };
    {
      Rvaas.Federation.name = "provider-B";
      member = (fun sw -> sw >= 2);
      flows_of = flows;
      geo = geo_b;
      keypair = Cryptosim.Keys.generate rng ~owner:"provider-B";
    };
  ]

let test_boundary_handoffs () =
  let s = internetwork () in
  let topo = Netsim.Net.topology s.net in
  let ctx = Rvaas.Verifier.context ~flows_of:(Workload.Scenario.actual_flows s) topo in
  let r =
    Rvaas.Verifier.reach_in
      ~boundary:(fun sw -> sw <= 1)
      ctx ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  (* Only domain-A hosts are endpoints; traffic to B appears as a
     handoff at switch 2's peering port. *)
  List.iter
    (fun ((ep : Rvaas.Verifier.endpoint), _) ->
      check Alcotest.bool "endpoint inside boundary" true (ep.sw <= 1))
    r.endpoints;
  (match r.handoffs with
  | [ (sw, _port, hs) ] ->
    check Alcotest.int "handoff at sw2" 2 sw;
    check Alcotest.bool "handoff space nonempty" false (Hspace.Hs.is_empty hs)
  | hs -> Alcotest.fail (Printf.sprintf "expected 1 handoff, got %d" (List.length hs)));
  List.iter
    (fun sw -> check Alcotest.bool "traversal stays in A" true (sw <= 1))
    r.traversed

let test_no_boundary_no_handoffs () =
  let s = internetwork () in
  let topo = Netsim.Net.topology s.net in
  let r =
    Rvaas.Verifier.reach
      ~flows_of:(Workload.Scenario.actual_flows s)
      topo ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  check Alcotest.int "no handoffs without boundary" 0 (List.length r.handoffs)

let test_federated_reach_crosses_domains () =
  let s = internetwork () in
  let topo = Netsim.Net.topology s.net in
  let fed = Rvaas.Federation.create topo (make_domains s) in
  let r =
    Rvaas.Federation.reach fed ~start_domain:"provider-A" ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  let hosts =
    List.map (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.host) r.endpoints
  in
  (* All three other hosts reachable, including h2 and h3 in domain B. *)
  check (Alcotest.list Alcotest.int) "endpoints across domains" [ 1; 2; 3 ]
    (List.sort compare hosts);
  check (Alcotest.list Alcotest.string) "both domains traversed"
    [ "provider-A"; "provider-B" ] r.domains_traversed;
  check (Alcotest.list Alcotest.string) "jurisdictions merged" [ "EU"; "US" ]
    r.jurisdictions;
  check Alcotest.bool "at least one sub-query" true (r.sub_queries >= 1);
  check Alcotest.int "all sub-answers trusted" 0 (List.length r.untrusted_domains)

let test_federated_reach_respects_distrust () =
  let s = internetwork () in
  let topo = Netsim.Net.topology s.net in
  let fed = Rvaas.Federation.create topo (make_domains s) in
  Rvaas.Federation.distrust fed ~of_domain:"provider-A" ~peer:"provider-B";
  let r =
    Rvaas.Federation.reach fed ~start_domain:"provider-A" ~src_sw:0 ~src_port:0
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  let hosts =
    List.map (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.host) r.endpoints
  in
  check (Alcotest.list Alcotest.int) "only home-domain endpoints" [ 1 ]
    (List.sort compare hosts);
  check (Alcotest.list Alcotest.string) "B reported untrusted" [ "provider-B" ]
    r.untrusted_domains;
  (* Re-trusting restores the full answer. *)
  let domains = make_domains s in
  let b = List.nth domains 1 in
  Rvaas.Federation.trust fed ~of_domain:"provider-A" ~peer:"provider-B"
    ~public:(Cryptosim.Keys.public b.Rvaas.Federation.keypair);
  ignore b

let test_federation_validation () =
  let s = internetwork () in
  let topo = Netsim.Net.topology s.net in
  let domains = make_domains s in
  (* Overlapping membership is rejected. *)
  let overlapping =
    List.map (fun d -> { d with Rvaas.Federation.member = (fun _ -> true) }) domains
  in
  (try
     ignore (Rvaas.Federation.create topo overlapping);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  (* Uncovered switch is rejected. *)
  let partial = [ List.hd domains ] in
  (try
     ignore (Rvaas.Federation.create topo partial);
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ());
  let fed = Rvaas.Federation.create topo domains in
  check Alcotest.bool "domain_of" true
    (Rvaas.Federation.domain_of fed ~sw:3 = Some "provider-B");
  (try
     ignore
       (Rvaas.Federation.reach fed ~start_domain:"provider-A" ~src_sw:3 ~src_port:0
          ~hs:(Rvaas.Verifier.ip_traffic_hs ()));
     Alcotest.fail "expected Invalid_argument"
   with Invalid_argument _ -> ())

(* ---- traceback ---- *)

let traceback_scenario () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 2 }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  s

let baseline_flows s =
  let snapshot = Rvaas.Monitor.snapshot s.Workload.Scenario.monitor in
  List.map
    (fun sw -> (sw, Rvaas.Snapshot.flows snapshot ~sw))
    (Rvaas.Snapshot.switches snapshot)

let test_traceback_transient_join () =
  let s = traceback_scenario () in
  let baseline = baseline_flows s in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  (* Transient join attack: attacker host 1 (client 1) against client 0;
     installed at t0+0.05, retracted at t0+0.15. *)
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Transient
       {
         attack = Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 };
         start = t0 +. 0.05;
         duration = 0.1;
       });
  Workload.Scenario.run s ~until:(t0 +. 0.5);
  let topo = Netsim.Net.topology s.net in
  (* Victim: host 0's access point. *)
  let victim =
    List.find
      (fun (e : Rvaas.Verifier.endpoint) -> e.host = 0)
      (Rvaas.Verifier.access_points topo)
  in
  let incidents =
    Rvaas.Traceback.investigate ~baseline_flows:baseline
      ~history:(Rvaas.Monitor.history s.monitor) topo ~victim
  in
  let relevant = List.filter (fun (i : Rvaas.Traceback.incident) -> i.reaches_victim) incidents in
  check Alcotest.bool "at least one relevant incident" true (relevant <> []);
  let incident = List.hd relevant in
  check Alcotest.bool "window recorded" true
    (incident.first_seen >= t0 +. 0.05 && incident.retracted <> None);
  (* The attack entered through host 1's access point. *)
  let suspects =
    List.map (fun (e : Rvaas.Verifier.endpoint) -> e.host) incident.suspect_sources
  in
  check (Alcotest.list Alcotest.int) "attacker ingress identified" [ 1 ] suspects

let test_traceback_benign_history_empty () =
  let s = traceback_scenario () in
  let baseline = baseline_flows s in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  let topo = Netsim.Net.topology s.net in
  let victim = List.hd (Rvaas.Verifier.access_points topo) in
  let incidents =
    Rvaas.Traceback.investigate ~baseline_flows:baseline
      ~history:(Rvaas.Monitor.history s.monitor) topo ~victim
  in
  check Alcotest.int "no incidents on a benign network" 0 (List.length incidents)

let test_traceback_live_rule () =
  let s = traceback_scenario () in
  let baseline = baseline_flows s in
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  let topo = Netsim.Net.topology s.net in
  let victim =
    List.find
      (fun (e : Rvaas.Verifier.endpoint) -> e.host = 0)
      (Rvaas.Verifier.access_points topo)
  in
  let incidents =
    Rvaas.Traceback.investigate ~baseline_flows:baseline
      ~history:(Rvaas.Monitor.history s.monitor) topo ~victim
  in
  let live =
    List.filter (fun (i : Rvaas.Traceback.incident) -> i.retracted = None) incidents
  in
  check Alcotest.bool "live incident reported as unretracted" true (live <> [])

let () =
  Alcotest.run "federation"
    [
      ( "boundary",
        [
          Alcotest.test_case "handoffs at the border" `Quick test_boundary_handoffs;
          Alcotest.test_case "no boundary, no handoffs" `Quick test_no_boundary_no_handoffs;
        ] );
      ( "federation",
        [
          Alcotest.test_case "cross-domain reach" `Quick test_federated_reach_crosses_domains;
          Alcotest.test_case "distrust" `Quick test_federated_reach_respects_distrust;
          Alcotest.test_case "validation" `Quick test_federation_validation;
        ] );
      ( "traceback",
        [
          Alcotest.test_case "transient join attributed" `Quick test_traceback_transient_join;
          Alcotest.test_case "benign history" `Quick test_traceback_benign_history_empty;
          Alcotest.test_case "live rule" `Quick test_traceback_live_rule;
        ] );
    ]
