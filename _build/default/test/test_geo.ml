(* Unit tests for the geo substrate and the three inference modes. *)

let check = Alcotest.check

let loc ~lat ~lon j = Geo.Location.make ~lat ~lon ~jurisdiction:j

(* ---- Location ---- *)

let test_distance_known () =
  (* Berlin to Paris is roughly 878 km. *)
  let berlin = loc ~lat:52.52 ~lon:13.405 "DE"
  and paris = loc ~lat:48.8566 ~lon:2.3522 "FR" in
  let d = Geo.Location.distance_km berlin paris in
  check Alcotest.bool "Berlin-Paris ~878km" true (d > 850.0 && d < 910.0)

let test_distance_zero_and_symmetry () =
  let a = loc ~lat:10.0 ~lon:20.0 "X" and b = loc ~lat:(-30.0) ~lon:40.0 "Y" in
  check (Alcotest.float 1e-9) "self distance" 0.0 (Geo.Location.distance_km a a);
  check (Alcotest.float 1e-6) "symmetry" (Geo.Location.distance_km a b)
    (Geo.Location.distance_km b a)

let test_location_validation () =
  Alcotest.check_raises "bad latitude"
    (Invalid_argument "Location.make: latitude out of range") (fun () ->
      ignore (loc ~lat:91.0 ~lon:0.0 "X"));
  Alcotest.check_raises "bad longitude"
    (Invalid_argument "Location.make: longitude out of range") (fun () ->
      ignore (loc ~lat:0.0 ~lon:200.0 "X"))

let test_centroid () =
  let c = Geo.Location.centroid [ loc ~lat:0.0 ~lon:0.0 "A"; loc ~lat:10.0 ~lon:10.0 "B" ] in
  check (Alcotest.float 1e-9) "lat" 5.0 c.Geo.Location.lat;
  check (Alcotest.float 1e-9) "lon" 5.0 c.Geo.Location.lon;
  Alcotest.check_raises "empty centroid" (Invalid_argument "Location.centroid: empty list")
    (fun () -> ignore (Geo.Location.centroid []))

(* ---- Registry ---- *)

let test_registry_basic () =
  let r = Geo.Registry.create () in
  Geo.Registry.set_switch r ~sw:1 (loc ~lat:1.0 ~lon:1.0 "EU");
  Geo.Registry.set_switch r ~sw:2 (loc ~lat:2.0 ~lon:2.0 "US");
  check Alcotest.bool "lookup" true (Geo.Registry.switch r ~sw:1 <> None);
  check Alcotest.bool "missing" true (Geo.Registry.switch r ~sw:9 = None);
  check (Alcotest.list Alcotest.string) "jurisdictions dedup sorted" [ "EU"; "US" ]
    (Geo.Registry.jurisdictions_of r ~sws:[ 1; 2; 1 ]);
  check (Alcotest.list Alcotest.string) "unknown reported" [ "EU"; "unknown" ]
    (Geo.Registry.jurisdictions_of r ~sws:[ 1; 9 ]);
  check (Alcotest.float 1e-9) "coverage" 0.5 (Geo.Registry.coverage r ~sws:[ 1; 9 ])

(* ---- Inference modes ---- *)

let ground_truth () =
  {
    Geo.Infer.switch_locations =
      [
        (0, loc ~lat:50.0 ~lon:8.0 "EU");
        (1, loc ~lat:40.0 ~lon:(-74.0) "US");
        (2, loc ~lat:47.0 ~lon:8.5 "CH");
      ];
    client_reports =
      [
        (loc ~lat:50.1 ~lon:8.1 "EU", 0);
        (loc ~lat:49.9 ~lon:7.9 "EU", 0);
        (loc ~lat:40.05 ~lon:(-74.05) "US", 1);
      ];
    switch_mgmt_ip = [ (0, 0x50000001); (1, 0x60000001); (2, 0x70000001) ];
  }

let test_disclosed_exact () =
  let gt = ground_truth () in
  let reg = Geo.Infer.disclosed gt in
  check Alcotest.bool "zero error" true
    (Geo.Infer.mean_error_km ~truth:(Geo.Infer.disclosed gt) ~believed:reg = Some 0.0);
  check Alcotest.bool "perfect jurisdictions" true
    (Geo.Infer.jurisdiction_accuracy ~truth:(Geo.Infer.disclosed gt) ~believed:reg
    = Some 1.0)

let test_crowd_sourced () =
  let gt = ground_truth () in
  let truth = Geo.Infer.disclosed gt in
  let believed = Geo.Infer.crowd_sourced gt in
  (* Switch 2 has no attached reports and stays unknown. *)
  check Alcotest.bool "uncovered switch unknown" true
    (Geo.Registry.switch believed ~sw:2 = None);
  (* Covered switches estimated within tens of km. *)
  (match Geo.Infer.mean_error_km ~truth ~believed with
  | Some err -> check Alcotest.bool "small error" true (err < 50.0)
  | None -> Alcotest.fail "no comparable switches");
  check Alcotest.bool "jurisdictions right" true
    (Geo.Infer.jurisdiction_accuracy ~truth ~believed = Some 1.0)

let test_geo_ip_longest_prefix () =
  let gt = ground_truth () in
  let table =
    [
      (0x50000000, 8, loc ~lat:50.0 ~lon:8.0 "EU");
      (0x50000000, 16, loc ~lat:51.0 ~lon:9.0 "DE");
      (0x60000000, 8, loc ~lat:40.0 ~lon:(-74.0) "US");
    ]
  in
  let believed = Geo.Infer.geo_ip gt ~table in
  (match Geo.Registry.switch believed ~sw:0 with
  | Some l ->
    check Alcotest.string "longest prefix wins" "DE" l.Geo.Location.jurisdiction
  | None -> Alcotest.fail "switch 0 should resolve");
  check Alcotest.bool "unmatched ip unknown" true (Geo.Registry.switch believed ~sw:2 = None)

let test_error_none_when_incomparable () =
  let truth = Geo.Registry.create () in
  Geo.Registry.set_switch truth ~sw:0 (loc ~lat:0.0 ~lon:0.0 "A");
  let believed = Geo.Registry.create () in
  check Alcotest.bool "no comparable switches" true
    (Geo.Infer.mean_error_km ~truth ~believed = None)

let () =
  Alcotest.run "geo"
    [
      ( "location",
        [
          Alcotest.test_case "known distance" `Quick test_distance_known;
          Alcotest.test_case "zero + symmetry" `Quick test_distance_zero_and_symmetry;
          Alcotest.test_case "validation" `Quick test_location_validation;
          Alcotest.test_case "centroid" `Quick test_centroid;
        ] );
      ("registry", [ Alcotest.test_case "basic" `Quick test_registry_basic ]);
      ( "infer",
        [
          Alcotest.test_case "disclosed is exact" `Quick test_disclosed_exact;
          Alcotest.test_case "crowd-sourced" `Quick test_crowd_sourced;
          Alcotest.test_case "geo-ip longest prefix" `Quick test_geo_ip_longest_prefix;
          Alcotest.test_case "incomparable" `Quick test_error_none_when_incomparable;
        ] );
    ]
