(* End-to-end integration tests: full RVaaS deployments on generated
   topologies, benign and under attack.  These are the executable
   versions of the paper's Figures 1 and 2 and its case studies. *)

let check = Alcotest.check

let ip_hs () = Rvaas.Verifier.ip_traffic_hs ()

let build_linear ?(clients = 2) ?(switches = 4) ?(seed = 42) () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params switches in
  let spec = { (Workload.Scenario.default_spec topo) with clients; seed } in
  Workload.Scenario.build spec

(* ---- benign network: queries answer and raise no alarms ---- *)

let test_benign_isolation () =
  let s = build_linear () in
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Isolation)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer to isolation query"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    check Alcotest.bool "signature verified" true outcome.signature_ok;
    (* Host 0 belongs to client 0; with isolation ACLs only client 0's
       own points can reach it. *)
    let info = Option.get (Sdnctl.Addressing.host s.addressing ~host:0) in
    let policy = Workload.Scenario.policy_for s ~client:info.client in
    let alarms = Rvaas.Detector.check_answer policy answer in
    check Alcotest.int "no alarms on benign network" 0 (List.length alarms);
    check Alcotest.bool "counting defence satisfied" true
      (answer.auth_replies = answer.total_auth_requests)

let test_benign_reachability_matches_clients () =
  let s = build_linear ~clients:2 ~switches:4 () in
  (* Host 0 (client 0) can reach exactly client 0's other hosts. *)
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Reachable_endpoints)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    let topo = Netsim.Net.topology s.net in
    let own = Sdnctl.Addressing.access_points s.addressing topo ~client:0 in
    List.iter
      (fun (e : Rvaas.Query.endpoint_report) ->
        check Alcotest.bool "reached endpoint belongs to client 0" true
          (List.mem (e.sw, e.port) own))
      answer.endpoints;
    check Alcotest.bool "reaches at least one peer" true (answer.endpoints <> [])

(* ---- Fig. 1 + 2 under attack: join attack detected ---- *)

let test_join_attack_detected () =
  let s = build_linear ~clients:2 ~switches:4 () in
  (* Host 1 belongs to client 1 and attacks client 0. *)
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Isolation)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer under attack"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    let policy = Workload.Scenario.policy_for s ~client:0 in
    let alarms = Rvaas.Detector.check_answer policy answer in
    let unknown_point =
      List.exists
        (function Rvaas.Detector.Unknown_access_point _ -> true | _ -> false)
        alarms
    in
    check Alcotest.bool "join attack raises unknown-access-point alarm" true unknown_point

let test_benign_then_attack_differs () =
  let benign = build_linear () in
  let attacked = build_linear () in
  Sdnctl.Attack.launch attacked.net attacked.addressing
    ~conn:(Sdnctl.Provider.conn attacked.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run attacked
    ~until:(Netsim.Sim.now (Netsim.Net.sim attacked.net) +. 0.2);
  let count s =
    match
      Workload.Scenario.query_and_wait s ~host:0
        (Rvaas.Query.make Rvaas.Query.Isolation)
        ~timeout:1.0
    with
    | None -> -1
    | Some o -> List.length o.Rvaas.Client_agent.answer.Rvaas.Query.endpoints
  in
  let b = count benign and a = count attacked in
  check Alcotest.bool "attack adds at least one endpoint" true (a > b && b >= 0)

(* ---- exfiltration detected by the sender's reachability query ---- *)

let test_exfiltration_detected () =
  let s = build_linear ~clients:2 ~switches:4 () in
  (* Client 0 owns hosts 0 and 2; attacker host 1 (client 1).
     Traffic to host 2 is duplicated to host 1. *)
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 1 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Reachable_endpoints)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    let policy = Workload.Scenario.policy_for s ~client:0 in
    let alarms = Rvaas.Detector.check_answer policy answer in
    check Alcotest.bool "exfiltration raises an alarm" true (alarms <> [])

(* ---- logical/physical agreement: HSA result = simulated delivery ---- *)

let deliveries_by_simulation s ~src_host =
  (* Send a concrete packet to every registered host IP and record which
     hosts actually receive it. *)
  let received = ref [] in
  List.iter
    (fun (host, _agent) ->
      Netsim.Net.set_host_receiver s.Workload.Scenario.net ~host (fun packet ->
          let dst = Hspace.Header.get packet.Netsim.Packet.header Hspace.Field.Ip_dst in
          received := (host, dst) :: !received))
    s.Workload.Scenario.agents;
  let src = Option.get (Sdnctl.Addressing.host s.addressing ~host:src_host) in
  List.iter
    (fun (info : Sdnctl.Addressing.host_info) ->
      if info.host <> src_host then begin
        let header =
          Hspace.Header.udp ~src_ip:src.ip ~dst_ip:info.ip ~src_port:1234 ~dst_port:80
        in
        Netsim.Net.host_send s.net ~host:src_host (Netsim.Packet.make ~header "probe")
      end)
    (Sdnctl.Addressing.all_hosts s.addressing);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  List.sort_uniq compare !received

let test_hsa_agrees_with_simulation () =
  let s = build_linear ~clients:3 ~switches:5 () in
  let topo = Netsim.Net.topology s.net in
  let src_host = 0 in
  let attachment = Option.get (Netsim.Topology.host_attachment topo src_host) in
  let sw =
    match attachment.Netsim.Topology.node with
    | Netsim.Topology.Switch sw -> sw
    | _ -> Alcotest.fail "host attached to non-switch"
  in
  (* Logical: reachable endpoints per the *actual* switch tables. *)
  let result =
    Rvaas.Verifier.reach
      ~flows_of:(Workload.Scenario.actual_flows s)
      topo ~src_sw:sw ~src_port:attachment.Netsim.Topology.port ~hs:(ip_hs ())
  in
  let logical_hosts =
    List.sort_uniq compare
      (List.map (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.host) result.endpoints)
  in
  (* Physical: actually deliver probes. *)
  let delivered = deliveries_by_simulation s ~src_host in
  let physical_hosts = List.sort_uniq compare (List.map fst delivered) in
  (* Every physically reached host must be logically predicted.  (The
     logical result may be a superset: the probe only samples one
     concrete header per destination.) *)
  List.iter
    (fun host ->
      check Alcotest.bool
        (Printf.sprintf "host %d delivery predicted by HSA" host)
        true (List.mem host logical_hosts))
    physical_hosts;
  check Alcotest.bool "some probe delivered" true (physical_hosts <> [])

(* ---- counting defence: muted client detected ---- *)

let test_counting_defence () =
  let s = build_linear ~clients:1 ~switches:3 () in
  (* All hosts belong to client 0; mute host 1's agent. *)
  Rvaas.Client_agent.set_mute (Workload.Scenario.agent s ~host:1) true;
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Isolation)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    check Alcotest.bool "fewer replies than requests" true
      (answer.auth_replies < answer.total_auth_requests);
    let policy = Workload.Scenario.policy_for s ~client:0 in
    let alarms = Rvaas.Detector.check_answer policy answer in
    check Alcotest.bool "missing-replies alarm raised" true
      (List.exists
         (function Rvaas.Detector.Missing_replies _ -> true | _ -> false)
         alarms)

(* ---- transient attack caught by history even after retraction ---- *)

let test_transient_attack_in_history () =
  let s = build_linear ~clients:2 ~switches:4 () in
  let baseline = Workload.Scenario.baseline s in
  let now = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Transient
       {
         attack = Sdnctl.Attack.Blackhole { victim_host = 0 };
         start = now +. 0.05;
         duration = 0.05;
       });
  (* Run well past the retraction. *)
  Workload.Scenario.run s ~until:(now +. 0.5);
  (* The rule is gone from the data plane... *)
  let attacker_rules sw =
    List.filter
      (fun (spec : Ofproto.Flow_entry.spec) -> spec.cookie = Sdnctl.Attack.cookie)
      (Workload.Scenario.actual_flows s sw)
  in
  let live =
    List.concat_map attacker_rules (Netsim.Topology.switches (Netsim.Net.topology s.net))
  in
  check Alcotest.int "attack rule retracted from data plane" 0 (List.length live);
  (* ...but the monitoring history still convicts it. *)
  let alarms = Rvaas.Detector.check_history baseline (Rvaas.Monitor.history s.monitor) in
  check Alcotest.bool "history shows config drift" true
    (List.exists (function Rvaas.Detector.Config_drift _ -> true | _ -> false) alarms)

(* ---- exact agreement: for random configurations and concrete
   headers, the set of hosts the verifier predicts equals the set of
   hosts the simulator delivers to ---- *)

let random_topo rng =
  let p = Workload.Topogen.default_params in
  match Support.Rng.int rng 3 with
  | 0 -> Workload.Topogen.linear p (Support.Rng.int_range rng 2 5)
  | 1 -> Workload.Topogen.ring p (Support.Rng.int_range rng 3 6)
  | _ ->
    Workload.Topogen.grid p ~rows:(Support.Rng.int_range rng 2 3)
      ~cols:(Support.Rng.int_range rng 2 3)

let random_attack rng s =
  let hosts = Netsim.Topology.hosts (Netsim.Net.topology s.Workload.Scenario.net) in
  let pick_host () = Support.Rng.pick rng hosts in
  match Support.Rng.int rng 4 with
  | 0 -> None
  | 1 ->
    let info =
      Option.get (Sdnctl.Addressing.host s.addressing ~host:(pick_host ()))
    in
    Some
      (Sdnctl.Attack.Join
         { victim_client = info.client; attacker_host = pick_host () })
  | 2 -> Some (Sdnctl.Attack.Blackhole { victim_host = pick_host () })
  | _ ->
    let victim = pick_host () in
    let attacker = pick_host () in
    if victim = attacker then None
    else Some (Sdnctl.Attack.Exfiltrate { victim_host = victim; attacker_host = attacker })

let random_header rng s =
  let hosts = Sdnctl.Addressing.all_hosts s.Workload.Scenario.addressing in
  let ip () =
    if Support.Rng.bernoulli rng 0.8 then
      (Support.Rng.pick rng hosts).Sdnctl.Addressing.ip
    else Support.Rng.int rng 0xFFFFFFF
  in
  let h =
    Hspace.Header.udp ~src_ip:(ip ()) ~dst_ip:(ip ())
      ~src_port:(Support.Rng.int rng 65536)
      ~dst_port:
        (if Support.Rng.bernoulli rng 0.1 then Rvaas.Wire.request_port
         else Support.Rng.int rng 65536)
  in
  if Support.Rng.bernoulli rng 0.2 then
    Hspace.Header.set h Hspace.Field.Ip_proto Hspace.Header.proto_tcp
  else h

let test_exact_agreement () =
  let rng = Support.Rng.create 2024 in
  for trial = 1 to 8 do
    let topo = random_topo rng in
    let spec =
      {
        (Workload.Scenario.default_spec topo) with
        clients = Support.Rng.int_range rng 1 3;
        seed = 1000 + trial;
        isolation = Support.Rng.bool rng;
      }
    in
    let s = Workload.Scenario.build spec in
    (match random_attack rng s with
    | None -> ()
    | Some attack ->
      Sdnctl.Attack.launch s.net s.addressing
        ~conn:(Sdnctl.Provider.conn s.provider)
        attack);
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
    (* Replace the agents with delivery recorders. *)
    let delivered : (int, unit) Hashtbl.t = Hashtbl.create 8 in
    List.iter
      (fun (host, _agent) ->
        Netsim.Net.set_host_receiver s.net ~host (fun _ ->
            Hashtbl.replace delivered host ()))
      s.agents;
    let ctx =
      Rvaas.Verifier.context ~flows_of:(Workload.Scenario.actual_flows s)
        (Netsim.Net.topology s.net)
    in
    for _ = 1 to 6 do
      let header = random_header rng s in
      let src_host = Support.Rng.pick rng (Netsim.Topology.hosts topo) in
      let att = Option.get (Netsim.Topology.host_attachment topo src_host) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> Alcotest.fail "host on non-switch"
      in
      (* Logical prediction for this one concrete header. *)
      let singleton = Hspace.Hs.of_cube (Hspace.Header.to_tern header) in
      let r =
        Rvaas.Verifier.reach_in ctx ~src_sw ~src_port:att.Netsim.Topology.port
          ~hs:singleton
      in
      let predicted =
        List.sort_uniq compare
          (List.map (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.host) r.endpoints)
      in
      (* Physical delivery. *)
      Hashtbl.reset delivered;
      Netsim.Net.host_send s.net ~host:src_host (Netsim.Packet.make ~header "agree");
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.5);
      let actual =
        Hashtbl.fold (fun h () acc -> h :: acc) delivered [] |> List.sort_uniq compare
      in
      check (Alcotest.list Alcotest.int)
        (Printf.sprintf "trial %d: predicted = delivered" trial)
        predicted actual
    done
  done

(* ---- geo query reports traversed jurisdictions ---- *)

let test_geo_query () =
  let s = build_linear ~clients:1 ~switches:4 () in
  match
    Workload.Scenario.query_and_wait s ~host:0
      (Rvaas.Query.make Rvaas.Query.Geo)
      ~timeout:1.0
  with
  | None -> Alcotest.fail "no answer"
  | Some outcome ->
    let answer = outcome.Rvaas.Client_agent.answer in
    check Alcotest.bool "geo answer nonempty" true (answer.jurisdictions <> []);
    List.iter
      (fun j ->
        check Alcotest.bool "jurisdiction from ground-truth pool" true
          (List.mem j s.spec.jurisdictions))
      answer.jurisdictions

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "benign isolation query (Fig 1+2)" `Quick test_benign_isolation;
          Alcotest.test_case "benign reachability respects isolation" `Quick
            test_benign_reachability_matches_clients;
          Alcotest.test_case "join attack detected" `Quick test_join_attack_detected;
          Alcotest.test_case "attack changes endpoint count" `Quick
            test_benign_then_attack_differs;
          Alcotest.test_case "exfiltration detected" `Quick test_exfiltration_detected;
          Alcotest.test_case "HSA agrees with simulation" `Quick
            test_hsa_agrees_with_simulation;
          Alcotest.test_case "exact agreement on random configs" `Quick
            test_exact_agreement;
          Alcotest.test_case "counting defence" `Quick test_counting_defence;
          Alcotest.test_case "transient attack in history" `Quick
            test_transient_attack_in_history;
          Alcotest.test_case "geo query" `Quick test_geo_query;
        ] );
    ]
