(* Unit tests for the discrete-event engine, topology and the network
   runtime (switch pipeline, control channels). *)

let check = Alcotest.check

module T = Netsim.Topology

let sw id = T.{ node = Switch id; port = 0 }

let ep node port = T.{ node; port }

(* ---- Sim ---- *)

let test_sim_ordering () =
  let s = Netsim.Sim.create ~seed:1 () in
  let log = ref [] in
  Netsim.Sim.schedule s ~delay:2.0 (fun () -> log := "b" :: !log);
  Netsim.Sim.schedule s ~delay:1.0 (fun () -> log := "a" :: !log);
  Netsim.Sim.schedule s ~delay:3.0 (fun () -> log := "c" :: !log);
  ignore (Netsim.Sim.run s);
  check (Alcotest.list Alcotest.string) "time order" [ "a"; "b"; "c" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock at last event" 3.0 (Netsim.Sim.now s)

let test_sim_fifo_simultaneous () =
  let s = Netsim.Sim.create ~seed:1 () in
  let log = ref [] in
  for i = 1 to 5 do
    Netsim.Sim.schedule s ~delay:1.0 (fun () -> log := i :: !log)
  done;
  ignore (Netsim.Sim.run s);
  check (Alcotest.list Alcotest.int) "FIFO at same time" [ 1; 2; 3; 4; 5 ] (List.rev !log)

let test_sim_nested_scheduling () =
  let s = Netsim.Sim.create ~seed:1 () in
  let log = ref [] in
  Netsim.Sim.schedule s ~delay:1.0 (fun () ->
      log := "outer" :: !log;
      Netsim.Sim.schedule s ~delay:0.5 (fun () -> log := "inner" :: !log));
  ignore (Netsim.Sim.run s);
  check (Alcotest.list Alcotest.string) "nested" [ "outer"; "inner" ] (List.rev !log);
  check (Alcotest.float 1e-9) "clock" 1.5 (Netsim.Sim.now s)

let test_sim_until () =
  let s = Netsim.Sim.create ~seed:1 () in
  let count = ref 0 in
  for _ = 1 to 10 do
    Netsim.Sim.schedule s ~delay:1.0 (fun () -> incr count)
  done;
  Netsim.Sim.schedule s ~delay:5.0 (fun () -> incr count);
  let executed = Netsim.Sim.run ~until:2.0 s in
  check Alcotest.int "only events before the bound" 10 executed;
  check Alcotest.int "pending" 1 (Netsim.Sim.pending s);
  check (Alcotest.float 1e-9) "clock advanced to bound" 2.0 (Netsim.Sim.now s)

let test_sim_negative_delay () =
  let s = Netsim.Sim.create ~seed:1 () in
  Alcotest.check_raises "negative delay" (Invalid_argument "Sim.schedule: negative delay")
    (fun () -> Netsim.Sim.schedule s ~delay:(-1.0) (fun () -> ()))

(* ---- Topology ---- *)

let diamond () =
  (* 0 -- 1, 0 -- 2, 1 -- 3, 2 -- 3, plus host 0 on sw0 and host 1 on sw3 *)
  let t = T.create () in
  List.iter (T.add_switch t) [ 0; 1; 2; 3 ];
  List.iter (T.add_host t) [ 0; 1 ];
  T.connect t (ep (T.Switch 0) 1) (ep (T.Switch 1) 1) ~delay:1e-3;
  T.connect t (ep (T.Switch 0) 2) (ep (T.Switch 2) 1) ~delay:1e-3;
  T.connect t (ep (T.Switch 1) 2) (ep (T.Switch 3) 1) ~delay:1e-3;
  T.connect t (ep (T.Switch 2) 2) (ep (T.Switch 3) 2) ~delay:1e-3;
  T.connect t (ep (T.Host 0) 0) (ep (T.Switch 0) 0) ~delay:1e-3;
  T.connect t (ep (T.Host 1) 0) (ep (T.Switch 3) 0) ~delay:1e-3;
  t

let test_topo_basic () =
  let t = diamond () in
  check (Alcotest.list Alcotest.int) "switches" [ 0; 1; 2; 3 ] (T.switches t);
  check (Alcotest.list Alcotest.int) "hosts" [ 0; 1 ] (T.hosts t);
  check (Alcotest.list Alcotest.int) "sw0 ports" [ 0; 1; 2 ] (T.switch_ports t 0);
  check Alcotest.int "links" 6 (List.length (T.links t))

let test_topo_peer () =
  let t = diamond () in
  (match T.peer t (ep (T.Switch 0) 1) with
  | Some far -> check Alcotest.bool "peer is sw1" true (far.T.node = T.Switch 1)
  | None -> Alcotest.fail "expected peer");
  check Alcotest.bool "unwired port has no peer" true (T.peer t (ep (T.Switch 0) 9) = None)

let test_topo_host_attachment () =
  let t = diamond () in
  match T.host_attachment t 0 with
  | Some a ->
    check Alcotest.bool "host 0 on sw0 port0" true (a.T.node = T.Switch 0 && a.T.port = 0)
  | None -> Alcotest.fail "host 0 should attach"

let test_topo_hosts_on_switch () =
  let t = diamond () in
  check
    (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int))
    "hosts on sw0"
    [ (0, 0) ]
    (T.hosts_on_switch t 0);
  check Alcotest.int "none on sw1" 0 (List.length (T.hosts_on_switch t 1))

let test_topo_shortest_paths () =
  let t = diamond () in
  let dist, _via = T.shortest_paths t ~from_sw:0 in
  check Alcotest.int "dist self" 0 (Hashtbl.find dist 0);
  check Alcotest.int "dist sw1" 1 (Hashtbl.find dist 1);
  check Alcotest.int "dist sw3" 2 (Hashtbl.find dist 3)

let test_topo_next_hop () =
  let t = diamond () in
  (match T.next_hop_port t ~from_sw:0 ~to_sw:3 with
  | Some p -> check Alcotest.bool "via port 1 or 2" true (p = 1 || p = 2)
  | None -> Alcotest.fail "expected next hop");
  check Alcotest.bool "no hop to self" true (T.next_hop_port t ~from_sw:0 ~to_sw:0 = None)

let test_topo_shortest_switch_path () =
  let t = diamond () in
  (match T.shortest_switch_path t ~from_sw:0 ~to_sw:3 with
  | Some path ->
    check Alcotest.int "3 switches" 3 (List.length path);
    check Alcotest.int "starts at 0" 0 (List.hd path);
    check Alcotest.int "ends at 3" 3 (List.nth path 2)
  | None -> Alcotest.fail "expected path");
  check Alcotest.bool "self path" true (T.shortest_switch_path t ~from_sw:1 ~to_sw:1 = Some [ 1 ])

let test_topo_port_towards () =
  let t = diamond () in
  check Alcotest.bool "towards neighbor" true (T.port_towards t ~sw:0 ~neighbor:1 = Some 1);
  check Alcotest.bool "not a neighbor" true (T.port_towards t ~sw:0 ~neighbor:3 = None)

let test_topo_validation () =
  let t = T.create () in
  T.add_switch t 0;
  Alcotest.check_raises "duplicate switch"
    (Invalid_argument "Topology.add_switch: duplicate id") (fun () -> T.add_switch t 0);
  Alcotest.check_raises "undeclared node"
    (Invalid_argument "Topology.connect: undeclared node") (fun () ->
      T.connect t (sw 0) (sw 5) ~delay:0.0);
  T.add_switch t 1;
  T.connect t (ep (T.Switch 0) 0) (ep (T.Switch 1) 0) ~delay:0.0;
  Alcotest.check_raises "double wiring"
    (Invalid_argument "Topology.connect: endpoint already wired") (fun () ->
      T.connect t (ep (T.Switch 0) 0) (ep (T.Switch 1) 1) ~delay:0.0)

(* ---- Net runtime ---- *)

let simple_net () =
  (* h0 - s0 - s1 - h1 *)
  let t = T.create () in
  List.iter (T.add_switch t) [ 0; 1 ];
  List.iter (T.add_host t) [ 0; 1 ];
  T.connect t (ep (T.Host 0) 0) (ep (T.Switch 0) 0) ~delay:1e-3;
  T.connect t (ep (T.Switch 0) 1) (ep (T.Switch 1) 1) ~delay:1e-3;
  T.connect t (ep (T.Host 1) 0) (ep (T.Switch 1) 0) ~delay:1e-3;
  Netsim.Net.create ~seed:7 t

let fwd_spec ~priority ~dst_ip ~out =
  Ofproto.Flow_entry.make_spec ~priority
    (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst dst_ip)
    [ Ofproto.Action.Output out ]

let udp_packet ~dst_ip = Netsim.Packet.make ~header:(Hspace.Header.udp ~src_ip:1 ~dst_ip ~src_port:5 ~dst_port:6) "data"

let test_net_delivery () =
  let net = simple_net () in
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0) (fwd_spec ~priority:1 ~dst_ip:42 ~out:1)
    ~now:0.0;
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:1) (fwd_spec ~priority:1 ~dst_ip:42 ~out:0)
    ~now:0.0;
  let received = ref [] in
  Netsim.Net.set_host_receiver net ~host:1 (fun p -> received := p :: !received);
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "delivered" 1 (List.length !received);
  check Alcotest.int "stat" 1 (Netsim.Net.stats net).delivered;
  (match !received with
  | [ p ] -> check Alcotest.int "two switch hops" 2 p.Netsim.Packet.hops
  | _ -> ())

let test_net_drop_no_rule () =
  let net = simple_net () in
  let drops = ref [] in
  Netsim.Net.on_drop net (fun ~sw ~reason _ -> drops := (sw, reason) :: !drops);
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "dropped at sw0" 1 (List.length !drops);
  check Alcotest.bool "no-rule reason" true
    (match !drops with [ (0, Netsim.Net.No_rule) ] -> true | _ -> false)

let test_net_loop_guard () =
  (* Two switches connected by two parallel links; each forwards out
     the other link, so the packet ping-pongs forever. *)
  let t = T.create () in
  List.iter (T.add_switch t) [ 0; 1 ];
  T.add_host t 0;
  T.connect t (ep (T.Host 0) 0) (ep (T.Switch 0) 0) ~delay:1e-3;
  T.connect t (ep (T.Switch 0) 1) (ep (T.Switch 1) 1) ~delay:1e-3;
  T.connect t (ep (T.Switch 0) 2) (ep (T.Switch 1) 2) ~delay:1e-3;
  let net = Netsim.Net.create ~seed:7 t in
  (* sw0: out link 1; sw1: bounce back via the *other* link. *)
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0)
    (Ofproto.Flow_entry.make_spec ~priority:1
       (Ofproto.Match_.with_in_port
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          0)
       [ Ofproto.Action.Output 1 ])
    ~now:0.0;
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0)
    (Ofproto.Flow_entry.make_spec ~priority:1
       (Ofproto.Match_.with_in_port
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          2)
       [ Ofproto.Action.Output 1 ])
    ~now:0.0;
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:1)
    (Ofproto.Flow_entry.make_spec ~priority:1
       (Ofproto.Match_.with_in_port
          (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
          1)
       [ Ofproto.Action.Output 2 ])
    ~now:0.0;
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "loop guard fired" 1 (Netsim.Net.stats net).dropped_loop

let test_net_rewrite_applied () =
  let net = simple_net () in
  let rewrite_spec =
    Ofproto.Flow_entry.make_spec ~priority:1
      (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
      [ Ofproto.Action.Set_field (Hspace.Field.Ip_dst, 43); Ofproto.Action.Output 1 ]
  in
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0) rewrite_spec ~now:0.0;
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:1) (fwd_spec ~priority:1 ~dst_ip:43 ~out:0)
    ~now:0.0;
  let received = ref [] in
  Netsim.Net.set_host_receiver net ~host:1 (fun p -> received := p :: !received);
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  match !received with
  | [ p ] ->
    check Alcotest.int "dst rewritten" 43
      (Hspace.Header.get p.Netsim.Packet.header Hspace.Field.Ip_dst)
  | _ -> Alcotest.fail "expected delivery after rewrite"

let test_net_packet_in_and_out () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  let packet_ins = ref [] in
  Netsim.Net.set_handler conn (function
    | Ofproto.Message.Packet_in { sw; in_port; payload; _ } ->
      packet_ins := (sw, in_port, payload) :: !packet_ins
    | _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  (* Send-to-controller rule. *)
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0)
    (Ofproto.Flow_entry.make_spec ~priority:5 Ofproto.Match_.any
       [ Ofproto.Action.To_controller ])
    ~now:0.0;
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "one packet-in" 1 (List.length !packet_ins);
  (match !packet_ins with
  | [ (0, 0, "data") ] -> ()
  | _ -> Alcotest.fail "packet-in metadata wrong");
  (* Packet-out directly to host 0. *)
  let received = ref 0 in
  Netsim.Net.set_host_receiver net ~host:0 (fun _ -> incr received);
  Netsim.Net.send net conn ~sw:0
    (Ofproto.Message.Packet_out
       { port = 0; header = Hspace.Header.udp ~src_ip:9 ~dst_ip:1 ~src_port:1 ~dst_port:2;
         payload = "reply" });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "packet-out delivered" 1 !received

let test_net_flow_mod_and_stats () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  let stats_replies = ref [] in
  Netsim.Net.set_handler conn (function
    | Ofproto.Message.Flow_stats_reply { sw; flows; _ } ->
      stats_replies := (sw, List.length flows) :: !stats_replies
    | _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  Netsim.Net.send net conn ~sw:0
    (Ofproto.Message.Flow_mod
       (Ofproto.Message.Add_flow (fwd_spec ~priority:1 ~dst_ip:42 ~out:1)));
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Flow_stats_request { xid = 1 });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check (Alcotest.list (Alcotest.pair Alcotest.int Alcotest.int)) "one rule reported"
    [ (0, 1) ] !stats_replies

let test_net_monitor_events () =
  let net = simple_net () in
  let provider = Netsim.Net.register_controller net ~name:"p" ~delay:1e-3 () in
  Netsim.Net.attach net provider ~sw:0 ~monitor:false;
  let watcher = Netsim.Net.register_controller net ~name:"w" ~delay:1e-3 () in
  let events = ref [] in
  Netsim.Net.set_handler watcher (function
    | Ofproto.Message.Monitor { sw; event } -> events := (sw, event) :: !events
    | _ -> ());
  Netsim.Net.attach net watcher ~sw:0 ~monitor:true;
  (* A change made by the provider is seen by the monitoring watcher. *)
  Netsim.Net.send net provider ~sw:0
    (Ofproto.Message.Flow_mod
       (Ofproto.Message.Add_flow (fwd_spec ~priority:1 ~dst_ip:42 ~out:1)));
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "watcher saw the add" 1 (List.length !events)

let test_net_lossy_channel () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"lossy" ~delay:1e-3 ~loss_prob:1.0 () in
  let events = ref 0 and echoes = ref 0 in
  Netsim.Net.set_handler conn (function
    | Ofproto.Message.Monitor _ -> incr events
    | Ofproto.Message.Echo_reply _ -> incr echoes
    | _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:true;
  (* Monitor events are lossy; request/response is reliable. *)
  Netsim.Net.send net conn ~sw:0
    (Ofproto.Message.Flow_mod
       (Ofproto.Message.Add_flow (fwd_spec ~priority:1 ~dst_ip:42 ~out:1)));
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Echo_request { xid = 1 });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "all monitor events lost" 0 !events;
  check Alcotest.int "echo reply survives" 1 !echoes;
  check Alcotest.int "loss counted" 1 (Netsim.Net.conn_lost conn)

let test_net_hard_timeout_expiry () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  let removed = ref 0 in
  Netsim.Net.set_handler conn (function
    | Ofproto.Message.Flow_removed _ -> incr removed
    | _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  let spec =
    Ofproto.Flow_entry.make_spec ~hard_timeout:0.1 ~priority:1 Ofproto.Match_.any
      [ Ofproto.Action.Output 1 ]
  in
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec));
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "flow removed reported" 1 !removed;
  check Alcotest.int "table empty" 0 (Ofproto.Flow_table.size (Netsim.Net.table net ~sw:0))

let test_net_send_unattached () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  Alcotest.check_raises "unattached send"
    (Invalid_argument "Net.send: connection not attached to switch") (fun () ->
      Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Echo_request { xid = 1 }))

let test_net_meter_drops () =
  let net = simple_net () in
  Ofproto.Meter.set (Netsim.Net.meters net ~sw:0) ~id:1 { Ofproto.Meter.rate_kbps = 1 };
  let spec =
    Ofproto.Flow_entry.make_spec ~meter:1 ~priority:1
      (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
      [ Ofproto.Action.Output 1 ]
  in
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0) spec ~now:0.0;
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:1) (fwd_spec ~priority:1 ~dst_ip:42 ~out:0)
    ~now:0.0;
  (* 1 kbps = 125 B/s, burst 125 B; 64-byte packets: the first two fit in
     the burst, the rest drop. *)
  for _ = 1 to 10 do
    Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42)
  done;
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  let stats = Netsim.Net.stats net in
  check Alcotest.bool "some delivered" true (stats.delivered >= 1);
  check Alcotest.bool "some meter drops" true (stats.dropped_meter >= 1);
  check Alcotest.int "all accounted" 10 (stats.delivered + stats.dropped_meter)

(* ---- additional runtime edge cases ---- *)

let test_net_echo_barrier () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  let log = ref [] in
  Netsim.Net.set_handler conn (function
    | Ofproto.Message.Echo_reply { xid; _ } -> log := ("echo", xid) :: !log
    | Ofproto.Message.Barrier_reply { xid; _ } -> log := ("barrier", xid) :: !log
    | _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Echo_request { xid = 7 });
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Barrier_request { xid = 8 });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check
    (Alcotest.list (Alcotest.pair Alcotest.string Alcotest.int))
    "replies in order"
    [ ("echo", 7); ("barrier", 8) ]
    (List.rev !log)

let test_net_conn_counters () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  Netsim.Net.set_handler conn (fun _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  check Alcotest.string "name" "c" (Netsim.Net.conn_name conn);
  check (Alcotest.list Alcotest.int) "attached" [ 0 ] (Netsim.Net.attached net conn);
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Echo_request { xid = 1 });
  Netsim.Net.send net conn ~sw:0 (Ofproto.Message.Echo_request { xid = 2 });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "tx" 2 (Netsim.Net.conn_tx conn);
  check Alcotest.int "rx" 2 (Netsim.Net.conn_rx conn)

let test_net_in_port_hairpin () =
  (* A rule using IN_PORT sends the packet back where it came from. *)
  let net = simple_net () in
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0)
    (Ofproto.Flow_entry.make_spec ~priority:1
       (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
       [ Ofproto.Action.In_port ])
    ~now:0.0;
  let got = ref 0 in
  Netsim.Net.set_host_receiver net ~host:0 (fun _ -> incr got);
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "hairpinned back to sender" 1 !got

let test_net_output_to_ingress_suppressed () =
  (* A plain Output naming the ingress port is a no-op. *)
  let net = simple_net () in
  Ofproto.Flow_table.add (Netsim.Net.table net ~sw:0)
    (Ofproto.Flow_entry.make_spec ~priority:1
       (Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst 42)
       [ Ofproto.Action.Output 0 ])
    ~now:0.0;
  let got = ref 0 in
  Netsim.Net.set_host_receiver net ~host:0 (fun _ -> incr got);
  Netsim.Net.host_send net ~host:0 (udp_packet ~dst_ip:42);
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "suppressed" 0 !got

let test_packet_defaults () =
  let p = Netsim.Packet.make ~header:(Hspace.Header.udp ~src_ip:1 ~dst_ip:2 ~src_port:3 ~dst_port:4) "xy" in
  check Alcotest.int "minimum frame size" 64 p.Netsim.Packet.size_bytes;
  check Alcotest.int "zero hops" 0 p.Netsim.Packet.hops;
  let big = Netsim.Packet.make ~header:p.Netsim.Packet.header (String.make 1400 'a') in
  check Alcotest.int "payload + overhead" 1442 big.Netsim.Packet.size_bytes;
  let hopped = Netsim.Packet.hop p ~header:p.Netsim.Packet.header in
  check Alcotest.int "hop increments" 1 hopped.Netsim.Packet.hops

let test_net_packet_out_unwired () =
  let net = simple_net () in
  let conn = Netsim.Net.register_controller net ~name:"c" ~delay:1e-3 () in
  Netsim.Net.set_handler conn (fun _ -> ());
  Netsim.Net.attach net conn ~sw:0 ~monitor:false;
  Netsim.Net.send net conn ~sw:0
    (Ofproto.Message.Packet_out
       { port = 9; header = Hspace.Header.udp ~src_ip:1 ~dst_ip:2 ~src_port:1 ~dst_port:2;
         payload = "x" });
  ignore (Netsim.Sim.run (Netsim.Net.sim net));
  check Alcotest.int "unwired drop counted" 1 (Netsim.Net.stats net).dropped_unwired

let () =
  Alcotest.run "netsim"
    [
      ( "sim",
        [
          Alcotest.test_case "ordering" `Quick test_sim_ordering;
          Alcotest.test_case "FIFO simultaneous" `Quick test_sim_fifo_simultaneous;
          Alcotest.test_case "nested scheduling" `Quick test_sim_nested_scheduling;
          Alcotest.test_case "run until" `Quick test_sim_until;
          Alcotest.test_case "negative delay" `Quick test_sim_negative_delay;
        ] );
      ( "topology",
        [
          Alcotest.test_case "basics" `Quick test_topo_basic;
          Alcotest.test_case "peer" `Quick test_topo_peer;
          Alcotest.test_case "host attachment" `Quick test_topo_host_attachment;
          Alcotest.test_case "hosts on switch" `Quick test_topo_hosts_on_switch;
          Alcotest.test_case "shortest paths" `Quick test_topo_shortest_paths;
          Alcotest.test_case "next hop" `Quick test_topo_next_hop;
          Alcotest.test_case "switch path" `Quick test_topo_shortest_switch_path;
          Alcotest.test_case "port towards" `Quick test_topo_port_towards;
          Alcotest.test_case "validation" `Quick test_topo_validation;
        ] );
      ( "net",
        [
          Alcotest.test_case "delivery" `Quick test_net_delivery;
          Alcotest.test_case "drop without rule" `Quick test_net_drop_no_rule;
          Alcotest.test_case "loop guard" `Quick test_net_loop_guard;
          Alcotest.test_case "rewrite applied" `Quick test_net_rewrite_applied;
          Alcotest.test_case "packet-in/out" `Quick test_net_packet_in_and_out;
          Alcotest.test_case "flow-mod + stats" `Quick test_net_flow_mod_and_stats;
          Alcotest.test_case "monitor events" `Quick test_net_monitor_events;
          Alcotest.test_case "lossy channel" `Quick test_net_lossy_channel;
          Alcotest.test_case "hard timeout expiry" `Quick test_net_hard_timeout_expiry;
          Alcotest.test_case "send unattached" `Quick test_net_send_unattached;
          Alcotest.test_case "meter drops" `Quick test_net_meter_drops;
          Alcotest.test_case "echo + barrier" `Quick test_net_echo_barrier;
          Alcotest.test_case "conn counters" `Quick test_net_conn_counters;
          Alcotest.test_case "IN_PORT hairpin" `Quick test_net_in_port_hairpin;
          Alcotest.test_case "ingress output suppressed" `Quick
            test_net_output_to_ingress_suppressed;
          Alcotest.test_case "packet defaults" `Quick test_packet_defaults;
          Alcotest.test_case "packet-out to unwired port" `Quick
            test_net_packet_out_unwired;
        ] );
    ]
