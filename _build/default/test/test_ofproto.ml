(* Unit tests for the OpenFlow model: match semantics, action
   application, flow-table priority/overwrite/delete behaviour, meters
   and change notification. *)

let check = Alcotest.check

module M = Ofproto.Match_
module A = Ofproto.Action
module FE = Ofproto.Flow_entry
module FT = Ofproto.Flow_table

let udp ~dst_ip ~dst_port =
  Hspace.Header.udp ~src_ip:0x0A000001 ~dst_ip ~src_port:1000 ~dst_port

(* ---- Match ---- *)

let test_match_any () =
  let h = udp ~dst_ip:5 ~dst_port:80 in
  check Alcotest.bool "any matches" true (M.matches M.any ~in_port:3 h)

let test_match_exact_field () =
  let m = M.with_exact M.any Hspace.Field.Ip_dst 42 in
  check Alcotest.bool "match" true (M.matches m ~in_port:0 (udp ~dst_ip:42 ~dst_port:80));
  check Alcotest.bool "no match" false (M.matches m ~in_port:0 (udp ~dst_ip:43 ~dst_port:80))

let test_match_in_port () =
  let m = M.with_in_port M.any 7 in
  let h = udp ~dst_ip:1 ~dst_port:80 in
  check Alcotest.bool "right port" true (M.matches m ~in_port:7 h);
  check Alcotest.bool "wrong port" false (M.matches m ~in_port:8 h)

let test_match_prefix () =
  let m = M.with_prefix M.any Hspace.Field.Ip_dst ~value:0x0A010000 ~prefix_len:16 in
  check Alcotest.bool "in prefix" true
    (M.matches m ~in_port:0 (udp ~dst_ip:0x0A01BEEF ~dst_port:1));
  check Alcotest.bool "out of prefix" false
    (M.matches m ~in_port:0 (udp ~dst_ip:0x0A02BEEF ~dst_port:1))

let test_match_mask_zero_is_wildcard () =
  let m = M.with_field M.any Hspace.Field.Ip_dst ~value:99 ~mask:0 in
  check Alcotest.int "no field constraints" 0 (List.length (M.fields m))

let test_match_subset_overlap () =
  let broad = M.with_prefix M.any Hspace.Field.Ip_dst ~value:0x0A000000 ~prefix_len:8 in
  let narrow = M.with_exact M.any Hspace.Field.Ip_dst 0x0A000005 in
  check Alcotest.bool "narrow subset broad" true (M.subset narrow broad);
  check Alcotest.bool "broad not subset narrow" false (M.subset broad narrow);
  check Alcotest.bool "overlap" true (M.overlaps narrow broad);
  let other = M.with_exact M.any Hspace.Field.Ip_dst 0x0B000005 in
  check Alcotest.bool "disjoint" false (M.overlaps narrow other)

let test_match_in_port_subset () =
  let p7 = M.with_in_port M.any 7 in
  check Alcotest.bool "port-constrained subset of any" true (M.subset p7 M.any);
  check Alcotest.bool "any not subset of port-constrained" false (M.subset M.any p7)

let test_match_agrees_with_tern () =
  (* Data-plane matching must agree with the header-space encoding. *)
  let rng = Support.Rng.create 5 in
  let m =
    M.with_prefix
      (M.with_exact M.any Hspace.Field.Ip_proto 17)
      Hspace.Field.Ip_dst ~value:0x0A010000 ~prefix_len:12
  in
  let cube = M.to_tern m in
  for _ = 1 to 200 do
    let h = Hspace.Header.random rng in
    let concrete = Hspace.Header.to_tern h in
    check Alcotest.bool "matches iff member" (M.matches m ~in_port:0 h)
      (Hspace.Tern.mem concrete cube)
  done

(* ---- Actions ---- *)

let test_action_output_and_rewrite_order () =
  let h = udp ~dst_ip:1 ~dst_port:80 in
  let actions =
    [ A.Output 1; A.Set_field (Hspace.Field.Ip_dst, 9); A.Output 2 ]
  in
  let applied = A.apply ~ports:[ 1; 2; 3 ] ~in_port:0 h actions in
  (match applied.A.outputs with
  | [ (1, h1); (2, h2) ] ->
    check Alcotest.int "first output sees old dst" 1 (Hspace.Header.get h1 Hspace.Field.Ip_dst);
    check Alcotest.int "second output sees new dst" 9 (Hspace.Header.get h2 Hspace.Field.Ip_dst)
  | _ -> Alcotest.fail "expected two outputs");
  check Alcotest.int "final header rewritten" 9
    (Hspace.Header.get applied.A.final_header Hspace.Field.Ip_dst)

let test_action_flood_excludes_ingress () =
  let h = udp ~dst_ip:1 ~dst_port:80 in
  let applied = A.apply ~ports:[ 1; 2; 3 ] ~in_port:2 h [ A.Flood ] in
  check (Alcotest.list Alcotest.int) "flood ports" [ 1; 3 ]
    (List.map fst applied.A.outputs)

let test_action_controller_and_queue () =
  let h = udp ~dst_ip:1 ~dst_port:80 in
  let applied = A.apply ~ports:[ 1 ] ~in_port:0 h [ A.To_controller; A.Set_queue 4 ] in
  check Alcotest.bool "controller copy" true (applied.A.to_controller <> None);
  check Alcotest.bool "queue" true (applied.A.queue = Some 4);
  check Alcotest.int "no data-plane output" 0 (List.length applied.A.outputs)

let test_action_empty_is_drop () =
  let h = udp ~dst_ip:1 ~dst_port:80 in
  let applied = A.apply ~ports:[ 1 ] ~in_port:0 h [] in
  check Alcotest.int "no outputs" 0 (List.length applied.A.outputs);
  check Alcotest.bool "no controller" true (applied.A.to_controller = None)

(* ---- Flow table ---- *)

let spec ?(cookie = 0) ?meter ?hard_timeout ~priority ~dst_ip actions =
  FE.make_spec ~cookie ?meter ?hard_timeout ~priority
    (M.with_exact M.any Hspace.Field.Ip_dst dst_ip)
    actions

let test_table_priority_wins () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:20 ~dst_ip:1 [ A.Output 2 ]) ~now:0.0;
  match FT.lookup t ~in_port:0 (udp ~dst_ip:1 ~dst_port:80) with
  | Some e -> check Alcotest.int "higher priority wins" 20 e.FE.spec.priority
  | None -> Alcotest.fail "expected a match"

let test_table_fifo_within_priority () =
  let t = FT.create () in
  FT.add t (FE.make_spec ~cookie:1 ~priority:5 M.any [ A.Output 1 ]) ~now:0.0;
  FT.add t
    (FE.make_spec ~cookie:2 ~priority:5
       (M.with_exact M.any Hspace.Field.Ip_proto 17)
       [ A.Output 2 ])
    ~now:0.0;
  (* Both match a UDP packet; the earlier-installed entry wins. *)
  match FT.lookup t ~in_port:0 (udp ~dst_ip:1 ~dst_port:80) with
  | Some e -> check Alcotest.int "earliest entry wins ties" 1 e.FE.spec.cookie
  | None -> Alcotest.fail "expected a match"

let test_table_overwrite_same_match () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 2 ]) ~now:0.0;
  check Alcotest.int "overwrite keeps one entry" 1 (FT.size t);
  match FT.lookup t ~in_port:0 (udp ~dst_ip:1 ~dst_port:80) with
  | Some e ->
    check Alcotest.bool "new actions" true (e.FE.spec.actions = [ A.Output 2 ])
  | None -> Alcotest.fail "expected a match"

let test_table_nonstrict_delete () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:0x0A010001 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:10 ~dst_ip:0x0A010002 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:10 ~dst_ip:0x0B000001 [ A.Output 1 ]) ~now:0.0;
  let broad = M.with_prefix M.any Hspace.Field.Ip_dst ~value:0x0A010000 ~prefix_len:16 in
  let removed = FT.delete t ~match_:broad () in
  check Alcotest.int "subset entries removed" 2 removed;
  check Alcotest.int "one left" 1 (FT.size t)

let test_table_delete_by_priority () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:20 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  let removed = FT.delete t ~match_:M.any ~priority:10 () in
  check Alcotest.int "only priority-10 removed" 1 removed;
  check Alcotest.int "one left" 1 (FT.size t)

let test_table_delete_by_cookie () =
  let t = FT.create () in
  FT.add t (spec ~cookie:7 ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~cookie:8 ~priority:10 ~dst_ip:2 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~cookie:7 ~priority:20 ~dst_ip:3 [ A.Output 1 ]) ~now:0.0;
  check Alcotest.int "cookie removes both" 2 (FT.delete_by_cookie t 7);
  check Alcotest.int "one left" 1 (FT.size t)

let test_table_hard_timeout () =
  let t = FT.create () in
  FT.add t (spec ~hard_timeout:1.0 ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:20 ~dst_ip:2 [ A.Output 1 ]) ~now:0.0;
  check Alcotest.int "nothing expires early" 0 (List.length (FT.expire t ~now:0.5));
  let expired = FT.expire t ~now:1.5 in
  check Alcotest.int "one expires" 1 (List.length expired);
  check Alcotest.int "one survivor" 1 (FT.size t)

let test_table_change_notifications () =
  let t = FT.create () in
  let log = ref [] in
  FT.on_change t (fun change ->
      let tag =
        match change with
        | FT.Added _ -> "add"
        | FT.Removed (_, `Delete) -> "del"
        | FT.Removed (_, `Hard_timeout) -> "timeout"
        | FT.Modified _ -> "mod"
      in
      log := tag :: !log);
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 2 ]) ~now:0.0;
  ignore (FT.delete t ~match_:M.any ());
  check (Alcotest.list Alcotest.string) "event sequence" [ "add"; "mod"; "del" ]
    (List.rev !log);
  check Alcotest.int "version bumped thrice" 3 (FT.version t)

let test_table_no_match_none () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  check Alcotest.bool "no match returns None" true
    (FT.lookup t ~in_port:0 (udp ~dst_ip:2 ~dst_port:80) = None)

let test_table_counters () =
  let t = FT.create () in
  FT.add t (spec ~priority:10 ~dst_ip:1 [ A.Output 1 ]) ~now:0.0;
  (match FT.lookup t ~in_port:0 (udp ~dst_ip:1 ~dst_port:80) with
  | Some e ->
    FE.account e ~bytes:100;
    FE.account e ~bytes:50;
    check Alcotest.int "packets" 2 e.FE.packets;
    check Alcotest.int "bytes" 150 e.FE.bytes
  | None -> Alcotest.fail "expected a match")

(* ---- printers and spec equality ---- *)

let test_pp_coverage () =
  (* Printers are part of the API (fingerprints rely on them): check
     they are stable and distinguish the variants. *)
  let show pp v = Format.asprintf "%a" pp v in
  check Alcotest.string "output" "output:3" (show A.pp (A.Output 3));
  check Alcotest.bool "in_port" true (show A.pp A.In_port <> "");
  check Alcotest.string "flood" "flood" (show A.pp A.Flood);
  check Alcotest.string "controller" "controller" (show A.pp A.To_controller);
  check Alcotest.string "drop" "drop" (show A.pp_list []);
  check Alcotest.bool "set_field mentions field" true
    (String.length (show A.pp (A.Set_field (Hspace.Field.Ip_dst, 5))) > 0);
  let m = M.with_in_port (M.with_exact M.any Hspace.Field.Ip_dst 7) 2 in
  let rendered = show M.pp m in
  check Alcotest.bool "match shows port" true
    (String.length rendered > 0
    &&
    let contains hay needle =
      let n = String.length needle in
      let rec go i =
        i + n <= String.length hay && (String.sub hay i n = needle || go (i + 1))
      in
      go 0
    in
    contains rendered "in_port=2")

let test_spec_equal_semantics () =
  let mk ?(cookie = 0) ?(priority = 5) ?meter ?hard_timeout actions =
    FE.make_spec ~cookie ?meter ?hard_timeout ~priority
      (M.with_exact M.any Hspace.Field.Ip_dst 7)
      actions
  in
  check Alcotest.bool "equal" true (FE.spec_equal (mk [ A.Output 1 ]) (mk [ A.Output 1 ]));
  check Alcotest.bool "different actions" false
    (FE.spec_equal (mk [ A.Output 1 ]) (mk [ A.Output 2 ]));
  check Alcotest.bool "different cookie" false
    (FE.spec_equal (mk ~cookie:1 [ A.Output 1 ]) (mk ~cookie:2 [ A.Output 1 ]));
  check Alcotest.bool "different priority" false
    (FE.spec_equal (mk ~priority:5 [ A.Output 1 ]) (mk ~priority:6 [ A.Output 1 ]));
  check Alcotest.bool "different meter" false
    (FE.spec_equal (mk ~meter:1 [ A.Output 1 ]) (mk [ A.Output 1 ]));
  (* Timeouts do not affect forwarding and are excluded on purpose. *)
  check Alcotest.bool "timeouts ignored" true
    (FE.spec_equal (mk ~hard_timeout:1.0 [ A.Output 1 ]) (mk [ A.Output 1 ]))

let test_match_semantic_equal () =
  (* Two syntactically different matches with the same semantics are
     equal: a /32 prefix is an exact match. *)
  let a = M.with_exact M.any Hspace.Field.Ip_dst 0x0A000001 in
  let b = M.with_prefix M.any Hspace.Field.Ip_dst ~value:0x0A000001 ~prefix_len:32 in
  check Alcotest.bool "prefix/32 = exact" true (M.equal a b)

(* ---- Meters ---- *)

let test_meter_allows_within_rate () =
  let m = Ofproto.Meter.create () in
  Ofproto.Meter.set m ~id:1 { Ofproto.Meter.rate_kbps = 8 };
  (* 8 kbps = 1000 bytes/s; burst bucket = 1000 bytes. *)
  check Alcotest.bool "burst passes" true (Ofproto.Meter.allows m ~id:1 ~now:0.0 ~bytes:1000);
  check Alcotest.bool "over burst drops" false
    (Ofproto.Meter.allows m ~id:1 ~now:0.0 ~bytes:500);
  (* After one second the bucket refills. *)
  check Alcotest.bool "refill passes" true (Ofproto.Meter.allows m ~id:1 ~now:1.0 ~bytes:900)

let test_meter_unknown_passes () =
  let m = Ofproto.Meter.create () in
  check Alcotest.bool "unknown id passes" true
    (Ofproto.Meter.allows m ~id:9 ~now:0.0 ~bytes:1_000_000)

let test_meter_config () =
  let m = Ofproto.Meter.create () in
  Ofproto.Meter.set m ~id:2 { Ofproto.Meter.rate_kbps = 100 };
  check Alcotest.bool "find" true
    (Ofproto.Meter.find m ~id:2 = Some { Ofproto.Meter.rate_kbps = 100 });
  check Alcotest.bool "remove" true (Ofproto.Meter.remove m ~id:2);
  check Alcotest.bool "remove again" false (Ofproto.Meter.remove m ~id:2);
  check Alcotest.int "versions" 2 (Ofproto.Meter.version m)

(* ---- qcheck: lookup picks the highest-priority matching entry ---- *)

let prop_lookup_semantics =
  QCheck2.Test.make ~name:"lookup = max-priority matching entry" ~count:200
    QCheck2.Gen.(
      list_size (int_range 1 20)
        (triple (int_range 0 5) (int_range 0 3) (int_range 0 100)))
    (fun entries ->
      let t = FT.create () in
      List.iteri
        (fun i (prio, dst, cookie) ->
          ignore i;
          FT.add t (spec ~cookie ~priority:prio ~dst_ip:dst [ A.Output 1 ]) ~now:0.0)
        entries;
      let h = udp ~dst_ip:2 ~dst_port:80 in
      let expected_prio =
        List.filter_map
          (fun (e : FE.t) ->
            if M.matches e.spec.match_ ~in_port:0 h then Some e.spec.priority else None)
          (FT.entries t)
        |> List.fold_left max (-1)
      in
      match FT.lookup t ~in_port:0 h with
      | None -> expected_prio = -1
      | Some e -> e.FE.spec.priority = expected_prio)

let () =
  Alcotest.run "ofproto"
    [
      ( "match",
        [
          Alcotest.test_case "any" `Quick test_match_any;
          Alcotest.test_case "exact field" `Quick test_match_exact_field;
          Alcotest.test_case "in_port" `Quick test_match_in_port;
          Alcotest.test_case "prefix" `Quick test_match_prefix;
          Alcotest.test_case "zero mask is wildcard" `Quick test_match_mask_zero_is_wildcard;
          Alcotest.test_case "subset/overlap" `Quick test_match_subset_overlap;
          Alcotest.test_case "in_port subset" `Quick test_match_in_port_subset;
          Alcotest.test_case "agrees with tern encoding" `Quick test_match_agrees_with_tern;
        ] );
      ( "action",
        [
          Alcotest.test_case "rewrite order" `Quick test_action_output_and_rewrite_order;
          Alcotest.test_case "flood excludes ingress" `Quick test_action_flood_excludes_ingress;
          Alcotest.test_case "controller + queue" `Quick test_action_controller_and_queue;
          Alcotest.test_case "empty drops" `Quick test_action_empty_is_drop;
        ] );
      ( "flow_table",
        [
          Alcotest.test_case "priority wins" `Quick test_table_priority_wins;
          Alcotest.test_case "FIFO within priority" `Quick test_table_fifo_within_priority;
          Alcotest.test_case "overwrite same match" `Quick test_table_overwrite_same_match;
          Alcotest.test_case "non-strict delete" `Quick test_table_nonstrict_delete;
          Alcotest.test_case "delete by priority" `Quick test_table_delete_by_priority;
          Alcotest.test_case "delete by cookie" `Quick test_table_delete_by_cookie;
          Alcotest.test_case "hard timeout" `Quick test_table_hard_timeout;
          Alcotest.test_case "change notifications" `Quick test_table_change_notifications;
          Alcotest.test_case "no match" `Quick test_table_no_match_none;
          Alcotest.test_case "counters" `Quick test_table_counters;
          QCheck_alcotest.to_alcotest prop_lookup_semantics;
        ] );
      ( "printers+equality",
        [
          Alcotest.test_case "pp coverage" `Quick test_pp_coverage;
          Alcotest.test_case "spec equality" `Quick test_spec_equal_semantics;
          Alcotest.test_case "match semantic equality" `Quick test_match_semantic_equal;
        ] );
      ( "meter",
        [
          Alcotest.test_case "token bucket" `Quick test_meter_allows_within_rate;
          Alcotest.test_case "unknown passes" `Quick test_meter_unknown_passes;
          Alcotest.test_case "configuration" `Quick test_meter_config;
        ] );
    ]
