(* End-to-end coverage of every query kind through the full in-band
   protocol, plus adversarial message-level tests (spoofed auth
   replies, replayed challenges, wrong ingress ports). *)

let check = Alcotest.check

let build ?(clients = 2) ?(switches = 4) ?(isolation = true) () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params switches in
  Workload.Scenario.build
    { (Workload.Scenario.default_spec topo) with clients; isolation }

let ask s ~host query =
  match Workload.Scenario.query_and_wait s ~host query ~timeout:2.0 with
  | Some outcome -> outcome.Rvaas.Client_agent.answer
  | None -> Alcotest.fail "query timed out"

(* ---- Path_length ---- *)

let test_path_query_benign () =
  let s = build ~clients:1 ~switches:4 () in
  let dst = Option.get (Sdnctl.Addressing.host s.addressing ~host:3) in
  let answer = ask s ~host:0 (Rvaas.Query.make (Rvaas.Query.Path_length { dst_ip = dst.ip })) in
  (* Linear 0..3: the shortest (and only) path spans all 4 switches. *)
  check Alcotest.bool "path reported" true (answer.path_hops = Some (4, 4));
  let policy = Workload.Scenario.policy_for s ~client:0 in
  check Alcotest.int "no stretch alarm" 0
    (List.length (Rvaas.Detector.check_answer policy answer))

let test_path_query_detects_divert () =
  (* Ring gives the attacker a longer alternative. *)
  let topo = Workload.Topogen.ring Workload.Topogen.default_params 6 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 1 }
  in
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Divert { src_host = 0; dst_host = 2; via_sw = 4 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  let dst = Option.get (Sdnctl.Addressing.host s.addressing ~host:2) in
  let answer = ask s ~host:0 (Rvaas.Query.make (Rvaas.Query.Path_length { dst_ip = dst.ip })) in
  (match answer.path_hops with
  | Some (observed, optimal) ->
    check Alcotest.bool "diverted path longer than optimal" true (observed > optimal)
  | None -> Alcotest.fail "no path info");
  let policy = Workload.Scenario.policy_for s ~client:0 in
  check Alcotest.bool "stretch alarm raised" true
    (List.exists
       (function Rvaas.Detector.Path_stretch _ -> true | _ -> false)
       (Rvaas.Detector.check_answer policy answer))

(* ---- Fairness ---- *)

let test_fairness_query () =
  let s = build ~clients:1 ~switches:3 () in
  let benign = ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Fairness) in
  check Alcotest.int "no meters on a benign network" 0 (List.length benign.meters);
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 64 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  let attacked = ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Fairness) in
  check Alcotest.bool "meter surfaces in answer" true
    (List.exists (fun (_, rate) -> rate = 64) attacked.meters);
  let policy =
    { (Workload.Scenario.policy_for s ~client:0) with Rvaas.Detector.min_rate_kbps = Some 1000 }
  in
  check Alcotest.bool "throttled alarm" true
    (List.exists
       (function Rvaas.Detector.Throttled _ -> true | _ -> false)
       (Rvaas.Detector.check_answer policy attacked))

(* ---- Geo scoping ---- *)

let test_geo_query_respects_scope () =
  let s = build ~clients:1 ~switches:4 () in
  (* Mark the last switch with a unique jurisdiction. *)
  Geo.Registry.set_switch s.geo_truth ~sw:3
    (Geo.Location.make ~lat:1.0 ~lon:1.0 ~jurisdiction:"ZZ");
  let h1 = Option.get (Sdnctl.Addressing.host s.addressing ~host:1) in
  (* Scoped to traffic for the adjacent host 1, switch 3 is never
     visited. *)
  let scoped =
    ask s ~host:0 (Rvaas.Query.make ~scope:(Rvaas.Verifier.dst_ip_hs h1.ip) Rvaas.Query.Geo)
  in
  check Alcotest.bool "ZZ not traversed for scoped flow" false
    (List.mem "ZZ" scoped.jurisdictions);
  (* Unscoped, traffic to host 3 passes switch 3. *)
  let unscoped = ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Geo) in
  check Alcotest.bool "ZZ traversed for unscoped traffic" true
    (List.mem "ZZ" unscoped.jurisdictions)

(* ---- Transfer summary ---- *)

let test_transfer_summary_end_to_end () =
  let s = build ~clients:2 ~switches:4 () in
  let answer = ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Transfer_summary) in
  (* Client 0 (hosts 0, 2): its traffic can reach host 2's access
     point; every transfer cell carries a non-empty header space. *)
  check Alcotest.bool "transfer cells present" true (answer.transfer <> []);
  List.iter
    (fun (_sw, _port, hs) ->
      check Alcotest.bool "non-empty arriving space" false (Hspace.Hs.is_empty hs))
    answer.transfer;
  (* The reported arriving spaces agree with a direct verifier run on
     the same snapshot. *)
  let topo = Netsim.Net.topology s.net in
  let att = Option.get (Netsim.Topology.host_attachment topo 0) in
  let sw =
    match att.Netsim.Topology.node with
    | Netsim.Topology.Switch sw -> sw
    | _ -> assert false
  in
  let flows_of sw = Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot s.monitor) ~sw in
  let direct =
    Rvaas.Verifier.reach ~flows_of topo ~src_sw:sw ~src_port:att.Netsim.Topology.port
      ~hs:(Rvaas.Verifier.ip_traffic_hs ())
  in
  List.iter
    (fun (tsw, tport, ths) ->
      match
        List.find_opt
          (fun ((ep : Rvaas.Verifier.endpoint), _) -> ep.sw = tsw && ep.port = tport)
          direct.endpoints
      with
      | Some (_, dhs) ->
        check Alcotest.bool "transfer matches verifier" true (Hspace.Hs.equal ths dhs)
      | None -> Alcotest.fail "transfer cell for unknown endpoint")
    answer.transfer

(* ---- Sources_reaching_me with scope ---- *)

let test_sources_scoped () =
  let s = build ~clients:1 ~switches:3 () in
  (* Scope to TCP only: sources still reach (routing is
     protocol-agnostic). *)
  let w = Hspace.Field.total_width in
  let tcp =
    Hspace.Hs.of_cube
      (Hspace.Field.set_exact
         (Hspace.Field.set_exact (Hspace.Tern.all_x w) Hspace.Field.Eth_type
            Hspace.Header.eth_type_ip)
         Hspace.Field.Ip_proto Hspace.Header.proto_tcp)
  in
  let answer = ask s ~host:0 (Rvaas.Query.make ~scope:tcp Rvaas.Query.Sources_reaching_me) in
  check Alcotest.bool "own points reported" true (answer.endpoints <> [])

(* ---- service statistics across a query ---- *)

let test_service_stats_progress () =
  let s = build ~clients:1 ~switches:3 () in
  let before = Rvaas.Service.stats s.service in
  let received0 = before.queries_received and answers0 = before.answers_sent in
  ignore (ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Isolation));
  let after = Rvaas.Service.stats s.service in
  check Alcotest.int "one query received" (received0 + 1) after.queries_received;
  check Alcotest.int "one answer sent" (answers0 + 1) after.answers_sent;
  check Alcotest.int "nothing rejected" 0 after.queries_rejected

(* ---- adversarial auth replies ---- *)

let inject s ~host payload ~dst_port =
  let info = Option.get (Sdnctl.Addressing.host s.Workload.Scenario.addressing ~host) in
  let header =
    Hspace.Header.udp ~src_ip:info.ip ~dst_ip:Rvaas.Wire.service_ip ~src_port:0 ~dst_port
  in
  Netsim.Net.host_send s.net ~host (Netsim.Packet.make ~header payload)

let test_spoofed_auth_reply_rejected () =
  (* An attacker (client 1) answers with a guessed challenge: the reply
     must be rejected, not credited to any probe. *)
  let s = build ~clients:2 ~switches:4 () in
  let key = Option.get (Rvaas.Directory.key s.directory ~client:1) in
  let spoof = Rvaas.Codec.encode_auth_reply ~client:1 ~challenge:"guessed" ~key in
  let rejected0 = (Rvaas.Service.stats s.service).auth_replies_rejected in
  inject s ~host:1 spoof ~dst_port:Rvaas.Wire.auth_reply_port;
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1);
  check Alcotest.int "spoofed reply rejected" (rejected0 + 1)
    (Rvaas.Service.stats s.service).auth_replies_rejected

let test_wrong_port_auth_reply_rejected () =
  (* A valid challenge echoed from the WRONG access point must not
     authenticate the probed endpoint: the service only accepts replies
     arriving on the probed port (the Packet-In ingress is
     authoritative). *)
  let s = build ~clients:1 ~switches:3 () in
  (* Intercept host 2's auth request by muting its agent and capturing
     the challenge through a custom receiver. *)
  let challenge = ref None in
  Netsim.Net.set_host_receiver s.net ~host:2 (fun packet ->
      let dst = Hspace.Header.get packet.Netsim.Packet.header Hspace.Field.Tp_dst in
      if dst = Rvaas.Wire.auth_request_port then
        match
          Rvaas.Codec.decode_auth_request packet.Netsim.Packet.payload
            ~service_public:(Rvaas.Service.public s.service)
        with
        | Ok c -> challenge := Some c
        | Error _ -> ());
  (* Client 0's host 0 queries isolation; probes go to hosts 0,1,2. *)
  let agent = Workload.Scenario.agent s ~host:0 in
  ignore (Rvaas.Client_agent.send_query agent (Rvaas.Query.make Rvaas.Query.Isolation));
  (* Give the probes time to arrive but replay before the collection
     window closes. *)
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.012);
  (match !challenge with
  | None -> Alcotest.fail "no auth request captured"
  | Some c ->
    (* Replay host 2's challenge from host 1 (wrong access point). *)
    let key = Option.get (Rvaas.Directory.key s.directory ~client:0) in
    let replay = Rvaas.Codec.encode_auth_reply ~client:0 ~challenge:c ~key in
    inject s ~host:1 replay ~dst_port:Rvaas.Wire.auth_reply_port);
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
  (* The answer must show host 2's endpoint unauthenticated. *)
  match Rvaas.Client_agent.outcomes agent with
  | [ outcome ] ->
    let answer = outcome.Rvaas.Client_agent.answer in
    let ep2 =
      List.find_opt
        (fun (e : Rvaas.Query.endpoint_report) -> e.sw = 2)
        answer.endpoints
    in
    (match ep2 with
    | Some e -> check Alcotest.bool "replayed endpoint not authenticated" false e.authenticated
    | None -> Alcotest.fail "host 2's endpoint missing from answer")
  | _ -> Alcotest.fail "expected exactly one outcome"

(* ---- agent behaviour ---- *)

let test_agent_counts_auth_requests () =
  let s = build ~clients:1 ~switches:3 () in
  let agent1 = Workload.Scenario.agent s ~host:1 in
  let before = Rvaas.Client_agent.auth_requests_answered agent1 in
  ignore (ask s ~host:0 (Rvaas.Query.make Rvaas.Query.Isolation));
  check Alcotest.int "agent answered one auth request" (before + 1)
    (Rvaas.Client_agent.auth_requests_answered agent1)

let test_agent_ignores_foreign_answers () =
  let s = build ~clients:2 ~switches:3 () in
  let agent = Workload.Scenario.agent s ~host:0 in
  (* An answer with an unknown nonce (e.g. for another client) is not
     recorded as an outcome. *)
  ignore agent;
  ignore (ask s ~host:1 (Rvaas.Query.make Rvaas.Query.Isolation));
  check Alcotest.int "no outcome for host 0" 0
    (List.length (Rvaas.Client_agent.outcomes agent))

let () =
  Alcotest.run "queries"
    [
      ( "kinds",
        [
          Alcotest.test_case "path benign" `Quick test_path_query_benign;
          Alcotest.test_case "path detects divert" `Quick test_path_query_detects_divert;
          Alcotest.test_case "fairness" `Quick test_fairness_query;
          Alcotest.test_case "geo scope" `Quick test_geo_query_respects_scope;
          Alcotest.test_case "transfer end-to-end" `Quick test_transfer_summary_end_to_end;
          Alcotest.test_case "sources scoped" `Quick test_sources_scoped;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "service stats" `Quick test_service_stats_progress;
          Alcotest.test_case "spoofed auth reply" `Quick test_spoofed_auth_reply_rejected;
          Alcotest.test_case "wrong-port replay" `Quick test_wrong_port_auth_reply_rejected;
          Alcotest.test_case "agent auth counter" `Quick test_agent_counts_auth_requests;
          Alcotest.test_case "agent ignores foreign answers" `Quick
            test_agent_ignores_foreign_answers;
        ] );
    ]
