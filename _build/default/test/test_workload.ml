(* Tests for the topology generators and the scenario builder. *)

let check = Alcotest.check

let p = Workload.Topogen.default_params

(* Every generated topology must be fully wired (no dangling host),
   have unique ports, and be connected over the switch graph. *)
let structural_invariants name topo =
  let switches = Netsim.Topology.switches topo in
  let hosts = Netsim.Topology.hosts topo in
  (* hosts attach to exactly one switch *)
  List.iter
    (fun h ->
      match Netsim.Topology.host_attachment topo h with
      | Some { Netsim.Topology.node = Netsim.Topology.Switch _; _ } -> ()
      | Some _ | None -> Alcotest.fail (Printf.sprintf "%s: host %d unattached" name h))
    hosts;
  (* switch graph connected: BFS from first switch reaches all *)
  (match switches with
  | [] -> Alcotest.fail (name ^ ": no switches")
  | first :: _ ->
    let dist, _ = Netsim.Topology.shortest_paths topo ~from_sw:first in
    List.iter
      (fun sw ->
        if not (Hashtbl.mem dist sw) then
          Alcotest.fail (Printf.sprintf "%s: switch %d disconnected" name sw))
      switches);
  (* links reference declared nodes and distinct endpoints *)
  List.iter
    (fun (l : Netsim.Topology.link) ->
      if l.a = l.b then Alcotest.fail (name ^ ": self-loop"))
    (Netsim.Topology.links topo)

let test_generators_structure () =
  structural_invariants "linear" (Workload.Topogen.linear p 5);
  structural_invariants "ring" (Workload.Topogen.ring p 5);
  structural_invariants "star" (Workload.Topogen.star p 4);
  structural_invariants "grid" (Workload.Topogen.grid p ~rows:3 ~cols:4);
  structural_invariants "fat_tree" (Workload.Topogen.fat_tree p ~k:4);
  structural_invariants "waxman"
    (Workload.Topogen.waxman p (Support.Rng.create 3) ~n:15 ~alpha:0.4 ~beta:0.4);
  structural_invariants "isp" (Workload.Topogen.isp p ~core:4 ~pops_per_core:2)

let test_generator_counts () =
  check Alcotest.int "linear switches" 5
    (Workload.Topogen.switch_count (Workload.Topogen.linear p 5));
  check Alcotest.int "linear hosts" 5
    (Workload.Topogen.host_count (Workload.Topogen.linear p 5));
  let ft = Workload.Topogen.fat_tree p ~k:4 in
  (* (k/2)^2 cores + k pods x k switches = 4 + 16. *)
  check Alcotest.int "fat-tree switches" 20 (Workload.Topogen.switch_count ft);
  (* hosts only on the k*k/2 edge switches *)
  check Alcotest.int "fat-tree hosts" 8 (Workload.Topogen.host_count ft);
  let grid = Workload.Topogen.grid p ~rows:2 ~cols:3 in
  check Alcotest.int "grid switches" 6 (Workload.Topogen.switch_count grid);
  let isp = Workload.Topogen.isp p ~core:4 ~pops_per_core:2 in
  (* 4 core + 8 PoPs; hosts only on PoPs. *)
  check Alcotest.int "isp switches" 12 (Workload.Topogen.switch_count isp);
  check Alcotest.int "isp hosts" 8 (Workload.Topogen.host_count isp);
  List.iter
    (fun core_sw ->
      check Alcotest.int "no hosts on core" 0
        (List.length (Netsim.Topology.hosts_on_switch isp core_sw)))
    [ 0; 1; 2; 3 ]

let test_generator_hosts_per_switch () =
  let p2 = { p with Workload.Topogen.hosts_per_switch = 3 } in
  let topo = Workload.Topogen.linear p2 4 in
  check Alcotest.int "3 hosts per switch" 12 (Workload.Topogen.host_count topo);
  List.iter
    (fun sw ->
      check Alcotest.int
        (Printf.sprintf "switch %d hosts" sw)
        3
        (List.length (Netsim.Topology.hosts_on_switch topo sw)))
    (Netsim.Topology.switches topo)

let test_generator_validation () =
  Alcotest.check_raises "ring too small"
    (Invalid_argument "Topogen.ring: need at least three switches") (fun () ->
      ignore (Workload.Topogen.ring p 2));
  Alcotest.check_raises "odd fat-tree"
    (Invalid_argument "Topogen.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Workload.Topogen.fat_tree p ~k:3))

let test_fat_tree_diameter () =
  (* Any two edge switches are at most 4 hops apart in a fat tree. *)
  let topo = Workload.Topogen.fat_tree p ~k:4 in
  List.iter
    (fun sw ->
      let dist, _ = Netsim.Topology.shortest_paths topo ~from_sw:sw in
      Hashtbl.iter
        (fun _ d -> check Alcotest.bool "diameter <= 4" true (d <= 4))
        dist)
    (Netsim.Topology.switches topo)

(* ---- scenario builder ---- *)

let test_scenario_round_robin_clients () =
  let topo = Workload.Topogen.linear p 6 in
  let s = Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 3 } in
  List.iter
    (fun host ->
      let info = Option.get (Sdnctl.Addressing.host s.addressing ~host) in
      check Alcotest.int
        (Printf.sprintf "host %d client" host)
        (host mod 3) info.client)
    (Netsim.Topology.hosts topo)

let test_scenario_agents_registered () =
  let topo = Workload.Topogen.linear p 3 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  check Alcotest.int "one agent per host" 3 (List.length s.agents);
  (* every agent can be looked up *)
  List.iter
    (fun h -> ignore (Workload.Scenario.agent s ~host:h))
    (Netsim.Topology.hosts topo)

let test_scenario_determinism () =
  (* Two builds with the same seed answer a query identically. *)
  let build () =
    let topo = Workload.Topogen.linear p 4 in
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with seed = 7 }
  in
  let answer s =
    match
      Workload.Scenario.query_and_wait s ~host:0
        (Rvaas.Query.make Rvaas.Query.Isolation)
        ~timeout:1.0
    with
    | Some o ->
      let a = o.Rvaas.Client_agent.answer in
      ( List.map (fun (e : Rvaas.Query.endpoint_report) -> (e.sw, e.port)) a.endpoints,
        a.total_auth_requests,
        o.answered_at )
    | None -> ([], -1, 0.0)
  in
  let a1 = answer (build ()) and a2 = answer (build ()) in
  check Alcotest.bool "identical answers for identical seeds" true (a1 = a2)

let test_scenario_policy_covers_whitelist () =
  let topo = Workload.Topogen.linear p 4 in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 2; whitelist = [ (1, 0) ] }
  in
  let policy = Workload.Scenario.policy_for s ~client:0 in
  (* client 1 may reach client 0, so client 1's points are allowed peers. *)
  let c1_points =
    Sdnctl.Addressing.access_points s.addressing (Netsim.Net.topology s.net) ~client:1
  in
  List.iter
    (fun pt ->
      check Alcotest.bool "whitelisted peer point allowed" true
        (List.mem pt policy.Rvaas.Detector.allowed_peer_points))
    c1_points

let test_scenario_snapshot_complete_after_build () =
  let topo = Workload.Topogen.grid p ~rows:2 ~cols:2 in
  let s = Workload.Scenario.build (Workload.Scenario.default_spec topo) in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  check Alcotest.int "snapshot converged" 0
    (Rvaas.Snapshot.divergence
       (Rvaas.Monitor.snapshot s.monitor)
       ~actual:(Workload.Scenario.actual_flows s))

(* ---- traffic generation ---- *)

let test_traffic_delivery () =
  let topo = Workload.Topogen.linear p 3 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
  in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let flow =
    Workload.Trafficgen.make_flow s ~src_host:0 ~dst_host:2 ~rate_pps:100.0
      ~size_bytes:200 ~start:(t0 +. 0.01) ~duration:0.5
  in
  match Workload.Trafficgen.run s [ flow ] ~until:(t0 +. 1.0) with
  | [ r ] ->
    check Alcotest.int "all sent" 50 r.sent;
    check Alcotest.int "all delivered" 50 r.delivered;
    check Alcotest.bool "goodput ≈ 160 kbps" true
      (abs_float (Workload.Trafficgen.goodput_kbps r -. 160.0) < 5.0)
  | _ -> Alcotest.fail "expected one report"

let test_traffic_two_flows_distinguished () =
  let topo = Workload.Topogen.linear p 3 in
  let s =
    Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
  in
  let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let mk src dst rate =
    Workload.Trafficgen.make_flow s ~src_host:src ~dst_host:dst ~rate_pps:rate
      ~size_bytes:100 ~start:(t0 +. 0.01) ~duration:0.2
  in
  match Workload.Trafficgen.run s [ mk 0 2 100.0; mk 1 2 50.0 ] ~until:(t0 +. 1.0) with
  | [ a; b ] ->
    check Alcotest.int "flow a" 20 a.delivered;
    check Alcotest.int "flow b" 10 b.delivered
  | _ -> Alcotest.fail "expected two reports"

let test_traffic_meter_squeeze_observable () =
  (* The meter-squeeze attack must reduce data-plane goodput, matching
     what the Fairness configuration query reports. *)
  let run_with ~attack =
    let topo = Workload.Topogen.linear p 3 in
    let s =
      Workload.Scenario.build { (Workload.Scenario.default_spec topo) with clients = 1 }
    in
    if attack then begin
      Sdnctl.Attack.launch s.net s.addressing
        ~conn:(Sdnctl.Provider.conn s.provider)
        (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 50 });
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1)
    end;
    let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
    let flow =
      (* 400 pps x 500 B = 1600 kbps offered. *)
      Workload.Trafficgen.make_flow s ~src_host:0 ~dst_host:2 ~rate_pps:400.0
        ~size_bytes:500 ~start:(t0 +. 0.01) ~duration:1.0
    in
    match Workload.Trafficgen.run s [ flow ] ~until:(t0 +. 2.0) with
    | [ r ] -> Workload.Trafficgen.goodput_kbps r
    | _ -> Alcotest.fail "expected one report"
  in
  let free = run_with ~attack:false and squeezed = run_with ~attack:true in
  check Alcotest.bool "unmetered flow runs at line rate" true (free > 1500.0);
  (* 50 kbps meter + burst allowance: well under a quarter of the offer. *)
  check Alcotest.bool "squeezed flow throttled" true (squeezed < 400.0)

let () =
  Alcotest.run "workload"
    [
      ( "topogen",
        [
          Alcotest.test_case "structural invariants" `Quick test_generators_structure;
          Alcotest.test_case "counts" `Quick test_generator_counts;
          Alcotest.test_case "hosts per switch" `Quick test_generator_hosts_per_switch;
          Alcotest.test_case "validation" `Quick test_generator_validation;
          Alcotest.test_case "fat-tree diameter" `Quick test_fat_tree_diameter;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "round-robin clients" `Quick test_scenario_round_robin_clients;
          Alcotest.test_case "agents registered" `Quick test_scenario_agents_registered;
          Alcotest.test_case "determinism" `Quick test_scenario_determinism;
          Alcotest.test_case "whitelist in policy" `Quick test_scenario_policy_covers_whitelist;
          Alcotest.test_case "snapshot complete" `Quick
            test_scenario_snapshot_complete_after_build;
        ] );
      ( "trafficgen",
        [
          Alcotest.test_case "delivery at rate" `Quick test_traffic_delivery;
          Alcotest.test_case "flows distinguished" `Quick
            test_traffic_two_flows_distinguished;
          Alcotest.test_case "meter squeeze observable" `Quick
            test_traffic_meter_squeeze_observable;
        ] );
    ]
