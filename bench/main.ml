(* Benchmark harness: regenerates the experiment tables E1-E8 indexed
   in DESIGN.md / EXPERIMENTS.md, plus Bechamel micro-benchmarks of the
   core kernels.

   The paper (DSN 2016) contains no quantitative tables; E1-E2 are the
   executable form of its Figures 1-2 and E3-E8 quantify the design
   claims made in its prose.  See EXPERIMENTS.md for the mapping.

     dune exec bench/main.exe            # all experiments + micro
     dune exec bench/main.exe -- e3      # one experiment
     dune exec bench/main.exe -- micro   # micro-benchmarks only *)

let section title =
  Printf.printf "\n%s\n%s\n%!" title (String.make (String.length title) '-')

(* Monotonic wall clock.  [Sys.time ()] is process CPU time: it
   overcounts when several domains run (summing their cycles) and
   undercounts blocking — useless for latency columns.  All E-series
   timings below are wall-clock. *)
let now_s () = Int64.to_float (Monotonic_clock.now ()) /. 1e9

let wall f =
  let t0 = now_s () in
  let r = f () in
  (r, now_s () -. t0)

(* Nearest-rank percentile over a sample list, [q] in [0, 1] — the one
   latency summary every table below (E13, E19, E20) reads tails
   through.  0.0 on an empty sample set. *)
let percentile q samples =
  let a = Array.of_list samples in
  Array.sort compare a;
  if Array.length a = 0 then 0.0
  else a.(int_of_float (q *. float_of_int (Array.length a - 1)))

(* ---------------------------------------------------------------- *)
(* Shared scenario helpers                                          *)
(* ---------------------------------------------------------------- *)

let build_scenario ?(clients = 2) ?(seed = 42) ?(polling = Rvaas.Monitor.Randomized 0.05)
    ?(loss = 0.0) topo =
  Workload.Scenario.build
    {
      (Workload.Scenario.default_spec topo) with
      clients;
      seed;
      polling;
      rvaas_loss = loss;
    }

let isolation_outcome scenario ~host =
  Workload.Scenario.query_and_wait scenario ~host
    (Rvaas.Query.make Rvaas.Query.Isolation)
    ~timeout:2.0

(* ---------------------------------------------------------------- *)
(* E1: Fig. 1+2 — protocol message counts and end-to-end latency     *)
(* ---------------------------------------------------------------- *)

let e1 () =
  section "E1: integrity-request protocol (Fig. 1+2) — cost per query";
  Printf.printf "%-14s %4s %5s | %9s %8s %8s %8s | %10s\n" "topology" "sw" "hosts"
    "packet_in" "auth_req" "auth_rep" "answers" "e2e (ms)";
  let p = Workload.Topogen.default_params in
  let cases =
    [
      ("linear-4", Workload.Topogen.linear p 4);
      ("linear-8", Workload.Topogen.linear p 8);
      ("ring-8", Workload.Topogen.ring p 8);
      ("grid-3x3", Workload.Topogen.grid p ~rows:3 ~cols:3);
      ("fat-tree-k4", Workload.Topogen.fat_tree p ~k:4);
    ]
  in
  List.iter
    (fun (name, topo) ->
      let s = build_scenario topo in
      let packet_ins0 = (Netsim.Net.stats s.net).packet_ins in
      let svc0 = Rvaas.Service.stats s.service in
      let auth0 = svc0.auth_requests_sent
      and rep0 = svc0.auth_replies_accepted
      and ans0 = svc0.answers_sent in
      match isolation_outcome s ~host:0 with
      | None -> Printf.printf "%-14s: no answer\n" name
      | Some outcome ->
        let svc = Rvaas.Service.stats s.service in
        Printf.printf "%-14s %4d %5d | %9d %8d %8d %8d | %10.3f\n" name
          (Workload.Topogen.switch_count topo)
          (Workload.Topogen.host_count topo)
          ((Netsim.Net.stats s.net).packet_ins - packet_ins0)
          (svc.auth_requests_sent - auth0)
          (svc.auth_replies_accepted - rep0)
          (svc.answers_sent - ans0)
          (1000.0 *. (outcome.answered_at -. outcome.issued_at)))
    cases

(* ---------------------------------------------------------------- *)
(* E2: Fig. 1+2 under a join attack — the counting defence at work   *)
(* ---------------------------------------------------------------- *)

let e2 () =
  section "E2: isolation query, benign vs. join attack (fat-tree k=4)";
  Printf.printf "%-12s | %9s %9s %9s | %s\n" "condition" "endpoints" "auth_req"
    "auth_rep" "alarms";
  let run ~attack =
    let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
    let s = build_scenario topo in
    if attack then begin
      Sdnctl.Attack.launch s.net s.addressing
        ~conn:(Sdnctl.Provider.conn s.provider)
        (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.1)
    end;
    match isolation_outcome s ~host:0 with
    | None ->
      Printf.printf "%-12s | no answer\n" (if attack then "join attack" else "benign")
    | Some outcome ->
      let answer = outcome.Rvaas.Client_agent.answer in
      let policy = Workload.Scenario.policy_for s ~client:0 in
      let alarms = Rvaas.Detector.check_answer policy answer in
      Printf.printf "%-12s | %9d %9d %9d | %s\n"
        (if attack then "join attack" else "benign")
        (List.length answer.endpoints)
        answer.total_auth_requests answer.auth_replies
        (if alarms = [] then "none"
         else String.concat "; " (List.map Rvaas.Detector.describe alarms))
  in
  run ~attack:false;
  run ~attack:true

(* ---------------------------------------------------------------- *)
(* E3: transient attacks vs. polling strategy                        *)
(* ---------------------------------------------------------------- *)

let e3_trials = 20

let e3_detected ~polling ~seed ~duration =
  let poll_period = 0.1 in
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
  let s = build_scenario ~seed ~polling ~loss:0.8 topo in
  let commission = 5.0 *. poll_period in
  Workload.Scenario.run s ~until:commission;
  let baseline = Workload.Scenario.baseline s in
  (* Phase-aligned attacker: strikes right after a periodic poll. *)
  let start = (8.0 *. poll_period) +. 0.005 in
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Transient
       { attack = Sdnctl.Attack.Blackhole { victim_host = 0 }; start; duration });
  Workload.Scenario.run s ~until:(start +. (4.0 *. poll_period));
  let entries =
    List.filter
      (fun (e : Rvaas.Monitor.history_entry) -> e.at > commission)
      (Rvaas.Monitor.history s.monitor)
  in
  List.exists
    (function Rvaas.Detector.Config_drift _ -> true | _ -> false)
    (Rvaas.Detector.check_history baseline entries)

let e3 () =
  section
    "E3: transient reconfiguration attacks — detection probability\n\
     (phase-aligned attacker, 80% monitor-event loss, poll period / mean 100 ms)";
  Printf.printf "%-14s | %10s %12s %12s\n" "duration (ms)" "no polling" "periodic"
    "randomized";
  let strategies =
    [
      Rvaas.Monitor.No_polling;
      Rvaas.Monitor.Periodic 0.1;
      Rvaas.Monitor.Randomized 0.1;
    ]
  in
  List.iter
    (fun duration ->
      let rates =
        List.map
          (fun polling ->
            let hits = ref 0 in
            for seed = 1 to e3_trials do
              if e3_detected ~polling ~seed ~duration then incr hits
            done;
            100.0 *. float_of_int !hits /. float_of_int e3_trials)
          strategies
      in
      match rates with
      | [ none; periodic; randomized ] ->
        Printf.printf "%-14.0f | %9.0f%% %11.0f%% %11.0f%%\n" (duration *. 1000.0) none
          periodic randomized
      | _ -> ())
    [ 0.01; 0.025; 0.05; 0.1; 0.2 ]

(* ---------------------------------------------------------------- *)
(* E4: verification latency vs. network size                         *)
(* ---------------------------------------------------------------- *)

let e4 () =
  section "E4: logical verification latency vs. network size";
  Printf.printf "%-14s %4s %5s %6s | %12s %11s | %12s\n" "topology" "sw" "hosts" "rules"
    "reach (ms)" "rule visits" "isolate (ms)";
  let p = Workload.Topogen.default_params in
  let rng = Support.Rng.create 7 in
  let cases =
    [
      ("fat-tree-k4", Workload.Topogen.fat_tree p ~k:4);
      ("fat-tree-k6", Workload.Topogen.fat_tree p ~k:6);
      ("waxman-20", Workload.Topogen.waxman p rng ~n:20 ~alpha:0.4 ~beta:0.4);
      ("waxman-40", Workload.Topogen.waxman p rng ~n:40 ~alpha:0.4 ~beta:0.4);
      ("waxman-80", Workload.Topogen.waxman p rng ~n:80 ~alpha:0.3 ~beta:0.3);
    ]
  in
  List.iter
    (fun (name, topo) ->
      let s = build_scenario ~clients:4 topo in
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
      let flows_of sw = Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot s.monitor) ~sw in
      let rules =
        List.fold_left
          (fun acc sw -> acc + List.length (flows_of sw))
          0
          (Netsim.Topology.switches topo)
      in
      let att = Option.get (Netsim.Topology.host_attachment topo 0) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> assert false
      in
      let result, reach_s =
        wall (fun () ->
            Rvaas.Verifier.reach ~flows_of topo ~src_sw
              ~src_port:att.Netsim.Topology.port
              ~hs:(Rvaas.Verifier.ip_traffic_hs ()))
      in
      let _, isolate_s =
        wall (fun () ->
            Rvaas.Service.evaluate s.service ~client:0 ~sw:src_sw
              ~port:att.Netsim.Topology.port
              (Rvaas.Query.make Rvaas.Query.Isolation))
      in
      Printf.printf "%-14s %4d %5d %6d | %12.3f %11d | %12.2f\n%!" name
        (Workload.Topogen.switch_count topo)
        (Workload.Topogen.host_count topo)
        rules (1000.0 *. reach_s) result.Rvaas.Verifier.rule_visits
        (1000.0 *. isolate_s))
    cases

(* ---------------------------------------------------------------- *)
(* E5: verification cost vs. rule-table size / cube growth           *)
(* ---------------------------------------------------------------- *)

let e5 () =
  section "E5: verification cost vs. extra filter rules per switch (linear-3)";
  Printf.printf "%-12s %6s | %12s %11s\n" "extra rules" "rules" "reach (ms)" "rule visits";
  List.iter
    (fun extra ->
      let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
      let s = build_scenario ~clients:1 topo in
      (* Inject [extra] drop filters per switch at priority 150 with
         varied src-prefix x dst-port matches — the pattern that makes
         rule guards multiply into many cubes. *)
      let conn = Sdnctl.Provider.conn s.provider in
      List.iter
        (fun sw ->
          for i = 0 to extra - 1 do
            let m =
              Ofproto.Match_.any
              |> fun m ->
              Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip
              |> fun m ->
              Ofproto.Match_.with_prefix m Hspace.Field.Ip_src
                ~value:((10 lsl 24) lor (i lsl 8))
                ~prefix_len:24
              |> fun m -> Ofproto.Match_.with_exact m Hspace.Field.Tp_dst (5000 + i)
            in
            let spec = Ofproto.Flow_entry.make_spec ~cookie:77 ~priority:150 m [] in
            Netsim.Net.send s.net conn ~sw
              (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec))
          done)
        (Netsim.Topology.switches topo);
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
      let flows_of sw = Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot s.monitor) ~sw in
      let rules =
        List.fold_left
          (fun acc sw -> acc + List.length (flows_of sw))
          0
          (Netsim.Topology.switches topo)
      in
      let att = Option.get (Netsim.Topology.host_attachment topo 0) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> assert false
      in
      let result, reach_s =
        wall (fun () ->
            Rvaas.Verifier.reach ~flows_of topo ~src_sw
              ~src_port:att.Netsim.Topology.port
              ~hs:(Rvaas.Verifier.ip_traffic_hs ()))
      in
      Printf.printf "%-12d %6d | %12.3f %11d\n%!" extra rules (1000.0 *. reach_s)
        result.Rvaas.Verifier.rule_visits)
    [ 0; 10; 20; 40; 80 ]

(* ---------------------------------------------------------------- *)
(* E6: monitoring overhead — passive events vs. active polling       *)
(* ---------------------------------------------------------------- *)

let e6 () =
  section "E6: monitoring overhead under configuration churn (linear-4, 2 s window)";
  Printf.printf "%-12s %-18s | %8s %8s %8s | %10s %9s\n" "churn (/s)" "polling" "rx"
    "events" "polls" "divergent" "age (ms)";
  let strategies =
    [
      ("none", Rvaas.Monitor.No_polling);
      ("periodic-100ms", Rvaas.Monitor.Periodic 0.1);
      ("random-100ms", Rvaas.Monitor.Randomized 0.1);
    ]
  in
  List.iter
    (fun churn ->
      List.iter
        (fun (pname, polling) ->
          let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
          let s = build_scenario ~clients:1 ~polling topo in
          let conn = Sdnctl.Provider.conn s.provider in
          let sim = Netsim.Net.sim s.net in
          let t0 = Netsim.Sim.now sim in
          (* Churn: add/remove a dummy rule alternately at [churn] ops/s. *)
          let gap = 1.0 /. float_of_int churn in
          let count = int_of_float (2.0 /. gap) in
          for i = 0 to count - 1 do
            let m =
              Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Tp_src 7777
            in
            let msg =
              if i mod 2 = 0 then
                Ofproto.Message.Flow_mod
                  (Ofproto.Message.Add_flow
                     (Ofproto.Flow_entry.make_spec ~cookie:5 ~priority:60 m []))
              else
                Ofproto.Message.Flow_mod
                  (Ofproto.Message.Delete_flow { match_ = m; priority = Some 60 })
            in
            Netsim.Sim.schedule_at sim ~time:(t0 +. (float_of_int i *. gap)) (fun () ->
                Netsim.Net.send s.net conn ~sw:0 msg)
          done;
          Workload.Scenario.run s ~until:(t0 +. 2.0);
          let snapshot = Rvaas.Monitor.snapshot s.monitor in
          let divergent =
            Rvaas.Snapshot.divergence snapshot ~actual:(Workload.Scenario.actual_flows s)
          in
          Printf.printf "%-12d %-18s | %8d %8d %8d | %10d %9.1f\n" churn pname
            (Netsim.Net.conn_rx (Rvaas.Monitor.conn s.monitor))
            (Rvaas.Monitor.events_seen s.monitor)
            (Rvaas.Monitor.polls_sent s.monitor)
            divergent
            (1000.0 *. Rvaas.Snapshot.age snapshot ~now:(Netsim.Sim.now sim)))
        strategies)
    [ 10; 100; 500 ]

(* ---------------------------------------------------------------- *)
(* E7: detection coverage across the attack taxonomy                 *)
(* ---------------------------------------------------------------- *)

type e7_row = { attack_name : string; detections : (string * bool) list }

let e7 () =
  section "E7: detection matrix — attack taxonomy x query type (ring-6, RU on sw5)";
  let query_names = [ "isolation"; "reach"; "geo"; "path"; "fairness"; "history" ] in
  let run_attack attack_name make_attack =
    let topo = Workload.Topogen.ring Workload.Topogen.default_params 6 in
    (* hosts h0..h5 on sw0..sw5; clients: even hosts -> c0, odd -> c1 *)
    let s = build_scenario ~clients:2 topo in
    Geo.Registry.set_switch s.geo_truth ~sw:5
      (Geo.Location.make ~lat:55.75 ~lon:37.62 ~jurisdiction:"RU");
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
    let baseline = Workload.Scenario.baseline s in
    let t_attack = Netsim.Sim.now (Netsim.Net.sim s.net) in
    (match make_attack t_attack with
    | None -> ()
    | Some attack ->
      Sdnctl.Attack.launch s.net s.addressing
        ~conn:(Sdnctl.Provider.conn s.provider)
        attack);
    Workload.Scenario.run s ~until:(t_attack +. 0.5);
    let topo_net = Netsim.Net.topology s.net in
    let own_points = Sdnctl.Addressing.access_points s.addressing topo_net ~client:0 in
    let peer_ip = (Option.get (Sdnctl.Addressing.host s.addressing ~host:2)).ip in
    let policy =
      {
        (Workload.Scenario.policy_for s ~client:0) with
        Rvaas.Detector.forbidden_jurisdictions = [ "RU" ];
        min_rate_kbps = Some 1000;
        expected_reachable = own_points;
      }
    in
    let detected_by query =
      match Workload.Scenario.query_and_wait s ~host:0 query ~timeout:2.0 with
      | None -> false
      | Some outcome ->
        Rvaas.Detector.check_answer policy outcome.Rvaas.Client_agent.answer <> []
    in
    let scope = Rvaas.Verifier.dst_ip_hs peer_ip in
    let detections =
      [
        ("isolation", detected_by (Rvaas.Query.make Rvaas.Query.Isolation));
        ("reach", detected_by (Rvaas.Query.make Rvaas.Query.Reachable_endpoints));
        ("geo", detected_by (Rvaas.Query.make ~scope Rvaas.Query.Geo));
        ( "path",
          detected_by (Rvaas.Query.make (Rvaas.Query.Path_length { dst_ip = peer_ip })) );
        ("fairness", detected_by (Rvaas.Query.make Rvaas.Query.Fairness));
        ( "history",
          let entries =
            List.filter
              (fun (e : Rvaas.Monitor.history_entry) -> e.at > t_attack -. 1e-9)
              (Rvaas.Monitor.history s.monitor)
          in
          Rvaas.Detector.check_history baseline entries
          |> List.exists (function Rvaas.Detector.Config_drift _ -> true | _ -> false) );
      ]
    in
    { attack_name; detections }
  in
  let rows =
    [
      run_attack "none (benign)" (fun _ -> None);
      run_attack "join" (fun _ ->
          Some (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 }));
      run_attack "divert via RU" (fun _ ->
          (* The long way around the ring: through sw5 (RU) and sw4. *)
          Some (Sdnctl.Attack.Divert { src_host = 0; dst_host = 2; via_sw = 4 }));
      run_attack "exfiltrate" (fun _ ->
          Some (Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 1 }));
      run_attack "blackhole" (fun _ -> Some (Sdnctl.Attack.Blackhole { victim_host = 2 }));
      run_attack "meter squeeze" (fun _ ->
          Some (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 50 }));
      run_attack "transient" (fun now ->
          Some
            (Sdnctl.Attack.Transient
               {
                 attack = Sdnctl.Attack.Blackhole { victim_host = 2 };
                 start = now +. 0.05;
                 duration = 0.05;
               }));
    ]
  in
  Printf.printf "%-16s |" "attack";
  List.iter (fun q -> Printf.printf " %-9s" q) query_names;
  print_newline ();
  List.iter
    (fun { attack_name; detections } ->
      Printf.printf "%-16s |" attack_name;
      List.iter
        (fun q ->
          let hit = List.assoc q detections in
          Printf.printf " %-9s" (if hit then "DETECT" else "-"))
        query_names;
      print_newline ())
    rows

(* ---------------------------------------------------------------- *)
(* E8: geo-inference accuracy of the three location modes            *)
(* ---------------------------------------------------------------- *)

let e8 () =
  section "E8: switch-location inference accuracy (waxman-30, ground truth known)";
  let rng = Support.Rng.create 99 in
  let topo =
    Workload.Topogen.waxman Workload.Topogen.default_params rng ~n:30 ~alpha:0.4
      ~beta:0.4
  in
  let jurisdictions = [ "EU"; "US"; "CH"; "JP" ] in
  let switch_locations =
    List.map
      (fun sw -> (sw, Geo.Location.random rng ~jurisdictions))
      (Netsim.Topology.switches topo)
  in
  let jitter (l : Geo.Location.t) spread =
    Geo.Location.make
      ~lat:
        (Float.max (-90.)
           (Float.min 90. (l.lat +. Support.Rng.float rng spread -. (spread /. 2.0))))
      ~lon:(l.lon +. Support.Rng.float rng spread -. (spread /. 2.0))
      ~jurisdiction:l.jurisdiction
  in
  (* Crowd-sourced reports: each host reports its own (jittered) position;
     ~70% of switches have at least one attached reporting client. *)
  let client_reports =
    List.filter_map
      (fun host ->
        match Netsim.Topology.host_attachment topo host with
        | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; _ } ->
          if Support.Rng.bernoulli rng 0.7 then
            Some (jitter (List.assoc sw switch_locations) 0.5, sw)
          else None
        | Some _ | None -> None)
      (Netsim.Topology.hosts topo)
  in
  (* Geo-IP: per-switch /24 management prefixes; the public table knows
     ~80% of them, at city-level (jittered) accuracy. *)
  let switch_mgmt_ip =
    List.map
      (fun (sw, _) -> (sw, (10 lsl 24) lor (255 lsl 16) lor (sw lsl 8) lor 1))
      switch_locations
  in
  let geoip_table =
    List.filter_map
      (fun (sw, loc) ->
        if Support.Rng.bernoulli rng 0.8 then
          Some ((10 lsl 24) lor (255 lsl 16) lor (sw lsl 8), 24, jitter loc 1.0)
        else None)
      switch_locations
  in
  let gt = { Geo.Infer.switch_locations; client_reports; switch_mgmt_ip } in
  let truth = Geo.Infer.disclosed gt in
  let sws = Netsim.Topology.switches topo in
  let report name believed =
    let coverage = Geo.Registry.coverage believed ~sws in
    let err = Geo.Infer.mean_error_km ~truth ~believed in
    let acc = Geo.Infer.jurisdiction_accuracy ~truth ~believed in
    Printf.printf "%-18s | %8.0f%% | %14s | %16s\n" name (100.0 *. coverage)
      (match err with None -> "n/a" | Some e -> Printf.sprintf "%.1f km" e)
      (match acc with None -> "n/a" | Some a -> Printf.sprintf "%.0f%%" (100.0 *. a))
  in
  Printf.printf "%-18s | %9s | %14s | %16s\n" "mode" "coverage" "mean error"
    "jurisdiction ok";
  report "disclosed" (Geo.Infer.disclosed gt);
  report "crowd-sourced" (Geo.Infer.crowd_sourced gt);
  report "geo-ip" (Geo.Infer.geo_ip gt ~table:geoip_table)

(* ---------------------------------------------------------------- *)
(* E9: ablation -- lazy shadow subtraction vs. materialised guards   *)
(* ---------------------------------------------------------------- *)

let e9 () =
  section
    "E9: ablation -- verifier guard representation (linear-3 + overlapping filters)\n\
     lazy = shadows subtracted per propagated set (Verifier);\n\
     eager = guards materialised as cube unions (Verifier_ref)";
  Printf.printf "%-12s | %12s %12s | %9s\n" "extra rules" "lazy (ms)" "eager (ms)"
    "speedup";
  List.iter
    (fun extra ->
      let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
      let s = build_scenario ~clients:1 topo in
      let conn = Sdnctl.Provider.conn s.provider in
      List.iter
        (fun sw ->
          for i = 0 to extra - 1 do
            let m =
              Ofproto.Match_.any
              |> fun m ->
              Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip
              |> fun m ->
              Ofproto.Match_.with_prefix m Hspace.Field.Ip_src
                ~value:((10 lsl 24) lor (i lsl 8))
                ~prefix_len:24
              |> fun m -> Ofproto.Match_.with_exact m Hspace.Field.Tp_dst (5000 + i)
            in
            let spec = Ofproto.Flow_entry.make_spec ~cookie:77 ~priority:150 m [] in
            Netsim.Net.send s.net conn ~sw
              (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec))
          done)
        (Netsim.Topology.switches topo);
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
      let flows_of = Workload.Scenario.actual_flows s in
      let att = Option.get (Netsim.Topology.host_attachment topo 0) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> assert false
      in
      let hs = Rvaas.Verifier.ip_traffic_hs () in
      let _, lazy_s =
        wall (fun () ->
            Rvaas.Verifier.reach ~flows_of topo ~src_sw
              ~src_port:att.Netsim.Topology.port ~hs)
      in
      (* The eager representation is super-exponential in overlapping
         filters: beyond one extra rule it does not terminate in
         reasonable time, which is the ablation's finding. *)
      if extra <= 1 then begin
        let _, eager_s =
          wall (fun () ->
              Rvaas.Verifier_ref.reach ~flows_of topo ~src_sw
                ~src_port:att.Netsim.Topology.port ~hs)
        in
        Printf.printf "%-12d | %12.3f %12.3f | %8.1fx\n%!" extra (1000.0 *. lazy_s)
          (1000.0 *. eager_s)
          (eager_s /. Float.max 1e-9 lazy_s)
      end
      else
        Printf.printf "%-12d | %12.3f %12s | %9s\n%!" extra (1000.0 *. lazy_s)
          "(diverges)" "-")
    [ 0; 1; 2; 5; 10 ]

(* ---------------------------------------------------------------- *)
(* E10: federated queries across provider domains (section IV-C.a)   *)
(* ---------------------------------------------------------------- *)

let e10 () =
  section "E10: federated reachability across provider domains (linear-12)";
  Printf.printf "%-10s | %9s %11s %10s | %10s\n" "domains" "endpoints" "sub-queries"
    "domains hit" "wall (ms)";
  List.iter
    (fun domain_count ->
      let switches = 12 in
      let topo = Workload.Topogen.linear Workload.Topogen.default_params switches in
      let s =
        Workload.Scenario.build
          { (Workload.Scenario.default_spec topo) with clients = 1; isolation = false }
      in
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
      let rng = Support.Rng.create 12 in
      let per_domain = switches / domain_count in
      let domains =
        List.init domain_count (fun d ->
            let lo = d * per_domain in
            let hi = if d = domain_count - 1 then switches - 1 else lo + per_domain - 1 in
            {
              Rvaas.Federation.name = Printf.sprintf "provider-%d" d;
              member = (fun sw -> sw >= lo && sw <= hi);
              flows_of = Workload.Scenario.actual_flows s;
              geo = s.geo_truth;
              keypair =
                Cryptosim.Keys.generate rng ~owner:(Printf.sprintf "provider-%d" d);
            })
      in
      let fed = Rvaas.Federation.create topo domains in
      let result, wall_s =
        wall (fun () ->
            Rvaas.Federation.reach fed ~start_domain:"provider-0" ~src_sw:0 ~src_port:0
              ~hs:(Rvaas.Verifier.ip_traffic_hs ()))
      in
      Printf.printf "%-10d | %9d %11d %10d | %10.3f\n%!" domain_count
        (List.length result.Rvaas.Federation.endpoints)
        result.Rvaas.Federation.sub_queries
        (List.length result.Rvaas.Federation.domains_traversed)
        (1000.0 *. wall_s))
    [ 1; 2; 3; 4; 6 ]

(* ---------------------------------------------------------------- *)
(* E11: incremental verification context under configuration churn   *)
(* ---------------------------------------------------------------- *)

let e11 () =
  section
    "E11: incremental vs. fresh verification context under churn (waxman-40)\n\
     isolation-style batches (one reach per access point) interleaved with\n\
     rule churn on one switch; fresh rebuilds all guards per batch,\n\
     incremental invalidates only the churned switch";
  Printf.printf "%-14s | %14s %14s | %9s\n" "batches" "fresh (ms/b)" "incremental"
    "speedup";
  List.iter
    (fun batches ->
      let rng = Support.Rng.create 7 in
      let topo =
        Workload.Topogen.waxman Workload.Topogen.default_params rng ~n:40 ~alpha:0.4
          ~beta:0.4
      in
      let s = build_scenario ~clients:2 topo in
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
      let flows_of sw = Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot s.monitor) ~sw in
      let net_topo = Netsim.Net.topology s.net in
      let points = Rvaas.Verifier.access_points net_topo in
      let hs = Rvaas.Verifier.ip_traffic_hs () in
      let apply_churn i =
        let m =
          Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Tp_src (10000 + i)
        in
        Ofproto.Flow_table.add
          (Netsim.Net.table s.net ~sw:0)
          (Ofproto.Flow_entry.make_spec ~cookie:9 ~priority:50 m [])
          ~now:0.0
      in
      let batch ctx =
        List.iter
          (fun (p : Rvaas.Verifier.endpoint) ->
            ignore (Rvaas.Verifier.reach_in ctx ~src_sw:p.sw ~src_port:p.port ~hs))
          points
      in
      let run_mode ~incremental =
        let ctx = ref (Rvaas.Verifier.context ~flows_of net_topo) in
        let t0 = now_s () in
        for i = 0 to batches - 1 do
          apply_churn i;
          if incremental then Rvaas.Verifier.invalidate_switch !ctx ~sw:0
          else ctx := Rvaas.Verifier.context ~flows_of net_topo;
          batch !ctx
        done;
        (now_s () -. t0) /. float_of_int batches
      in
      let fresh = run_mode ~incremental:false in
      let incremental = run_mode ~incremental:true in
      Printf.printf "%-14d | %14.1f %14.1f | %8.1fx\n%!" batches (1000.0 *. fresh)
        (1000.0 *. incremental)
        (fresh /. Float.max 1e-9 incremental))
    [ 3; 6 ]

(* ---------------------------------------------------------------- *)
(* E12: configuration vs. behaviour -- meter rate vs. goodput        *)
(* ---------------------------------------------------------------- *)

let e12 () =
  section
    "E12: fairness -- configured meter rate vs. observed goodput (linear-3)\n\
     offered load 1600 kbps; the Fairness query reads the configuration,\n\
     the traffic generator observes the data plane";
  Printf.printf "%-12s | %16s | %14s\n" "meter (kbps)" "fairness answer" "goodput (kbps)";
  List.iter
    (fun meter_rate ->
      let topo = Workload.Topogen.linear Workload.Topogen.default_params 3 in
      let s = build_scenario ~clients:1 topo in
      (match meter_rate with
      | None -> ()
      | Some rate_kbps ->
        Sdnctl.Attack.launch s.net s.addressing
          ~conn:(Sdnctl.Provider.conn s.provider)
          (Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps });
        Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2));
      (* Configuration view via the Fairness query evaluation. *)
      let att = Option.get (Netsim.Topology.host_attachment (Netsim.Net.topology s.net) 0) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> assert false
      in
      let answer, _ =
        Rvaas.Service.evaluate s.service ~client:0 ~sw:src_sw
          ~port:att.Netsim.Topology.port
          (Rvaas.Query.make Rvaas.Query.Fairness)
      in
      let reported =
        match answer.Rvaas.Query.meters with
        | [] -> "no meters"
        | meters ->
          String.concat ", "
            (List.map (fun (_, rate) -> string_of_int rate ^ " kbps") meters)
      in
      (* Behaviour via the traffic generator. *)
      let t0 = Netsim.Sim.now (Netsim.Net.sim s.net) in
      let flow =
        Workload.Trafficgen.make_flow s ~src_host:0 ~dst_host:2 ~rate_pps:400.0
          ~size_bytes:500 ~start:(t0 +. 0.01) ~duration:1.0
      in
      let goodput =
        match Workload.Trafficgen.run s [ flow ] ~until:(t0 +. 2.0) with
        | [ r ] -> Workload.Trafficgen.goodput_kbps r
        | _ -> 0.0
      in
      Printf.printf "%-12s | %16s | %14.0f\n%!"
        (match meter_rate with None -> "none" | Some r -> string_of_int r)
        reported goodput)
    [ None; Some 50; Some 100; Some 500; Some 1000 ]

(* ---------------------------------------------------------------- *)
(* E13: parallel isolation sweep + digest-keyed result cache         *)
(* ---------------------------------------------------------------- *)

let e13 () =
  section
    "E13: parallel + incremental verification engine\n\
     isolation query = one reach pass per access point, partitioned over a\n\
     Support.Pool of worker domains; cold = empty result cache, warm = the\n\
     same query repeated (digest-keyed cache hits)";
  Printf.printf "%-14s %7s | %11s %11s | %9s %10s | %8s\n" "topology" "workers"
    "cold (ms)" "warm (ms)" "vs 1 wkr" "warm gain" "hit rate";
  let p = Workload.Topogen.default_params in
  let cases =
    [
      ("fat-tree-k4", Workload.Topogen.fat_tree p ~k:4);
      ("fat-tree-k6", Workload.Topogen.fat_tree p ~k:6);
    ]
  in
  List.iter
    (fun (name, topo) ->
      let s = build_scenario topo in
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
      let att = Option.get (Netsim.Topology.host_attachment topo 0) in
      let src_sw =
        match att.Netsim.Topology.node with
        | Netsim.Topology.Switch sw -> sw
        | _ -> assert false
      in
      let query = Rvaas.Query.make Rvaas.Query.Isolation in
      let eval () =
        ignore
          (Rvaas.Service.evaluate s.service ~client:0 ~sw:src_sw
             ~port:att.Netsim.Topology.port query)
      in
      let cache = Rvaas.Service.reach_cache s.service in
      let base_cold = ref 0.0 in
      List.iter
        (fun workers ->
          let pool = Support.Pool.create workers in
          Rvaas.Service.set_pool s.service pool;
          Rvaas.Reach_cache.invalidate cache;
          let (), cold = wall eval in
          let st = Rvaas.Reach_cache.stats cache in
          let hits0 = st.Rvaas.Reach_cache.hits
          and misses0 = st.Rvaas.Reach_cache.misses in
          (* Warm = median of repeated cache-hit evaluations; one
             sample is too jittery to carry a speedup column. *)
          let warm =
            percentile 0.5
              (List.init 5 (fun _ -> snd (wall eval)))
          in
          let dh = st.Rvaas.Reach_cache.hits - hits0
          and dm = st.Rvaas.Reach_cache.misses - misses0 in
          let hit_rate =
            if dh + dm = 0 then 0.0 else float_of_int dh /. float_of_int (dh + dm)
          in
          if workers = 1 then base_cold := cold;
          Printf.printf "%-14s %7d | %11.3f %11.3f | %8.2fx %9.1fx | %7.0f%%\n%!" name
            workers (1000.0 *. cold) (1000.0 *. warm)
            (!base_cold /. Float.max 1e-9 cold)
            (cold /. Float.max 1e-9 warm)
            (100.0 *. hit_rate);
          Support.Pool.shutdown pool)
        [ 1; 2; 4; 8 ];
      (* Leave the scenario with a pool it can still use. *)
      Rvaas.Service.set_pool s.service (Support.Pool.create 1))
    cases;
  Printf.printf
    "\n(workers > available cores cannot speed anything up; this table is only\n\
     meaningful on multi-core hardware — %d core(s) visible here)\n"
    (Domain.recommended_domain_count ())

(* ---------------------------------------------------------------- *)
(* E14: lossy-channel robustness — fault injection × retry policy    *)
(* ---------------------------------------------------------------- *)

let e14_trials = 20

let e14_attack_trials = 10

(* Retry stack under test: 3 auth attempts with 10 ms backoff base, a
   50 ms stats-poll retry deadline, and one client re-request after
   500 ms of answer silence. *)
let e14_retry_spec topo ~seed ~loss ~retry =
  let spec =
    {
      (Workload.Scenario.default_spec topo) with
      seed;
      rvaas_faults = Netsim.Faults.loss loss;
    }
  in
  if retry then
    {
      spec with
      auth_retry = { Rvaas.Service.attempts = 3; base_delay = 0.01 };
      poll_retry = Some 0.05;
      agent_resend = Some 0.5;
    }
  else spec

(* One benign trial: does the query resolve to the verdict a lossless
   run produces — every own endpoint present and authenticated, no
   degradation, no alarms?  Anything the client would notice (degraded
   flag, no answer) is an honest failure; a clean-looking answer that
   differs from the lossless verdict is silently wrong. *)
let e14_benign_trial ~seed ~loss ~retry =
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let s = Workload.Scenario.build (e14_retry_spec topo ~seed ~loss ~retry) in
  (* Let the poll/retry machinery converge the snapshot despite loss. *)
  Workload.Scenario.run s ~until:0.5;
  let expected =
    List.length (Sdnctl.Addressing.access_points s.addressing topo ~client:0)
  in
  let outcome = isolation_outcome s ~host:0 in
  let svc = Rvaas.Service.stats s.service in
  let overhead =
    svc.auth_retransmissions
    + Rvaas.Client_agent.resends (Workload.Scenario.agent s ~host:0)
    + Rvaas.Monitor.poll_retries s.monitor
  in
  let latency =
    match outcome with
    | None -> None
    | Some o -> Some (o.Rvaas.Client_agent.answered_at -. o.issued_at)
  in
  let verdict =
    match outcome with
    | None -> `Lost
    | Some o ->
      let a = o.Rvaas.Client_agent.answer in
      let alarms =
        Rvaas.Detector.check_answer (Workload.Scenario.policy_for s ~client:0) a
      in
      let lossless =
        (not a.Rvaas.Query.degraded)
        && a.auth_replies = a.total_auth_requests
        && List.length a.endpoints = expected
        && List.for_all
             (fun (e : Rvaas.Query.endpoint_report) -> e.authenticated)
             a.endpoints
        && alarms = []
      in
      if lossless then `Ok else if a.Rvaas.Query.degraded then `Degraded else `Wrong
  in
  (verdict, latency, overhead)

(* One attack trial: a join attack is live; detection = an answer
   arrived and the client's detector raised at least one alarm. *)
let e14_attack_trial ~seed ~loss ~retry =
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let s = Workload.Scenario.build (e14_retry_spec topo ~seed ~loss ~retry) in
  Workload.Scenario.run s ~until:0.5;
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  match isolation_outcome s ~host:0 with
  | None -> false
  | Some o ->
    Rvaas.Detector.check_answer
      (Workload.Scenario.policy_for s ~client:0)
      o.Rvaas.Client_agent.answer
    <> []

let e14 () =
  section
    "E14: lossy control channel — fault injection vs. retry stack (fat-tree k=4)\n\
     retry = 3 auth attempts (10 ms backoff) + 50 ms poll retry + client re-request;\n\
     verdict% = answers equal to the lossless run, degraded% = honestly flagged\n\
     incomplete, lost = no answer, WRONG = clean-looking but incorrect (must be 0)";
  Printf.printf "%-7s %-5s | %8s %9s %6s %6s | %9s | %7s\n" "loss" "retry" "verdict%"
    "degraded%" "lost%" "WRONG" "lat (ms)" "rtx/qry";
  let losses = [ 0.0; 0.01; 0.05; 0.10 ] in
  List.iter
    (fun loss ->
      List.iter
        (fun retry ->
          let ok = ref 0
          and degraded = ref 0
          and lost = ref 0
          and wrong = ref 0
          and lat_sum = ref 0.0
          and lat_n = ref 0
          and overhead = ref 0 in
          for seed = 1 to e14_trials do
            let verdict, latency, extra = e14_benign_trial ~seed ~loss ~retry in
            (match verdict with
            | `Ok -> incr ok
            | `Degraded -> incr degraded
            | `Lost -> incr lost
            | `Wrong -> incr wrong);
            (match latency with
            | Some l ->
              lat_sum := !lat_sum +. l;
              incr lat_n
            | None -> ());
            overhead := !overhead + extra
          done;
          let pct n = 100.0 *. float_of_int n /. float_of_int e14_trials in
          Printf.printf "%-7s %-5s | %7.0f%% %8.0f%% %5.0f%% %6d | %9.3f | %7.2f\n%!"
            (Printf.sprintf "%g%%" (100.0 *. loss))
            (if retry then "on" else "off")
            (pct !ok) (pct !degraded) (pct !lost) !wrong
            (if !lat_n = 0 then Float.nan
             else 1000.0 *. !lat_sum /. float_of_int !lat_n)
            (float_of_int !overhead /. float_of_int e14_trials))
        [ false; true ])
    losses;
  Printf.printf "\njoin-attack detection rate under the same fault model:\n";
  Printf.printf "%-7s | %9s %9s\n" "loss" "no retry" "retry";
  List.iter
    (fun loss ->
      let rate retry =
        let hits = ref 0 in
        for seed = 101 to 100 + e14_attack_trials do
          if e14_attack_trial ~seed ~loss ~retry then incr hits
        done;
        100.0 *. float_of_int !hits /. float_of_int e14_attack_trials
      in
      let off = rate false in
      let on = rate true in
      Printf.printf "%-7s | %8.0f%% %8.0f%%\n%!"
        (Printf.sprintf "%g%%" (100.0 *. loss))
        off on)
    losses

(* ---------------------------------------------------------------- *)
(* E15: delta-aware reach cache under rolling single-switch updates  *)
(* ---------------------------------------------------------------- *)

let e15_rounds = 10

let e15 () =
  section
    "E15: reach cache under rolling single-switch updates\n\
     each round Flow-Mods one switch (round-robin) and then replays a fixed\n\
     interactive workload: dst-scoped reach queries from 8 access points plus one\n\
     isolation sweep.  full = any change flushes the whole cache (previous\n\
     behaviour, emulated by an extra snapshot-change hook); delta = only entries\n\
     whose reach pass traversed the modified switch are evicted.  hit rate is\n\
     over the reach workload, warmup round excluded";
  Printf.printf "%-14s %-6s %7s | %11s %11s | %8s %16s %11s\n" "topology" "mode" "workers"
    "reach (ms)" "isolate(ms)" "hit rate" "inv/evict/flush" "ring/purged";
  let p = Workload.Topogen.default_params in
  let rng = Support.Rng.create 7 in
  let cases =
    [
      ("fat-tree-k6", Workload.Topogen.fat_tree p ~k:6);
      ("waxman-40", Workload.Topogen.waxman p rng ~n:40 ~alpha:0.4 ~beta:0.4);
    ]
  in
  List.iter
    (fun (name, topo) ->
      List.iter
        (fun (mode, full_invalidate) ->
          List.iter
            (fun workers ->
              let s = build_scenario topo in
              Workload.Scenario.run s
                ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
              let cache = Rvaas.Service.reach_cache s.service in
              if full_invalidate then
                (* Emulate the pre-delta behaviour: every actual change
                   anywhere drops every cached result. *)
                Rvaas.Monitor.on_snapshot_change s.monitor (fun ~sw:_ ~changed ->
                    if changed then Rvaas.Reach_cache.invalidate cache);
              let pool = Support.Pool.create workers in
              Rvaas.Service.set_pool s.service pool;
              let switches = Netsim.Topology.switches topo in
              let points = Rvaas.Verifier.access_points topo in
              let srcs = List.filteri (fun i _ -> i < 8) points in
              (* Two destination addresses: dst-scoped passes have the
                 sparse traversal sets that delta invalidation keeps. *)
              let ip_of (ep : Rvaas.Verifier.endpoint) =
                (Option.get (Sdnctl.Addressing.host s.addressing ~host:ep.host))
                  .Sdnctl.Addressing.ip
              in
              let dsts =
                [ ip_of (List.hd points); ip_of (List.hd (List.rev points)) ]
              in
              let att = List.hd points in
              let query = Rvaas.Query.make Rvaas.Query.Isolation in
              let st = Rvaas.Reach_cache.stats cache in
              let reach_time = ref 0.0
              and reach_n = ref 0
              and iso_time = ref 0.0
              and iso_n = ref 0
              and hits = ref 0
              and misses = ref 0 in
              for round = 0 to e15_rounds - 1 do
                let sw = List.nth switches (round mod List.length switches) in
                let m =
                  Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Tp_src
                    (7000 + round)
                in
                Netsim.Net.send s.net
                  (Sdnctl.Provider.conn s.provider)
                  ~sw
                  (Ofproto.Message.Flow_mod
                     (Ofproto.Message.Add_flow
                        (Ofproto.Flow_entry.make_spec ~cookie:9 ~priority:55 m [])));
                Workload.Scenario.run s
                  ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.05);
                let h0 = st.Rvaas.Reach_cache.hits
                and m0 = st.Rvaas.Reach_cache.misses in
                let (), reach_dt =
                  wall (fun () ->
                      List.iter
                        (fun (src : Rvaas.Verifier.endpoint) ->
                          List.iter
                            (fun ip ->
                              ignore
                                (Rvaas.Service.reach s.service ~src_sw:src.sw
                                   ~src_port:src.port
                                   ~hs:(Rvaas.Verifier.dst_ip_hs ip)))
                            dsts)
                        srcs)
                in
                let dh = st.Rvaas.Reach_cache.hits - h0
                and dm = st.Rvaas.Reach_cache.misses - m0 in
                let (), iso_dt =
                  wall (fun () ->
                      ignore
                        (Rvaas.Service.evaluate s.service ~client:0
                           ~sw:att.Rvaas.Verifier.sw ~port:att.Rvaas.Verifier.port
                           query))
                in
                if round > 0 then begin
                  reach_time := !reach_time +. reach_dt;
                  reach_n := !reach_n + (List.length srcs * List.length dsts);
                  iso_time := !iso_time +. iso_dt;
                  incr iso_n;
                  hits := !hits + dh;
                  misses := !misses + dm
                end
              done;
              let hit_rate =
                if !hits + !misses = 0 then 0.0
                else float_of_int !hits /. float_of_int (!hits + !misses)
              in
              Printf.printf
                "%-14s %-6s %7d | %11.3f %11.3f | %7.0f%% %5d/%5d/%-4d %5d/%-5d\n%!"
                name mode workers
                (1000.0 *. !reach_time /. float_of_int (max 1 !reach_n))
                (1000.0 *. !iso_time /. float_of_int (max 1 !iso_n))
                (100.0 *. hit_rate)
                st.Rvaas.Reach_cache.invalidated
                st.Rvaas.Reach_cache.delta_evictions
                st.Rvaas.Reach_cache.invalidations
                (* The second-chance ring must track the live table, not
                   the eviction history (the clock-leak regression). *)
                (Rvaas.Reach_cache.clock_length cache)
                st.Rvaas.Reach_cache.clock_purged;
              Support.Pool.shutdown pool;
              Rvaas.Service.set_pool s.service (Support.Pool.create 1))
            [ 1; 4 ])
        [ ("full", true); ("delta", false) ])
    cases

(* ---------------------------------------------------------------- *)
(* E16: controller crash mid-attack — recovery time & verdict parity *)
(* ---------------------------------------------------------------- *)

let e16_trials = 5

let e16_config =
  {
    Rvaas.Failover.heartbeat_period = 0.01;
    takeover_timeout = 0.05;
    check_period = 0.01;
    checkpoint_every = 32;
    standbys = 1;
    auto_compact = false;
    replica_lag = 8;
    replica_delay = 0.0;
  }

let e16_scenario ~seed =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  Workload.Scenario.build
    {
      (Workload.Scenario.default_spec topo) with
      seed;
      polling = Rvaas.Monitor.Periodic 0.02;
      (* The output-commit window: a crash can eat an answer that was
         already journalled closed and on the wire.  The client-side
         resend (same nonce, fires after the standby's takeover bound)
         is the end-to-end cover. *)
      agent_resend = Some 0.12;
      ha = Some e16_config;
    }

type e16_verdict = { v_endpoints : int; v_auth : int; v_alarms : string list }

let e16_verdict_of s (outcome : Rvaas.Client_agent.outcome) =
  let answer = outcome.Rvaas.Client_agent.answer in
  let alarms =
    Rvaas.Detector.check_answer (Workload.Scenario.policy_for s ~client:0) answer
  in
  {
    v_endpoints = List.length answer.Rvaas.Query.endpoints;
    v_auth = answer.Rvaas.Query.total_auth_requests;
    v_alarms = List.sort String.compare (List.map Rvaas.Detector.describe alarms);
  }

(* One trial: persistent join attack (it must survive the blind window,
   unlike E3's transients), then an isolation query with the controller
   crashed [crash_offset] seconds after the query went out.
   [crash_offset = None] is the fault-free twin the verdict is compared
   against. *)
let e16_trial ~seed ~crash_offset =
  let s = e16_scenario ~seed in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  Workload.Scenario.run s ~until:0.4;
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:0.5;
  let agent = Workload.Scenario.agent s ~host:0 in
  let result = ref None in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> result := Some o);
  let nonce =
    Rvaas.Client_agent.send_query agent (Rvaas.Query.make Rvaas.Query.Isolation)
  in
  (match crash_offset with
  | Some dt ->
    Workload.Scenario.run s ~until:(0.5 +. dt);
    Rvaas.Failover.crash (Workload.Scenario.controller s);
    Rvaas.Failover.enable_standby (Workload.Scenario.controller s)
  | None -> ());
  let matched (o : Rvaas.Client_agent.outcome) =
    String.equal o.Rvaas.Client_agent.answer.Rvaas.Query.nonce nonce
  in
  let deadline = 2.0 in
  while
    (match !result with Some o -> not (matched o) | None -> true)
    && now () < deadline
  do
    Workload.Scenario.run s ~until:(now () +. 0.01)
  done;
  (* Let the resync watchdog observe the drained poll sweep. *)
  Workload.Scenario.run s ~until:(now () +. 0.25);
  let verdict =
    match !result with Some o when matched o -> Some (e16_verdict_of s o) | _ -> None
  in
  (s, verdict)

let e16 () =
  section
    "E16: controller crash at a random point of the attack workload (linear-4,\n\
     persistent join attack, isolation query in flight; standby: 10 ms\n\
     heartbeats, 50 ms takeover timeout, 10 ms watchdog).  detect = crash ->\n\
     takeover; blind = crash -> post-takeover poll sweep drained; parity =\n\
     verdict equals the fault-free twin (same seed, no crash)";
  Printf.printf "%-5s %10s | %10s %10s | %8s %8s %4s | %-7s %s\n" "seed" "crash (ms)"
    "detect(ms)" "blind (ms)" "replayed" "reissued" "gen" "answer" "parity";
  let strict = Sys.getenv_opt "RVAAS_E16_STRICT" <> None in
  let failures = ref 0 in
  for seed = 1 to e16_trials do
    let rng = Support.Rng.create (seed * 7919) in
    (* The window starts after the Packet-In lands (the query is open
       and journalled) and ends before the auth round completes, so the
       crash usually catches the query in flight. *)
    let crash_offset = 0.0015 +. Support.Rng.float rng 0.0025 in
    let _, expected = e16_trial ~seed ~crash_offset:None in
    let s, verdict = e16_trial ~seed ~crash_offset:(Some crash_offset) in
    let ctrl = Workload.Scenario.controller s in
    match Rvaas.Failover.last_takeover ctrl with
    | None ->
      incr failures;
      Printf.printf "%-5d %10.1f | standby never took over\n" seed
        (1000.0 *. crash_offset)
    | Some r ->
      let detect = r.Rvaas.Failover.detected_at -. r.Rvaas.Failover.crashed_at in
      let blind =
        if r.Rvaas.Failover.resynced_at > 0.0 then
          r.Rvaas.Failover.resynced_at -. r.Rvaas.Failover.crashed_at
        else nan
      in
      let answered = verdict <> None in
      let parity =
        match (verdict, expected) with Some got, Some want -> got = want | _ -> false
      in
      if (not answered) || not parity then incr failures;
      if strict && (detect > 0.08 || not (blind <= 0.2)) then incr failures;
      Printf.printf "%-5d %10.1f | %10.1f %10.1f | %8d %8d %4d | %-7s %s\n" seed
        (1000.0 *. crash_offset) (1000.0 *. detect) (1000.0 *. blind)
        r.Rvaas.Failover.replayed_entries r.Rvaas.Failover.reissued_queries
        r.Rvaas.Failover.generation
        (if answered then "ok" else "LOST")
        (if parity then "ok" else "MISMATCH")
  done;
  if strict then
    if !failures > 0 then begin
      Printf.printf "E16 strict: %d failing trial(s)\n" !failures;
      exit 1
    end
    else print_endline "E16 strict: all trials recovered within bounds"

(* ---------------------------------------------------------------- *)
(* E17: durable persistence — compaction, recovery latency, quorum   *)
(* ---------------------------------------------------------------- *)

(* One monitored run of [duration] simulated seconds with the journal
   mirrored to a temp file; returns (entries, file bytes, recover µs,
   digest parity with the live snapshot). *)
let e17_persistence_run ~seed ~duration ~auto_compact =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        seed;
        polling = Rvaas.Monitor.Periodic 0.02;
        ha =
          Some
            {
              Rvaas.Failover.default_config with
              checkpoint_every = 32;
              auto_compact;
            };
      }
  in
  let ctrl = Workload.Scenario.controller s in
  let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
  let path = Filename.temp_file "rvaas_e17" ".rvjl" in
  Fun.protect
    ~finally:(fun () ->
      List.iter
        (fun p -> try Sys.remove p with Sys_error _ -> ())
        [ path; path ^ ".tmp" ])
    (fun () ->
      let file = Support.Journal_file.attach log ~path in
      Workload.Scenario.run s ~until:duration;
      Support.Journal_file.sync file;
      let bytes = (Unix.stat path).Unix.st_size in
      let live =
        Rvaas.Snapshot.digest_vector
          (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s))
      in
      match Support.Journal_file.recover_from_file path with
      | Error e -> failwith ("E17: recover_from_file: " ^ e)
      | Ok log' ->
        let t0 = Unix.gettimeofday () in
        let reps = 20 in
        let r = ref (Rvaas.Journal.recover log') in
        for _ = 2 to reps do
          r := Rvaas.Journal.recover log'
        done;
        let recover_us =
          1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int reps
        in
        let parity =
          live = Rvaas.Snapshot.digest_vector !r.Rvaas.Journal.snapshot
        in
        (Support.Journal.length log', bytes, recover_us, parity))

(* One crash trial with [standbys] warm standbys; returns the takeover
   report (quorum election among the standbys decides the winner). *)
let e17_takeover_trial ~seed ~standbys =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        seed;
        polling = Rvaas.Monitor.Periodic 0.02;
        ha = Some { e16_config with standbys };
      }
  in
  let ctrl = Workload.Scenario.controller s in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  (* Jitter the crash instant off the heartbeat grid so trials differ. *)
  let rng = Support.Rng.create (seed * 6007) in
  Workload.Scenario.run s ~until:(0.4 +. Support.Rng.float rng 0.01);
  Rvaas.Failover.crash ctrl;
  let deadline = now () +. 1.0 in
  while Rvaas.Failover.last_takeover ctrl = None && now () < deadline do
    Workload.Scenario.run s ~until:(now () +. 0.01)
  done;
  Workload.Scenario.run s ~until:(now () +. 0.25);
  Rvaas.Failover.last_takeover ctrl

let e17 () =
  section
    "E17: durable persistence (linear-4, 20 ms polling, checkpoint every 32).\n\
     (a) on-disk journal growth and recovery latency with compaction off vs\n\
     on; (b) takeover latency with 1 vs 3 warm standbys (journalled-claim\n\
     quorum election, 10 ms heartbeats, 50 ms takeover timeout)";
  let strict = Sys.getenv_opt "RVAAS_E17_STRICT" <> None in
  let failures = ref 0 in
  Printf.printf "%-9s %-8s | %8s %10s %12s %7s\n" "duration" "compact" "entries"
    "bytes" "recover(us)" "parity";
  let compact_bytes = Hashtbl.create 8 in
  List.iter
    (fun duration ->
      List.iter
        (fun auto_compact ->
          let entries, bytes, recover_us, parity =
            e17_persistence_run ~seed:42 ~duration ~auto_compact
          in
          if not parity then incr failures;
          if strict && auto_compact && entries > 64 then incr failures;
          Hashtbl.replace compact_bytes (duration, auto_compact) bytes;
          Printf.printf "%7.1fs %-9s | %8d %10d %12.1f %7s\n" duration
            (if auto_compact then "on" else "off")
            entries bytes recover_us
            (if parity then "ok" else "MISMATCH"))
        [ false; true ])
    [ 0.5; 1.0; 2.0 ];
  (match
     ( Hashtbl.find_opt compact_bytes (2.0, true),
       Hashtbl.find_opt compact_bytes (2.0, false) )
   with
  | Some on, Some off when strict && on >= off ->
    incr failures;
    Printf.printf "E17 strict: compaction did not shrink the image (%d >= %d)\n"
      on off
  | _ -> ());
  Printf.printf "%-5s %8s | %10s %10s %6s %4s\n" "seed" "standbys" "detect(ms)"
    "blind (ms)" "winner" "gen";
  List.iter
    (fun standbys ->
      for seed = 1 to 5 do
        match e17_takeover_trial ~seed ~standbys with
        | None ->
          incr failures;
          Printf.printf "%-5d %8d | no takeover\n" seed standbys
        | Some r ->
          let detect = r.Rvaas.Failover.detected_at -. r.Rvaas.Failover.crashed_at in
          let blind =
            if r.Rvaas.Failover.resynced_at > 0.0 then
              r.Rvaas.Failover.resynced_at -. r.Rvaas.Failover.crashed_at
            else nan
          in
          if strict && (detect > 0.08 || not (blind <= 0.2)) then incr failures;
          if strict && (r.Rvaas.Failover.winner < 0 || r.Rvaas.Failover.winner >= standbys)
          then incr failures;
          Printf.printf "%-5d %8d | %10.1f %10.1f %6d %4d\n" seed standbys
            (1000.0 *. detect) (1000.0 *. blind) r.Rvaas.Failover.winner
            r.Rvaas.Failover.generation
      done)
    [ 1; 3 ];
  if strict then
    if !failures > 0 then begin
      Printf.printf "E17 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else print_endline "E17 strict: all persistence and quorum checks passed"

(* ---------------------------------------------------------------- *)
(* E18: compiled plumbing graph vs. per-query sweeps                 *)
(* ---------------------------------------------------------------- *)

let e18_reps = 6

let e18_updates = 100

(* The monitor's default poll interval (Randomized 0.05 mean): the
   incremental per-update latency must stay below it, or the graph
   falls behind the deltas it is meant to absorb. *)
let e18_poll_interval = 0.05

let e18_agree (a : Rvaas.Verifier.reach_result) (b : Rvaas.Verifier.reach_result) =
  List.map fst a.endpoints = List.map fst b.endpoints
  && List.for_all2
       (fun (_, x) (_, y) -> Hspace.Hs.equal x y)
       a.endpoints b.endpoints
  && a.traversed = b.traversed

let e18 () =
  section
    "E18: compiled plumbing graph — one-time compile cost (tables + 8 warm\n\
     sources), steady-state query latency for the same 24-query workload\n\
     (8 sources x 3 scopes, 6 reps) under sweep / delta-cache / compiled\n\
     lookup, then 100 single-switch Flow-Mods with per-update incremental\n\
     latency (update + requery) and differential checks vs. a fresh sweep;\n\
     the maintained graph must equal a recompile from scratch at the end";
  let strict = Sys.getenv_opt "RVAAS_E18_STRICT" <> None in
  let failures = ref 0 in
  Printf.printf "%-14s %4s %6s | %10s %6s %7s | %9s %9s %9s %7s | %8s %5s\n"
    "topology" "sw" "rules" "compile" "nodes" "edges" "sweep(ms)" "cache(ms)"
    "look(ms)" "speedup" "upd(ms)" "diff";
  let p = Workload.Topogen.default_params in
  let rng = Support.Rng.create 7 in
  let cases =
    [
      ("fat-tree-k4", Workload.Topogen.fat_tree p ~k:4);
      ("fat-tree-k6", Workload.Topogen.fat_tree p ~k:6);
      ("waxman-20", Workload.Topogen.waxman p rng ~n:20 ~alpha:0.4 ~beta:0.4);
      ("waxman-40", Workload.Topogen.waxman p rng ~n:40 ~alpha:0.4 ~beta:0.4);
      ("waxman-80", Workload.Topogen.waxman p rng ~n:80 ~alpha:0.3 ~beta:0.3);
    ]
  in
  let last_case = fst (List.hd (List.rev cases)) in
  List.iter
    (fun (name, topo) ->
      let s = build_scenario ~clients:4 topo in
      Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
      (* Freeze the monitored view into tables the bench mutates
         directly: engine-level measurement, no simulator noise. *)
      let snapshot = Rvaas.Monitor.snapshot s.monitor in
      let switches = Netsim.Topology.switches topo in
      let tables = Hashtbl.create 64 in
      List.iter
        (fun sw -> Hashtbl.replace tables sw (Rvaas.Snapshot.flows snapshot ~sw))
        switches;
      let flows_of sw = Option.value ~default:[] (Hashtbl.find_opt tables sw) in
      let rules =
        List.fold_left (fun acc sw -> acc + List.length (flows_of sw)) 0 switches
      in
      let points = Rvaas.Verifier.access_points topo in
      let srcs = List.filteri (fun i _ -> i < 8) points in
      let ip_of (ep : Rvaas.Verifier.endpoint) =
        (Option.get (Sdnctl.Addressing.host s.addressing ~host:ep.host))
          .Sdnctl.Addressing.ip
      in
      let scopes =
        [
          Rvaas.Verifier.ip_traffic_hs ();
          Rvaas.Verifier.dst_ip_hs (ip_of (List.hd points));
          Rvaas.Verifier.dst_ip_hs (ip_of (List.hd (List.rev points)));
        ]
      in
      let workload reach =
        List.iter
          (fun (src : Rvaas.Verifier.endpoint) ->
            List.iter (fun hs -> ignore (reach ~src ~hs)) scopes)
          srcs
      in
      let per_query dt =
        1000.0 *. dt
        /. float_of_int (e18_reps * List.length srcs * List.length scopes)
      in
      (* Sweep baseline: warm per-configuration context, one full reach
         pass per query. *)
      let ctx = Rvaas.Verifier.context ~flows_of topo in
      let (), sweep_dt =
        wall (fun () ->
            for _ = 1 to e18_reps do
              workload (fun ~src ~hs ->
                  Rvaas.Verifier.reach_in ctx ~src_sw:src.sw ~src_port:src.port
                    ~hs)
            done)
      in
      (* Delta-cache baseline: first rep misses and sweeps, later reps
         hit — the repeated-query amortisation of E13/E15. *)
      let cache = Rvaas.Reach_cache.create () in
      let (), cache_dt =
        wall (fun () ->
            for _ = 1 to e18_reps do
              workload (fun ~src ~hs ->
                  let key = Rvaas.Reach_cache.key ~src_sw:src.sw
                      ~src_port:src.port ~hs
                  in
                  match Rvaas.Reach_cache.find cache key with
                  | Some r -> r
                  | None ->
                    let r =
                      Rvaas.Verifier.reach_in ctx ~src_sw:src.sw
                        ~src_port:src.port ~hs
                    in
                    Rvaas.Reach_cache.add cache key ~snapshot r;
                    r)
            done)
      in
      (* Compiled engine: one-time compile (tables + warm sources),
         then every query is a lookup. *)
      let plumbing, compile_dt =
        wall (fun () ->
            let plumbing = Rvaas.Plumbing.compile ~flows_of topo in
            Rvaas.Plumbing.warm plumbing
              ~points:
                (List.map
                   (fun (src : Rvaas.Verifier.endpoint) -> (src.sw, src.port))
                   srcs);
            plumbing)
      in
      let (), lookup_dt =
        wall (fun () ->
            for _ = 1 to e18_reps do
              workload (fun ~src ~hs ->
                  Rvaas.Plumbing.reach plumbing ~src_sw:src.sw
                    ~src_port:src.port ~hs)
            done)
      in
      let speedup = sweep_dt /. Float.max lookup_dt 1e-9 in
      (* Incremental phase: rolling single-switch filter churn — each
         round installs a fresh drop filter and retires the oldest once
         more than four are live, so the believed view keeps changing
         without the tables monotonically fattening (permanent
         exact-match filters make {e any} HSA pass explode in cubes —
         that growth curve is E5's subject, not this one's).  Per-update
         cost = apply the delta(s) + requery one source; every 10th
         update is differentially checked against a fresh sweep. *)
      let mismatches = ref 0 in
      let probe = List.hd srcs in
      let probe_hs = Rvaas.Verifier.ip_traffic_hs () in
      let update_dt = ref 0.0 in
      let live = Queue.create () in
      for i = 0 to e18_updates - 1 do
        let sw = List.nth switches (i mod List.length switches) in
        let m =
          Ofproto.Match_.with_exact
            (Ofproto.Match_.with_exact
               (Ofproto.Match_.with_exact Ofproto.Match_.any
                  Hspace.Field.Eth_type 0x800)
               Hspace.Field.Ip_src
               (0xa000000 + i))
            Hspace.Field.Tp_dst
            (5000 + (i mod 50))
        in
        let spec = Ofproto.Flow_entry.make_spec ~cookie:77 ~priority:150 m [] in
        let (), dt =
          wall (fun () ->
              let higher, lower =
                List.partition
                  (fun (r : Ofproto.Flow_entry.spec) ->
                    r.priority >= spec.priority)
                  (flows_of sw)
              in
              Hashtbl.replace tables sw (higher @ (spec :: lower));
              Queue.add (sw, spec) live;
              Rvaas.Plumbing.update plumbing ~sw;
              if Queue.length live > 4 then begin
                let old_sw, old_spec = Queue.pop live in
                Hashtbl.replace tables old_sw
                  (List.filter
                     (fun r -> not (r == old_spec))
                     (flows_of old_sw));
                Rvaas.Plumbing.update plumbing ~sw:old_sw
              end;
              ignore
                (Rvaas.Plumbing.reach plumbing ~src_sw:probe.sw
                   ~src_port:probe.port ~hs:probe_hs))
        in
        update_dt := !update_dt +. dt;
        if i mod 10 = 9 then begin
          let a =
            Rvaas.Plumbing.reach plumbing ~src_sw:probe.sw ~src_port:probe.port
              ~hs:probe_hs
          in
          let b =
            Rvaas.Verifier.reach ~flows_of topo ~src_sw:probe.sw
              ~src_port:probe.port ~hs:probe_hs
          in
          if not (e18_agree a b) then incr mismatches
        end
      done;
      let avg_update = !update_dt /. float_of_int e18_updates in
      (* The maintained graph must answer exactly like a recompile. *)
      let fresh = Rvaas.Plumbing.compile ~flows_of topo in
      List.iter
        (fun (src : Rvaas.Verifier.endpoint) ->
          List.iter
            (fun hs ->
              let a =
                Rvaas.Plumbing.reach plumbing ~src_sw:src.sw ~src_port:src.port
                  ~hs
              in
              let b =
                Rvaas.Plumbing.reach fresh ~src_sw:src.sw ~src_port:src.port ~hs
              in
              if not (e18_agree a b) then incr mismatches)
            (Hspace.Hs.full Hspace.Field.total_width :: scopes))
        srcs;
      if !mismatches > 0 then incr failures;
      if strict && name = last_case then begin
        if speedup < 10.0 then begin
          incr failures;
          Printf.printf "E18 strict: compiled speedup %.1fx < 10x on %s\n"
            speedup name
        end;
        if avg_update > e18_poll_interval then begin
          incr failures;
          Printf.printf
            "E18 strict: %.1f ms per update exceeds the %.0f ms poll interval\n"
            (1000.0 *. avg_update)
            (1000.0 *. e18_poll_interval)
        end
      end;
      let g = Rvaas.Plumbing.graph plumbing in
      Printf.printf
        "%-14s %4d %6d | %8.1fms %6d %7d | %9.3f %9.3f %9.4f %6.1fx | %8.2f %5s\n%!"
        name
        (Workload.Topogen.switch_count topo)
        rules
        (1000.0 *. compile_dt)
        g.Rvaas.Plumbing.nodes g.Rvaas.Plumbing.edges (per_query sweep_dt)
        (per_query cache_dt) (per_query lookup_dt) speedup
        (1000.0 *. avg_update)
        (if !mismatches = 0 then "ok" else "FAIL"))
    cases;
  if strict then
    if !failures > 0 then begin
      Printf.printf "E18 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else
      print_endline
        "E18 strict: speedup, update-latency and differential checks passed"

(* ---------------------------------------------------------------- *)
(* E19: multi-tenant front-end — fan-in scaling, throttling, parity  *)
(* ---------------------------------------------------------------- *)

let e19_wave = 100_000

(* Zipf(s = 1) over [n] questions: the flash-crowd duplicate mix —
   most clients ask the handful of popular questions. *)
let e19_zipf_cdf n =
  let w = Array.init n (fun i -> 1.0 /. float_of_int (i + 1)) in
  let total = Array.fold_left ( +. ) 0.0 w in
  let acc = ref 0.0 in
  Array.map
    (fun x ->
      acc := !acc +. (x /. total);
      !acc)
    w

(* Binary search for the first cdf entry >= u: the E20 catalogue runs
   to thousands of questions, and a linear scan per injected query
   would charge O(catalogue) to both modes' wall clock. *)
let e19_sample cdf rng =
  let u = Support.Rng.float rng 1.0 in
  let n = Array.length cdf in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

(* The question catalogue: every access point crossed with three
   probe-rich scopes (all IP traffic, the tenant's own subnet, one
   same-tenant peer address) — 162 distinct questions for k = 6.  Every
   question triggers a real auth round over dozens of endpoints, so the
   uncoalesced baseline pays challenge signing and reply verification
   per query while the front-end pays it once per computation. *)
let e19_questions (s : Workload.Scenario.t) =
  let points = Rvaas.Verifier.access_points (Netsim.Net.topology s.net) in
  let info (ep : Rvaas.Verifier.endpoint) =
    Option.get (Sdnctl.Addressing.host s.addressing ~host:ep.host)
  in
  let w = Hspace.Field.total_width in
  let subnet_hs client =
    let value, prefix_len = Sdnctl.Addressing.subnet s.addressing ~client in
    Hspace.Hs.of_cubes w
      [
        Hspace.Field.set_prefix (Hspace.Tern.all_x w) Hspace.Field.Ip_dst ~value
          ~prefix_len;
      ]
  in
  Array.of_list
    (List.concat_map
       (fun (pt : Rvaas.Verifier.endpoint) ->
         let i = info pt in
         let peer_scope =
           List.find_map
             (fun (q : Rvaas.Verifier.endpoint) ->
               let j = info q in
               if q.host <> pt.host && j.Sdnctl.Addressing.client = i.Sdnctl.Addressing.client
               then Some (Rvaas.Verifier.dst_ip_hs j.Sdnctl.Addressing.ip)
               else None)
             points
           |> Option.value ~default:(Rvaas.Verifier.ip_traffic_hs ())
         in
         List.map
           (fun scope -> (pt, scope, i.Sdnctl.Addressing.ip))
           [
             Rvaas.Verifier.ip_traffic_hs ();
             subnet_hs i.Sdnctl.Addressing.client;
             peer_scope;
           ])
       points)

type drive_result = {
  d_qps : float;  (* queries/sec wall-clock *)
  d_p99 : float;  (* p99 simulated answer latency (s) *)
  d_coalesce : float;
  d_subsume : float;
  d_subsumed : int;
  d_pool_warms : int;
  d_arrivals : int;  (* answers delivered *)
}

(* Drive [n] logical clients (one query each, mix drawn from
   [sampler]) through the served path in waves of [wave], so
   undelivered answer packets never pile past one wave.  Shared by E19
   (Zipf identical-duplicate mix) and E20 (Zipf scope-width mix). *)
let frontend_drive ?(engine = `Sweep) ?(wave = e19_wave) ~frontend ~sampler ~n ()
    =
  (* Three hosts per edge switch: 54 endpoints, so a tenant-wide scope
     probes ~26 same-tenant attachment points per query — the auth-round
     cost the front-end amortizes across coalesced duplicates. *)
  let topo =
    Workload.Topogen.fat_tree
      { Workload.Topogen.default_params with hosts_per_switch = 3 }
      ~k:6
  in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with engine; frontend }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  let sample = sampler s in
  let rng = Support.Rng.create 99 in
  (* Replace every host receiver with a minimal protocol endpoint: it
     records answer arrivals (the latency samples) and still answers
     auth challenges, so the full in-band round runs at every scale —
     the agents' bookkeeping would not survive millions of logical
     clients, but the wire protocol must. *)
  let arrivals = ref 0 in
  let latencies = ref [] in
  let t0 = ref 0.0 in
  let service_public = Rvaas.Service.public s.service in
  List.iter
    (fun host ->
      let info = Option.get (Sdnctl.Addressing.host s.addressing ~host) in
      let key =
        Option.get (Rvaas.Directory.key s.directory ~client:info.Sdnctl.Addressing.client)
      in
      Netsim.Net.set_host_receiver s.net ~host (fun (pkt : Netsim.Packet.t) ->
          let dst_port = Hspace.Header.get pkt.header Hspace.Field.Tp_dst in
          if dst_port = Rvaas.Wire.answer_port then begin
            incr arrivals;
            latencies := (Netsim.Sim.now (Netsim.Net.sim s.net) -. !t0) :: !latencies
          end
          else if dst_port = Rvaas.Wire.auth_request_port then
            match Rvaas.Codec.decode_auth_request pkt.payload ~service_public with
            | Error _ -> ()
            | Ok challenge ->
              let reply =
                Rvaas.Codec.encode_auth_reply ~client:info.Sdnctl.Addressing.client
                  ~challenge ~key
              in
              let header =
                Hspace.Header.udp ~src_ip:info.Sdnctl.Addressing.ip
                  ~dst_ip:Rvaas.Wire.service_ip ~src_port:0
                  ~dst_port:Rvaas.Wire.auth_reply_port
              in
              Netsim.Net.host_send s.net ~host (Netsim.Packet.make ~header reply)))
    (Netsim.Topology.hosts topo);
  let injected = ref 0 in
  let (), wall_dt =
    wall (fun () ->
        while !injected < n do
          let count = min wave (n - !injected) in
          t0 := Netsim.Sim.now (Netsim.Net.sim s.net);
          for i = 1 to count do
            let pt, scope, ip = sample rng in
            let id = !injected + i in
            Rvaas.Service.inject_query s.service ~client:id
              ~nonce:(Printf.sprintf "w%d" id) ~sw:pt.Rvaas.Verifier.sw
              ~port:pt.Rvaas.Verifier.port ~ip
              (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
          done;
          injected := !injected + count;
          (* Drain the wave: probe rounds, finalize, answer delivery. *)
          let deadline = !t0 +. 2.0 in
          while
            !arrivals < !injected
            && Netsim.Sim.now (Netsim.Net.sim s.net) < deadline
          do
            Workload.Scenario.run s
              ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.05)
          done
        done)
  in
  let fs = Rvaas.Service.frontend_stats s.service in
  let pool_warms =
    match Rvaas.Service.plumbing s.service with
    | None -> 0
    | Some pl -> (Rvaas.Plumbing.stats pl).Rvaas.Plumbing.pool_warms
  in
  {
    d_qps = float_of_int n /. Float.max wall_dt 1e-9;
    d_p99 = percentile 0.99 !latencies;
    d_coalesce = Rvaas.Service.coalesce_rate s.service;
    d_subsume = Rvaas.Service.subsume_rate s.service;
    d_subsumed = fs.Rvaas.Frontend.subsumed;
    d_pool_warms = pool_warms;
    d_arrivals = !arrivals;
  }

let e19_sampler s =
  let qs = e19_questions s in
  let cdf = e19_zipf_cdf (Array.length qs) in
  fun rng -> qs.(e19_sample cdf rng)

let e19_drive ~frontend ~n = frontend_drive ~frontend ~sampler:e19_sampler ~n ()

(* Differential parity: the same differently-scoped questions sent
   back to back by one agent (pooled by the settle tick) must report
   exactly the endpoints per-query evaluation reports.  [scopes] picks
   the question mix per scenario; [frontend] the pooling under test
   (E19: coalescing + batching; E20: subsumption on top).  Returns the
   mismatch count. *)
let parity_check ~engine ~frontend ~scopes =
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let settle s =
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0)
  in
  let ref_s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with engine }
  in
  settle ref_s;
  let pt = List.hd (Rvaas.Verifier.access_points topo) in
  let info =
    Option.get (Sdnctl.Addressing.host ref_s.addressing ~host:pt.Rvaas.Verifier.host)
  in
  let expected =
    List.map
      (fun scope ->
        let _, probes =
          Rvaas.Service.evaluate ref_s.service ~client:info.Sdnctl.Addressing.client
            ~sw:pt.Rvaas.Verifier.sw ~port:pt.Rvaas.Verifier.port
            (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
        in
        List.sort compare
          (List.map (fun (ep : Rvaas.Verifier.endpoint) -> (ep.sw, ep.port)) probes))
      (scopes ref_s)
  in
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with engine; frontend }
  in
  settle s;
  let agent = Workload.Scenario.agent s ~host:pt.Rvaas.Verifier.host in
  let outcomes = ref [] in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> outcomes := o :: !outcomes);
  let nonces =
    List.map
      (fun scope ->
        Rvaas.Client_agent.send_query agent
          (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints))
      (scopes s)
  in
  settle s;
  let mismatches = ref 0 in
  List.iteri
    (fun i nonce ->
      match
        List.find_opt
          (fun (o : Rvaas.Client_agent.outcome) ->
            String.equal o.answer.Rvaas.Query.nonce nonce)
          !outcomes
      with
      | None -> incr mismatches
      | Some o ->
        let got =
          List.sort compare
            (List.map
               (fun (ep : Rvaas.Query.endpoint_report) -> (ep.sw, ep.port))
               o.Rvaas.Client_agent.answer.Rvaas.Query.endpoints)
        in
        if got <> List.nth expected i then incr mismatches)
    nonces;
  !mismatches

let e19_parity ~engine =
  let ip_of (s : Workload.Scenario.t) h =
    (Option.get (Sdnctl.Addressing.host s.addressing ~host:h)).Sdnctl.Addressing.ip
  in
  parity_check ~engine
    ~frontend:(Rvaas.Frontend.coalescing ~batch_window:0.002 ())
    ~scopes:(fun s ->
      Rvaas.Verifier.ip_traffic_hs ()
      :: List.map (fun h -> Rvaas.Verifier.dst_ip_hs (ip_of s h)) [ 1; 2; 3; 4; 5 ])

let e19 () =
  section
    "E19: multi-tenant front-end — 1k to 1M logical clients, Zipf duplicate\n\
     mix over 162 distinct questions on fat-tree-k6.  coalesced = admission +\n\
     coalescing on (identical in-flight queries fold under one computation,\n\
     per-client signed answers fanned out at finalize); baseline = the\n\
     per-query seed path.  Then token-bucket throttling (noisy tenant vs\n\
     victim) and batched-vs-per-query differential parity under both engines";
  let strict = Sys.getenv_opt "RVAAS_E19_STRICT" <> None in
  let failures = ref 0 in
  Printf.printf "%-10s %9s | %12s %9s %9s %9s | %8s\n" "mode" "clients"
    "queries/s" "p99 (ms)" "coalesce" "subsumed" "answers";
  let run mode frontend n =
    let r = e19_drive ~frontend ~n in
    Printf.printf "%-10s %9d | %12.0f %9.2f %8.1f%% %9d | %8d%s\n%!" mode n
      r.d_qps (1000.0 *. r.d_p99) (100.0 *. r.d_coalesce) r.d_subsumed
      r.d_arrivals
      (if r.d_arrivals = n then "" else " MISSING");
    if r.d_arrivals <> n then incr failures;
    (r.d_qps, r.d_p99)
  in
  let base_qps, _ = run "baseline" Rvaas.Frontend.default_config 1_000 in
  let base10_qps, _ = run "baseline" Rvaas.Frontend.default_config 10_000 in
  ignore base_qps;
  (* One settle tick: same-instant duplicates fold in the pre-flush
     queue even when their computation would finalize synchronously. *)
  let coalesced = Rvaas.Frontend.coalescing ~batch_window:0.005 () in
  let _, p99_1k = run "coalesced" coalesced 1_000 in
  let qps10, _ = run "coalesced" coalesced 10_000 in
  let _ = run "coalesced" coalesced 100_000 in
  let r1m = e19_drive ~frontend:coalesced ~n:1_000_000 in
  let qps = r1m.d_qps
  and p99 = r1m.d_p99
  and rate = r1m.d_coalesce
  and arrivals = r1m.d_arrivals in
  Printf.printf "%-10s %9d | %12.0f %9.2f %8.1f%% %9d | %8d%s\n%!" "coalesced"
    1_000_000 qps (1000.0 *. p99) (100.0 *. rate) r1m.d_subsumed arrivals
    (if arrivals = 1_000_000 then "" else " MISSING");
  if arrivals <> 1_000_000 then incr failures;
  if strict && rate < 0.9 then begin
    incr failures;
    Printf.printf "E19 strict: coalesce rate %.1f%% < 90%% at 1M clients\n"
      (100.0 *. rate)
  end;
  if strict && p99 > 3.0 *. Float.max p99_1k 1e-9 then begin
    incr failures;
    Printf.printf "E19 strict: p99 not flat (%.2f ms at 1M vs %.2f ms at 1k)\n"
      (1000.0 *. p99) (1000.0 *. p99_1k)
  end;
  (* 8x, not the 12x a fast run shows: the ratio's denominator (the
     per-query baseline) swings tens of percent with machine state,
     and the gate must not flake on a slow-coalesce/fast-baseline
     run.  The order-of-magnitude claim lives at the 100k/1M rungs. *)
  if strict && qps10 < 8.0 *. base10_qps then begin
    incr failures;
    Printf.printf "E19 strict: %.0f q/s < 8x the %.0f q/s baseline at 10k\n" qps10
      base10_qps
  end;
  (* Throttling: a noisy tenant burns through its bucket; the victim's
     bucket is untouched. *)
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        frontend =
          Rvaas.Frontend.coalescing ~limits:{ Rvaas.Frontend.rate = 50.0; burst = 10.0 }
          ();
      }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  let qs = e19_questions s in
  let inject ~client ~id ((pt : Rvaas.Verifier.endpoint), scope, ip) =
    Rvaas.Service.inject_query s.service ~client ~nonce:(Printf.sprintf "t%d" id)
      ~sw:pt.sw ~port:pt.port ~ip
      (Rvaas.Query.make ~scope Rvaas.Query.Reachable_endpoints)
  in
  for i = 0 to 99 do
    inject ~client:0 ~id:i qs.(i mod Array.length qs)
  done;
  let noisy_throttled = (Rvaas.Service.stats s.service).queries_throttled in
  for i = 100 to 104 do
    inject ~client:1 ~id:i qs.(i mod Array.length qs)
  done;
  let victim_throttled =
    (Rvaas.Service.stats s.service).queries_throttled - noisy_throttled
  in
  Printf.printf "throttling: noisy tenant %d/100 refused, victim %d/5 refused\n%!"
    noisy_throttled victim_throttled;
  if strict && (noisy_throttled = 0 || victim_throttled > 0) then begin
    incr failures;
    print_endline "E19 strict: throttling hit the wrong tenant"
  end;
  (* Differential parity under both engines. *)
  List.iter
    (fun (name, engine) ->
      let mismatches = e19_parity ~engine in
      Printf.printf "parity (%s): %d mismatch(es)\n%!" name mismatches;
      if mismatches > 0 then incr failures)
    [ ("sweep", `Sweep); ("compiled", `Compiled) ];
  if strict then
    if !failures > 0 then begin
      Printf.printf "E19 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else
      print_endline
        "E19 strict: fan-in, latency, throttling and parity checks passed"

(* ---------------------------------------------------------------- *)
(* E20: semantic subsumption + cross-source pooling                  *)
(* ---------------------------------------------------------------- *)

(* The scope-width mix, Zipf(1) over three width classes (broad the
   most popular, narrow the rarest): a {e broad} question asks about
   all IP traffic at the client's access point; a {e mid} question
   cuts the tenant's subnet to one exact destination port; a {e
   narrow} question asks about one same-tenant peer destination at one
   exact port.  Ports are drawn uniformly, so mid and narrow questions
   are almost never byte-identical — Seagull's observation that
   verification workloads overlap far more than they repeat.
   Identical-only coalescing must open a computation (targets + auth
   round + finalize) per distinct variant; subsumption folds every
   variant into its point's broad computation and slices its answer
   out of the shared arrival spaces at finalize. *)
let e20_sampler (s : Workload.Scenario.t) =
  let points =
    Array.of_list (Rvaas.Verifier.access_points (Netsim.Net.topology s.net))
  in
  let info (ep : Rvaas.Verifier.endpoint) =
    Option.get (Sdnctl.Addressing.host s.addressing ~host:ep.host)
  in
  let w = Hspace.Field.total_width in
  let subnet_cube client =
    let value, prefix_len = Sdnctl.Addressing.subnet s.addressing ~client in
    Hspace.Field.set_prefix (Hspace.Tern.all_x w) Hspace.Field.Ip_dst ~value
      ~prefix_len
  in
  let peer_ips (pt : Rvaas.Verifier.endpoint) =
    let i = info pt in
    Array.of_list
      (List.filter_map
         (fun (q : Rvaas.Verifier.endpoint) ->
           let j = info q in
           if
             q.host <> pt.host
             && j.Sdnctl.Addressing.client = i.Sdnctl.Addressing.client
           then Some j.Sdnctl.Addressing.ip
           else None)
         (Array.to_list points))
  in
  let peers = Array.map peer_ips points in
  (* Zipf(1) over the three width classes: 1 : 1/2 : 1/3, i.e. 6/11
     broad, 3/11 mid, 2/11 narrow. *)
  let broad_mass = 6.0 /. 11.0 in
  let mid_mass = 3.0 /. 11.0 in
  fun rng ->
    let k = Support.Rng.int rng (Array.length points) in
    let pt = points.(k) in
    let i = info pt in
    let u = Support.Rng.float rng 1.0 in
    let scope =
      if u < broad_mass then Rvaas.Verifier.ip_traffic_hs ()
      else if u < broad_mass +. mid_mass then
        Hspace.Hs.of_cube
          (Hspace.Field.set_exact
             (subnet_cube i.Sdnctl.Addressing.client)
             Hspace.Field.Tp_dst
             (Support.Rng.int rng 65536))
      else
        Hspace.Hs.of_cube
          (Hspace.Field.set_exact
             (Hspace.Field.set_exact
                (Hspace.Field.set_exact (Hspace.Tern.all_x w)
                   Hspace.Field.Eth_type Hspace.Header.eth_type_ip)
                Hspace.Field.Ip_dst
                (Support.Rng.pick_array rng peers.(k)))
             Hspace.Field.Tp_dst
             (Support.Rng.int rng 65536))
    in
    (pt, scope, i.Sdnctl.Addressing.ip)

let e20_drive ~engine ~frontend ~n =
  frontend_drive ~engine ~wave:20_000 ~frontend ~sampler:e20_sampler ~n ()

(* Sliced-vs-per-query parity: broad, mid and narrow scopes sent back
   to back by one agent under subsumption must each report exactly the
   endpoints per-query evaluation reports. *)
let e20_parity ~engine =
  parity_check ~engine
    ~frontend:(Rvaas.Frontend.coalescing ~batch_window:0.002 ~subsume:true ())
    ~scopes:(fun s ->
      let w = Hspace.Field.total_width in
      let subnet_cube client =
        let value, prefix_len = Sdnctl.Addressing.subnet s.addressing ~client in
        Hspace.Field.set_prefix (Hspace.Tern.all_x w) Hspace.Field.Ip_dst ~value
          ~prefix_len
      in
      let ip_of h =
        (Option.get (Sdnctl.Addressing.host s.addressing ~host:h))
          .Sdnctl.Addressing.ip
      in
      Rvaas.Verifier.ip_traffic_hs ()
      :: Hspace.Hs.of_cube (subnet_cube 0)
      :: Hspace.Hs.of_cube
           (Hspace.Field.set_prefix (subnet_cube 0) Hspace.Field.Tp_dst ~value:0
              ~prefix_len:3)
      :: List.map (fun h -> Rvaas.Verifier.dst_ip_hs (ip_of h)) [ 1; 2; 3; 4 ])

let e20 () =
  section
    "E20: semantic subsumption + cross-source pooling — 100k logical clients,\n\
     Zipf scope-width mix (broad tenant-wide / mid subnet+port-slice / narrow\n\
     per-destination) on fat-tree-k6.  coalesce = PR 7's identical-only\n\
     coalescing: every distinct variant opens its own computation.  subsume =\n\
     the waiters-on-computation graph: a contained scope rides the broad\n\
     computation as a slice and is answered by arrival-space intersection at\n\
     the shared finalize; under the compiled engine each flush seeds one\n\
     pooled Plumbing.warm across the points it spans.  Then sliced-vs-\n\
     per-query differential parity under both engines";
  let strict = Sys.getenv_opt "RVAAS_E20_STRICT" <> None in
  let failures = ref 0 in
  Printf.printf "%-10s %-9s %8s | %12s %9s %9s %9s %6s | %8s\n" "mode" "engine"
    "clients" "queries/s" "p99 (ms)" "coalesce" "subsume" "warms" "answers";
  let run mode (engine_name, engine) frontend n =
    let r = e20_drive ~engine ~frontend ~n in
    Printf.printf "%-10s %-9s %8d | %12.0f %9.2f %8.1f%% %8.1f%% %6d | %8d%s\n%!"
      mode engine_name n r.d_qps (1000.0 *. r.d_p99) (100.0 *. r.d_coalesce)
      (100.0 *. r.d_subsume) r.d_pool_warms r.d_arrivals
      (if r.d_arrivals = n then "" else " MISSING");
    if r.d_arrivals <> n then incr failures;
    r
  in
  let coalesce_only = Rvaas.Frontend.coalescing ~batch_window:0.005 () in
  let subsume = Rvaas.Frontend.coalescing ~batch_window:0.005 ~subsume:true () in
  let sweep = ("sweep", `Sweep) and compiled = ("compiled", `Compiled) in
  let n = 100_000 in
  ignore (run "coalesce" sweep coalesce_only 10_000);
  ignore (run "subsume" sweep subsume 10_000);
  let base_sweep = run "coalesce" sweep coalesce_only n in
  let sub_sweep = run "subsume" sweep subsume n in
  let base_comp = run "coalesce" compiled coalesce_only n in
  let sub_comp = run "subsume" compiled subsume n in
  if strict && sub_sweep.d_qps < 2.0 *. base_sweep.d_qps then begin
    incr failures;
    Printf.printf "E20 strict: %.0f q/s < 2x the %.0f q/s coalesce-only (sweep)\n"
      sub_sweep.d_qps base_sweep.d_qps
  end;
  if strict && sub_comp.d_qps < 1.5 *. base_comp.d_qps then begin
    incr failures;
    Printf.printf
      "E20 strict: %.0f q/s < 1.5x the %.0f q/s coalesce-only (compiled)\n"
      sub_comp.d_qps base_comp.d_qps
  end;
  if strict && (sub_sweep.d_subsume <= 0.0 || sub_comp.d_subsume <= 0.0) then begin
    incr failures;
    print_endline "E20 strict: subsume mode never subsumed a query"
  end;
  if strict && (base_sweep.d_subsumed <> 0 || base_comp.d_subsumed <> 0) then begin
    incr failures;
    print_endline
      "E20 strict: coalesce-only config entered the subsumption graph"
  end;
  if strict && sub_comp.d_pool_warms = 0 then begin
    incr failures;
    print_endline "E20 strict: no pooled warm was seeded under the compiled engine"
  end;
  List.iter
    (fun (name, engine) ->
      let mismatches = e20_parity ~engine in
      Printf.printf "parity (%s): %d mismatch(es)\n%!" name mismatches;
      if mismatches > 0 then incr failures)
    [ sweep; compiled ];
  if strict then
    if !failures > 0 then begin
      Printf.printf "E20 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else
      print_endline
        "E20 strict: speedup, subsumption, pooling and parity checks passed"

(* ---------------------------------------------------------------- *)
(* E21: replicated segmented journal — sealed segments, lag-tolerant *)
(* quorum elections, encryption-at-rest                              *)
(* ---------------------------------------------------------------- *)

let e21_rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let e21_tmp_dir () =
  let dir = Filename.temp_file "rvaas_e21" "" in
  Sys.remove dir;
  dir

let e21_read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let b = really_input_string ic n in
  close_in ic;
  b

let e21_write_file path bytes =
  let oc = open_out_bin path in
  output_string oc bytes;
  close_out oc

let e21_is_prefix xs ys =
  let rec go = function
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> x = y && go (xs, ys)
  in
  go (xs, ys)

(* One monitored run mirrored into a segmented store under [dir]. *)
let e21_store_run ~seed ~duration ~encrypt ~auto_compact ~dir =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        seed;
        polling = Rvaas.Monitor.Periodic 0.02;
        ha =
          Some
            {
              Rvaas.Failover.default_config with
              checkpoint_every = 32;
              auto_compact;
            };
        persist =
          Some
            {
              Workload.Scenario.p_dir = dir;
              p_segment_bytes = 2048;
              p_encrypt = encrypt;
            };
      }
  in
  Workload.Scenario.run s ~until:duration;
  let store = Workload.Scenario.store s in
  Support.Segment_store.sync store;
  let live =
    Rvaas.Snapshot.digest_vector
      (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s))
  in
  (s, store, live, Workload.Scenario.storage_key s)

(* Mean recovery latency (us) plus the recovered journal. *)
let e21_timed_recover ?crypt dir =
  match Support.Segment_store.recover_from_dir ?crypt dir with
  | Error e -> Error e
  | Ok first ->
    let t0 = Unix.gettimeofday () in
    let reps = 10 in
    let log = ref first in
    for _ = 1 to reps do
      match Support.Segment_store.recover_from_dir ?crypt dir with
      | Ok l -> log := l
      | Error e -> failwith ("E21: recover_from_dir: " ^ e)
    done;
    Ok (!log, 1e6 *. (Unix.gettimeofday () -. t0) /. float_of_int reps)

(* Crash matrix over one store directory: every crash state is a
   prefix of the write stream — later segment files absent, the torn
   file truncated.  A state passes when recovery yields a verified
   entry prefix of the undamaged recovery (a hard [Error] is allowed
   only for first-file damage). *)
let e21_crash_matrix ?crypt ~dir ~full () =
  let files =
    Sys.readdir dir |> Array.to_list
    |> List.filter (fun f ->
           Filename.check_suffix f ".rvsg" || Filename.check_suffix f ".act")
    |> List.sort compare
  in
  let backup = List.map (fun f -> (f, e21_read_file (Filename.concat dir f))) files in
  let restore () =
    Array.iter
      (fun f ->
        if not (List.mem_assoc f backup) then Sys.remove (Filename.concat dir f))
      (Sys.readdir dir);
    List.iter (fun (f, b) -> e21_write_file (Filename.concat dir f) b) backup
  in
  let points = ref 0 and violations = ref 0 in
  List.iteri
    (fun i (name, bytes) ->
      List.iter
        (fun quarters ->
          restore ();
          List.iteri
            (fun j (later, _) ->
              if j > i then Sys.remove (Filename.concat dir later))
            backup;
          let cut = String.length bytes * quarters / 4 in
          e21_write_file (Filename.concat dir name) (String.sub bytes 0 cut);
          incr points;
          match Support.Segment_store.recover_from_dir ?crypt dir with
          | Error _ -> if i > 0 then incr violations
          | Ok log' ->
            let got = Support.Journal.valid_prefix log' in
            if not (Support.Journal.verify log' && e21_is_prefix got full) then
              incr violations)
        [ 1; 3 ])
    backup;
  restore ();
  (!points, !violations)

let e21_lag_config =
  { e16_config with standbys = 3; replica_lag = 64; replica_delay = 0.02 }

(* Crash trial where every election read goes through a lag-bounded
   replica tail (20 ms behind the journal). *)
let e21_lag_trial ~seed =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        seed;
        polling = Rvaas.Monitor.Periodic 0.02;
        ha = Some { e21_lag_config with standbys = 0 };
      }
  in
  let ctrl = Workload.Scenario.controller s in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let rng = Support.Rng.create (seed * 7919) in
  Workload.Scenario.run s ~until:0.3;
  (* stagger the standbys off the tick grid so rival claims can still
     be in flight when the winner decides *)
  Rvaas.Failover.enable_standbys
    ~phase:(fun sid -> float_of_int (((seed * 7) + (sid * 13)) mod 29) *. 0.0007)
    ctrl ~count:3;
  Workload.Scenario.run s ~until:(0.4 +. Support.Rng.float rng 0.01);
  Rvaas.Failover.crash ctrl;
  let deadline = now () +. 1.0 in
  while Rvaas.Failover.last_takeover ctrl = None && now () < deadline do
    Workload.Scenario.run s ~until:(now () +. 0.01)
  done;
  Workload.Scenario.run s ~until:(now () +. 0.25);
  (Rvaas.Failover.last_takeover ctrl, List.length (Rvaas.Failover.takeovers ctrl))

let e21 () =
  section
    "E21: replicated segmented journal (linear-4, 20 ms polling, 2 KiB\n\
     segments).  (a) sealed-segment compaction deletes whole files and\n\
     rewrites no retained byte; recovery stays a verified prefix across a\n\
     torn-tail crash matrix; (b) quorum elections over lag-bounded replica\n\
     tails (3 standbys, 20 ms replica delay); (c) encryption-at-rest:\n\
     keyed recovery parity, keyless recovery refused, bit flips rejected\n\
     by the frame MAC";
  let strict = Sys.getenv_opt "RVAAS_E21_STRICT" <> None in
  let failures = ref 0 in
  (* -- (a) store growth, compaction, crash matrix ------------------- *)
  Printf.printf "%-8s | %8s %10s %7s %8s %12s %7s\n" "compact" "entries"
    "bytes" "sealed" "deleted" "recover(us)" "parity";
  let bytes_by_mode = Hashtbl.create 4 in
  List.iter
    (fun auto_compact ->
      let dir = e21_tmp_dir () in
      Fun.protect
        ~finally:(fun () -> e21_rm_rf dir)
        (fun () ->
          let s, store, live, _ =
            e21_store_run ~seed:42 ~duration:1.5 ~encrypt:false ~auto_compact
              ~dir
          in
          (if not auto_compact then begin
             (* compact mid-store at the support layer: whole sealed
                files below the cut die, every retained byte survives
                untouched *)
             let ctrl = Workload.Scenario.controller s in
             let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
             let before =
               List.map
                 (fun p -> (p, e21_read_file p))
                 (Support.Segment_store.sealed_paths store)
             in
             Support.Journal.compact log
               ~upto_seq:(Support.Journal.last_seq log - 20);
             let deleted =
               List.length
                 (List.filter (fun (p, _) -> not (Sys.file_exists p)) before)
             in
             let rewritten =
               List.length
                 (List.filter
                    (fun (p, b) ->
                      Sys.file_exists p && e21_read_file p <> b)
                    before)
             in
             Printf.printf
               "mid-store compaction: %d sealed file(s) deleted whole, %d \
                retained file(s) rewritten\n"
               deleted rewritten;
             if strict && (deleted = 0 || rewritten > 0) then incr failures
           end);
          Support.Segment_store.close store;
          match e21_timed_recover dir with
          | Error e -> failwith ("E21: recover_from_dir: " ^ e)
          | Ok (log', recover_us) ->
            let r = Rvaas.Journal.recover log' in
            let parity =
              live = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot
            in
            if not parity then incr failures;
            Hashtbl.replace bytes_by_mode auto_compact
              (Support.Segment_store.written_bytes store);
            Printf.printf "%-8s | %8d %10d %7d %8d %12.1f %7s\n"
              (if auto_compact then "on" else "off")
              (Support.Journal.length log')
              (Support.Segment_store.written_bytes store)
              (Support.Segment_store.sealed_count store)
              (Support.Segment_store.sealed_deleted store)
              recover_us
              (if parity then "ok" else "MISMATCH");
            if strict && auto_compact
               && Support.Segment_store.sealed_deleted store = 0
            then incr failures;
            let points, violations =
              e21_crash_matrix ~dir ~full:(Support.Journal.valid_prefix log') ()
            in
            Printf.printf "crash matrix: %d point(s), %d prefix violation(s)\n"
              points violations;
            if strict && violations > 0 then incr failures))
    [ false; true ];
  (match
     (Hashtbl.find_opt bytes_by_mode true, Hashtbl.find_opt bytes_by_mode false)
   with
  | Some on, Some off when strict && on >= off ->
    incr failures;
    Printf.printf "E21 strict: compaction did not shrink the store (%d >= %d)\n"
      on off
  | _ -> ());
  (* -- (b) elections over lagging replica tails --------------------- *)
  Printf.printf "%-5s | %10s %6s %4s %10s %9s\n" "seed" "detect(ms)" "winner"
    "gen" "reconciled" "takeovers";
  let reconciled_total = ref 0 in
  for seed = 1 to 8 do
    match e21_lag_trial ~seed with
    | None, _ ->
      incr failures;
      Printf.printf "%-5d | no takeover\n" seed
    | Some r, takeovers ->
      let detect = r.Rvaas.Failover.detected_at -. r.Rvaas.Failover.crashed_at in
      reconciled_total := !reconciled_total + r.Rvaas.Failover.reconciled_records;
      if strict
         && (takeovers <> 1 || detect > 0.12
            || r.Rvaas.Failover.winner < 0
            || r.Rvaas.Failover.winner >= 3)
      then incr failures;
      Printf.printf "%-5d | %10.1f %6d %4d %10d %9d\n" seed (1000.0 *. detect)
        r.Rvaas.Failover.winner r.Rvaas.Failover.generation
        r.Rvaas.Failover.reconciled_records takeovers
  done;
  if strict && !reconciled_total = 0 then begin
    incr failures;
    print_endline "E21 strict: no winner ever reconciled in-transit frames"
  end;
  (* -- (c) encryption-at-rest --------------------------------------- *)
  let dir = e21_tmp_dir () in
  Fun.protect
    ~finally:(fun () -> e21_rm_rf dir)
    (fun () ->
      let _, store, live, key =
        e21_store_run ~seed:7 ~duration:1.0 ~encrypt:true ~auto_compact:false
          ~dir
      in
      let sealed = Support.Segment_store.sealed_paths store in
      Support.Segment_store.close store;
      let crypt = Cryptosim.Atrest.crypt ~key in
      match e21_timed_recover ~crypt dir with
      | Error e -> failwith ("E21: encrypted recover: " ^ e)
      | Ok (log', recover_us) ->
        let r = Rvaas.Journal.recover log' in
        let parity =
          live = Rvaas.Snapshot.digest_vector r.Rvaas.Journal.snapshot
        in
        if not parity then incr failures;
        let keyless_refused =
          match Support.Segment_store.recover_from_dir dir with
          | Error _ -> true
          | Ok _ -> false
        in
        if not keyless_refused then incr failures;
        let wrong_key_entries =
          let wrong =
            Cryptosim.Atrest.crypt
              ~key:(Cryptosim.Hmac.key_of_string "not-the-storage-key")
          in
          match Support.Segment_store.recover_from_dir ~crypt:wrong dir with
          | Error _ -> 0
          | Ok l -> List.length (Support.Journal.valid_prefix l)
        in
        if wrong_key_entries > 0 then incr failures;
        let flipped_entries =
          match sealed with
          | [] -> -1
          | p :: _ ->
            let b = Bytes.of_string (e21_read_file p) in
            let pos = Bytes.length b / 2 in
            Bytes.set b pos (Char.chr (Char.code (Bytes.get b pos) lxor 0x40));
            e21_write_file p (Bytes.to_string b);
            (match Support.Segment_store.recover_from_dir ~crypt dir with
            | Error _ -> 0
            | Ok l -> List.length (Support.Journal.valid_prefix l))
        in
        let full_entries = Support.Journal.length log' in
        if strict && not (flipped_entries >= 0 && flipped_entries < full_entries)
        then incr failures;
        Printf.printf
          "encrypted: %d entries, %d bytes, keyed recover %.1f us (parity \
           %s)\n\
           keyless recover refused: %b; wrong-key verified entries: %d\n\
           bit-flipped sealed frame: MAC rejected, %d/%d entries recovered\n"
          full_entries
          (Support.Segment_store.written_bytes store)
          recover_us
          (if parity then "ok" else "MISMATCH")
          keyless_refused wrong_key_entries flipped_entries full_entries);
  if strict then
    if !failures > 0 then begin
      Printf.printf "E21 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else
      print_endline
        "E21 strict: segment, quorum-under-lag and at-rest checks passed"

(* ---------------------------------------------------------------- *)
(* E22: internet-scale soak — 1000+ switch multi-domain world,       *)
(* millions of range-addressed hosts, an hour of simulated churn     *)
(* ---------------------------------------------------------------- *)

(* Peak resident set (VmHWM) in KiB from /proc/self/status; 0 when
   unavailable (non-Linux). *)
let e22_peak_rss_kb () =
  match open_in "/proc/self/status" with
  | exception Sys_error _ -> 0
  | ic ->
    let rec scan () =
      match input_line ic with
      | exception End_of_file -> 0
      | line ->
        if String.length line > 6 && String.sub line 0 6 = "VmHWM:" then
          Scanf.sscanf (String.sub line 6 (String.length line - 6)) " %d" Fun.id
        else scan ()
    in
    let kb = scan () in
    close_in ic;
    kb

(* Full verdict agreement, controller hits included (E18's comparator
   plus the interception dimension the soak's attacks exercise). *)
let e22_agree (a : Rvaas.Verifier.reach_result) (b : Rvaas.Verifier.reach_result) =
  List.map fst a.endpoints = List.map fst b.endpoints
  && List.for_all2
       (fun (_, x) (_, y) -> Hspace.Hs.equal x y)
       a.endpoints b.endpoints
  && a.traversed = b.traversed
  && List.map fst a.controller_hits = List.map fst b.controller_hits
  && List.for_all2
       (fun (_, x) (_, y) -> Hspace.Hs.equal x y)
       a.controller_hits b.controller_hits

let e22 () =
  let smoke = Sys.getenv_opt "RVAAS_E22_SMOKE" <> None in
  let strict = Sys.getenv_opt "RVAAS_E22_STRICT" <> None in
  let duration = if smoke then 300.0 else 3600.0 in
  let samples = if smoke then 5 else 12 in
  section
    (Printf.sprintf
       "E22: internet-scale soak — multi-domain world (leaf-spine DC +\n\
        scale-free backbone), every attachment point a /16 range gateway\n\
        carried as one Hs cube, %.0f s simulated churn campaign (rolling\n\
        upgrades, link flaps, transient attacks, query storms) on the\n\
        compiled engine behind a coalescing front-end; sweep-vs-compiled\n\
        verdict parity sampled throughout%s"
       duration
       (if smoke then " [smoke]" else ""));
  let params =
    { Workload.Topogen.default_params with hosts_per_switch = 1; host_stride = 24 }
  in
  let md, topo_wall =
    wall (fun () ->
        Workload.Topogen.multi_domain params (Support.Rng.create 22) ~peering:3
          [
            Workload.Topogen.Leaf_spine { spines = 4; leaves = 996 };
            Workload.Topogen.Scale_free { n = 40; m = 2 };
          ])
  in
  let topo = md.Workload.Topogen.md_topo in
  let gateways = Array.of_list (Netsim.Topology.hosts topo) in
  let clients = Array.length gateways in
  let s, deploy_wall =
    wall (fun () ->
        Workload.Scenario.build
          {
            (Workload.Scenario.default_spec topo) with
            clients;
            seed = 22;
            polling = Rvaas.Monitor.Periodic 60.0;
            engine = `Compiled;
            frontend = Rvaas.Frontend.coalescing ~batch_window:0.002 ();
            range_hosts = 0x10000;
          })
  in
  let sim = Netsim.Net.sim s.net in
  let now () = Netsim.Sim.now sim in
  Workload.Scenario.run s ~until:(now () +. 1.0);
  Printf.printf
    "world: %d switches in %d domains, %d gateways, %d addresses, %d \
     provider rules\n\
     build: topology %.2f s, deployment %.2f s\n"
    (Workload.Topogen.switch_count topo)
    (Array.length md.Workload.Topogen.md_domains)
    clients
    (Workload.Scenario.address_count s)
    (Sdnctl.Provider.rule_count s.provider)
    topo_wall deploy_wall;
  let profile =
    {
      Workload.Churn.upgrades_per_min = 0.5;
      flaps_per_min = 1.0;
      attacks_per_min = 0.5;
      storms_per_min = 1.0;
      upgrade_outage = 5.0;
      flap_down = 3.0;
      attack_dwell = 10.0;
      storm_queries = 30;
      storm_spread = 5.0;
    }
  in
  let start = now () in
  let campaign = Workload.Churn.plan s profile ~seed:22 ~start ~duration in
  let planned =
    List.fold_left
      (fun (u, f, a, st) (_, e) ->
        match e with
        | Workload.Churn.Upgrade _ -> (u + 1, f, a, st)
        | Workload.Churn.Flap _ -> (u, f + 1, a, st)
        | Workload.Churn.Attack_burst _ -> (u, f, a + 1, st)
        | Workload.Churn.Storm _ -> (u, f, a, st + 1))
      (0, 0, 0, 0) campaign.Workload.Churn.c_events
  in
  let pu, pf, pa, ps = planned in
  Printf.printf
    "campaign: %d events over %.0f s (%d upgrades, %d flaps, %d attacks, %d \
     storms)\n"
    (Workload.Churn.event_count campaign)
    duration pu pf pa ps;
  let report = Workload.Churn.schedule s campaign in
  let points = Array.of_list (Rvaas.Verifier.access_points topo) in
  let parity_checks = ref 0 and parity_mismatches = ref 0 in
  let executed0 = Netsim.Sim.executed sim in
  let wall0 = now_s () in
  Printf.printf "%-7s | %9s %9s %8s | %6s %8s %7s | %6s\n" "sim(s)" "events"
    "ev/s(w)" "wall(s)" "cache%" "coalesce" "rss(MB)" "parity";
  for k = 1 to samples do
    let (), step_wall =
      wall (fun () ->
          Workload.Scenario.run s
            ~until:(start +. (float_of_int k *. (duration /. float_of_int samples))))
    in
    (* Parity sample: the compiled engine's verdict vs a sweep of the
       same believed view — one range-scoped query (a /16 carried as a
       single cube) and one broad ip-traffic query, from two rotating
       access points. *)
    let snapshot = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
    let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
    let scope_gw = gateways.(k * 13 mod Array.length gateways) in
    let scopes =
      [
        Option.get (Workload.Scenario.range_scope s ~host:scope_gw);
        Rvaas.Verifier.ip_traffic_hs ();
      ]
    in
    List.iter
      (fun (ep : Rvaas.Verifier.endpoint) ->
        List.iter
          (fun hs ->
            incr parity_checks;
            let live =
              Rvaas.Service.reach (Workload.Scenario.service s) ~src_sw:ep.sw
                ~src_port:ep.port ~hs
            in
            let sweep =
              Rvaas.Verifier.reach ~flows_of topo ~src_sw:ep.sw
                ~src_port:ep.port ~hs
            in
            if not (e22_agree live sweep) then incr parity_mismatches)
          scopes)
      [ points.(k mod Array.length points);
        points.(k * 7 mod Array.length points);
      ];
    let executed = Netsim.Sim.executed sim - executed0 in
    let cache = Rvaas.Reach_cache.hit_rate (Rvaas.Service.reach_cache (Workload.Scenario.service s)) in
    let frontend = Rvaas.Service.frontend_stats (Workload.Scenario.service s) in
    let coalesce_rate =
      if frontend.Rvaas.Frontend.admitted = 0 then 0.0
      else
        float_of_int frontend.Rvaas.Frontend.coalesced
        /. float_of_int frontend.Rvaas.Frontend.admitted
    in
    Printf.printf "%-7.0f | %9d %9.0f %8.1f | %6.1f %8.1f %7.1f | %6s\n"
      (now () -. start) executed
      (float_of_int executed /. (now_s () -. wall0))
      step_wall (100.0 *. cache) (100.0 *. coalesce_rate)
      (float_of_int (e22_peak_rss_kb ()) /. 1024.0)
      (if !parity_mismatches = 0 then "ok" else "MISMATCH");
    flush stdout
  done;
  (* Let the last transients retract, then summarise. *)
  Workload.Scenario.run s ~until:(now () +. 15.0);
  let total_wall = now_s () -. wall0 in
  let executed = Netsim.Sim.executed sim - executed0 in
  let plumbing_stats =
    Option.map Rvaas.Plumbing.stats
      (Rvaas.Service.plumbing (Workload.Scenario.service s))
  in
  Printf.printf
    "soak: %.0f s simulated in %.1f s wall — %.0f events/s sustained, peak \
     RSS %.1f MB\n\
     churn executed: %d/%d upgrades, %d/%d flaps, %d/%d attacks, %d/%d \
     storms\n\
     storms: %d queries sent, %d answered, %d throttled\n\
     parity: %d/%d sampled verdicts agree\n"
    (now () -. 15.0 -. start) total_wall
    (float_of_int executed /. total_wall)
    (float_of_int (e22_peak_rss_kb ()) /. 1024.0)
    report.Workload.Churn.upgrades pu report.Workload.Churn.flaps pf
    report.Workload.Churn.attacks pa report.Workload.Churn.storms ps
    report.Workload.Churn.storm_queries_sent
    report.Workload.Churn.storm_answers report.Workload.Churn.storm_throttled
    (!parity_checks - !parity_mismatches)
    !parity_checks;
  (match plumbing_stats with
  | Some st ->
    Printf.printf
      "plumbing: %d incremental updates, %d recompiles, %d scoped lookups, \
       %d fallback sweeps\n"
      st.Rvaas.Plumbing.updates st.Rvaas.Plumbing.recompiles
      st.Rvaas.Plumbing.scoped_lookups st.Rvaas.Plumbing.fallback_sweeps
  | None -> ());
  if strict then begin
    let failures = ref 0 in
    let fail msg =
      incr failures;
      Printf.printf "E22 strict: %s\n" msg
    in
    if !parity_mismatches > 0 then
      fail
        (Printf.sprintf "%d sweep-vs-compiled parity mismatch(es)"
           !parity_mismatches);
    if Workload.Topogen.switch_count topo < 1000 then
      fail "world below 1000 switches";
    if Workload.Scenario.address_count s < 2_000_000 then
      fail "fewer than two million range-carried addresses";
    if (not smoke) && now () -. start < 3600.0 then
      fail "less than an hour of simulated time";
    if
      report.Workload.Churn.upgrades <> pu
      || report.Workload.Churn.flaps <> pf
      || report.Workload.Churn.attacks <> pa
      || report.Workload.Churn.storms <> ps
    then fail "campaign did not execute every planned event";
    if ps > 0 && report.Workload.Churn.storm_answers = 0 then
      fail "storm queries never answered";
    if !failures > 0 then begin
      Printf.printf "E22 strict: %d failing check(s)\n" !failures;
      exit 1
    end
    else
      print_endline
        "E22 strict: scale, campaign-completion and parity checks passed"
  end

(* ---------------------------------------------------------------- *)
(* Micro-benchmarks (Bechamel)                                       *)
(* ---------------------------------------------------------------- *)

let micro () =
  section "micro: core kernels (Bechamel OLS, time per call)";
  let open Bechamel in
  let rng = Support.Rng.create 4242 in
  let w = Hspace.Field.total_width in
  let cube_a = Hspace.Tern.random rng w ~fixed_prob:0.3 in
  let cube_b = Hspace.Tern.random rng w ~fixed_prob:0.3 in
  let hs_a =
    Hspace.Hs.of_cubes w (List.init 8 (fun _ -> Hspace.Tern.random rng w ~fixed_prob:0.3))
  in
  let hs_b =
    Hspace.Hs.of_cubes w (List.init 8 (fun _ -> Hspace.Tern.random rng w ~fixed_prob:0.3))
  in
  (* A 100-rule flow table and a header matching only the last rule. *)
  let table = Ofproto.Flow_table.create () in
  for i = 0 to 99 do
    let m = Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Ip_dst (1000 + i) in
    Ofproto.Flow_table.add table
      (Ofproto.Flow_entry.make_spec ~priority:(100 + i) m [ Ofproto.Action.Output 1 ])
      ~now:0.0
  done;
  let header = Hspace.Header.udp ~src_ip:1 ~dst_ip:1099 ~src_port:1 ~dst_port:2 in
  (* A settled fat-tree scenario for the reachability kernel. *)
  let topo = Workload.Topogen.fat_tree Workload.Topogen.default_params ~k:4 in
  let s = build_scenario topo in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  let flows_of sw = Rvaas.Snapshot.flows (Rvaas.Monitor.snapshot s.monitor) ~sw in
  let att = Option.get (Netsim.Topology.host_attachment topo 0) in
  let src_sw =
    match att.Netsim.Topology.node with
    | Netsim.Topology.Switch sw -> sw
    | _ -> assert false
  in
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  let service_kp = Cryptosim.Keys.generate rng ~owner:"bench" in
  let empty_answer =
    {
      Rvaas.Query.nonce = "n";
      kind = Rvaas.Query.Isolation;
      endpoints = [];
      total_auth_requests = 0;
      auth_replies = 0;
      auth_attempts = 0;
      degraded = false;
      jurisdictions = [];
      path_hops = None;
      meters = [];
      transfer = [];
      snapshot_age = 0.0;
      throttled = false;
    }
  in
  let kernels =
    [
      ("tern_inter", fun () -> ignore (Hspace.Tern.inter cube_a cube_b));
      ("tern_diff", fun () -> ignore (Hspace.Tern.diff cube_a cube_b));
      ("hs_inter", fun () -> ignore (Hspace.Hs.inter hs_a hs_b));
      ("hs_diff", fun () -> ignore (Hspace.Hs.diff hs_a hs_b));
      ( "flow_lookup_100",
        fun () -> ignore (Ofproto.Flow_table.lookup table ~in_port:0 header) );
      ( "reach_fattree_k4",
        fun () ->
          ignore
            (Rvaas.Verifier.reach ~flows_of topo ~src_sw
               ~src_port:att.Netsim.Topology.port
               ~hs:(Rvaas.Verifier.dst_ip_hs 0x0A000002)) );
      ("snapshot_digest", fun () -> ignore (Rvaas.Snapshot.digest snapshot));
      ( "answer_codec",
        fun () -> ignore (Rvaas.Codec.encode_answer empty_answer ~signer:service_kp) );
    ]
  in
  (* Allocation pressure alongside latency: the mean minor-heap words
     allocated per call, from [Gc.minor_words] deltas over a fixed
     iteration count (Bechamel measures time only). *)
  let minor_words_per_call f =
    f ();
    let iters = 50 in
    let before = Gc.minor_words () in
    for _ = 1 to iters do
      f ()
    done;
    (Gc.minor_words () -. before) /. float_of_int iters
  in
  let cfg = Benchmark.cfg ~limit:500 ~quota:(Time.second 0.25) ~kde:None () in
  let instance = Toolkit.Instance.monotonic_clock in
  Printf.printf "%-22s %15s %18s\n" "kernel" "ns/call" "minor words/call";
  List.iter
    (fun (kname, f) ->
      let test = Test.make ~name:kname (Staged.stage f) in
      let raw = Benchmark.all cfg [ instance ] test in
      let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
      let results = Analyze.all ols instance raw in
      let alloc = minor_words_per_call f in
      Hashtbl.iter
        (fun name ols_result ->
          match Analyze.OLS.estimates ols_result with
          | Some [ ns ] -> Printf.printf "%-22s %15.1f %18.0f\n" name ns alloc
          | Some _ | None -> Printf.printf "%-22s %15s %18.0f\n" name "n/a" alloc)
        results)
    kernels

(* ---------------------------------------------------------------- *)

let experiments =
  [
    ("e1", e1);
    ("e2", e2);
    ("e3", e3);
    ("e4", e4);
    ("e5", e5);
    ("e6", e6);
    ("e7", e7);
    ("e8", e8);
    ("e9", e9);
    ("e10", e10);
    ("e11", e11);
    ("e12", e12);
    ("e13", e13);
    ("e14", e14);
    ("e15", e15);
    ("e16", e16);
    ("e17", e17);
    ("e18", e18);
    ("e19", e19);
    ("e20", e20);
    ("e21", e21);
    ("e22", e22);
    ("micro", micro);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let selected =
    match args with
    | [] | [ "all" ] -> List.map fst experiments
    | names -> names
  in
  print_endline "RVaaS experiment harness (see EXPERIMENTS.md for the index)";
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f ->
        f ();
        flush stdout
      | None ->
        Printf.printf "unknown experiment %S (known: %s)\n" name
          (String.concat ", " (List.map fst experiments)))
    selected
