(* rvaas-cli: run RVaaS deployments, queries and attack scenarios from
   the command line.

     dune exec bin/rvaas_cli.exe -- query --topo fat-tree --size 4 \
       --kind isolation --host 0
     dune exec bin/rvaas_cli.exe -- attack --attack join --kind isolation
     dune exec bin/rvaas_cli.exe -- topo --topo waxman --size 30
     dune exec bin/rvaas_cli.exe -- monitor --polling random --loss 0.8 *)

open Cmdliner

(* ---- shared options ---- *)

let topo_conv =
  Arg.enum
    [
      ("linear", `Linear);
      ("ring", `Ring);
      ("star", `Star);
      ("grid", `Grid);
      ("fat-tree", `Fat_tree);
      ("leaf-spine", `Leaf_spine);
      ("waxman", `Waxman);
      ("isp", `Isp);
      ("scale-free", `Scale_free);
      ("multi-domain", `Multi_domain);
    ]

let topo_arg =
  Arg.(value & opt topo_conv `Linear & info [ "topo" ] ~docv:"KIND" ~doc:"Topology kind.")

let size_arg =
  Arg.(
    value & opt int 4
    & info [ "size" ] ~docv:"N"
        ~doc:"Topology size (switch count; k for fat-tree; side for grid).")

let clients_arg =
  Arg.(value & opt int 2 & info [ "clients" ] ~docv:"N" ~doc:"Number of clients.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed.")

let host_arg =
  Arg.(value & opt int 0 & info [ "host" ] ~docv:"H" ~doc:"Requesting host id.")

let polling_conv =
  Arg.enum [ ("none", `None); ("periodic", `Periodic); ("random", `Random) ]

let polling_arg =
  Arg.(
    value & opt polling_conv `Random
    & info [ "polling" ] ~docv:"MODE" ~doc:"Configuration polling mode.")

let poll_period_arg =
  Arg.(
    value & opt float 0.05
    & info [ "poll-period" ] ~docv:"SECONDS" ~doc:"Poll period or mean gap.")

let loss_arg =
  Arg.(
    value & opt float 0.0
    & info [ "loss" ] ~docv:"P" ~doc:"Monitor-event loss probability on the RVaaS channel.")

let engine_conv : Rvaas.Plumbing.engine Arg.conv =
  Arg.enum [ ("sweep", `Sweep); ("compiled", `Compiled) ]

let engine_arg =
  Arg.(
    value & opt engine_conv `Sweep
    & info [ "engine" ] ~docv:"ENGINE"
        ~doc:
          "Verification engine: $(b,sweep) runs a cache-first header-space \
           sweep per query; $(b,compiled) answers from the incrementally \
           maintained plumbing graph.")

let coalesce_arg =
  Arg.(
    value & flag
    & info [ "coalesce" ]
        ~doc:
          "Fold identical in-flight queries under one computation (each \
           client still receives its own signed answer).")

let batch_window_arg =
  Arg.(
    value & opt float 0.0
    & info [ "batch-window" ] ~docv:"SECONDS"
        ~doc:
          "Settle tick: queries arriving within the window are flushed \
           together and batched per injection point (0 = flush \
           immediately, no batching).")

let subsume_arg =
  Arg.(
    value & flag
    & info [ "subsume" ]
        ~doc:
          "Attach scope-contained reachability queries to a broader queued \
           or in-flight computation as slices (implies $(b,--coalesce)); \
           each still receives its own signed answer.")

let limits_conv : Rvaas.Frontend.limits Arg.conv =
  let parse s =
    match String.split_on_char ':' s with
    | [ rate; burst ] -> (
      match (float_of_string_opt rate, float_of_string_opt burst) with
      | Some rate, Some burst when rate > 0.0 && burst >= 1.0 ->
        Ok { Rvaas.Frontend.rate; burst }
      | _ -> Error (`Msg "expected RATE:BURST with RATE > 0 and BURST >= 1"))
    | _ -> Error (`Msg "expected RATE:BURST")
  in
  let print fmt { Rvaas.Frontend.rate; burst } =
    Format.fprintf fmt "%g:%g" rate burst
  in
  Arg.conv (parse, print)

let limits_arg =
  Arg.(
    value & opt (some limits_conv) None
    & info [ "limits" ] ~docv:"RATE:BURST"
        ~doc:
          "Per-client token-bucket admission: refill RATE tokens/second up \
           to BURST; over-budget clients receive a signed throttle answer.")

let frontend_term =
  let make coalesce subsume batch_window limits =
    if coalesce || subsume || batch_window > 0.0 || limits <> None then
      { Rvaas.Frontend.limits; coalesce = coalesce || subsume; batch_window; subsume }
    else Rvaas.Frontend.default_config
  in
  Cmdliner.Term.(
    const make $ coalesce_arg $ subsume_arg $ batch_window_arg $ limits_arg)

let make_topo kind size =
  let p = Workload.Topogen.default_params in
  match kind with
  | `Linear -> Workload.Topogen.linear p size
  | `Ring -> Workload.Topogen.ring p (max 3 size)
  | `Star -> Workload.Topogen.star p size
  | `Grid -> Workload.Topogen.grid p ~rows:size ~cols:size
  | `Fat_tree -> Workload.Topogen.fat_tree p ~k:(if size mod 2 = 0 then size else size + 1)
  | `Leaf_spine ->
    Workload.Topogen.leaf_spine p ~spines:(max 1 (size / 4)) ~leaves:(max 1 size)
  | `Waxman ->
    Workload.Topogen.waxman p (Support.Rng.create 7) ~n:size ~alpha:0.4 ~beta:0.4
  | `Isp -> Workload.Topogen.isp p ~core:(max 3 size) ~pops_per_core:2
  | `Scale_free ->
    let n = max 4 size in
    Workload.Topogen.scale_free p (Support.Rng.create 7) ~n ~m:2
  | `Multi_domain ->
    (* A DC fabric peered to a scale-free backbone, sized by --size leaves. *)
    let leaves = max 2 size in
    let m =
      Workload.Topogen.multi_domain p (Support.Rng.create 7) ~peering:2
        [
          Workload.Topogen.Leaf_spine { spines = max 1 (leaves / 4); leaves };
          Workload.Topogen.Scale_free { n = max 4 (leaves / 2); m = 2 };
        ]
    in
    m.Workload.Topogen.md_topo

let make_polling mode period =
  match mode with
  | `None -> Rvaas.Monitor.No_polling
  | `Periodic -> Rvaas.Monitor.Periodic period
  | `Random -> Rvaas.Monitor.Randomized period

let build kind size clients seed polling period loss engine frontend =
  let topo = make_topo kind size in
  Workload.Scenario.build
    {
      (Workload.Scenario.default_spec topo) with
      clients;
      seed;
      polling = make_polling polling period;
      rvaas_loss = loss;
      engine;
      frontend;
    }

(* ---- topo subcommand ---- *)

let topo_cmd =
  let run kind size =
    let topo = make_topo kind size in
    Printf.printf "switches: %d\nhosts: %d\nlinks: %d\n"
      (Workload.Topogen.switch_count topo)
      (Workload.Topogen.host_count topo)
      (List.length (Netsim.Topology.links topo));
    List.iter
      (fun (l : Netsim.Topology.link) ->
        Format.printf "  %a -- %a (%.1f us)@." Netsim.Topology.pp_endpoint l.a
          Netsim.Topology.pp_endpoint l.b (1e6 *. l.delay))
      (Netsim.Topology.links topo);
    0
  in
  Cmd.v
    (Cmd.info "topo" ~doc:"Print a generated topology's wiring plan.")
    Term.(const run $ topo_arg $ size_arg)

(* ---- query subcommand ---- *)

let kind_conv =
  Arg.enum
    [
      ("isolation", `Isolation);
      ("reachable", `Reachable);
      ("sources", `Sources);
      ("geo", `Geo);
      ("fairness", `Fairness);
      ("transfer", `Transfer);
    ]

let kind_arg =
  Arg.(
    value & opt kind_conv `Isolation & info [ "kind" ] ~docv:"KIND" ~doc:"Query kind.")

let to_query = function
  | `Isolation -> Rvaas.Query.make Rvaas.Query.Isolation
  | `Reachable -> Rvaas.Query.make Rvaas.Query.Reachable_endpoints
  | `Sources -> Rvaas.Query.make Rvaas.Query.Sources_reaching_me
  | `Geo -> Rvaas.Query.make Rvaas.Query.Geo
  | `Fairness -> Rvaas.Query.make Rvaas.Query.Fairness
  | `Transfer -> Rvaas.Query.make Rvaas.Query.Transfer_summary

let run_query s ~host query =
  match Workload.Scenario.query_and_wait s ~host query ~timeout:2.0 with
  | None ->
    print_endline "no answer (timeout)";
    1
  | Some outcome ->
    Format.printf "%a@." Rvaas.Query.pp_answer outcome.Rvaas.Client_agent.answer;
    Printf.printf "round-trip: %.3f ms\n"
      (1000.0 *. (outcome.answered_at -. outcome.issued_at));
    let info = Option.get (Sdnctl.Addressing.host s.addressing ~host) in
    let policy = Workload.Scenario.policy_for s ~client:info.client in
    (match Rvaas.Detector.check_answer policy outcome.Rvaas.Client_agent.answer with
    | [] ->
      print_endline "policy check: clean";
      0
    | alarms ->
      List.iter (fun a -> Printf.printf "ALARM: %s\n" (Rvaas.Detector.describe a)) alarms;
      2)

let query_cmd =
  let run kind size clients seed polling period loss engine frontend host qkind =
    let s = build kind size clients seed polling period loss engine frontend in
    run_query s ~host (to_query qkind)
  in
  Cmd.v
    (Cmd.info "query" ~doc:"Run one client query against a fresh deployment.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ engine_arg $ frontend_term $ host_arg $ kind_arg)

(* ---- attack subcommand ---- *)

let attack_conv =
  Arg.enum
    [
      ("join", `Join);
      ("exfiltrate", `Exfiltrate);
      ("blackhole", `Blackhole);
      ("meter", `Meter);
      ("transient-blackhole", `Transient);
    ]

let attack_arg =
  Arg.(
    value & opt attack_conv `Join & info [ "attack" ] ~docv:"ATTACK" ~doc:"Attack to launch.")

let attack_cmd =
  let run kind size clients seed polling period loss engine frontend host qkind attack =
    let s = build kind size clients seed polling period loss engine frontend in
    let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
    let attack_value =
      match attack with
      | `Join -> Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 }
      | `Exfiltrate -> Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 1 }
      | `Blackhole -> Sdnctl.Attack.Blackhole { victim_host = 2 }
      | `Meter -> Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 50 }
      | `Transient ->
        Sdnctl.Attack.Transient
          {
            attack = Sdnctl.Attack.Blackhole { victim_host = 2 };
            start = now () +. 0.05;
            duration = 0.05;
          }
    in
    Printf.printf "launching: %s\n" (Sdnctl.Attack.describe attack_value);
    Sdnctl.Attack.launch s.net s.addressing
      ~conn:(Sdnctl.Provider.conn s.provider)
      attack_value;
    Workload.Scenario.run s ~until:(now () +. 0.3);
    run_query s ~host (to_query qkind)
  in
  Cmd.v
    (Cmd.info "attack"
       ~doc:"Launch an attack through the compromised provider, then query.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ engine_arg $ frontend_term $ host_arg $ kind_arg $ attack_arg)

(* ---- monitor subcommand ---- *)

let monitor_cmd =
  let run kind size clients seed polling period loss engine frontend =
    let s = build kind size clients seed polling period loss engine frontend in
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0) ;
    let snapshot = Rvaas.Monitor.snapshot s.monitor in
    Printf.printf "switches monitored: %d\n" (List.length (Rvaas.Snapshot.switches snapshot));
    Printf.printf "believed rules: %d\n" (Rvaas.Snapshot.total_flows snapshot);
    Printf.printf "events seen: %d (lost: %d)\n"
      (Rvaas.Monitor.events_seen s.monitor)
      (Netsim.Net.conn_lost (Rvaas.Monitor.conn s.monitor));
    Printf.printf "polls sent: %d\n" (Rvaas.Monitor.polls_sent s.monitor);
    Printf.printf "divergent switches vs. data plane: %d\n"
      (Rvaas.Snapshot.divergence snapshot ~actual:(Workload.Scenario.actual_flows s));
    Printf.printf "snapshot age: %.1f ms\n"
      (1000.0 *. Rvaas.Snapshot.age snapshot ~now:(Netsim.Sim.now (Netsim.Net.sim s.net)));
    Printf.printf "history entries: %d\n" (List.length (Rvaas.Monitor.history s.monitor));
    0
  in
  Cmd.v
    (Cmd.info "monitor" ~doc:"Report configuration-monitoring statistics after 1 s.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ engine_arg $ frontend_term)

(* ---- wiring subcommand ---- *)

let wiring_cmd =
  let run kind size clients seed polling period loss engine frontend =
    let s = build kind size clients seed polling period loss engine frontend in
    let report = ref None in
    Rvaas.Monitor.verify_wiring s.monitor ~timeout:0.5 ~on_complete:(fun r ->
        report := Some r);
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 1.0);
    match !report with
    | None ->
      print_endline "verification did not complete";
      1
    | Some r ->
      Printf.printf "probes sent: %d\nconfirmed: %d\nmisdelivered: %d\nmissing: %d\n"
        r.Rvaas.Monitor.probes_sent r.confirmed
        (List.length r.misdelivered) (List.length r.missing);
      List.iter
        (fun (sw, port) -> Printf.printf "  missing: probe out of sw%d port %d\n" sw port)
        r.missing;
      if r.misdelivered = [] && r.missing = [] then begin
        print_endline "wiring matches the trusted plan";
        0
      end
      else 2
  in
  Cmd.v
    (Cmd.info "wiring" ~doc:"Verify the physical wiring with LLDP-like probes.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ engine_arg $ frontend_term)

(* ---- traceback subcommand ---- *)

let traceback_cmd =
  let run kind size clients seed polling period loss engine frontend attack =
    let s = build kind size clients seed polling period loss engine frontend in
    Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
    let snapshot = Rvaas.Monitor.snapshot s.monitor in
    let baseline_flows =
      List.map
        (fun sw -> (sw, Rvaas.Snapshot.flows snapshot ~sw))
        (Rvaas.Snapshot.switches snapshot)
    in
    let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
    let attack_value =
      match attack with
      | `Join -> Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 }
      | `Exfiltrate -> Sdnctl.Attack.Exfiltrate { victim_host = 2; attacker_host = 1 }
      | `Blackhole -> Sdnctl.Attack.Blackhole { victim_host = 2 }
      | `Meter -> Sdnctl.Attack.Meter_squeeze { victim_host = 2; rate_kbps = 50 }
      | `Transient ->
        Sdnctl.Attack.Transient
          {
            attack = Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 };
            start = now () +. 0.05;
            duration = 0.1;
          }
    in
    Printf.printf "launching: %s\n" (Sdnctl.Attack.describe attack_value);
    Sdnctl.Attack.launch s.net s.addressing
      ~conn:(Sdnctl.Provider.conn s.provider)
      attack_value;
    Workload.Scenario.run s ~until:(now () +. 0.5);
    let topo = Netsim.Net.topology s.net in
    let victim =
      List.find
        (fun (e : Rvaas.Verifier.endpoint) -> e.host = 0)
        (Rvaas.Verifier.access_points topo)
    in
    let incidents =
      Rvaas.Traceback.investigate ~baseline_flows
        ~history:(Rvaas.Monitor.history s.monitor) topo ~victim
    in
    if incidents = [] then begin
      print_endline "no foreign rules in the monitored history";
      0
    end
    else begin
      List.iter (fun i -> Format.printf "%a@." Rvaas.Traceback.pp_incident i) incidents;
      2
    end
  in
  Cmd.v
    (Cmd.info "traceback"
       ~doc:"Launch an attack, then trace its ingress points from the history.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ engine_arg $ frontend_term $ attack_arg)

(* ---- failover subcommand ---- *)

let crash_after_arg =
  Arg.(
    value & opt float 0.003
    & info [ "crash-after" ] ~docv:"SECONDS"
        ~doc:"How long after the query goes out the primary is killed.")

let standbys_arg =
  Arg.(
    value & opt int 1
    & info [ "standbys" ] ~docv:"N"
        ~doc:
          "Warm standbys tailing the journal. With several, takeover goes \
           through the journalled claim election (lowest claiming standby id \
           wins).")

let failover_cmd =
  let run kind size clients seed polling period loss host qkind crash_after standbys =
    let topo = make_topo kind size in
    let s =
      Workload.Scenario.build
        {
          (Workload.Scenario.default_spec topo) with
          clients;
          seed;
          polling = make_polling polling period;
          rvaas_loss = loss;
          agent_resend = Some 0.12;
          ha = Some { Rvaas.Failover.default_config with standbys = max 0 standbys };
        }
    in
    let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
    let stamp fmt =
      Printf.printf "%8.1f ms  " (1000.0 *. now ());
      Printf.printf fmt
    in
    Workload.Scenario.run s ~until:(now () +. 0.2);
    let ctrl = Workload.Scenario.controller s in
    let agent = Workload.Scenario.agent s ~host in
    let result = ref None in
    Rvaas.Client_agent.set_answer_callback agent (fun o -> result := Some o);
    ignore (Rvaas.Client_agent.send_query agent (to_query qkind));
    stamp "query issued from host %d (generation %d serving)\n" host
      (Rvaas.Failover.generation ctrl);
    Workload.Scenario.run s ~until:(now () +. crash_after);
    Rvaas.Failover.crash ctrl;
    stamp "primary crashed: service dead, polling stopped, session down\n";
    stamp "%d warm standby%s armed (takeover after %.0f ms of journal silence)\n"
      (Rvaas.Failover.standby_count ctrl)
      (if Rvaas.Failover.standby_count ctrl = 1 then "" else "s")
      (1000.0 *. Rvaas.Failover.default_config.takeover_timeout);
    let deadline = now () +. 2.0 in
    while !result = None && now () < deadline do
      Workload.Scenario.run s ~until:(now () +. 0.01)
    done;
    Workload.Scenario.run s ~until:(now () +. 0.2);
    (match Rvaas.Failover.last_takeover ctrl with
    | None -> print_endline "standby never took over"
    | Some r ->
      Printf.printf "%8.1f ms  standby detected the silence (%.1f ms after the crash)\n"
        (1000.0 *. r.Rvaas.Failover.detected_at)
        (1000.0 *. (r.Rvaas.Failover.detected_at -. r.Rvaas.Failover.crashed_at));
      Printf.printf
        "%8.1f ms  takeover by standby %d: generation %d, %d journal entries \
         replayed, %d in-flight quer%s re-issued\n"
        (1000.0 *. r.Rvaas.Failover.taken_over_at)
        r.Rvaas.Failover.winner r.Rvaas.Failover.generation
        r.Rvaas.Failover.replayed_entries r.Rvaas.Failover.reissued_queries
        (if r.Rvaas.Failover.reissued_queries = 1 then "y" else "ies");
      if r.Rvaas.Failover.resynced_at > 0.0 then
        Printf.printf "%8.1f ms  resynchronised: poll sweep drained (blind window %.1f ms)\n"
          (1000.0 *. r.Rvaas.Failover.resynced_at)
          (1000.0 *. (r.Rvaas.Failover.resynced_at -. r.Rvaas.Failover.crashed_at)));
    match !result with
    | None ->
      print_endline "no answer (timeout)";
      1
    | Some outcome ->
      Printf.printf "%8.1f ms  answer delivered to host %d\n"
        (1000.0 *. outcome.Rvaas.Client_agent.answered_at)
        host;
      Format.printf "%a@." Rvaas.Query.pp_answer outcome.Rvaas.Client_agent.answer;
      0
  in
  Cmd.v
    (Cmd.info "failover"
       ~doc:
         "Kill the primary RVaaS controller mid-query and print the warm standby's \
          takeover timeline.")
    Term.(
      const run $ topo_arg $ size_arg $ clients_arg $ seed_arg $ polling_arg
      $ poll_period_arg $ loss_arg $ host_arg $ kind_arg $ crash_after_arg
      $ standbys_arg)

(* ---- persist subcommand ---- *)

let state_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "state" ] ~docv:"PATH" ~doc:"On-disk journal image (RVJL1).")

let segmented_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "segmented" ] ~docv:"DIR"
        ~doc:
          "Use the segmented journal store in $(docv) (sealed segments + \
           active tail) instead of the monolithic $(b,--state) image.")

let segment_bytes_arg =
  Arg.(
    value & opt int 4096
    & info [ "segment-bytes" ] ~docv:"BYTES"
        ~doc:"Seal segments at this size (segmented store only).")

let encrypt_arg =
  Arg.(
    value & flag
    & info [ "encrypt" ]
        ~doc:
          "Encrypt journal frames at rest (segmented store only). The key \
           derives from the service keypair, hence from $(b,--seed); pass the \
           same seed to $(b,recover).")

let duration_arg =
  Arg.(
    value & opt float 1.0
    & info [ "duration" ] ~docv:"SECONDS"
        ~doc:"Simulated monitoring time before the run phase exits.")

let phase_arg =
  Arg.(
    required
    & pos 0 (some (enum [ ("run", `Run); ("recover", `Recover) ])) None
    & info [] ~docv:"PHASE"
        ~doc:"$(b,run) journals a monitored deployment to --state and exits \
              abruptly; $(b,recover), in a later process, rebuilds the \
              controller state from the file alone.")

let digest_lines snapshot =
  Rvaas.Snapshot.digest_vector snapshot
  |> List.map (fun (sw, d) -> Printf.sprintf "  switch %d digest %Lx" sw d)

let persist_cmd =
  let report_recovery ~src log =
    let r = Rvaas.Journal.recover log in
    Printf.printf
      "recovered %d verified entries from %s (generation %d, %d mutations \
       replayed over the last checkpoint, %d open queries)\n"
      (List.length (Support.Journal.valid_prefix log))
      src r.Rvaas.Journal.generation r.Rvaas.Journal.replayed
      (List.length r.Rvaas.Journal.open_queries);
    List.iter print_endline (digest_lines r.Rvaas.Journal.snapshot);
    0
  in
  (* The at-rest key derives from the service keypair, which derives
     from the seeded rng: rebuilding the scenario (sans persistence)
     with the same topology and seed re-derives the key — the
     key-escrow stand-in for a recovery process. *)
  let rederive_key kind size seed =
    let topo = make_topo kind size in
    let s =
      Workload.Scenario.build
        { (Workload.Scenario.default_spec topo) with seed }
    in
    Workload.Scenario.storage_key s
  in
  let run phase kind size seed path duration segmented segment_bytes encrypt =
    match (phase, segmented, path) with
    | `Run, None, None | `Recover, None, None ->
      prerr_endline "persist: need --state PATH or --segmented DIR";
      2
    | `Run, _, _ ->
      let topo = make_topo kind size in
      let persist =
        Option.map
          (fun dir ->
            {
              Workload.Scenario.p_dir = dir;
              p_segment_bytes = segment_bytes;
              p_encrypt = encrypt;
            })
          segmented
      in
      let s =
        Workload.Scenario.build
          {
            (Workload.Scenario.default_spec topo) with
            seed;
            polling = Rvaas.Monitor.Periodic 0.02;
            ha = Some { Rvaas.Failover.default_config with auto_compact = true };
            persist;
          }
      in
      let ctrl = Workload.Scenario.controller s in
      let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
      let file =
        match segmented with
        | Some _ -> None
        | None -> Some (Support.Journal_file.attach log ~path:(Option.get path))
      in
      Workload.Scenario.run s ~until:duration;
      (match (segmented, file) with
      | Some dir, _ ->
        let store = Workload.Scenario.store s in
        Printf.printf
          "ran %.2f s of monitoring; journal: %d entries, %d bytes in %s (%d \
           sealed + 1 active segment%s, %d seals, %d dropped by compaction)\n"
          duration (Support.Journal.length log)
          (Support.Segment_store.written_bytes store)
          dir
          (Support.Segment_store.sealed_count store)
          (if encrypt then ", encrypted" else "")
          (Support.Segment_store.seals store)
          (Support.Segment_store.sealed_deleted store)
      | None, Some file ->
        Printf.printf
          "ran %.2f s of monitoring; journal: %d entries, %d bytes at %s\n"
          duration (Support.Journal.length log)
          (Support.Journal_file.written_bytes file)
          (Option.get path)
      | None, None -> ());
      List.iter print_endline
        (digest_lines (Rvaas.Monitor.snapshot (Workload.Scenario.monitor s)));
      (* exit without closing anything: recovery must not depend on a
         graceful shutdown *)
      0
    | `Recover, Some dir, _ -> (
      let crypt =
        if encrypt then
          Some (Cryptosim.Atrest.crypt ~key:(rederive_key kind size seed))
        else None
      in
      match Support.Segment_store.recover_from_dir ?crypt dir with
      | Error msg ->
        Printf.printf "recovery failed: %s\n" msg;
        1
      | Ok log -> report_recovery ~src:dir log)
    | `Recover, None, Some path -> (
      match Support.Journal_file.recover_from_file path with
      | Error msg ->
        Printf.printf "recovery failed: %s\n" msg;
        1
      | Ok log -> report_recovery ~src:path log)
  in
  Cmd.v
    (Cmd.info "persist"
       ~doc:
         "Two-phase kill-and-restart: journal a deployment to disk (a \
          monolithic image, or a segmented store with optional \
          encryption-at-rest), then recover it in a fresh process. Matching \
          digest vectors across the two phases demonstrate exact state \
          recovery from the disk bytes alone.")
    Term.(
      const run $ phase_arg $ topo_arg $ size_arg $ seed_arg $ state_arg
      $ duration_arg $ segmented_arg $ segment_bytes_arg $ encrypt_arg)

let main =
  Cmd.group
    (Cmd.info "rvaas-cli" ~version:"1.0.0"
       ~doc:"Routing-Verification-as-a-Service: deployments, queries and attacks.")
    [
      topo_cmd;
      query_cmd;
      attack_cmd;
      monitor_cmd;
      wiring_cmd;
      traceback_cmd;
      failover_cmd;
      persist_cmd;
    ]

let () = exit (Cmd.eval' main)
