(* Crash-recovery & warm-standby failover.

   The paper places all trust in one attested RVaaS controller — which
   makes that controller a single point of failure.  This repo's
   recovery layer removes the availability gap without weakening the
   trust argument: every snapshot mutation and every in-flight query is
   appended to a checksummed, generation-numbered journal, and a warm
   standby tails that journal.  When the primary falls silent for
   longer than the takeover timeout, the standby replays the journal
   (last checkpoint image + later mutations), re-attaches the switch
   sessions, re-installs interception, re-polls every switch, and
   re-issues every query that was in flight — all under a new
   generation number, so the log doubles as an audit trail of
   incarnations.

   This demo kills the primary while an isolation query is in flight
   and prints the standby's takeover timeline.  The client keeps its
   answer: either the standby re-issues the journalled query, or — if
   the crash ate an already-sent answer — the client agent's resend
   (same nonce) covers the output-commit window.

   Run with:  dune exec examples/failover_demo.exe *)

let config =
  {
    Rvaas.Failover.heartbeat_period = 0.01;
    takeover_timeout = 0.05;
    check_period = 0.01;
    checkpoint_every = 32;
    standbys = 1;
    auto_compact = false;
    replica_lag = 8;
    replica_delay = 0.0;
  }

let crash_after = 0.002 (* seconds after the query goes out *)

let () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        polling = Rvaas.Monitor.Periodic 0.02;
        agent_resend = Some 0.12;
        ha = Some config;
      }
  in
  let now () = Netsim.Sim.now (Netsim.Net.sim s.net) in
  let stamp fmt =
    Printf.printf "%7.1f ms  " (1000.0 *. now ());
    Printf.printf fmt
  in
  let ctrl = Workload.Scenario.controller s in
  (* Commission, then poison the deployment through the compromised
     provider so the recovered verdict has something to flag. *)
  Workload.Scenario.run s ~until:0.2;
  Sdnctl.Attack.launch s.net s.addressing
    ~conn:(Sdnctl.Provider.conn s.provider)
    (Sdnctl.Attack.Join { victim_client = 0; attacker_host = 1 });
  Workload.Scenario.run s ~until:0.3;
  stamp "deployment running, join attack installed (generation %d serving)\n"
    (Rvaas.Failover.generation ctrl);
  (* Query in flight... *)
  let agent = Workload.Scenario.agent s ~host:0 in
  let result = ref None in
  Rvaas.Client_agent.set_answer_callback agent (fun o -> result := Some o);
  ignore (Rvaas.Client_agent.send_query agent (Rvaas.Query.make Rvaas.Query.Isolation));
  stamp "host 0 asks: \"am I isolated?\"\n";
  (* ...and the primary dies under it. *)
  Workload.Scenario.run s ~until:(now () +. crash_after);
  Rvaas.Failover.crash ctrl;
  stamp "PRIMARY CRASHES: service dead, polling stopped, session down\n";
  stamp "(switches keep forwarding: fail-standalone)\n";
  Rvaas.Failover.enable_standby ctrl;
  stamp "warm standby armed: tails the journal every %.0f ms\n"
    (1000.0 *. config.check_period);
  let deadline = now () +. 2.0 in
  while !result = None && now () < deadline do
    Workload.Scenario.run s ~until:(now () +. 0.01)
  done;
  Workload.Scenario.run s ~until:(now () +. 0.2);
  (match Rvaas.Failover.last_takeover ctrl with
  | None -> print_endline "standby never took over"
  | Some r ->
    Printf.printf "%7.1f ms  standby: journal silent for > %.0f ms, primary declared dead\n"
      (1000.0 *. r.Rvaas.Failover.detected_at)
      (1000.0 *. config.takeover_timeout);
    Printf.printf
      "%7.1f ms  TAKEOVER as generation %d: %d journal entries replayed over the last\n\
      \            checkpoint, switches re-attached, interception re-installed,\n\
      \            %d in-flight quer%s re-issued under fresh challenges\n"
      (1000.0 *. r.Rvaas.Failover.detected_at)
      r.Rvaas.Failover.generation r.Rvaas.Failover.replayed_entries
      r.Rvaas.Failover.reissued_queries
      (if r.Rvaas.Failover.reissued_queries = 1 then "y" else "ies");
    if r.Rvaas.Failover.resynced_at > 0.0 then
      Printf.printf
        "%7.1f ms  resynchronised: post-takeover poll sweep drained\n\
        \            (blind window: %.1f ms from crash to fresh snapshot)\n"
        (1000.0 *. r.Rvaas.Failover.resynced_at)
        (1000.0 *. (r.Rvaas.Failover.resynced_at -. r.Rvaas.Failover.crashed_at)));
  match !result with
  | None ->
    print_endline "\nno answer reached the client — failover failed";
    exit 1
  | Some outcome ->
    Printf.printf "%7.1f ms  answer reaches host 0 (issued %.1f ms earlier, crash included)\n"
      (1000.0 *. outcome.Rvaas.Client_agent.answered_at)
      (1000.0 *. (outcome.Rvaas.Client_agent.answered_at -. outcome.issued_at));
    let answer = outcome.Rvaas.Client_agent.answer in
    let policy = Workload.Scenario.policy_for s ~client:0 in
    (match Rvaas.Detector.check_answer policy answer with
    | [] -> print_endline "\nno alarms — unexpected: the join attack should be visible"
    | alarms ->
      print_endline "\nthe recovered controller still flags the attack:";
      List.iter
        (fun a -> Printf.printf "  ALARM: %s\n" (Rvaas.Detector.describe a))
        alarms)
