(* Durable persistence: survive a SIGKILL of the whole process.

   PR 4's journal survived controller crashes inside one process; this
   demo exercises the on-disk backend ([Support.Journal_file]): a
   child process runs a monitored deployment with its journal mirrored
   to a file, records the digest vector of its live snapshot, then
   kills itself with SIGKILL — no atexit, no flush, no goodbye.  The
   parent recovers from the file alone and checks that the recovered
   snapshot's digest vector matches the child's last-known state
   exactly.

   Run with:  dune exec examples/persistence_demo.exe *)

let config =
  {
    Rvaas.Failover.default_config with
    checkpoint_every = 32;
    auto_compact = true;
  }

let digest_lines snapshot =
  Rvaas.Snapshot.digest_vector snapshot
  |> List.map (fun (sw, d) -> Printf.sprintf "%d:%Lx" sw d)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let child_run ~journal_path ~digest_path =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 4 in
  let s =
    Workload.Scenario.build
      {
        (Workload.Scenario.default_spec topo) with
        polling = Rvaas.Monitor.Periodic 0.02;
        ha = Some config;
      }
  in
  let ctrl = Workload.Scenario.controller s in
  let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
  let file = Support.Journal_file.attach log ~path:journal_path in
  Workload.Scenario.run s ~until:1.0;
  let snapshot = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
  write_lines digest_path (digest_lines snapshot);
  Printf.printf
    "child: ran 1 s of monitoring, %d journal entries (%d bytes on disk, %d synced)\n\
     child: digest vector written; dying by SIGKILL mid-flight\n%!"
    (Support.Journal.length log)
    (Support.Journal_file.written_bytes file)
    (Support.Journal_file.synced_bytes file);
  Unix.kill (Unix.getpid ()) Sys.sigkill

let () =
  let journal_path = Filename.temp_file "rvaas_persist" ".rvjl" in
  let digest_path = Filename.temp_file "rvaas_persist" ".digest" in
  (match Unix.fork () with
  | 0 ->
    child_run ~journal_path ~digest_path;
    assert false (* SIGKILL does not return *)
  | pid -> (
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WSIGNALED sg when sg = Sys.sigkill ->
      print_endline "parent: child confirmed dead (SIGKILL)"
    | _ ->
      print_endline "parent: child did not die by SIGKILL — demo broken";
      exit 1);
    match Support.Journal_file.recover_from_file journal_path with
    | Error msg ->
      Printf.printf "parent: recovery failed: %s\n" msg;
      exit 1
    | Ok log ->
      let recovery = Rvaas.Journal.recover log in
      let recovered = digest_lines recovery.Rvaas.Journal.snapshot in
      let expected = read_lines digest_path in
      Printf.printf
        "parent: recovered %d verified entries (generation %d, %d mutations \
         replayed over the last checkpoint)\n"
        (List.length (Support.Journal.valid_prefix log))
        recovery.Rvaas.Journal.generation recovery.Rvaas.Journal.replayed;
      List.iter (fun l -> Printf.printf "  switch %s\n" l) recovered;
      if recovered = expected then
        print_endline "parent: digest vector matches the child's pre-crash state exactly"
      else begin
        print_endline "parent: DIGEST MISMATCH — recovery lost state";
        exit 1
      end));
  Sys.remove journal_path;
  Sys.remove digest_path
