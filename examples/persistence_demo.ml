(* Durable persistence: survive a SIGKILL of the whole process.

   PR 4's journal survived controller crashes inside one process; this
   demo exercises the on-disk backends.  Round one uses the monolithic
   image ([Support.Journal_file]); round two the segmented store with
   encryption-at-rest ([Support.Segment_store] + [Cryptosim.Atrest]).
   Each round: a child process runs a monitored deployment with its
   journal mirrored to disk, records the digest vector of its live
   snapshot, then kills itself with SIGKILL — no atexit, no flush, no
   goodbye.  The parent recovers from the disk bytes alone (for the
   encrypted store: re-deriving the storage key from the scenario
   seed, the key-escrow stand-in) and checks that the recovered digest
   vector matches the child's last-known state exactly.

   Run with:  dune exec examples/persistence_demo.exe *)

let config =
  {
    Rvaas.Failover.default_config with
    checkpoint_every = 32;
    auto_compact = true;
  }

let digest_lines snapshot =
  Rvaas.Snapshot.digest_vector snapshot
  |> List.map (fun (sw, d) -> Printf.sprintf "%d:%Lx" sw d)

let write_lines path lines =
  let oc = open_out path in
  List.iter (fun l -> output_string oc (l ^ "\n")) lines;
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc);
  close_out oc

let read_lines path =
  let ic = open_in path in
  let rec go acc =
    match input_line ic with
    | line -> go (line :: acc)
    | exception End_of_file ->
      close_in ic;
      List.rev acc
  in
  go []

let topo () = Workload.Topogen.linear Workload.Topogen.default_params 4

let build_scenario ~persist =
  Workload.Scenario.build
    {
      (Workload.Scenario.default_spec (topo ())) with
      polling = Rvaas.Monitor.Periodic 0.02;
      ha = Some config;
      persist;
    }

(* [attach s] installs any extra backend right after build (before the
   run) and returns a thunk describing the on-disk state. *)
let child_run ~persist ~digest_path ~attach =
  let s = build_scenario ~persist in
  let describe = attach s in
  Workload.Scenario.run s ~until:1.0;
  let ctrl = Workload.Scenario.controller s in
  let log = Rvaas.Journal.log (Rvaas.Failover.journal ctrl) in
  let snapshot = Rvaas.Monitor.snapshot (Workload.Scenario.monitor s) in
  write_lines digest_path (digest_lines snapshot);
  Printf.printf
    "child: ran 1 s of monitoring, %d journal entries (%s)\n\
     child: digest vector written; dying by SIGKILL mid-flight\n%!"
    (Support.Journal.length log) (describe ());
  Unix.kill (Unix.getpid ()) Sys.sigkill

(* Fork a child, let it die by SIGKILL, recover in the parent. *)
let round ~name ~persist ~digest_path ~attach ~recover =
  Printf.printf "== %s ==\n%!" name;
  (match Unix.fork () with
  | 0 ->
    child_run ~persist ~digest_path ~attach;
    assert false (* SIGKILL does not return *)
  | pid -> (
    let _, status = Unix.waitpid [] pid in
    (match status with
    | Unix.WSIGNALED sg when sg = Sys.sigkill ->
      print_endline "parent: child confirmed dead (SIGKILL)"
    | _ ->
      print_endline "parent: child did not die by SIGKILL — demo broken";
      exit 1);
    match recover () with
    | Error msg ->
      Printf.printf "parent: recovery failed: %s\n" msg;
      exit 1
    | Ok log ->
      let recovery = Rvaas.Journal.recover log in
      let recovered = digest_lines recovery.Rvaas.Journal.snapshot in
      let expected = read_lines digest_path in
      Printf.printf
        "parent: recovered %d verified entries (generation %d, %d mutations \
         replayed over the last checkpoint)\n"
        (List.length (Support.Journal.valid_prefix log))
        recovery.Rvaas.Journal.generation recovery.Rvaas.Journal.replayed;
      List.iter (fun l -> Printf.printf "  switch %s\n" l) recovered;
      if recovered = expected then
        print_endline "parent: digest vector matches the child's pre-crash state exactly"
      else begin
        print_endline "parent: DIGEST MISMATCH — recovery lost state";
        exit 1
      end))

let rm_rf dir =
  if Sys.file_exists dir && Sys.is_directory dir then begin
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
    Unix.rmdir dir
  end

let () =
  (* Round 1: monolithic image. *)
  let journal_path = Filename.temp_file "rvaas_persist" ".rvjl" in
  let digest_path = Filename.temp_file "rvaas_persist" ".digest" in
  round ~name:"monolithic image" ~persist:None ~digest_path
    ~attach:(fun s ->
      let ctrl = Workload.Scenario.controller s in
      let file =
        Support.Journal_file.attach
          (Rvaas.Journal.log (Rvaas.Failover.journal ctrl))
          ~path:journal_path
      in
      fun () ->
        Printf.sprintf "%d bytes on disk, %d synced"
          (Support.Journal_file.written_bytes file)
          (Support.Journal_file.synced_bytes file))
    ~recover:(fun () -> Support.Journal_file.recover_from_file journal_path);
  Sys.remove journal_path;
  (* Round 2: segmented store, encrypted at rest.  The child's store
     seals segments as it goes and compaction unlinks whole files; the
     parent re-derives the storage key from the (deterministic)
     scenario seed and recovers from ciphertext alone. *)
  let dir = Filename.temp_file "rvaas_segments" "" in
  Sys.remove dir;
  let persist =
    Some { Workload.Scenario.p_dir = dir; p_segment_bytes = 2048; p_encrypt = true }
  in
  round ~name:"segmented store, encrypted at rest" ~persist ~digest_path
    ~attach:(fun s ->
      let store = Workload.Scenario.store s in
      fun () ->
        Printf.sprintf
          "%d bytes in %d sealed + 1 active encrypted segments, %d dropped by compaction"
          (Support.Segment_store.written_bytes store)
          (Support.Segment_store.sealed_count store)
          (Support.Segment_store.sealed_deleted store))
    ~recover:(fun () ->
      (* key escrow stand-in: rebuild the keypair from the same seed *)
      let key = Workload.Scenario.storage_key (build_scenario ~persist:None) in
      Support.Segment_store.recover_from_dir
        ~crypt:(Cryptosim.Atrest.crypt ~key) dir);
  rm_rf dir;
  Sys.remove digest_path
