(* Authenticated stream cipher for journal frames at rest (simulated).

   Each frame is encrypted with a keystream derived from (key, segment
   nonce, frame index) — so no two frames ever share a stream — and
   authenticated by an HMAC over the same binding context plus the
   ciphertext length and bytes.  The tag is prepended: a flipped bit
   anywhere (tag, length prefix upstream, or ciphertext) makes [unwrap]
   return [None], which the segment store treats as the end of the
   recoverable prefix.

   The module exports the hooks as a {!Support.Segment_store.crypt}
   record: [support] sits below [cryptosim] in the dependency order,
   so the store takes the cipher by injection rather than by
   depending on it. *)

let tag_length = 16 (* Hash.digest_hex output *)

let context ~nonce ~index = nonce ^ ":" ^ string_of_int index

let keystream ~key ~nonce ~index len =
  let seed =
    "atrest:" ^ Hmac.key_to_string key ^ ":" ^ context ~nonce ~index
  in
  let buffer = Buffer.create len in
  let block = ref (Hash.digest seed) in
  while Buffer.length buffer < len do
    block := Hash.combine !block 0x5DEECE66DL;
    for i = 0 to 7 do
      if Buffer.length buffer < len then
        Buffer.add_char buffer
          (Char.chr (Int64.to_int (Int64.shift_right_logical !block (8 * i)) land 0xFF))
    done
  done;
  Buffer.contents buffer

let xor_with ~key ~nonce ~index s =
  let ks = keystream ~key ~nonce ~index (String.length s) in
  String.mapi (fun i c -> Char.chr (Char.code c lxor Char.code ks.[i])) s

let frame_mac ~key ~nonce ~index cipher =
  Hmac.mac key
    (context ~nonce ~index
    ^ ":" ^ string_of_int (String.length cipher)
    ^ ":" ^ cipher)

let wrap ~key ~nonce ~index plain =
  let cipher = xor_with ~key ~nonce ~index plain in
  frame_mac ~key ~nonce ~index cipher ^ cipher

let unwrap ~key ~nonce ~index payload =
  if String.length payload < tag_length then None
  else
    let tag = String.sub payload 0 tag_length in
    let cipher = String.sub payload tag_length (String.length payload - tag_length) in
    if String.equal tag (frame_mac ~key ~nonce ~index cipher) then
      Some (xor_with ~key ~nonce ~index cipher)
    else None

(* Deterministic in (key, segment index): unique per segment under one
   key, and a recovery process never needs it — the nonce is stored in
   the segment header. *)
let nonce ~key ~seg =
  Hash.digest_hex ("atrest-nonce:" ^ Hmac.key_to_string key ^ ":" ^ string_of_int seg)

let crypt ~key : Support.Segment_store.crypt =
  {
    Support.Segment_store.wrap = (fun ~nonce ~index plain -> wrap ~key ~nonce ~index plain);
    unwrap = (fun ~nonce ~index payload -> unwrap ~key ~nonce ~index payload);
    fresh_nonce = (fun ~seg -> nonce ~key ~seg);
  }
