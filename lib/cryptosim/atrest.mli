(** Authenticated encryption-at-rest for journal frames (simulated).

    A stream cipher whose keystream is derived from (key, per-segment
    nonce, frame index), with a per-frame MAC over the binding context
    and ciphertext.  Plaintext journal bytes never reach disk; any
    corruption of a frame — or of the length prefix delimiting it —
    fails the MAC, and recovery stops at the first unverifiable frame
    (the torn-tail contract, preserved under encryption).

    Like the rest of [cryptosim], this simulates the protocol role
    only — the underlying hash is not cryptographically secure (see
    DESIGN.md §3). *)

(** [wrap ~key ~nonce ~index plain] encrypts and authenticates one
    frame; the tag is prepended to the ciphertext. *)
val wrap : key:Hmac.key -> nonce:string -> index:int -> string -> string

(** [unwrap ~key ~nonce ~index payload] inverts {!wrap}; [None] when
    the MAC does not verify. *)
val unwrap : key:Hmac.key -> nonce:string -> index:int -> string -> string option

(** [nonce ~key ~seg] is the per-segment nonce — deterministic in
    (key, segment index), stored in the segment header. *)
val nonce : key:Hmac.key -> seg:int -> string

(** [crypt ~key] packages the hooks for
    {!Support.Segment_store.attach}. *)
val crypt : key:Hmac.key -> Support.Segment_store.crypt
