type public = string

type keypair = { public : public; secret : Hmac.key }

(* Process-local registry standing in for a PKI: verification needs the
   secret because our "signature" is an HMAC. *)
let registry : (public, Hmac.key) Hashtbl.t = Hashtbl.create 16

let generate rng ~owner =
  let secret = Hmac.random_key rng in
  let public = "pub:" ^ owner ^ ":" ^ Hash.digest_hex (Hmac.key_to_string secret) in
  Hashtbl.replace registry public secret;
  { public; secret }

let public kp = kp.public

let sign kp msg = Hmac.mac kp.secret (kp.public ^ "/" ^ msg)

let verify ~public msg ~signature =
  match Hashtbl.find_opt registry public with
  | None -> false
  | Some secret -> Hmac.verify secret (public ^ "/" ^ msg) signature

let forge_signature msg = Hash.digest_hex ("forged:" ^ msg)

(* Purpose-bound subkey: deterministic in (secret, purpose), so a
   separate recovery process holding the same keypair re-derives the
   same storage key — the stand-in for key escrow. *)
let derive kp ~purpose =
  Hmac.key_of_string (Hmac.key_to_string kp.secret ^ "/derive/" ^ purpose)
