(** Toy public-key signatures (simulated).

    A keypair is a (public identifier, secret) pair; signing is an HMAC
    with the secret, and verification consults a process-local registry
    mapping public identifiers to verification material.  This mirrors
    how the paper distributes the RVaaS controller's public key to
    clients out of band. *)

type public = string

type keypair

(** [generate rng ~owner] creates and registers a keypair. *)
val generate : Support.Rng.t -> owner:string -> keypair

(** [public keypair] is the shareable identifier. *)
val public : keypair -> public

(** [sign keypair msg] produces a signature over [msg]. *)
val sign : keypair -> string -> string

(** [verify ~public msg ~signature] checks a signature against the
    registered key for [public]; unknown keys never verify. *)
val verify : public:public -> string -> signature:string -> bool

(** [forge_signature msg] produces a plausible-looking but invalid
    signature — used by attack scenarios and negative tests. *)
val forge_signature : string -> string

(** [derive keypair ~purpose] is a purpose-bound symmetric subkey,
    deterministic in (secret, purpose): a recovery process holding the
    same keypair re-derives the same storage key (key-escrow
    stand-in).  Used to key {!Atrest} for journal
    encryption-at-rest. *)
val derive : keypair -> purpose:string -> Hmac.key
