(* A header space is a normalised cube list plus its bounding cube
   (the join of all cubes, all-z when empty).  The bound makes
   disjointness of two sets — by far the most common relationship in
   rule-table sweeps — a handful of word operations, short-circuiting
   the quadratic cube products below. *)
type t = { width : int; cubes : Tern.t list; bound : Tern.t }

let width t = t.width

let empty width = { width; cubes = []; bound = Tern.none width }

let join_all width cubes =
  List.fold_left Tern.join (Tern.none width) cubes

(* Reference normaliser: the original per-operation O(n²) sweep, kept
   verbatim as the oracle for differential tests of the batch builder
   (drop empty cubes and cubes subsumed by another; among equal cubes
   keep the first). *)
let normalise_ref width cubes =
  let nonempty = List.filter (fun c -> not (Tern.is_empty c)) cubes in
  let rec keep acc = function
    | [] -> List.rev acc
    | c :: rest ->
      let subsumed_later = List.exists (fun d -> Tern.subset c d) rest in
      let subsumed_earlier = List.exists (fun d -> Tern.subset c d) acc in
      if subsumed_later || subsumed_earlier then keep acc rest
      else keep (c :: acc) rest
  in
  let cubes = keep [] nonempty in
  { width; cubes; bound = join_all width cubes }

(* Mutable batch builder.  Cubes are accumulated raw; [build] drops
   empties, dedups structurally via [Tern.hash], sorts by ascending
   fixed-bit count and runs one subsumption sweep.  Sorting makes a
   single pass sufficient: [c ⊆ d] forces every fixed bit of [d] to be
   fixed in [c], so a cube can only be subsumed by one of equal or
   lower fixed count — i.e. by a cube already kept (equal-count
   subsumption means structural equality, which dedup removed). *)
module Builder = struct
  type builder = {
    b_width : int;
    mutable items : Tern.t list;
    mutable count : int;
  }

  let create width = { b_width = width; items = []; count = 0 }

  let add b c =
    b.items <- c :: b.items;
    b.count <- b.count + 1

  (* Below this size, pairwise [Tern.equal] dedup beats paying for a
     hash table (word-compare with early exit vs. hashing every word
     plus table allocation on every set operation). *)
  let small = 12

  let build b =
    match b.items with
    | [] -> empty b.b_width
    | [ c ] ->
      if Tern.is_empty c then empty b.b_width
      else { width = b.b_width; cubes = [ c ]; bound = c }
    | items ->
      let uniq = ref [] and n = ref 0 in
      (if b.count <= small then
         let kept = ref [] in
         List.iter
           (fun c ->
             if
               (not (Tern.is_empty c))
               && not (List.exists (Tern.equal c) !kept)
             then begin
               kept := c :: !kept;
               uniq := (Tern.count_fixed c, c) :: !uniq;
               incr n
             end)
           items
       else
         let seen = Hashtbl.create (2 * b.count) in
         List.iter
           (fun c ->
             if not (Tern.is_empty c) then begin
               let h = Tern.hash c in
               if not (List.exists (Tern.equal c) (Hashtbl.find_all seen h))
               then begin
                 Hashtbl.add seen h c;
                 uniq := (Tern.count_fixed c, c) :: !uniq;
                 incr n
               end
             end)
           items);
      if !n = 0 then empty b.b_width
      else begin
        let arr = Array.of_list !uniq in
        Array.sort (fun (a, _) (b, _) -> Int.compare a b) arr;
        let kept = ref [] in
        Array.iter
          (fun (_, c) ->
            if not (List.exists (fun d -> Tern.subset c d) !kept) then
              kept := c :: !kept)
          arr;
        let cubes = List.rev !kept in
        { width = b.b_width; cubes; bound = join_all b.b_width cubes }
      end
end

let normalise width cubes =
  let b = Builder.create width in
  List.iter (Builder.add b) cubes;
  Builder.build b

let full width = { width; cubes = [ Tern.all_x width ]; bound = Tern.all_x width }

let of_cube c =
  let width = Tern.width c in
  if Tern.is_empty c then empty width else { width; cubes = [ c ]; bound = c }

let check_cubes name width cs =
  List.iter
    (fun c -> if Tern.width c <> width then invalid_arg (name ^ ": width mismatch"))
    cs

let of_cubes width cs =
  check_cubes "Hs.of_cubes" width cs;
  normalise width cs

let of_cubes_ref width cs =
  check_cubes "Hs.of_cubes_ref" width cs;
  normalise_ref width cs

let cubes t = t.cubes

let bound t = t.bound

let cube_count t = List.length t.cubes

let is_empty t = t.cubes = []

let is_full t = match t.cubes with [ c ] -> Tern.is_full c | _ -> false

let check_width name a b =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch")

let union a b =
  check_width "Hs.union" a b;
  if is_empty a then b
  else if is_empty b then a
  else if is_full a then a
  else if is_full b then b
  else if Tern.disjoint a.bound b.bound then
    (* Disjoint bounds: no cube of one can intersect — let alone
       subsume — a cube of the other, and both sides are already
       normalised, so plain concatenation is normalised too. *)
    {
      width = a.width;
      cubes = a.cubes @ b.cubes;
      bound = Tern.join a.bound b.bound;
    }
  else normalise a.width (a.cubes @ b.cubes)

let inter a b =
  check_width "Hs.inter" a b;
  if is_empty a || is_empty b then empty a.width
  else if is_full a then b
  else if is_full b then a
  else if Tern.disjoint a.bound b.bound then empty a.width
  else begin
    let builder = Builder.create a.width in
    List.iter
      (fun ca ->
        List.iter
          (fun cb ->
            if not (Tern.disjoint ca cb) then Builder.add builder (Tern.inter ca cb))
          b.cubes)
      a.cubes;
    Builder.build builder
  end

let diff_cube_list cubes c =
  List.concat_map (fun cube -> Tern.diff cube c) cubes

let diff a b =
  check_width "Hs.diff" a b;
  if is_empty a || is_empty b then a
  else if Tern.disjoint a.bound b.bound then a
  else
    let remaining = List.fold_left diff_cube_list a.cubes b.cubes in
    normalise a.width remaining

let inter_cube t c =
  if Tern.width c <> t.width then invalid_arg "Hs.inter_cube: width mismatch";
  if is_empty t || Tern.disjoint t.bound c then empty t.width
  else begin
    let builder = Builder.create t.width in
    List.iter
      (fun cube ->
        if not (Tern.disjoint cube c) then Builder.add builder (Tern.inter cube c))
      t.cubes;
    Builder.build builder
  end

let diff_cube t c =
  if Tern.width c <> t.width then invalid_arg "Hs.diff_cube: width mismatch";
  if is_empty t || Tern.disjoint t.bound c then t
  else normalise t.width (diff_cube_list t.cubes c)

let complement t = diff (full t.width) t

let mem concrete t = List.exists (fun c -> Tern.mem concrete c) t.cubes

let subset a b =
  check_width "Hs.subset" a b;
  if is_empty a then true
  else if is_empty b then false
  else if is_full b then true
  else if not (Tern.subset a.bound b.bound) then
    (* a ⊆ b forces bound(a) ⊆ bound(b): the bound is the smallest
       single cube covering its set, and bound(b) covers b ⊇ a. *)
    false
  else if List.exists (fun cb -> Tern.subset a.bound cb) b.cubes then
    (* One cube of b swallows a's whole bounding cube: containment
       without materialising the diff. *)
    true
  else
    (* Per-cube pre-pass: a cube inside some single cube of b needs no
       diff; only the stragglers pay the cube-by-cube subtraction. *)
    List.for_all
      (fun ca ->
        List.exists (fun cb -> Tern.subset ca cb) b.cubes
        || List.fold_left diff_cube_list [ ca ] b.cubes = [])
      a.cubes

let equal a b = subset a b && subset b a

let overlaps a b = not (is_empty (inter a b))

let hash t =
  (* Order-independent: the cube order of a normalised set depends on
     construction history, so per-cube hashes are sorted before
     folding. *)
  let hs = List.sort Int.compare (List.map Tern.hash t.cubes) in
  List.fold_left
    (fun acc h ->
      let acc = (acc lxor h) * 0x100000001B3 in
      acc lxor (acc lsr 31))
    (0x51A2D3C5 + t.width) hs

let sample rng t =
  match t.cubes with
  | [] -> None
  | cubes ->
    let cube = Support.Rng.pick rng cubes in
    let concrete = ref cube in
    for i = 0 to Tern.width cube - 1 do
      match Tern.get cube i with
      | Tern.Any ->
        concrete :=
          Tern.set !concrete i (if Support.Rng.bool rng then Tern.One else Tern.Zero)
      | Tern.Zero | Tern.One -> ()
      | Tern.Empty -> assert false
    done;
    Some !concrete

let pp fmt t =
  match t.cubes with
  | [] -> Format.fprintf fmt "(empty/%d)" t.width
  | cubes ->
    Format.fprintf fmt "@[<v>%a@]"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut Tern.pp)
      cubes
