(** Header spaces: finite unions of ternary cubes.

    A header space denotes a set of concrete headers as the union of a
    list of {!Tern} cubes.  Unlike the original HSA library we use
    eager cube subtraction instead of lazy difference terms, so
    emptiness is syntactic ([cubes = \[\]]) and all operations return
    normalised values (no empty cubes, no cube subsumed by another). *)

type t

(** [width t] is the header width in bits. *)
val width : t -> int

(** [empty width] denotes the empty set. *)
val empty : int -> t

(** [full width] denotes all headers of the given width. *)
val full : int -> t

(** [of_cube c] is the space denoted by a single cube (normalised). *)
val of_cube : Tern.t -> t

(** [of_cubes width cs] is the union of [cs]; cubes must have width
    [width]. *)
val of_cubes : int -> Tern.t list -> t

(** [of_cubes_ref width cs] is [of_cubes] computed with the original
    quadratic normaliser, kept as the oracle for differential tests of
    the batch builder.  Semantically equal to [of_cubes width cs]. *)
val of_cubes_ref : int -> Tern.t list -> t

(** Mutable batch builder: accumulate cubes from many sources, then
    normalise once.  [build b] is [of_cubes width cs] over everything
    added — one hash-dedup plus a single fixed-count-ordered
    subsumption sweep instead of a normalisation per union, which is
    how the query front-end pools the scopes of a whole batch of
    queries into one swept header space. *)
module Builder : sig
  type builder

  val create : int -> builder

  val add : builder -> Tern.t -> unit

  val build : builder -> t
end

(** [cubes t] returns the normalised cube list. *)
val cubes : t -> Tern.t list

(** [bound t] is the smallest single cube containing [t] (the
    {!Tern.join} of its cubes; all-[z] when empty).  Disjoint bounds
    prove disjoint spaces, which the set operations exploit as a fast
    path. *)
val bound : t -> Tern.t

(** [cube_count t] is the number of cubes in the representation — the
    size proxy for verification-cost experiments. *)
val cube_count : t -> int

(** [is_empty t] is true when [t] denotes no header. *)
val is_empty : t -> bool

(** [union a b] denotes set union. *)
val union : t -> t -> t

(** [inter a b] denotes set intersection. *)
val inter : t -> t -> t

(** [diff a b] denotes set difference [a \ b]. *)
val diff : t -> t -> t

(** [inter_cube t c] is [inter t (of_cube c)] without building the
    intermediate value. *)
val inter_cube : t -> Tern.t -> t

(** [diff_cube t c] is [diff t (of_cube c)] without building the
    intermediate value. *)
val diff_cube : t -> Tern.t -> t

(** [complement t] denotes the complement within the full space. *)
val complement : t -> t

(** [mem concrete t] is true when concrete vector [concrete] is in [t]. *)
val mem : Tern.t -> t -> bool

(** [subset a b] is true when [a] denotes a subset of [b].  Cheap on
    normalised ({!Builder}) output: non-containing bounding cubes
    reject without a diff, a single cube of [b] covering [a]'s bound
    accepts without one, and only cubes of [a] no single cube of [b]
    subsumes pay the cube-by-cube subtraction. *)
val subset : t -> t -> bool

(** [equal a b] is semantic equality (mutual subset). *)
val equal : t -> t -> bool

(** [overlaps a b] is true when the intersection is non-empty. *)
val overlaps : t -> t -> bool

(** [hash t] is an order-independent structural hash of the normalised
    cube set, suitable as a compact reach-cache key component.
    Structurally equal sets hash equally; semantically equal sets with
    different normal forms may not. *)
val hash : t -> int

(** [sample rng t] draws some concrete header from [t], or [None] when
    empty.  Free bits are drawn uniformly. *)
val sample : Support.Rng.t -> t -> Tern.t option

val pp : Format.formatter -> t -> unit
