(* Packed ternary bit-vectors: 31 header bits per word, 2 encoding bits
   per header bit (01 = 0, 10 = 1, 11 = *, 00 = z).  The pairs beyond
   [width] in the last word are kept at 11 so that word-wise [land]
   (intersection) and pair-wise subset tests need no special casing. *)

type t = { width : int; words : int array }

type bit = Zero | One | Any | Empty

let bits_per_word = 31

let evens_mask = 0x1555555555555555 (* 01 repeated over 62 bits *)

let full_word = 0x3FFFFFFFFFFFFFFF (* all 31 pairs = 11 *)

let word_count width = (width + bits_per_word - 1) / bits_per_word

(* Mask with 11 on the pairs that encode valid header bits of word [k]. *)
let valid_mask width k =
  let used = min bits_per_word (width - (k * bits_per_word)) in
  if used >= bits_per_word then full_word else (1 lsl (2 * used)) - 1

let all_x width =
  if width <= 0 then invalid_arg "Tern.all_x: width must be positive";
  { width; words = Array.make (word_count width) full_word }

let none width =
  if width <= 0 then invalid_arg "Tern.none: width must be positive";
  { width; words = Array.make (word_count width) 0 }

let width t = t.width

let encode = function Empty -> 0 | Zero -> 1 | One -> 2 | Any -> 3

let decode = function 0 -> Empty | 1 -> Zero | 2 -> One | _ -> Any

let get t i =
  if i < 0 || i >= t.width then invalid_arg "Tern.get: index out of range";
  let w = t.words.(i / bits_per_word) in
  decode ((w lsr (2 * (i mod bits_per_word))) land 3)

let set t i b =
  if i < 0 || i >= t.width then invalid_arg "Tern.set: index out of range";
  let words = Array.copy t.words in
  let k = i / bits_per_word and pos = 2 * (i mod bits_per_word) in
  words.(k) <- (words.(k) land lnot (3 lsl pos)) lor (encode b lsl pos);
  { t with words }

let is_empty t =
  let n = Array.length t.words in
  let rec go k =
    if k >= n then false
    else
      let w = t.words.(k) in
      let valid = valid_mask t.width k in
      (* A pair is 00 iff neither of its bits is set. *)
      let occupied = (w lor (w lsr 1)) land evens_mask land valid in
      if occupied <> evens_mask land valid then true else go (k + 1)
  in
  go 0

let is_full t = Array.for_all (fun w -> w = full_word) t.words

let is_concrete t =
  let n = Array.length t.words in
  let rec go k =
    if k >= n then true
    else
      let w = t.words.(k) in
      let valid = valid_mask t.width k in
      (* Concrete: every valid pair is 01 or 10, i.e. exactly one bit set. *)
      let lo = w land evens_mask and hi = (w lsr 1) land evens_mask in
      let both = lo land hi land valid and none = lnot (lo lor hi) land evens_mask land valid in
      if both <> 0 || none <> 0 then false else go (k + 1)
  in
  go 0

let check_width name a b =
  if a.width <> b.width then invalid_arg (name ^ ": width mismatch")

let inter a b =
  check_width "Tern.inter" a b;
  { width = a.width; words = Array.map2 ( land ) a.words b.words }

let join a b =
  check_width "Tern.join" a b;
  { width = a.width; words = Array.map2 ( lor ) a.words b.words }

(* Non-allocating emptiness test of [inter a b]: word-wise [land] with
   an early exit on the first word containing a 00 pair.  Equivalent to
   [not (overlaps a b)] without building the intermediate vector. *)
let disjoint a b =
  check_width "Tern.disjoint" a b;
  let n = Array.length a.words in
  let rec go k =
    if k >= n then false
    else
      let w = a.words.(k) land b.words.(k) in
      let valid = evens_mask land valid_mask a.width k in
      if (w lor (w lsr 1)) land valid <> valid then true else go (k + 1)
  in
  go 0

let hash t =
  (* FNV-style word mixer; pairs beyond [width] are canonically 11, so
     structurally equal vectors hash equally. *)
  let mix h w =
    let h = (h lxor w) * 0x100000001B3 in
    h lxor (h lsr 29)
  in
  Array.fold_left mix (mix 0x3B97A27C t.width) t.words

(* Word indices where the cube constrains at least one header bit,
   with the matching evens-mask slice — the "required bits" of the
   cube.  A candidate set whose bounding cube satisfies every required
   word overlaps the cube (up to z positions, which callers exclude);
   checking only these words rejects non-overlapping rules with a
   handful of word operations. *)
type prefilter = {
  pf_width : int;
  pf_idx : int array;  (* word indices carrying fixed bits *)
  pf_words : int array;  (* the cube's words at those indices *)
  pf_valid : int array;  (* evens_mask ∧ valid_mask at those indices *)
}

let prefilter t =
  let n = Array.length t.words in
  let idx = ref [] in
  for k = n - 1 downto 0 do
    let valid = valid_mask t.width k in
    if t.words.(k) land valid <> valid then idx := k :: !idx
  done;
  let idx = Array.of_list !idx in
  {
    pf_width = t.width;
    pf_idx = idx;
    pf_words = Array.map (fun k -> t.words.(k)) idx;
    pf_valid = Array.map (fun k -> evens_mask land valid_mask t.width k) idx;
  }

let prefilter_disjoint pf c =
  if pf.pf_width <> c.width then invalid_arg "Tern.prefilter_disjoint: width mismatch";
  let n = Array.length pf.pf_idx in
  let rec go i =
    if i >= n then false
    else
      let w = pf.pf_words.(i) land c.words.(pf.pf_idx.(i)) in
      let valid = pf.pf_valid.(i) in
      if (w lor (w lsr 1)) land valid <> valid then true else go (i + 1)
  in
  go 0

let subset a b =
  check_width "Tern.subset" a b;
  if is_empty a then true
  else
    let n = Array.length a.words in
    let rec go k =
      if k >= n then true
      else if a.words.(k) land b.words.(k) <> a.words.(k) then false
      else go (k + 1)
    in
    go 0

let overlaps a b = not (is_empty (inter a b))

let equal a b = a.width = b.width && a.words = b.words

let compare a b = Stdlib.compare (a.width, a.words) (b.width, b.words)

(* Trailing-zero count of a power of two by binary search — O(log
   word-size) branchless steps, no table. *)
let ctz_pow2 v =
  let n = ref 0 and v = ref v in
  if !v land 0xFFFFFFFF = 0 then begin
    n := !n + 32;
    v := !v lsr 32
  end;
  if !v land 0xFFFF = 0 then begin
    n := !n + 16;
    v := !v lsr 16
  end;
  if !v land 0xFF = 0 then begin
    n := !n + 8;
    v := !v lsr 8
  end;
  if !v land 0xF = 0 then begin
    n := !n + 4;
    v := !v lsr 4
  end;
  if !v land 0x3 = 0 then begin
    n := !n + 2;
    v := !v lsr 2
  end;
  if !v land 0x1 = 0 then incr n;
  !n

(* Iterate [f] over the positions of [t] holding a fixed (0/1) value,
   without scanning wildcard positions: enumerate set bits of the
   per-word "exactly one encoding bit" mask.  The valid mask is the
   full word except possibly for the last word, and bit positions come
   from a constant-time ctz rather than a shift loop. *)
let iter_fixed_bits t f =
  let n = Array.length t.words in
  for k = 0 to n - 1 do
    let w = t.words.(k) in
    let valid = if k = n - 1 then valid_mask t.width k else full_word in
    let lo = w land evens_mask and hi = (w lsr 1) land evens_mask in
    let fixed = ref ((lo lxor hi) land valid land evens_mask) in
    let base = k * bits_per_word in
    while !fixed <> 0 do
      let lowest = !fixed land - !fixed in
      fixed := !fixed lxor lowest;
      (* [lowest] is a single even bit 2*j. *)
      let pair = ctz_pow2 lowest lsr 1 in
      let i = base + pair in
      f i (decode ((w lsr (2 * pair)) land 3))
    done
  done

let complement t =
  if is_empty t then [ all_x t.width ]
  else begin
    let cubes = ref [] in
    iter_fixed_bits t (fun i b ->
        match b with
        | Zero -> cubes := set (all_x t.width) i One :: !cubes
        | One -> cubes := set (all_x t.width) i Zero :: !cubes
        | Any | Empty -> assert false);
    List.rev !cubes
  end

let diff a b =
  check_width "Tern.diff" a b;
  if not (overlaps a b) then (if is_empty a then [] else [ a ])
  else begin
    (* a \ b = union over constrained bits i of b of
       { h in a : h_i <> b_i }. *)
    let cubes = ref [] in
    iter_fixed_bits b (fun i bi ->
        let flipped = match bi with Zero -> One | One -> Zero | Any | Empty -> assert false in
        match get a i with
        | Any -> cubes := set a i flipped :: !cubes
        | v when v = flipped -> cubes := a :: !cubes
        | Zero | One | Empty -> ());
    List.rev !cubes
  end

let mem concrete t =
  if not (is_concrete concrete) then invalid_arg "Tern.mem: vector is not concrete";
  subset concrete t

(* Population count of a word whose set bits all sit at even positions
   (so every 2-bit group already equals its own popcount and the first
   SWAR halving step can be skipped; values never touch bit 62, keeping
   the constants inside a 63-bit int). *)
let popcount_evens v =
  let v = (v land 0x3333333333333333) + ((v lsr 2) land 0x3333333333333333) in
  let v = (v + (v lsr 4)) land 0x0F0F0F0F0F0F0F0F in
  let v = v + (v lsr 8) in
  let v = v + (v lsr 16) in
  let v = v + (v lsr 32) in
  v land 0x7F

let count_fixed t =
  let n = Array.length t.words in
  let count = ref 0 in
  for k = 0 to n - 1 do
    let w = t.words.(k) in
    let valid = if k = n - 1 then valid_mask t.width k else full_word in
    let lo = w land evens_mask and hi = (w lsr 1) land evens_mask in
    count := !count + popcount_evens ((lo lxor hi) land valid land evens_mask)
  done;
  !count

let random rng w ~fixed_prob =
  let t = ref (all_x w) in
  for i = 0 to w - 1 do
    if Support.Rng.bernoulli rng fixed_prob then
      t := set !t i (if Support.Rng.bool rng then One else Zero)
  done;
  !t

let random_concrete rng w =
  let t = ref (all_x w) in
  for i = 0 to w - 1 do
    t := set !t i (if Support.Rng.bool rng then One else Zero)
  done;
  !t

let of_string s =
  let w = String.length s in
  let t = ref (all_x w) in
  String.iteri
    (fun i c ->
      let b =
        match c with
        | '0' -> Zero
        | '1' -> One
        | 'x' | 'X' | '*' -> Any
        | 'z' | 'Z' -> Empty
        | _ -> invalid_arg "Tern.of_string: bad character"
      in
      t := set !t i b)
    s;
  !t

let to_string t =
  String.init t.width (fun i ->
      match get t i with Zero -> '0' | One -> '1' | Any -> 'x' | Empty -> 'z')

let pp fmt t = Format.pp_print_string fmt (to_string t)
