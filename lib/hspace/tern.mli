(** Ternary bit-vectors — the atomic objects of Header Space Analysis.

    A ternary vector of width [w] assigns each of the [w] header bits a
    value in [{0, 1, *}] and denotes the set of concrete bit-vectors
    obtained by expanding each [*].  A position may also become the
    empty set [z] as a result of intersecting [0] with [1]; a vector
    with any [z] position denotes the empty set.

    The representation packs 31 header bits per OCaml [int], two
    encoding bits per header bit (01 = 0, 10 = 1, 11 = *, 00 = z), so
    intersection is word-wise [land] and subset is a word-wise
    comparison.  Values are immutable. *)

type t

type bit = Zero | One | Any | Empty

(** [all_x width] is the full space: every bit is [*]. *)
val all_x : int -> t

(** [none width] is the empty vector: every bit is [z].  It is the
    identity of {!join} and is used as the bounding cube of an empty
    header space. *)
val none : int -> t

(** [width t] is the number of header bits. *)
val width : t -> int

(** [get t i] reads bit [i] (0-based). *)
val get : t -> int -> bit

(** [set t i b] returns a copy of [t] with bit [i] set to [b]. *)
val set : t -> int -> bit -> t

(** [is_empty t] is true when some position is [Empty], i.e. [t]
    denotes no concrete header. *)
val is_empty : t -> bool

(** [is_full t] is true when every position is [Any]. *)
val is_full : t -> bool

(** [is_concrete t] is true when every position is [Zero] or [One]. *)
val is_concrete : t -> bool

(** [inter a b] is the position-wise intersection.  The result may be
    empty. @raise Invalid_argument on width mismatch. *)
val inter : t -> t -> t

(** [subset a b] is true when every concrete header in [a] is in [b].
    Empty vectors are subsets of everything. *)
val subset : t -> t -> bool

(** [overlaps a b] is true when [inter a b] is non-empty. *)
val overlaps : t -> t -> bool

(** [disjoint a b] is [not (overlaps a b)] computed without allocating
    the intermediate vector, with an early exit on the first
    conflicting word — the hot-path form used by set bounding-cube
    checks and rule prefilters. *)
val disjoint : t -> t -> bool

(** [join a b] is the smallest cube containing both [a] and [b]
    (position-wise least upper bound; [z] is the bottom element).
    @raise Invalid_argument on width mismatch. *)
val join : t -> t -> t

(** [hash t] is a well-mixed structural hash: equal vectors hash
    equally.  Used for cube deduplication in the {!Hs} batch builder
    and for 64-bit reach-cache keys. *)
val hash : t -> int

(** A precomputed "required bits" view of a cube: only the words in
    which the cube fixes at least one bit, so disjointness against it
    is a handful of word operations.  [prefilter_disjoint pf c] is
    conservative: [true] guarantees [disjoint cube c]; [false] means
    the full algebra must decide (exact whenever [c] has no [z]
    positions). *)
type prefilter

val prefilter : t -> prefilter

val prefilter_disjoint : prefilter -> t -> bool

(** [equal a b] is structural equality (which coincides with set
    equality for non-empty vectors). *)
val equal : t -> t -> bool

(** [compare a b] is a total order compatible with [equal]. *)
val compare : t -> t -> int

(** [complement t] expresses the complement of [t] as a list of ternary
    vectors whose union is exactly the complement.  The complement of
    an empty vector is [\[all_x\]]; of the full space, [\[\]]. *)
val complement : t -> t list

(** [diff a b] expresses [a \ b] as a list of ternary vectors (possibly
    overlapping) whose union is exactly the set difference. *)
val diff : t -> t -> t list

(** [mem concrete t] is true when the concrete vector [concrete] (all
    bits 0/1) lies in [t]. @raise Invalid_argument if [concrete] is not
    concrete or widths differ. *)
val mem : t -> t -> bool

(** [count_fixed t] is the number of positions that are [Zero] or
    [One] — a size proxy used by benchmarks. *)
val count_fixed : t -> int

(** [random rng width ~fixed_prob] draws a random non-empty vector:
    each bit is fixed (to a fair 0/1) with probability [fixed_prob],
    otherwise [*]. *)
val random : Support.Rng.t -> int -> fixed_prob:float -> t

(** [random_concrete rng width] draws a uniform concrete vector. *)
val random_concrete : Support.Rng.t -> int -> t

(** [of_string s] parses a string of [0], [1], [x]/[*] and [z]
    characters, index 0 first. @raise Invalid_argument on others. *)
val of_string : string -> t

(** [to_string t] prints bit 0 first using [0], [1], [x], [z]. *)
val to_string : t -> string

val pp : Format.formatter -> t -> unit
