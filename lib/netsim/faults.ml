type t = {
  loss_prob : float;
  extra_delay : float;
  jitter : float;
  dup_prob : float;
}

let none = { loss_prob = 0.0; extra_delay = 0.0; jitter = 0.0; dup_prob = 0.0 }

let make ?(loss_prob = 0.0) ?(extra_delay = 0.0) ?(jitter = 0.0) ?(dup_prob = 0.0) () =
  if loss_prob < 0.0 || loss_prob > 1.0 then
    invalid_arg "Faults.make: loss_prob out of range";
  if dup_prob < 0.0 || dup_prob > 1.0 then
    invalid_arg "Faults.make: dup_prob out of range";
  if extra_delay < 0.0 then invalid_arg "Faults.make: negative extra_delay";
  if jitter < 0.0 then invalid_arg "Faults.make: negative jitter";
  { loss_prob; extra_delay; jitter; dup_prob }

let loss ?(extra_delay = 0.0) p = make ~loss_prob:p ~extra_delay ()

let is_none f =
  f.loss_prob = 0.0 && f.extra_delay = 0.0 && f.jitter = 0.0 && f.dup_prob = 0.0

(* Randomness is only consumed for the knobs that are actually set, so
   enabling a fault config does not perturb the stream of unrelated
   seeded draws more than necessary, and [none] consumes nothing. *)
let plan f rng =
  if is_none f then [ 0.0 ]
  else if f.loss_prob > 0.0 && Support.Rng.bernoulli rng f.loss_prob then []
  else begin
    let one () =
      f.extra_delay
      +. (if f.jitter > 0.0 then Support.Rng.float rng f.jitter else 0.0)
    in
    let first = one () in
    if f.dup_prob > 0.0 && Support.Rng.bernoulli rng f.dup_prob then
      [ first; one () ]
    else [ first ]
  end

let pp fmt f =
  Format.fprintf fmt "{loss=%.3f delay=%gs jitter=%gs dup=%.3f}" f.loss_prob
    f.extra_delay f.jitter f.dup_prob
