(** Channel fault model: loss, extra delay, jitter, duplication.

    One [t] describes the fault behaviour of a channel — a controller
    connection (both directions) or a data-plane link.  {!Net} draws
    from its seeded fault stream each time a message crosses a faulty
    channel, so runs are deterministic given the simulation seed.

    This is the substrate of the lossy-channel robustness work: the
    RVaaS protocol layers (service retransmission, client re-request,
    monitor poll-retry) are exercised against it, experiment E14
    sweeps its loss probability. *)

type t = {
  loss_prob : float;  (** drop each message independently *)
  extra_delay : float;  (** fixed additional one-way delay, seconds *)
  jitter : float;  (** uniform random extra delay in [0, jitter) *)
  dup_prob : float;  (** deliver a second, independently delayed copy *)
}

(** No faults: deliver exactly once with no extra delay. *)
val none : t

(** [make ()] builds a config; all knobs default to 0.
    @raise Invalid_argument on probabilities outside [0, 1] or negative
    delays. *)
val make :
  ?loss_prob:float -> ?extra_delay:float -> ?jitter:float -> ?dup_prob:float -> unit -> t

(** [loss p] is shorthand for [make ~loss_prob:p ()]. *)
val loss : ?extra_delay:float -> float -> t

(** [is_none f] — no fault is configured; the channel is ideal. *)
val is_none : t -> bool

(** [plan f rng] draws one message's fate: the list of extra one-way
    delays of the copies to deliver.  [[]] means the message is lost;
    [[d]] a single delivery delayed by [d]; [[d1; d2]] a duplicated
    delivery.  [plan none] consumes no randomness. *)
val plan : t -> Support.Rng.t -> float list

val pp : Format.formatter -> t -> unit
