type drop_reason = No_rule | Meter_limited | Loop_guard | Unwired_port

type stats = {
  mutable delivered : int;
  mutable dropped_no_rule : int;
  mutable dropped_meter : int;
  mutable dropped_loop : int;
  mutable dropped_unwired : int;
  mutable packet_ins : int;
  mutable flow_mods : int;
  mutable ctrl_faults_lost : int;
  mutable ctrl_faults_duplicated : int;
  mutable link_faults_lost : int;
  mutable link_faults_duplicated : int;
  mutable session_drops : int;
}

type conn = {
  name : string;
  delay : float;
  loss_prob : float;
  faults : Faults.t;
  mutable handler : Ofproto.Message.to_controller -> unit;
  mutable up : bool; (* session alive?  down = crash or partition *)
  mutable sessions : int; (* establishments: 1 + reconnect count *)
  (* Membership sets, not lists: a single controller attaches every
     switch of a generated world, and attach/send/monitor checks run
     per message. *)
  switches : (int, unit) Hashtbl.t;
  monitored : (int, unit) Hashtbl.t;
  mutable tx : int; (* controller -> switch messages sent *)
  mutable rx : int; (* switch -> controller messages delivered *)
  mutable lost : int;
}

type switch_state = {
  sw_id : int;
  flow_table : Ofproto.Flow_table.t;
  meter_table : Ofproto.Meter.t;
  ports : int list;
}

type t = {
  sim : Sim.t;
  topo : Topology.t;
  switch_states : (int, switch_state) Hashtbl.t;
  host_receivers : (int, Packet.t -> unit) Hashtbl.t;
  stats : stats;
  mutable conns : conn list;
  mutable drop_observers : (sw:int -> reason:drop_reason -> Packet.t -> unit) list;
  loss_rng : Support.Rng.t;
  link_faults : (Topology.endpoint, Faults.t) Hashtbl.t;
  mutable default_link_faults : Faults.t;
}

let sim t = t.sim

let topology t = t.topo

let stats t = t.stats

let switch_state t sw =
  match Hashtbl.find_opt t.switch_states sw with
  | Some s -> s
  | None -> raise Not_found

let table t ~sw = (switch_state t sw).flow_table

let meters t ~sw = (switch_state t sw).meter_table

let set_host_receiver t ~host f = Hashtbl.replace t.host_receivers host f

let on_drop t f = t.drop_observers <- f :: t.drop_observers

let record_drop t ~sw ~reason packet =
  (match reason with
  | No_rule -> t.stats.dropped_no_rule <- t.stats.dropped_no_rule + 1
  | Meter_limited -> t.stats.dropped_meter <- t.stats.dropped_meter + 1
  | Loop_guard -> t.stats.dropped_loop <- t.stats.dropped_loop + 1
  | Unwired_port -> t.stats.dropped_unwired <- t.stats.dropped_unwired + 1);
  List.iter (fun f -> f ~sw ~reason packet) t.drop_observers

(* Plan the copies of a controller-connection message under the
   connection's fault config; update the injected-fault counters. *)
let ctrl_copies t conn =
  let copies = Faults.plan conn.faults t.loss_rng in
  (match copies with
  | [] ->
    t.stats.ctrl_faults_lost <- t.stats.ctrl_faults_lost + 1;
    conn.lost <- conn.lost + 1
  | [ _ ] -> ()
  | _ :: extras ->
    t.stats.ctrl_faults_duplicated <- t.stats.ctrl_faults_duplicated + List.length extras);
  copies

(* Deliver a switch->controller message.  Two loss models compose:

   - [loss_prob] (legacy) applies only to fire-and-forget flow-monitor
     events — request/response exchanges are retried by any real
     controller stack and are modelled as reliable by default;
   - [faults] applies uniformly to {e every} message in both
     directions: the degraded-channel regime the retry layers of the
     protocol are built against. *)
let session_drop t conn =
  conn.lost <- conn.lost + 1;
  t.stats.session_drops <- t.stats.session_drops + 1

let to_controller t conn msg =
  let lossy = match msg with Ofproto.Message.Monitor _ -> true | _ -> false in
  if not conn.up then session_drop t conn
  else if lossy && conn.loss_prob > 0.0 && Support.Rng.bernoulli t.loss_rng conn.loss_prob
  then conn.lost <- conn.lost + 1
  else
    List.iter
      (fun extra ->
        Sim.schedule t.sim ~delay:(conn.delay +. extra) (fun () ->
            (* Checked again on delivery: messages in flight when the
               session drops are lost with it. *)
            if not conn.up then session_drop t conn
            else begin
              conn.rx <- conn.rx + 1;
              conn.handler msg
            end))
      (ctrl_copies t conn)

let monitoring_conns t sw =
  List.filter (fun c -> Hashtbl.mem c.monitored sw) t.conns

let attached_conns t sw =
  List.filter (fun c -> Hashtbl.mem c.switches sw) t.conns

(* Per-switch processing latency: lookup + action execution. *)
let switch_latency = 1e-6

let rec arrive_at_switch t sw in_port packet =
  let state = switch_state t sw in
  if packet.Packet.hops >= Packet.max_hops then record_drop t ~sw ~reason:Loop_guard packet
  else
    match Ofproto.Flow_table.lookup state.flow_table ~in_port packet.Packet.header with
    | None -> record_drop t ~sw ~reason:No_rule packet
    | Some entry ->
      let metered_out =
        match entry.Ofproto.Flow_entry.spec.meter with
        | None -> false
        | Some id ->
          not
            (Ofproto.Meter.allows state.meter_table ~id ~now:(Sim.now t.sim)
               ~bytes:packet.Packet.size_bytes)
      in
      if metered_out then record_drop t ~sw ~reason:Meter_limited packet
      else begin
        Ofproto.Flow_entry.account entry ~bytes:packet.Packet.size_bytes;
        let applied =
          Ofproto.Action.apply ~ports:state.ports ~in_port packet.Packet.header
            entry.Ofproto.Flow_entry.spec.actions
        in
        (match applied.Ofproto.Action.to_controller with
        | None -> ()
        | Some header ->
          t.stats.packet_ins <- t.stats.packet_ins + 1;
          let msg =
            Ofproto.Message.Packet_in
              {
                sw;
                in_port;
                reason = Ofproto.Message.Action_to_controller;
                header;
                payload = packet.Packet.payload;
              }
          in
          List.iter (fun conn -> to_controller t conn msg) (attached_conns t sw));
        List.iter
          (fun (out_port, header) -> transmit t sw out_port (Packet.hop packet ~header))
          applied.Ofproto.Action.outputs
      end

and link_copies t here =
  let faults =
    match Hashtbl.find_opt t.link_faults here with
    | Some f -> f
    | None -> t.default_link_faults
  in
  let copies = Faults.plan faults t.loss_rng in
  (match copies with
  | [] -> t.stats.link_faults_lost <- t.stats.link_faults_lost + 1
  | [ _ ] -> ()
  | _ :: extras ->
    t.stats.link_faults_duplicated <- t.stats.link_faults_duplicated + List.length extras);
  copies

and transmit t sw out_port packet =
  let here = Topology.{ node = Switch sw; port = out_port } in
  match Topology.peer t.topo here, Topology.link_delay t.topo here with
  | Some far, Some delay ->
    List.iter
      (fun extra ->
        Sim.schedule t.sim
          ~delay:(delay +. switch_latency +. extra)
          (fun () ->
            match far.Topology.node with
            | Topology.Switch next_sw ->
              arrive_at_switch t next_sw far.Topology.port packet
            | Topology.Host host -> deliver_to_host t host packet))
      (link_copies t here)
  | _ -> record_drop t ~sw ~reason:Unwired_port packet

and deliver_to_host t host packet =
  t.stats.delivered <- t.stats.delivered + 1;
  match Hashtbl.find_opt t.host_receivers host with
  | Some f -> f packet
  | None -> ()

let host_send t ~host packet =
  match Topology.host_attachment t.topo host with
  | None -> invalid_arg "Net.host_send: host is not attached to a switch"
  | Some attachment ->
    let here = Topology.{ node = Host host; port = 0 } in
    let delay = Option.value ~default:0.0 (Topology.link_delay t.topo here) in
    (match attachment.Topology.node with
    | Topology.Switch sw ->
      List.iter
        (fun extra ->
          Sim.schedule t.sim ~delay:(delay +. extra) (fun () ->
              arrive_at_switch t sw attachment.Topology.port packet))
        (link_copies t here)
    | Topology.Host _ -> invalid_arg "Net.host_send: host wired to a host")

(* Schedule hard-timeout expiry sweeps when flows with timeouts are
   installed. *)
let schedule_expiry t sw (spec : Ofproto.Flow_entry.spec) =
  match spec.hard_timeout with
  | None -> ()
  | Some timeout ->
    Sim.schedule t.sim ~delay:(timeout +. 1e-9) (fun () ->
        let state = switch_state t sw in
        let expired = Ofproto.Flow_table.expire state.flow_table ~now:(Sim.now t.sim) in
        List.iter
          (fun spec ->
            let msg = Ofproto.Message.Flow_removed { sw; spec; reason = `Hard_timeout } in
            List.iter (fun conn -> to_controller t conn msg) (attached_conns t sw))
          expired)

let apply_to_switch t conn sw (msg : Ofproto.Message.to_switch) =
  let state = switch_state t sw in
  match msg with
  | Ofproto.Message.Flow_mod fm ->
    t.stats.flow_mods <- t.stats.flow_mods + 1;
    (match fm with
    | Ofproto.Message.Add_flow spec ->
      Ofproto.Flow_table.add state.flow_table spec ~now:(Sim.now t.sim);
      schedule_expiry t sw spec
    | Ofproto.Message.Delete_flow { match_; priority } ->
      ignore (Ofproto.Flow_table.delete state.flow_table ~match_ ?priority ())
    | Ofproto.Message.Delete_by_cookie cookie ->
      ignore (Ofproto.Flow_table.delete_by_cookie state.flow_table cookie))
  | Ofproto.Message.Meter_mod { id; band } ->
    (match band with
    | Some b -> Ofproto.Meter.set state.meter_table ~id b
    | None -> ignore (Ofproto.Meter.remove state.meter_table ~id))
  | Ofproto.Message.Packet_out { port; header; payload } ->
    let packet = Packet.make ~header payload in
    transmit t sw port packet
  | Ofproto.Message.Flow_stats_request { xid } ->
    let flows = Ofproto.Flow_table.specs state.flow_table in
    to_controller t conn (Ofproto.Message.Flow_stats_reply { sw; xid; flows })
  | Ofproto.Message.Meter_stats_request { xid } ->
    let meter_list = Ofproto.Meter.to_list state.meter_table in
    to_controller t conn (Ofproto.Message.Meter_stats_reply { sw; xid; meters = meter_list })
  | Ofproto.Message.Echo_request { xid } ->
    to_controller t conn (Ofproto.Message.Echo_reply { sw; xid })
  | Ofproto.Message.Barrier_request { xid } ->
    to_controller t conn (Ofproto.Message.Barrier_reply { sw; xid })

let register_controller t ~name ~delay ?(loss_prob = 0.0) ?(faults = Faults.none) () =
  if loss_prob < 0.0 || loss_prob > 1.0 then
    invalid_arg "Net.register_controller: loss_prob out of range";
  let conn =
    {
      name;
      delay;
      loss_prob;
      faults;
      handler = (fun _ -> ());
      up = true;
      sessions = 1;
      switches = Hashtbl.create 64;
      monitored = Hashtbl.create 64;
      tx = 0;
      rx = 0;
      lost = 0;
    }
  in
  t.conns <- conn :: t.conns;
  conn

let set_handler conn f = conn.handler <- f

let attach t conn ~sw ~monitor =
  ignore (switch_state t sw);
  Hashtbl.replace conn.switches sw ();
  if monitor then Hashtbl.replace conn.monitored sw ()

let attached _t conn =
  List.sort compare (Hashtbl.fold (fun sw () acc -> sw :: acc) conn.switches [])

let send t conn ~sw msg =
  if not (Hashtbl.mem conn.switches sw) then
    invalid_arg "Net.send: connection not attached to switch";
  conn.tx <- conn.tx + 1;
  if not conn.up then session_drop t conn
  else
    List.iter
      (fun extra ->
        Sim.schedule t.sim ~delay:(conn.delay +. extra) (fun () ->
            if not conn.up then session_drop t conn
            else apply_to_switch t conn sw msg))
      (ctrl_copies t conn)

(* Session teardown/re-establishment.  [disconnect] models a controller
   crash or control-channel partition: the session stays registered (so
   counters and attachment lists survive) but every message in either
   direction — including those already in flight — is dropped until
   [reconnect].  Switch state is untouched: flow tables keep forwarding
   (OpenFlow fail-standalone mode), which is exactly why a recovering
   controller must resynchronise from its journal rather than assume a
   blank network. *)
let disconnect _t conn = conn.up <- false

let reconnect _t conn =
  if not conn.up then begin
    conn.up <- true;
    conn.sessions <- conn.sessions + 1
  end

let conn_up conn = conn.up

let conn_sessions conn = conn.sessions

let set_link_faults t endpoint faults = Hashtbl.replace t.link_faults endpoint faults

(* A per-endpoint entry overrides [default_link_faults] entirely, so
   restoring a flapped link must remove the entry rather than set it
   to [Faults.none]. *)
let clear_link_faults t endpoint = Hashtbl.remove t.link_faults endpoint

let set_default_link_faults t faults = t.default_link_faults <- faults

let conn_faults conn = conn.faults

let conn_name conn = conn.name

let conn_tx conn = conn.tx

let conn_rx conn = conn.rx

let conn_lost conn = conn.lost

let create ~seed topo =
  let sim = Sim.create ~seed ()
  and switch_states = Hashtbl.create 32 in
  let t =
    {
      sim;
      topo;
      switch_states;
      host_receivers = Hashtbl.create 32;
      stats =
        {
          delivered = 0;
          dropped_no_rule = 0;
          dropped_meter = 0;
          dropped_loop = 0;
          dropped_unwired = 0;
          packet_ins = 0;
          flow_mods = 0;
          ctrl_faults_lost = 0;
          ctrl_faults_duplicated = 0;
          link_faults_lost = 0;
          link_faults_duplicated = 0;
          session_drops = 0;
        };
      conns = [];
      drop_observers = [];
      loss_rng = Support.Rng.create (seed lxor 0x10557);
      link_faults = Hashtbl.create 16;
      default_link_faults = Faults.none;
    }
  in
  List.iter
    (fun sw_id ->
      let flow_table = Ofproto.Flow_table.create ()
      and meter_table = Ofproto.Meter.create () in
      let state = { sw_id; flow_table; meter_table; ports = Topology.switch_ports topo sw_id } in
      (* Flow-monitor events: every table mutation notifies monitoring
         connections, as the OpenFlow add-flow-monitor facility does. *)
      Ofproto.Flow_table.on_change flow_table (fun change ->
          let event =
            match change with
            | Ofproto.Flow_table.Added spec -> Ofproto.Message.Flow_added spec
            | Ofproto.Flow_table.Removed (spec, _) -> Ofproto.Message.Flow_deleted spec
            | Ofproto.Flow_table.Modified spec -> Ofproto.Message.Flow_modified spec
          in
          let msg = Ofproto.Message.Monitor { sw = state.sw_id; event } in
          List.iter (fun conn -> to_controller t conn msg) (monitoring_conns t state.sw_id));
      Hashtbl.replace switch_states sw_id state)
    (Topology.switches topo);
  t
