(** Network runtime: executes OpenFlow flow tables over a topology.

    [Net] wires a {!Topology} to live switch state ({!Ofproto.Flow_table},
    {!Ofproto.Meter}) inside a {!Sim} event loop, and provides
    controller connections modelled after encrypted OpenFlow sessions:
    per-connection latency, optional message loss on the switch→
    controller direction (to study missed monitor events, paper
    §IV-A.1), flow-monitor subscription, Packet-In delivery, Packet-Out
    and Flow-Mod injection, and flow/meter stats polling.

    Switch semantics follow OpenFlow 1.3: highest-priority match wins;
    a packet matching no entry is dropped (installing a priority-0
    table-miss entry restores reactive behaviour); [To_controller]
    actions produce Packet-Ins; hard timeouts expire entries. *)

type t

(** A controller connection (authenticated channel to some switches). *)
type conn

type drop_reason = No_rule | Meter_limited | Loop_guard | Unwired_port

type stats = {
  mutable delivered : int;  (** packets handed to host receivers *)
  mutable dropped_no_rule : int;
  mutable dropped_meter : int;
  mutable dropped_loop : int;
  mutable dropped_unwired : int;
  mutable packet_ins : int;
  mutable flow_mods : int;
  mutable ctrl_faults_lost : int;
      (** controller-connection messages dropped by injected faults *)
  mutable ctrl_faults_duplicated : int;
      (** extra controller-connection copies delivered by injected faults *)
  mutable link_faults_lost : int;
      (** data-plane packets dropped by injected link faults *)
  mutable link_faults_duplicated : int;
      (** extra data-plane copies delivered by injected link faults *)
  mutable session_drops : int;
      (** messages dropped because a controller session was down *)
}

(** [create ~seed topo] builds the runtime.  The topology must not be
    modified afterwards. *)
val create : seed:int -> Topology.t -> t

val sim : t -> Sim.t

val topology : t -> Topology.t

val stats : t -> stats

(** [table t ~sw] is switch [sw]'s live flow table.
    @raise Not_found for unknown switches. *)
val table : t -> sw:int -> Ofproto.Flow_table.t

(** [meters t ~sw] is switch [sw]'s live meter table. *)
val meters : t -> sw:int -> Ofproto.Meter.t

(** [set_host_receiver t ~host f] registers the host's receive
    callback. *)
val set_host_receiver : t -> host:int -> (Packet.t -> unit) -> unit

(** [host_send t ~host packet] injects [packet] from the host's network
    card at the current simulation time. *)
val host_send : t -> host:int -> Packet.t -> unit

(** [on_drop t f] registers a drop observer (for tests and debugging). *)
val on_drop : t -> (sw:int -> reason:drop_reason -> Packet.t -> unit) -> unit

(** {1 Controller connections} *)

(** [register_controller t ~name ~delay ?loss_prob ?faults ()] creates
    a controller connection.  [delay] is the one-way control-channel
    latency; [loss_prob] (default 0) drops each switch→controller
    {e flow-monitor event} independently (request/response exchanges
    are modelled as reliable — a real controller retries them).
    [faults] (default {!Faults.none}) applies uniformly to {e every}
    message on the connection, in both directions: Packet-Ins, stats
    replies, Flow-Mods, Packet-Outs, … — the degraded channel the
    protocol retry layers are tested against. *)
val register_controller :
  t -> name:string -> delay:float -> ?loss_prob:float -> ?faults:Faults.t -> unit -> conn

(** [set_handler conn f] sets the message handler (replacing any
    previous one). *)
val set_handler : conn -> (Ofproto.Message.to_controller -> unit) -> unit

(** [attach t conn ~sw ~monitor] connects [conn] to switch [sw];
    [monitor] subscribes it to flow-monitor events. *)
val attach : t -> conn -> sw:int -> monitor:bool -> unit

(** [attached t conn] lists switches this connection controls. *)
val attached : t -> conn -> int list

(** [send t conn ~sw msg] transmits a controller→switch message; it is
    applied after the connection delay.  @raise Invalid_argument when
    [conn] is not attached to [sw]. *)
val send : t -> conn -> sw:int -> Ofproto.Message.to_switch -> unit

(** [conn_name conn] / [conn_tx conn] / [conn_rx conn]: identification
    and message counters (rx counts messages actually delivered, after
    loss). *)
val conn_name : conn -> string

val conn_tx : conn -> int

val conn_rx : conn -> int

(** [conn_lost conn] counts messages dropped on this connection —
    flow-monitor events hit by the legacy [loss_prob] plus any message
    dropped by the connection's fault config. *)
val conn_lost : conn -> int

(** [conn_faults conn] is the connection's fault config. *)
val conn_faults : conn -> Faults.t

(** {1 Session teardown and re-establishment}

    Crash-recovery primitives (paper stance: verification must outlive
    the provider it audits).  A disconnected session silently drops
    every message in both directions — including those already in
    flight — while switch state keeps forwarding untouched (OpenFlow
    fail-standalone mode).  Attachment lists and counters survive, so
    a recovering controller re-attaches by calling {!reconnect} and
    resynchronising state itself. *)

(** [disconnect t conn] tears the session down: models a controller
    crash or control-channel partition. *)
val disconnect : t -> conn -> unit

(** [reconnect t conn] re-establishes a torn-down session (idempotent;
    bumps the session count). *)
val reconnect : t -> conn -> unit

(** [conn_up conn] is [true] while the session is established. *)
val conn_up : conn -> bool

(** [conn_sessions conn] counts session establishments (1 + successful
    reconnects) — lets tests and the failover report distinguish a
    resumed session from the original. *)
val conn_sessions : conn -> int

(** {1 Injected faults}

    See {!Faults}.  Per-connection faults are fixed at
    {!register_controller} time; data-plane link faults can be set (and
    changed) at any point. *)

(** [set_link_faults t endpoint faults] applies [faults] to packets
    transmitted {e from} [endpoint] (a switch egress
    [{node = Switch sw; port}] or a host NIC [{node = Host h; port = 0}]),
    overriding the default. *)
val set_link_faults : t -> Topology.endpoint -> Faults.t -> unit

(** [clear_link_faults t endpoint] removes the per-endpoint override,
    restoring the default fault config for that endpoint (a
    per-endpoint entry shadows the default entirely, so flap-restore
    must delete it rather than set {!Faults.none}). *)
val clear_link_faults : t -> Topology.endpoint -> unit

(** [set_default_link_faults t faults] applies [faults] to every
    data-plane hop without a per-endpoint override. *)
val set_default_link_faults : t -> Faults.t -> unit
