type t = {
  queue : (unit -> unit) Support.Pqueue.t;
  mutable clock : float;
  mutable executed : int;
  rng : Support.Rng.t;
}

let create ~seed () =
  { queue = Support.Pqueue.create (); clock = 0.0; executed = 0; rng = Support.Rng.create seed }

let now t = t.clock

let rng t = t.rng

let schedule t ~delay f =
  if delay < 0.0 then invalid_arg "Sim.schedule: negative delay";
  Support.Pqueue.push t.queue (t.clock +. delay) f

let schedule_at t ~time f =
  Support.Pqueue.push t.queue (Float.max time t.clock) f

let step t =
  match Support.Pqueue.pop t.queue with
  | None -> false
  | Some (time, f) ->
    t.clock <- Float.max t.clock time;
    t.executed <- t.executed + 1;
    f ();
    true

let run ?until t =
  let count = ref 0 in
  let continue = ref true in
  while !continue do
    match Support.Pqueue.peek t.queue with
    | None -> continue := false
    | Some (time, _) ->
      (match until with
      | Some limit when time > limit -> continue := false
      | Some _ | None ->
        ignore (step t);
        incr count)
  done;
  (match until with Some limit when limit > t.clock -> t.clock <- limit | _ -> ());
  !count

(* Periodic driver for heartbeats / watchdogs: [f] returns [true] to
   keep ticking.  First tick after one [period]. *)
let every ?until t ~period f =
  if period <= 0.0 then invalid_arg "Sim.every: period must be > 0";
  let rec tick () =
    let expired = match until with Some limit -> t.clock > limit | None -> false in
    if (not expired) && f () then schedule t ~delay:period tick
  in
  schedule t ~delay:period tick

let pending t = Support.Pqueue.length t.queue

let executed t = t.executed
