(** Discrete-event simulation engine.

    Events are closures ordered by (time, insertion order); execution
    is single-threaded and deterministic given the seed.  Time is in
    seconds. *)

type t

(** [create ~seed ()] returns a simulator at time 0. *)
val create : seed:int -> unit -> t

(** [now t] is the current simulation time. *)
val now : t -> float

(** [rng t] is the simulator's root random stream. *)
val rng : t -> Support.Rng.t

(** [schedule t ~delay f] runs [f] at [now t +. delay].
    @raise Invalid_argument when [delay < 0]. *)
val schedule : t -> delay:float -> (unit -> unit) -> unit

(** [schedule_at t ~time f] runs [f] at absolute [time] (clamped to
    [now] if in the past). *)
val schedule_at : t -> time:float -> (unit -> unit) -> unit

(** [run ?until t] executes events in order until the queue is empty or
    the next event is later than [until].  Returns the number of events
    executed. *)
val run : ?until:float -> t -> int

(** [every ?until t ~period f] runs [f] every [period] seconds (first
    tick one period from now) for as long as [f] returns [true] and
    [now] has not passed [until].  The periodic driver behind session
    heartbeats and failover watchdogs.
    @raise Invalid_argument when [period <= 0]. *)
val every : ?until:float -> t -> period:float -> (unit -> bool) -> unit

(** [step t] executes the next event; false when the queue is empty. *)
val step : t -> bool

(** [pending t] is the number of queued events. *)
val pending : t -> int

(** [executed t] is the number of events executed so far. *)
val executed : t -> int
