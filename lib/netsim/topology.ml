type node = Switch of int | Host of int

type endpoint = { node : node; port : int }

type link = { a : endpoint; b : endpoint; delay : float }

(* Per-switch adjacency, maintained incrementally by [connect] so that
   reads are O(result) instead of a fold over the whole wiring table —
   the difference between seconds and hours on the internet-scale
   worlds Topogen now produces (thousands of switches, each queried
   many times per BFS).  Sorted views are memoised and invalidated on
   insertion. *)
type adj = {
  mutable ports : int list; (* wired ports, descending insertion *)
  mutable adj_hosts : (int * int) list; (* (host, switch port) *)
  mutable neighbors : (int * int * int) list; (* (port, remote sw, remote port) *)
  mutable ports_sorted : int list option;
  mutable hosts_sorted : (int * int) list option;
  mutable neighbors_sorted : (int * int * int) list option;
}

type t = {
  switch_set : (int, unit) Hashtbl.t;
  host_set : (int, unit) Hashtbl.t;
  mutable switch_ids : int list; (* descending insertion; sorted memo below *)
  mutable host_ids : int list;
  mutable switches_sorted : int list option;
  mutable hosts_sorted : int list option;
  mutable link_list : link list; (* reverse insertion order *)
  wiring : (endpoint, endpoint * float) Hashtbl.t;
  adjacency : (int, adj) Hashtbl.t; (* switch id -> adjacency *)
  attachments : (int, endpoint list) Hashtbl.t; (* host -> switch endpoints *)
}

let create () =
  {
    switch_set = Hashtbl.create 64;
    host_set = Hashtbl.create 64;
    switch_ids = [];
    host_ids = [];
    switches_sorted = None;
    hosts_sorted = None;
    link_list = [];
    wiring = Hashtbl.create 64;
    adjacency = Hashtbl.create 64;
    attachments = Hashtbl.create 64;
  }

let fresh_adj () =
  {
    ports = [];
    adj_hosts = [];
    neighbors = [];
    ports_sorted = None;
    hosts_sorted = None;
    neighbors_sorted = None;
  }

let adj t sw =
  match Hashtbl.find_opt t.adjacency sw with
  | Some a -> a
  | None ->
    let a = fresh_adj () in
    Hashtbl.replace t.adjacency sw a;
    a

let add_switch t id =
  if Hashtbl.mem t.switch_set id then invalid_arg "Topology.add_switch: duplicate id";
  Hashtbl.replace t.switch_set id ();
  t.switch_ids <- id :: t.switch_ids;
  t.switches_sorted <- None

let add_host t id =
  if Hashtbl.mem t.host_set id then invalid_arg "Topology.add_host: duplicate id";
  Hashtbl.replace t.host_set id ();
  t.host_ids <- id :: t.host_ids;
  t.hosts_sorted <- None

let declared t = function
  | Switch id -> Hashtbl.mem t.switch_set id
  | Host id -> Hashtbl.mem t.host_set id

let note_endpoint t e far =
  match e.node with
  | Switch sw ->
    let a = adj t sw in
    a.ports <- e.port :: a.ports;
    a.ports_sorted <- None;
    (match far.node with
    | Host h ->
      a.adj_hosts <- (h, e.port) :: a.adj_hosts;
      a.hosts_sorted <- None
    | Switch remote ->
      a.neighbors <- (e.port, remote, far.port) :: a.neighbors;
      a.neighbors_sorted <- None)
  | Host h -> (
    match far.node with
    | Switch _ ->
      let prev = Option.value ~default:[] (Hashtbl.find_opt t.attachments h) in
      Hashtbl.replace t.attachments h (far :: prev)
    | Host _ -> ())

let connect t a b ~delay =
  if not (declared t a.node) then invalid_arg "Topology.connect: undeclared node";
  if not (declared t b.node) then invalid_arg "Topology.connect: undeclared node";
  if Hashtbl.mem t.wiring a || Hashtbl.mem t.wiring b then
    invalid_arg "Topology.connect: endpoint already wired";
  if delay < 0.0 then invalid_arg "Topology.connect: negative delay";
  Hashtbl.replace t.wiring a (b, delay);
  Hashtbl.replace t.wiring b (a, delay);
  note_endpoint t a b;
  note_endpoint t b a;
  t.link_list <- { a; b; delay } :: t.link_list

let peer t e = Option.map fst (Hashtbl.find_opt t.wiring e)

let link_delay t e = Option.map snd (Hashtbl.find_opt t.wiring e)

let switches t =
  match t.switches_sorted with
  | Some s -> s
  | None ->
    let s = List.sort compare t.switch_ids in
    t.switches_sorted <- Some s;
    s

let hosts t =
  match t.hosts_sorted with
  | Some s -> s
  | None ->
    let s = List.sort compare t.host_ids in
    t.hosts_sorted <- Some s;
    s

let links t = List.rev t.link_list

let switch_ports t sw =
  match Hashtbl.find_opt t.adjacency sw with
  | None -> []
  | Some a -> (
    match a.ports_sorted with
    | Some s -> s
    | None ->
      let s = List.sort compare a.ports in
      a.ports_sorted <- Some s;
      s)

let host_attachment t host =
  match Hashtbl.find_opt t.attachments host with
  | Some [ e ] -> Some e
  | Some _ | None -> None

let hosts_on_switch t sw =
  match Hashtbl.find_opt t.adjacency sw with
  | None -> []
  | Some a -> (
    match a.hosts_sorted with
    | Some s -> s
    | None ->
      let s = List.sort compare a.adj_hosts in
      a.hosts_sorted <- Some s;
      s)

let neighbor_switches t sw =
  match Hashtbl.find_opt t.adjacency sw with
  | None -> []
  | Some a -> (
    match a.neighbors_sorted with
    | Some s -> s
    | None ->
      let s = List.sort compare a.neighbors in
      a.neighbors_sorted <- Some s;
      s)

let shortest_paths t ~from_sw =
  let dist = Hashtbl.create 32 and via = Hashtbl.create 32 in
  Hashtbl.replace dist from_sw 0;
  let queue = Queue.create () in
  Queue.add from_sw queue;
  while not (Queue.is_empty queue) do
    let sw = Queue.pop queue in
    let d = Hashtbl.find dist sw in
    List.iter
      (fun (out_port, remote, _remote_port) ->
        if not (Hashtbl.mem dist remote) then begin
          Hashtbl.replace dist remote (d + 1);
          Hashtbl.replace via remote (out_port, sw);
          Queue.add remote queue
        end)
      (neighbor_switches t sw)
  done;
  (dist, via)

(* One BFS from the destination yields every switch's next hop towards
   it: when [v] (already reached) expands edge (port_v, u, port_u), the
   unvisited [u] routes to [dst_sw] through its own [port_u].  O(V+E)
   for the whole table, vs. [next_hop_port]'s BFS per (source, dst)
   pair — the provider's rule computation over thousands of switches
   depends on this. *)
let routes_to t ~dst_sw =
  let next = Hashtbl.create 64 in
  let seen = Hashtbl.create 64 in
  Hashtbl.replace seen dst_sw ();
  let queue = Queue.create () in
  Queue.add dst_sw queue;
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    List.iter
      (fun (_port_v, u, port_u) ->
        if not (Hashtbl.mem seen u) then begin
          Hashtbl.replace seen u ();
          Hashtbl.replace next u port_u;
          Queue.add u queue
        end)
      (neighbor_switches t v)
  done;
  next

let next_hop_port t ~from_sw ~to_sw =
  if from_sw = to_sw then None
  else
    let _dist, via = shortest_paths t ~from_sw in
    (* Walk back from to_sw to from_sw, remembering the first hop. *)
    let rec back sw =
      match Hashtbl.find_opt via sw with
      | None -> None
      | Some (port, prev) -> if prev = from_sw then Some port else back prev
    in
    back to_sw

let shortest_switch_path t ~from_sw ~to_sw =
  if from_sw = to_sw then Some [ from_sw ]
  else
    let _dist, via = shortest_paths t ~from_sw in
    let rec back sw acc =
      if sw = from_sw then Some (from_sw :: acc)
      else
        match Hashtbl.find_opt via sw with
        | None -> None
        | Some (_port, prev) -> back prev (sw :: acc)
    in
    back to_sw []

let shortest_switch_path_avoiding t ~from_sw ~to_sw ~avoid =
  if from_sw = to_sw then Some [ from_sw ]
  else begin
    let blocked sw = sw <> from_sw && sw <> to_sw && List.mem sw avoid in
    let via = Hashtbl.create 32 in
    let visited = Hashtbl.create 32 in
    Hashtbl.replace visited from_sw ();
    let queue = Queue.create () in
    Queue.add from_sw queue;
    while not (Queue.is_empty queue) do
      let sw = Queue.pop queue in
      List.iter
        (fun (_port, remote, _) ->
          if not (Hashtbl.mem visited remote) && not (blocked remote) then begin
            Hashtbl.replace visited remote ();
            Hashtbl.replace via remote sw;
            Queue.add remote queue
          end)
        (neighbor_switches t sw)
    done;
    let rec back sw acc =
      if sw = from_sw then Some (from_sw :: acc)
      else
        match Hashtbl.find_opt via sw with
        | None -> None
        | Some prev -> back prev (sw :: acc)
    in
    back to_sw []
  end

let port_towards t ~sw ~neighbor =
  List.find_map
    (fun (port, remote, _) -> if remote = neighbor then Some port else None)
    (neighbor_switches t sw)

let pp_node fmt = function
  | Switch id -> Format.fprintf fmt "s%d" id
  | Host id -> Format.fprintf fmt "h%d" id

let pp_endpoint fmt e = Format.fprintf fmt "%a:%d" pp_node e.node e.port
