(** Network topology: the trusted wiring plan.

    The paper's threat model assumes "internal network ports are known,
    and follow a well-defined wiring plan" — this module is that plan.
    It is shared (read-only) by the data-plane simulator and by the
    RVaaS verifier, which is exactly the trust assumption the paper
    makes. *)

type node = Switch of int | Host of int

type endpoint = { node : node; port : int }

type link = { a : endpoint; b : endpoint; delay : float }

type t

val create : unit -> t

(** [add_switch t id] declares a switch. @raise Invalid_argument on
    duplicate ids. *)
val add_switch : t -> int -> unit

(** [add_host t id] declares a host. @raise Invalid_argument on
    duplicate ids. *)
val add_host : t -> int -> unit

(** [connect t a b ~delay] wires two endpoints with a bidirectional
    link.  @raise Invalid_argument if either endpoint is already wired
    or its node undeclared. *)
val connect : t -> endpoint -> endpoint -> delay:float -> unit

(** [peer t e] is the endpoint at the far side of [e]'s link. *)
val peer : t -> endpoint -> endpoint option

(** [link_delay t e] is the delay of the link at [e]. *)
val link_delay : t -> endpoint -> float option

(** [switches t] lists declared switch ids, ascending. *)
val switches : t -> int list

(** [hosts t] lists declared host ids, ascending. *)
val hosts : t -> int list

(** [links t] lists links in insertion order. *)
val links : t -> link list

(** [switch_ports t sw] lists the wired ports of switch [sw],
    ascending. *)
val switch_ports : t -> int -> int list

(** [host_attachment t host] is the switch-side endpoint the host is
    wired to, when the host has exactly one link to a switch. *)
val host_attachment : t -> int -> endpoint option

(** [hosts_on_switch t sw] lists (host, switch port) pairs attached to
    switch [sw]. *)
val hosts_on_switch : t -> int -> (int * int) list

(** [neighbor_switches t sw] lists (local port, remote switch, remote
    port) for switch-to-switch links of [sw]. *)
val neighbor_switches : t -> int -> (int * int * int) list

(** [shortest_paths t ~from_sw] computes BFS hop distance and a
    predecessor map over the switch-to-switch graph; returns
    [(distance, via)] maps keyed by switch id, where [via sw] is the
    (port out of predecessor, predecessor) used to reach [sw]. *)
val shortest_paths : t -> from_sw:int -> (int, int) Hashtbl.t * (int, int * int) Hashtbl.t

(** [next_hop_port t ~from_sw ~to_sw] is the egress port of [from_sw]
    on some shortest path towards [to_sw] (None when unreachable or
    equal). *)
val next_hop_port : t -> from_sw:int -> to_sw:int -> int option

(** [routes_to t ~dst_sw] is every switch's next-hop egress port
    towards [dst_sw] on some shortest path, computed with a single
    BFS from the destination.  [dst_sw] itself and unreachable
    switches are absent from the table.  Agrees with
    {!next_hop_port} up to shortest-path tie-breaking. *)
val routes_to : t -> dst_sw:int -> (int, int) Hashtbl.t

(** [shortest_switch_path t ~from_sw ~to_sw] is the switch sequence of
    some shortest path, inclusive of both ends ([\[from_sw\]] when
    equal); [None] when unreachable. *)
val shortest_switch_path : t -> from_sw:int -> to_sw:int -> int list option

(** [shortest_switch_path_avoiding t ~from_sw ~to_sw ~avoid] is like
    {!shortest_switch_path} but never enters a switch in [avoid]
    (endpoints are exempt). *)
val shortest_switch_path_avoiding :
  t -> from_sw:int -> to_sw:int -> avoid:int list -> int list option

(** [port_towards t ~sw ~neighbor] is an egress port of [sw] wired
    directly to [neighbor]. *)
val port_towards : t -> sw:int -> neighbor:int -> int option

val pp_node : Format.formatter -> node -> unit

val pp_endpoint : Format.formatter -> endpoint -> unit
