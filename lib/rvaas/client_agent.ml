type outcome = {
  answer : Query.answer;
  issued_at : float;
  answered_at : float;
  signature_ok : bool;
}

type t = {
  net : Netsim.Net.t;
  host : int;
  client : int;
  ip : int;
  key : Cryptosim.Hmac.key;
  service_public : Cryptosim.Keys.public;
  resend_timeout : float option;
  rng : Support.Rng.t;
  issued : (string, float) Hashtbl.t; (* nonce -> time *)
  mutable done_ : outcome list; (* newest first *)
  mutable answer_callback : outcome -> unit;
  mutable auth_answered : int;
  mutable resends : int;
  mutable muted : bool;
}

let now t = Netsim.Sim.now (Netsim.Net.sim t.net)

let handle_auth_request t payload =
  if not t.muted then
    match Codec.decode_auth_request payload ~service_public:t.service_public with
    | Error _ -> ()
    | Ok challenge ->
      t.auth_answered <- t.auth_answered + 1;
      let reply =
        Codec.encode_auth_reply ~client:t.client ~challenge ~key:t.key
      in
      let header =
        Hspace.Header.udp ~src_ip:t.ip ~dst_ip:Wire.service_ip ~src_port:0
          ~dst_port:Wire.auth_reply_port
      in
      Netsim.Net.host_send t.net ~host:t.host (Netsim.Packet.make ~header reply)

let handle_answer t payload =
  match Codec.decode_answer payload ~service_public:t.service_public with
  | Error _ -> ()
  | Ok answer -> (
    match Hashtbl.find_opt t.issued answer.Query.nonce with
    | None -> ()
    | Some issued_at ->
      Hashtbl.remove t.issued answer.Query.nonce;
      let outcome = { answer; issued_at; answered_at = now t; signature_ok = true } in
      t.done_ <- outcome :: t.done_;
      t.answer_callback outcome)

let receive t (packet : Netsim.Packet.t) =
  let dst_port = Hspace.Header.get packet.header Hspace.Field.Tp_dst in
  if dst_port = Wire.auth_request_port then handle_auth_request t packet.payload
  else if dst_port = Wire.answer_port then handle_answer t packet.payload

let create net ~host ~client ~ip ~key ~service_public ?resend_timeout () =
  (match resend_timeout with
  | Some d when d <= 0.0 ->
    invalid_arg "Client_agent.create: resend_timeout must be positive"
  | _ -> ());
  let t =
    {
      net;
      host;
      client;
      ip;
      key;
      service_public;
      resend_timeout;
      rng = Support.Rng.split (Netsim.Sim.rng (Netsim.Net.sim net));
      issued = Hashtbl.create 8;
      done_ = [];
      answer_callback = (fun _ -> ());
      auth_answered = 0;
      resends = 0;
      muted = false;
    }
  in
  Netsim.Net.set_host_receiver net ~host (receive t);
  t

let set_answer_callback t f = t.answer_callback <- f

let send_query t query =
  let nonce = Printf.sprintf "%015x" (Support.Rng.bits t.rng) in
  let payload =
    Codec.encode_request
      { Codec.client = t.client; nonce; query }
      ~key:t.key ~recipient:t.service_public
  in
  let header =
    Hspace.Header.udp ~src_ip:t.ip ~dst_ip:Wire.service_ip ~src_port:0
      ~dst_port:Wire.request_port
  in
  Hashtbl.replace t.issued nonce (now t);
  Netsim.Net.host_send t.net ~host:t.host (Netsim.Packet.make ~header payload);
  (* On a lossy channel either the request or the answer can vanish;
     re-request once (same nonce, so the eventual answer still
     correlates and a duplicate answer is ignored) rather than hang
     the caller forever. *)
  (match t.resend_timeout with
  | None -> ()
  | Some timeout ->
    Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:timeout (fun () ->
        if Hashtbl.mem t.issued nonce then begin
          t.resends <- t.resends + 1;
          Netsim.Net.host_send t.net ~host:t.host (Netsim.Packet.make ~header payload)
        end));
  nonce

let outcomes t = List.rev t.done_

let outstanding t = Hashtbl.length t.issued

let auth_requests_answered t = t.auth_answered

let resends t = t.resends

let verify_service _t ~quote ~nonce ~expected =
  Cryptosim.Attest.verify quote ~expected ~nonce

let set_mute t muted = t.muted <- muted
