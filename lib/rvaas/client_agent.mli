(** Client-side software (paper §IV-A.3).

    Runs in user space on each client host.  It (a) attests and then
    queries the RVaaS service through the in-band magic-header channel,
    and (b) answers authentication requests by publishing itself with a
    tagged UDP packet that the network intercepts and traces back to
    its true ingress port. *)

type t

(** Outcome of a query as observed by the client. *)
type outcome = {
  answer : Query.answer;
  issued_at : float;
  answered_at : float;
  signature_ok : bool;
}

(** [create net ~host ~client ~ip ~key ~service_public ?resend_timeout
    ()] installs the agent as host [host]'s receiver.  The agent
    answers auth requests automatically from then on.  With
    [resend_timeout] (seconds, default off), a query whose answer has
    not arrived by the deadline is re-sent once under the same nonce —
    covering a request or answer lost on a faulty path.
    @raise Invalid_argument when [resend_timeout <= 0]. *)
val create :
  Netsim.Net.t ->
  host:int ->
  client:int ->
  ip:int ->
  key:Cryptosim.Hmac.key ->
  service_public:Cryptosim.Keys.public ->
  ?resend_timeout:float ->
  unit ->
  t

(** [set_answer_callback t f] invokes [f] whenever a (signature-valid)
    answer for one of this agent's outstanding queries arrives. *)
val set_answer_callback : t -> (outcome -> unit) -> unit

(** [send_query t query] seals and transmits a query; returns the nonce
    used, so callers can correlate outcomes. *)
val send_query : t -> Query.t -> string

(** [outcomes t] lists completed queries, oldest first. *)
val outcomes : t -> outcome list

(** [outstanding t] counts queries still awaiting an answer. *)
val outstanding : t -> int

(** [auth_requests_answered t] counts auth requests this agent
    responded to. *)
val auth_requests_answered : t -> int

(** [resends t] counts queries re-sent after their answer-wait timeout
    expired. *)
val resends : t -> int

(** [verify_service t ~quote ~nonce ~expected] checks an attestation
    quote for the expected service measurement (done once before
    trusting [service_public] in a real deployment). *)
val verify_service :
  t -> quote:Cryptosim.Attest.quote -> nonce:string -> expected:Cryptosim.Attest.measurement -> bool

(** [set_mute t muted] makes the agent ignore auth requests — models an
    uncooperative (untrusted) client, §III. *)
val set_mute : t -> bool -> unit
