type request = { client : int; nonce : string; query : Query.t }

type auth_reply = { reply_client : int; challenge : string }

(* ---- line-format helpers ---- *)

let join_lines = String.concat "\n"

let split_lines s = String.split_on_char '\n' s

let kv key value = key ^ "=" ^ value

let parse_kv line =
  match String.index_opt line '=' with
  | None -> None
  | Some i ->
    Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let lookup key pairs = List.assoc_opt key pairs

let lookup_all key pairs =
  List.filter_map (fun (k, v) -> if String.equal k key then Some v else None) pairs

let parse_all s = List.filter_map parse_kv (split_lines s)

let int_field key pairs =
  Option.bind (lookup key pairs) int_of_string_opt

(* ---- requests ---- *)

let query_lines (q : Query.t) =
  let scope_lines =
    match q.scope with
    | None -> []
    | Some hs -> List.map (fun c -> kv "scope" (Hspace.Tern.to_string c)) (Hspace.Hs.cubes hs)
  in
  kv "kind" (Query.kind_to_string q.kind) :: scope_lines

let parse_query pairs =
  match Option.bind (lookup "kind" pairs) Query.kind_of_string with
  | None -> Error "bad or missing query kind"
  | Some kind ->
    let cubes =
      List.filter_map
        (fun s -> try Some (Hspace.Tern.of_string s) with Invalid_argument _ -> None)
        (lookup_all "scope" pairs)
    in
    let scope =
      match cubes with
      | [] -> None
      | _ -> Some (Hspace.Hs.of_cubes Hspace.Field.total_width cubes)
    in
    Ok { Query.kind; scope }

let encode_request r ~key ~recipient =
  let body =
    join_lines
      (kv "client" (string_of_int r.client)
      :: kv "nonce" r.nonce
      :: query_lines r.query)
  in
  let tagged = body ^ "\n" ^ kv "mac" (Cryptosim.Hmac.mac key body) in
  Cryptosim.Box.seal ~recipient tagged

let decode_request payload ~keypair ~lookup_key =
  match Cryptosim.Box.open_ ~keypair payload with
  | None -> Error "request not sealed to this service"
  | Some tagged -> (
    match String.rindex_opt tagged '\n' with
    | None -> Error "malformed request"
    | Some i -> (
      let body = String.sub tagged 0 i
      and mac_line = String.sub tagged (i + 1) (String.length tagged - i - 1) in
      let pairs = parse_all body in
      match int_field "client" pairs, lookup "nonce" pairs, parse_kv mac_line with
      | Some client, Some nonce, Some ("mac", mac) -> (
        match lookup_key client with
        | None -> Error "unknown client"
        | Some key ->
          if not (Cryptosim.Hmac.verify key body mac) then Error "bad client mac"
          else
            Result.map (fun query -> { client; nonce; query }) (parse_query pairs))
      | _ -> Error "malformed request"))

(* ---- auth requests ---- *)

let encode_auth_request ~challenge ~signer =
  let body = kv "challenge" challenge in
  join_lines [ body; kv "sig" (Cryptosim.Keys.sign signer body) ]

let decode_auth_request payload ~service_public =
  match split_lines payload with
  | [ body; sig_line ] -> (
    match parse_kv body, parse_kv sig_line with
    | Some ("challenge", challenge), Some ("sig", signature) ->
      if Cryptosim.Keys.verify ~public:service_public body ~signature then Ok challenge
      else Error "bad service signature"
    | _ -> Error "malformed auth request")
  | _ -> Error "malformed auth request"

(* ---- auth replies ---- *)

let encode_auth_reply ~client ~challenge ~key =
  let body = join_lines [ kv "client" (string_of_int client); kv "challenge" challenge ] in
  body ^ "\n" ^ kv "mac" (Cryptosim.Hmac.mac key body)

let decode_auth_reply payload ~lookup_key =
  match String.rindex_opt payload '\n' with
  | None -> Error "malformed auth reply"
  | Some i -> (
    let body = String.sub payload 0 i
    and mac_line = String.sub payload (i + 1) (String.length payload - i - 1) in
    let pairs = parse_all body in
    match int_field "client" pairs, lookup "challenge" pairs, parse_kv mac_line with
    | Some reply_client, Some challenge, Some ("mac", mac) -> (
      match lookup_key reply_client with
      | None -> Error "unknown client in auth reply"
      | Some key ->
        if Cryptosim.Hmac.verify key body mac then Ok { reply_client; challenge }
        else Error "bad auth reply mac")
    | _ -> Error "malformed auth reply")

(* ---- answers ---- *)

let opt_int_to_string = function None -> "-" | Some v -> string_of_int v

let opt_int_of_string = function "-" -> None | s -> int_of_string_opt s

let endpoint_line (e : Query.endpoint_report) =
  Printf.sprintf "%d,%d,%s,%d,%s" e.sw e.port (opt_int_to_string e.ip)
    (if e.authenticated then 1 else 0)
    (opt_int_to_string e.client)

let parse_endpoint s =
  match String.split_on_char ',' s with
  | [ sw; port; ip; auth; client ] -> (
    match int_of_string_opt sw, int_of_string_opt port, int_of_string_opt auth with
    | Some sw, Some port, Some auth ->
      Some
        {
          Query.sw;
          port;
          ip = opt_int_of_string ip;
          authenticated = auth = 1;
          client = opt_int_of_string client;
        }
    | _ -> None)
  | _ -> None

let answer_body (a : Query.answer) =
  let lines =
    [ kv "nonce" a.nonce; kv "kind" (Query.kind_to_string a.kind) ]
    @ List.map (fun e -> kv "endpoint" (endpoint_line e)) a.endpoints
    @ [
        kv "total_auth" (string_of_int a.total_auth_requests);
        kv "replies" (string_of_int a.auth_replies);
        kv "attempts" (string_of_int a.auth_attempts);
        kv "degraded" (if a.degraded then "1" else "0");
      ]
    @ List.map (fun j -> kv "jur" j) a.jurisdictions
    @ (match a.path_hops with
      | None -> []
      | Some (observed, optimal) ->
        [ kv "path" (string_of_int observed ^ "," ^ string_of_int optimal) ])
    @ List.map
        (fun (id, rate) -> kv "meter" (string_of_int id ^ "," ^ string_of_int rate))
        a.meters
    @ List.concat_map
        (fun (sw, port, hs) ->
          List.map
            (fun cube ->
              kv "tf"
                (Printf.sprintf "%d,%d,%s" sw port (Hspace.Tern.to_string cube)))
            (Hspace.Hs.cubes hs))
        a.transfer
    @ [ kv "age" (Printf.sprintf "%.9f" a.snapshot_age) ]
  in
  join_lines lines

let encode_answer a ~signer =
  let body = answer_body a in
  body ^ "\n" ^ kv "sig" (Cryptosim.Keys.sign signer body)

let decode_answer payload ~service_public =
  match String.rindex_opt payload '\n' with
  | None -> Error "malformed answer"
  | Some i -> (
    let body = String.sub payload 0 i
    and sig_line = String.sub payload (i + 1) (String.length payload - i - 1) in
    match parse_kv sig_line with
    | Some ("sig", signature) ->
      if not (Cryptosim.Keys.verify ~public:service_public body ~signature) then
        Error "bad service signature"
      else begin
        let pairs = parse_all body in
        let parse_pair s =
          match String.split_on_char ',' s with
          | [ a; b ] -> (
            match int_of_string_opt a, int_of_string_opt b with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
          | _ -> None
        in
        (* Freshness must be explicit: a missing or malformed age field
           is a decode error, not "maximally fresh" — silently defaulting
           to 0 would let a truncating attacker (or a codec bug) forge
           the staleness bound clients alarm on. *)
        match
          ( lookup "nonce" pairs,
            Option.bind (lookup "kind" pairs) Query.kind_of_string,
            int_field "total_auth" pairs,
            int_field "replies" pairs,
            Option.bind (lookup "age" pairs) float_of_string_opt )
        with
        | _, _, _, _, None -> Error "missing or malformed answer age"
        | Some nonce, Some kind, Some total_auth_requests, Some auth_replies,
          Some snapshot_age ->
          Ok
            {
              Query.nonce;
              kind;
              endpoints = List.filter_map parse_endpoint (lookup_all "endpoint" pairs);
              total_auth_requests;
              auth_replies;
              auth_attempts =
                Option.value ~default:total_auth_requests (int_field "attempts" pairs);
              degraded = lookup "degraded" pairs = Some "1";
              jurisdictions = lookup_all "jur" pairs;
              path_hops = Option.bind (lookup "path" pairs) parse_pair;
              meters = List.filter_map parse_pair (lookup_all "meter" pairs);
              transfer =
                (let cells =
                   List.filter_map
                     (fun line ->
                       match String.split_on_char ',' line with
                       | [ sw; port; cube ] -> (
                         match
                           ( int_of_string_opt sw,
                             int_of_string_opt port,
                             try Some (Hspace.Tern.of_string cube)
                             with Invalid_argument _ -> None )
                         with
                         | Some sw, Some port, Some cube -> Some ((sw, port), cube)
                         | _ -> None)
                       | _ -> None)
                     (lookup_all "tf" pairs)
                 in
                 let keys = List.sort_uniq compare (List.map fst cells) in
                 List.map
                   (fun key ->
                     let cubes =
                       List.filter_map
                         (fun (k, cube) -> if k = key then Some cube else None)
                         cells
                     in
                     ( fst key,
                       snd key,
                       Hspace.Hs.of_cubes Hspace.Field.total_width cubes ))
                   keys);
              snapshot_age;
            }
        | _ -> Error "malformed answer"
      end
    | _ -> Error "malformed answer")
