type request = { client : int; nonce : string; query : Query.t }

type auth_reply = { reply_client : int; challenge : string }

(* ---- line-format helpers ---- *)

let join_lines = String.concat "\n"

let split_lines s = String.split_on_char '\n' s

let kv key value = key ^ "=" ^ value

let parse_kv line =
  match String.index_opt line '=' with
  | None -> None
  | Some i ->
    Some (String.sub line 0 i, String.sub line (i + 1) (String.length line - i - 1))

let lookup key pairs = List.assoc_opt key pairs

let lookup_all key pairs =
  List.filter_map (fun (k, v) -> if String.equal k key then Some v else None) pairs

let parse_all s = List.filter_map parse_kv (split_lines s)

let int_field key pairs =
  Option.bind (lookup key pairs) int_of_string_opt

(* ---- requests ---- *)

let query_lines (q : Query.t) =
  let scope_lines =
    match q.scope with
    | None -> []
    | Some hs -> List.map (fun c -> kv "scope" (Hspace.Tern.to_string c)) (Hspace.Hs.cubes hs)
  in
  kv "kind" (Query.kind_to_string q.kind) :: scope_lines

let parse_query pairs =
  match Option.bind (lookup "kind" pairs) Query.kind_of_string with
  | None -> Error "bad or missing query kind"
  | Some kind ->
    let cubes =
      List.filter_map
        (fun s -> try Some (Hspace.Tern.of_string s) with Invalid_argument _ -> None)
        (lookup_all "scope" pairs)
    in
    let scope =
      match cubes with
      | [] -> None
      | _ -> Some (Hspace.Hs.of_cubes Hspace.Field.total_width cubes)
    in
    Ok { Query.kind; scope }

let query_to_string q = join_lines (query_lines q)

let query_of_string s = parse_query (parse_all s)

let encode_request r ~key ~recipient =
  let body =
    join_lines
      (kv "client" (string_of_int r.client)
      :: kv "nonce" r.nonce
      :: query_lines r.query)
  in
  let tagged = body ^ "\n" ^ kv "mac" (Cryptosim.Hmac.mac key body) in
  Cryptosim.Box.seal ~recipient tagged

let decode_request payload ~keypair ~lookup_key =
  match Cryptosim.Box.open_ ~keypair payload with
  | None -> Error "request not sealed to this service"
  | Some tagged -> (
    match String.rindex_opt tagged '\n' with
    | None -> Error "malformed request"
    | Some i -> (
      let body = String.sub tagged 0 i
      and mac_line = String.sub tagged (i + 1) (String.length tagged - i - 1) in
      let pairs = parse_all body in
      match int_field "client" pairs, lookup "nonce" pairs, parse_kv mac_line with
      | Some client, Some nonce, Some ("mac", mac) -> (
        match lookup_key client with
        | None -> Error "unknown client"
        | Some key ->
          if not (Cryptosim.Hmac.verify key body mac) then Error "bad client mac"
          else
            Result.map (fun query -> { client; nonce; query }) (parse_query pairs))
      | _ -> Error "malformed request"))

(* ---- auth requests ---- *)

let encode_auth_request ~challenge ~signer =
  let body = kv "challenge" challenge in
  join_lines [ body; kv "sig" (Cryptosim.Keys.sign signer body) ]

let decode_auth_request payload ~service_public =
  match split_lines payload with
  | [ body; sig_line ] -> (
    match parse_kv body, parse_kv sig_line with
    | Some ("challenge", challenge), Some ("sig", signature) ->
      if Cryptosim.Keys.verify ~public:service_public body ~signature then Ok challenge
      else Error "bad service signature"
    | _ -> Error "malformed auth request")
  | _ -> Error "malformed auth request"

(* ---- auth replies ---- *)

let encode_auth_reply ~client ~challenge ~key =
  let body = join_lines [ kv "client" (string_of_int client); kv "challenge" challenge ] in
  body ^ "\n" ^ kv "mac" (Cryptosim.Hmac.mac key body)

let decode_auth_reply payload ~lookup_key =
  match String.rindex_opt payload '\n' with
  | None -> Error "malformed auth reply"
  | Some i -> (
    let body = String.sub payload 0 i
    and mac_line = String.sub payload (i + 1) (String.length payload - i - 1) in
    let pairs = parse_all body in
    match int_field "client" pairs, lookup "challenge" pairs, parse_kv mac_line with
    | Some reply_client, Some challenge, Some ("mac", mac) -> (
      match lookup_key reply_client with
      | None -> Error "unknown client in auth reply"
      | Some key ->
        if Cryptosim.Hmac.verify key body mac then Ok { reply_client; challenge }
        else Error "bad auth reply mac")
    | _ -> Error "malformed auth reply")

(* ---- answers ---- *)

let opt_int_to_string = function None -> "-" | Some v -> string_of_int v

let opt_int_of_string = function "-" -> None | s -> int_of_string_opt s

let endpoint_line (e : Query.endpoint_report) =
  Printf.sprintf "%d,%d,%s,%d,%s" e.sw e.port (opt_int_to_string e.ip)
    (if e.authenticated then 1 else 0)
    (opt_int_to_string e.client)

let parse_endpoint s =
  match String.split_on_char ',' s with
  | [ sw; port; ip; auth; client ] -> (
    match int_of_string_opt sw, int_of_string_opt port, int_of_string_opt auth with
    | Some sw, Some port, Some auth ->
      Some
        {
          Query.sw;
          port;
          ip = opt_int_of_string ip;
          authenticated = auth = 1;
          client = opt_int_of_string client;
        }
    | _ -> None)
  | _ -> None

let answer_body (a : Query.answer) =
  let lines =
    [ kv "nonce" a.nonce; kv "kind" (Query.kind_to_string a.kind) ]
    @ List.map (fun e -> kv "endpoint" (endpoint_line e)) a.endpoints
    @ [
        kv "total_auth" (string_of_int a.total_auth_requests);
        kv "replies" (string_of_int a.auth_replies);
        kv "attempts" (string_of_int a.auth_attempts);
        kv "degraded" (if a.degraded then "1" else "0");
      ]
    (* Only emitted when set: pre-frontend decoders never saw the key
       and the default below keeps old captures decodable. *)
    @ (if a.throttled then [ kv "throttled" "1" ] else [])
    @ List.map (fun j -> kv "jur" j) a.jurisdictions
    @ (match a.path_hops with
      | None -> []
      | Some (observed, optimal) ->
        [ kv "path" (string_of_int observed ^ "," ^ string_of_int optimal) ])
    @ List.map
        (fun (id, rate) -> kv "meter" (string_of_int id ^ "," ^ string_of_int rate))
        a.meters
    @ List.concat_map
        (fun (sw, port, hs) ->
          List.map
            (fun cube ->
              kv "tf"
                (Printf.sprintf "%d,%d,%s" sw port (Hspace.Tern.to_string cube)))
            (Hspace.Hs.cubes hs))
        a.transfer
    @ [ kv "age" (Printf.sprintf "%.9f" a.snapshot_age) ]
  in
  join_lines lines

let encode_answer a ~signer =
  let body = answer_body a in
  body ^ "\n" ^ kv "sig" (Cryptosim.Keys.sign signer body)

let decode_answer payload ~service_public =
  match String.rindex_opt payload '\n' with
  | None -> Error "malformed answer"
  | Some i -> (
    let body = String.sub payload 0 i
    and sig_line = String.sub payload (i + 1) (String.length payload - i - 1) in
    match parse_kv sig_line with
    | Some ("sig", signature) ->
      if not (Cryptosim.Keys.verify ~public:service_public body ~signature) then
        Error "bad service signature"
      else begin
        let pairs = parse_all body in
        let parse_pair s =
          match String.split_on_char ',' s with
          | [ a; b ] -> (
            match int_of_string_opt a, int_of_string_opt b with
            | Some a, Some b -> Some (a, b)
            | _ -> None)
          | _ -> None
        in
        (* Freshness must be explicit: a missing or malformed age field
           is a decode error, not "maximally fresh" — silently defaulting
           to 0 would let a truncating attacker (or a codec bug) forge
           the staleness bound clients alarm on. *)
        match
          ( lookup "nonce" pairs,
            Option.bind (lookup "kind" pairs) Query.kind_of_string,
            int_field "total_auth" pairs,
            int_field "replies" pairs,
            Option.bind (lookup "age" pairs) float_of_string_opt )
        with
        | _, _, _, _, None -> Error "missing or malformed answer age"
        | Some nonce, Some kind, Some total_auth_requests, Some auth_replies,
          Some snapshot_age ->
          Ok
            {
              Query.nonce;
              kind;
              endpoints = List.filter_map parse_endpoint (lookup_all "endpoint" pairs);
              total_auth_requests;
              auth_replies;
              auth_attempts =
                Option.value ~default:total_auth_requests (int_field "attempts" pairs);
              degraded = lookup "degraded" pairs = Some "1";
              jurisdictions = lookup_all "jur" pairs;
              path_hops = Option.bind (lookup "path" pairs) parse_pair;
              meters = List.filter_map parse_pair (lookup_all "meter" pairs);
              transfer =
                (let cells =
                   List.filter_map
                     (fun line ->
                       match String.split_on_char ',' line with
                       | [ sw; port; cube ] -> (
                         match
                           ( int_of_string_opt sw,
                             int_of_string_opt port,
                             try Some (Hspace.Tern.of_string cube)
                             with Invalid_argument _ -> None )
                         with
                         | Some sw, Some port, Some cube -> Some ((sw, port), cube)
                         | _ -> None)
                       | _ -> None)
                     (lookup_all "tf" pairs)
                 in
                 let keys = List.sort_uniq compare (List.map fst cells) in
                 List.map
                   (fun key ->
                     let cubes =
                       List.filter_map
                         (fun (k, cube) -> if k = key then Some cube else None)
                         cells
                     in
                     ( fst key,
                       snd key,
                       Hspace.Hs.of_cubes Hspace.Field.total_width cubes ))
                   keys);
              snapshot_age;
              throttled = lookup "throttled" pairs = Some "1";
            }
        | _ -> Error "malformed answer"
      end
    | _ -> Error "malformed answer")

(* ---- binary primitives ----

   Compact little-endian encoders for the durable layer (snapshot
   images, journal payloads).  Kept next to the text codecs so every
   byte that crosses a persistence or wire boundary is defined in one
   module. *)

module Bin = struct
  exception Malformed of string

  let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

  let w_i64 b v =
    for i = 0 to 7 do
      w_u8 b (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
    done

  let w_int b v = w_i64 b (Int64.of_int v)

  let w_float b v = w_i64 b (Int64.bits_of_float v)

  let w_string b s =
    w_int b (String.length s);
    Buffer.add_string b s

  let w_opt w b = function
    | None -> w_u8 b 0
    | Some v ->
      w_u8 b 1;
      w b v

  let w_list w b xs =
    w_int b (List.length xs);
    List.iter (w b) xs

  type reader = { src : string; mutable pos : int }

  let reader src = { src; pos = 0 }

  let at_end r = r.pos >= String.length r.src

  let r_u8 r =
    if r.pos >= String.length r.src then raise (Malformed "truncated");
    let v = Char.code r.src.[r.pos] in
    r.pos <- r.pos + 1;
    v

  let r_i64 r =
    let v = ref 0L in
    for i = 0 to 7 do
      v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 r)) (8 * i))
    done;
    !v

  let r_int r = Int64.to_int (r_i64 r)

  let r_float r = Int64.float_of_bits (r_i64 r)

  let r_string r =
    let n = r_int r in
    if n < 0 || r.pos + n > String.length r.src then raise (Malformed "truncated string");
    let v = String.sub r.src r.pos n in
    r.pos <- r.pos + n;
    v

  let r_opt rd r = match r_u8 r with 0 -> None | 1 -> Some (rd r) | _ -> raise (Malformed "bad option tag")

  let r_list rd r =
    let n = r_int r in
    if n < 0 then raise (Malformed "bad list length");
    List.init n (fun _ -> rd r)

  (* ---- flow-entry specs ---- *)

  let field_index f =
    let rec go i = function
      | [] -> raise (Malformed "unknown field")
      | g :: rest -> if g = f then i else go (i + 1) rest
    in
    go 0 Hspace.Field.all

  let field_of_index i =
    match List.nth_opt Hspace.Field.all i with
    | Some f -> f
    | None -> raise (Malformed "bad field index")

  let w_action b = function
    | Ofproto.Action.Output p ->
      w_u8 b 0;
      w_int b p
    | Ofproto.Action.In_port -> w_u8 b 1
    | Ofproto.Action.Flood -> w_u8 b 2
    | Ofproto.Action.To_controller -> w_u8 b 3
    | Ofproto.Action.Set_field (f, v) ->
      w_u8 b 4;
      w_int b (field_index f);
      w_int b v
    | Ofproto.Action.Set_queue q ->
      w_u8 b 5;
      w_int b q

  let r_action r =
    match r_u8 r with
    | 0 -> Ofproto.Action.Output (r_int r)
    | 1 -> Ofproto.Action.In_port
    | 2 -> Ofproto.Action.Flood
    | 3 -> Ofproto.Action.To_controller
    | 4 ->
      let f = field_of_index (r_int r) in
      let v = r_int r in
      Ofproto.Action.Set_field (f, v)
    | 5 -> Ofproto.Action.Set_queue (r_int r)
    | _ -> raise (Malformed "bad action tag")

  let w_match b m =
    w_opt w_int b (Ofproto.Match_.in_port m);
    w_list
      (fun b (f, { Ofproto.Match_.value; mask }) ->
        w_int b (field_index f);
        w_int b value;
        w_int b mask)
      b (Ofproto.Match_.fields m)

  let r_match r =
    let in_port = r_opt r_int r in
    let fields =
      r_list
        (fun r ->
          let f = field_of_index (r_int r) in
          let value = r_int r in
          let mask = r_int r in
          (f, value, mask))
        r
    in
    let m =
      List.fold_left
        (fun m (f, value, mask) -> Ofproto.Match_.with_field m f ~value ~mask)
        Ofproto.Match_.any fields
    in
    match in_port with None -> m | Some p -> Ofproto.Match_.with_in_port m p

  let w_spec b (s : Ofproto.Flow_entry.spec) =
    w_int b s.priority;
    w_int b s.cookie;
    w_opt w_int b s.meter;
    w_opt w_float b s.hard_timeout;
    w_match b s.match_;
    w_list w_action b s.actions

  let r_spec r =
    let priority = r_int r in
    let cookie = r_int r in
    let meter = r_opt r_int r in
    let hard_timeout = r_opt r_float r in
    let match_ = r_match r in
    let actions = r_list r_action r in
    Ofproto.Flow_entry.make_spec ~cookie ?meter ?hard_timeout ~priority match_ actions

  let w_event b = function
    | Ofproto.Message.Flow_added spec ->
      w_u8 b 0;
      w_spec b spec
    | Ofproto.Message.Flow_deleted spec ->
      w_u8 b 1;
      w_spec b spec
    | Ofproto.Message.Flow_modified spec ->
      w_u8 b 2;
      w_spec b spec

  let r_event r =
    match r_u8 r with
    | 0 -> Ofproto.Message.Flow_added (r_spec r)
    | 1 -> Ofproto.Message.Flow_deleted (r_spec r)
    | 2 -> Ofproto.Message.Flow_modified (r_spec r)
    | _ -> raise (Malformed "bad event tag")

  let w_meters b meters =
    w_list
      (fun b (id, { Ofproto.Meter.rate_kbps }) ->
        w_int b id;
        w_int b rate_kbps)
      b meters

  let r_meters r =
    r_list
      (fun r ->
        let id = r_int r in
        let rate_kbps = r_int r in
        (id, { Ofproto.Meter.rate_kbps }))
      r
end
