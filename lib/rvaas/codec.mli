(** Wire codec for the in-band protocol payloads.

    Four payload kinds travel inside the UDP packets of {!Wire}:

    - {b request} (client → service): sealed to the service's public
      key so the provider cannot read query contents, and HMAC-tagged
      with the client's registered key so the service can authenticate
      the requester.
    - {b auth request} (service → endpoint host): a fresh challenge,
      signed by the service so hosts only answer the genuine RVaaS.
    - {b auth reply} (endpoint host → service): echoes the challenge
      under the host's client key.
    - {b answer} (service → client): the query answer, signed by the
      service.

    The format is line-oriented [key=value] text — easy to inspect in
    tests and logs. *)

type request = { client : int; nonce : string; query : Query.t }

(** [encode_request r ~key ~recipient] authenticates with the client
    [key] and seals to the service public key. *)
val encode_request : request -> key:Cryptosim.Hmac.key -> recipient:Cryptosim.Keys.public -> string

(** [decode_request payload ~keypair ~lookup_key] opens the box with
    the service [keypair], parses, and verifies the client tag using
    [lookup_key client]. *)
val decode_request :
  string ->
  keypair:Cryptosim.Keys.keypair ->
  lookup_key:(int -> Cryptosim.Hmac.key option) ->
  (request, string) result

(** [encode_auth_request ~challenge ~signer] signs a challenge. *)
val encode_auth_request : challenge:string -> signer:Cryptosim.Keys.keypair -> string

(** [decode_auth_request payload ~service_public] verifies and returns
    the challenge. *)
val decode_auth_request :
  string -> service_public:Cryptosim.Keys.public -> (string, string) result

type auth_reply = { reply_client : int; challenge : string }

(** [encode_auth_reply ~client ~challenge ~key] tags the echo with the
    client key. *)
val encode_auth_reply : client:int -> challenge:string -> key:Cryptosim.Hmac.key -> string

(** [decode_auth_reply payload ~lookup_key] parses and verifies. *)
val decode_auth_reply :
  string -> lookup_key:(int -> Cryptosim.Hmac.key option) -> (auth_reply, string) result

(** [encode_answer a ~signer] signs the serialised answer. *)
val encode_answer : Query.answer -> signer:Cryptosim.Keys.keypair -> string

(** [decode_answer payload ~service_public] verifies the service
    signature and parses. *)
val decode_answer :
  string -> service_public:Cryptosim.Keys.public -> (Query.answer, string) result

(** [query_to_string] / [query_of_string]: the bare query in the same
    line format used inside requests — used by the durable journal to
    record open queries so a recovering controller can re-issue them. *)
val query_to_string : Query.t -> string

val query_of_string : string -> (Query.t, string) result

(** Compact little-endian binary encoders for the durable layer
    (snapshot images, journal payloads).  Kept in [Codec] so every
    byte crossing a persistence or wire boundary is defined in one
    module.  Readers raise {!Bin.Malformed} on any structural error —
    callers at trust boundaries must catch it. *)
module Bin : sig
  exception Malformed of string

  val w_u8 : Buffer.t -> int -> unit

  val w_int : Buffer.t -> int -> unit

  val w_i64 : Buffer.t -> int64 -> unit

  val w_float : Buffer.t -> float -> unit

  val w_string : Buffer.t -> string -> unit

  val w_opt : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a option -> unit

  val w_list : (Buffer.t -> 'a -> unit) -> Buffer.t -> 'a list -> unit

  type reader

  val reader : string -> reader

  (** [at_end r] is [true] once every byte has been consumed. *)
  val at_end : reader -> bool

  val r_u8 : reader -> int

  val r_int : reader -> int

  val r_i64 : reader -> int64

  val r_float : reader -> float

  val r_string : reader -> string

  val r_opt : (reader -> 'a) -> reader -> 'a option

  val r_list : (reader -> 'a) -> reader -> 'a list

  (** Flow-entry specs, monitor events and meter tables — the payloads
      of snapshot checkpoints and journal observations.  Round-trip
      preserves {!Ofproto.Flow_entry.spec_equal} and the fingerprints
      {!Snapshot.switch_digest} is built from. *)

  val w_spec : Buffer.t -> Ofproto.Flow_entry.spec -> unit

  val r_spec : reader -> Ofproto.Flow_entry.spec

  val w_event : Buffer.t -> Ofproto.Message.monitor_event -> unit

  val r_event : reader -> Ofproto.Message.monitor_event

  val w_meters : Buffer.t -> (int * Ofproto.Meter.band) list -> unit

  val r_meters : reader -> (int * Ofproto.Meter.band) list
end
