type config = {
  heartbeat_period : float;
  takeover_timeout : float;
  check_period : float;
  checkpoint_every : int;
}

let default_config =
  {
    heartbeat_period = 0.01;
    takeover_timeout = 0.05;
    check_period = 0.01;
    checkpoint_every = 64;
  }

type report = {
  crashed_at : float;
  detected_at : float;
  mutable resynced_at : float;
  replayed_entries : int;
  reissued_queries : int;
  generation : int;
}

type build =
  journal:Journal.t ->
  snapshot:Snapshot.t option ->
  prefill:Monitor.history_entry list ->
  conn:Netsim.Net.conn option ->
  Monitor.t * Service.t

type t = {
  net : Netsim.Net.t;
  config : config;
  journal : Journal.t;
  build : build;
  mutable monitor : Monitor.t;
  mutable service : Service.t;
  mutable crashed_at : float option;
  mutable takeovers : report list; (* newest first *)
  mutable resyncs : int; (* same-instance session re-establishments *)
  mutable standby_armed : bool;
}

let sim t = Netsim.Net.sim t.net

let now t = Netsim.Sim.now (sim t)

let monitor t = t.monitor

let service t = t.service

let journal t = t.journal

let generation t = Support.Journal.generation (Journal.log t.journal)

let takeovers t = List.rev t.takeovers

let last_takeover t = match t.takeovers with [] -> None | r :: _ -> Some r

let resyncs t = t.resyncs

(* Observations in the journal's valid prefix, as history entries: a
   recovered controller keeps the audit trail the detector reads. *)
let prefill_of_journal log =
  List.filter_map
    (fun (e : Support.Journal.entry) ->
      match Journal.decode_entry e with
      | Ok (Journal.Observation { sw; event }) ->
        Some { Monitor.at = e.at; sw; what = Monitor.Event event }
      | Ok _ | Error _ -> None)
    (Support.Journal.valid_prefix log)

(* The heartbeat keeps [last_at] of the journal fresh while this
   incarnation lives — its silence is what a standby's staleness check
   detects.  Piggybacked echoes exercise the control channel so the
   session guard has a liveness signal too. *)
let arm_heartbeat t =
  let service = t.service in
  Netsim.Sim.every (sim t) ~period:t.config.heartbeat_period (fun () ->
      if Service.live service then begin
        Journal.heartbeat t.journal ~at:(now t);
        Monitor.send_echo t.monitor;
        true
      end
      else false)

(* Same-instance session guard: a partition (session down, service
   still live) is healed by re-establishing the session and
   resynchronising — fresh stats sweep, interception re-install,
   retransmission of every unanswered challenge under fresh
   challenges. *)
let arm_session_guard t =
  let service = t.service in
  Netsim.Sim.every (sim t) ~period:t.config.check_period (fun () ->
      if not (Service.live service) then false
      else begin
        let conn = Monitor.conn t.monitor in
        if not (Netsim.Net.conn_up conn) then begin
          t.resyncs <- t.resyncs + 1;
          Netsim.Net.reconnect t.net conn;
          Service.reinstall_intercepts service;
          Monitor.poll_now t.monitor;
          Service.retransmit_pending service
        end;
        true
      end)

let arm_resync_watch t (r : report) =
  let monitor = t.monitor in
  Netsim.Sim.every (sim t) ~period:t.config.check_period (fun () ->
      if Monitor.outstanding_polls monitor = 0 then begin
        if r.resynced_at < r.detected_at then r.resynced_at <- now t;
        false
      end
      else true)

(* Takeover: bump the generation (journalled — the log is an audit
   trail of incarnations), replay the valid prefix into a fresh
   snapshot, re-attach over the existing session registration,
   re-install interception, resynchronise with an immediate poll
   sweep, and re-issue every query that was in flight at the crash. *)
let takeover t ~detected_at =
  let log = Journal.log t.journal in
  let generation = Support.Journal.begin_generation log ~at:(now t) in
  let recovery = Journal.recover log in
  let old_conn = Monitor.conn t.monitor in
  Netsim.Net.reconnect t.net old_conn;
  let monitor, service =
    t.build ~journal:t.journal ~snapshot:(Some recovery.snapshot)
      ~prefill:(prefill_of_journal log) ~conn:(Some old_conn)
  in
  t.monitor <- monitor;
  t.service <- service;
  Monitor.poll_now monitor;
  List.iter (fun q -> Service.reissue service q) recovery.open_queries;
  Journal.checkpoint t.journal ~at:(now t) ~snapshot:(Monitor.snapshot monitor);
  let report =
    {
      crashed_at = Option.value ~default:(now t) t.crashed_at;
      detected_at;
      resynced_at = 0.0;
      replayed_entries = recovery.replayed;
      reissued_queries = List.length recovery.open_queries;
      generation;
    }
  in
  t.takeovers <- report :: t.takeovers;
  t.crashed_at <- None;
  arm_heartbeat t;
  arm_session_guard t;
  arm_resync_watch t report;
  report

let restart t = takeover t ~detected_at:(now t)

(* Warm standby: tails the journal; when the newest entry (heartbeats
   included) is older than [takeover_timeout], the primary is declared
   dead and the standby takes over.  The blind window is therefore
   bounded by [takeover_timeout + check_period] plus resync latency. *)
let enable_standby t =
  if not t.standby_armed then begin
    t.standby_armed <- true;
    let log = Journal.log t.journal in
    Netsim.Sim.every (sim t) ~period:t.config.check_period (fun () ->
        let stale =
          match Support.Journal.last_at log with
          | None -> false
          | Some at -> now t -. at > t.config.takeover_timeout
        in
        if stale && not (Service.live t.service) then begin
          ignore (takeover t ~detected_at:(now t));
          t.standby_armed <- false;
          false
        end
        else true)
  end

let crash t =
  if Service.live t.service then begin
    t.crashed_at <- Some (now t);
    Service.kill t.service;
    Monitor.stop_polling t.monitor;
    Netsim.Net.disconnect t.net (Monitor.conn t.monitor)
  end

let partition t = Netsim.Net.disconnect t.net (Monitor.conn t.monitor)

let start ?journal:existing ?(config = default_config) ~build net =
  if config.heartbeat_period <= 0.0 || config.takeover_timeout <= 0.0
     || config.check_period <= 0.0
  then invalid_arg "Failover.start: periods must be positive";
  let journal =
    match existing with
    | Some j -> j
    | None -> Journal.create ~checkpoint_every:config.checkpoint_every ()
  in
  let log = Journal.log journal in
  let fresh = Support.Journal.length log = 0 in
  let monitor, service =
    if fresh then build ~journal ~snapshot:None ~prefill:[] ~conn:None
    else begin
      (* Restart from a persisted journal: replay, then attach fresh. *)
      ignore (Support.Journal.begin_generation log ~at:0.0);
      let recovery = Journal.recover log in
      build ~journal ~snapshot:(Some recovery.snapshot)
        ~prefill:(prefill_of_journal log) ~conn:None
    end
  in
  let t =
    {
      net;
      config;
      journal;
      build;
      monitor;
      service;
      crashed_at = None;
      takeovers = [];
      resyncs = 0;
      standby_armed = false;
    }
  in
  (* The log always opens with an image: recovery never has to replay
     from an empty snapshot across the whole history. *)
  Journal.checkpoint journal ~at:(now t) ~snapshot:(Monitor.snapshot monitor);
  arm_heartbeat t;
  arm_session_guard t;
  t
