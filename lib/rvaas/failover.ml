type config = {
  heartbeat_period : float;
  takeover_timeout : float;
  check_period : float;
  checkpoint_every : int;
  standbys : int;
  auto_compact : bool;
  replica_lag : int; (* record bound on each standby's replica tail *)
  replica_delay : float; (* in-transit delay of replica frames (sim time) *)
}

let default_config =
  {
    heartbeat_period = 0.01;
    takeover_timeout = 0.05;
    check_period = 0.01;
    checkpoint_every = 64;
    standbys = 1;
    auto_compact = false;
    replica_lag = 8;
    replica_delay = 0.0;
  }

type report = {
  crashed_at : float;
  detected_at : float;
  taken_over_at : float;
  mutable resynced_at : float;
  replayed_entries : int;
  reissued_queries : int;
  reconciled_records : int; (* replica frames the winner applied pre-takeover *)
  generation : int;
  winner : int;
}

type build =
  journal:Journal.t ->
  snapshot:Snapshot.t option ->
  prefill:Monitor.history_entry list ->
  conn:Netsim.Net.conn option ->
  Monitor.t * Service.t

(* One warm standby.  [sb_claim] is set while it has a journalled
   claim pending decision; [sb_next_claim] implements the post-loss
   back-off that lets a stale claim expire before re-claiming.
   [sb_replica] is the standby's own lag-bounded tail of the primary's
   journal — every read in the election (staleness, competing claims)
   goes through it, never through the primary's memory. *)
type standby = {
  sid : int;
  sb_replica : Support.Replica.t;
  mutable sb_partitioned : bool;
  mutable sb_claim : (float * int) option; (* claimed_at, generation then *)
  mutable sb_next_claim : float;
}

type t = {
  net : Netsim.Net.t;
  config : config;
  journal : Journal.t;
  build : build;
  mutable monitor : Monitor.t;
  mutable service : Service.t;
  mutable crashed_at : float option;
  mutable takeovers : report list; (* newest first *)
  mutable resyncs : int; (* same-instance session re-establishments *)
  mutable standby_pool : standby list; (* ascending sid *)
}

let sim t = Netsim.Net.sim t.net

let now t = Netsim.Sim.now (sim t)

let monitor t = t.monitor

let service t = t.service

let journal t = t.journal

let generation t = Support.Journal.generation (Journal.log t.journal)

let takeovers t = List.rev t.takeovers

let last_takeover t = match t.takeovers with [] -> None | r :: _ -> Some r

let resyncs t = t.resyncs

(* Observations in the journal's valid prefix, as history entries: a
   recovered controller keeps the audit trail the detector reads. *)
let prefill_of_journal log =
  List.filter_map
    (fun (e : Support.Journal.entry) ->
      match Journal.decode_entry e with
      | Ok (Journal.Observation { sw; event }) ->
        Some { Monitor.at = e.at; sw; what = Monitor.Event event }
      | Ok _ | Error _ -> None)
    (Support.Journal.valid_prefix log)

(* The heartbeat keeps [last_at] of the journal fresh while this
   incarnation lives — its silence is what a standby's staleness check
   detects.  Piggybacked echoes exercise the control channel so the
   session guard has a liveness signal too. *)
let arm_heartbeat t =
  let service = t.service in
  Netsim.Sim.every (sim t) ~period:t.config.heartbeat_period (fun () ->
      if Service.live service then begin
        Journal.heartbeat t.journal ~at:(now t);
        Monitor.send_echo t.monitor;
        true
      end
      else false)

(* Same-instance session guard: a partition (session down, service
   still live) is healed by re-establishing the session and
   resynchronising — fresh stats sweep, interception re-install,
   retransmission of every unanswered challenge under fresh
   challenges. *)
let arm_session_guard t =
  let service = t.service in
  Netsim.Sim.every (sim t) ~period:t.config.check_period (fun () ->
      if not (Service.live service) then false
      else begin
        let conn = Monitor.conn t.monitor in
        if not (Netsim.Net.conn_up conn) then begin
          t.resyncs <- t.resyncs + 1;
          Netsim.Net.reconnect t.net conn;
          Service.reinstall_intercepts service;
          Monitor.poll_now t.monitor;
          Service.retransmit_pending service
        end;
        true
      end)

let arm_resync_watch t (r : report) =
  let monitor = t.monitor in
  Netsim.Sim.every (sim t) ~period:t.config.check_period (fun () ->
      if Monitor.outstanding_polls monitor = 0 then begin
        if r.resynced_at < r.detected_at then r.resynced_at <- now t;
        false
      end
      else true)

(* Takeover: bump the generation (journalled — the log is an audit
   trail of incarnations), replay the valid prefix into a fresh
   snapshot, re-attach over the existing session registration,
   re-install interception, resynchronise with an immediate poll
   sweep, and re-issue every query that was in flight at the crash. *)
let takeover ?(reconciled = 0) t ~detected_at ~winner =
  let log = Journal.log t.journal in
  let generation = Support.Journal.begin_generation log ~at:(now t) in
  let recovery = Journal.recover log in
  let old_conn = Monitor.conn t.monitor in
  Netsim.Net.reconnect t.net old_conn;
  let monitor, service =
    t.build ~journal:t.journal ~snapshot:(Some recovery.snapshot)
      ~prefill:(prefill_of_journal log) ~conn:(Some old_conn)
  in
  t.monitor <- monitor;
  t.service <- service;
  Monitor.poll_now monitor;
  List.iter (fun q -> Service.reissue service q) recovery.open_queries;
  Journal.checkpoint t.journal ~at:(now t) ~snapshot:(Monitor.snapshot monitor);
  let report =
    {
      crashed_at = Option.value ~default:(now t) t.crashed_at;
      detected_at;
      taken_over_at = now t;
      resynced_at = 0.0;
      replayed_entries = recovery.replayed;
      reissued_queries = List.length recovery.open_queries;
      reconciled_records = reconciled;
      generation;
      winner;
    }
  in
  t.takeovers <- report :: t.takeovers;
  t.crashed_at <- None;
  arm_heartbeat t;
  arm_session_guard t;
  arm_resync_watch t report;
  report

let restart t = takeover t ~detected_at:(now t) ~winner:(-1)

(* ---- quorum takeover ----

   Several warm standbys each tail their own lag-bounded replica of
   the primary's journal ([Support.Replica]); every election read —
   staleness, competing claims — goes through the standby's replica
   view, never the primary's memory.  Staleness is judged by the
   freshest {e non-claim} entry the replica holds (claims are standby
   writes and must not mask a dead primary).  A standby that observes
   staleness journals a claim, waits one claim window ([check_period]
   plus the replica delay, so lagging replicas see competing claims)
   for rivals to land, then decides over the {e merge} of every
   non-partitioned standby's replica view: the lowest standby id among
   unexpired claims wins — a replica may lag and still vote and win —
   reconciles its replica to the longest verified chain prefix
   ([Replica.catch_up]) and takes over; losers back off one claim TTL
   so expired claims drain before anyone re-claims.  Two generations
   can never run concurrently: the decision re-checks that no takeover
   happened since the claim (generation guard) and that the service is
   still dead, and a partitioned standby's replica neither receives
   frames nor contributes to the merge, so it can never win an
   election it did not observe. *)

let claim_window t = t.config.check_period +. t.config.replica_delay

let claim_ttl t =
  Float.max t.config.takeover_timeout (2.0 *. t.config.check_period)
  +. t.config.replica_delay

(* Judged from the standby's own replica: a lagging replica sees an
   older tail, so its staleness estimate is conservative (it can only
   over-estimate, never miss a genuinely dead primary). *)
let primary_stale t (s : standby) ~now:now_ =
  match
    Support.Journal.find_newest (Support.Replica.view s.sb_replica) ~f:(fun e ->
        not (String.equal e.tag Journal.claim_tag))
  with
  | None -> false
  | Some e -> now_ -. e.at > t.config.takeover_timeout

(* Standby ids with an unexpired claim, merged over every
   non-partitioned standby's replica view: no single replica needs to
   hold all claims for the election to see them. *)
let claimants t ~now:now_ =
  let ttl = claim_ttl t in
  List.concat_map
    (fun (s : standby) ->
      if s.sb_partitioned then []
      else
        List.filter_map
          (fun (e : Support.Journal.entry) ->
            if String.equal e.tag Journal.claim_tag && now_ -. e.at <= ttl then
              match Journal.decode_entry e with
              | Ok (Journal.Claim { sid }) -> Some sid
              | Ok _ | Error _ -> None
            else None)
          (Support.Journal.entries (Support.Replica.view s.sb_replica)))
    t.standby_pool
  |> List.sort_uniq compare

let standby_tick t (s : standby) () =
  if s.sb_partitioned then true
  else begin
    let now_ = now t in
    let delivered0 = Support.Replica.delivered s.sb_replica in
    Support.Replica.pump s.sb_replica ~now:now_;
    if Service.live t.service then begin
      (* healthy primary (possibly a fresh winner): drop any claim *)
      s.sb_claim <- None;
      true
    end
    else if not (primary_stale t s ~now:now_) then begin
      s.sb_claim <- None;
      true
    end
    else begin
      match s.sb_claim with
      | None ->
        if now_ >= s.sb_next_claim then begin
          Journal.claim t.journal ~at:now_ ~sid:s.sid;
          s.sb_claim <- Some (now_, generation t)
        end;
        true
      | Some (claimed_at, claim_gen) ->
        if now_ -. claimed_at < claim_window t then true
        else if generation t <> claim_gen then begin
          (* someone took over while we waited: rejoin as standby *)
          s.sb_claim <- None;
          true
        end
        else begin
          let lowest = List.fold_left min s.sid (claimants t ~now:now_) in
          s.sb_claim <- None;
          if lowest = s.sid then begin
            (* winner reconciliation: apply every replica frame still
               in transit, so takeover recovers from the longest
               verified chain prefix this standby can reach.  The
               count covers the whole decision tick — a lagging
               replica's backlog drains partly in this tick's pump,
               partly in the explicit catch-up. *)
            ignore (Support.Replica.catch_up s.sb_replica);
            let reconciled =
              Support.Replica.delivered s.sb_replica - delivered0
            in
            ignore (takeover t ~detected_at:claimed_at ~winner:s.sid ~reconciled)
          end
          else s.sb_next_claim <- now_ +. claim_ttl t;
          true
        end
    end
  end

(* Arm standbys [0 .. count-1] (adding to any already armed).  Each
   gets its own watchdog timer; [?phase] staggers their first tick —
   tests use it to randomize which standby observes staleness first.
   Standbys stay armed across takeovers: after a winner recovers, the
   losers (and any healed partitioned standby) keep tailing the
   journal, guarding the new incarnation too. *)
let enable_standbys ?phase t ~count =
  if count < 1 then invalid_arg "Failover.enable_standbys: count must be >= 1";
  let existing = List.length t.standby_pool in
  for sid = existing to count - 1 do
    let sb_replica =
      Support.Replica.create ~max_lag:t.config.replica_lag
        ~delay:t.config.replica_delay
        (Journal.log t.journal)
    in
    let s =
      { sid; sb_replica; sb_partitioned = false; sb_claim = None; sb_next_claim = 0.0 }
    in
    t.standby_pool <- t.standby_pool @ [ s ];
    let delay =
      match phase with
      | Some f -> Float.max 0.0 (f sid)
      | None -> 0.0
    in
    let arm () =
      Netsim.Sim.every (sim t) ~period:t.config.check_period (standby_tick t s)
    in
    if delay > 0.0 then Netsim.Sim.schedule (sim t) ~delay arm else arm ()
  done

let enable_standby t = enable_standbys t ~count:(max 1 t.config.standbys)

let standby_count t = List.length t.standby_pool

let find_standby t ~sid fn_name =
  match List.find_opt (fun s -> s.sid = sid) t.standby_pool with
  | Some s -> s
  | None -> invalid_arg (fn_name ^ ": unknown standby id")

(* A partitioned standby is cut off from the journal wholesale: its
   replica stops receiving frames (in-flight ones are lost), it
   neither observes staleness nor writes claims, and its view is
   excluded from the claim merge until healed. *)
let partition_standby t ~sid =
  let s = find_standby t ~sid "Failover.partition_standby" in
  s.sb_partitioned <- true;
  Support.Replica.partition s.sb_replica

let heal_standby t ~sid =
  let s = find_standby t ~sid "Failover.heal_standby" in
  s.sb_partitioned <- false;
  (* the replica resyncs wholesale; anything it believed before the
     partition is stale *)
  Support.Replica.heal s.sb_replica;
  s.sb_claim <- None

let standby_replica t ~sid =
  (find_standby t ~sid "Failover.standby_replica").sb_replica

let crash t =
  if Service.live t.service then begin
    t.crashed_at <- Some (now t);
    Service.kill t.service;
    Monitor.stop_polling t.monitor;
    Netsim.Net.disconnect t.net (Monitor.conn t.monitor)
  end

let partition t = Netsim.Net.disconnect t.net (Monitor.conn t.monitor)

let start ?journal:existing ?(config = default_config) ~build net =
  if config.heartbeat_period <= 0.0 || config.takeover_timeout <= 0.0
     || config.check_period <= 0.0
  then invalid_arg "Failover.start: periods must be positive";
  if config.standbys < 0 then invalid_arg "Failover.start: standbys must be >= 0";
  let journal =
    match existing with
    | Some j -> j
    | None ->
      Journal.create ~checkpoint_every:config.checkpoint_every
        ~auto_compact:config.auto_compact ()
  in
  let log = Journal.log journal in
  let fresh = Support.Journal.length log = 0 in
  let monitor, service =
    if fresh then build ~journal ~snapshot:None ~prefill:[] ~conn:None
    else begin
      (* Restart from a persisted journal: replay, then attach fresh. *)
      ignore (Support.Journal.begin_generation log ~at:0.0);
      let recovery = Journal.recover log in
      build ~journal ~snapshot:(Some recovery.snapshot)
        ~prefill:(prefill_of_journal log) ~conn:None
    end
  in
  let t =
    {
      net;
      config;
      journal;
      build;
      monitor;
      service;
      crashed_at = None;
      takeovers = [];
      resyncs = 0;
      standby_pool = [];
    }
  in
  (* The log always opens with an image: recovery never has to replay
     from an empty snapshot across the whole history. *)
  Journal.checkpoint journal ~at:(now t) ~snapshot:(Monitor.snapshot monitor);
  arm_heartbeat t;
  arm_session_guard t;
  (* Warm standbys tail the journal from the start; [standbys = 0]
     opts out (tests arm explicitly with their own phasing). *)
  if config.standbys > 0 then enable_standbys t ~count:config.standbys;
  t
