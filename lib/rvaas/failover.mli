(** Crash recovery and warm-standby failover for the RVaaS controller.

    The paper's trust argument hangs on one attested controller; this
    module makes that controller restartable and replaceable without
    widening the attack's blind window unboundedly.  Three layers:

    - a {b heartbeat} keeps the durable {!Journal} fresh (and echoes
      the switches) while the current incarnation lives;
    - a {b session guard} heals partitions of a live controller:
      reconnect, re-install interception, immediate poll sweep,
      retransmit unanswered challenges;
    - {b warm standbys} (one or several) tail the journal and, once it
      goes stale for longer than [takeover_timeout], elect a single
      winner which replays it and takes over under a new generation
      number — re-attaching every switch, re-issuing every in-flight
      query.

    Quorum election: every standby tails its own lag-bounded
    {!Support.Replica} of the journal — election reads (staleness,
    competing claims) go through the standby's replica view, never the
    primary's memory.  A standby that observes staleness journals a
    {!Journal.Claim} entry, waits one claim window ([check_period +
    replica_delay], so lagging replicas see competing claims), then
    decides over the {e merge} of all non-partitioned replica views:
    the lowest claiming standby id wins — a lagging replica can vote
    and win — reconciles its replica to the longest verified chain
    prefix it holds, and takes over.  The journal is the coordination
    medium, so the election leaves an audit trail, and a partitioned
    standby (whose replica receives nothing and is excluded from the
    merge) can never seize a network it cannot observe.  Losers back
    off until the winning claim expires and rejoin as standbys of the
    new incarnation — two generations never run concurrently.

    The blind window (time the network is unwatched) is bounded by
    [takeover_timeout + 2 x check_period] (staleness detection + claim
    window) plus resync latency; experiments E16/E17 measure it. *)

type config = {
  heartbeat_period : float;  (** journal heartbeat + switch echo cadence *)
  takeover_timeout : float;
      (** journal staleness after which a standby declares the primary
          dead *)
  check_period : float;  (** watchdog polling cadence *)
  checkpoint_every : int;  (** snapshot image cadence (journal records) *)
  standbys : int;
      (** warm standbys armed at {!start} (0 = none; arm explicitly
          with {!enable_standbys}) *)
  auto_compact : bool;
      (** bound the journal to [2 x checkpoint_every] entries via
          {!Journal.compact} *)
  replica_lag : int;
      (** record bound on each standby's replica tail: at most this
          many frames queue before eager apply *)
  replica_delay : float;
      (** in-transit delay of replica frames, in simulated seconds;
          frames younger than this stay queued until the next tick *)
}

(** 10ms heartbeats, 50ms takeover, 10ms checks, checkpoint every 64
    records, one standby, no auto-compaction, replica lag 8 records
    with zero delay (replicas catch up fully at every tick). *)
val default_config : config

(** One takeover, as measured by the recovering side. *)
type report = {
  crashed_at : float;  (** when {!crash} was called (or takeover time) *)
  detected_at : float;
      (** when staleness crossed the threshold (the winner's claim
          time; equals takeover time for {!restart}) *)
  taken_over_at : float;  (** when the winner actually rebuilt *)
  mutable resynced_at : float;
      (** when the post-takeover poll sweep had fully drained (0 until
          then) *)
  replayed_entries : int;  (** journal mutations replayed over the image *)
  reissued_queries : int;  (** in-flight queries re-driven *)
  reconciled_records : int;
      (** replica frames the winner applied during pre-takeover
          reconciliation (0 for {!restart} and fully-caught-up
          winners) *)
  generation : int;  (** the new incarnation's generation number *)
  winner : int;  (** standby id that won the election (-1 = {!restart}) *)
}

(** How a controller incarnation is built.  Supplied by the scenario
    layer (it owns directory, geo registry, keys, pool): called with
    the shared journal, the recovered snapshot (or [None] on a fresh
    start), recovered history for the ring, and the existing session
    registration to re-attach over (or [None] to register fresh). *)
type build =
  journal:Journal.t ->
  snapshot:Snapshot.t option ->
  prefill:Monitor.history_entry list ->
  conn:Netsim.Net.conn option ->
  Monitor.t * Service.t

type t

(** [start ?journal ?config ~build net] builds the primary controller,
    arms heartbeat + session guard, and arms [config.standbys] warm
    standbys.  With an existing non-empty [journal] (e.g. decoded from
    a persisted image) the primary is {e restarted}: generation
    bumped, state replayed, switches attached fresh.  A checkpoint is
    imaged immediately so the log never has an imageless prefix.
    @raise Invalid_argument on non-positive periods or negative
    [standbys]. *)
val start : ?journal:Journal.t -> ?config:config -> build:build -> Netsim.Net.t -> t

val monitor : t -> Monitor.t

val service : t -> Service.t

val journal : t -> Journal.t

(** [generation t] is the current incarnation's generation number. *)
val generation : t -> int

(** [crash t] kills the current incarnation: service dead, polling
    stopped, session torn down.  Switch tables keep forwarding
    (fail-standalone); nothing answers queries until a standby takes
    over or {!restart} is called. *)
val crash : t -> unit

(** [partition t] tears the session down {e without} killing the
    controller — the session guard heals it within [check_period]. *)
val partition : t -> unit

(** [restart t] recovers immediately on the same harness (a restarted
    primary): journal replayed, switches re-attached, interception
    re-installed, in-flight queries re-issued.  Returns the takeover
    report. *)
val restart : t -> report

(** [enable_standbys ?phase t ~count] arms standbys [0 .. count-1]
    (idempotent: already-armed ids are kept; a larger [count] adds
    the missing ones).  Each tails the journal every [check_period];
    when the freshest non-claim entry is older than [takeover_timeout]
    and the primary is dead, it journals a claim and enters the
    election.  [?phase sid] delays standby [sid]'s first tick by the
    returned seconds — tests use it to randomize which standby
    observes the staleness first.  Standbys stay armed across
    takeovers, guarding each new incarnation.
    @raise Invalid_argument when [count < 1]. *)
val enable_standbys : ?phase:(int -> float) -> t -> count:int -> unit

(** [enable_standby t] is [enable_standbys t ~count:(max 1
    config.standbys)] — kept as the single-standby entry point (a
    no-op when {!start} already armed them). *)
val enable_standby : t -> unit

(** Number of standbys armed so far. *)
val standby_count : t -> int

(** [partition_standby t ~sid] cuts standby [sid] off from the
    journal: it neither observes staleness nor writes claims until
    {!heal_standby} — and therefore can never win an election while
    partitioned.
    @raise Invalid_argument on an unknown [sid]. *)
val partition_standby : t -> sid:int -> unit

(** [heal_standby t ~sid] reconnects a partitioned standby; its
    replica resyncs wholesale and it rejoins as a standby of whatever
    incarnation now runs (any pre-partition claim is discarded). *)
val heal_standby : t -> sid:int -> unit

(** [standby_replica t ~sid] is standby [sid]'s replica tail — tests
    inspect lag, queue depth and resync counts through it.
    @raise Invalid_argument on an unknown [sid]. *)
val standby_replica : t -> sid:int -> Support.Replica.t

(** [takeovers t] lists takeover reports, oldest first. *)
val takeovers : t -> report list

(** [last_takeover t] is the most recent takeover report, if any. *)
val last_takeover : t -> report option

(** [resyncs t] counts partition healings by the session guard. *)
val resyncs : t -> int
