(** Crash recovery and warm-standby failover for the RVaaS controller.

    The paper's trust argument hangs on one attested controller; this
    module makes that controller restartable and replaceable without
    widening the attack's blind window unboundedly.  Three layers:

    - a {b heartbeat} keeps the durable {!Journal} fresh (and echoes
      the switches) while the current incarnation lives;
    - a {b session guard} heals partitions of a live controller:
      reconnect, re-install interception, immediate poll sweep,
      retransmit unanswered challenges;
    - a {b warm standby} tails the journal and, once it goes stale for
      longer than [takeover_timeout], replays it and takes over under
      a new generation number — re-attaching every switch, re-issuing
      every in-flight query.

    The blind window (time the network is unwatched) is bounded by
    [takeover_timeout + check_period] plus resync latency; experiment
    E16 measures it. *)

type config = {
  heartbeat_period : float;  (** journal heartbeat + switch echo cadence *)
  takeover_timeout : float;
      (** journal staleness after which a standby declares the primary
          dead *)
  check_period : float;  (** watchdog polling cadence *)
  checkpoint_every : int;  (** snapshot image cadence (journal records) *)
}

(** 10ms heartbeats, 50ms takeover, 10ms checks, checkpoint every 64
    records. *)
val default_config : config

(** One takeover, as measured by the recovering side. *)
type report = {
  crashed_at : float;  (** when {!crash} was called (or takeover time) *)
  detected_at : float;  (** when staleness crossed the threshold *)
  mutable resynced_at : float;
      (** when the post-takeover poll sweep had fully drained (0 until
          then) *)
  replayed_entries : int;  (** journal mutations replayed over the image *)
  reissued_queries : int;  (** in-flight queries re-driven *)
  generation : int;  (** the new incarnation's generation number *)
}

(** How a controller incarnation is built.  Supplied by the scenario
    layer (it owns directory, geo registry, keys, pool): called with
    the shared journal, the recovered snapshot (or [None] on a fresh
    start), recovered history for the ring, and the existing session
    registration to re-attach over (or [None] to register fresh). *)
type build =
  journal:Journal.t ->
  snapshot:Snapshot.t option ->
  prefill:Monitor.history_entry list ->
  conn:Netsim.Net.conn option ->
  Monitor.t * Service.t

type t

(** [start ?journal ?config ~build net] builds the primary controller
    and arms heartbeat + session guard.  With an existing non-empty
    [journal] (e.g. decoded from a persisted image) the primary is
    {e restarted}: generation bumped, state replayed, switches
    attached fresh.  A checkpoint is imaged immediately so the log
    never has an imageless prefix.
    @raise Invalid_argument on non-positive periods. *)
val start : ?journal:Journal.t -> ?config:config -> build:build -> Netsim.Net.t -> t

val monitor : t -> Monitor.t

val service : t -> Service.t

val journal : t -> Journal.t

(** [generation t] is the current incarnation's generation number. *)
val generation : t -> int

(** [crash t] kills the current incarnation: service dead, polling
    stopped, session torn down.  Switch tables keep forwarding
    (fail-standalone); nothing answers queries until a standby takes
    over or {!restart} is called. *)
val crash : t -> unit

(** [partition t] tears the session down {e without} killing the
    controller — the session guard heals it within [check_period]. *)
val partition : t -> unit

(** [restart t] recovers immediately on the same harness (a restarted
    primary): journal replayed, switches re-attached, interception
    re-installed, in-flight queries re-issued.  Returns the takeover
    report. *)
val restart : t -> report

(** [enable_standby t] arms the warm standby.  It tails the journal
    every [check_period]; when the newest entry is older than
    [takeover_timeout] and the primary is dead, it takes over (once —
    re-arm after the next crash if desired). *)
val enable_standby : t -> unit

(** [takeovers t] lists takeover reports, oldest first. *)
val takeovers : t -> report list

(** [last_takeover t] is the most recent takeover report, if any. *)
val last_takeover : t -> report option

(** [resyncs t] counts partition healings by the session guard. *)
val resyncs : t -> int
