type domain = {
  name : string;
  member : int -> bool;
  flows_of : int -> Ofproto.Flow_entry.spec list;
  geo : Geo.Registry.t;
  keypair : Cryptosim.Keys.keypair;
}

type domain_state = {
  domain : domain;
  ctx : Verifier.ctx;
  plumbing : Plumbing.t option; (* compiled engine, [`Compiled] only *)
  trusted : (string, Cryptosim.Keys.public) Hashtbl.t; (* peer name -> key *)
}

type t = {
  topo : Netsim.Topology.t;
  engine : Plumbing.engine;
  domains : (string * domain_state) list;
}

let create ?(engine : Plumbing.engine = `Sweep) topo domains =
  (match domains with [] -> invalid_arg "Federation.create: no domains" | _ -> ());
  List.iter
    (fun sw ->
      let owners = List.filter (fun d -> d.member sw) domains in
      match owners with
      | [ _ ] -> ()
      | [] ->
        invalid_arg
          (Printf.sprintf "Federation.create: switch %d belongs to no domain" sw)
      | _ :: _ ->
        invalid_arg
          (Printf.sprintf "Federation.create: switch %d belongs to several domains" sw))
    (Netsim.Topology.switches topo);
  let states =
    List.map
      (fun domain ->
        let trusted = Hashtbl.create 8 in
        List.iter
          (fun peer ->
            if peer.name <> domain.name then
              Hashtbl.replace trusted peer.name (Cryptosim.Keys.public peer.keypair))
          domains;
        let plumbing =
          match engine with
          | `Sweep -> None
          | `Compiled ->
            (* Per-domain graph, bounded to the domain's members so
               cross-domain arrivals surface as handoffs. *)
            Some
              (Plumbing.compile ~boundary:domain.member
                 ~flows_of:domain.flows_of topo)
        in
        ( domain.name,
          {
            domain;
            ctx = Verifier.context ~flows_of:domain.flows_of topo;
            plumbing;
            trusted;
          } ))
      domains;
  in
  { topo; engine; domains = states }

let engine t = t.engine
let state t name = List.assoc_opt name t.domains

let trust t ~of_domain ~peer ~public =
  match state t of_domain with
  | None -> invalid_arg "Federation.trust: unknown domain"
  | Some st -> Hashtbl.replace st.trusted peer public

let distrust t ~of_domain ~peer =
  match state t of_domain with
  | None -> invalid_arg "Federation.distrust: unknown domain"
  | Some st -> Hashtbl.remove st.trusted peer

let domain_of t ~sw =
  List.find_map
    (fun (name, st) -> if st.domain.member sw then Some name else None)
    t.domains

(* Reach passes are bounded to domain members, so only the owning
   domain's guard cache can hold entries for [sw]. *)
let invalidate_switch t ~sw =
  List.iter
    (fun (_, st) ->
      if st.domain.member sw then begin
        Verifier.invalidate_switch st.ctx ~sw;
        match st.plumbing with
        | Some plumbing -> Plumbing.update plumbing ~sw
        | None -> ()
      end)
    t.domains

type result = {
  endpoints : (Verifier.endpoint * Hspace.Hs.t) list;
  jurisdictions : string list;
  domains_traversed : string list;
  sub_queries : int;
  untrusted_domains : string list;
}

(* A sub-answer as exchanged between provider servers: serialised and
   signed by the answering domain so the requesting server can verify
   authenticity (the "extended trust assumptions" of §IV-C.a). *)
type sub_answer = {
  sa_domain : string;
  sa_endpoints : (Verifier.endpoint * Hspace.Hs.t) list;
  sa_jurisdictions : string list;
  sa_handoffs : (int * int * Hspace.Hs.t) list;
}

let serialise_sub_answer sa =
  let endpoint_line ((ep : Verifier.endpoint), hs) =
    Printf.sprintf "ep:%d,%d,%d,%d" ep.host ep.sw ep.port (Hspace.Hs.cube_count hs)
  in
  let handoff_line (sw, port, hs) =
    Printf.sprintf "ho:%d,%d,%d" sw port (Hspace.Hs.cube_count hs)
  in
  String.concat "\n"
    ((("domain:" ^ sa.sa_domain) :: List.map endpoint_line sa.sa_endpoints)
    @ List.map (fun j -> "jur:" ^ j) sa.sa_jurisdictions
    @ List.map handoff_line sa.sa_handoffs)

(* Evaluate a sub-query inside one domain: local reachability bounded
   to the domain's members. *)
let sub_answer_of_result st (r : Verifier.reach_result) =
  {
    sa_domain = st.domain.name;
    sa_endpoints = r.Verifier.endpoints;
    sa_jurisdictions =
      Geo.Registry.jurisdictions_of st.domain.geo ~sws:r.Verifier.traversed;
    sa_handoffs = r.Verifier.handoffs;
  }

let local_answer_with ctx st ~src_sw ~src_port ~hs =
  sub_answer_of_result st
    (Verifier.reach_in ctx ~boundary:st.domain.member ~src_sw ~src_port ~hs)

let local_answer st ~src_sw ~src_port ~hs =
  match st.plumbing with
  | Some plumbing ->
    sub_answer_of_result st (Plumbing.reach plumbing ~src_sw ~src_port ~hs)
  | None -> local_answer_with st.ctx st ~src_sw ~src_port ~hs

let reach ?pool ?deadline t ~start_domain ~src_sw ~src_port ~hs =
  (match deadline with
  | Some d when d <= 0.0 -> invalid_arg "Federation.reach: deadline must be positive"
  | Some _ | None -> ());
  let start =
    match state t start_domain with
    | Some st -> st
    | None -> invalid_arg "Federation.reach: unknown start domain"
  in
  if not (start.domain.member src_sw) then
    invalid_arg "Federation.reach: source switch outside the start domain";
  (* Worklist of (domain, entry sw, entry port, hs); visited handoffs
     deduplicated per (domain, sw, port) with header-space accumulation
     so cross-domain loops terminate, mirroring the intra-domain
     seen-set. *)
  let seen : (string * int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let endpoints : (Verifier.endpoint, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let jurisdictions = ref [] in
  let traversed = ref [] in
  let untrusted = ref [] in
  let sub_queries = ref 0 in
  let width = Hspace.Field.total_width in
  let queue = Queue.create () in
  let enqueue domain_name sw port hs =
    if not (Hspace.Hs.is_empty hs) then begin
      let key = (domain_name, sw, port) in
      let old = Option.value ~default:(Hspace.Hs.empty width) (Hashtbl.find_opt seen key) in
      let fresh = Hspace.Hs.diff hs old in
      if not (Hspace.Hs.is_empty fresh) then begin
        Hashtbl.replace seen key (Hspace.Hs.union old fresh);
        Queue.add (domain_name, sw, port, fresh) queue
      end
    end
  in
  enqueue start_domain src_sw src_port hs;
  (* Each round drains the current frontier: every queued sub-query is
     already deduplicated against [seen] at enqueue time, so the items
     are independent and their reach passes can run in parallel.  The
     merge (signature checks, accumulation, enqueueing the next
     frontier) stays sequential, which keeps the result bit-identical
     to a fully sequential run.  Compiled domains always evaluate
     sequentially: a plumbing graph compiles sources lazily (mutating
     its tables) and a per-query lookup is cheap anyway. *)
  let evaluate_round batch =
    match pool with
    | Some p
      when Support.Pool.size p > 1
           && Array.length batch > 1
           && t.engine = `Sweep ->
      let parmap ~init ~f xs =
        match deadline with
        | Some deadline -> Support.Pool.parmap_supervised p ~deadline ~init ~f xs
        | None -> Support.Pool.parmap_init p ~init ~f xs
      in
      parmap
        ~init:(fun () -> Hashtbl.create 4)
        ~f:(fun ctxs (domain_name, sw, port, hs) ->
          match state t domain_name with
          | None -> None
          | Some st ->
            (* Per-worker, per-domain contexts: the shared [st.ctx]
               guard cache is not safe to mutate from several domains. *)
            let ctx =
              match Hashtbl.find_opt ctxs domain_name with
              | Some ctx -> ctx
              | None ->
                let ctx = Verifier.context ~flows_of:st.domain.flows_of t.topo in
                Hashtbl.replace ctxs domain_name ctx;
                ctx
            in
            Some (local_answer_with ctx st ~src_sw:sw ~src_port:port ~hs))
        batch
    | Some _ | None ->
      Array.map
        (fun (domain_name, sw, port, hs) ->
          match state t domain_name with
          | None -> None
          | Some st -> Some (local_answer st ~src_sw:sw ~src_port:port ~hs))
        batch
  in
  while not (Queue.is_empty queue) do
    let batch = Array.of_seq (Queue.to_seq queue) in
    Queue.clear queue;
    let answers = evaluate_round batch in
    Array.iteri
      (fun i (domain_name, _, _, _) ->
        match answers.(i) with
        | None -> () (* unreachable: handoffs always map to a domain *)
        | Some answer ->
          let st = Option.get (state t domain_name) in
          let is_home = domain_name = start_domain in
          if not is_home then incr sub_queries;
          (* Peer sub-answers travel signed; the home server verifies
             the signature against its trust store before merging. *)
          let accepted =
            if is_home then true
            else begin
              let body = serialise_sub_answer answer in
              let signature = Cryptosim.Keys.sign st.domain.keypair body in
              match Hashtbl.find_opt start.trusted domain_name with
              | None -> false
              | Some public -> Cryptosim.Keys.verify ~public body ~signature
            end
          in
          if not accepted then begin
            if not (List.mem domain_name !untrusted) then
              untrusted := domain_name :: !untrusted
          end
          else begin
            if not (List.mem domain_name !traversed) then
              traversed := domain_name :: !traversed;
            List.iter
              (fun (ep, arriving) ->
                let old =
                  Option.value ~default:(Hspace.Hs.empty width)
                    (Hashtbl.find_opt endpoints ep)
                in
                Hashtbl.replace endpoints ep (Hspace.Hs.union old arriving))
              answer.sa_endpoints;
            List.iter
              (fun j ->
                if not (List.mem j !jurisdictions) then jurisdictions := j :: !jurisdictions)
              answer.sa_jurisdictions;
            List.iter
              (fun (next_sw, next_port, out) ->
                match domain_of t ~sw:next_sw with
                | None -> ()
                | Some next_domain -> enqueue next_domain next_sw next_port out)
              answer.sa_handoffs
          end)
      batch
  done;
  {
    endpoints =
      Hashtbl.fold (fun ep hs acc -> (ep, hs) :: acc) endpoints []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    jurisdictions = List.sort String.compare !jurisdictions;
    domains_traversed = List.sort String.compare !traversed;
    sub_queries = !sub_queries;
    untrusted_domains = List.sort String.compare !untrusted;
  }
