(** Multi-provider federation (paper §IV-C.a).

    "While we have described our architecture for a single-provider
    setting, in principle, our approach can also be used across multiple
    providers.  In this case, queries need to be propagated between the
    RVaaS servers of the respective providers.  Clearly, the trust
    assumptions then need to be extended accordingly, to those servers
    as well."

    A federation partitions the switches of an internetwork into
    domains, each with its own configuration view (its provider's RVaaS
    instance only monitors its own switches) and its own signing key.
    A federated query starts in the client's home domain; whenever the
    local reachability analysis shows traffic leaving through a peering
    link, a signed sub-query is sent to the neighbouring domain's
    server, which answers with a signed sub-answer — recursively, until
    no new handoffs appear.  Sub-answers from domains whose key is not
    in the trust store are rejected and surfaced as
    [untrusted_domains]. *)

type domain = {
  name : string;
  member : int -> bool;  (** which switches belong to this domain *)
  flows_of : int -> Ofproto.Flow_entry.spec list;
      (** this domain's configuration view (e.g. its monitor snapshot) *)
  geo : Geo.Registry.t;  (** this domain's location registry *)
  keypair : Cryptosim.Keys.keypair;  (** signs its sub-answers *)
}

type t

(** [create topo domains] builds a federation over a shared
    internetwork wiring plan.  Every switch must belong to exactly one
    domain.  [engine] (default [`Sweep]) selects each domain's local
    verification engine: [`Compiled] gives every domain a {!Plumbing}
    graph bounded to its members (cross-domain arrivals surface as
    handoffs exactly as with the bounded sweep), kept current through
    {!invalidate_switch}.  @raise Invalid_argument otherwise. *)
val create : ?engine:Plumbing.engine -> Netsim.Topology.t -> domain list -> t

(** [engine t] is the local engine selected at {!create}. *)
val engine : t -> Plumbing.engine

(** [trust t ~of_domain ~peer ~public] records that [of_domain]'s
    servers accept sub-answers from [peer] signed by [public].  By
    default each domain trusts every other domain in [create]'s list;
    use {!distrust} to remove one. *)
val trust : t -> of_domain:string -> peer:string -> public:Cryptosim.Keys.public -> unit

(** [distrust t ~of_domain ~peer] removes [peer]'s key from
    [of_domain]'s trust store. *)
val distrust : t -> of_domain:string -> peer:string -> unit

type result = {
  endpoints : (Verifier.endpoint * Hspace.Hs.t) list;
      (** global endpoint set, merged across domains *)
  jurisdictions : string list;
      (** union of jurisdictions traversed in every answering domain *)
  domains_traversed : string list;
  sub_queries : int;  (** inter-provider sub-queries issued *)
  untrusted_domains : string list;
      (** domains whose (signed) sub-answers failed verification and
          were discarded *)
}

(** [reach ?pool t ~start_domain ~src_sw ~src_port ~hs] runs the
    federated reachability query.  When [pool] is given (size > 1),
    each frontier of sub-queries is evaluated in parallel across the
    pool — sub-queries to different domains are independent — with
    per-worker verification contexts; signature checks and answer
    merging stay sequential, so the result is identical to a
    sequential run.  Domains' [flows_of] must then be safe to call
    concurrently (pure reads).  [deadline] (seconds, requires [pool])
    runs each frontier supervised: a raising or wedged worker costs one
    sequential retry instead of stalling the federated query.  Under
    [engine:`Compiled] frontiers evaluate sequentially regardless of
    [pool] (compiled lookups are cheap; the graphs mutate lazily).
    @raise Invalid_argument when [start_domain] is unknown, [src_sw] is
    not one of its members, or [deadline <= 0]. *)
val reach :
  ?pool:Support.Pool.t ->
  ?deadline:float ->
  t ->
  start_domain:string ->
  src_sw:int ->
  src_port:int ->
  hs:Hspace.Hs.t ->
  result

(** [domain_of t ~sw] names the domain owning [sw]. *)
val domain_of : t -> sw:int -> string option

(** [invalidate_switch t ~sw] drops the owning domain's cached rule
    guards for [sw] and, under [engine:`Compiled], applies the
    incremental delta to the owning domain's plumbing graph.  Call it
    when that domain's configuration view of [sw] changes; other
    domains' contexts never read [sw]'s table (reach passes are bounded
    to domain members) and are left intact.  A no-op when no domain
    owns [sw]. *)
val invalidate_switch : t -> sw:int -> unit
