type limits = { rate : float; burst : float }

type config = {
  limits : limits option;
  coalesce : bool;
  batch_window : float;
}

let default_config = { limits = None; coalesce = false; batch_window = 0.0 }

let coalescing ?limits ?(batch_window = 0.0) () =
  { limits; coalesce = true; batch_window }

(* The coalescing key mirrors [Reach_cache.key] (injection point plus
   a structural scope hash) extended with the query kind and, for the
   kinds whose evaluation reads the requesting tenant, the client.
   All-int record: structural Hashtbl hashing/equality is exact. *)
type key = {
  k_kind : int;
  k_dst : int;  (* Path_length destination, 0 otherwise *)
  k_client : int;  (* -1 for client-independent kinds *)
  k_sw : int;
  k_port : int;
  k_hs : int;
}

let key_of ~client ~sw ~port (query : Query.t) =
  let scope_hash () =
    match query.scope with None -> 0 | Some hs -> Hspace.Hs.hash hs
  in
  let k_kind, k_dst, k_client, k_hs =
    match query.kind with
    | Query.Reachable_endpoints -> (0, 0, -1, scope_hash ())
    | Query.Sources_reaching_me -> (1, 0, client, scope_hash ())
    (* Isolation and Fairness ignore their scope at evaluation; hashing
       it would only split identical questions. *)
    | Query.Isolation -> (2, 0, client, 0)
    | Query.Geo -> (3, 0, -1, scope_hash ())
    | Query.Path_length { dst_ip } -> (4, dst_ip, -1, scope_hash ())
    | Query.Fairness -> (5, 0, client, 0)
    | Query.Transfer_summary -> (6, 0, -1, scope_hash ())
  in
  { k_kind; k_dst; k_client; k_sw = sw; k_port = port; k_hs }

type 'w entry = {
  e_key : key;
  e_client : int;
  e_sw : int;
  e_port : int;
  e_query : Query.t;
  mutable e_waiters : 'w list;
}

type stats = {
  mutable admitted : int;
  mutable throttled : int;
  mutable coalesced : int;
  mutable entries : int;
  mutable batches : int;
  mutable batched : int;
  mutable batch_fallbacks : int;
  mutable flushes : int;
}

type bucket = { mutable tokens : float; mutable refilled_at : float }

type 'w t = {
  cfg : config;
  buckets : (int, bucket) Hashtbl.t;
  queue : 'w entry Queue.t;  (* arrival order, drained whole at flush *)
  by_key : (key, 'w entry) Hashtbl.t;  (* queued entries, for coalescing *)
  stats : stats;
}

let create cfg =
  (match cfg.limits with
  | Some { rate; burst } ->
    if rate <= 0.0 then invalid_arg "Frontend.create: limits.rate must be positive";
    if burst < 1.0 then invalid_arg "Frontend.create: limits.burst must be >= 1"
  | None -> ());
  if cfg.batch_window < 0.0 then
    invalid_arg "Frontend.create: negative batch_window";
  {
    cfg;
    buckets = Hashtbl.create 16;
    queue = Queue.create ();
    by_key = Hashtbl.create 16;
    stats =
      {
        admitted = 0;
        throttled = 0;
        coalesced = 0;
        entries = 0;
        batches = 0;
        batched = 0;
        batch_fallbacks = 0;
        flushes = 0;
      };
  }

let config t = t.cfg

let stats t = t.stats

let coalesce_rate t =
  if t.stats.admitted = 0 then 0.0
  else float_of_int t.stats.coalesced /. float_of_int t.stats.admitted

let admit t ~client ~now =
  match t.cfg.limits with
  | None ->
    t.stats.admitted <- t.stats.admitted + 1;
    true
  | Some { rate; burst } ->
    let b =
      match Hashtbl.find_opt t.buckets client with
      | Some b -> b
      | None ->
        (* A client's first query always passes: fresh buckets start
           full, so admission only bites sustained over-rate use. *)
        let b = { tokens = burst; refilled_at = now } in
        Hashtbl.replace t.buckets client b;
        b
    in
    let elapsed = Float.max 0.0 (now -. b.refilled_at) in
    b.tokens <- Float.min burst (b.tokens +. (rate *. elapsed));
    b.refilled_at <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      t.stats.admitted <- t.stats.admitted + 1;
      true
    end
    else begin
      t.stats.throttled <- t.stats.throttled + 1;
      false
    end

let note_coalesced t = t.stats.coalesced <- t.stats.coalesced + 1

let note_fallback t n =
  t.stats.batch_fallbacks <- t.stats.batch_fallbacks + n;
  t.stats.batches <- t.stats.batches - 1;
  t.stats.batched <- t.stats.batched - n

let submit t ~key ~client ~sw ~port query ~waiter =
  match if t.cfg.coalesce then Hashtbl.find_opt t.by_key key else None with
  | Some entry ->
    entry.e_waiters <- waiter :: entry.e_waiters;
    t.stats.coalesced <- t.stats.coalesced + 1;
    `Coalesced
  | None ->
    let first = Queue.is_empty t.queue in
    let entry =
      {
        e_key = key;
        e_client = client;
        e_sw = sw;
        e_port = port;
        e_query = query;
        e_waiters = [ waiter ];
      }
    in
    Queue.add entry t.queue;
    if t.cfg.coalesce then Hashtbl.replace t.by_key key entry;
    `Queued (if first then `First else `Later)

let queued t = Queue.length t.queue

let batchable (q : Query.t) =
  (* Only [Reachable_endpoints] pools soundly and profitably: Geo
     needs the per-query traversed set, Path_length the per-query
     sample paths, Transfer_summary the per-query arrival spaces
     (whose normal forms a union split would not reproduce byte for
     byte), and the client-dependent kinds are per-tenant anyway. *)
  match q.kind with Query.Reachable_endpoints -> true | _ -> false

let flush t =
  if Queue.is_empty t.queue then []
  else begin
    t.stats.flushes <- t.stats.flushes + 1;
    (* Drain in arrival order, pooling batchable entries that share an
       injection point into the group opened by their first arrival. *)
    let groups : 'w entry list ref list ref = ref [] in
    let pools : (int * int, 'w entry list ref) Hashtbl.t = Hashtbl.create 8 in
    Queue.iter
      (fun e ->
        t.stats.entries <- t.stats.entries + 1;
        if t.cfg.coalesce then Hashtbl.remove t.by_key e.e_key;
        if batchable e.e_query then begin
          let point = (e.e_sw, e.e_port) in
          match Hashtbl.find_opt pools point with
          | Some cell -> cell := e :: !cell
          | None ->
            let cell = ref [ e ] in
            Hashtbl.replace pools point cell;
            groups := cell :: !groups
        end
        else groups := ref [ e ] :: !groups)
      t.queue;
    Queue.clear t.queue;
    List.rev_map
      (fun cell ->
        let group = List.rev !cell in
        (match group with
        | _ :: _ :: _ ->
          t.stats.batches <- t.stats.batches + 1;
          t.stats.batched <- t.stats.batched + List.length group
        | _ -> ());
        group)
      !groups
  end
