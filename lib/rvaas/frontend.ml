type limits = { rate : float; burst : float }

type config = {
  limits : limits option;
  coalesce : bool;
  batch_window : float;
  subsume : bool;
}

let default_config =
  { limits = None; coalesce = false; batch_window = 0.0; subsume = false }

let coalescing ?limits ?(batch_window = 0.0) ?(subsume = false) () =
  { limits; coalesce = true; batch_window; subsume }

(* The coalescing key mirrors [Reach_cache.key] (injection point plus
   a structural scope hash) extended with the query kind and, for the
   kinds whose evaluation reads the requesting tenant, the client.
   All-int record: structural Hashtbl hashing/equality is exact. *)
type key = {
  k_kind : int;
  k_dst : int;  (* Path_length destination, 0 otherwise *)
  k_client : int;  (* -1 for client-independent kinds *)
  k_sw : int;
  k_port : int;
  k_hs : int;
}

let key_of ~client ~sw ~port (query : Query.t) =
  let scope_hash () =
    match query.scope with None -> 0 | Some hs -> Hspace.Hs.hash hs
  in
  let k_kind, k_dst, k_client, k_hs =
    match query.kind with
    | Query.Reachable_endpoints -> (0, 0, -1, scope_hash ())
    | Query.Sources_reaching_me -> (1, 0, client, scope_hash ())
    (* Isolation and Fairness ignore their scope at evaluation; hashing
       it would only split identical questions. *)
    | Query.Isolation -> (2, 0, client, 0)
    | Query.Geo -> (3, 0, -1, scope_hash ())
    | Query.Path_length { dst_ip } -> (4, dst_ip, -1, scope_hash ())
    | Query.Fairness -> (5, 0, client, 0)
    | Query.Transfer_summary -> (6, 0, -1, scope_hash ())
  in
  { k_kind; k_dst; k_client; k_sw = sw; k_port = port; k_hs }

(* A narrower query riding a broader computation: answered at the
   subsumer's finalize by intersecting its arrival spaces with
   [sl_scope].  Waiters are newest-first, like [e_waiters]. *)
type 'w slice = {
  sl_key : key;
  sl_scope : Hspace.Hs.t;  (* effective scope of the sliced query *)
  sl_query : Query.t;
  mutable sl_waiters : 'w list;
}

type 'w entry = {
  e_key : key;
  e_client : int;
  e_sw : int;
  e_port : int;
  e_query : Query.t;
  e_scope : Hspace.Hs.t option;
      (* effective scope, supplied by the service for batchable kinds;
         the containment checks of subsumption run on it *)
  mutable e_waiters : 'w list;
  mutable e_slices : 'w slice list;
}

type stats = {
  mutable admitted : int;
  mutable throttled : int;
  mutable coalesced : int;
  mutable subsumed : int;
  mutable entries : int;
  mutable batches : int;
  mutable batched : int;
  mutable batch_fallbacks : int;
  mutable slice_fallbacks : int;
  mutable flushes : int;
}

type bucket = { mutable tokens : float; mutable refilled_at : float }

type 'w t = {
  cfg : config;
  buckets : (int, bucket) Hashtbl.t;
  queue : 'w entry Queue.t;  (* arrival order, drained whole at flush *)
  by_key : (key, 'w entry) Hashtbl.t;  (* queued entries, for coalescing *)
  by_point : (int * int, 'w entry list ref) Hashtbl.t;
      (* queued batchable entries per injection point (newest first),
         the subsumption scan's index; cleared with the queue *)
  stats : stats;
}

let create cfg =
  (match cfg.limits with
  | Some { rate; burst } ->
    if rate <= 0.0 then invalid_arg "Frontend.create: limits.rate must be positive";
    if burst < 1.0 then invalid_arg "Frontend.create: limits.burst must be >= 1"
  | None -> ());
  if cfg.batch_window < 0.0 then
    invalid_arg "Frontend.create: negative batch_window";
  {
    cfg;
    buckets = Hashtbl.create 16;
    queue = Queue.create ();
    by_key = Hashtbl.create 16;
    by_point = Hashtbl.create 16;
    stats =
      {
        admitted = 0;
        throttled = 0;
        coalesced = 0;
        subsumed = 0;
        entries = 0;
        batches = 0;
        batched = 0;
        batch_fallbacks = 0;
        slice_fallbacks = 0;
        flushes = 0;
      };
  }

let config t = t.cfg

let stats t = t.stats

let coalesce_rate t =
  if t.stats.admitted = 0 then 0.0
  else float_of_int t.stats.coalesced /. float_of_int t.stats.admitted

let subsume_rate t =
  if t.stats.admitted = 0 then 0.0
  else float_of_int t.stats.subsumed /. float_of_int t.stats.admitted

let admit t ~client ~now =
  match t.cfg.limits with
  | None ->
    t.stats.admitted <- t.stats.admitted + 1;
    true
  | Some { rate; burst } ->
    let b =
      match Hashtbl.find_opt t.buckets client with
      | Some b -> b
      | None ->
        (* A client's first query always passes: fresh buckets start
           full, so admission only bites sustained over-rate use. *)
        let b = { tokens = burst; refilled_at = now } in
        Hashtbl.replace t.buckets client b;
        b
    in
    let elapsed = Float.max 0.0 (now -. b.refilled_at) in
    b.tokens <- Float.min burst (b.tokens +. (rate *. elapsed));
    b.refilled_at <- now;
    if b.tokens >= 1.0 then begin
      b.tokens <- b.tokens -. 1.0;
      t.stats.admitted <- t.stats.admitted + 1;
      true
    end
    else begin
      t.stats.throttled <- t.stats.throttled + 1;
      false
    end

let note_coalesced t = t.stats.coalesced <- t.stats.coalesced + 1

let note_subsumed t = t.stats.subsumed <- t.stats.subsumed + 1

let note_fallback t n =
  t.stats.batch_fallbacks <- t.stats.batch_fallbacks + n;
  t.stats.batches <- t.stats.batches - 1;
  t.stats.batched <- t.stats.batched - n

let note_slice_fallback t n = t.stats.slice_fallbacks <- t.stats.slice_fallbacks + n

let batchable (q : Query.t) =
  (* Only [Reachable_endpoints] pools soundly and profitably: Geo
     needs the per-query traversed set, Path_length the per-query
     sample paths, Transfer_summary the per-query arrival spaces
     (whose normal forms a union split would not reproduce byte for
     byte), and the client-dependent kinds are per-tenant anyway. *)
  match q.kind with Query.Reachable_endpoints -> true | _ -> false

(* Attach a query to a queued container entry as a slice waiter:
   queries identical to an existing slice share it, new scopes open a
   fresh one.  Every attach counts in [subsumed]. *)
let attach_slice t (entry : 'w entry) ~key ~scope query ~waiter =
  (match List.find_opt (fun sl -> sl.sl_key = key) entry.e_slices with
  | Some sl -> sl.sl_waiters <- waiter :: sl.sl_waiters
  | None ->
    entry.e_slices <-
      { sl_key = key; sl_scope = scope; sl_query = query; sl_waiters = [ waiter ] }
      :: entry.e_slices);
  t.stats.subsumed <- t.stats.subsumed + 1

let submit t ~key ?scope ~client ~sw ~port query ~waiter =
  match if t.cfg.coalesce then Hashtbl.find_opt t.by_key key else None with
  | Some entry ->
    entry.e_waiters <- waiter :: entry.e_waiters;
    t.stats.coalesced <- t.stats.coalesced + 1;
    `Coalesced
  | None -> (
    let container =
      match (t.cfg.subsume, scope) with
      | true, Some s when batchable query -> (
        match Hashtbl.find_opt t.by_point (sw, port) with
        | None -> None
        | Some cell ->
          List.find_opt
            (fun e ->
              match e.e_scope with
              | Some s' -> Hspace.Hs.subset s s'
              | None -> false)
            !cell)
      | _ -> None
    in
    match container with
    | Some entry ->
      attach_slice t entry ~key ~scope:(Option.get scope) query ~waiter;
      `Subsumed
    | None ->
      let first = Queue.is_empty t.queue in
      let entry =
        {
          e_key = key;
          e_client = client;
          e_sw = sw;
          e_port = port;
          e_query = query;
          e_scope = (if batchable query then scope else None);
          e_waiters = [ waiter ];
          e_slices = [];
        }
      in
      Queue.add entry t.queue;
      if t.cfg.coalesce then Hashtbl.replace t.by_key key entry;
      if t.cfg.subsume && entry.e_scope <> None then begin
        match Hashtbl.find_opt t.by_point (sw, port) with
        | Some cell -> cell := entry :: !cell
        | None -> Hashtbl.replace t.by_point (sw, port) (ref [ entry ])
      end;
      `Queued (if first then `First else `Later))

let queued t = Queue.length t.queue

(* Flush-time subsumption: within one pooled group, entries whose
   scope is contained in another member's fold into that member as
   slices — the narrow-before-broad arrival order [submit]'s forward
   scan cannot catch.  "[j] absorbs [i]" is a strict partial order
   (strict containment, arrival order breaking equal-scope ties), so
   the kept entries are its maximal elements and, containment being
   transitive, each folded entry finds a direct container among
   them. *)
let fold_group t group =
  match group with
  | ([] | [ _ ]) -> group
  | _ when not t.cfg.subsume -> group
  | es ->
    let arr = Array.of_list es in
    let n = Array.length arr in
    let absorbs j i =
      i <> j
      &&
      match (arr.(i).e_scope, arr.(j).e_scope) with
      | Some si, Some sj ->
        Hspace.Hs.subset si sj && ((not (Hspace.Hs.subset sj si)) || j < i)
      | _ -> false
    in
    let folded =
      Array.init n (fun i ->
          let rec any j = j < n && (absorbs j i || any (j + 1)) in
          any 0)
    in
    let kept = ref [] in
    for i = n - 1 downto 0 do
      if not folded.(i) then kept := i :: !kept
    done;
    Array.iteri
      (fun i e ->
        if folded.(i) then begin
          let j = List.find (fun j -> absorbs j i) !kept in
          let c = arr.(j) in
          c.e_slices <-
            c.e_slices
            @ {
                sl_key = e.e_key;
                sl_scope = Option.get e.e_scope;
                sl_query = e.e_query;
                sl_waiters = e.e_waiters;
              }
              :: e.e_slices;
          t.stats.subsumed <- t.stats.subsumed + List.length e.e_waiters
        end)
      arr;
    List.map (fun i -> arr.(i)) !kept

let flush t =
  if Queue.is_empty t.queue then []
  else begin
    t.stats.flushes <- t.stats.flushes + 1;
    (* Drain in arrival order, pooling batchable entries that share an
       injection point into the group opened by their first arrival. *)
    let groups : 'w entry list ref list ref = ref [] in
    let pools : (int * int, 'w entry list ref) Hashtbl.t = Hashtbl.create 8 in
    Queue.iter
      (fun e ->
        if t.cfg.coalesce then Hashtbl.remove t.by_key e.e_key;
        if batchable e.e_query then begin
          let point = (e.e_sw, e.e_port) in
          match Hashtbl.find_opt pools point with
          | Some cell -> cell := e :: !cell
          | None ->
            let cell = ref [ e ] in
            Hashtbl.replace pools point cell;
            groups := cell :: !groups
        end
        else groups := ref [ e ] :: !groups)
      t.queue;
    Queue.clear t.queue;
    Hashtbl.reset t.by_point;
    List.rev_map
      (fun cell ->
        let group = fold_group t (List.rev !cell) in
        t.stats.entries <- t.stats.entries + List.length group;
        (match group with
        | _ :: _ :: _ ->
          t.stats.batches <- t.stats.batches + 1;
          t.stats.batched <- t.stats.batched + List.length group
        | _ -> ());
        group)
      !groups
  end
