(** Multi-tenant query front-end: admission, coalescing, subsumption,
    batching.

    At the scale the roadmap targets — millions of clients sharing one
    verification service — the query stream stops looking like the
    paper's interactive workload and starts looking like a flash
    crowd: most concurrent queries are duplicates or refinements of
    each other, and a single noisy tenant can monopolise the sweep
    pool.  This module is the pure serving-policy layer {!Service}
    puts in front of query evaluation:

    + {b admission} — a per-client token bucket ({!limits}: refill
      [rate] tokens/second up to [burst]).  An over-budget client gets
      a signed throttle answer (see {!Query.answer.throttled}) instead
      of an evaluation, so one tenant's storm cannot starve the rest
      (the paper's §IV-B.1 per-client accounting turned into a
      defence).
    + {b coalescing} — identical in-flight queries are folded under
      one computation, keyed like {!Reach_cache.key} (injection point
      plus a structural hash of the scope, plus the query kind and —
      for client-dependent kinds — the client).  N clients asking the
      same question cost one sweep or one {!Plumbing} lookup; each
      still receives its own signed answer under its own nonce at
      finalize.
    + {b subsumption} — a [Reachable_endpoints] query whose scope is
      contained in ({!Hspace.Hs.subset}) a queued computation at the
      same injection point attaches to it as a {!slice} instead of
      opening its own: the subsumer's arrival spaces intersected with
      the slice scope are exactly the narrower answer (absent
      rewrites — the service falls back per query on taint).  This
      turns the waiters-on-key list into a waiters-on-computation
      graph: one broad computation can answer many distinct narrower
      questions.
    + {b batching} — queries that arrive within one settle tick
      ([batch_window]) and share an injection point are pooled: their
      scopes are unioned via {!Hspace.Hs.Builder}, one sweep runs over
      the union, and the result is split per query by intersecting
      arrival spaces with each query's scope.

    The module is deliberately free of protocol state: it queues
    generic waiter tokens (['w] is {!Service}'s requester record) and
    never touches the network, which keeps every policy decision unit
    testable without a simulator. *)

(** Token-bucket admission parameters: a client's bucket refills at
    [rate] tokens per second up to [burst]; each accepted query costs
    one token.  A fresh client starts with a full bucket. *)
type limits = { rate : float; burst : float }

type config = {
  limits : limits option;  (** admission control; [None] admits all *)
  coalesce : bool;
      (** fold identical in-flight queries under one computation *)
  batch_window : float;
      (** settle tick in seconds: queries arriving within the window
          are flushed together and batched per injection point.  [0.]
          flushes synchronously (no added latency, no batching). *)
  subsume : bool;
      (** attach scope-contained [Reachable_endpoints] queries to a
          broader queued or in-flight computation as slice waiters
          instead of evaluating them *)
}

(** Everything off: admit all, evaluate per query, no settle tick —
    the seed behaviour, bit-compatible with the pre-frontend
    service. *)
val default_config : config

(** [coalescing ()] is the recommended serving configuration:
    coalescing on, optional admission [limits], a [batch_window]
    (default [0.]), and optionally [subsume] (default [false] — off,
    it reproduces the identical-only coalescing of PR 7 bit for
    bit). *)
val coalescing :
  ?limits:limits -> ?batch_window:float -> ?subsume:bool -> unit -> config

(** Coalescing key: query kind (plus [Path_length]'s destination),
    injection point, scope hash, and — for the kinds whose evaluation
    depends on the requesting tenant ([Sources_reaching_me],
    [Isolation], [Fairness]) — the client.  Kinds that ignore their
    scope ([Isolation], [Fairness]) hash it as zero so differently
    scoped but identical questions still coalesce. *)
type key

val key_of : client:int -> sw:int -> port:int -> Query.t -> key

(** A narrower query attached to a broader computation: at the
    subsumer's finalize, its arrival spaces are intersected with
    [sl_scope] and every slice waiter receives its own signed answer
    under its own nonce.  [sl_waiters] is newest-first. *)
type 'w slice = {
  sl_key : key;
  sl_scope : Hspace.Hs.t;  (** effective scope of the sliced query *)
  sl_query : Query.t;
  mutable sl_waiters : 'w list;
}

(** One queued computation: the leading query plus every waiter
    attached to it.  [e_waiters] is newest-first; the evaluation runs
    with the leader's coordinates; [e_slices] are the narrower
    questions riding this computation. *)
type 'w entry = {
  e_key : key;
  e_client : int;
  e_sw : int;
  e_port : int;
  e_query : Query.t;
  e_scope : Hspace.Hs.t option;
      (** the effective scope the service evaluates (batchable kinds
          only) — what the subsumption containment checks run on *)
  mutable e_waiters : 'w list;
  mutable e_slices : 'w slice list;
}

type stats = {
  mutable admitted : int;  (** queries past admission control *)
  mutable throttled : int;  (** queries rejected by the token bucket *)
  mutable coalesced : int;
      (** admitted queries folded into an identical computation
          (pre-flush attach or in-flight join) instead of costing one *)
  mutable subsumed : int;
      (** admitted queries attached as slice waiters to a broader
          computation (queued scan, flush-time fold, or in-flight
          join) *)
  mutable entries : int;  (** computations handed to the service *)
  mutable batches : int;  (** flush groups that pooled >= 2 entries *)
  mutable batched : int;  (** entries inside such groups *)
  mutable batch_fallbacks : int;
      (** pooled groups re-run per entry because a rewrite on the
          swept region made the union split unsound *)
  mutable slice_fallbacks : int;
      (** slices re-run as their own computations because the
          subsumer's region was rewrite-tainted *)
  mutable flushes : int;
}

type 'w t

(** @raise Invalid_argument on [rate <= 0], [burst < 1] or a negative
    [batch_window]. *)
val create : config -> 'w t

val config : 'w t -> config

val stats : 'w t -> stats

(** [coalesce_rate t] is the fraction of admitted queries that were
    absorbed by an identical computation — [0.] when nothing was
    admitted. *)
val coalesce_rate : 'w t -> float

(** [subsume_rate t] is the fraction of admitted queries answered as
    slices of a broader computation — [0.] when nothing was
    admitted. *)
val subsume_rate : 'w t -> float

(** [admit t ~client ~now] charges one token from [client]'s bucket
    ([now] in seconds drives the refill).  [false] means throttle:
    the caller owes the client a signed throttle answer. *)
val admit : 'w t -> client:int -> now:float -> bool

(** [note_coalesced t] records an in-flight join: the service attached
    a waiter to an already-evaluating computation (coalescing after
    the entry left the queue — this module only sees the queue). *)
val note_coalesced : 'w t -> unit

(** [note_subsumed t] records an in-flight subsumption join: the
    service attached a slice waiter to an already-evaluating broader
    computation. *)
val note_subsumed : 'w t -> unit

(** [note_fallback t n] records a pooled group of [n] entries that the
    service re-ran per entry (rewrite taint). *)
val note_fallback : 'w t -> int -> unit

(** [note_slice_fallback t n] records [n] slices the service re-ran as
    their own computations because the subsumer was rewrite-tainted. *)
val note_slice_fallback : 'w t -> int -> unit

(** [submit t ~key ?scope ~client ~sw ~port query ~waiter] enqueues a
    query.  [scope] is the effective scope the service will evaluate
    (batchable kinds only) — it feeds the subsumption containment
    scan.  [`Coalesced] means the query was attached to an
    already-queued identical entry (only with [config.coalesce]);
    [`Subsumed] means it was attached as a slice waiter to a queued
    broader computation at the same injection point (only with
    [config.subsume]); [`Queued `First] means it opened a new entry in
    a previously empty queue — the caller must now arrange a flush
    (immediately, or one [batch_window] later); [`Queued `Later] means
    the queue was already non-empty and a flush is already owed. *)
val submit :
  'w t ->
  key:key ->
  ?scope:Hspace.Hs.t ->
  client:int ->
  sw:int ->
  port:int ->
  Query.t ->
  waiter:'w ->
  [ `Coalesced | `Subsumed | `Queued of [ `First | `Later ] ]

(** [queued t] is the number of entries awaiting a flush. *)
val queued : 'w t -> int

(** [flush t] drains the queue into evaluation groups, in arrival
    order.  Entries of batchable kinds ([Reachable_endpoints]) that
    share an injection point are grouped together (one pooled sweep);
    everything else comes back as singleton groups.  With
    [config.subsume], entries of a group whose scope is contained in
    another member's fold into that member as slices first (catching
    the narrow-before-broad arrival order the submit-time scan
    cannot), so a group's entry count — and the [entries]/[batched]
    stats — reflect the computations actually handed out. *)
val flush : 'w t -> 'w entry list list
