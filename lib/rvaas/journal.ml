type query_open = {
  q_nonce : string;
  q_client : int;
  q_sw : int;
  q_port : int;
  q_ip : int option;
  q_query : Query.t;
}

type record =
  | Observation of { sw : int; event : Ofproto.Message.monitor_event }
  | Flows_polled of { sw : int; flows : Ofproto.Flow_entry.spec list }
  | Meters_polled of { sw : int; meters : (int * Ofproto.Meter.band) list }
  | Checkpoint of string
  | Query_opened of query_open
  | Query_closed of { nonce : string }
  | Heartbeat
  | Takeover of { gen : int }
  | Claim of { sid : int }

let obs_tag = "obs"

let poll_tag = "poll"

let meters_tag = "meters"

let ckpt_tag = "ckpt"

let qopen_tag = "qopen"

let qclose_tag = "qclose"

let hb_tag = "hb"

let claim_tag = "claim"

type t = {
  log : Support.Journal.t;
  checkpoint_every : int;
  auto_compact : bool;
  mutable since_checkpoint : int;
}

let create ?(checkpoint_every = 64) ?(auto_compact = false) () =
  if checkpoint_every < 1 then invalid_arg "Journal.create: checkpoint_every must be >= 1";
  {
    log = Support.Journal.create ();
    checkpoint_every;
    auto_compact;
    since_checkpoint = 0;
  }

let of_log ?(checkpoint_every = 64) ?(auto_compact = false) log =
  if checkpoint_every < 1 then invalid_arg "Journal.of_log: checkpoint_every must be >= 1";
  { log; checkpoint_every; auto_compact; since_checkpoint = 0 }

let log t = t.log

let checkpoint_every t = t.checkpoint_every

let auto_compact t = t.auto_compact

(* ---- payload (de)serialization ---- *)

let encode_record = function
  | Observation { sw; event } ->
    let b = Buffer.create 64 in
    Codec.Bin.w_int b sw;
    Codec.Bin.w_event b event;
    (obs_tag, Buffer.contents b)
  | Flows_polled { sw; flows } ->
    let b = Buffer.create 256 in
    Codec.Bin.w_int b sw;
    Codec.Bin.w_list Codec.Bin.w_spec b flows;
    (poll_tag, Buffer.contents b)
  | Meters_polled { sw; meters } ->
    let b = Buffer.create 64 in
    Codec.Bin.w_int b sw;
    Codec.Bin.w_meters b meters;
    (meters_tag, Buffer.contents b)
  | Checkpoint image -> (ckpt_tag, image)
  | Query_opened q ->
    let b = Buffer.create 128 in
    Codec.Bin.w_string b q.q_nonce;
    Codec.Bin.w_int b q.q_client;
    Codec.Bin.w_int b q.q_sw;
    Codec.Bin.w_int b q.q_port;
    Codec.Bin.w_opt Codec.Bin.w_int b q.q_ip;
    Codec.Bin.w_string b (Codec.query_to_string q.q_query);
    (qopen_tag, Buffer.contents b)
  | Query_closed { nonce } -> (qclose_tag, nonce)
  | Heartbeat -> (hb_tag, "")
  | Claim { sid } ->
    let b = Buffer.create 8 in
    Codec.Bin.w_int b sid;
    (claim_tag, Buffer.contents b)
  | Takeover _ -> invalid_arg "Journal: Takeover entries are written by begin_generation"

let decode_entry (e : Support.Journal.entry) =
  try
    if String.equal e.tag Support.Journal.generation_tag then Ok (Takeover { gen = e.gen })
    else if String.equal e.tag obs_tag then begin
      let r = Codec.Bin.reader e.payload in
      let sw = Codec.Bin.r_int r in
      let event = Codec.Bin.r_event r in
      Ok (Observation { sw; event })
    end
    else if String.equal e.tag poll_tag then begin
      let r = Codec.Bin.reader e.payload in
      let sw = Codec.Bin.r_int r in
      let flows = Codec.Bin.r_list Codec.Bin.r_spec r in
      Ok (Flows_polled { sw; flows })
    end
    else if String.equal e.tag meters_tag then begin
      let r = Codec.Bin.reader e.payload in
      let sw = Codec.Bin.r_int r in
      let meters = Codec.Bin.r_meters r in
      Ok (Meters_polled { sw; meters })
    end
    else if String.equal e.tag ckpt_tag then Ok (Checkpoint e.payload)
    else if String.equal e.tag qopen_tag then begin
      let r = Codec.Bin.reader e.payload in
      let q_nonce = Codec.Bin.r_string r in
      let q_client = Codec.Bin.r_int r in
      let q_sw = Codec.Bin.r_int r in
      let q_port = Codec.Bin.r_int r in
      let q_ip = Codec.Bin.r_opt Codec.Bin.r_int r in
      match Codec.query_of_string (Codec.Bin.r_string r) with
      | Error msg -> Error msg
      | Ok q_query -> Ok (Query_opened { q_nonce; q_client; q_sw; q_port; q_ip; q_query })
    end
    else if String.equal e.tag qclose_tag then Ok (Query_closed { nonce = e.payload })
    else if String.equal e.tag hb_tag then Ok Heartbeat
    else if String.equal e.tag claim_tag then begin
      let r = Codec.Bin.reader e.payload in
      Ok (Claim { sid = Codec.Bin.r_int r })
    end
    else Error ("Journal: unknown tag " ^ e.tag)
  with Codec.Bin.Malformed msg -> Error ("Journal: malformed payload: " ^ msg)

(* ---- appending ---- *)

let append_record t ~at record =
  let tag, payload = encode_record record in
  ignore (Support.Journal.append t.log ~at ~tag ~payload)

(* Checkpoint records are the durability boundary: a file backend
   fsyncs here, so everything up to (and including) the image survives
   power loss, and anything after it is at worst a torn tail. *)
let append_checkpoint t ~at ~image =
  append_record t ~at (Checkpoint image);
  t.since_checkpoint <- 0;
  Support.Journal.sync t.log

(* ---- recovery ---- *)

type recovery = {
  snapshot : Snapshot.t;
  open_queries : query_open list;
  replayed : int;
  generation : int;
  last_at : float option;
}

(* Replay strategy: find the last decodable checkpoint in the valid
   prefix, restore it, then fold every later snapshot-mutating record
   on top.  Query open/close records are folded over the whole prefix
   (a checkpoint images the snapshot, not the pending-query set). *)
let recover log =
  let valid = Support.Journal.valid_prefix log in
  let last_ckpt =
    List.fold_left
      (fun acc (e : Support.Journal.entry) ->
        if String.equal e.tag ckpt_tag then
          match Snapshot.of_bytes e.payload with
          | Ok snap -> Some (e.seq, snap)
          | Error _ -> acc
        else acc)
      None valid
  in
  let snapshot, from_seq =
    match last_ckpt with
    | Some (seq, snap) -> (snap, seq)
    | None -> (Snapshot.create (), -1)
  in
  let open_tbl : (string, query_open) Hashtbl.t = Hashtbl.create 8 in
  let order = ref [] in
  let replayed = ref 0 in
  let generation = ref 1 in
  List.iter
    (fun (e : Support.Journal.entry) ->
      generation := max !generation e.gen;
      match decode_entry e with
      | Error _ -> () (* an undecodable-but-checksummed record is skipped *)
      | Ok record -> (
        match record with
        | Query_opened q ->
          Hashtbl.replace open_tbl q.q_nonce q;
          order := q.q_nonce :: !order
        | Query_closed { nonce } -> Hashtbl.remove open_tbl nonce
        | Observation { sw; event } ->
          if e.seq > from_seq then begin
            Snapshot.apply_event snapshot ~sw ~now:e.at event;
            incr replayed
          end
        | Flows_polled { sw; flows } ->
          if e.seq > from_seq then begin
            Snapshot.replace_flows snapshot ~sw ~now:e.at flows;
            incr replayed
          end
        | Meters_polled { sw; meters } ->
          if e.seq > from_seq then begin
            Snapshot.replace_meters snapshot ~sw meters;
            incr replayed
          end
        | Checkpoint _ | Heartbeat | Takeover _ | Claim _ -> ()))
    valid;
  let open_queries =
    List.rev !order
    |> List.filter_map (fun nonce ->
           match Hashtbl.find_opt open_tbl nonce with
           | Some q ->
             Hashtbl.remove open_tbl nonce (* emit each nonce once *)
             |> fun () -> Some q
           | None -> None)
  in
  {
    snapshot;
    open_queries;
    replayed = !replayed;
    generation = !generation;
    last_at = Support.Journal.last_at log;
  }

(* ---- compaction ---- *)

(* Equivalence-preserving by construction: recover the journal's own
   view of the world, re-append every still-open query (in original
   order — recovery folds opens over the whole prefix, so they must
   survive the cut), image the recovered snapshot, and only then drop
   everything before the re-appended block.  [recover (compact j)]
   therefore returns the same snapshot, digest vector and open-query
   list as [recover j]. *)
let compact t ~at =
  let log = t.log in
  if Support.Journal.length log > 0 then begin
    let r = recover log in
    let cut = Support.Journal.last_seq log + 1 in
    (* Roll segmented backends first: the re-appended block then lands
       in a fresh active segment whose base is exactly the cut, so the
       subsequent [compact] drops whole sealed segments without
       rewriting a single retained byte. *)
    Support.Journal.roll log;
    List.iter (fun q -> append_record t ~at (Query_opened q)) r.open_queries;
    append_checkpoint t ~at ~image:(Snapshot.to_bytes r.snapshot);
    Support.Journal.compact log ~upto_seq:cut
  end

(* With [auto_compact], the journal self-bounds: as soon as it holds
   two checkpoint cadences' worth of entries it folds down to the
   open-query block + one fresh image. *)
let maybe_compact t ~at =
  if t.auto_compact && Support.Journal.length t.log >= 2 * t.checkpoint_every then
    compact t ~at

(* State-changing records count toward the checkpoint cadence; after
   [checkpoint_every] of them the caller-supplied snapshot is imaged
   into the log, bounding replay length (and the damage of a torn
   tail) without the cost of imaging on every event. *)
let append t ~at ~snapshot record =
  append_record t ~at record;
  (match record with
  | Observation _ | Flows_polled _ | Meters_polled _ ->
    t.since_checkpoint <- t.since_checkpoint + 1
  | Checkpoint _ ->
    t.since_checkpoint <- 0;
    Support.Journal.sync t.log
  | Query_opened _ | Query_closed _ | Heartbeat | Takeover _ | Claim _ -> ());
  if t.since_checkpoint >= t.checkpoint_every then
    append_checkpoint t ~at ~image:(Snapshot.to_bytes snapshot);
  maybe_compact t ~at

let checkpoint t ~at ~snapshot =
  append_checkpoint t ~at ~image:(Snapshot.to_bytes snapshot)

let heartbeat t ~at =
  append_record t ~at Heartbeat;
  maybe_compact t ~at

let claim t ~at ~sid = append_record t ~at (Claim { sid })
