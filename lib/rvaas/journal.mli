(** Typed record layer over {!Support.Journal}: the durable log a
    crashed or failed-over RVaaS controller recovers from.

    The {!Monitor} journals every snapshot mutation (flow-monitor
    events, poll results); the {!Service} journals integrity-query
    opens and closes; a {!Checkpoint} images the whole {!Snapshot}
    every [checkpoint_every] state-changing records so replay length
    stays bounded.  {!recover} turns the checksummed valid prefix back
    into a snapshot plus the set of queries that were in flight at the
    crash — everything a standby needs to take over. *)

(** An integrity query that was open (answer not yet sent) — enough
    context for a recovering controller to re-issue it: requester
    identity/location and the parsed query. *)
type query_open = {
  q_nonce : string;
  q_client : int;
  q_sw : int;  (** switch the request arrived on *)
  q_port : int;  (** ingress port of the request *)
  q_ip : int option;  (** requester source IP, when seen *)
  q_query : Query.t;
}

type record =
  | Observation of { sw : int; event : Ofproto.Message.monitor_event }
      (** a flow-monitor event folded into the snapshot *)
  | Flows_polled of { sw : int; flows : Ofproto.Flow_entry.spec list }
      (** a flow-stats reply that replaced [sw]'s view *)
  | Meters_polled of { sw : int; meters : (int * Ofproto.Meter.band) list }
  | Checkpoint of string  (** a {!Snapshot.to_bytes} image *)
  | Query_opened of query_open
  | Query_closed of { nonce : string }
  | Heartbeat  (** liveness marker: keeps {!Support.Journal.last_at} fresh *)
  | Takeover of { gen : int }
      (** a generation bump written by {!Support.Journal.begin_generation} *)
  | Claim of { sid : int }
      (** a standby's journalled takeover claim — the quorum election
          in {!Failover} is decided by lowest claiming standby id *)

type t

(** [create ?checkpoint_every ?auto_compact ()] makes a typed journal
    over a fresh log.  [checkpoint_every] (default 64) is how many
    state-changing records may accumulate before {!append} images a
    checkpoint.  With [auto_compact] (default [false]) the journal
    self-bounds: whenever it reaches [2 * checkpoint_every] entries it
    is compacted down to the open-query block plus one fresh image.
    @raise Invalid_argument when [checkpoint_every < 1]. *)
val create : ?checkpoint_every:int -> ?auto_compact:bool -> unit -> t

(** [of_log ?checkpoint_every ?auto_compact log] adopts an existing
    log (e.g. one rebuilt by {!Support.Journal.decode}) for continued
    writing. *)
val of_log : ?checkpoint_every:int -> ?auto_compact:bool -> Support.Journal.t -> t

(** [log t] is the underlying append-only log (shared, not copied) —
    what a warm standby tails and what gets encoded for persistence. *)
val log : t -> Support.Journal.t

val checkpoint_every : t -> int

val auto_compact : t -> bool

(** [append t ~at ~snapshot record] journals [record]; when the
    checkpoint cadence is reached, also journals a fresh image of
    [snapshot].  Checkpoint records trigger {!Support.Journal.sync} —
    the fsync boundary of a file-backed journal. *)
val append : t -> at:float -> snapshot:Snapshot.t -> record -> unit

(** [checkpoint t ~at ~snapshot] forces an image now (used at start-up
    so the journal never has an imageless prefix, and at takeover). *)
val checkpoint : t -> at:float -> snapshot:Snapshot.t -> unit

(** [heartbeat t ~at] journals a liveness marker. *)
val heartbeat : t -> at:float -> unit

(** [claim t ~at ~sid] journals standby [sid]'s takeover claim.
    Claims are ignored by {!recover} and excluded from the staleness
    signal ({!Failover} judges primary liveness by the freshest
    non-claim entry) — they exist so that competing standbys elect a
    single winner through the log itself. *)
val claim : t -> at:float -> sid:int -> unit

(** The raw tag of {!Claim} entries. *)
val claim_tag : string

(** [compact t ~at] bounds the journal: recovers its current state,
    re-appends every still-open query, images the recovered snapshot,
    then drops everything older ({!Support.Journal.compact} — the
    chain root moves, an attached file backend rewrites atomically).
    Recovery-equivalent: [recover (log t)] returns the same snapshot,
    digest vector and open-query list before and after. *)
val compact : t -> at:float -> unit

(** [decode_entry e] parses a raw log entry back into a {!record}
    ([Takeover] for {!Support.Journal.generation_tag} entries). *)
val decode_entry : Support.Journal.entry -> (record, string) result

(** What {!recover} reconstructs from a journal's valid prefix. *)
type recovery = {
  snapshot : Snapshot.t;
      (** last decodable checkpoint + all later mutations replayed *)
  open_queries : query_open list;
      (** queries opened but never closed, oldest first *)
  replayed : int;  (** mutation records applied on top of the checkpoint *)
  generation : int;  (** highest generation seen in the valid prefix *)
  last_at : float option;  (** timestamp of the newest raw entry *)
}

(** [recover log] rebuilds controller state from the checksummed valid
    prefix of [log].  Records past a torn write are ignored; a
    checksummed record that fails to decode is skipped. *)
val recover : Support.Journal.t -> recovery
