type polling =
  | No_polling
  | Periodic of float
  | Randomized of float

type observation =
  | Event of Ofproto.Message.monitor_event
  | Poll of { flows : int; digest : int64 }
  | Removed of Ofproto.Flow_entry.spec

type history_entry = { at : float; sw : int; what : observation }

type probe_report = {
  probes_sent : int;
  confirmed : int;
  misdelivered : (int * int * int * int) list;
  missing : (int * int) list;
}

(* One in-flight wiring verification. *)
type wiring_run = {
  pending : (string, int * int) Hashtbl.t; (* nonce -> origin (sw, port) *)
  mutable run_confirmed : int;
  mutable run_misdelivered : (int * int * int * int) list;
  probes_sent : int;
}

(* One outstanding stats request, keyed by xid in [t.outstanding]. *)
type poll_track = { poll_sw : int; poll_kind : [ `Flow | `Meter ]; poll_attempt : int }

type t = {
  net : Netsim.Net.t;
  conn : Netsim.Net.conn;
  snapshot : Snapshot.t;
  journal : Journal.t option;
  history : history_entry Support.Ring.t;
  polling : polling;
  poll_retry : float option;
  rng : Support.Rng.t;
  mutable packet_in_handler :
    sw:int -> in_port:int -> header:Hspace.Header.t -> payload:string -> unit;
  mutable polls_sent : int;
  mutable events_seen : int;
  mutable next_xid : int;
  outstanding : (int, poll_track) Hashtbl.t;
  mutable poll_retries : int;
  mutable polling_active : bool;
  mutable wiring : wiring_run option;
  mutable snapshot_change_hooks : (sw:int -> changed:bool -> unit) list;
  mutable last_echo : float option;
}

(* Retransmission budget per stats request (first send included). *)
let max_poll_attempts = 3

let now t = Netsim.Sim.now (Netsim.Net.sim t.net)

let record t ~sw what =
  Support.Ring.push t.history { at = now t; sw; what }

(* Hooks fire on every observation touching [sw], with [changed]
   telling listeners whether the believed table actually differs
   (digest comparison around the mutation).  Unchanged observations —
   e.g. a poll confirming the current view — must still fire: the
   service's intercept repair is poll-driven and has to run even when
   nothing changed, while cache invalidation keys off [changed]. *)
let snapshot_changed t ~sw ~changed =
  List.iter (fun f -> f ~sw ~changed) t.snapshot_change_hooks

(* Every snapshot mutation is journalled before recovery can need it;
   the journal itself decides when to image a checkpoint. *)
let journal_record t record =
  match t.journal with
  | None -> ()
  | Some j -> Journal.append j ~at:(now t) ~snapshot:t.snapshot record

(* A wiring probe surfaced at (sw, in_port): check it against the plan. *)
let handle_probe t ~sw ~in_port ~payload =
  match t.wiring with
  | None -> ()
  | Some run -> (
    match String.split_on_char ':' payload with
    | [ "lldp"; nonce ] -> (
      match Hashtbl.find_opt run.pending nonce with
      | None -> ()
      | Some (origin_sw, origin_port) ->
        Hashtbl.remove run.pending nonce;
        let expected =
          Netsim.Topology.peer
            (Netsim.Net.topology t.net)
            { Netsim.Topology.node = Netsim.Topology.Switch origin_sw; port = origin_port }
        in
        let matches =
          match expected with
          | Some { Netsim.Topology.node = Netsim.Topology.Switch esw; port = eport } ->
            esw = sw && eport = in_port
          | Some _ | None -> false
        in
        if matches then run.run_confirmed <- run.run_confirmed + 1
        else
          run.run_misdelivered <-
            (origin_sw, origin_port, sw, in_port) :: run.run_misdelivered)
    | _ -> ())

let handle_message t (msg : Ofproto.Message.to_controller) =
  match msg with
  | Ofproto.Message.Monitor { sw; event } ->
    t.events_seen <- t.events_seen + 1;
    let before = Snapshot.switch_digest t.snapshot ~sw in
    Snapshot.apply_event t.snapshot ~sw ~now:(now t) event;
    record t ~sw (Event event);
    journal_record t (Journal.Observation { sw; event });
    snapshot_changed t ~sw ~changed:(Snapshot.switch_digest t.snapshot ~sw <> before)
  | Ofproto.Message.Flow_removed { sw; spec; _ } ->
    let before = Snapshot.switch_digest t.snapshot ~sw in
    Snapshot.apply_flow_removed t.snapshot ~sw ~now:(now t) spec;
    record t ~sw (Removed spec);
    journal_record t (Journal.Observation { sw; event = Ofproto.Message.Flow_deleted spec });
    snapshot_changed t ~sw ~changed:(Snapshot.switch_digest t.snapshot ~sw <> before)
  | Ofproto.Message.Flow_stats_reply { sw; xid; flows } ->
    Hashtbl.remove t.outstanding xid;
    let before = Snapshot.switch_digest t.snapshot ~sw in
    Snapshot.replace_flows t.snapshot ~sw ~now:(now t) flows;
    record t ~sw (Poll { flows = List.length flows; digest = Snapshot.digest t.snapshot });
    journal_record t (Journal.Flows_polled { sw; flows });
    snapshot_changed t ~sw ~changed:(Snapshot.switch_digest t.snapshot ~sw <> before)
  | Ofproto.Message.Meter_stats_reply { sw; xid; meters } ->
    Hashtbl.remove t.outstanding xid;
    Snapshot.replace_meters t.snapshot ~sw meters;
    journal_record t (Journal.Meters_polled { sw; meters })
  | Ofproto.Message.Packet_in { sw; in_port; header; payload; _ } ->
    let dst_port = Hspace.Header.get header Hspace.Field.Tp_dst in
    if dst_port = Wire.lldp_port then handle_probe t ~sw ~in_port ~payload
    else t.packet_in_handler ~sw ~in_port ~header ~payload
  | Ofproto.Message.Echo_reply _ ->
    (* Liveness signal for the session watchdog: any echo that makes
       it back proves the control channel is up. *)
    t.last_echo <- Some (now t)
  | Ofproto.Message.Barrier_reply _ | Ofproto.Message.Error _ -> ()

(* Send one stats request under a fresh xid, tracked in [t.outstanding]
   until its reply arrives.  With [poll_retry = Some deadline], an
   unanswered request is re-sent (again under a fresh xid) up to
   [max_poll_attempts] total attempts — the recovery path for stats
   exchanges lost on a faulty control channel. *)
let rec send_stats_request t ~sw ~kind ~attempt =
  t.next_xid <- t.next_xid + 1;
  let xid = t.next_xid in
  Hashtbl.replace t.outstanding xid { poll_sw = sw; poll_kind = kind; poll_attempt = attempt };
  let msg =
    match kind with
    | `Flow -> Ofproto.Message.Flow_stats_request { xid }
    | `Meter -> Ofproto.Message.Meter_stats_request { xid }
  in
  Netsim.Net.send t.net t.conn ~sw msg;
  match t.poll_retry with
  | None -> ()
  | Some deadline ->
    Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:deadline (fun () ->
        if Hashtbl.mem t.outstanding xid then begin
          Hashtbl.remove t.outstanding xid;
          if attempt + 1 < max_poll_attempts then begin
            t.poll_retries <- t.poll_retries + 1;
            send_stats_request t ~sw ~kind ~attempt:(attempt + 1)
          end
        end)

let poll_all t =
  List.iter
    (fun sw ->
      t.polls_sent <- t.polls_sent + 1;
      (* Each message of a sweep under its own xid: a retry of one must
         not be satisfied (or cancelled) by the reply to the other. *)
      send_stats_request t ~sw ~kind:`Flow ~attempt:0;
      send_stats_request t ~sw ~kind:`Meter ~attempt:0)
    (Netsim.Topology.switches (Netsim.Net.topology t.net))

let next_gap t =
  match t.polling with
  | No_polling -> None
  | Periodic period -> Some period
  | Randomized mean -> Some (Support.Rng.exponential t.rng ~mean)

let rec schedule_poll t =
  match next_gap t with
  | None -> ()
  | Some gap ->
    Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:gap (fun () ->
        if t.polling_active then begin
          poll_all t;
          schedule_poll t
        end)

let create net ~conn_delay ?(loss_prob = 0.0) ?faults ?poll_retry
    ?(history_capacity = 4096) ?snapshot ?journal ?(prefill = []) ?conn ~polling () =
  (match poll_retry with
  | Some d when d <= 0.0 -> invalid_arg "Monitor.create: poll_retry must be positive"
  | _ -> ());
  let conn =
    match conn with
    | Some conn -> conn (* a recovering controller re-uses the registered session *)
    | None ->
      Netsim.Net.register_controller net ~name:"rvaas" ~delay:conn_delay ~loss_prob
        ?faults ()
  in
  let t =
    {
      net;
      conn;
      snapshot = (match snapshot with Some s -> s | None -> Snapshot.create ());
      journal;
      history = Support.Ring.create history_capacity;
      polling;
      poll_retry;
      rng = Support.Rng.split (Netsim.Sim.rng (Netsim.Net.sim net));
      packet_in_handler = (fun ~sw:_ ~in_port:_ ~header:_ ~payload:_ -> ());
      polls_sent = 0;
      events_seen = 0;
      next_xid = 0;
      outstanding = Hashtbl.create 32;
      poll_retries = 0;
      polling_active = true;
      wiring = None;
      snapshot_change_hooks = [];
      last_echo = None;
    }
  in
  List.iter (fun entry -> Support.Ring.push t.history entry) prefill;
  Netsim.Net.set_handler conn (handle_message t);
  List.iter
    (fun sw -> Netsim.Net.attach net conn ~sw ~monitor:true)
    (Netsim.Topology.switches (Netsim.Net.topology net));
  schedule_poll t;
  t

let verify_wiring t ~timeout ~on_complete =
  (* One run at a time: a concurrent call would clobber the pending
     probe table and mix the two reports. *)
  if t.wiring <> None then
    invalid_arg "Monitor.verify_wiring: a verification run is already in progress";
  let topo = Netsim.Net.topology t.net in
  (* Interception entry for probes, on every switch. *)
  List.iter
    (fun sw ->
      Netsim.Net.send t.net t.conn ~sw
        (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow (Wire.lldp_intercept_spec ()))))
    (Netsim.Topology.switches topo);
  let pending = Hashtbl.create 32 in
  let nonce_counter = ref 0 in
  let probes =
    List.concat_map
      (fun sw ->
        List.map (fun (port, _, _) -> (sw, port)) (Netsim.Topology.neighbor_switches topo sw))
      (Netsim.Topology.switches topo)
  in
  let run =
    { pending; run_confirmed = 0; run_misdelivered = []; probes_sent = List.length probes }
  in
  t.wiring <- Some run;
  (* Let the interception entries land before probing. *)
  Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:(2.0 *. 1e-2) (fun () ->
      List.iter
        (fun (sw, port) ->
          incr nonce_counter;
          let nonce = Printf.sprintf "%d-%d-%d" sw port !nonce_counter in
          Hashtbl.replace pending nonce (sw, port);
          let header =
            Hspace.Header.udp ~src_ip:Wire.service_ip ~dst_ip:0 ~src_port:0
              ~dst_port:Wire.lldp_port
          in
          Netsim.Net.send t.net t.conn ~sw
            (Ofproto.Message.Packet_out { port; header; payload = "lldp:" ^ nonce }))
        probes);
  Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:timeout (fun () ->
      t.wiring <- None;
      (* Retire the probe intercepts: they are only needed while a run
         is live, and leaking one per run would grow every flow table
         without bound.  The dedicated cookie leaves the service's
         request/auth intercepts untouched. *)
      List.iter
        (fun sw ->
          Netsim.Net.send t.net t.conn ~sw
            (Ofproto.Message.Flow_mod (Ofproto.Message.Delete_by_cookie Wire.lldp_cookie)))
        (Netsim.Topology.switches topo);
      let missing =
        Hashtbl.fold (fun _ origin acc -> origin :: acc) pending []
        |> List.sort compare
      in
      on_complete
        {
          probes_sent = run.probes_sent;
          confirmed = run.run_confirmed;
          misdelivered = List.rev run.run_misdelivered;
          missing;
        })

let snapshot t = t.snapshot

let conn t = t.conn

let set_packet_in_handler t f = t.packet_in_handler <- f

let on_snapshot_change t f = t.snapshot_change_hooks <- f :: t.snapshot_change_hooks

let history t = Support.Ring.to_list t.history

let polls_sent t = t.polls_sent

let events_seen t = t.events_seen

let outstanding_polls t = Hashtbl.length t.outstanding

let poll_retries t = t.poll_retries

let stop_polling t = t.polling_active <- false

let resume_polling t =
  if not t.polling_active then begin
    t.polling_active <- true;
    schedule_poll t
  end

let poll_now t = poll_all t

let journal t = t.journal

let last_echo t = t.last_echo

(* One echo per switch: the cheapest probe that exercises the whole
   session round trip.  Replies land in [last_echo]. *)
let send_echo t =
  List.iter
    (fun sw ->
      t.next_xid <- t.next_xid + 1;
      Netsim.Net.send t.net t.conn ~sw (Ofproto.Message.Echo_request { xid = t.next_xid }))
    (Netsim.Topology.switches (Netsim.Net.topology t.net))
