(** Configuration monitoring (paper §IV-A.1).

    Owns the RVaaS controller connection — a secured, authenticated
    OpenFlow session to every switch — and maintains the {!Snapshot}
    two ways:

    - {b passively}: flow-monitor events and Flow-Removed messages are
      folded in as they arrive (modulo control-channel delay/loss);
    - {b actively}: flow-stats polls on a {!polling} schedule.  The
      paper argues polls must fire at times "hard to guess for the
      adversary"; [Randomized] draws exponential gaps (memoryless),
      [Periodic] is the evadable baseline used in experiment E3.

    Every observation is appended to a bounded history ring so that
    short-lived reconfiguration attacks remain detectable after the
    attacker restores the original rules. *)

type polling =
  | No_polling
  | Periodic of float  (** fixed poll period in seconds *)
  | Randomized of float  (** mean poll gap, exponentially distributed *)

type observation =
  | Event of Ofproto.Message.monitor_event  (** passive, per switch *)
  | Poll of { flows : int; digest : int64 }
      (** active: polled rule count and snapshot digest *)
  | Removed of Ofproto.Flow_entry.spec

type history_entry = { at : float; sw : int; what : observation }

type t

(** [create net ~conn_delay ?loss_prob ?faults ?poll_retry
    ?history_capacity ~polling ()] registers the "rvaas" controller
    connection, attaches to every switch with monitor subscription, and
    starts the polling schedule.  [loss_prob] models a degraded
    switch→controller channel for flow-monitor events only; [faults]
    (see {!Netsim.Faults}) degrades {e every} message on the connection
    in both directions.  [poll_retry] (default off) re-sends a stats
    request whose reply has not arrived within the given deadline
    (seconds), under a fresh xid, up to 3 total attempts — required for
    snapshot convergence on a faulty channel.

    Recovery hooks: [snapshot] starts from a restored snapshot instead
    of an empty one; [journal] records every snapshot mutation (and
    periodic checkpoints) into the durable log; [prefill] seeds the
    history ring (observations recovered from a journal); [conn]
    re-uses an already-registered controller session instead of
    registering a fresh one — how a restarted controller re-attaches
    to the switches it had before the crash.
    @raise Invalid_argument when [poll_retry <= 0]. *)
val create :
  Netsim.Net.t ->
  conn_delay:float ->
  ?loss_prob:float ->
  ?faults:Netsim.Faults.t ->
  ?poll_retry:float ->
  ?history_capacity:int ->
  ?snapshot:Snapshot.t ->
  ?journal:Journal.t ->
  ?prefill:history_entry list ->
  ?conn:Netsim.Net.conn ->
  polling:polling ->
  unit ->
  t

val snapshot : t -> Snapshot.t

val conn : t -> Netsim.Net.conn

(** [set_packet_in_handler t f] routes Packet-In messages to the
    service layer. *)
val set_packet_in_handler :
  t -> (sw:int -> in_port:int -> header:Hspace.Header.t -> payload:string -> unit) -> unit

(** [on_snapshot_change t f] registers [f] to run whenever an
    observation touches switch [sw].  [changed] is true when the
    believed flow table actually differs from before the observation
    (per-switch digest comparison) and false for confirming
    observations such as a poll matching the current view.  Hooks fire
    either way — the service's intercept repair is poll-driven and
    must run on unchanged polls too — while verifier and reach-cache
    invalidation key off [changed]. *)
val on_snapshot_change : t -> (sw:int -> changed:bool -> unit) -> unit

(** [history t] returns observations, oldest first. *)
val history : t -> history_entry list

(** [polls_sent t] counts flow-stats requests issued so far. *)
val polls_sent : t -> int

(** [events_seen t] counts monitor events received. *)
val events_seen : t -> int

(** [outstanding_polls t] counts stats requests (flow and meter, each
    under its own xid) still awaiting a reply. *)
val outstanding_polls : t -> int

(** [poll_retries t] counts stats requests re-sent after their
    reply deadline expired. *)
val poll_retries : t -> int

(** [stop_polling t] cancels future polls (the schedule checks this
    flag; already-queued simulator events become no-ops). *)
val stop_polling : t -> unit

(** [resume_polling t] restarts the polling schedule after
    {!stop_polling} (idempotent). *)
val resume_polling : t -> unit

(** [poll_now t] fires one immediate stats sweep of every switch —
    the resynchronisation step after a session is re-established. *)
val poll_now : t -> unit

(** [journal t] is the durable journal, when one was supplied. *)
val journal : t -> Journal.t option

(** {1 Session liveness} *)

(** [send_echo t] sends one Echo request to every switch; any reply
    updates {!last_echo}. *)
val send_echo : t -> unit

(** [last_echo t] is the time the most recent Echo reply arrived —
    the signal the failover watchdog compares against its timeout. *)
val last_echo : t -> float option

(** {1 Active wiring verification (paper §IV-A.1)}

    RVaaS may "issue and later intercept LLDP like packets through all
    internal ports" to confirm the physical wiring matches the trusted
    plan. *)

type probe_report = {
  probes_sent : int;
  confirmed : int;  (** probes observed at the expected far endpoint *)
  misdelivered : (int * int * int * int) list;
      (** (origin sw, origin port, observed sw, observed port) for
          probes that surfaced somewhere unexpected *)
  missing : (int * int) list;
      (** (origin sw, origin port) of probes never observed — a dead or
          rewired link, or a lost Packet-In *)
}

(** [verify_wiring t ~timeout ~on_complete] installs the LLDP
    interception entry (cookie {!Wire.lldp_cookie}) on every switch,
    emits one probe out of every switch-to-switch port, and calls
    [on_complete] with the report after [timeout] simulated seconds.
    The interception entries are deleted again when the run completes.
    @raise Invalid_argument when a verification run is already in
    progress. *)
val verify_wiring : t -> timeout:float -> on_complete:(probe_report -> unit) -> unit
