(* Compiled plumbing graph (paper §IV-A.2's scale-up lineage): the
   network is compiled once into per-(switch, ingress-port) rule nodes
   whose outputs are resolved through the trusted wiring plan, and the
   full-space reachability of every queried source is precomputed.  A
   steady-state query is then a lookup: intersect the stored
   per-endpoint arrival spaces with the query scope instead of
   re-sweeping the rule graph.

   Exactness of scoped lookups.  Propagation without field rewrites is
   per-concrete-header: a header h propagates through a rule iff h lies
   in the rule's guard slice, independently of which other headers
   travel with it, and the BFS queue is depth-monotone, so the hop
   bound cuts both runs identically.  Hence the restricted run over
   [hs] arrives exactly where the full-space run arrives, intersected
   with [hs] — endpoints, controller captures, handoffs and traversal
   all restrict by intersection.  A Set_field rewrite breaks this
   (arrival spaces are images, not subsets), so a source whose compile
   pass applied any rewrite answers scoped queries by an exact
   propagation over the compiled tables instead (counted in
   [fallback_sweeps]); full-scope queries always return the stored
   result.

   Incremental maintenance.  Each switch carries a version stamp; a
   Flow-Mod ([update ~sw]) re-derives only that switch's node arrays
   and bumps its stamp.  Precomputed sources record the versions of the
   switches their pass traversed and are revalidated lazily on lookup:
   a source whose traversed switches are all unchanged stays valid (a
   rule on a switch the pass never visited cannot alter the result —
   the same dependency argument as {!Reach_cache}).  When a burst of
   updates between queries touches more distinct switches than
   [churn_threshold], the delta bookkeeping is abandoned and the whole
   graph recompiled. *)

let width = Hspace.Field.total_width

type engine = [ `Sweep | `Compiled ]

(* Where a rule output lands, resolved through the wiring plan at
   compile time.  Nodes are per ingress port, so flood expansion and
   ingress suppression are static. *)
type dest =
  | To_host of Verifier.endpoint
  | To_switch of int * int  (* next switch, its ingress port *)
  | To_handoff of int * int  (* arrival outside the boundary *)

(* One resolved action effect: the rewrites accumulated up to that
   point of the action list, then an emission or controller capture. *)
type step =
  | Emit of (Hspace.Field.name * int) list * dest
  | Ctrl of (Hspace.Field.name * int) list

type node = { guard : Verifier.guarded; steps : step list }

type stats = {
  mutable source_compiles : int;
  mutable lookups : int;
  mutable scoped_lookups : int;
  mutable fallback_sweeps : int;
  mutable updates : int;
  mutable stale_sources : int;
  mutable recompiles : int;
  mutable pool_warms : int;
}

(* A precomputed source: the full-space propagation from one injection
   point, plus everything needed to restrict it to a scope exactly. *)
type source = {
  s_result : Verifier.reach_result;  (* of [Hs.full width] *)
  s_seen : ((int * int) * Hspace.Hs.t) array;
      (* per-(switch, port) arrived spaces — scoped traversal needs
         port granularity, which [traversed] has already collapsed *)
  s_paths : (Verifier.endpoint * (Hspace.Tern.t * int list) list) list;
      (* per endpoint: every arriving cube with its witness path, in
         arrival order, so a scoped lookup can pick a path whose
         traffic actually overlaps the scope *)
  s_rewrote : bool;  (* a rewrite touched a non-empty space *)
  s_deps : (int * int) array;  (* (switch, version) per traversed switch *)
  mutable s_global : int;  (* fast-path validity stamp *)
}

type t = {
  flows_of : int -> Ofproto.Flow_entry.spec list;
  topo : Netsim.Topology.t;
  boundary : int -> bool;
  churn_threshold : int;
  tables : (int * int, node array) Hashtbl.t;  (* (sw, in_port) -> nodes *)
  versions : (int, int) Hashtbl.t;
  mutable global_version : int;
  sources : (int * int, source) Hashtbl.t;  (* (src_sw, src_port) *)
  dirty : (int, unit) Hashtbl.t;
      (* distinct switches updated since the last recompile or query —
         the churn-threshold trigger *)
  stale : (int, unit) Hashtbl.t;
      (* switches whose node arrays are out of date — re-derived in one
         batch at the next query instead of once per Flow-Mod, so an
         install burst of [k] rules costs one refresh, not [k] *)
  stats : stats;
}

let stats t = t.stats

let compiled_sources t = Hashtbl.length t.sources

let churn_threshold t = t.churn_threshold

let member_switches t = List.filter t.boundary (Netsim.Topology.switches t.topo)

(* ---- graph construction ---- *)

let resolve_dest t sw out_port =
  let here = Netsim.Topology.{ node = Switch sw; port = out_port } in
  match Netsim.Topology.peer t.topo here with
  | None -> None
  | Some far -> (
    match far.Netsim.Topology.node with
    | Netsim.Topology.Host host ->
      Some (To_host { Verifier.host; sw; port = out_port })
    | Netsim.Topology.Switch next_sw ->
      if t.boundary next_sw then Some (To_switch (next_sw, far.Netsim.Topology.port))
      else Some (To_handoff (next_sw, far.Netsim.Topology.port)))

(* Resolve a rule's action list against the wiring, mirroring
   {!Verifier.symbolic_apply} step for step: outputs capture the
   rewrites accumulated so far; outputs to the ingress port are
   suppressed except via [In_port]; flood goes to every wired port but
   the ingress. *)
let compile_steps t sw ~in_port (spec : Ofproto.Flow_entry.spec) =
  let ports = Netsim.Topology.switch_ports t.topo sw in
  let flood_ports = List.filter (fun p -> p <> in_port) ports in
  let rws = ref [] in
  let steps = ref [] in
  let emit p =
    match resolve_dest t sw p with
    | None -> ()
    | Some dest -> steps := Emit (List.rev !rws, dest) :: !steps
  in
  List.iter
    (fun action ->
      match action with
      | Ofproto.Action.Output p -> if p <> in_port then emit p
      | Ofproto.Action.In_port -> emit in_port
      | Ofproto.Action.Flood -> List.iter emit flood_ports
      | Ofproto.Action.To_controller -> steps := Ctrl (List.rev !rws) :: !steps
      | Ofproto.Action.Set_field (f, v) -> rws := (f, v) :: !rws
      | Ofproto.Action.Set_queue _ -> ())
    spec.actions;
  List.rev !steps

let compile_port t sw port =
  Array.of_list
    (List.map
       (fun (g : Verifier.guarded) ->
         { guard = g; steps = compile_steps t sw ~in_port:port g.Verifier.g_spec })
       (Verifier.guarded_rules t.flows_of sw port))

let refresh_switch t sw =
  List.iter
    (fun port -> Hashtbl.replace t.tables (sw, port) (compile_port t sw port))
    (Netsim.Topology.switch_ports t.topo sw)

(* Bring every stale switch's tables current.  Runs at query (and
   instrumentation) entry, so the cost of a churn burst is one
   re-derivation per touched switch regardless of burst length. *)
let flush t =
  if Hashtbl.length t.stale > 0 then begin
    Hashtbl.iter (fun sw () -> refresh_switch t sw) t.stale;
    Hashtbl.reset t.stale
  end

(* ---- propagation over the compiled tables ---- *)

let apply_rewrites rws hs =
  match rws with
  | [] -> hs
  | _ ->
    Hspace.Hs.of_cubes width
      (List.map
         (fun c -> List.fold_left (fun c (f, v) -> Hspace.Field.set_exact c f v) c rws)
         (Hspace.Hs.cubes hs))

type propagation = {
  p_result : Verifier.reach_result;
  p_seen : ((int * int) * Hspace.Hs.t) array;
  p_paths : (Verifier.endpoint * (Hspace.Tern.t * int list) list) list;
  p_rewrote : bool;
}

(* The BFS of {!Verifier.reach_in}, verbatim in its semantics —
   per-(switch, port) seen-set dedup at enqueue, traversal marked on
   dequeue, O(1) depth bound — but walking precompiled node arrays
   instead of deriving guards and resolving wiring per visit. *)
let propagate t ~src_sw ~src_port ~hs =
  let seen : (int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 64 in
  let handoffs : (int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 8 in
  let endpoints : (Verifier.endpoint, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let controller : (int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let paths : (Verifier.endpoint, int list) Hashtbl.t = Hashtbl.create 16 in
  let cube_paths : (Verifier.endpoint, (Hspace.Tern.t * int list) list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let traversed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rule_visits = ref 0 in
  let rewrote = ref false in
  let queue = Queue.create () in
  let enqueue sw port hs path depth =
    if not (Hspace.Hs.is_empty hs) then begin
      let old =
        Option.value ~default:(Hspace.Hs.empty width) (Hashtbl.find_opt seen (sw, port))
      in
      let fresh = Hspace.Hs.diff hs old in
      if not (Hspace.Hs.is_empty fresh) then begin
        Hashtbl.replace seen (sw, port) (Hspace.Hs.union old fresh);
        Queue.add (sw, port, fresh, path, depth) queue
      end
    end
  in
  enqueue src_sw src_port hs [ src_sw ] 1;
  while not (Queue.is_empty queue) do
    let sw, port, hs, path, depth = Queue.pop queue in
    Hashtbl.replace traversed sw ();
    if depth <= Netsim.Packet.max_hops then
      Array.iter
        (fun node ->
          incr rule_visits;
          let matched = Verifier.rule_slice hs node.guard in
          if not (Hspace.Hs.is_empty matched) then
            List.iter
              (fun step ->
                match step with
                | Ctrl rws ->
                  if rws <> [] then rewrote := true;
                  let out = apply_rewrites rws matched in
                  let old =
                    Option.value ~default:(Hspace.Hs.empty width)
                      (Hashtbl.find_opt controller sw)
                  in
                  Hashtbl.replace controller sw (Hspace.Hs.union old out)
                | Emit (rws, dest) -> (
                  if rws <> [] then rewrote := true;
                  let out = apply_rewrites rws matched in
                  match dest with
                  | To_host ep ->
                    let old =
                      Option.value ~default:(Hspace.Hs.empty width)
                        (Hashtbl.find_opt endpoints ep)
                    in
                    Hashtbl.replace endpoints ep (Hspace.Hs.union old out);
                    let witness = List.rev path in
                    let cell =
                      match Hashtbl.find_opt cube_paths ep with
                      | Some cell -> cell
                      | None ->
                        let cell = ref [] in
                        Hashtbl.replace cube_paths ep cell;
                        cell
                    in
                    cell :=
                      !cell @ List.map (fun c -> (c, witness)) (Hspace.Hs.cubes out);
                    if not (Hashtbl.mem paths ep) then Hashtbl.replace paths ep witness
                  | To_switch (next_sw, next_port) ->
                    enqueue next_sw next_port out (next_sw :: path) (depth + 1)
                  | To_handoff (next_sw, next_port) ->
                    let key = (next_sw, next_port) in
                    let old =
                      Option.value ~default:(Hspace.Hs.empty width)
                        (Hashtbl.find_opt handoffs key)
                    in
                    Hashtbl.replace handoffs key (Hspace.Hs.union old out)))
              node.steps)
        (match Hashtbl.find_opt t.tables (sw, port) with Some a -> a | None -> [||])
  done;
  let result =
    {
      Verifier.endpoints =
        Hashtbl.fold (fun ep hs acc -> (ep, hs) :: acc) endpoints []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      controller_hits =
        Hashtbl.fold (fun sw hs acc -> (sw, hs) :: acc) controller []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      traversed =
        Hashtbl.fold (fun sw () acc -> sw :: acc) traversed [] |> List.sort compare;
      sample_paths =
        Hashtbl.fold (fun ep path acc -> (ep, path) :: acc) paths []
        |> List.sort (fun (a, _) (b, _) -> compare a b);
      handoffs =
        Hashtbl.fold (fun (sw, port) hs acc -> (sw, port, hs) :: acc) handoffs []
        |> List.sort compare;
      rule_visits = !rule_visits;
    }
  in
  {
    p_result = result;
    p_seen = Array.of_seq (Hashtbl.to_seq seen);
    p_paths =
      Hashtbl.fold (fun ep cell acc -> (ep, !cell) :: acc) cube_paths []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    p_rewrote = !rewrote;
  }

(* ---- precomputed sources ---- *)

(* Pure with respect to [t] (reads only), so [warm] can run it from
   worker domains; stats and table installs happen in the caller. *)
let compile_source t ~src_sw ~src_port =
  let p = propagate t ~src_sw ~src_port ~hs:(Hspace.Hs.full width) in
  let deps =
    Array.of_list
      (List.map
         (fun sw -> (sw, Option.value ~default:0 (Hashtbl.find_opt t.versions sw)))
         p.p_result.Verifier.traversed)
  in
  {
    s_result = p.p_result;
    s_seen = p.p_seen;
    s_paths = p.p_paths;
    s_rewrote = p.p_rewrote;
    s_deps = deps;
    s_global = t.global_version;
  }

let deps_current t s =
  Array.for_all
    (fun (sw, v) -> Option.value ~default:0 (Hashtbl.find_opt t.versions sw) = v)
    s.s_deps

let source t ~src_sw ~src_port =
  let key = (src_sw, src_port) in
  match Hashtbl.find_opt t.sources key with
  | Some s when s.s_global = t.global_version -> s
  | Some s when deps_current t s ->
    (* Other switches changed, none of them traversed: revalidate. *)
    s.s_global <- t.global_version;
    s
  | prior ->
    if prior <> None then t.stats.stale_sources <- t.stats.stale_sources + 1;
    let s = compile_source t ~src_sw ~src_port in
    t.stats.source_compiles <- t.stats.source_compiles + 1;
    Hashtbl.replace t.sources key s;
    s

(* ---- scoped lookup ---- *)

let is_full_scope hs =
  match Hspace.Hs.cubes hs with [ c ] -> Hspace.Tern.is_full c | _ -> false

let restrict s hs =
  let endpoints =
    List.filter_map
      (fun (ep, arr) ->
        let i = Hspace.Hs.inter arr hs in
        if Hspace.Hs.is_empty i then None else Some (ep, i))
      s.s_result.Verifier.endpoints
  in
  let controller_hits =
    List.filter_map
      (fun (sw, space) ->
        let i = Hspace.Hs.inter space hs in
        if Hspace.Hs.is_empty i then None else Some (sw, i))
      s.s_result.Verifier.controller_hits
  in
  let traversed =
    List.filter
      (fun sw ->
        Array.exists
          (fun ((sw', _), space) -> sw' = sw && Hspace.Hs.overlaps space hs)
          s.s_seen)
      s.s_result.Verifier.traversed
  in
  let handoffs =
    List.filter_map
      (fun (sw, port, space) ->
        let i = Hspace.Hs.inter space hs in
        if Hspace.Hs.is_empty i then None else Some (sw, port, i))
      s.s_result.Verifier.handoffs
  in
  let scope_cubes = Hspace.Hs.cubes hs in
  let sample_paths =
    List.filter_map
      (fun (ep, _) ->
        match List.assoc_opt ep s.s_paths with
        | None -> None
        | Some cps ->
          List.find_map
            (fun (cube, path) ->
              if List.exists (fun c -> Hspace.Tern.overlaps cube c) scope_cubes then
                Some (ep, path)
              else None)
            cps)
      endpoints
  in
  {
    Verifier.endpoints;
    controller_hits;
    traversed;
    sample_paths;
    handoffs;
    rule_visits = 0;  (* a lookup visits no rules — that is the point *)
  }

(* ---- the engine interface ---- *)

let reach t ~src_sw ~src_port ~hs =
  (* A query is the settle point of an update burst: the churn window
     for the recompile threshold restarts here. *)
  Hashtbl.reset t.dirty;
  flush t;
  let s = source t ~src_sw ~src_port in
  if is_full_scope hs then begin
    t.stats.lookups <- t.stats.lookups + 1;
    s.s_result
  end
  else if s.s_rewrote then begin
    (* Rewrites make restriction inexact; propagate the scope itself
       over the compiled tables (still no guard derivation). *)
    t.stats.fallback_sweeps <- t.stats.fallback_sweeps + 1;
    (propagate t ~src_sw ~src_port ~hs).p_result
  end
  else begin
    t.stats.lookups <- t.stats.lookups + 1;
    t.stats.scoped_lookups <- t.stats.scoped_lookups + 1;
    restrict s hs
  end

(* ---- incremental maintenance ---- *)

let recompile t =
  t.stats.recompiles <- t.stats.recompiles + 1;
  Hashtbl.reset t.sources;
  Hashtbl.reset t.dirty;
  t.global_version <- t.global_version + 1;
  List.iter
    (fun sw ->
      Hashtbl.replace t.versions sw t.global_version;
      Hashtbl.replace t.stale sw ())
    (member_switches t)

let update t ~sw =
  if t.boundary sw then begin
    t.stats.updates <- t.stats.updates + 1;
    Hashtbl.replace t.dirty sw ();
    if Hashtbl.length t.dirty > t.churn_threshold then recompile t
    else begin
      Hashtbl.replace t.stale sw ();
      t.global_version <- t.global_version + 1;
      Hashtbl.replace t.versions sw t.global_version
    end
  end

(* ---- construction ---- *)

let compile ?pool ?churn_threshold ?(boundary = fun _ -> true) ~flows_of topo =
  let t =
    {
      flows_of;
      topo;
      boundary;
      churn_threshold = 0;  (* patched below, needs member count *)
      tables = Hashtbl.create 64;
      versions = Hashtbl.create 16;
      global_version = 0;
      sources = Hashtbl.create 16;
      dirty = Hashtbl.create 8;
      stale = Hashtbl.create 8;
      stats =
        {
          source_compiles = 0;
          lookups = 0;
          scoped_lookups = 0;
          fallback_sweeps = 0;
          updates = 0;
          stale_sources = 0;
          recompiles = 0;
          pool_warms = 0;
        };
    }
  in
  let members = member_switches t in
  let threshold =
    match churn_threshold with
    | Some c -> max 1 c
    | None -> max 4 ((List.length members + 3) / 4)
  in
  let t = { t with churn_threshold = threshold } in
  List.iter (fun sw -> Hashtbl.replace t.versions sw 0) members;
  (match pool with
  | Some p when Support.Pool.size p > 1 && List.length members > 1 ->
    (* Table derivation partitioned over the pool: [compile_port] only
       reads [flows_of] and the wiring plan (pure reads). *)
    let xs = Array.of_list members in
    let derived =
      Support.Pool.parmap p
        (fun sw ->
          List.map
            (fun port -> (port, compile_port t sw port))
            (Netsim.Topology.switch_ports t.topo sw))
        xs
    in
    Array.iteri
      (fun i ports ->
        List.iter (fun (port, nodes) -> Hashtbl.replace t.tables (xs.(i), port) nodes) ports)
      derived
  | Some _ | None -> List.iter (refresh_switch t) members);
  t

let warm ?pool t ~points =
  flush t;
  let todo =
    List.filter
      (fun (sw, port) ->
        match Hashtbl.find_opt t.sources (sw, port) with
        | Some s -> not (s.s_global = t.global_version || deps_current t s)
        | None -> true)
      (List.sort_uniq compare points)
  in
  let install key s =
    t.stats.source_compiles <- t.stats.source_compiles + 1;
    Hashtbl.replace t.sources key s
  in
  if todo <> [] then t.stats.pool_warms <- t.stats.pool_warms + 1;
  match pool with
  | Some p when Support.Pool.size p > 1 && List.length todo > 1 ->
    (* [compile_source] is pure over [t]'s tables; installs and stats
       stay in this domain. *)
    let xs = Array.of_list todo in
    let compiled =
      Support.Pool.parmap p
        (fun (sw, port) -> compile_source t ~src_sw:sw ~src_port:port)
        xs
    in
    Array.iteri (fun i s -> install xs.(i) s) compiled
  | Some _ | None ->
    List.iter
      (fun (sw, port) -> install (sw, port) (compile_source t ~src_sw:sw ~src_port:port))
      todo

(* ---- instrumentation ---- *)

type graph_stats = { nodes : int; edges : int; ports : int }

(* The plumbing edges: a rule's rewritten match bound against the
   guards of the next hop's ingress table, prefilter-rejected first —
   the (rule, rule) adjacency NetPlumber materialises, derived here on
   demand for instrumentation. *)
let graph t =
  flush t;
  let nodes = Hashtbl.fold (fun _ arr acc -> acc + Array.length arr) t.tables 0 in
  let ports = Hashtbl.length t.tables in
  let edges = ref 0 in
  Hashtbl.iter
    (fun _ arr ->
      Array.iter
        (fun node ->
          List.iter
            (fun step ->
              match step with
              | Ctrl _ -> ()
              | Emit (rws, dest) -> (
                match dest with
                | To_host _ | To_handoff _ -> incr edges
                | To_switch (next_sw, next_port) ->
                  let out_bound =
                    List.fold_left
                      (fun c (f, v) -> Hspace.Field.set_exact c f v)
                      node.guard.Verifier.g_cube rws
                  in
                  Array.iter
                    (fun (tgt : node) ->
                      if
                        (not
                           (Hspace.Tern.prefilter_disjoint tgt.guard.Verifier.g_pre
                              out_bound))
                        && Hspace.Tern.overlaps tgt.guard.Verifier.g_cube out_bound
                      then incr edges)
                    (match Hashtbl.find_opt t.tables (next_sw, next_port) with
                    | Some a -> a
                    | None -> [||])))
            node.steps)
        arr)
    t.tables;
  { nodes; edges = !edges; ports }
