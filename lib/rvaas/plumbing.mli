(** Compiled plumbing graph: equivalence-class reachability without
    per-query sweeps (paper §IV-A.2's scale-up lineage).

    {!Verifier.reach_in} pays a full rule-graph traversal per query;
    the delta-aware {!Reach_cache} only amortises {e repeated}
    queries.  This engine compiles a configuration view + topology
    once into per-(switch, ingress-port) arrays of guarded rule nodes
    — each rule's match cube, its higher-priority shadow (the exact
    guard representation of the sweep, see {!Verifier.guarded}) and
    its action list resolved through the trusted wiring plan — and
    precomputes, per queried source, the reachable header-space sets
    of a full-space propagation.  Steady-state queries are then
    answered by intersecting the stored arrival sets with the query
    scope: no guard derivation, no traversal.

    Scoped lookups are {e exact} when the compile pass applied no
    field rewrite (propagation is per-concrete-header and the BFS is
    depth-monotone, so restriction commutes with reachability); a
    rewriting source falls back to an exact propagation of the scope
    over the compiled tables.  [rule_visits] is 0 for restricted
    lookups and the compile pass's count for full-scope ones.

    Incremental maintenance: {!update} re-derives only the touched
    switch's node arrays and bumps a per-switch version; precomputed
    sources revalidate lazily against the versions of the switches
    their pass traversed.  An update burst touching more distinct
    switches than the churn threshold triggers a full recompile.

    The module is single-domain: share one [t] per thread of control.
    Only {!compile} and {!warm} use the optional pool, with pure-read
    workers and all installs in the calling domain. *)

(** The verification engine selector threaded through
    {!Service}, {!Federation}, [Scenario.spec] and the CLI. *)
type engine = [ `Sweep | `Compiled ]

type t

type stats = {
  mutable source_compiles : int;
      (** full-space propagations run (initial compiles and stale
          re-derivations) *)
  mutable lookups : int;  (** queries answered from a precomputed source *)
  mutable scoped_lookups : int;  (** of which: restricted by intersection *)
  mutable fallback_sweeps : int;
      (** scoped queries on rewriting sources, answered by exact
          propagation over the compiled tables *)
  mutable updates : int;  (** incremental per-switch deltas applied *)
  mutable stale_sources : int;
      (** precomputed sources re-derived because a traversed switch's
          version moved *)
  mutable recompiles : int;  (** churn-threshold full recompiles *)
  mutable pool_warms : int;
      (** {!warm} invocations that found >= 1 cold or stale source —
          the cross-source pooling the front-end seeds per flush *)
}

(** [compile ?pool ?churn_threshold ?boundary ~flows_of topo] builds
    the plumbing graph for every switch satisfying [boundary] (default
    all).  With a [boundary], arrivals at excluded switches are
    reported as handoffs, mirroring [Verifier.reach_in ?boundary] —
    the federation's per-domain view.  [churn_threshold] (default
    [max 4 (switches/4)]) bounds the update burst the delta path
    absorbs before recompiling.  When [pool] is given (size > 1) the
    per-switch table derivation is partitioned across it; [flows_of]
    must then be safe for concurrent pure reads. *)
val compile :
  ?pool:Support.Pool.t ->
  ?churn_threshold:int ->
  ?boundary:(int -> bool) ->
  flows_of:(int -> Ofproto.Flow_entry.spec list) ->
  Netsim.Topology.t ->
  t

(** [reach t ~src_sw ~src_port ~hs] answers the same question as
    {!Verifier.reach_in} on the same configuration view — equal
    endpoints, arrival spaces (up to {!Hspace.Hs.equal}), controller
    hits, traversal and handoffs — from the precomputed source,
    compiling or revalidating it on demand. *)
val reach :
  t -> src_sw:int -> src_port:int -> hs:Hspace.Hs.t -> Verifier.reach_result

(** [update t ~sw] applies an incremental delta: [sw]'s node arrays
    are re-derived from [flows_of] and its version bumped, leaving
    every other switch's slice and every non-traversing source
    untouched.  Wire it to {!Monitor.on_snapshot_change}'s [~changed]
    hook.  A no-op for switches outside the boundary. *)
val update : t -> sw:int -> unit

(** [warm ?pool t ~points] precompiles (or refreshes) the sources for
    the given [(switch, port)] injection points — typically every
    access point, or the injection points of one front-end flush —
    so later queries are pure lookups.  With [pool], source
    propagation is partitioned across workers.  Counted in
    [stats.pool_warms] when at least one source needed compiling. *)
val warm : ?pool:Support.Pool.t -> t -> points:(int * int) list -> unit

val stats : t -> stats

(** [compiled_sources t] counts currently precomputed sources. *)
val compiled_sources : t -> int

(** The effective churn threshold (resolved default included). *)
val churn_threshold : t -> int

(** Graph-size instrumentation: rule nodes, plumbing edges (a rule's
    rewritten match bound overlapping a next-hop guard, prefilter
    rejected first; host/handoff emissions count as one edge each) and
    compiled (switch, port) ingress tables. *)
type graph_stats = { nodes : int; edges : int; ports : int }

val graph : t -> graph_stats
