type kind =
  | Reachable_endpoints
  | Sources_reaching_me
  | Isolation
  | Geo
  | Path_length of { dst_ip : int }
  | Fairness
  | Transfer_summary

type t = { kind : kind; scope : Hspace.Hs.t option }

type endpoint_report = {
  sw : int;
  port : int;
  ip : int option;
  authenticated : bool;
  client : int option;
}

type answer = {
  nonce : string;
  kind : kind;
  endpoints : endpoint_report list;
  total_auth_requests : int;
  auth_replies : int;
  auth_attempts : int;
  degraded : bool;
  jurisdictions : string list;
  path_hops : (int * int) option;
  meters : (int * int) list;
  transfer : (int * int * Hspace.Hs.t) list;
  snapshot_age : float;
  throttled : bool;
}

let make ?scope kind = { kind; scope }

let kind_to_string = function
  | Reachable_endpoints -> "reachable"
  | Sources_reaching_me -> "sources"
  | Isolation -> "isolation"
  | Geo -> "geo"
  | Path_length { dst_ip } -> "path:" ^ string_of_int dst_ip
  | Fairness -> "fairness"
  | Transfer_summary -> "transfer"

let kind_of_string s =
  match s with
  | "reachable" -> Some Reachable_endpoints
  | "sources" -> Some Sources_reaching_me
  | "isolation" -> Some Isolation
  | "geo" -> Some Geo
  | "fairness" -> Some Fairness
  | "transfer" -> Some Transfer_summary
  | _ ->
    if String.length s > 5 && String.sub s 0 5 = "path:" then
      match int_of_string_opt (String.sub s 5 (String.length s - 5)) with
      | Some dst_ip -> Some (Path_length { dst_ip })
      | None -> None
    else None

let pp_kind fmt k = Format.pp_print_string fmt (kind_to_string k)

let pp_endpoint fmt e =
  Format.fprintf fmt "(sw=%d port=%d%a auth=%b%a)" e.sw e.port
    (fun fmt -> function None -> () | Some ip -> Format.fprintf fmt " ip=%x" ip)
    e.ip e.authenticated
    (fun fmt -> function None -> () | Some c -> Format.fprintf fmt " client=%d" c)
    e.client

let pp_answer fmt a =
  Format.fprintf fmt
    "@[<v>answer %a nonce=%s%s%s@ endpoints: %a@ auth %d/%d replies@ jurisdictions: %a%a%a@ snapshot_age=%.4fs@]"
    pp_kind a.kind a.nonce
    (if a.throttled then " THROTTLED" else "")
    (if a.degraded then " DEGRADED" else "")
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ") pp_endpoint)
    a.endpoints a.auth_replies a.total_auth_requests
    (Format.pp_print_list ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
       Format.pp_print_string)
    a.jurisdictions
    (fun fmt -> function
      | None -> ()
      | Some (hops, optimal) -> Format.fprintf fmt "@ hops=%d optimal=%d" hops optimal)
    a.path_hops
    (fun fmt -> function
      | [] -> ()
      | meters ->
        Format.fprintf fmt "@ meters: %a"
          (Format.pp_print_list
             ~pp_sep:(fun fmt () -> Format.fprintf fmt ", ")
             (fun fmt (id, rate) -> Format.fprintf fmt "%d@%dkbps" id rate))
          meters)
    a.meters a.snapshot_age
