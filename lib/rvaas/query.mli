(** Client queries and service answers (the paper's flexible query
    interface, §IV-A).

    A query is evaluated against the client's own access point (the
    "request point" the message arrived on), optionally restricted to a
    header-space scope.  Answers expose endpoint sets, jurisdiction
    sets, hop counts and meter configurations — but never internal
    paths, preserving the provider's autonomy. *)

type kind =
  | Reachable_endpoints
      (** which destinations can traffic leaving my network card reach? *)
  | Sources_reaching_me
      (** for which sources exist routing paths that reach my card? *)
  | Isolation
      (** which access points can enter my isolation domain? (superset
          of [Sources_reaching_me]: includes data-plane auth testing of
          every such point) *)
  | Geo  (** which jurisdictions can my traffic traverse? *)
  | Path_length of { dst_ip : int }
      (** how long are my paths to [dst_ip], and are they optimal? *)
  | Fairness
      (** which rate limits (meters) apply to my traffic? *)
  | Transfer_summary
      (** a compact representation of the transfer function of my
          routing service: for each reachable endpoint, the header
          space arriving there (paper §IV-A) *)

type t = { kind : kind; scope : Hspace.Hs.t option }

(** One access point in an answer.  [ip]/[client] are filled from
    authenticated replies; an unauthenticated endpoint is one that was
    probed but never (verifiably) answered. *)
type endpoint_report = {
  sw : int;
  port : int;
  ip : int option;
  authenticated : bool;
  client : int option;
}

type answer = {
  nonce : string;
  kind : kind;
  endpoints : endpoint_report list;
  total_auth_requests : int;
      (** the counting defence: lets the client detect suppressed
          endpoints (paper §IV-B.1) *)
  auth_replies : int;
  auth_attempts : int;
      (** auth-request transmissions for this query, retransmissions
          included — the message overhead of the lossy-channel retry
          layer ([= total_auth_requests] when nothing was retried) *)
  degraded : bool;
      (** the reply quorum was incomplete when the service finalized:
          some probed endpoint never (verifiably) answered within the
          retry budget.  The answer is still sound but may understate
          authenticated endpoints — clients should re-query rather than
          treat it as a clean verdict. *)
  jurisdictions : string list;
  path_hops : (int * int) option;  (** (observed hops, optimal hops) *)
  meters : (int * int) list;  (** (meter id, rate kbps) *)
  transfer : (int * int * Hspace.Hs.t) list;
      (** per (switch, port) endpoint: the headers arriving there — the
          compact transfer-function representation *)
  snapshot_age : float;  (** seconds since the config view was refreshed *)
  throttled : bool;
      (** the service's admission control rejected the query before
          evaluation (the requesting client exceeded its token-bucket
          budget): every result field is empty and the client should
          back off and re-ask.  Still signed — a throttle verdict must
          be as unforgeable as an answer. *)
}

(** [make ?scope kind] builds a query. *)
val make : ?scope:Hspace.Hs.t -> kind -> t

(** [kind_to_string k] / [kind_of_string s]: stable wire names. *)
val kind_to_string : kind -> string

val kind_of_string : string -> kind option

val pp_kind : Format.formatter -> kind -> unit

val pp_answer : Format.formatter -> answer -> unit
