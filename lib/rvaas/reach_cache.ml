type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
}

type t = {
  table : (string, Verifier.reach_result) Hashtbl.t;
  capacity : int;
  stats : stats;
}

let create ?(capacity = 4096) () =
  {
    table = Hashtbl.create 64;
    capacity = max 1 capacity;
    stats = { hits = 0; misses = 0; invalidations = 0 };
  }

let key ~snapshot ~src_sw ~src_port ~hs =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (string_of_int src_sw);
  Buffer.add_char buf '.';
  Buffer.add_string buf (string_of_int src_port);
  (* The cube list is normalised but its order depends on construction
     history; sort so structurally equal spaces key identically. *)
  List.iter
    (fun c ->
      Buffer.add_char buf '|';
      Buffer.add_string buf c)
    (List.sort String.compare (List.map Hspace.Tern.to_string (Hspace.Hs.cubes hs)));
  List.iter
    (fun (sw, d) -> Buffer.add_string buf (Printf.sprintf ";%d:%Lx" sw d))
    (Snapshot.digest_vector snapshot);
  Buffer.contents buf

let find t key =
  match Hashtbl.find_opt t.table key with
  | Some r ->
    t.stats.hits <- t.stats.hits + 1;
    Some r
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

let add t key result =
  if Hashtbl.length t.table >= t.capacity then Hashtbl.reset t.table;
  Hashtbl.replace t.table key result

let invalidate t =
  if Hashtbl.length t.table > 0 then begin
    Hashtbl.reset t.table;
    t.stats.invalidations <- t.stats.invalidations + 1
  end

let stats t = t.stats

let hit_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total

let length t = Hashtbl.length t.table
