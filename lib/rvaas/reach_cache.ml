type key = { k_sw : int; k_port : int; k_hs : int }

module Key = struct
  type t = key

  let equal a b = a.k_sw = b.k_sw && a.k_port = b.k_port && a.k_hs = b.k_hs

  let hash { k_sw; k_port; k_hs } =
    let h = (k_hs lxor (k_sw * 0x9E3779B1) lxor (k_port * 0x85EBCA77)) in
    h lxor (h lsr 27)
end

module Table = Hashtbl.Make (Key)

type entry = {
  result : Verifier.reach_result;
  deps : (int * int64) array;
      (* (switch, table digest at computation time) for every switch the
         pass traversed — the complete freshness dependency set *)
  mutable referenced : bool;  (* second-chance bit, set on every hit *)
}

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;
  mutable invalidated : int;
  mutable delta_evictions : int;
  mutable capacity_evictions : int;
  mutable clock_purged : int;
}

type t = {
  table : entry Table.t;
  clock : key Queue.t;
      (* insertion-ordered ring for the second-chance sweep; may hold
         stale keys of already-evicted entries, skipped when popped *)
  capacity : int;
  stats : stats;
}

let create ?(capacity = 4096) () =
  {
    table = Table.create 64;
    clock = Queue.create ();
    capacity = max 1 capacity;
    stats =
      {
        hits = 0;
        misses = 0;
        invalidations = 0;
        invalidated = 0;
        delta_evictions = 0;
        capacity_evictions = 0;
        clock_purged = 0;
      };
  }

let key ~src_sw ~src_port ~hs =
  { k_sw = src_sw; k_port = src_port; k_hs = Hspace.Hs.hash hs }

let find t key =
  match Table.find_opt t.table key with
  | Some e ->
    e.referenced <- true;
    t.stats.hits <- t.stats.hits + 1;
    Some e.result
  | None ->
    t.stats.misses <- t.stats.misses + 1;
    None

(* Pop clock keys until one names a live, not-recently-hit entry; that
   entry is evicted.  Referenced entries get their bit cleared and a
   second chance at the back of the ring, so the loop terminates: every
   pass over the ring clears bits and the ring holds at least one live
   entry when the table is non-empty. *)
let evict_one t =
  let evicted = ref false in
  while not !evicted && not (Queue.is_empty t.clock) do
    let k = Queue.pop t.clock in
    match Table.find_opt t.table k with
    | None -> () (* stale: already removed by a delta invalidation *)
    | Some e ->
      if e.referenced then begin
        e.referenced <- false;
        Queue.add k t.clock
      end
      else begin
        Table.remove t.table k;
        t.stats.capacity_evictions <- t.stats.capacity_evictions + 1;
        evicted := true
      end
  done

let add t key ~snapshot (result : Verifier.reach_result) =
  if not (Table.mem t.table key) then begin
    if Table.length t.table >= t.capacity then evict_one t;
    let deps =
      Array.of_list
        (List.map
           (fun sw -> (sw, Snapshot.switch_digest snapshot ~sw))
           result.Verifier.traversed)
    in
    Table.replace t.table key { result; deps; referenced = false };
    Queue.add key t.clock
  end

(* Delta invalidation removes table entries without touching the
   clock ring, so under delta-heavy workloads that never reach
   capacity the ring accumulates keys of dead entries indefinitely
   (the sweep only skips them when it actually runs).  Once the ring
   outgrows ~2x the live table, rebuild it: keep the first occurrence
   of every key still present in the table (preserving sweep order and
   second-chance fairness), drop dead keys and later duplicates. *)
let purge_clock t =
  let live = Table.length t.table in
  if Queue.length t.clock > (2 * live) + 16 then begin
    let kept = Queue.create () in
    let seen : unit Table.t = Table.create (live + 1) in
    Queue.iter
      (fun k ->
        if Table.mem t.table k && not (Table.mem seen k) then begin
          Table.replace seen k ();
          Queue.add k kept
        end
        else t.stats.clock_purged <- t.stats.clock_purged + 1)
      t.clock;
    Queue.clear t.clock;
    Queue.transfer kept t.clock
  end

let invalidate_switch t ~sw ~digest =
  let stale =
    Table.fold
      (fun k e acc ->
        let depends_changed =
          Array.exists (fun (s, d) -> s = sw && not (Int64.equal d digest)) e.deps
        in
        if depends_changed then k :: acc else acc)
      t.table []
  in
  List.iter (Table.remove t.table) stale;
  if stale <> [] then t.stats.invalidated <- t.stats.invalidated + 1;
  t.stats.delta_evictions <- t.stats.delta_evictions + List.length stale;
  purge_clock t

let invalidate t =
  if Table.length t.table > 0 then begin
    Table.reset t.table;
    Queue.clear t.clock;
    t.stats.invalidations <- t.stats.invalidations + 1
  end

let stats t = t.stats

let hit_rate t =
  let total = t.stats.hits + t.stats.misses in
  if total = 0 then 0.0 else float_of_int t.stats.hits /. float_of_int total

let length t = Table.length t.table

let clock_length t = Queue.length t.clock
