(** Incremental, digest-keyed reachability result cache.

    Client queries between reconfigurations are highly repetitive: an
    isolation query alone costs one full reach pass per access point,
    and clients re-ask the same questions (paper §IV-A.2's interactive
    workload).  This cache keys a {!Verifier.reach_result} by

    - the injection point (source switch, source port),
    - the queried header space, and
    - the per-switch flow-table digest vector of the believed
      configuration ({!Snapshot.digest_vector}),

    so a hit is only possible when the *entire* configuration view is
    byte-identical to when the result was computed — staleness is
    structurally impossible, no invalidation subtleties.  The
    digest-vector component is cheap because {!Snapshot} memoises
    per-switch digests between mutations.

    {!Service} additionally clears the cache from the monitor's
    snapshot-change hook: entries keyed by a superseded digest vector
    can never hit again and would only occupy memory. *)

type t

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** full clears (snapshot changes) *)
}

(** [create ?capacity ()] makes an empty cache.  When more than
    [capacity] (default 4096) results accumulate under one
    configuration, the cache is cleared rather than grown. *)
val create : ?capacity:int -> unit -> t

(** [key ~snapshot ~src_sw ~src_port ~hs] builds the lookup key for a
    reach pass over [snapshot]'s believed configuration. *)
val key : snapshot:Snapshot.t -> src_sw:int -> src_port:int -> hs:Hspace.Hs.t -> string

(** [find t key] returns the cached result and counts a hit/miss. *)
val find : t -> string -> Verifier.reach_result option

(** [add t key result] stores a computed result. *)
val add : t -> string -> Verifier.reach_result -> unit

(** [invalidate t] drops every entry (the snapshot changed). *)
val invalidate : t -> unit

val stats : t -> stats

(** [hit_rate t] is hits / (hits + misses), 0 when never consulted. *)
val hit_rate : t -> float

(** [length t] is the number of cached results. *)
val length : t -> int
