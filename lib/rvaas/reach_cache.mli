(** Incremental, delta-invalidated reachability result cache.

    Client queries between reconfigurations are highly repetitive: an
    isolation query alone costs one full reach pass per access point,
    and clients re-ask the same questions (paper §IV-A.2's interactive
    workload).  This cache keys a {!Verifier.reach_result} by the
    injection point (source switch, source port) and a 64-bit
    structural hash of the queried header space.

    Freshness is tracked per entry rather than baked into the key: each
    entry records the switches the reach pass {e traversed} and their
    flow-table digests at computation time.  A reach result depends
    only on the tables of traversed switches — a rule on a switch the
    pass never visited cannot alter it — so when a Flow-Mod lands on
    switch [s], {!invalidate_switch} evicts exactly the entries that
    traversed [s] (and whose recorded digest actually differs, so a
    reverted table keeps its entries).  Under rolling single-switch
    updates this retains the large majority of the cache, where the
    previous digest-vector key invalidated everything.

    Capacity is enforced by second-chance (clock) eviction: entries hit
    since their last consideration get another round instead of the
    whole cache being dropped. *)

type t

(** Lookup key: injection point plus the header-space hash.  Compact
    (three words) where the previous scheme serialised the cube list
    and digest vector into a multi-KB string. *)
type key

type stats = {
  mutable hits : int;
  mutable misses : int;
  mutable invalidations : int;  (** full clears ({!invalidate}) *)
  mutable invalidated : int;
      (** {!invalidate_switch} deltas that evicted at least one entry —
          distinguishes how often a delta actually hit the cache from
          how many entries it cost ([delta_evictions]) *)
  mutable delta_evictions : int;
      (** entries evicted by {!invalidate_switch} deltas *)
  mutable capacity_evictions : int;
      (** entries evicted by the second-chance sweep at capacity *)
  mutable clock_purged : int;
      (** stale ring slots (dead keys and duplicates) dropped by the
          bounded-clock purge — nonzero means the delta workload was
          leaking ring entries that capacity eviction alone would
          never have reclaimed *)
}

(** [create ?capacity ()] makes an empty cache holding at most
    [capacity] (default 4096) results; beyond that, second-chance
    eviction replaces the least recently hit entries one at a time. *)
val create : ?capacity:int -> unit -> t

(** [key ~src_sw ~src_port ~hs] builds the lookup key for a reach pass
    injected at [(src_sw, src_port)] with header space [hs]. *)
val key : src_sw:int -> src_port:int -> hs:Hspace.Hs.t -> key

(** [find t key] returns the cached result and counts a hit/miss.  A
    hit marks the entry recently-used for the second-chance sweep. *)
val find : t -> key -> Verifier.reach_result option

(** [add t key ~snapshot result] stores a computed result, recording
    the digest of every switch in [result.traversed] as read from
    [snapshot] — the entry's freshness dependencies. *)
val add : t -> key -> snapshot:Snapshot.t -> Verifier.reach_result -> unit

(** [invalidate_switch t ~sw ~digest] evicts every entry that traversed
    [sw] and recorded a digest other than [digest] (the switch's
    current table digest).  Entries that never consulted [sw], or that
    saw the identical table, remain valid and are kept.

    Delta evictions leave their keys in the second-chance ring (the
    sweep skips dead keys); to keep that bounded under delta-heavy
    workloads that never hit capacity, the ring is purged of dead keys
    and duplicates whenever it exceeds ~2x the live table size
    (counted in [stats.clock_purged], observable via
    {!clock_length}). *)
val invalidate_switch : t -> sw:int -> digest:int64 -> unit

(** [invalidate t] drops every entry (e.g. a topology-level change or
    a test forcing the non-incremental behaviour). *)
val invalidate : t -> unit

val stats : t -> stats

(** [hit_rate t] is hits / (hits + misses), 0 when never consulted. *)
val hit_rate : t -> float

(** [length t] is the number of cached results. *)
val length : t -> int

(** [clock_length t] is the current second-chance ring size, live
    entries plus not-yet-purged stale slots.  Bounded by
    [2 * length t + 16] at the delta-invalidation points. *)
val clock_length : t -> int
