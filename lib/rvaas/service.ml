type stats = {
  mutable queries_received : int;
  mutable queries_rejected : int;
  mutable queries_throttled : int;
  mutable queries_duplicate : int;
  mutable auth_requests_sent : int;
  mutable auth_retransmissions : int;
  mutable auth_replies_accepted : int;
  mutable auth_replies_duplicate : int;
  mutable auth_replies_rejected : int;
  mutable answers_sent : int;
  mutable intercepts_reinstalled : int;
  mutable queries_reissued : int;
  mutable sweep_faults : int;
}

type retry = { attempts : int; base_delay : float }

let no_retry = { attempts = 1; base_delay = 0.0 }

type probe = {
  target : Verifier.endpoint;
  mutable challenge : string;
      (* re-keyed on retransmission after a session loss: a challenge
         that may have leaked with the dead session is never re-used *)
  mutable attempts_made : int;
  mutable seen_authenticated : bool;
  mutable seen_ip : int option;
  mutable seen_client : int option;
}

(* One client waiting on a computation.  Coalescing makes the
   pending-to-requester relation one-to-many: each requester gets its
   own signed answer (under its own nonce, at its own access point)
   when the shared computation finalizes. *)
type requester = {
  r_nonce : string;
  r_client : int;
  r_sw : int;
  r_port : int;
  r_ip : int;
}

(* A narrower query riding a broader computation: its endpoints are
   the subset of the subsumer's probes whose arrival space overlaps
   the slice scope, its answer sliced out at the shared finalize. *)
type slice_pending = {
  sp_query : Query.t;  (* the sliced query, journalled for re-issue *)
  sp_base : Query.answer;
  sp_targets : Verifier.endpoint list;  (* subset of the subsumer's *)
  mutable sp_waiters : requester list;  (* newest first *)
}

(* What makes an in-flight computation joinable by narrower queries:
   its injection point, the effective scope it evaluated, and the
   arrival space per endpoint (exact — rewrite-tainted results are
   never indexed). *)
type cover = {
  c_point : int * int;
  c_scope : Hspace.Hs.t;
  c_arrivals : (Verifier.endpoint * Hspace.Hs.t) list;
}

type pending = {
  key : Frontend.key option;
      (* coalescing key while this computation is in flight; [Some]
         iff it was opened through a coalescing front-end (recovery
         re-issues bypass the front-end and never coalesce) *)
  base : Query.answer;  (** logical part, endpoints filled at finalize *)
  query : Query.t;  (** the parsed query, journalled for re-issue *)
  probes : probe list;
  mutable requesters : requester list;  (* newest first *)
  mutable slices : slice_pending list;  (* newest first *)
  cover : cover option;
      (* [Some] iff indexed in [t.subsumable] for in-flight joins *)
  mutable finalized : bool;
      (* an early finalize (full quorum) races the scheduled one *)
  mutable deadline_at : float;
      (* the currently-armed finalize deadline; a timer firing for an
         older deadline (pre-retransmission) must not finalize with
         partial results *)
}

type t = {
  net : Netsim.Net.t;
  monitor : Monitor.t;
  directory : Directory.t;
  geo : Geo.Registry.t;
  keypair : Cryptosim.Keys.keypair;
  auth_timeout : float;
  retry : retry;
  sweep_deadline : float option;
      (* per-task wall-clock deadline for pool sweeps; enables the
         supervised pool path so a wedged worker cannot stall answers *)
  mutable live : bool;
      (* cleared by [kill]: a crashed controller's queued timers and
         handlers must become no-ops, not ghost answers *)
  stats : stats;
  rng : Support.Rng.t;
  pending : (string, pending) Hashtbl.t; (* keyed by challenge *)
  open_queries : (string, pending) Hashtbl.t;
      (* keyed by requester nonce, until answered; many nonces can map
         to one coalesced pending *)
  frontend : requester Frontend.t;
      (* admission + coalescing + batching policy in front of
         evaluation; default config = admit all, no coalescing, no
         settle tick (the seed behaviour) *)
  coalesced : (Frontend.key, pending) Hashtbl.t;
      (* in-flight computations by coalescing key: a query identical
         to one already evaluating joins it as an extra requester *)
  subsumable : (int * int, pending list ref) Hashtbl.t;
      (* in-flight [Reachable_endpoints] computations by injection
         point whose arrival spaces are exact (untainted): a narrower
         query at the same point joins one as a slice waiter *)
  queued_nonces : (string, unit) Hashtbl.t;
      (* nonces waiting in the front-end queue (batch_window > 0),
         not yet in [open_queries] — consulted by the duplicate-
         delivery check, cleared at each flush *)
  measurement : Cryptosim.Attest.measurement;
  mutable ctx : Verifier.ctx;
      (* incremental verification context: guards cached across queries,
         invalidated per switch when the monitored snapshot changes *)
  mutable pool : Support.Pool.t;
      (* worker pool for per-access-point sweeps (isolation queries) *)
  cache : Reach_cache.t;
      (* reach results keyed by (src, hs-hash); the snapshot-change
         hook evicts only entries that traversed the changed switch *)
  plumbing : Plumbing.t option;
      (* the compiled engine, present iff [engine = `Compiled]: reach
         questions become graph lookups, maintained incrementally by
         the snapshot-change hook *)
}

let code_identity = "rvaas-service-v1"

let public t = Cryptosim.Keys.public t.keypair

let stats t = t.stats

let measurement t = t.measurement

let attest t ~nonce = Cryptosim.Attest.quote ~measurement:t.measurement ~nonce

let now t = Netsim.Sim.now (Netsim.Net.sim t.net)

let fresh_hex t = Printf.sprintf "%015x" (Support.Rng.bits t.rng)

let topo t = Netsim.Net.topology t.net

let set_pool t pool = t.pool <- pool

let pool t = t.pool

let reach_cache t = t.cache

let plumbing t = t.plumbing

let engine t : Plumbing.engine =
  match t.plumbing with Some _ -> `Compiled | None -> `Sweep

let reach t ~src_sw ~src_port ~hs =
  match t.plumbing with
  | Some p -> Plumbing.reach p ~src_sw ~src_port ~hs
  | None -> (
    let key = Reach_cache.key ~src_sw ~src_port ~hs in
    match Reach_cache.find t.cache key with
    | Some r -> r
    | None ->
      let r = Verifier.reach_in t.ctx ~src_sw ~src_port ~hs in
      Reach_cache.add t.cache key ~snapshot:(Monitor.snapshot t.monitor) r;
      r)

(* A frozen, read-only copy of the believed per-switch rule lists:
   worker domains must not race on the live snapshot hashtable. *)
let frozen_flows t =
  let snapshot = Monitor.snapshot t.monitor in
  let tables = Hashtbl.create 32 in
  List.iter
    (fun sw -> Hashtbl.replace tables sw (Snapshot.flows snapshot ~sw))
    (Snapshot.switches snapshot);
  fun sw -> Option.value ~default:[] (Hashtbl.find_opt tables sw)

(* One reach pass per source endpoint, cache-first; misses are
   partitioned over the pool (per-worker contexts on a frozen flow
   view).  Returns results in input order. *)
let reach_each_sweep t ~hs points =
  let snapshot = Monitor.snapshot t.monitor in
  let looked_up =
    List.map
      (fun (p : Verifier.endpoint) ->
        let key = Reach_cache.key ~src_sw:p.sw ~src_port:p.port ~hs in
        (p, key, Reach_cache.find t.cache key))
      points
  in
  let missing =
    List.filter_map
      (fun (p, key, r) -> if Option.is_none r then Some (p, key) else None)
      looked_up
  in
  let computed =
    match missing with
    | [] -> []
    | _ when Support.Pool.size t.pool > 1 && List.length missing > 1 ->
      let flows_of = frozen_flows t in
      let topology = topo t in
      let init () = Verifier.context ~flows_of topology in
      let f ctx ((p : Verifier.endpoint), _key) =
        Verifier.reach_in ctx ~src_sw:p.sw ~src_port:p.port ~hs
      in
      let xs = Array.of_list missing in
      (match t.sweep_deadline with
      | Some deadline ->
        (* Supervised: a worker that raises or wedges past [deadline]
           costs one sequential retry, never a stuck answer. *)
        Support.Pool.parmap_supervised t.pool ~deadline
          ~on_fault:(fun _ -> t.stats.sweep_faults <- t.stats.sweep_faults + 1)
          ~init ~f xs
      | None -> Support.Pool.parmap_init t.pool ~init ~f xs)
      |> Array.to_list
    | _ ->
      List.map
        (fun ((p : Verifier.endpoint), _key) ->
          Verifier.reach_in t.ctx ~src_sw:p.sw ~src_port:p.port ~hs)
        missing
  in
  let fresh = Hashtbl.create 16 in
  List.iter2
    (fun ((p : Verifier.endpoint), key) r ->
      Reach_cache.add t.cache key ~snapshot r;
      Hashtbl.replace fresh p r)
    missing computed;
  List.map
    (fun (p, _, cached) ->
      match cached with
      | Some r -> (p, r)
      | None -> (p, Hashtbl.find fresh p))
    looked_up

let reach_each t ~hs points =
  match t.plumbing with
  | Some plumbing ->
    (* Compiled engine: each point is a precomputed-source lookup —
       cheap enough that partitioning over the pool would cost more in
       coordination than it saves (and [Plumbing.t] is single-domain). *)
    List.map
      (fun (p : Verifier.endpoint) ->
        (p, Plumbing.reach plumbing ~src_sw:p.sw ~src_port:p.port ~hs))
      points
  | None -> reach_each_sweep t ~hs points

(* Restrict a client scope to IP traffic; queries never see non-IP
   control frames. *)
let effective_scope scope =
  let ip = Verifier.ip_traffic_hs () in
  match scope with None -> ip | Some hs -> Hspace.Hs.inter hs ip

let empty_answer t ~nonce ~kind =
  {
    Query.nonce;
    kind;
    endpoints = [];
    total_auth_requests = 0;
    auth_replies = 0;
    auth_attempts = 0;
    degraded = false;
    jurisdictions = [];
    path_hops = None;
    meters = [];
    transfer = [];
    snapshot_age = Snapshot.age (Monitor.snapshot t.monitor) ~now:(now t);
    throttled = false;
  }

(* Meters whose owning rule can touch the client's traffic: any rule
   with a meter whose match overlaps the client's subnet (either
   direction). *)
let fairness_meters t ~client =
  match Directory.find t.directory ~client with
  | None | Some { subnet = None; _ } -> []
  | Some { subnet = Some (value, prefix_len); _ } ->
    let width = Hspace.Field.total_width in
    let subnet_dst =
      Hspace.Field.set_prefix (Hspace.Tern.all_x width) Hspace.Field.Ip_dst ~value
        ~prefix_len
    and subnet_src =
      Hspace.Field.set_prefix (Hspace.Tern.all_x width) Hspace.Field.Ip_src ~value
        ~prefix_len
    in
    let snapshot = Monitor.snapshot t.monitor in
    List.concat_map
      (fun sw ->
        let meters = Snapshot.meters snapshot ~sw in
        List.filter_map
          (fun (spec : Ofproto.Flow_entry.spec) ->
            match spec.meter with
            | None -> None
            | Some id ->
              let cube = Ofproto.Match_.to_tern spec.match_ in
              if Hspace.Tern.overlaps cube subnet_dst || Hspace.Tern.overlaps cube subnet_src
              then
                Option.map
                  (fun band -> (id, band.Ofproto.Meter.rate_kbps))
                  (List.assoc_opt id meters)
              else None)
          (Snapshot.flows snapshot ~sw))
      (Snapshot.switches snapshot)
    |> List.sort_uniq compare

let jurisdictions_of t sws = Geo.Registry.jurisdictions_of t.geo ~sws

(* The logical evaluation shared by the in-band path and by direct
   calls from tests/benchmarks. *)
let evaluate t ~client ~sw ~port (query : Query.t) =
  let nonce = fresh_hex t in
  let answer = empty_answer t ~nonce ~kind:query.kind in
  let scope = effective_scope query.scope in
  match query.kind with
  | Query.Reachable_endpoints ->
    let r = reach t ~src_sw:sw ~src_port:port ~hs:scope in
    (answer, List.map fst r.endpoints)
  | Query.Sources_reaching_me | Query.Isolation ->
    (* Isolation ignores any client-narrowed scope: the question is
       whether *any* traffic can enter the client's domain. *)
    let hs =
      match query.kind with Query.Isolation -> Verifier.ip_traffic_hs () | _ -> scope
    in
    let points = Verifier.access_points (topo t) in
    let targets =
      List.filter
        (fun (ep : Verifier.endpoint) ->
          Directory.client_of_host t.directory ~host:ep.host = Some client)
        points
    in
    (* One forward reachability pass per candidate access point — the
       system's hot path.  Cached results are reused (digest-keyed, so
       only valid for the current configuration); the remaining passes
       are partitioned over the worker pool.  A point is a source when
       its traffic can arrive at any of the client's own points. *)
    let candidates =
      List.filter (fun (src : Verifier.endpoint) -> not (List.mem src targets)) points
    in
    let sources =
      List.filter_map
        (fun ((src : Verifier.endpoint), (r : Verifier.reach_result)) ->
          if List.exists (fun (ep, _) -> List.mem ep targets) r.endpoints then Some src
          else None)
        (reach_each t ~hs candidates)
    in
    (* The client's own points always belong in the report (they can
       reach the client by definition of its isolation domain). *)
    (answer, targets @ sources)
  | Query.Geo ->
    let r = reach t ~src_sw:sw ~src_port:port ~hs:scope in
    ({ answer with jurisdictions = jurisdictions_of t r.traversed }, [])
  | Query.Path_length { dst_ip } ->
    let hs = Hspace.Hs.inter scope (Verifier.dst_ip_hs dst_ip) in
    let r = reach t ~src_sw:sw ~src_port:port ~hs in
    let observed =
      List.fold_left
        (fun acc ((_ : Verifier.endpoint), path) -> max acc (List.length path))
        0 r.sample_paths
    in
    let optimal =
      List.fold_left
        (fun acc ((ep : Verifier.endpoint), _) ->
          let dist, _ = Netsim.Topology.shortest_paths (topo t) ~from_sw:sw in
          match Hashtbl.find_opt dist ep.sw with
          | Some d -> min acc (d + 1)
          | None -> acc)
        max_int r.sample_paths
    in
    let path_hops = if observed = 0 then None else Some (observed, min observed optimal) in
    ({ answer with path_hops }, [])
  | Query.Fairness -> ({ answer with meters = fairness_meters t ~client }, [])
  | Query.Transfer_summary ->
    let r = reach t ~src_sw:sw ~src_port:port ~hs:scope in
    let transfer =
      List.map
        (fun ((ep : Verifier.endpoint), arriving) -> (ep.sw, ep.port, arriving))
        r.endpoints
    in
    ({ answer with transfer }, [])

(* ---- in-band protocol ---- *)

let packet_out t ~sw ~port header payload =
  Netsim.Net.send t.net (Monitor.conn t.monitor) ~sw
    (Ofproto.Message.Packet_out { port; header; payload })

(* The shared (requester-independent) part of an answer over a probe
   subset — built once per computation (or per slice, over the slice's
   targets), then re-nonced, re-signed and fanned out to every
   requester. *)
let answer_of ~(base : Query.answer) probes =
  let endpoints =
    List.map
      (fun probe ->
        {
          Query.sw = probe.target.Verifier.sw;
          port = probe.target.Verifier.port;
          ip = probe.seen_ip;
          authenticated = probe.seen_authenticated;
          client = probe.seen_client;
        })
      probes
  in
  let replies = List.length (List.filter (fun pr -> pr.seen_authenticated) probes) in
  {
    base with
    Query.endpoints;
    total_auth_requests = List.length probes;
    auth_replies = replies;
    auth_attempts = List.fold_left (fun acc pr -> acc + pr.attempts_made) 0 probes;
    degraded = replies < List.length probes;
  }

let answer_template (p : pending) = answer_of ~base:p.base p.probes

let send_answer t answer (r : requester) =
  let payload = Codec.encode_answer answer ~signer:t.keypair in
  let header =
    Hspace.Header.udp ~src_ip:Wire.service_ip ~dst_ip:r.r_ip ~src_port:0
      ~dst_port:Wire.answer_port
  in
  t.stats.answers_sent <- t.stats.answers_sent + 1;
  packet_out t ~sw:r.r_sw ~port:r.r_port header payload

let journal_record t record =
  match Monitor.journal t.monitor with
  | None -> ()
  | Some j -> Journal.append j ~at:(now t) ~snapshot:(Monitor.snapshot t.monitor) record

(* Remove a finalized (or torn-down) computation from the in-flight
   subsumption index. *)
let drop_cover t (p : pending) =
  match p.cover with
  | None -> ()
  | Some c -> (
    match Hashtbl.find_opt t.subsumable c.c_point with
    | Some cell ->
      cell := List.filter (fun q -> q != p) !cell;
      if !cell = [] then Hashtbl.remove t.subsumable c.c_point
    | None -> ())

let finalize t (p : pending) =
  if t.live && not p.finalized then
    if not (Netsim.Net.conn_up (Monitor.conn t.monitor)) then
      (* Session down: the answer Packet-Out would vanish with it.
         Hold the query open — [retransmit_pending] re-drives it once
         the session is back (or a standby re-issues it from the
         journal). *)
      ()
    else begin
      p.finalized <- true;
      List.iter (fun probe -> Hashtbl.remove t.pending probe.challenge) p.probes;
      drop_cover t p;
      (match p.key with
      | Some k -> (
        (* Only drop the coalescing slot if it is still ours — a
           later computation may have taken the key over. *)
        match Hashtbl.find_opt t.coalesced k with
        | Some q when q == p -> Hashtbl.remove t.coalesced k
        | _ -> ())
      | None -> ());
      let answer_out template (r : requester) =
        (* Guarded removal: never evict a nonce that a newer pending
           owns (the duplicate-replay corruption this fan-out
           replaced). *)
        (match Hashtbl.find_opt t.open_queries r.r_nonce with
        | Some q when q == p -> Hashtbl.remove t.open_queries r.r_nonce
        | _ -> ());
        send_answer t { template with Query.nonce = r.r_nonce } r;
        journal_record t (Journal.Query_closed { nonce = r.r_nonce })
      in
      let template = answer_template p in
      List.iter (answer_out template) (List.rev p.requesters);
      (* Slice fan-out: each riding query's answer is the subsumer's
         probe results restricted to the slice's own targets, under the
         slice's own logical base. *)
      List.iter
        (fun sp ->
          let probes =
            List.filter (fun pr -> List.mem pr.target sp.sp_targets) p.probes
          in
          let template = answer_of ~base:sp.sp_base probes in
          List.iter (answer_out template) (List.rev sp.sp_waiters))
        (List.rev p.slices)
    end

let quorum_complete (p : pending) =
  List.for_all (fun pr -> pr.seen_authenticated) p.probes

let send_auth_request t (probe : probe) =
  let dst_ip =
    Option.value ~default:0 (Directory.host_ip t.directory ~host:probe.target.Verifier.host)
  in
  let payload = Codec.encode_auth_request ~challenge:probe.challenge ~signer:t.keypair in
  let header =
    Hspace.Header.udp ~src_ip:Wire.service_ip ~dst_ip ~src_port:0
      ~dst_port:Wire.auth_request_port
  in
  t.stats.auth_requests_sent <- t.stats.auth_requests_sent + 1;
  if probe.attempts_made > 0 then
    t.stats.auth_retransmissions <- t.stats.auth_retransmissions + 1;
  probe.attempts_made <- probe.attempts_made + 1;
  packet_out t ~sw:probe.target.Verifier.sw ~port:probe.target.Verifier.port header payload

(* Attempt [k] retransmits every probe still unanswered; attempt [k+1]
   follows after [base_delay * 2^k] (exponential backoff).  The answer
   is finalized [auth_timeout] after the last attempt, or as soon as
   the reply quorum is complete — a lossless run with retries enabled
   costs no extra latency or messages. *)
(* Arm (or re-arm) the finalize deadline.  A timer armed before a
   retransmission round must not finalize with the partial results of
   the old round: each timer only fires [finalize] when its own
   deadline is still the current one. *)
let arm_finalize t (p : pending) =
  let deadline = now t +. t.auth_timeout in
  p.deadline_at <- deadline;
  Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:t.auth_timeout (fun () ->
      if p.deadline_at <= deadline then finalize t p)

let dispatch_probes t (p : pending) =
  let sim = Netsim.Net.sim t.net in
  let rec attempt k =
    if t.live && not p.finalized then begin
      List.iter
        (fun probe -> if not probe.seen_authenticated then send_auth_request t probe)
        p.probes;
      if k + 1 < t.retry.attempts then
        Netsim.Sim.schedule sim
          ~delay:(t.retry.base_delay *. (2.0 ** float_of_int k))
          (fun () -> attempt (k + 1))
      else arm_finalize t p
    end
  in
  attempt 0

(* A nonce about to be (re-)opened that still maps to an older
   pending: detach that requester from the old computation.  When it
   was the last one, tear the old computation down — challenges out of
   [t.pending], timers neutered, coalescing slot released — so nothing
   of it can fire again (the replace path that used to orphan
   challenges and double-send answers). *)
let supersede t nonce =
  match Hashtbl.find_opt t.open_queries nonce with
  | None -> ()
  | Some old ->
    old.requesters <-
      List.filter (fun r -> not (String.equal r.r_nonce nonce)) old.requesters;
    List.iter
      (fun sp ->
        sp.sp_waiters <-
          List.filter
            (fun (r : requester) -> not (String.equal r.r_nonce nonce))
            sp.sp_waiters)
      old.slices;
    old.slices <- List.filter (fun sp -> sp.sp_waiters <> []) old.slices;
    if old.requesters = [] && old.slices = [] then begin
      old.finalized <- true;
      List.iter (fun probe -> Hashtbl.remove t.pending probe.challenge) old.probes;
      drop_cover t old;
      match old.key with
      | Some k -> (
        match Hashtbl.find_opt t.coalesced k with
        | Some q when q == old -> Hashtbl.remove t.coalesced k
        | _ -> ())
      | None -> ()
    end

(* Open one computation for [requesters] (already evaluated to [base]
   + probe [targets]) — plus any [slices] riding it — and drive its
   auth-probe round.  A [cover] indexes the computation in
   [t.subsumable] so later narrower queries can join it in flight. *)
let open_with t ~key ~query ~base ~targets ?(slices = []) ?cover ~requesters () =
  let probes =
    List.map
      (fun target ->
        {
          target;
          challenge = fresh_hex t;
          attempts_made = 0;
          seen_authenticated = false;
          seen_ip = None;
          seen_client = None;
        })
      targets
  in
  let p =
    {
      key;
      base;
      query;
      probes;
      requesters;
      slices;
      cover;
      finalized = false;
      deadline_at = 0.0;
    }
  in
  let register query (r : requester) =
    supersede t r.r_nonce;
    Hashtbl.replace t.open_queries r.r_nonce p;
    journal_record t
      (Journal.Query_opened
         {
           q_nonce = r.r_nonce;
           q_client = r.r_client;
           q_sw = r.r_sw;
           q_port = r.r_port;
           q_ip = Some r.r_ip;
           q_query = query;
         })
  in
  List.iter (register query) (List.rev requesters);
  (* Slice waiters journal their own (narrower) query: a recovering
     standby re-issues the question the client actually asked, not the
     broader computation it happened to ride. *)
  List.iter
    (fun sp -> List.iter (register sp.sp_query) (List.rev sp.sp_waiters))
    (List.rev slices);
  (match key with Some k -> Hashtbl.replace t.coalesced k p | None -> ());
  (match cover with
  | Some c ->
    let cell =
      match Hashtbl.find_opt t.subsumable c.c_point with
      | Some cell -> cell
      | None ->
        let cell = ref [] in
        Hashtbl.replace t.subsumable c.c_point cell;
        cell
    in
    cell := p :: !cell
  | None -> ());
  if probes = [] then finalize t p
  else begin
    List.iter (fun probe -> Hashtbl.replace t.pending probe.challenge p) probes;
    dispatch_probes t p
  end

(* Evaluate a query and drive its auth-probe round.  Used by [reissue]
   (a recovering controller re-driving a query recorded in the
   journal) — recovery bypasses admission and coalescing. *)
let open_query t ~client ~nonce ~sw ~port ~ip query =
  let base, targets = evaluate t ~client ~sw ~port query in
  open_with t ~key:None ~query ~base ~targets
    ~requesters:[ { r_nonce = nonce; r_client = client; r_sw = sw; r_port = port; r_ip = ip } ]
    ()

(* A rewrite anywhere on the swept region makes the union split
   unsound: arrival spaces of the pooled sweep may mix headers that
   entered under different members' scopes.  Conservative and cheap —
   scan the traversed switches (a superset of any member's traversal)
   for rewriting actions. *)
let union_tainted t (r : Verifier.reach_result) =
  let snapshot = Monitor.snapshot t.monitor in
  List.exists
    (fun sw ->
      List.exists
        (fun (spec : Ofproto.Flow_entry.spec) ->
          Ofproto.Action.rewrites spec.actions <> [])
        (Snapshot.flows snapshot ~sw))
    r.Verifier.traversed

(* Open a [Reachable_endpoints] computation whose arrival spaces are
   in hand, together with the slices riding it.  Untainted results are
   indexed ([cover]) for in-flight subsumption.  A rewrite on the
   region makes the slice intersection unsound, so — mirroring
   [open_batch]'s fallback — the subsumer still answers its own
   waiters exactly while every slice re-runs as its own per-query
   computation. *)
let open_reach t ~key ~(query : Query.t) ~sw ~port ~scope ~arrivals ~tainted
    ~(requesters : requester list) ~(slices : requester Frontend.slice list) =
  let base = empty_answer t ~nonce:(fresh_hex t) ~kind:query.Query.kind in
  let targets = List.map fst arrivals in
  if tainted && slices <> [] then begin
    Frontend.note_slice_fallback t.frontend (List.length slices);
    open_with t ~key ~query ~base ~targets ~requesters ();
    List.iter
      (fun (sl : requester Frontend.slice) ->
        match sl.Frontend.sl_waiters with
        | [] -> ()
        | lead :: _ ->
          let b, tg =
            evaluate t ~client:lead.r_client ~sw ~port sl.Frontend.sl_query
          in
          open_with t ~key:None ~query:sl.Frontend.sl_query ~base:b ~targets:tg
            ~requesters:sl.Frontend.sl_waiters ())
      slices
  end
  else begin
    let slices =
      List.map
        (fun (sl : requester Frontend.slice) ->
          {
            sp_query = sl.Frontend.sl_query;
            sp_base =
              empty_answer t ~nonce:(fresh_hex t)
                ~kind:sl.Frontend.sl_query.Query.kind;
            sp_targets =
              List.filter_map
                (fun (ep, arrival) ->
                  if Hspace.Hs.overlaps arrival sl.Frontend.sl_scope then Some ep
                  else None)
                arrivals;
            sp_waiters = sl.Frontend.sl_waiters;
          })
        slices
    in
    let cover =
      if tainted then None
      else Some { c_point = (sw, port); c_scope = scope; c_arrivals = arrivals }
    in
    open_with t ~key ~query ~base ~targets ~slices ?cover ~requesters ()
  end

(* A flushed front-end entry: one evaluation with the leader's
   coordinates, answers fanned out to every attached waiter.  With
   subsumption on, [Reachable_endpoints] evaluates through [reach]
   directly so the arrival spaces are in hand for the entry's slices
   and the in-flight index — same [base], same [targets], byte for
   byte, as the [evaluate] path it bypasses. *)
let open_entry t (e : requester Frontend.entry) =
  let cfg = Frontend.config t.frontend in
  let key = if cfg.coalesce then Some e.e_key else None in
  match e.e_query.Query.kind with
  | Query.Reachable_endpoints when cfg.subsume ->
    let scope = effective_scope e.e_query.Query.scope in
    let r = reach t ~src_sw:e.e_sw ~src_port:e.e_port ~hs:scope in
    open_reach t ~key ~query:e.e_query ~sw:e.e_sw ~port:e.e_port ~scope
      ~arrivals:r.Verifier.endpoints ~tainted:(union_tainted t r)
      ~requesters:e.e_waiters ~slices:e.e_slices
  | _ ->
    let base, targets =
      evaluate t ~client:e.e_client ~sw:e.e_sw ~port:e.e_port e.e_query
    in
    open_with t ~key ~query:e.e_query ~base ~targets ~requesters:e.e_waiters ()

(* A batch of [Reachable_endpoints] entries sharing one injection
   point: union the scopes, run one sweep over the union, split the
   arrival spaces back per member.  Exact absent rewrites — forward
   propagation is linear in the injected set, so
   [arrival(S1) = arrival(S1 ∪ S2) ∩ S1] cube by cube; with rewrites
   on the region, fall back to per-entry evaluation. *)
let open_batch t (es : requester Frontend.entry list) =
  match es with
  | [] -> ()
  | (first : requester Frontend.entry) :: _ ->
    let cfg = Frontend.config t.frontend in
    let scopes =
      List.map
        (fun (e : requester Frontend.entry) -> effective_scope e.e_query.Query.scope)
        es
    in
    let b = Hspace.Hs.Builder.create Hspace.Field.total_width in
    List.iter
      (fun s -> List.iter (Hspace.Hs.Builder.add b) (Hspace.Hs.cubes s))
      scopes;
    let union = Hspace.Hs.Builder.build b in
    let r = reach t ~src_sw:first.e_sw ~src_port:first.e_port ~hs:union in
    if union_tainted t r then begin
      Frontend.note_fallback t.frontend (List.length es);
      List.iter (open_entry t) es
    end
    else
      List.iter2
        (fun (e : requester Frontend.entry) scope ->
          let key = if cfg.coalesce then Some e.e_key else None in
          if cfg.subsume then
            (* Per-member arrival spaces by intersection — same
               endpoint set as the [overlaps] filter, but exact
               arrivals to feed this member's slices and the
               in-flight subsumption index. *)
            let arrivals =
              List.filter_map
                (fun ((ep : Verifier.endpoint), arrival) ->
                  let i = Hspace.Hs.inter arrival scope in
                  if Hspace.Hs.is_empty i then None else Some (ep, i))
                r.Verifier.endpoints
            in
            open_reach t ~key ~query:e.e_query ~sw:e.e_sw ~port:e.e_port ~scope
              ~arrivals ~tainted:false ~requesters:e.e_waiters
              ~slices:e.e_slices
          else
            let targets =
              List.filter_map
                (fun ((ep : Verifier.endpoint), arrival) ->
                  if Hspace.Hs.overlaps arrival scope then Some ep else None)
                r.Verifier.endpoints
            in
            let base =
              empty_answer t ~nonce:(fresh_hex t) ~kind:e.e_query.Query.kind
            in
            open_with t ~key ~query:e.e_query ~base ~targets
              ~requesters:e.e_waiters ())
        es scopes

let flush_frontend t =
  if t.live then begin
    Hashtbl.reset t.queued_nonces;
    let groups = Frontend.flush t.frontend in
    (* Cross-source pooling: one pooled warm over every injection
       point this flush evaluates, so cold compiled sources derive in
       parallel across the worker pool instead of sequentially as
       each group opens. *)
    (match t.plumbing with
    | Some plumbing ->
      let points =
        List.sort_uniq compare
          (List.concat_map
             (List.filter_map (fun (e : requester Frontend.entry) ->
                  match e.e_query.Query.kind with
                  | Query.Reachable_endpoints -> Some (e.e_sw, e.e_port)
                  | _ -> None))
             groups)
      in
      if List.length points > 1 then Plumbing.warm ~pool:t.pool plumbing ~points
    | None -> ());
    List.iter
      (function
        | [] -> ()
        | [ e ] -> open_entry t e
        | es -> open_batch t es)
      groups
  end

(* Join an in-flight computation: the new requester rides the probes
   already in the air and is answered at the shared finalize. *)
let try_join t key (r : requester) =
  match Hashtbl.find_opt t.coalesced key with
  | Some p when not p.finalized ->
    p.requesters <- r :: p.requesters;
    Hashtbl.replace t.open_queries r.r_nonce p;
    journal_record t
      (Journal.Query_opened
         {
           q_nonce = r.r_nonce;
           q_client = r.r_client;
           q_sw = r.r_sw;
           q_port = r.r_port;
           q_ip = Some r.r_ip;
           q_query = p.query;
         });
    Frontend.note_coalesced t.frontend;
    true
  | _ -> false

(* Ride an in-flight broader computation at the same injection point:
   the narrower query becomes a slice answered at the shared finalize,
   costing no evaluation and no probes of its own. *)
let try_subsume t ~sw ~port ~scope query (r : requester) =
  match Hashtbl.find_opt t.subsumable (sw, port) with
  | None -> false
  | Some cell -> (
    match
      List.find_opt
        (fun p ->
          (not p.finalized)
          &&
          match p.cover with
          | Some c -> Hspace.Hs.subset scope c.c_scope
          | None -> false)
        !cell
    with
    | None -> false
    | Some p ->
      let c = Option.get p.cover in
      let targets =
        List.filter_map
          (fun (ep, arrival) ->
            if Hspace.Hs.overlaps arrival scope then Some ep else None)
          c.c_arrivals
      in
      p.slices <-
        {
          sp_query = query;
          sp_base = empty_answer t ~nonce:(fresh_hex t) ~kind:query.Query.kind;
          sp_targets = targets;
          sp_waiters = [ r ];
        }
        :: p.slices;
      Hashtbl.replace t.open_queries r.r_nonce p;
      journal_record t
        (Journal.Query_opened
           {
             q_nonce = r.r_nonce;
             q_client = r.r_client;
             q_sw = r.r_sw;
             q_port = r.r_port;
             q_ip = Some r.r_ip;
             q_query = query;
           });
      Frontend.note_subsumed t.frontend;
      true)

let send_throttled t ~nonce ~sw ~port ~ip ~kind =
  let answer = { (empty_answer t ~nonce ~kind) with Query.throttled = true } in
  send_answer t answer { r_nonce = nonce; r_client = -1; r_sw = sw; r_port = port; r_ip = ip }

(* The post-decode request path: duplicate suppression, admission,
   coalescing, then the front-end queue.  Shared by the in-band
   Packet-In handler and by [inject_query] (benchmarks driving the
   serving layer without per-packet request crypto). *)
let accept_request t ~client ~nonce ~sw ~port ~ip (query : Query.t) =
  if Hashtbl.mem t.open_queries nonce || Hashtbl.mem t.queued_nonces nonce then
    (* A duplicated or replayed delivery of an in-flight request —
       exactly the fault [Netsim.Faults] injects.  The original
       computation is already running and will answer under this
       nonce; re-opening would orphan its challenges and double-send
       answers.  Costs no token: the client did not ask twice. *)
    t.stats.queries_duplicate <- t.stats.queries_duplicate + 1
  else if not (Frontend.admit t.frontend ~client ~now:(now t)) then begin
    t.stats.queries_throttled <- t.stats.queries_throttled + 1;
    send_throttled t ~nonce ~sw ~port ~ip ~kind:query.Query.kind
  end
  else begin
    let r = { r_nonce = nonce; r_client = client; r_sw = sw; r_port = port; r_ip = ip } in
    let cfg = Frontend.config t.frontend in
    let key = Frontend.key_of ~client ~sw ~port query in
    if cfg.coalesce && try_join t key r then ()
    else begin
      (* Subsumption works on the effective scope the evaluation would
         run — computed here only for the batchable kind, only when
         the policy is on. *)
      let scope =
        match query.Query.kind with
        | Query.Reachable_endpoints when cfg.subsume ->
          Some (effective_scope query.Query.scope)
        | _ -> None
      in
      match scope with
      | Some s when try_subsume t ~sw ~port ~scope:s query r -> ()
      | _ -> (
        match
          Frontend.submit t.frontend ~key ?scope ~client ~sw ~port query ~waiter:r
        with
        | `Coalesced | `Subsumed | `Queued `Later ->
          Hashtbl.replace t.queued_nonces nonce ()
        | `Queued `First ->
          if cfg.batch_window > 0.0 then begin
            Hashtbl.replace t.queued_nonces nonce ();
            Netsim.Sim.schedule (Netsim.Net.sim t.net) ~delay:cfg.batch_window
              (fun () -> flush_frontend t)
          end
          else
            (* No settle tick: flush synchronously, exactly the
               pre-frontend per-request behaviour. *)
            flush_frontend t)
    end
  end

let inject_query t ~client ~nonce ~sw ~port ~ip query =
  t.stats.queries_received <- t.stats.queries_received + 1;
  accept_request t ~client ~nonce ~sw ~port ~ip query

let handle_request t ~sw ~in_port ~header ~payload =
  t.stats.queries_received <- t.stats.queries_received + 1;
  match
    Codec.decode_request payload ~keypair:t.keypair
      ~lookup_key:(fun client -> Directory.key t.directory ~client)
  with
  | Error _ -> t.stats.queries_rejected <- t.stats.queries_rejected + 1
  | Ok request ->
    let requester_ip = Hspace.Header.get header Hspace.Field.Ip_src in
    accept_request t ~client:request.client ~nonce:request.nonce ~sw ~port:in_port
      ~ip:requester_ip request.query

let handle_auth_reply t ~sw ~in_port ~header ~payload =
  match
    Codec.decode_auth_reply payload ~lookup_key:(fun client ->
        Directory.key t.directory ~client)
  with
  | Error _ -> t.stats.auth_replies_rejected <- t.stats.auth_replies_rejected + 1
  | Ok { reply_client; challenge } -> (
    match Hashtbl.find_opt t.pending challenge with
    | None -> t.stats.auth_replies_rejected <- t.stats.auth_replies_rejected + 1
    | Some p -> (
      match
        List.find_opt (fun probe -> String.equal probe.challenge challenge) p.probes
      with
      | None -> t.stats.auth_replies_rejected <- t.stats.auth_replies_rejected + 1
      | Some probe ->
        (* The Packet-In ingress point is the authoritative access
           point: a reply is only accepted from the probed port. *)
        if probe.target.Verifier.sw = sw && probe.target.Verifier.port = in_port then
          if probe.seen_authenticated then
            (* A duplicated delivery, or the reply to a retransmitted
               challenge: counted once. *)
            t.stats.auth_replies_duplicate <- t.stats.auth_replies_duplicate + 1
          else begin
            t.stats.auth_replies_accepted <- t.stats.auth_replies_accepted + 1;
            probe.seen_authenticated <- true;
            probe.seen_ip <- Some (Hspace.Header.get header Hspace.Field.Ip_src);
            probe.seen_client <- Some reply_client;
            if quorum_complete p then finalize t p
          end
        else t.stats.auth_replies_rejected <- t.stats.auth_replies_rejected + 1))

let handle_packet_in t ~sw ~in_port ~header ~payload =
  let dst_port = Hspace.Header.get header Hspace.Field.Tp_dst in
  if dst_port = Wire.request_port then handle_request t ~sw ~in_port ~header ~payload
  else if dst_port = Wire.auth_reply_port then
    handle_auth_reply t ~sw ~in_port ~header ~payload

let install_intercepts t =
  let conn = Monitor.conn t.monitor in
  List.iter
    (fun sw ->
      List.iter
        (fun spec ->
          Netsim.Net.send t.net conn ~sw
            (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec)))
        (Wire.intercept_specs ()))
    (Netsim.Topology.switches (topo t))

(* The intercept Flow_mods travel the same faulty channel as every
   other control message; a lost Add_flow would leave that switch
   permanently blind to client requests and auth replies — a failure
   mode no protocol-level retry can recover from.  So whenever the
   believed configuration of a switch changes (monitor event or poll),
   any intercept entry it is missing is re-sent; installs are
   idempotent (same match + priority replaces), and the next poll
   re-checks, so repair converges even when the repair itself is
   lost. *)
let repair_intercepts t ~sw =
  let flows = Snapshot.flows (Monitor.snapshot t.monitor) ~sw in
  List.iter
    (fun (spec : Ofproto.Flow_entry.spec) ->
      let present =
        List.exists
          (fun (e : Ofproto.Flow_entry.spec) ->
            e.cookie = spec.cookie && e.priority = spec.priority
            && Ofproto.Match_.equal e.match_ spec.match_)
          flows
      in
      if not present then begin
        t.stats.intercepts_reinstalled <- t.stats.intercepts_reinstalled + 1;
        Netsim.Net.send t.net (Monitor.conn t.monitor) ~sw
          (Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec))
      end)
    (Wire.intercept_specs ())

let create ?pool ?(cache_capacity = 4096) ?(retry = no_retry) ?sweep_deadline
    ?(engine : Plumbing.engine = `Sweep) ?(frontend = Frontend.default_config) net
    monitor ~directory ~geo ~keypair ~auth_timeout () =
  if retry.attempts < 1 then invalid_arg "Service.create: retry.attempts must be >= 1";
  if retry.base_delay < 0.0 then invalid_arg "Service.create: negative retry.base_delay";
  (match sweep_deadline with
  | Some d when d <= 0.0 -> invalid_arg "Service.create: sweep_deadline must be positive"
  | _ -> ());
  let t =
    {
      net;
      monitor;
      directory;
      geo;
      keypair;
      auth_timeout;
      retry;
      sweep_deadline;
      live = true;
      stats =
        {
          queries_received = 0;
          queries_rejected = 0;
          queries_throttled = 0;
          queries_duplicate = 0;
          auth_requests_sent = 0;
          auth_retransmissions = 0;
          auth_replies_accepted = 0;
          auth_replies_duplicate = 0;
          auth_replies_rejected = 0;
          answers_sent = 0;
          intercepts_reinstalled = 0;
          queries_reissued = 0;
          sweep_faults = 0;
        };
      rng = Support.Rng.split (Netsim.Sim.rng (Netsim.Net.sim net));
      pending = Hashtbl.create 16;
      open_queries = Hashtbl.create 16;
      frontend = Frontend.create frontend;
      coalesced = Hashtbl.create 16;
      subsumable = Hashtbl.create 16;
      queued_nonces = Hashtbl.create 16;
      measurement = Cryptosim.Attest.measure ~code_identity;
      ctx =
        Verifier.context
          ~flows_of:(fun sw -> Snapshot.flows (Monitor.snapshot monitor) ~sw)
          (Netsim.Net.topology net);
      pool = (match pool with Some p -> p | None -> Support.Pool.global ());
      cache = Reach_cache.create ~capacity:cache_capacity ();
      plumbing =
        (match engine with
        | `Sweep -> None
        | `Compiled ->
          (* Compiled at create time over the (still mostly empty)
             snapshot; the snapshot-change hook below keeps it current
             as installs and polls land.  The initial compile stays
             off the pool: create runs before any query and the tables
             are tiny at this point. *)
          Some
            (Plumbing.compile
               ~flows_of:(fun sw -> Snapshot.flows (Monitor.snapshot monitor) ~sw)
               (Netsim.Net.topology net)));
    }
  in
  Monitor.on_snapshot_change monitor (fun ~sw ~changed ->
      if changed then begin
        Verifier.invalidate_switch t.ctx ~sw;
        (* Delta invalidation: only entries whose reach pass traversed
           [sw] can be stale; everything else survives the Flow-Mod. *)
        Reach_cache.invalidate_switch t.cache ~sw
          ~digest:(Snapshot.switch_digest (Monitor.snapshot monitor) ~sw);
        (* The compiled graph absorbs the same delta: re-derive [sw]'s
           node slice, leave every other switch and every
           non-traversing precomputed source untouched. *)
        match t.plumbing with
        | Some plumbing -> Plumbing.update plumbing ~sw
        | None -> ()
      end;
      (* Intercept repair runs on every observation, changed or not:
         it is poll-driven and must converge even when the repair
         Flow-Mod itself was lost (see [repair_intercepts]). *)
      repair_intercepts t ~sw);
  Monitor.set_packet_in_handler monitor (fun ~sw ~in_port ~header ~payload ->
      handle_packet_in t ~sw ~in_port ~header ~payload);
  install_intercepts t;
  t

(* ---- crash recovery ---- *)

let kill t = t.live <- false

let live t = t.live

let open_query_count t = Hashtbl.length t.open_queries

let pending_probe_count t = Hashtbl.length t.pending

let frontend_stats t = Frontend.stats t.frontend

let frontend_config t = Frontend.config t.frontend

let coalesce_rate t = Frontend.coalesce_rate t.frontend

let subsume_rate t = Frontend.subsume_rate t.frontend

let reinstall_intercepts t = install_intercepts t

(* Re-drive an integrity query recovered from the journal: fresh
   challenges (the old ones died — possibly observably — with the old
   session), a fresh evaluation against the resynchronised snapshot,
   and a fresh finalize deadline. *)
let reissue t (q : Journal.query_open) =
  t.stats.queries_reissued <- t.stats.queries_reissued + 1;
  open_query t ~client:q.q_client ~nonce:q.q_nonce ~sw:q.q_sw ~port:q.q_port
    ~ip:(Option.value ~default:0 q.q_ip) q.q_query

(* After a session re-establishment on the *same* controller instance
   (partition healed): every still-open query retransmits its
   unanswered challenges — re-keyed, so a reply to a challenge that
   leaked during the partition is rejected — and re-arms its finalize
   deadline. *)
let retransmit_pending t =
  (* Coalescing maps many nonces to one pending: dedupe by physical
     identity so a shared computation retransmits (and re-arms) once,
     not once per waiting requester. *)
  let open_now =
    Hashtbl.fold
      (fun _ p acc -> if List.memq p acc then acc else p :: acc)
      t.open_queries []
  in
  List.iter
    (fun p ->
      if not p.finalized then
        if p.probes = [] then finalize t p
        else begin
          List.iter
            (fun probe ->
              if not probe.seen_authenticated then begin
                Hashtbl.remove t.pending probe.challenge;
                probe.challenge <- fresh_hex t;
                Hashtbl.replace t.pending probe.challenge p;
                send_auth_request t probe
              end)
            p.probes;
          arm_finalize t p
        end)
    open_now
