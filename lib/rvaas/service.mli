(** The RVaaS controller (paper §IV).

    Combines the three functions of the paper in one stand-alone,
    attested controller:

    + {b configuration monitoring} — delegated to {!Monitor};
    + {b logical verification} — {!Verifier} reachability over the
      monitored {!Snapshot} and the trusted wiring plan;
    + {b in-band testing & client interaction} — interception of
      magic-header client requests (Packet-In), dispatch of signed
      authentication requests to relevant endpoints (Packet-Out),
      collection of authenticated replies, and a signed answer back to
      the requesting client, including the total number of auth
      requests issued so silent endpoints are detectable (the counting
      defence, §IV-B.1).

    Confidentiality: answers never contain internal paths or topology,
    only endpoint access points, jurisdiction sets, hop counts and
    meter rates — preserving the provider's autonomy (§III). *)

type stats = {
  mutable queries_received : int;
  mutable queries_rejected : int;
  mutable queries_throttled : int;
      (** queries rejected by the front-end's per-client token bucket
          before evaluation; the client got a signed throttle answer
          ({!Query.answer.throttled}) instead *)
  mutable queries_duplicate : int;
      (** duplicated or replayed deliveries of an in-flight request
          nonce (a fault {!Netsim.Faults} injects) — suppressed, the
          original computation answers once *)
  mutable auth_requests_sent : int;
      (** auth-request transmissions, retransmissions included *)
  mutable auth_retransmissions : int;
      (** of which: retransmissions of an unanswered challenge *)
  mutable auth_replies_accepted : int;
  mutable auth_replies_duplicate : int;
      (** valid replies to an already-answered challenge (duplicated
          delivery or the answer to a retransmission) — counted once in
          answers, tallied here *)
  mutable auth_replies_rejected : int;
  mutable answers_sent : int;
  mutable intercepts_reinstalled : int;
      (** intercept flow entries re-sent after the monitored snapshot
          showed them missing (the original Add_flow was lost on a
          faulty channel) *)
  mutable queries_reissued : int;
      (** in-flight queries re-driven after a crash or failover *)
  mutable sweep_faults : int;
      (** worker faults (raise/deadline) absorbed by the supervised
          pool during isolation sweeps *)
}

(** Auth-request retransmission policy for lossy control channels:
    [attempts] total transmissions per probe (>= 1), the k-th
    retransmission [base_delay * 2^k] seconds after the previous one
    (exponential backoff).  The collection window ([auth_timeout])
    starts after the last attempt; the answer finalizes early when
    every probe has authenticated. *)
type retry = { attempts : int; base_delay : float }

(** One attempt, no backoff — the paper's baseline protocol. *)
val no_retry : retry

type t

(** [create net monitor ~directory ~geo ~keypair ~auth_timeout ()]
    wires the service into [monitor]'s connection, installs the
    interception flow entries on every switch, and begins serving.
    [auth_timeout] is how long the service waits for auth replies
    before answering (seconds).

    [pool] (default {!Support.Pool.global}, sized by [RVAAS_JOBS] or
    the core count) runs the per-access-point sweeps of isolation
    queries in parallel.  [cache_capacity] (default 4096) bounds the
    digest-keyed reach-result cache.  [retry] (default {!no_retry})
    retransmits unanswered auth requests; when the reply quorum is
    still incomplete at finalize the answer carries [degraded = true].
    [sweep_deadline] (default off) runs pool sweeps supervised with the
    given per-task wall-clock deadline, so a raising or wedged worker
    domain costs one sequential retry instead of stalling the answer.

    [engine] (default [`Sweep]) selects the verification engine:
    [`Sweep] answers each reach question with a cache-first
    {!Verifier.reach_in} pass; [`Compiled] compiles the monitored view
    into a {!Plumbing} graph maintained incrementally by the
    snapshot-change hook, answering steady-state questions by lookup
    (the reach cache and pool sweeps are bypassed).

    [frontend] (default {!Frontend.default_config}: admit everything,
    no coalescing, no settle tick — the historical behaviour) puts the
    multi-tenant front-end in front of evaluation: per-client
    token-bucket admission, coalescing of identical in-flight queries
    under one computation (per-requester signed answers fanned out at
    finalize), per-injection-point batching of queries arriving within
    one [batch_window], and — with [frontend.subsume] — semantic
    subsumption: a [Reachable_endpoints] query whose effective scope
    is contained in a queued or in-flight computation at the same
    injection point rides it as a slice, its answer cut out of the
    subsumer's arrival spaces at the shared finalize (rewrite-tainted
    regions fall back to per-query evaluation).  Under [`Compiled],
    each flush additionally seeds one pooled {!Plumbing.warm} over
    every injection point it spans, so cold sources compile across
    the worker pool instead of sequentially.  Recovery re-issues
    ({!reissue}) bypass it.  Works under both engines.
    @raise Invalid_argument on a retry policy with [attempts < 1], a
    negative [base_delay], [sweep_deadline <= 0], or an invalid
    front-end config (see {!Frontend.create}). *)
val create :
  ?pool:Support.Pool.t ->
  ?cache_capacity:int ->
  ?retry:retry ->
  ?sweep_deadline:float ->
  ?engine:Plumbing.engine ->
  ?frontend:Frontend.config ->
  Netsim.Net.t ->
  Monitor.t ->
  directory:Directory.t ->
  geo:Geo.Registry.t ->
  keypair:Cryptosim.Keys.keypair ->
  auth_timeout:float ->
  unit ->
  t

(** [set_pool t pool] replaces the worker pool (benchmarks sweep the
    worker count on one service instance). *)
val set_pool : t -> Support.Pool.t -> unit

(** [pool t] is the pool currently in use. *)
val pool : t -> Support.Pool.t

(** [reach_cache t] exposes the incremental reach-result cache — its
    hit/miss statistics are the subject of experiments E13 and E15, and
    tests clear it to force cold evaluations.  When the monitored
    snapshot of switch [s] changes, only the cached results whose reach
    pass traversed [s] are evicted (see {!Reach_cache}); results that
    never consulted [s]'s table remain valid by construction. *)
val reach_cache : t -> Reach_cache.t

(** [engine t] is the verification engine selected at {!create}. *)
val engine : t -> Plumbing.engine

(** [plumbing t] exposes the compiled plumbing graph when the service
    runs with [engine:`Compiled] — its statistics are the subject of
    experiment E18; [None] under [`Sweep]. *)
val plumbing : t -> Plumbing.t option

(** [reach t ~src_sw ~src_port ~hs] runs one cache-first reach pass on
    the service's verification context — the building block of every
    query kind; exposed for tests and benchmarks. *)
val reach :
  t -> src_sw:int -> src_port:int -> hs:Hspace.Hs.t -> Verifier.reach_result

(** [public t] is the service's public key (distributed to clients out
    of band). *)
val public : t -> Cryptosim.Keys.public

(** [stats t] exposes serving counters. *)
val stats : t -> stats

(** [measurement t] is the enclave measurement of the service code. *)
val measurement : t -> Cryptosim.Attest.measurement

(** [attest t ~nonce] produces an attestation quote — used both by
    clients (is this the genuine RVaaS?) and by the provider (does the
    server run the agreed, non-leaking application?). *)
val attest : t -> nonce:string -> Cryptosim.Attest.quote

(** The code identity string measured into attestation quotes. *)
val code_identity : string

(** [evaluate t ~client ~sw ~port query] runs the logical part of a
    query directly (no in-band round) — the building block the in-band
    path shares; exposed for tests and benchmarks.  Returns the answer
    with all [endpoints] unauthenticated and the probe list the in-band
    path would test. *)
val evaluate :
  t ->
  client:int ->
  sw:int ->
  port:int ->
  Query.t ->
  Query.answer * Verifier.endpoint list

(** {1 Multi-tenant front-end} *)

(** [frontend_stats t] exposes the admission/coalescing/subsumption/
    batching counters of the front-end configured at {!create} — the
    subject of experiments E19 and E20. *)
val frontend_stats : t -> Frontend.stats

(** [frontend_config t] is the front-end configuration in effect. *)
val frontend_config : t -> Frontend.config

(** [coalesce_rate t] is the fraction of admitted queries absorbed by
    an existing computation (see {!Frontend.coalesce_rate}). *)
val coalesce_rate : t -> float

(** [subsume_rate t] is the fraction of admitted queries answered as
    slices of a broader computation (see {!Frontend.subsume_rate}). *)
val subsume_rate : t -> float

(** [inject_query t ~client ~nonce ~sw ~port ~ip query] feeds a query
    straight into the post-decode serving path (duplicate suppression,
    admission, coalescing, batching, evaluation, probe round), exactly
    as if a valid signed request had arrived in band at
    [(sw, port)] from [ip].  The answer is still signed and sent as a
    Packet-Out.  For tests and benchmarks that need to drive millions
    of logical clients without paying per-request crypto. *)
val inject_query :
  t -> client:int -> nonce:string -> sw:int -> port:int -> ip:int -> Query.t -> unit

(** [pending_probe_count t] counts outstanding auth challenges — 0
    once every open query has finalized (no orphaned probes). *)
val pending_probe_count : t -> int

(** {1 Crash recovery}

    The primitives {!Failover} builds the takeover protocol from.  A
    killed service must never act again (its timers become no-ops); a
    recovering or standby service re-installs interception, re-issues
    journalled queries, and retransmits whatever a healed session left
    unanswered. *)

(** [kill t] marks the service dead: every queued timer and handler of
    this instance becomes a no-op.  Used together with
    {!Netsim.Net.disconnect} to model a controller crash. *)
val kill : t -> unit

(** [live t] is [false] after {!kill}. *)
val live : t -> bool

(** [open_query_count t] counts queries accepted but not yet
    answered. *)
val open_query_count : t -> int

(** [reinstall_intercepts t] re-sends the interception flow entries to
    every switch (idempotent installs) — the first step after a
    session is re-established. *)
val reinstall_intercepts : t -> unit

(** [reissue t q] re-drives a journalled in-flight query on this
    (recovered or standby) instance: fresh evaluation, fresh
    challenges, fresh finalize deadline.  The answer reaches the
    requester under the original nonce. *)
val reissue : t -> Journal.query_open -> unit

(** [retransmit_pending t] re-drives every still-open query of this
    same instance after its session came back: unanswered challenges
    are re-keyed (a challenge that leaked with the dead session is
    never re-used) and re-sent, finalize deadlines re-armed. *)
val retransmit_pending : t -> unit
