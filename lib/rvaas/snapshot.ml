type view = {
  table : Ofproto.Flow_table.t;
  mutable meter_list : (int * Ofproto.Meter.band) list;
  mutable refreshed : float;
  mutable table_digest : int64 option;
      (* memoised flow-table fingerprint; [None] after any mutation *)
}

type t = {
  views : (int, view) Hashtbl.t;
  mutable global_digest : int64 option;
      (* memoised whole-snapshot fingerprint; [None] after any mutation *)
}

let create () = { views = Hashtbl.create 32; global_digest = None }

let view t sw =
  match Hashtbl.find_opt t.views sw with
  | Some v -> v
  | None ->
    let v =
      {
        table = Ofproto.Flow_table.create ();
        meter_list = [];
        refreshed = 0.0;
        table_digest = None;
      }
    in
    Hashtbl.replace t.views sw v;
    v

let apply_event t ~sw ~now event =
  let v = view t sw in
  v.refreshed <- now;
  v.table_digest <- None;
  t.global_digest <- None;
  match event with
  | Ofproto.Message.Flow_added spec | Ofproto.Message.Flow_modified spec ->
    Ofproto.Flow_table.add v.table spec ~now
  | Ofproto.Message.Flow_deleted spec ->
    ignore
      (Ofproto.Flow_table.delete v.table ~match_:spec.Ofproto.Flow_entry.match_
         ~priority:spec.Ofproto.Flow_entry.priority ())

let apply_flow_removed t ~sw ~now spec =
  apply_event t ~sw ~now (Ofproto.Message.Flow_deleted spec)

let replace_flows t ~sw ~now specs =
  let v = view t sw in
  v.refreshed <- now;
  v.table_digest <- None;
  t.global_digest <- None;
  Ofproto.Flow_table.clear v.table;
  List.iter (fun spec -> Ofproto.Flow_table.add v.table spec ~now) specs

let replace_meters t ~sw meters =
  let v = view t sw in
  v.meter_list <- meters

let flows t ~sw =
  match Hashtbl.find_opt t.views sw with
  | None -> []
  | Some v -> Ofproto.Flow_table.specs v.table

let meters t ~sw =
  match Hashtbl.find_opt t.views sw with None -> [] | Some v -> v.meter_list

let switches t =
  Hashtbl.fold (fun sw _ acc -> sw :: acc) t.views [] |> List.sort compare

let total_flows t =
  Hashtbl.fold (fun _ v acc -> acc + Ofproto.Flow_table.size v.table) t.views 0

let last_refresh t ~sw =
  match Hashtbl.find_opt t.views sw with None -> 0.0 | Some v -> v.refreshed

let age t ~now =
  Hashtbl.fold (fun _ v acc -> Float.max acc (now -. v.refreshed)) t.views 0.0

let spec_fingerprint spec = Format.asprintf "%a" Ofproto.Flow_entry.pp_spec spec

let switch_digest t ~sw =
  match Hashtbl.find_opt t.views sw with
  | None -> 0L
  | Some v -> (
    match v.table_digest with
    | Some d -> d
    | None ->
      let lines = List.map spec_fingerprint (Ofproto.Flow_table.specs v.table) in
      let d = Cryptosim.Hash.digest (String.concat "\n" lines) in
      v.table_digest <- Some d;
      d)

let digest_vector t =
  List.map (fun sw -> (sw, switch_digest t ~sw)) (switches t)

(* Composed from the memoised per-switch digests rather than
   re-fingerprinting every rule: the monitor computes this after every
   stats reply, and at internet scale a rule-by-rule rendering turns
   each poll sweep quadratic in the network size.  Switches with empty
   tables contribute nothing, so a view that merely exists (e.g. only
   meters were polled) leaves the digest unchanged, as before. *)
let digest t =
  match t.global_digest with
  | Some d -> d
  | None ->
    let lines =
      List.filter_map
        (fun sw ->
          match Hashtbl.find_opt t.views sw with
          | Some v when Ofproto.Flow_table.size v.table > 0 ->
            Some (Printf.sprintf "%d:%Lx" sw (switch_digest t ~sw))
          | Some _ | None -> None)
        (switches t)
    in
    let d = Cryptosim.Hash.digest (String.concat "\n" lines) in
    t.global_digest <- Some d;
    d

(* ---- binary persistence ----

   A checkpoint image for the durable journal: a restarted controller
   restores to the exact pre-crash digest vector.  Per-switch we store
   the believed flow specs (in table order), the meter list and the
   refresh time; digests are memos recomputed on demand, so preserving
   the specs preserves the digests. *)

let image_magic = "RVSS1"

let to_bytes t =
  let b = Buffer.create 1024 in
  Buffer.add_string b image_magic;
  let sws = switches t in
  Codec.Bin.w_int b (List.length sws);
  List.iter
    (fun sw ->
      let v = view t sw in
      Codec.Bin.w_int b sw;
      Codec.Bin.w_float b v.refreshed;
      Codec.Bin.w_list Codec.Bin.w_spec b (Ofproto.Flow_table.specs v.table);
      Codec.Bin.w_meters b v.meter_list)
    sws;
  Buffer.contents b

let of_bytes s =
  let n = String.length image_magic in
  if String.length s < n || not (String.equal (String.sub s 0 n) image_magic) then
    Error "Snapshot.of_bytes: bad magic"
  else
    try
      let r = Codec.Bin.reader (String.sub s n (String.length s - n)) in
      let t = create () in
      let count = Codec.Bin.r_int r in
      for _ = 1 to count do
        let sw = Codec.Bin.r_int r in
        let refreshed = Codec.Bin.r_float r in
        let specs = Codec.Bin.r_list Codec.Bin.r_spec r in
        let meters = Codec.Bin.r_meters r in
        replace_flows t ~sw ~now:refreshed specs;
        replace_meters t ~sw meters
      done;
      Ok t
    with Codec.Bin.Malformed msg -> Error ("Snapshot.of_bytes: " ^ msg)

let multiset specs = List.sort String.compare (List.map spec_fingerprint specs)

let divergence t ~actual =
  List.fold_left
    (fun acc sw ->
      if multiset (flows t ~sw) = multiset (actual sw) then acc else acc + 1)
    0 (switches t)
