(** RVaaS's believed view of the data-plane configuration.

    Maintained from flow-monitor events (passive) and flow-stats polls
    (active) by {!Monitor}; consumed by {!Verifier}.  Internally each
    switch view reuses {!Ofproto.Flow_table} so that add/delete
    semantics match the real switches exactly. *)

type t

val create : unit -> t

(** [apply_event t ~sw ~now event] folds a flow-monitor event in. *)
val apply_event : t -> sw:int -> now:float -> Ofproto.Message.monitor_event -> unit

(** [apply_flow_removed t ~sw ~now spec] folds a Flow-Removed (e.g.
    hard timeout) in. *)
val apply_flow_removed : t -> sw:int -> now:float -> Ofproto.Flow_entry.spec -> unit

(** [replace_flows t ~sw ~now specs] replaces the whole view of [sw]
    with a polled flow-stats reply. *)
val replace_flows : t -> sw:int -> now:float -> Ofproto.Flow_entry.spec list -> unit

(** [replace_meters t ~sw meters] replaces the believed meter table. *)
val replace_meters : t -> sw:int -> (int * Ofproto.Meter.band) list -> unit

(** [flows t ~sw] is the believed rule list of [sw] in priority order
    (empty when never heard of). *)
val flows : t -> sw:int -> Ofproto.Flow_entry.spec list

(** [meters t ~sw] is the believed meter list of [sw]. *)
val meters : t -> sw:int -> (int * Ofproto.Meter.band) list

(** [switches t] lists switches with a view, ascending. *)
val switches : t -> int list

(** [total_flows t] sums rule counts over all switches. *)
val total_flows : t -> int

(** [last_refresh t ~sw] is the time of the last update of [sw]'s view
    (0 when never updated). *)
val last_refresh : t -> sw:int -> float

(** [age t ~now] is [now] minus the oldest per-switch refresh time —
    the staleness bound reported to clients. *)
val age : t -> now:float -> float

(** [digest t] is a configuration fingerprint: equal digests ⇔ equal
    believed rule sets (used by the history store). *)
val digest : t -> int64

(** [switch_digest t ~sw] is a fingerprint of [sw]'s believed rule list
    alone (0 when never heard of).  Memoised per view and recomputed
    lazily after the next mutation of that switch, so querying it for
    every switch between reconfigurations is cheap — the key material
    of the incremental result cache ({!Reach_cache}). *)
val switch_digest : t -> sw:int -> int64

(** [digest_vector t] is [(sw, switch_digest)] for every monitored
    switch, ascending: the per-switch configuration version vector. *)
val digest_vector : t -> (int * int64) list

(** [divergence t ~actual] counts switches whose believed rule set
    differs from [actual sw] (compared as multisets of specs). *)
val divergence : t -> actual:(int -> Ofproto.Flow_entry.spec list) -> int

(** {1 Binary persistence}

    Checkpoint images for the durable journal ({!Journal}): a restarted
    or standby controller restores to the exact pre-crash state —
    [of_bytes (to_bytes t)] preserves {!flows}, {!meters},
    {!last_refresh}, {!switch_digest}, {!digest_vector} and {!digest}. *)

val to_bytes : t -> string

val of_bytes : string -> (t, string) result
