type endpoint = { host : int; sw : int; port : int }

type reach_result = {
  endpoints : (endpoint * Hspace.Hs.t) list;
  controller_hits : (int * Hspace.Hs.t) list;
  traversed : int list;
  sample_paths : (endpoint * int list) list;
  handoffs : (int * int * Hspace.Hs.t) list;
  rule_visits : int;
}

let width = Hspace.Field.total_width

(* Rules applicable on [port], each with its match cube and the list of
   strictly-higher-priority cubes that overlap it (its "shadow").  The
   shadow is subtracted lazily at propagation time — materialising the
   guard as an explicit cube union blows up combinatorially when
   wide-match rules (e.g. the RVaaS intercepts) sit above everything. *)
type guarded = {
  g_spec : Ofproto.Flow_entry.spec;
  g_cube : Hspace.Tern.t;
  g_shadow : Hspace.Tern.t list;
  g_pre : Hspace.Tern.prefilter;
      (* required-bits view of [g_cube]: lets {!rule_slice} reject an
         incoming space whose bounding cube misses the rule with a
         few word operations, before any cube-product work *)
}

let guarded_rules flows_of sw port =
  let applicable =
    List.filter
      (fun (spec : Ofproto.Flow_entry.spec) ->
        match Ofproto.Match_.in_port spec.match_ with
        | None -> true
        | Some p -> p = port)
      (flows_of sw)
  in
  (* flows_of yields priority-descending order (Flow_table invariant);
     accumulate the higher-priority cubes as we walk down. *)
  let _, guarded =
    List.fold_left
      (fun (above, acc) (spec : Ofproto.Flow_entry.spec) ->
        let cube = Ofproto.Match_.to_tern spec.match_ in
        let shadow = List.filter (fun c -> Hspace.Tern.overlaps c cube) above in
        let fully_shadowed = List.exists (fun c -> Hspace.Tern.subset cube c) shadow in
        let acc =
          if fully_shadowed then acc
          else
            {
              g_spec = spec;
              g_cube = cube;
              g_shadow = shadow;
              g_pre = Hspace.Tern.prefilter cube;
            }
            :: acc
        in
        (cube :: above, acc))
      ([], []) applicable
  in
  List.rev guarded

(* [hs ∩ cube \ shadow] — the packet set this rule actually handles. *)
let rule_slice hs { g_cube; g_shadow; g_pre; _ } =
  if Hspace.Tern.prefilter_disjoint g_pre (Hspace.Hs.bound hs) then
    Hspace.Hs.empty width
  else
  let matched = Hspace.Hs.inter_cube hs g_cube in
  List.fold_left
    (fun acc c -> if Hspace.Hs.is_empty acc then acc else Hspace.Hs.diff_cube acc c)
    matched g_shadow

let rewrite_hs hs f v =
  Hspace.Hs.of_cubes width
    (List.map (fun c -> Hspace.Field.set_exact c f v) (Hspace.Hs.cubes hs))

(* Symbolic counterpart of {!Ofproto.Action.apply}: outputs capture the
   header space as rewritten up to that point of the action list. *)
let symbolic_apply ~ports ~in_port hs actions =
  let flood_ports = List.filter (fun p -> p <> in_port) ports in
  let cur = ref hs
  and outs = ref []
  and ctrl = ref (Hspace.Hs.empty width) in
  List.iter
    (fun action ->
      match action with
      | Ofproto.Action.Output p ->
        (* Mirror the data plane: no output back to the ingress port. *)
        if p <> in_port then outs := (p, !cur) :: !outs
      | Ofproto.Action.In_port -> outs := (in_port, !cur) :: !outs
      | Ofproto.Action.Flood ->
        List.iter (fun p -> outs := (p, !cur) :: !outs) flood_ports
      | Ofproto.Action.To_controller -> ctrl := Hspace.Hs.union !ctrl !cur
      | Ofproto.Action.Set_field (f, v) -> cur := rewrite_hs !cur f v
      | Ofproto.Action.Set_queue _ -> ())
    actions;
  (List.rev !outs, !ctrl)

type ctx = {
  flows_of : int -> Ofproto.Flow_entry.spec list;
  topo : Netsim.Topology.t;
  guards_cache : (int * int, guarded list) Hashtbl.t;
}

let context ~flows_of topo = { flows_of; topo; guards_cache = Hashtbl.create 64 }

let invalidate_switch ctx ~sw =
  let stale =
    Hashtbl.fold
      (fun (s, port) _ acc -> if s = sw then (s, port) :: acc else acc)
      ctx.guards_cache []
  in
  List.iter (Hashtbl.remove ctx.guards_cache) stale

let cached_ports ctx = Hashtbl.length ctx.guards_cache

let reach_in ?(boundary = fun _ -> true) ctx ~src_sw ~src_port ~hs =
  let topo = ctx.topo in
  let seen : (int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 64 in
  let handoffs : (int * int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 8 in
  let guards sw port =
    match Hashtbl.find_opt ctx.guards_cache (sw, port) with
    | Some g -> g
    | None ->
      let g = guarded_rules ctx.flows_of sw port in
      Hashtbl.replace ctx.guards_cache (sw, port) g;
      g
  in
  let endpoints : (endpoint, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let controller : (int, Hspace.Hs.t) Hashtbl.t = Hashtbl.create 16 in
  let paths : (endpoint, int list) Hashtbl.t = Hashtbl.create 16 in
  let traversed : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let rule_visits = ref 0 in
  let queue = Queue.create () in
  (* [depth] carries [List.length path] explicitly so the hop bound is
     O(1) per dequeue instead of rescanning the witness path. *)
  let enqueue sw port hs path depth =
    if not (Hspace.Hs.is_empty hs) then begin
      let old = Option.value ~default:(Hspace.Hs.empty width) (Hashtbl.find_opt seen (sw, port)) in
      let fresh = Hspace.Hs.diff hs old in
      if not (Hspace.Hs.is_empty fresh) then begin
        Hashtbl.replace seen (sw, port) (Hspace.Hs.union old fresh);
        Queue.add (sw, port, fresh, path, depth) queue
      end
    end
  in
  enqueue src_sw src_port hs [ src_sw ] 1;
  while not (Queue.is_empty queue) do
    let sw, port, hs, path, depth = Queue.pop queue in
    Hashtbl.replace traversed sw ();
    if depth <= Netsim.Packet.max_hops then
      List.iter
        (fun guarded ->
          incr rule_visits;
          let matched = rule_slice hs guarded in
          if not (Hspace.Hs.is_empty matched) then begin
            let spec = guarded.g_spec in
            let ports = Netsim.Topology.switch_ports topo sw in
            let outs, ctrl = symbolic_apply ~ports ~in_port:port matched spec.actions in
            if not (Hspace.Hs.is_empty ctrl) then begin
              let old =
                Option.value ~default:(Hspace.Hs.empty width) (Hashtbl.find_opt controller sw)
              in
              Hashtbl.replace controller sw (Hspace.Hs.union old ctrl)
            end;
            List.iter
              (fun (out_port, out) ->
                let here = Netsim.Topology.{ node = Switch sw; port = out_port } in
                match Netsim.Topology.peer topo here with
                | None -> ()
                | Some far -> (
                  match far.Netsim.Topology.node with
                  | Netsim.Topology.Host host ->
                    let ep = { host; sw; port = out_port } in
                    let old =
                      Option.value ~default:(Hspace.Hs.empty width)
                        (Hashtbl.find_opt endpoints ep)
                    in
                    Hashtbl.replace endpoints ep (Hspace.Hs.union old out);
                    if not (Hashtbl.mem paths ep) then Hashtbl.replace paths ep (List.rev path)
                  | Netsim.Topology.Switch next_sw ->
                    if boundary next_sw then
                      enqueue next_sw far.Netsim.Topology.port out (next_sw :: path)
                        (depth + 1)
                    else begin
                      let key = (next_sw, far.Netsim.Topology.port) in
                      let old =
                        Option.value ~default:(Hspace.Hs.empty width)
                          (Hashtbl.find_opt handoffs key)
                      in
                      Hashtbl.replace handoffs key (Hspace.Hs.union old out)
                    end))
              outs
          end)
        (guards sw port)
  done;
  {
    endpoints =
      Hashtbl.fold (fun ep hs acc -> (ep, hs) :: acc) endpoints []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    controller_hits =
      Hashtbl.fold (fun sw hs acc -> (sw, hs) :: acc) controller []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    traversed = Hashtbl.fold (fun sw () acc -> sw :: acc) traversed [] |> List.sort compare;
    sample_paths =
      Hashtbl.fold (fun ep path acc -> (ep, path) :: acc) paths []
      |> List.sort (fun (a, _) (b, _) -> compare a b);
    handoffs =
      Hashtbl.fold (fun (sw, port) hs acc -> (sw, port, hs) :: acc) handoffs []
      |> List.sort compare;
    rule_visits = !rule_visits;
  }

let reach ~flows_of topo ~src_sw ~src_port ~hs =
  reach_in (context ~flows_of topo) ~src_sw ~src_port ~hs

let access_points topo =
  List.filter_map
    (fun host ->
      match Netsim.Topology.host_attachment topo host with
      | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } ->
        Some { host; sw; port }
      | Some _ | None -> None)
    (Netsim.Topology.hosts topo)

let sources_reaching ?pool ~flows_of topo ~dst ~hs =
  let sources = List.filter (fun src -> src <> dst) (access_points topo) in
  let arriving_at_dst ctx src =
    let result = reach_in ctx ~src_sw:src.sw ~src_port:src.port ~hs in
    List.find_map
      (fun (ep, arriving) -> if ep = dst then Some (src, arriving) else None)
      result.endpoints
  in
  let per_source =
    match pool with
    | Some pool when Support.Pool.size pool > 1 ->
      (* One reach pass per access point, partitioned over the pool.
         Guard caches are not thread-safe, so each worker derives its
         own context; [parmap] preserves input order, keeping results
         identical to the sequential path. *)
      Array.to_list
        (Support.Pool.parmap_init pool
           ~init:(fun () -> context ~flows_of topo)
           ~f:arriving_at_dst (Array.of_list sources))
    | Some _ | None ->
      let ctx = context ~flows_of topo in
      List.map (arriving_at_dst ctx) sources
  in
  List.filter_map Fun.id per_source

let ip_traffic_hs () =
  Hspace.Hs.of_cube
    (Hspace.Field.set_exact (Hspace.Tern.all_x width) Hspace.Field.Eth_type
       Hspace.Header.eth_type_ip)

let dst_ip_hs ip =
  Hspace.Hs.of_cube
    (Hspace.Field.set_exact
       (Hspace.Field.set_exact (Hspace.Tern.all_x width) Hspace.Field.Eth_type
          Hspace.Header.eth_type_ip)
       Hspace.Field.Ip_dst ip)

let dst_prefix_hs ~value ~prefix_len =
  Hspace.Hs.of_cube
    (Hspace.Field.set_prefix
       (Hspace.Field.set_exact (Hspace.Tern.all_x width) Hspace.Field.Eth_type
          Hspace.Header.eth_type_ip)
       Hspace.Field.Ip_dst ~value ~prefix_len)
