(** Logical data-plane verification: Header Space Analysis reachability
    over a configuration view and the trusted wiring plan (paper
    §IV-A.2).

    The engine propagates header-space sets through switch transfer
    functions derived from (believed) flow tables.  Rule guards are the
    rule's match cube minus every strictly-higher-priority cube
    applicable on the same ingress port, so overlapping priorities are
    resolved exactly as the data plane resolves them.  Loop termination
    uses per-(switch, port) header-space accumulation: a packet set is
    only propagated where it has not been seen before, which is both
    sound and complete for reachability and traversal questions
    (forwarding is a function of (port, header)).

    The engine is deliberately independent of {!Snapshot}: any
    [flows_of] function works, so tests can verify the *actual* tables
    and compare against simulation — the repository's central
    correctness property. *)

type endpoint = { host : int; sw : int; port : int }

type reach_result = {
  endpoints : (endpoint * Hspace.Hs.t) list;
      (** hosts reachable, with the headers arriving there (as rewritten
          in flight), merged per host *)
  controller_hits : (int * Hspace.Hs.t) list;
      (** switches that send part of the space to the controller *)
  traversed : int list;
      (** every switch some packet of the query space can visit *)
  sample_paths : (endpoint * int list) list;
      (** one witness switch-path per reached endpoint *)
  handoffs : (int * int * Hspace.Hs.t) list;
      (** (switch, ingress port, headers) arriving at switches outside
          the query boundary — the cross-provider egress points used by
          {!Federation} (empty without a [boundary]) *)
  rule_visits : int;  (** work counter for benchmarks *)
}

(** {1 Rule guards}

    The shared guard representation: a rule's match cube plus the
    strictly-higher-priority cubes overlapping it (its "shadow"),
    subtracted lazily at propagation time.  Exposed so the compiled
    plumbing engine ({!Plumbing}) reuses exactly the shadowing
    semantics of the sweep — any divergence between the two engines
    must come from graph bookkeeping, never from guard derivation. *)
type guarded = {
  g_spec : Ofproto.Flow_entry.spec;
  g_cube : Hspace.Tern.t;  (** the rule's match cube *)
  g_shadow : Hspace.Tern.t list;
      (** overlapping cubes of strictly-higher-priority rules on the
          same ingress port *)
  g_pre : Hspace.Tern.prefilter;
      (** required-bits view of [g_cube] for word-level rejection *)
}

(** [guarded_rules flows_of sw port] derives the guarded rules
    applicable on ingress [port] of [sw], priority-descending, with
    fully-shadowed rules dropped.  [flows_of] must yield rules in
    priority-descending order (the {!Ofproto.Flow_table} invariant). *)
val guarded_rules :
  (int -> Ofproto.Flow_entry.spec list) -> int -> int -> guarded list

(** [rule_slice hs g] is [hs ∩ g.g_cube \ g.g_shadow] — the packet set
    the rule actually handles — with a prefilter fast path. *)
val rule_slice : Hspace.Hs.t -> guarded -> Hspace.Hs.t

(** A verification context caches per-(switch, ingress-port) rule
    guards, which are expensive to derive and shared by every query
    against the same configuration view.  Create a fresh context
    whenever the configuration may have changed. *)
type ctx

(** [context ~flows_of topo] builds a context (guards are derived
    lazily on first use). *)
val context :
  flows_of:(int -> Ofproto.Flow_entry.spec list) -> Netsim.Topology.t -> ctx

(** [invalidate_switch ctx ~sw] drops cached guards for [sw] — call
    when that switch's configuration view changed.  Other switches'
    caches stay valid, making long-lived contexts cheap to keep current
    under churn. *)
val invalidate_switch : ctx -> sw:int -> unit

(** [cached_ports ctx] counts cached (switch, port) guard entries —
    instrumentation for the incremental-verification benchmark. *)
val cached_ports : ctx -> int

(** [reach_in ctx ?boundary ~src_sw ~src_port ~hs] computes forward
    reachability of the header space [hs] injected at the given ingress
    port.  When [boundary] is given, switches for which it returns
    [false] are not expanded: arrivals there are reported as
    [handoffs] instead (a provider's verifier only reasons about its
    own domain, paper §IV-C.a). *)
val reach_in :
  ?boundary:(int -> bool) ->
  ctx ->
  src_sw:int ->
  src_port:int ->
  hs:Hspace.Hs.t ->
  reach_result

(** [reach ~flows_of topo ~src_sw ~src_port ~hs] is [reach_in] over a
    one-shot context. *)
val reach :
  flows_of:(int -> Ofproto.Flow_entry.spec list) ->
  Netsim.Topology.t ->
  src_sw:int ->
  src_port:int ->
  hs:Hspace.Hs.t ->
  reach_result

(** [access_points topo] lists every client-facing attachment
    (host, sw, port) in the wiring plan. *)
val access_points : Netsim.Topology.t -> endpoint list

(** [sources_reaching ?pool ~flows_of topo ~dst ~hs] runs {!reach} from
    every access point except [dst] itself and returns those whose
    traffic (within [hs]) can arrive at [dst].  When [pool] is given
    (and has size > 1) the per-access-point passes run in parallel,
    each worker on its own context; results are identical to the
    sequential path, in the same order.  [flows_of] must then be safe
    to call from several domains at once (pure reads). *)
val sources_reaching :
  ?pool:Support.Pool.t ->
  flows_of:(int -> Ofproto.Flow_entry.spec list) ->
  Netsim.Topology.t ->
  dst:endpoint ->
  hs:Hspace.Hs.t ->
  (endpoint * Hspace.Hs.t) list

(** [ip_traffic_hs ()] is the header space of all IPv4 traffic — the
    default query scope. *)
val ip_traffic_hs : unit -> Hspace.Hs.t

(** [dst_ip_hs ip] is IPv4 traffic addressed to [ip]. *)
val dst_ip_hs : int -> Hspace.Hs.t

(** [dst_prefix_hs ~value ~prefix_len] is IPv4 traffic addressed into a
    prefix. *)
val dst_prefix_hs : value:int -> prefix_len:int -> Hspace.Hs.t
