let request_port = 0x5256 (* "RV" *)

let auth_request_port = 0x5257

let auth_reply_port = 0x5258

let answer_port = 0x5259

let lldp_port = 0x525A

let service_ip = 0x0A00FFFE (* 10.0.255.254 *)

let intercept_priority = 1000

let intercept_cookie = 0x57A5

let lldp_cookie = 0x57A6

let udp_dst_match port =
  Ofproto.Match_.any
  |> fun m ->
  Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip
  |> fun m ->
  Ofproto.Match_.with_exact m Hspace.Field.Ip_proto Hspace.Header.proto_udp
  |> fun m -> Ofproto.Match_.with_exact m Hspace.Field.Tp_dst port

(* Client→service messages are addressed to [service_ip]; without the
   Ip_dst match the intercepts would hijack unrelated client-to-client
   UDP traffic that happens to use the magic ports. *)
let service_udp_match port =
  Ofproto.Match_.with_exact (udp_dst_match port) Hspace.Field.Ip_dst service_ip

let intercept_specs () =
  List.map
    (fun port ->
      Ofproto.Flow_entry.make_spec ~cookie:intercept_cookie
        ~priority:intercept_priority (service_udp_match port)
        [ Ofproto.Action.To_controller ])
    [ request_port; auth_reply_port ]

(* Wiring probes carry dst_ip 0, so the LLDP intercept matches on the
   magic port alone.  Its cookie is distinct from [intercept_cookie] so
   Monitor.verify_wiring can delete its own entries at run completion
   without tearing down the service's request/auth intercepts. *)
let lldp_intercept_spec () =
  Ofproto.Flow_entry.make_spec ~cookie:lldp_cookie ~priority:intercept_priority
    (udp_dst_match lldp_port)
    [ Ofproto.Action.To_controller ]

let is_magic_port p =
  p = request_port || p = auth_request_port || p = auth_reply_port || p = answer_port
  || p = lldp_port
