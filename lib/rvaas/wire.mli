(** In-band protocol constants.

    RVaaS is reachable only indirectly: client messages carry a "magic"
    UDP destination port that a high-priority flow entry reports to the
    controller as a Packet-In (paper §IV-A.3).  Responses are injected
    with Packet-Outs. *)

(** UDP destination port of client query requests. *)
val request_port : int

(** UDP destination port of authentication requests (service → host). *)
val auth_request_port : int

(** UDP destination port of authentication replies (host → service,
    intercepted in-band). *)
val auth_reply_port : int

(** UDP destination port of the final answer (service → client). *)
val answer_port : int

(** UDP destination port of LLDP-like wiring probes (service → service,
    out one internal port and intercepted at the far switch). *)
val lldp_port : int

(** [lldp_intercept_spec ()] is the interception entry for wiring
    probes (installed by {!Monitor.verify_wiring}). *)
val lldp_intercept_spec : unit -> Ofproto.Flow_entry.spec

(** Source IPv4 address the service uses on injected packets. *)
val service_ip : int

(** Priority of the interception flow entries — above every provider
    and attacker rule, reflecting that switches are trusted and
    initially configured correctly (paper §III). *)
val intercept_priority : int

(** Cookie tagging the interception entries. *)
val intercept_cookie : int

(** Cookie tagging the (temporary) LLDP wiring-probe intercepts,
    distinct from {!intercept_cookie} so {!Monitor.verify_wiring} can
    delete exactly its own entries when a run completes. *)
val lldp_cookie : int

(** [intercept_specs ()] are the two flow entries every switch needs:
    match UDP to {!service_ip} on {!request_port} / {!auth_reply_port}
    → controller.  The exact Ip_dst match keeps ordinary
    client-to-client UDP traffic on the magic ports out of the
    service. *)
val intercept_specs : unit -> Ofproto.Flow_entry.spec list

(** [is_magic_port p] is true for any of the four protocol ports. *)
val is_magic_port : int -> bool
