type host_info = { host : int; client : int; ip : int; mac : int }

type range_info = {
  r_host : int; (* gateway topology host standing for the whole range *)
  r_client : int;
  r_base : int; (* full 32-bit address of the block base *)
  r_prefix_len : int; (* block = [r_base, r_base + 2^(32-len)) *)
  r_count : int; (* addresses actually in use within the block *)
}

type client_state = {
  name : string;
  mutable next_host_index : int; (* individual hosts grow from 1 upward *)
  mutable range_floor : int; (* range blocks grow from 0x10000 downward *)
  mutable members : int list;
  mutable ranges : range_info list;
}

type t = {
  client_table : (int, client_state) Hashtbl.t;
  host_table : (int, host_info) Hashtbl.t;
  ip_table : (int, host_info) Hashtbl.t;
  range_table : (int, range_info) Hashtbl.t; (* gateway host -> range *)
}

let create () =
  {
    client_table = Hashtbl.create 8;
    host_table = Hashtbl.create 32;
    ip_table = Hashtbl.create 32;
    range_table = Hashtbl.create 8;
  }

let base_prefix = 10 lsl 24 (* 10.0.0.0 *)

let add_client t ~client ~name =
  if client < 0 || client > 255 then invalid_arg "Addressing.add_client: id out of range";
  if Hashtbl.mem t.client_table client then
    invalid_arg "Addressing.add_client: duplicate client";
  Hashtbl.replace t.client_table client
    { name; next_host_index = 1; range_floor = 0x10000; members = []; ranges = [] }

let add_host t ~host ~client =
  if Hashtbl.mem t.host_table host then invalid_arg "Addressing.add_host: duplicate host";
  match Hashtbl.find_opt t.client_table client with
  | None -> invalid_arg "Addressing.add_host: unknown client"
  | Some state ->
    let index = state.next_host_index in
    if index > 0xFFFF || index >= state.range_floor then
      invalid_arg "Addressing.add_host: client subnet exhausted";
    state.next_host_index <- index + 1;
    state.members <- host :: state.members;
    let ip = base_prefix lor (client lsl 16) lor index in
    let info = { host; client; ip; mac = 0x020000000000 lor host } in
    Hashtbl.replace t.host_table host info;
    Hashtbl.replace t.ip_table ip info;
    info

(* Smallest power of two >= n. *)
let block_size n =
  let rec go s = if s >= n then s else go (s * 2) in
  go 1

let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2)

(* Range blocks are carved from the top of the client /16 downward,
   naturally aligned so each block is exactly one prefix — which is
   what lets the verifier carry the whole range as a single Hs cube
   and the provider route it with one prefix rule.  Individual hosts
   keep growing from index 1 upward; the two meet in the middle. *)
let add_range t ~host ~client ~count =
  if Hashtbl.mem t.host_table host then invalid_arg "Addressing.add_range: duplicate host";
  if count < 1 || count > 0x10000 then
    invalid_arg "Addressing.add_range: count out of range";
  match Hashtbl.find_opt t.client_table client with
  | None -> invalid_arg "Addressing.add_range: unknown client"
  | Some state ->
    let size = block_size count in
    let start = (state.range_floor - size) land lnot (size - 1) in
    let whole_subnet =
      size = 0x10000 && state.next_host_index = 1 && state.range_floor = 0x10000
    in
    if start < state.next_host_index && not whole_subnet then
      invalid_arg "Addressing.add_range: client subnet exhausted";
    state.range_floor <- start;
    state.members <- host :: state.members;
    let r_base = base_prefix lor (client lsl 16) lor start in
    let range =
      { r_host = host; r_client = client; r_base; r_prefix_len = 32 - log2 size; r_count = count }
    in
    state.ranges <- range :: state.ranges;
    Hashtbl.replace t.range_table host range;
    (* The gateway host answers for the block base address, so the
       directory, agents and traffic generators can target the range
       through the ordinary host tables. *)
    let info = { host; client; ip = r_base; mac = 0x020000000000 lor host } in
    Hashtbl.replace t.host_table host info;
    Hashtbl.replace t.ip_table r_base info;
    range

let range t ~host = Hashtbl.find_opt t.range_table host

let ranges_of_client t ~client =
  match Hashtbl.find_opt t.client_table client with
  | None -> []
  | Some state -> List.sort (fun a b -> compare a.r_base b.r_base) state.ranges

let all_ranges t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t.range_table []
  |> List.sort (fun a b -> compare a.r_host b.r_host)

let range_block_mask len = lnot ((1 lsl (32 - len)) - 1) land 0xFFFFFFFF

let range_of_ip t ~ip =
  let client = (ip lsr 16) land 0xFF in
  if ip lsr 24 <> 10 then None
  else
    match Hashtbl.find_opt t.client_table client with
    | None -> None
    | Some state ->
      List.find_opt (fun r -> ip land range_block_mask r.r_prefix_len = r.r_base) state.ranges

let client_name t ~client =
  Option.map (fun s -> s.name) (Hashtbl.find_opt t.client_table client)

let clients t =
  Hashtbl.fold (fun id _ acc -> id :: acc) t.client_table [] |> List.sort compare

let host t ~host = Hashtbl.find_opt t.host_table host

let host_by_ip t ~ip = Hashtbl.find_opt t.ip_table ip

let resolve_ip t ~ip =
  match Hashtbl.find_opt t.ip_table ip with
  | Some info -> Some info
  | None ->
    Option.bind (range_of_ip t ~ip) (fun r -> Hashtbl.find_opt t.host_table r.r_host)

let address_count t =
  let individuals = Hashtbl.length t.host_table - Hashtbl.length t.range_table in
  Hashtbl.fold (fun _ r acc -> acc + r.r_count) t.range_table individuals

let hosts_of_client t ~client =
  match Hashtbl.find_opt t.client_table client with
  | None -> []
  | Some state ->
    List.sort compare state.members
    |> List.filter_map (fun h -> Hashtbl.find_opt t.host_table h)

let all_hosts t =
  Hashtbl.fold (fun _ info acc -> info :: acc) t.host_table []
  |> List.sort (fun a b -> compare a.host b.host)

let subnet _t ~client = (base_prefix lor (client lsl 16), 16)

let client_of_ip t ~ip =
  let client = (ip lsr 16) land 0xFF in
  if ip lsr 24 = 10 && Hashtbl.mem t.client_table client then Some client else None

let access_points t topo ~client =
  hosts_of_client t ~client
  |> List.filter_map (fun info ->
         match Netsim.Topology.host_attachment topo info.host with
         | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } -> Some (sw, port)
         | Some _ | None -> None)
  |> List.sort_uniq compare

let pp_ip fmt ip =
  Format.fprintf fmt "%d.%d.%d.%d" ((ip lsr 24) land 0xFF) ((ip lsr 16) land 0xFF)
    ((ip lsr 8) land 0xFF) (ip land 0xFF)
