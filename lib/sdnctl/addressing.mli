(** Client and host addressing.

    Each client owns an IPv4 /16 subnet (10.c.0.0/16); its hosts get
    sequential addresses within it.  The registry also records which
    access points (switch, port) belong to which client — the ground
    truth against which RVaaS isolation answers are judged. *)

type host_info = { host : int; client : int; ip : int; mac : int }

(** An address {e range}: a naturally-aligned power-of-two block of a
    client's /16, represented in the topology by a single gateway
    host ([r_host]) and carried end-to-end as one prefix (an [Hs]
    cube) instead of [r_count] enumerated endpoints. *)
type range_info = {
  r_host : int;  (** gateway topology host standing for the range *)
  r_client : int;
  r_base : int;  (** full 32-bit address of the block base *)
  r_prefix_len : int;  (** block = [r_base, r_base + 2{^32-len}) *)
  r_count : int;  (** addresses in use within the block *)
}

type t

val create : unit -> t

(** [add_client t ~client ~name] declares a client.
    @raise Invalid_argument on duplicates or ids outside [0, 255]. *)
val add_client : t -> client:int -> name:string -> unit

(** [add_host t ~host ~client] registers a host under a client and
    assigns its address.  @raise Invalid_argument when the host is
    already registered or the client unknown. *)
val add_host : t -> host:int -> client:int -> host_info

(** [add_range t ~host ~client ~count] registers [host] as the gateway
    of a fresh range of [count] addresses inside the client's /16.
    Blocks are carved from the top of the subnet downward (individual
    hosts grow from index 1 upward), rounded up to a power of two and
    naturally aligned, so each range is exactly one prefix.  The
    gateway is entered in the host tables with the block base address.
    @raise Invalid_argument when the host is already registered, the
    client unknown, [count] outside [1, 65536], or the subnet
    exhausted. *)
val add_range : t -> host:int -> client:int -> count:int -> range_info

(** [range t ~host] looks up the range gatewayed by [host]. *)
val range : t -> host:int -> range_info option

(** [ranges_of_client t ~client] lists a client's ranges, ascending by
    base address. *)
val ranges_of_client : t -> client:int -> range_info list

(** [all_ranges t] lists every registered range, ascending by gateway
    host id. *)
val all_ranges : t -> range_info list

(** [range_of_ip t ~ip] finds the range containing [ip], if any. *)
val range_of_ip : t -> ip:int -> range_info option

(** [resolve_ip t ~ip] resolves an address to a concrete registered
    host: an exact match first, else the gateway of the containing
    range. *)
val resolve_ip : t -> ip:int -> host_info option

(** [address_count t] is the number of addresses the registry speaks
    for: individually registered hosts plus the [r_count] of every
    range (gateways count once, through their range). *)
val address_count : t -> int

(** [client_name t ~client] looks a client's name up. *)
val client_name : t -> client:int -> string option

(** [clients t] lists client ids, ascending. *)
val clients : t -> int list

(** [host t ~host] looks a host's addressing up. *)
val host : t -> host:int -> host_info option

(** [host_by_ip t ~ip] reverse-resolves an address. *)
val host_by_ip : t -> ip:int -> host_info option

(** [hosts_of_client t ~client] lists a client's hosts, ascending by
    host id. *)
val hosts_of_client : t -> client:int -> host_info list

(** [all_hosts t] lists all registered hosts, ascending by host id. *)
val all_hosts : t -> host_info list

(** [subnet t ~client] is the client's (prefix value, prefix length).
    The prefix value is the full 32-bit address of the subnet base. *)
val subnet : t -> client:int -> int * int

(** [client_of_ip t ~ip] derives the owning client from an address
    inside a registered client subnet. *)
val client_of_ip : t -> ip:int -> int option

(** [access_points t net_topo ~client] lists the (switch, port)
    attachment points of the client's hosts. *)
val access_points : t -> Netsim.Topology.t -> client:int -> (int * int) list

val pp_ip : Format.formatter -> int -> unit
