type policy = {
  isolation : bool;
  whitelist : (int * int) list;
}

type t = {
  net : Netsim.Net.t;
  addressing : Addressing.t;
  policy : policy;
  conn : Netsim.Net.conn;
  (* Next-hop tables keyed by destination switch, computed lazily with
     one BFS each ([Topology.routes_to]) and shared across every rule
     that routes towards that switch.  The topology is immutable after
     [Net.create], so entries never go stale. *)
  routes : (int, (int, int) Hashtbl.t) Hashtbl.t;
}

type dst = Exact of int | Prefix of int * int

let routing_priority = 100

let acl_priority = 200

let whitelist_priority = 300

let cookie = 0x9407 (* "provider" tag *)

let create net addressing ~policy ~conn_delay =
  let conn =
    Netsim.Net.register_controller net ~name:"provider" ~delay:conn_delay ()
  in
  List.iter
    (fun sw -> Netsim.Net.attach net conn ~sw ~monitor:false)
    (Netsim.Topology.switches (Netsim.Net.topology net));
  { net; addressing; policy; conn; routes = Hashtbl.create 64 }

let conn t = t.conn

let routes_towards t dst_sw =
  match Hashtbl.find_opt t.routes dst_sw with
  | Some tbl -> tbl
  | None ->
    let tbl = Netsim.Topology.routes_to (Netsim.Net.topology t.net) ~dst_sw in
    Hashtbl.replace t.routes dst_sw tbl;
    tbl

let attachment t host =
  match Netsim.Topology.host_attachment (Netsim.Net.topology t.net) host with
  | Some { Netsim.Topology.node = Netsim.Topology.Switch sw; port } -> Some (sw, port)
  | Some _ | None -> None

(* Egress action at switch [sw] for traffic addressed to the host (or
   range gateway) attached at [dst_sw:dst_port]: directly out the host
   port when attached here, otherwise towards the next hop on a
   shortest path. *)
let route_action t sw ~dst_sw ~dst_port =
  if sw = dst_sw then Some (Ofproto.Action.Output dst_port)
  else
    Option.map
      (fun port -> Ofproto.Action.Output port)
      (Hashtbl.find_opt (routes_towards t dst_sw) sw)

(* Every routable destination: individual hosts as exact /32 matches,
   ranges as one prefix match towards their gateway.  Range gateways do
   not additionally appear as exact destinations — the prefix covers
   their base address. *)
let destinations t =
  List.filter_map
    (fun (info : Addressing.host_info) ->
      match Addressing.range t.addressing ~host:info.host with
      | Some r -> Some (Prefix (r.r_base, r.r_prefix_len), info.host)
      | None -> Some (Exact info.ip, info.host))
    (Addressing.all_hosts t.addressing)

let dst_match ?in_port dst =
  let m = Ofproto.Match_.any in
  let m = match in_port with None -> m | Some p -> Ofproto.Match_.with_in_port m p in
  let m = Ofproto.Match_.with_exact m Hspace.Field.Eth_type Hspace.Header.eth_type_ip in
  match dst with
  | Exact ip -> Ofproto.Match_.with_exact m Hspace.Field.Ip_dst ip
  | Prefix (value, prefix_len) ->
    Ofproto.Match_.with_prefix m Hspace.Field.Ip_dst ~value ~prefix_len

let add_flow ~priority match_ actions =
  Ofproto.Message.Flow_mod
    (Ofproto.Message.Add_flow (Ofproto.Flow_entry.make_spec ~cookie ~priority match_ actions))

let routing_mods_for t sw =
  List.filter_map
    (fun (dst, host) ->
      Option.bind (attachment t host) (fun (dst_sw, dst_port) ->
          Option.map
            (fun action -> (sw, add_flow ~priority:routing_priority (dst_match dst) [ action ]))
            (route_action t sw ~dst_sw ~dst_port)))
    (destinations t)

(* Ingress isolation: at each client-facing port of [sw], drop IP
   traffic addressed into any *other* client's subnet unless
   whitelisted.  The /16 drop covers the client's ranges as well. *)
let acl_mods_for t sw =
  if not t.policy.isolation then []
  else
    let topo = Netsim.Net.topology t.net in
    let clients = Addressing.clients t.addressing in
    List.concat_map
      (fun src_client ->
        let allowed dst_client =
          dst_client = src_client
          || List.mem (src_client, dst_client) t.policy.whitelist
        in
        Addressing.access_points t.addressing topo ~client:src_client
        |> List.filter (fun (point_sw, _) -> point_sw = sw)
        |> List.concat_map (fun (_, port) ->
               List.filter_map
                 (fun dst_client ->
                   if allowed dst_client then None
                   else
                     let value, prefix_len =
                       Addressing.subnet t.addressing ~client:dst_client
                     in
                     Some
                       ( sw,
                         add_flow ~priority:acl_priority
                           (dst_match ~in_port:port (Prefix (value, prefix_len)))
                           [] ))
                 clients))
      clients

(* Whitelisted cross-client pairs get explicit allow rules above the
   ACLs, replicating the routing action at the source's ingress.
   Range destinations stay prefixes here too. *)
let whitelist_mods_for t sw =
  let topo = Netsim.Net.topology t.net in
  List.concat_map
    (fun (src_client, dst_client) ->
      let dsts =
        List.filter_map
          (fun (info : Addressing.host_info) ->
            match Addressing.range t.addressing ~host:info.host with
            | Some r -> Some (Prefix (r.r_base, r.r_prefix_len), info.host)
            | None -> Some (Exact info.ip, info.host))
          (Addressing.hosts_of_client t.addressing ~client:dst_client)
      in
      Addressing.access_points t.addressing topo ~client:src_client
      |> List.filter (fun (point_sw, _) -> point_sw = sw)
      |> List.concat_map (fun (_, port) ->
             List.filter_map
               (fun (dst, host) ->
                 Option.bind (attachment t host) (fun (dst_sw, dst_port) ->
                     Option.map
                       (fun action ->
                         ( sw,
                           add_flow ~priority:whitelist_priority
                             (dst_match ~in_port:port dst) [ action ] ))
                       (route_action t sw ~dst_sw ~dst_port)))
               dsts))
    t.policy.whitelist

let mods_for_switch t ~sw = routing_mods_for t sw @ acl_mods_for t sw @ whitelist_mods_for t sw

let all_mods t =
  List.concat_map
    (fun sw -> mods_for_switch t ~sw)
    (Netsim.Topology.switches (Netsim.Net.topology t.net))

let mods_via t ~sw ~port =
  List.filter
    (fun (_, msg) ->
      match msg with
      | Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec) ->
        List.exists
          (function Ofproto.Action.Output p -> p = port | _ -> false)
          spec.Ofproto.Flow_entry.actions
      | _ -> false)
    (mods_for_switch t ~sw)

let install_all t =
  List.iter (fun (sw, msg) -> Netsim.Net.send t.net t.conn ~sw msg) (all_mods t)

let reinstall t ~sw =
  List.iter (fun (sw, msg) -> Netsim.Net.send t.net t.conn ~sw msg) (mods_for_switch t ~sw)

let rule_count t = List.length (all_mods t)
