(** The provider's control plane (paper §III: "network management
    system and control plane").

    Proactively installs destination-based shortest-path routing for
    every registered host and per-port ingress isolation ACLs so that
    clients cannot reach each other except through whitelisted peers.
    This is the *correct* configuration; the compromised controller
    ({!Attack}) later mutates it.

    Rule priorities (documented because RVaaS verification and the
    attack taxonomy reason about them):
    {ul
    {- 400+: attacker rules (installed by {!Attack})}
    {- 300: whitelist allow rules (cross-client exceptions)}
    {- 200: isolation drop rules at client-facing ingress ports}
    {- 100: destination-based routing}} *)

type policy = {
  isolation : bool;  (** install inter-client drop ACLs *)
  whitelist : (int * int) list;
      (** (src client, dst client) cross-client pairs allowed anyway *)
}

type t

val routing_priority : int

val acl_priority : int

val whitelist_priority : int

(** [cookie] tags all provider-installed rules. *)
val cookie : int

(** [create net addressing ~policy ~conn_delay] registers the provider
    controller connection on every switch (without monitor
    subscription) and returns the handle.  Nothing is installed yet. *)
val create :
  Netsim.Net.t -> Addressing.t -> policy:policy -> conn_delay:float -> t

(** [conn t] is the provider's controller connection — handing this to
    {!Attack} models the compromise of the provider control plane. *)
val conn : t -> Netsim.Net.conn

(** [install_all t] pushes the complete configuration (routing +
    ACLs).  Run the simulator afterwards to let Flow-Mods land.

    Individually registered hosts are routed with exact /32 matches;
    {!Addressing.add_range} ranges with a single prefix match towards
    their gateway — one rule per (switch, range) no matter how many
    addresses the range holds. *)
val install_all : t -> unit

(** [mods_for_switch t ~sw] is the slice of the configuration destined
    for switch [sw] (routing + ACL + whitelist), computed directly
    rather than by filtering the full rule set. *)
val mods_for_switch :
  t -> sw:int -> (int * Ofproto.Message.to_switch) list

(** [mods_via t ~sw ~port] is the subset of [mods_for_switch] whose
    actions output via [port] — the rules a link flap at that port
    invalidates. *)
val mods_via : t -> sw:int -> port:int -> (int * Ofproto.Message.to_switch) list

(** [reinstall t ~sw] re-pushes switch [sw]'s slice of the
    configuration — the tail end of a rolling upgrade that wiped the
    switch's tables. *)
val reinstall : t -> sw:int -> unit

(** [rule_count t] is the number of Flow-Mods [install_all] sends. *)
val rule_count : t -> int
