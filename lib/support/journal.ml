type entry = {
  gen : int;
  seq : int;
  at : float;
  tag : string;
  payload : string;
  checksum : int64;
}

(* A backend (e.g. [Journal_file], [Segment_store]) mirrors the
   in-memory log onto durable storage; replica tails ([Replica]) are
   sinks too, so several can be attached at once.  [on_append] sees
   every new entry, [on_sync] must not return until prior appends are
   durable, [on_roll] marks a segment boundary (segmented backends
   seal the active segment; others ignore it), [on_rewrite] is told
   the whole image changed wholesale (compaction) and must replace its
   copy atomically. *)
type sink = {
  on_append : entry -> unit;
  on_sync : unit -> unit;
  on_roll : unit -> unit;
  on_rewrite : unit -> unit;
}

type t = {
  mutable rev_entries : entry list;
  mutable count : int;
  mutable gen : int;
  mutable next_seq : int;
  mutable tail_checksum : int64; (* checksum of the last entry (chain state) *)
  (* Compaction base: the chain root under the oldest retained entry.
     A fresh journal has base_seq 0 / base_gen 1 / base_checksum
     fnv_offset; [compact] moves the base forward to the newest
     dropped entry so the retained suffix verifies unchanged. *)
  mutable base_seq : int;
  mutable base_gen : int;
  mutable base_checksum : int64;
  mutable sinks : sink list; (* notification order: oldest attach first *)
}

(* FNV-1a, 64 bit.  Self-contained: [support] sits below [cryptosim]
   in the dependency order, so the journal carries its own hash.  The
   chain makes each checksum depend on every prior entry, so torn
   writes, reordering and in-place tampering all surface as a break at
   the first bad entry. *)
let fnv_offset = 0xcbf29ce484222325L

let fnv_prime = 0x100000001b3L

let fnv_byte h b = Int64.mul (Int64.logxor h (Int64.of_int b)) fnv_prime

let fnv_string h s =
  let h = ref h in
  String.iter (fun c -> h := fnv_byte !h (Char.code c)) s;
  !h

let fnv_int64 h v =
  let h = ref h in
  for i = 0 to 7 do
    h := fnv_byte !h (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
  done;
  !h

let fnv_int h v = fnv_int64 h (Int64.of_int v)

let entry_checksum ~prev ~gen ~seq ~at ~tag ~payload =
  let h = fnv_int64 fnv_offset prev in
  let h = fnv_int h gen in
  let h = fnv_int h seq in
  let h = fnv_int64 h (Int64.bits_of_float at) in
  let h = fnv_string h tag in
  let h = fnv_int h (String.length payload) in
  fnv_string h payload

let create () =
  {
    rev_entries = [];
    count = 0;
    gen = 1;
    next_seq = 0;
    tail_checksum = fnv_offset;
    base_seq = 0;
    base_gen = 1;
    base_checksum = fnv_offset;
    sinks = [];
  }

let generation t = t.gen

let length t = t.count

let base_seq t = t.base_seq

let base_gen t = t.base_gen

let base_checksum t = t.base_checksum

let tail_checksum t = t.tail_checksum

let last_seq t = t.next_seq - 1

let last_at t = match t.rev_entries with [] -> None | e :: _ -> Some e.at

let attach t sink = t.sinks <- t.sinks @ [ sink ]

let detach t = t.sinks <- []

let detach_sink t sink = t.sinks <- List.filter (fun s -> s != sink) t.sinks

let sync t = List.iter (fun s -> s.on_sync ()) t.sinks

let roll t = List.iter (fun s -> s.on_roll ()) t.sinks

let append t ~at ~tag ~payload =
  let seq = t.next_seq in
  let checksum =
    entry_checksum ~prev:t.tail_checksum ~gen:t.gen ~seq ~at ~tag ~payload
  in
  let e = { gen = t.gen; seq; at; tag; payload; checksum } in
  t.next_seq <- seq + 1;
  t.tail_checksum <- checksum;
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1;
  List.iter (fun s -> s.on_append e) t.sinks;
  e

(* Replicate a primary-stamped entry verbatim into a follower log: the
   entry keeps its generation, sequence number and chained checksum.
   The chain must stay continuous — a gap means the follower lost
   frames and has to resync from the primary wholesale. *)
let ingest t (e : entry) =
  if e.seq <> t.next_seq then invalid_arg "Journal.ingest: sequence gap";
  t.gen <- max t.gen e.gen;
  t.next_seq <- e.seq + 1;
  t.tail_checksum <- e.checksum;
  t.rev_entries <- e :: t.rev_entries;
  t.count <- t.count + 1;
  List.iter (fun s -> s.on_append e) t.sinks

let generation_tag = "generation"

(* A generation bump is itself journalled so the log records every
   controller incarnation (audit trail for the takeover protocol). *)
let begin_generation t ~at =
  t.gen <- t.gen + 1;
  ignore (append t ~at ~tag:generation_tag ~payload:"");
  t.gen

let entries t = List.rev t.rev_entries

(* Newest matching entry, or None.  Scans newest-first so standbys can
   cheaply ask e.g. for the freshest non-claim record. *)
let find_newest t ~f = List.find_opt f t.rev_entries

(* Walk the log oldest-first, re-deriving the checksum chain from the
   compaction base; stop at the first entry whose checksum, sequence
   number or generation does not fit.  This gives torn-write
   semantics: a crash mid-append (or a tampered suffix) invalidates
   exactly the suffix, never the prefix. *)
let valid_prefix t =
  let rec go acc prev expected_seq min_gen = function
    | [] -> List.rev acc
    | (e : entry) :: rest ->
      let expect =
        entry_checksum ~prev ~gen:e.gen ~seq:e.seq ~at:e.at ~tag:e.tag ~payload:e.payload
      in
      if e.seq <> expected_seq || e.gen < min_gen || not (Int64.equal expect e.checksum)
      then List.rev acc
      else go (e :: acc) e.checksum (expected_seq + 1) e.gen rest
  in
  go [] t.base_checksum t.base_seq t.base_gen (entries t)

(* Drop every entry with [seq < upto_seq].  Only a prefix can go — the
   checksum chain is sequential — so the base moves to the newest
   dropped entry and the retained suffix (whose first link hashes over
   that entry's checksum) verifies unchanged.  Generation numbers and
   the audit trail of the retained entries are untouched.  The backend
   (if any) is told to rewrite its image atomically. *)
let compact t ~upto_seq =
  if upto_seq > t.base_seq then begin
    let kept, dropped =
      List.partition (fun (e : entry) -> e.seq >= upto_seq) t.rev_entries
    in
    match dropped with
    | [] -> ()
    | newest_dropped :: _ ->
      t.rev_entries <- kept;
      t.count <- List.length kept;
      t.base_seq <- newest_dropped.seq + 1;
      t.base_gen <- newest_dropped.gen;
      t.base_checksum <- newest_dropped.checksum;
      List.iter (fun s -> s.on_rewrite ()) t.sinks
  end

let verify t =
  let valid = valid_prefix t in
  List.length valid = t.count

let iter_valid t ~f =
  let valid = valid_prefix t in
  List.iter f valid;
  List.length valid

(* ---- binary persistence ---- *)

let magic = "RVJL1"

let w_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let w_i64 b v =
  for i = 0 to 7 do
    w_u8 b (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL))
  done

let w_int b v = w_i64 b (Int64.of_int v)

let w_float b v = w_i64 b (Int64.bits_of_float v)

let w_string b s =
  w_int b (String.length s);
  Buffer.add_string b s

exception Truncated

let r_u8 s pos =
  if !pos >= String.length s then raise Truncated;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let r_i64 s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 s pos)) (8 * i))
  done;
  !v

let r_int s pos = Int64.to_int (r_i64 s pos)

let r_float s pos = Int64.float_of_bits (r_i64 s pos)

let r_string s pos =
  let n = r_int s pos in
  if n < 0 || !pos + n > String.length s then raise Truncated;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

let w_entry b (e : entry) =
  w_int b e.gen;
  w_int b e.seq;
  w_float b e.at;
  w_string b e.tag;
  w_string b e.payload;
  w_i64 b e.checksum

let encode_entry e =
  let b = Buffer.create 64 in
  w_entry b e;
  Buffer.contents b

(* The header count is an upper bound for the decoder, not a promise:
   file backends write [open_count] so entries appended after the
   header was laid down still decode (the loop just runs until the
   bytes run out). *)
let open_count = max_int

let encode_with ~count t =
  let b = Buffer.create 1024 in
  Buffer.add_string b magic;
  w_int b t.base_seq;
  w_int b t.base_gen;
  w_i64 b t.base_checksum;
  w_int b count;
  List.iter (w_entry b) (entries t);
  Buffer.contents b

let encode t = encode_with ~count:t.count t

let encode_open t = encode_with ~count:open_count t

(* Decode keeps the checksum-valid prefix and silently drops any
   corrupt or truncated tail — the durable-log recovery contract. *)
let decode s =
  let n = String.length magic in
  if String.length s < n || not (String.equal (String.sub s 0 n) magic) then
    Error "Journal.decode: bad magic"
  else begin
    let pos = ref n in
    let t = create () in
    (try
       let base_seq = r_int s pos in
       let base_gen = r_int s pos in
       let base_checksum = r_i64 s pos in
       let count = r_int s pos in
       if base_seq < 0 || base_gen < 1 then raise Truncated;
       t.base_seq <- base_seq;
       t.base_gen <- base_gen;
       t.base_checksum <- base_checksum;
       t.next_seq <- base_seq;
       t.gen <- base_gen;
       t.tail_checksum <- base_checksum;
       let stop = ref false in
       let i = ref 0 in
       while (not !stop) && !i < count do
         let gen = r_int s pos in
         let seq = r_int s pos in
         let at = r_float s pos in
         let tag = r_string s pos in
         let payload = r_string s pos in
         let checksum = r_i64 s pos in
         let expect =
           entry_checksum ~prev:t.tail_checksum ~gen ~seq ~at ~tag ~payload
         in
         if seq <> t.next_seq || gen < t.gen || not (Int64.equal expect checksum) then
           stop := true
         else begin
           t.gen <- gen;
           ignore (append t ~at ~tag ~payload);
           incr i
         end
       done
     with Truncated -> ());
    Ok t
  end
