(** Append-only, checksummed, generation-numbered event journal.

    The durable backbone of crash recovery: a controller appends every
    observation (and periodic snapshot checkpoints) here; a restarted
    or standby controller replays the journal to reconstruct the exact
    pre-crash state.  The module is deliberately generic — entries
    carry an opaque [payload] under a short [tag]; the typed record
    layer lives in [Rvaas.Journal].

    Integrity: each entry's checksum chains over the previous entry's
    checksum and all of its own fields (FNV-1a, self-contained so
    [support] stays dependency-free).  A torn write, reordering, or
    in-place tampering breaks the chain at the first bad entry;
    {!valid_prefix}/{!iter_valid} recover exactly the prefix written
    before the fault.

    Generations: every controller incarnation appending to the journal
    gets a generation number; {!begin_generation} bumps it and records
    the takeover itself as a journal entry (tag {!generation_tag}), so
    the log is also an audit trail of failovers.  Within the valid
    prefix, sequence numbers are strictly increasing and generations
    are non-decreasing.

    Compaction: {!compact} drops a prefix of old entries (only a
    prefix — the checksum chain is sequential) and moves the chain
    base to the newest dropped entry, so the retained suffix verifies
    unchanged and sequence/generation numbering is preserved.

    Backends: a {!sink} mirrors the log onto durable storage
    ([Journal_file] is the file-backed one); callers stay
    backend-agnostic — they only ever talk to this module. *)

type entry = {
  gen : int;  (** generation of the writing controller incarnation *)
  seq : int;  (** strictly increasing over the whole journal *)
  at : float;  (** timestamp supplied by the writer (simulated time) *)
  tag : string;  (** record kind, e.g. ["obs"], ["ckpt"] *)
  payload : string;  (** opaque binary payload *)
  checksum : int64;  (** chained FNV-1a over prev checksum + fields *)
}

type t

val create : unit -> t

(** [append t ~at ~tag ~payload] stamps generation, sequence number
    and chained checksum, appends, and returns the entry. *)
val append : t -> at:float -> tag:string -> payload:string -> entry

(** [ingest t e] appends a primary-stamped entry {e verbatim} —
    generation, sequence number and chained checksum are kept, not
    re-derived.  This is how a replica tail applies frames received
    from the primary; the chain stays verifiable because the frames
    arrive in order.
    @raise Invalid_argument when [e.seq] is not the next sequence
    number (the follower lost frames and must resync wholesale). *)
val ingest : t -> entry -> unit

(** [generation t] is the current writer generation (starts at 1). *)
val generation : t -> int

(** [begin_generation t ~at] increments the generation — called by a
    recovering or standby controller when it takes over — appends a
    {!generation_tag} entry recording the takeover, and returns the
    new generation. *)
val begin_generation : t -> at:float -> int

(** The tag of entries appended by {!begin_generation}. *)
val generation_tag : string

val length : t -> int

(** [base_seq t] is the sequence number of the oldest entry the
    journal can still hold — 0 for a fresh journal, moved forward by
    {!compact}. *)
val base_seq : t -> int

(** [base_gen t] is the generation at the compaction base. *)
val base_gen : t -> int

(** [base_checksum t] is the chain root: the checksum the first
    retained entry's link hashes over. *)
val base_checksum : t -> int64

(** [tail_checksum t] is the chain state after the newest entry (equal
    to {!base_checksum} when empty) — the chain base a segmented
    backend records for a segment starting at the current tail. *)
val tail_checksum : t -> int64

(** [last_seq t] is the sequence number of the newest entry
    ([base_seq t - 1] when empty). *)
val last_seq : t -> int

(** [last_at t] is the timestamp of the newest entry — the signal a
    warm standby tails to detect a dead primary (heartbeat records
    keep it fresh while the primary lives). *)
val last_at : t -> float option

(** [entries t] returns all entries, oldest first, without integrity
    checking (use {!valid_prefix} for recovery). *)
val entries : t -> entry list

(** [find_newest t ~f] is the newest entry satisfying [f] (no
    integrity check).  Standbys use it to find the freshest
    non-claim record when judging primary staleness. *)
val find_newest : t -> f:(entry -> bool) -> entry option

(** [valid_prefix t] returns the longest prefix whose checksum chain,
    sequence numbers and generation monotonicity all hold. *)
val valid_prefix : t -> entry list

(** [verify t] is [true] when every entry is in the valid prefix. *)
val verify : t -> bool

(** [iter_valid t ~f] applies [f] to the valid prefix in order and
    returns how many entries were replayed. *)
val iter_valid : t -> f:(entry -> unit) -> int

(** {1 Compaction}

    [compact t ~upto_seq] drops every entry with [seq < upto_seq] and
    moves the chain base to the newest dropped entry, preserving the
    checksum chain, sequence numbering and generation audit trail of
    the retained suffix.  The caller is responsible for only cutting
    at a point covered by a newer verified checkpoint (the typed
    layer, [Rvaas.Journal.compact], enforces this).  An attached
    backend is told to rewrite its image atomically.  No-op when
    nothing would be dropped. *)
val compact : t -> upto_seq:int -> unit

(** {1 Backends}

    A sink mirrors the in-memory log onto durable storage (or a
    replica tail); callers of this module never see them — appending,
    syncing and compacting work identically with zero, one or several
    attached. *)

type sink = {
  on_append : entry -> unit;  (** called after each append *)
  on_sync : unit -> unit;
      (** make prior appends durable before returning (fsync) *)
  on_roll : unit -> unit;
      (** a segment boundary: segmented backends seal the active
          segment and start a fresh one; others ignore it *)
  on_rewrite : unit -> unit;
      (** the image changed wholesale (compaction); replace atomically *)
}

(** [attach t sink] adds a backend.  Several sinks can be attached at
    once (a durable store plus replica tails); they are notified in
    attach order.  A sink does NOT retroactively see existing entries —
    backends write the current image on attach ([Journal_file.attach]
    does). *)
val attach : t -> sink -> unit

(** [detach t] removes every attached sink. *)
val detach : t -> unit

(** [detach_sink t sink] removes exactly [sink] (physical equality),
    leaving other backends attached. *)
val detach_sink : t -> sink -> unit

(** [sync t] asks every attached backend to make all appends durable;
    no-op without one.  The typed layer calls this on checkpoint
    records — the fsync boundary of the durability contract. *)
val sync : t -> unit

(** [roll t] marks a segment boundary: a segmented backend seals its
    active segment (finalized header, span checksum, fsync) and starts
    a fresh one at the current chain tail.  The typed layer calls this
    right before re-appending the retained block during compaction, so
    the subsequent {!compact} can drop whole sealed segments without
    rewriting any retained bytes.  No-op for non-segmented sinks. *)
val roll : t -> unit

(** {1 Binary persistence}

    [decode (encode t)] round-trips; [decode] of a truncated or
    tampered image keeps the checksum-valid prefix and drops the rest
    (never fails once the magic matches).  The image header carries
    the compaction base (chain root), so compacted journals round-trip
    too. *)

val encode : t -> string

(** [encode_open t] is [encode t] with an open-ended entry count in
    the header: the decoder treats the count as an upper bound, so a
    file backend can lay down this image once and keep appending
    {!encode_entry} frames after it. *)
val encode_open : t -> string

(** [encode_entry e] is the wire frame of a single entry, exactly as
    it appears in an image after the header. *)
val encode_entry : entry -> string

(** The open-ended header count written by {!encode_open}: the decoder
    treats it as an upper bound.  Segmented backends write it into
    active-segment headers and synthesized recovery images. *)
val open_count : int

val decode : string -> (t, string) result
