(* File-backed journal writer over the RVJL1 image.

   The file is an open-ended image: the header (magic + chain base +
   an open-ended count) followed by one frame per entry, appended
   incrementally.  Appends are flushed to the OS immediately (a
   process kill loses at most the entry being written — the decoder's
   valid-prefix semantics absorb the torn tail); [sync] additionally
   fsyncs, which the typed layer invokes on checkpoint records.
   Compaction rewrites the whole image to a temp file and renames it
   over the old one, so a crash mid-rewrite leaves either the old or
   the new image, never a mix. *)

type t = {
  path : string;
  log : Journal.t;
  mutable oc : out_channel option;
  mutable written : int; (* bytes handed to the OS (post-flush) *)
  mutable synced : int; (* bytes known durable (post-fsync) *)
  mutable dir_syncs : int; (* directory fsyncs after image renames *)
}

let path t = t.path

let temp_path t = t.path ^ ".tmp"

let written_bytes t = t.written

let synced_bytes t = t.synced

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Journal_file: backend is closed"

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Durability of the rename itself: fsyncing the renamed file persists
   its contents, not the directory entry pointing at it — a power cut
   after the rename can resurrect the old image (or, on attach, no file
   at all).  Fsync the containing directory to pin the new name down.
   Best-effort: some filesystems refuse fsync on a directory fd. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Lay down a complete image atomically: write + fsync a temp file,
   rename it over [path], reopen for append.  Used both on attach and
   on compaction rewrites. *)
let write_image t =
  (match t.oc with Some oc -> close_out oc | None -> ());
  t.oc <- None;
  let img = Journal.encode_open t.log in
  let tmp = temp_path t in
  let oc = open_out_bin tmp in
  output_string oc img;
  fsync_channel oc;
  close_out oc;
  Sys.rename tmp t.path;
  fsync_dir t.path;
  t.dir_syncs <- t.dir_syncs + 1;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path
  in
  t.oc <- Some oc;
  t.written <- String.length img;
  t.synced <- t.written

let handle_append t e =
  let oc = channel t in
  let frame = Journal.encode_entry e in
  output_string oc frame;
  flush oc;
  t.written <- t.written + String.length frame

let handle_sync t =
  (match t.oc with Some oc -> fsync_channel oc | None -> ());
  t.synced <- t.written

let dir_syncs t = t.dir_syncs

let attach log ~path =
  let t = { path; log; oc = None; written = 0; synced = 0; dir_syncs = 0 } in
  write_image t;
  Journal.attach log
    {
      Journal.on_append = (fun e -> handle_append t e);
      on_sync = (fun () -> handle_sync t);
      on_rewrite = (fun () -> write_image t);
    };
  t

let sync t = handle_sync t

let close t =
  Journal.detach t.log;
  match t.oc with
  | None -> ()
  | Some oc ->
    fsync_channel oc;
    t.synced <- t.written;
    close_out oc;
    t.oc <- None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover_from_file path =
  match read_file path with
  | exception Sys_error msg -> Error ("Journal_file: " ^ msg)
  | bytes -> Journal.decode bytes
