(* File-backed journal writer over the RVJL1 image.

   The file is an open-ended image: the header (magic + chain base +
   an open-ended count) followed by one frame per entry, appended
   incrementally.  Appends are flushed to the OS immediately (a
   process kill loses at most the entry being written — the decoder's
   valid-prefix semantics absorb the torn tail); [sync] additionally
   fsyncs, which the typed layer invokes on checkpoint records.
   Compaction rewrites the whole image to a temp file and renames it
   over the old one, so a crash mid-rewrite leaves either the old or
   the new image, never a mix.

   Error containment: a write or fsync failure (ENOSPC, a yanked
   disk) must never escape into the journal's append path — the
   in-memory journal stays authoritative.  The backend catches the
   exception, marks itself degraded (no further mirroring) and counts
   it in [sink_errors]; the caller keeps running on memory alone. *)

type t = {
  path : string;
  log : Journal.t;
  mutable oc : out_channel option;
  mutable written : int; (* bytes handed to the OS (post-flush) *)
  mutable synced : int; (* bytes known durable (post-fsync) *)
  mutable dir_syncs : int; (* directory fsyncs after image renames *)
  mutable stale_temps_removed : int; (* leftover *.tmp cleaned on attach *)
  mutable sink_errors : int; (* write/fsync failures swallowed *)
  mutable degraded : bool; (* mirroring stopped after a sink error *)
  mutable sink : Journal.sink option; (* our registration, for detach_sink *)
}

let path t = t.path

let temp_path t = t.path ^ ".tmp"

let written_bytes t = t.written

let synced_bytes t = t.synced

let channel t =
  match t.oc with
  | Some oc -> oc
  | None -> invalid_arg "Journal_file: backend is closed"

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

(* Durability of the rename itself: fsyncing the renamed file persists
   its contents, not the directory entry pointing at it — a power cut
   after the rename can resurrect the old image (or, on attach, no file
   at all).  Fsync the containing directory to pin the new name down.
   Best-effort: some filesystems refuse fsync on a directory fd. *)
let fsync_dir path =
  match Unix.openfile (Filename.dirname path) [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

(* Lay down a complete image atomically: write + fsync a temp file,
   rename it over [path], reopen for append.  Used both on attach and
   on compaction rewrites. *)
let write_image t =
  (match t.oc with Some oc -> close_out oc | None -> ());
  t.oc <- None;
  let img = Journal.encode_open t.log in
  let tmp = temp_path t in
  let oc = open_out_bin tmp in
  output_string oc img;
  fsync_channel oc;
  close_out oc;
  Sys.rename tmp t.path;
  fsync_dir t.path;
  t.dir_syncs <- t.dir_syncs + 1;
  let oc =
    open_out_gen [ Open_wronly; Open_append; Open_binary ] 0o644 t.path
  in
  t.oc <- Some oc;
  t.written <- String.length img;
  t.synced <- t.written

(* An I/O failure marks the backend degraded and is swallowed: the
   typed layer's append must not be poisoned mid-record.  Once
   degraded, nothing more is mirrored (the on-disk image is a stale
   but still-verifiable prefix). *)
let contain t f =
  if not t.degraded then
    try f ()
    with Sys_error _ | Unix.Unix_error _ ->
      t.sink_errors <- t.sink_errors + 1;
      t.degraded <- true

let handle_append t e =
  contain t (fun () ->
      let oc = channel t in
      let frame = Journal.encode_entry e in
      output_string oc frame;
      flush oc;
      t.written <- t.written + String.length frame)

let handle_sync t =
  contain t (fun () ->
      (match t.oc with Some oc -> fsync_channel oc | None -> ());
      t.synced <- t.written)

let dir_syncs t = t.dir_syncs

let stale_temps_removed t = t.stale_temps_removed

let sink_errors t = t.sink_errors

let degraded t = t.degraded

let attach log ~path =
  let t =
    {
      path;
      log;
      oc = None;
      written = 0;
      synced = 0;
      dir_syncs = 0;
      stale_temps_removed = 0;
      sink_errors = 0;
      degraded = false;
      sink = None;
    }
  in
  (* A crash between temp-file creation and the rename strands the
     temp forever (write_image always opens a fresh one); sweep it up
     here rather than letting them accumulate across restarts. *)
  if Sys.file_exists (temp_path t) then begin
    (try Sys.remove (temp_path t) with Sys_error _ -> ());
    t.stale_temps_removed <- t.stale_temps_removed + 1
  end;
  write_image t;
  let sink =
    {
      Journal.on_append = (fun e -> handle_append t e);
      on_sync = (fun () -> handle_sync t);
      on_roll = (fun () -> ());
      on_rewrite = (fun () -> contain t (fun () -> write_image t));
    }
  in
  t.sink <- Some sink;
  Journal.attach log sink;
  t

let sync t = handle_sync t

let close t =
  (match t.sink with
  | Some sink -> Journal.detach_sink t.log sink
  | None -> ());
  t.sink <- None;
  match t.oc with
  | None -> ()
  | Some oc ->
    contain t (fun () ->
        fsync_channel oc;
        t.synced <- t.written);
    close_out_noerr oc;
    t.oc <- None

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let recover_from_file path =
  match read_file path with
  | exception Sys_error msg -> Error ("Journal_file: " ^ msg)
  | bytes -> Journal.decode bytes
