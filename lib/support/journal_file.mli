(** File-backed journal writer: the persistent on-disk backend for
    {!Journal}.

    [attach] lays down the current RVJL1 image at [path] (atomically:
    temp + rename) with an open-ended entry count, then mirrors every
    subsequent append as an incremental frame.  Appends are flushed to
    the OS per entry — a process kill (SIGKILL) loses at most the
    frame being written, which the chained-checksum decoder drops as a
    torn tail.  {!Journal.sync} (invoked by the typed layer on
    checkpoint records) additionally fsyncs, so everything up to the
    last checkpoint survives power loss too.  Compaction rewrites the
    whole image via temp + rename: a crash mid-rewrite leaves either
    the old or the new image, never a mix.

    Recovery is just {!recover_from_file}: read the bytes, decode,
    keep the longest verified prefix — the same code path as in-memory
    recovery, so the two stay behaviourally identical. *)

type t

(** [attach log ~path] writes the log's current image to [path]
    (replacing any existing file) and installs the backend so later
    appends, syncs and compactions are mirrored.  Only one backend can
    be attached to a log at a time. *)
val attach : Journal.t -> path:string -> t

val path : t -> string

(** The temp file used for atomic rewrites: [path ^ ".tmp"].  Exposed
    for crash-matrix tests that simulate a kill between temp write and
    rename. *)
val temp_path : t -> string

(** Bytes flushed to the OS so far (header + frames). *)
val written_bytes : t -> int

(** Bytes known durable (fsynced) so far; [synced_bytes t <=
    written_bytes t], equal right after a checkpoint. *)
val synced_bytes : t -> int

(** Directory fsyncs performed so far — one per atomic image rewrite
    (the attach image and every compaction).  Fsyncing the renamed file
    persists its contents but not the directory entry; the backend also
    fsyncs the containing directory so a power cut after the rename
    cannot resurrect the old image. *)
val dir_syncs : t -> int

(** Stale [*.tmp] files removed by {!attach}: a crash between the
    temp-file write and the rename strands the temp forever, so each
    attach sweeps it up and counts it here. *)
val stale_temps_removed : t -> int

(** Write/fsync failures (e.g. ENOSPC) swallowed by the backend.  The
    in-memory journal stays authoritative — an I/O failure must never
    poison the typed append path mid-record. *)
val sink_errors : t -> int

(** [degraded t] is [true] once a sink error stopped the mirroring;
    the on-disk image is then a stale but still-verifiable prefix. *)
val degraded : t -> bool

(** Explicit fsync; equivalent to {!Journal.sync} on the attached
    log. *)
val sync : t -> unit

(** Detach from the log, fsync and close the file.  The file remains
    recoverable. *)
val close : t -> unit

(** [recover_from_file path] reads the image and returns the decoded
    journal (longest verified prefix — torn or corrupt tails are
    dropped, same contract as {!Journal.decode}).  [Error] only on a
    missing/unreadable file or bad magic. *)
val recover_from_file : string -> (Journal.t, string) result
