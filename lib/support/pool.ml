type batch = {
  bm : Mutex.t;
  finished : Condition.t;
  mutable remaining : int;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* smallest failing input index — what a sequential run would
         raise first *)
}

type t = {
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (int -> unit) Queue.t; (* a job receives its runner's slot *)
  mutable workers : unit Domain.t array;
  mutable stopped : bool;
}

(* Set while a domain is executing a pool job: nested [parmap] calls
   fall back to sequential instead of re-entering the (single, shared)
   job queue, so they can never deadlock. *)
let inside_job : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  {
    size;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    jobs = Queue.create ();
    workers = [||];
    stopped = false;
  }

let size t = t.size

let default_size () =
  let hw () = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "RVAAS_JOBS" with
  | None -> hw ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> hw ())

let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
    let p = create (default_size ()) in
    global_pool := Some p;
    p

let run_job job slot =
  let inside = Domain.DLS.get inside_job in
  inside := true;
  Fun.protect ~finally:(fun () -> inside := false) (fun () -> job slot)

let worker_loop t slot =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec take () =
      if t.stopped then None
      else
        match Queue.take_opt t.jobs with
        | Some job -> Some job
        | None ->
          Condition.wait t.nonempty t.mutex;
          take ()
    in
    let job = take () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      run_job job slot;
      loop ()
  in
  loop ()

let ensure_workers t =
  if Array.length t.workers = 0 && t.size > 1 && not t.stopped then
    t.workers <-
      Array.init (t.size - 1) (fun k -> Domain.spawn (fun () -> worker_loop t (k + 1)))

let run_sequential ~init ~f xs =
  if Array.length xs = 0 then [||]
  else
    let state = init () in
    Array.map (f state) xs

let parmap_init t ~init ~f xs =
  let n = Array.length xs in
  if n <= 1 || t.size = 1 || t.stopped || !(Domain.DLS.get inside_job) then
    run_sequential ~init ~f xs
  else begin
    ensure_workers t;
    let results = Array.make n None in
    let states = Array.make t.size None in
    let batch =
      { bm = Mutex.create (); finished = Condition.create (); remaining = n; failed = None }
    in
    let job i slot =
      let outcome =
        try
          let state =
            match states.(slot) with
            | Some s -> s
            | None ->
              let s = init () in
              states.(slot) <- Some s;
              s
          in
          Ok (f state xs.(i))
        with e -> Error (e, Printexc.get_raw_backtrace ())
      in
      (match outcome with Ok v -> results.(i) <- Some v | Error _ -> ());
      Mutex.lock batch.bm;
      (match outcome with
      | Ok _ -> ()
      | Error (e, bt) -> (
        match batch.failed with
        | Some (j, _, _) when j < i -> ()
        | Some _ | None -> batch.failed <- Some (i, e, bt)));
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock batch.bm
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.jobs
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller participates (slot 0) until the queue drains, then
       waits out the jobs still in flight on other domains. *)
    let continue = ref true in
    while !continue do
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.jobs in
      Mutex.unlock t.mutex;
      match job with
      | Some job -> run_job job 0
      | None -> continue := false
    done;
    Mutex.lock batch.bm;
    while batch.remaining > 0 do
      Condition.wait batch.finished batch.bm
    done;
    Mutex.unlock batch.bm;
    (match batch.failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parmap t f xs = parmap_init t ~init:(fun () -> ()) ~f:(fun () x -> f x) xs

let map_list t f xs = Array.to_list (parmap t f (Array.of_list xs))

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    Array.iter Domain.join t.workers;
    t.workers <- [||]
  end
