type batch = {
  bm : Mutex.t;
  finished : Condition.t;
  mutable remaining : int;
  mutable failed : (int * exn * Printexc.raw_backtrace) option;
      (* smallest failing input index — what a sequential run would
         raise first *)
}

(* Worker domains are tracked individually so a wedged one can be
   abandoned: OCaml domains cannot be killed, so supervision marks the
   domain as a zombie (never joined, its late results discarded) and
   spawns a replacement under a fresh slot. *)
type worker = { wslot : int; wdomain : unit Domain.t; mutable wzombie : bool }

type t = {
  size : int;
  mutex : Mutex.t;
  nonempty : Condition.t;
  jobs : (int -> unit) Queue.t; (* a job receives its runner's slot *)
  mutable workers : worker list;
  mutable next_slot : int; (* slots ever allocated (0 = the caller) *)
  mutable respawns : int;
  mutable stopped : bool;
}

(* Set while a domain is executing a pool job: nested [parmap] calls
   fall back to sequential instead of re-entering the (single, shared)
   job queue, so they can never deadlock. *)
let inside_job : bool ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref false)

let create size =
  if size < 1 then invalid_arg "Pool.create: size must be >= 1";
  {
    size;
    mutex = Mutex.create ();
    nonempty = Condition.create ();
    jobs = Queue.create ();
    workers = [];
    next_slot = size;
    respawns = 0;
    stopped = false;
  }

let size t = t.size

let respawns t = t.respawns

let default_size () =
  let hw () = max 1 (Domain.recommended_domain_count ()) in
  match Sys.getenv_opt "RVAAS_JOBS" with
  | None -> hw ()
  | Some s -> (
    match int_of_string_opt (String.trim s) with
    | Some n when n >= 1 -> n
    | Some _ | None -> hw ())

let global_pool = ref None

let global () =
  match !global_pool with
  | Some p -> p
  | None ->
    let p = create (default_size ()) in
    global_pool := Some p;
    p

let run_job job slot =
  let inside = Domain.DLS.get inside_job in
  inside := true;
  Fun.protect ~finally:(fun () -> inside := false) (fun () -> job slot)

let worker_loop t slot =
  let rec loop () =
    Mutex.lock t.mutex;
    let rec take () =
      if t.stopped then None
      else
        match Queue.take_opt t.jobs with
        | Some job -> Some job
        | None ->
          Condition.wait t.nonempty t.mutex;
          take ()
    in
    let job = take () in
    Mutex.unlock t.mutex;
    match job with
    | None -> ()
    | Some job ->
      run_job job slot;
      loop ()
  in
  loop ()

let spawn_worker t slot =
  { wslot = slot; wdomain = Domain.spawn (fun () -> worker_loop t slot); wzombie = false }

let ensure_workers t =
  if t.workers = [] && t.size > 1 && not t.stopped then
    t.workers <- List.init (t.size - 1) (fun k -> spawn_worker t (k + 1))

(* Abandon the (non-zombie) worker on [slot] and spawn a replacement
   under a fresh slot.  The zombie keeps running whatever wedged it; it
   is never joined, and any result it eventually produces is discarded
   by the superseded check of the batch that timed it out. *)
let abandon_worker t slot =
  Mutex.lock t.mutex;
  (match List.find_opt (fun w -> w.wslot = slot && not w.wzombie) t.workers with
  | None -> () (* the caller's slot, or a worker already abandoned *)
  | Some w ->
    w.wzombie <- true;
    t.respawns <- t.respawns + 1;
    let slot' = t.next_slot in
    t.next_slot <- slot' + 1;
    t.workers <- spawn_worker t slot' :: t.workers);
  Mutex.unlock t.mutex

let run_sequential ~init ~f xs =
  if Array.length xs = 0 then [||]
  else
    let state = init () in
    Array.map (f state) xs

(* Per-slot worker state for one parallel call.  A slot whose [init]
   raised is poisoned: the exception is replayed for every task landing
   there instead of re-running a failing [init] (with its partial side
   effects) once per queued task — the domain stays clean and the
   caller re-raises the original exception like any task failure. *)
type 'c slot_state = Ready of 'c | Poisoned of exn * Printexc.raw_backtrace

let parmap_init t ~init ~f xs =
  let n = Array.length xs in
  if n <= 1 || t.size = 1 || t.stopped || !(Domain.DLS.get inside_job) then
    run_sequential ~init ~f xs
  else begin
    ensure_workers t;
    let results = Array.make n None in
    let states = Array.make t.next_slot None in
    let batch =
      { bm = Mutex.create (); finished = Condition.create (); remaining = n; failed = None }
    in
    let job i slot =
      let state =
        match states.(slot) with
        | Some (Ready s) -> Ok s
        | Some (Poisoned (e, bt)) -> Error (e, bt)
        | None -> (
          try
            let s = init () in
            states.(slot) <- Some (Ready s);
            Ok s
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            states.(slot) <- Some (Poisoned (e, bt));
            Error (e, bt))
      in
      let outcome =
        match state with
        | Error _ as err -> err
        | Ok s -> ( try Ok (f s xs.(i)) with e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      (match outcome with Ok v -> results.(i) <- Some v | Error _ -> ());
      Mutex.lock batch.bm;
      (match outcome with
      | Ok _ -> ()
      | Error (e, bt) -> (
        match batch.failed with
        | Some (j, _, _) when j < i -> ()
        | Some _ | None -> batch.failed <- Some (i, e, bt)));
      batch.remaining <- batch.remaining - 1;
      if batch.remaining = 0 then Condition.broadcast batch.finished;
      Mutex.unlock batch.bm
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.jobs
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* The caller participates (slot 0) until the queue drains, then
       waits out the jobs still in flight on other domains. *)
    let continue = ref true in
    while !continue do
      Mutex.lock t.mutex;
      let job = Queue.take_opt t.jobs in
      Mutex.unlock t.mutex;
      match job with
      | Some job -> run_job job 0
      | None -> continue := false
    done;
    Mutex.lock batch.bm;
    while batch.remaining > 0 do
      Condition.wait batch.finished batch.bm
    done;
    Mutex.unlock batch.bm;
    (match batch.failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let parmap t f xs = parmap_init t ~init:(fun () -> ()) ~f:(fun () x -> f x) xs

let map_list t f xs = Array.to_list (parmap t f (Array.of_list xs))

(* ---- supervised sweeps ---- *)

type fault_reason =
  | Task_raised of exn
  | Init_raised of exn
  | Deadline_exceeded of float

type fault = { fault_index : int; fault_slot : int; reason : fault_reason }

let pp_fault_reason ppf = function
  | Task_raised e -> Format.fprintf ppf "task raised %s" (Printexc.to_string e)
  | Init_raised e -> Format.fprintf ppf "worker init raised %s" (Printexc.to_string e)
  | Deadline_exceeded d -> Format.fprintf ppf "deadline %.3fs exceeded" d

(* The caller does not take tasks here: it supervises.  Workers record
   each task's wall-clock start in [inflight]; the supervisor polls,
   and a task past [deadline] is superseded (late results discarded),
   its domain abandoned + respawned, and the task re-run sequentially
   in the caller — so a raising or wedged worker degrades one task to
   sequential instead of wedging the whole sweep. *)
let parmap_supervised t ?deadline ?(poll_interval = 1e-3)
    ?(clock = Unix.gettimeofday) ?(on_fault = fun _ -> ()) ~init ~f xs =
  let n = Array.length xs in
  if n = 0 then [||]
  else if t.size = 1 || t.stopped || !(Domain.DLS.get inside_job) then
    run_sequential ~init ~f xs
  else begin
    ensure_workers t;
    let bm = Mutex.create () in
    let results = Array.make n None in
    let remaining = ref n in
    let retries = Queue.create () in
    let fault_log = Queue.create () in
    let superseded = Array.make n false in
    (* input index -> (slot, wall-clock start) while a worker runs it *)
    let inflight : (int, int * float) Hashtbl.t = Hashtbl.create 8 in
    let states : (int, 'c slot_state) Hashtbl.t = Hashtbl.create 8 in
    let job i slot =
      Mutex.lock bm;
      Hashtbl.replace inflight i (slot, clock ());
      let cell = Hashtbl.find_opt states slot in
      Mutex.unlock bm;
      let state =
        match cell with
        | Some (Ready s) -> Ok s
        | Some (Poisoned (e, _)) -> Error (Init_raised e)
        | None -> (
          try
            let s = init () in
            Mutex.lock bm;
            Hashtbl.replace states slot (Ready s);
            Mutex.unlock bm;
            Ok s
          with e ->
            let bt = Printexc.get_raw_backtrace () in
            Mutex.lock bm;
            Hashtbl.replace states slot (Poisoned (e, bt));
            Mutex.unlock bm;
            Error (Init_raised e))
      in
      let outcome =
        match state with
        | Error _ as err -> err
        | Ok s -> ( try Ok (f s xs.(i)) with e -> Error (Task_raised e))
      in
      Mutex.lock bm;
      if not superseded.(i) then begin
        Hashtbl.remove inflight i;
        match outcome with
        | Ok v ->
          results.(i) <- Some v;
          decr remaining
        | Error reason ->
          Queue.add { fault_index = i; fault_slot = slot; reason } fault_log;
          Queue.add i retries
      end;
      Mutex.unlock bm
    in
    Mutex.lock t.mutex;
    for i = 0 to n - 1 do
      Queue.add (job i) t.jobs
    done;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Supervisor loop.  [failed] keeps the smallest-index exception of
       a sequential retry that itself failed — re-raised once the sweep
       is fully resolved, matching [parmap_init] semantics. *)
    let failed = ref None in
    let record_failed i e bt =
      match !failed with
      | Some (j, _, _) when j < i -> ()
      | Some _ | None -> failed := Some (i, e, bt)
    in
    let caller_state = ref None in
    let caller_init () =
      match !caller_state with
      | Some s -> s
      | None ->
        let s = init () in
        caller_state := Some s;
        s
    in
    let retry_in_caller i =
      let outcome =
        let inside = Domain.DLS.get inside_job in
        inside := true;
        Fun.protect
          ~finally:(fun () -> inside := false)
          (fun () ->
            try Ok (f (caller_init ()) xs.(i))
            with e -> Error (e, Printexc.get_raw_backtrace ()))
      in
      Mutex.lock bm;
      (match outcome with
      | Ok v -> results.(i) <- Some v
      | Error (e, bt) -> record_failed i e bt);
      decr remaining;
      Mutex.unlock bm
    in
    let continue = ref true in
    while !continue do
      Mutex.lock bm;
      let faults = List.rev (Queue.fold (fun acc fl -> fl :: acc) [] fault_log) in
      Queue.clear fault_log;
      let retry = Queue.take_opt retries in
      let rem = !remaining in
      Mutex.unlock bm;
      List.iter on_fault faults;
      match retry with
      | Some i -> retry_in_caller i
      | None ->
        if rem = 0 then continue := false
        else begin
          let expired =
            match deadline with
            | None -> []
            | Some d ->
              let now = clock () in
              Mutex.lock bm;
              let expired =
                Hashtbl.fold
                  (fun i (slot, start) acc ->
                    if now -. start > d then (i, slot) :: acc else acc)
                  inflight []
              in
              List.iter
                (fun (i, slot) ->
                  Hashtbl.remove inflight i;
                  superseded.(i) <- true;
                  Queue.add
                    { fault_index = i; fault_slot = slot; reason = Deadline_exceeded d }
                    fault_log;
                  Queue.add i retries)
                expired;
              Mutex.unlock bm;
              expired
          in
          (match expired with
          | [] -> Unix.sleepf poll_interval
          | _ -> List.iter (fun (_, slot) -> abandon_worker t slot) expired)
        end
    done;
    (match !failed with
    | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map (function Some v -> v | None -> assert false) results
  end

let shutdown t =
  if not t.stopped then begin
    Mutex.lock t.mutex;
    t.stopped <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.mutex;
    (* Zombie domains are stuck in an abandoned task and can never be
       joined; they exit (or leak with the process) on their own. *)
    List.iter (fun w -> if not w.wzombie then Domain.join w.wdomain) t.workers;
    t.workers <- []
  end
