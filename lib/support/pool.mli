(** A fixed pool of worker domains for data-parallel sweeps.

    Header-space verification is embarrassingly parallel across query
    sources, so the hot paths ({!Rvaas.Verifier.sources_reaching}, the
    isolation sweep in {!Rvaas.Service}, {!Rvaas.Federation} fan-out)
    partition their work over a pool of OCaml 5 domains.  The pool is
    deliberately small and dependency-free:

    - [parmap] preserves input order, so parallel and sequential runs
      produce identical results;
    - exceptions raised by tasks are re-raised in the caller (the one
      with the smallest input index, matching what a sequential run
      would raise first);
    - a pool of size 1 — and any call made from inside a pool worker —
      degrades to a plain sequential map in the calling domain, so
      nested use cannot deadlock and tests can force determinism.

    Worker domains are spawned lazily on the first parallel call and
    are shared for the pool's lifetime; [shutdown] joins them.  A pool
    must only be driven from one domain at a time (the simulator and
    service are single-threaded; workers exist only inside a [parmap]
    call). *)

type t

(** [create size] makes a pool of total parallelism [size] ≥ 1.  The
    caller participates in the sweep, so [size - 1] worker domains are
    spawned (lazily).  @raise Invalid_argument when [size < 1]. *)
val create : int -> t

(** [size t] is the parallelism degree [create] was given. *)
val size : t -> int

(** [default_size ()] is the [RVAAS_JOBS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()] — i.e. "use the hardware" unless told otherwise. *)
val default_size : unit -> int

(** [global ()] is a process-wide shared pool of [default_size ()],
    created on first use.  {!Rvaas.Service} uses it by default so that
    every service instance shares one set of worker domains (domains
    are an OS-level resource; spawning a pool per service would
    exhaust them). *)
val global : unit -> t

(** [parmap t f xs] maps [f] over [xs] using the pool.  Output index
    [i] holds [f xs.(i)]; ordering is deterministic regardless of
    scheduling. *)
val parmap : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parmap_init t ~init ~f xs] is [parmap] with per-worker state:
    [init ()] runs at most once per participating domain (lazily, on
    its first task of this call) and its result is passed to every
    [f] invocation that domain executes.  Used to give each worker its
    own {!Rvaas.Verifier} context — their guard caches are not
    thread-safe to share. *)
val parmap_init : t -> init:(unit -> 'c) -> f:('c -> 'a -> 'b) -> 'a array -> 'b array

(** [map_list t f xs] is [parmap] over a list. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** [shutdown t] stops and joins the worker domains.  Subsequent calls
    on [t] degrade to sequential maps; shutdown is idempotent. *)
val shutdown : t -> unit
