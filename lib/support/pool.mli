(** A fixed pool of worker domains for data-parallel sweeps.

    Header-space verification is embarrassingly parallel across query
    sources, so the hot paths ({!Rvaas.Verifier.sources_reaching}, the
    isolation sweep in {!Rvaas.Service}, {!Rvaas.Federation} fan-out)
    partition their work over a pool of OCaml 5 domains.  The pool is
    deliberately small and dependency-free:

    - [parmap] preserves input order, so parallel and sequential runs
      produce identical results;
    - exceptions raised by tasks are re-raised in the caller (the one
      with the smallest input index, matching what a sequential run
      would raise first);
    - a pool of size 1 — and any call made from inside a pool worker —
      degrades to a plain sequential map in the calling domain, so
      nested use cannot deadlock and tests can force determinism.

    Worker domains are spawned lazily on the first parallel call and
    are shared for the pool's lifetime; [shutdown] joins them.  A pool
    must only be driven from one domain at a time (the simulator and
    service are single-threaded; workers exist only inside a [parmap]
    call). *)

type t

(** [create size] makes a pool of total parallelism [size] ≥ 1.  The
    caller participates in the sweep, so [size - 1] worker domains are
    spawned (lazily).  @raise Invalid_argument when [size < 1]. *)
val create : int -> t

(** [size t] is the parallelism degree [create] was given. *)
val size : t -> int

(** [default_size ()] is the [RVAAS_JOBS] environment variable when set
    to a positive integer, otherwise [Domain.recommended_domain_count
    ()] — i.e. "use the hardware" unless told otherwise. *)
val default_size : unit -> int

(** [global ()] is a process-wide shared pool of [default_size ()],
    created on first use.  {!Rvaas.Service} uses it by default so that
    every service instance shares one set of worker domains (domains
    are an OS-level resource; spawning a pool per service would
    exhaust them). *)
val global : unit -> t

(** [parmap t f xs] maps [f] over [xs] using the pool.  Output index
    [i] holds [f xs.(i)]; ordering is deterministic regardless of
    scheduling. *)
val parmap : t -> ('a -> 'b) -> 'a array -> 'b array

(** [parmap_init t ~init ~f xs] is [parmap] with per-worker state:
    [init ()] runs at most once per participating domain (lazily, on
    its first task of this call) and its result is passed to every
    [f] invocation that domain executes.  Used to give each worker its
    own {!Rvaas.Verifier} context — their guard caches are not
    thread-safe to share.  An [init] that raises poisons its slot for
    the rest of the call (it is not re-run per task) and the exception
    is re-raised in the caller exactly like a task exception. *)
val parmap_init : t -> init:(unit -> 'c) -> f:('c -> 'a -> 'b) -> 'a array -> 'b array

(** [map_list t f xs] is [parmap] over a list. *)
val map_list : t -> ('a -> 'b) -> 'a list -> 'b list

(** {1 Supervised sweeps}

    {!parmap_supervised} trades a little latency for liveness: the
    caller acts as a supervisor instead of taking tasks, so a worker
    that raises — or wedges past a wall-clock deadline — costs one
    sequential retry rather than the whole sweep.  This is what keeps
    the verification service answering queries when a verifier context
    hits a pathological input (the paper's availability requirement:
    the verifier must outlive the faults of what it audits). *)

(** Why a task left the parallel path. *)
type fault_reason =
  | Task_raised of exn  (** the task function raised *)
  | Init_raised of exn  (** the worker's [init] raised (slot poisoned) *)
  | Deadline_exceeded of float
      (** ran past the deadline (seconds); its domain was abandoned *)

type fault = {
  fault_index : int;  (** input index of the affected task *)
  fault_slot : int;  (** pool slot of the domain that ran it *)
  reason : fault_reason;
}

val pp_fault_reason : Format.formatter -> fault_reason -> unit

(** [parmap_supervised t ?deadline ?poll_interval ?on_fault ~init ~f xs]
    is {!parmap_init} under supervision:

    - a task that raises (or lands on a slot whose [init] raised) is
      retried sequentially in the caller; only a retry that {e also}
      fails re-raises (smallest input index first, like {!parmap});
    - with [?deadline] (wall-clock seconds per task), a task running
      past it is abandoned: its domain is marked zombie (OCaml domains
      cannot be killed — any late result is discarded), a replacement
      domain is spawned on a fresh slot, and the task is retried
      sequentially in the caller;
    - every incident is reported to [?on_fault] from the caller's
      domain before the sweep returns;
    - results are order-preserving and identical to a sequential run.

    [?poll_interval] (default 1ms) is how often the supervisor scans
    for deadline overruns.  [?clock] (default [Unix.gettimeofday])
    supplies the wall clock used to stamp task starts and judge
    deadline expiry — tests inject a deterministic clock so deadline
    behaviour cannot race slow CI runners.  Degrades to a sequential
    map exactly when {!parmap} would. *)
val parmap_supervised :
  t ->
  ?deadline:float ->
  ?poll_interval:float ->
  ?clock:(unit -> float) ->
  ?on_fault:(fault -> unit) ->
  init:(unit -> 'c) ->
  f:('c -> 'a -> 'b) ->
  'a array ->
  'b array

(** [respawns t] counts worker domains respawned after deadline
    abandonment over the pool's lifetime. *)
val respawns : t -> int

(** [shutdown t] stops and joins the worker domains.  Subsequent calls
    on [t] degrade to sequential maps; shutdown is idempotent. *)
val shutdown : t -> unit
