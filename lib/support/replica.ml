(* Lag-bounded replica tail of a journal.

   A replica models the stream a warm standby receives from the
   primary's journal: frames arrive in order but may sit "in transit"
   — bounded by [max_lag] records and [delay] seconds — before they
   are applied to the replica's local view.  The view is a real
   [Journal.t] built with [Journal.ingest], so the standby's election
   logic reads claims and heartbeats from its own (possibly stale)
   replica, not from the primary's memory.

   Time is the entries' own [at] stamps (simulated time), matching the
   rest of the failover machinery: [pump ~now] applies every queued
   frame older than [delay], and the record bound applies frames
   eagerly once more than [max_lag] are queued, so a live replica
   never falls further behind than both bounds allow.

   Partition: a partitioned replica receives nothing (frames in flight
   and frames sent while partitioned are lost, counted in [dropped]).
   Healing performs a full resync from the source — a state snapshot
   transfer — because the chain cannot be re-joined across a gap
   ([Journal.ingest] refuses gaps).  A mid-stream gap from any other
   cause triggers the same resync.

   Compaction on the source enqueues a [Reset] carrying the compacted
   image; on apply the view is replaced wholesale (the replica cannot
   compact incrementally — its base must match the source's).

   [catch_up] applies everything queued regardless of [delay] — the
   reconciliation step a lagging election winner runs before takeover
   — and returns how many frames were applied. *)

type event =
  | Frame of Journal.entry
  | Reset of string (* encoded post-compaction image *)

type t = {
  source : Journal.t;
  mutable view : Journal.t;
  max_lag : int;
  delay : float;
  faults : Storefault.t option;
  mutable queue : (float * event) list; (* (arrival stamp, event), oldest first *)
  mutable partitioned : bool;
  mutable delivered : int; (* frames applied to the view *)
  mutable resets : int; (* compaction images applied *)
  mutable resyncs : int; (* full snapshot transfers *)
  mutable dropped : int; (* frames lost to partition *)
  mutable sink : Journal.sink option;
}

let view t = t.view

let partitioned t = t.partitioned

let delivered t = t.delivered

let resets t = t.resets

let resyncs t = t.resyncs

let dropped t = t.dropped

let queued t =
  List.fold_left
    (fun n (_, ev) -> match ev with Frame _ -> n + 1 | Reset _ -> n)
    0 t.queue

let lag t = Journal.last_seq t.source - Journal.last_seq t.view

let held t = match t.faults with Some f -> f.Storefault.hold_frames | None -> false

(* Full state transfer: copy the source wholesale (encode/decode keeps
   base, chain and generations) and forget everything in flight. *)
let resync t =
  (match Journal.decode (Journal.encode t.source) with
  | Ok j -> t.view <- j
  | Error _ -> ());
  t.queue <- [];
  t.resyncs <- t.resyncs + 1

let apply t ev =
  match ev with
  | Frame e -> (
    match Journal.ingest t.view e with
    | () -> t.delivered <- t.delivered + 1
    | exception Invalid_argument _ ->
      (* gap: frames were lost somewhere — snapshot resync *)
      resync t)
  | Reset img -> (
    match Journal.decode img with
    | Ok j ->
      t.view <- j;
      t.resets <- t.resets + 1
    | Error _ -> resync t)

let apply_oldest t =
  match t.queue with
  | [] -> ()
  | (_, ev) :: rest ->
    t.queue <- rest;
    apply t ev

(* Record bound: never let more than [max_lag] frames sit queued. *)
let enforce_record_bound t =
  if not (held t) then
    while queued t > t.max_lag do
      apply_oldest t
    done

let handle_append t e =
  if t.partitioned then t.dropped <- t.dropped + 1
  else begin
    t.queue <- t.queue @ [ (e.Journal.at, Frame e) ];
    enforce_record_bound t
  end

let handle_rewrite t =
  if not t.partitioned then
    (* stamp with the source tail so the image is applied on the next
       pump (it is never younger than the frames it replaces) *)
    let at = match Journal.last_at t.source with Some a -> a | None -> 0.0 in
    t.queue <- t.queue @ [ (at, Reset (Journal.encode t.source)) ]

let pump t ~now =
  if not (held t) then begin
    let rec go () =
      match t.queue with
      | (stamp, _) :: _ when now -. stamp >= t.delay ->
        apply_oldest t;
        go ()
      | _ -> ()
    in
    go ();
    enforce_record_bound t
  end

let catch_up t =
  let before = t.delivered in
  while t.queue <> [] do
    apply_oldest t
  done;
  t.delivered - before

let partition t =
  if not t.partitioned then begin
    (* frames in flight die with the link *)
    t.dropped <- t.dropped + queued t;
    t.queue <- [];
    t.partitioned <- true
  end

let heal t =
  if t.partitioned then begin
    t.partitioned <- false;
    resync t
  end

let create ?faults ?(max_lag = 8) ?(delay = 0.0) source =
  if max_lag < 0 then invalid_arg "Replica.create: max_lag must be >= 0";
  if delay < 0.0 then invalid_arg "Replica.create: delay must be >= 0";
  let view =
    match Journal.decode (Journal.encode source) with
    | Ok j -> j
    | Error _ -> Journal.create ()
  in
  let t =
    {
      source;
      view;
      max_lag;
      delay;
      faults;
      queue = [];
      partitioned = false;
      delivered = 0;
      resets = 0;
      resyncs = 0;
      dropped = 0;
      sink = None;
    }
  in
  let sink =
    {
      Journal.on_append = (fun e -> handle_append t e);
      on_sync = (fun () -> ());
      on_roll = (fun () -> ());
      on_rewrite = (fun () -> handle_rewrite t);
    }
  in
  t.sink <- Some sink;
  Journal.attach source sink;
  t

let close t =
  (match t.sink with
  | Some sink -> Journal.detach_sink t.source sink
  | None -> ());
  t.sink <- None
