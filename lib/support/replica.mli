(** Lag-bounded replica tail of a journal — the stream a warm standby
    receives from the primary.

    Frames arrive in order but may sit in transit before being applied
    to the replica's local view, bounded by [max_lag] records (applied
    eagerly once exceeded) and [delay] seconds of simulated time
    (applied by {!pump}).  The view is a real {!Journal.t} built with
    {!Journal.ingest}, so election logic can read claims and
    heartbeats from the standby's own — possibly stale — copy instead
    of the primary's memory.

    A partitioned replica receives nothing; frames sent meanwhile are
    lost.  Healing (and any mid-stream gap) triggers a full snapshot
    resync from the source, because an ingest chain cannot re-join
    across a gap.  Compaction on the source ships the compacted image
    wholesale.  {!catch_up} applies everything queued regardless of
    delay — the reconciliation a lagging election winner performs
    before takeover. *)

type t

(** [create source] attaches a replica tail to [source].  [max_lag]
    (default 8) bounds how many frames may queue before eager apply;
    [delay] (default 0) is the in-transit time in the entries' own
    [at] clock; [faults] lets a {!Storefault} plan hold frames in
    transit ([hold_frames]). *)
val create : ?faults:Storefault.t -> ?max_lag:int -> ?delay:float -> Journal.t -> t

(** The replica's local view (stale by at most the configured bounds
    while live). *)
val view : t -> Journal.t

(** Apply every queued frame older than [delay] at simulated time
    [now], then re-enforce the record bound.  No-op while frames are
    held by a fault plan. *)
val pump : t -> now:float -> unit

(** Apply everything queued, regardless of delay or hold; returns the
    number of frames applied.  Used by an election winner to reconcile
    to the longest chain prefix it holds before takeover. *)
val catch_up : t -> int

(** Cut the link: the replica stops receiving; frames in flight and
    frames sent while partitioned are dropped. *)
val partition : t -> unit

(** Restore the link and resync wholesale from the source. *)
val heal : t -> unit

val partitioned : t -> bool

(** Records the view is behind the source right now. *)
val lag : t -> int

(** Frames currently queued (in transit, not yet applied). *)
val queued : t -> int

(** Frames applied to the view so far. *)
val delivered : t -> int

(** Compaction images applied so far. *)
val resets : t -> int

(** Full snapshot resyncs performed (heals and gap recoveries). *)
val resyncs : t -> int

(** Frames lost to partitions. *)
val dropped : t -> int

(** Detach from the source; the view stays readable. *)
val close : t -> unit
