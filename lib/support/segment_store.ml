(* Segmented journal store: the RVJL1 single-file image split into
   sealed segments plus one active segment.

   Layout: a directory holding [seg-NNNNNN.rvsg] (sealed, immutable)
   and at most one [seg-NNNNNN.act] (active).  Each segment carries
   its own chain base (the checksum root under its first entry), so
   recovery concatenates segments oldest-first and re-derives one
   continuous chain; the active segment tolerates a torn tail exactly
   like the monolithic image did.

   Sealing: when the active segment crosses the size threshold (or the
   typed layer rolls it at a compaction boundary), its header is
   finalized — exact frame count, span checksum (the chain state after
   its last entry), sealed flag — fsynced, and the file is renamed to
   its immutable name.  A sealed segment is never written again, which
   is what lets compaction drop whole files: [on_rewrite] unlinks the
   sealed segments wholly below the new chain base, oldest first, and
   touches no retained byte.

   Encryption-at-rest: with a [crypt] installed, every frame payload
   is wrapped by an authenticated stream cipher (per-segment nonce,
   per-frame MAC) before it reaches disk — the plaintext image never
   does.  Frame boundaries stay recoverable because the length prefix
   delimits the ciphertext and any corruption of prefix or payload is
   caught by the frame MAC: recovery stops at the first unverifiable
   frame, the same torn-tail contract as plaintext.

   Error containment mirrors [Journal_file]: a write/fsync failure
   marks the store degraded and is swallowed — the in-memory journal
   stays authoritative. *)

type crypt = {
  wrap : nonce:string -> index:int -> string -> string;
  unwrap : nonce:string -> index:int -> string -> string option;
  fresh_nonce : seg:int -> string;
}

type config = {
  segment_bytes : int;
  crypt : crypt option;
}

let default_config = { segment_bytes = 64 * 1024; crypt = None }

(* ---- little-endian binary helpers (same wire order as Journal) ---- *)

let w_i64 b v =
  for i = 0 to 7 do
    Buffer.add_char b
      (Char.chr (Int64.to_int (Int64.logand (Int64.shift_right_logical v (8 * i)) 0xffL)))
  done

let w_int b v = w_i64 b (Int64.of_int v)

let i64_bytes v =
  let b = Buffer.create 8 in
  w_i64 b v;
  Buffer.contents b

let int_bytes v = i64_bytes (Int64.of_int v)

exception Truncated

let r_u8 s pos =
  if !pos >= String.length s then raise Truncated;
  let v = Char.code s.[!pos] in
  incr pos;
  v

let r_i64 s pos =
  let v = ref 0L in
  for i = 0 to 7 do
    v := Int64.logor !v (Int64.shift_left (Int64.of_int (r_u8 s pos)) (8 * i))
  done;
  !v

let r_int s pos = Int64.to_int (r_i64 s pos)

let r_string s pos =
  let n = r_int s pos in
  if n < 0 || !pos + n > String.length s then raise Truncated;
  let v = String.sub s !pos n in
  pos := !pos + n;
  v

(* ---- segment format ---- *)

let magic = "RVSG1"

let flag_encrypted = 0x01

let flag_sealed = 0x02

let flags_offset = String.length magic

(* Header: magic, flags byte, then seg index / chain base / nonce /
   count / span checksum.  [count] is open-ended while active and
   patched exact at seal; [span] is 0 while active and patched to the
   chain state after the segment's last entry. *)
let encode_header ~encrypted ~index ~base_seq ~base_gen ~base_checksum ~nonce =
  let b = Buffer.create 64 in
  Buffer.add_string b magic;
  Buffer.add_char b (Char.chr (if encrypted then flag_encrypted else 0));
  w_int b index;
  w_int b base_seq;
  w_int b base_gen;
  w_i64 b base_checksum;
  w_int b (String.length nonce);
  Buffer.add_string b nonce;
  let count_offset = Buffer.length b in
  w_int b Journal.open_count;
  w_i64 b 0L;
  (Buffer.contents b, count_offset)

type header = {
  h_encrypted : bool;
  h_sealed : bool;
  h_index : int;
  h_base_seq : int;
  h_base_gen : int;
  h_base_checksum : int64;
  h_nonce : string;
  h_count : int;
  h_span : int64;
  h_frames_at : int; (* byte offset of the first frame *)
}

let decode_header s =
  let n = String.length magic in
  if String.length s < n || not (String.equal (String.sub s 0 n) magic) then
    Error "Segment_store: bad segment magic"
  else begin
    let pos = ref n in
    try
      let flags = r_u8 s pos in
      let h_index = r_int s pos in
      let h_base_seq = r_int s pos in
      let h_base_gen = r_int s pos in
      let h_base_checksum = r_i64 s pos in
      let h_nonce = r_string s pos in
      let h_count = r_int s pos in
      let h_span = r_i64 s pos in
      if h_base_seq < 0 || h_base_gen < 1 then raise Truncated;
      Ok
        {
          h_encrypted = flags land flag_encrypted <> 0;
          h_sealed = flags land flag_sealed <> 0;
          h_index;
          h_base_seq;
          h_base_gen;
          h_base_checksum;
          h_nonce;
          h_count;
          h_span;
          h_frames_at = !pos;
        }
    with Truncated -> Error "Segment_store: truncated segment header"
  end

(* ---- store state ---- *)

type active = {
  a_index : int;
  a_path : string;
  mutable a_oc : out_channel option;
  a_count_offset : int;
  a_nonce : string;
  mutable a_frames : int; (* frames written to this segment *)
  mutable a_bytes : int; (* bytes written (header + frames) *)
  mutable a_last_seq : int; (* seq of the segment's last frame *)
  mutable a_last_gen : int; (* generation of the segment's last frame *)
  mutable a_last_checksum : int64; (* chain state after the last frame *)
}

type sealed = {
  s_index : int;
  s_path : string;
  s_base_seq : int;
  s_end_seq : int; (* seq of the segment's last entry *)
  s_bytes : int;
}

type t = {
  dir : string;
  log : Journal.t;
  config : config;
  faults : Storefault.t option;
  mutable sealed : sealed list; (* oldest first *)
  mutable active : active option;
  mutable next_index : int;
  mutable written : int; (* bytes across all live files *)
  mutable synced : int;
  mutable dir_syncs : int;
  mutable seals : int;
  mutable sealed_deleted : int;
  mutable stale_temps_removed : int;
  mutable sink_errors : int;
  mutable degraded : bool;
  mutable sink : Journal.sink option;
}

let dir t = t.dir

let written_bytes t = t.written

let synced_bytes t = t.synced

let dir_syncs t = t.dir_syncs

let seals t = t.seals

let sealed_count t = List.length t.sealed

let sealed_deleted t = t.sealed_deleted

let stale_temps_removed t = t.stale_temps_removed

let sink_errors t = t.sink_errors

let degraded t = t.degraded

let sealed_name index = Printf.sprintf "seg-%06d.rvsg" index

let active_name index = Printf.sprintf "seg-%06d.act" index

let active_path t =
  match t.active with
  | Some a -> a.a_path
  | None -> invalid_arg "Segment_store: store is closed"

let sealed_paths t = List.map (fun s -> s.s_path) t.sealed

let fsync_channel oc =
  flush oc;
  Unix.fsync (Unix.descr_of_out_channel oc)

let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () -> try Unix.fsync fd with Unix.Unix_error _ -> ())

let contain t f =
  if not t.degraded then
    try f ()
    with Sys_error _ | Unix.Unix_error _ ->
      t.sink_errors <- t.sink_errors + 1;
      t.degraded <- true

(* ---- segment lifecycle ---- *)

let encrypted t = t.config.crypt <> None

(* Open a fresh active segment whose chain base is the given point. *)
let start_segment t ~base_seq ~base_gen ~base_checksum =
  let index = t.next_index in
  t.next_index <- index + 1;
  let nonce =
    match t.config.crypt with Some c -> c.fresh_nonce ~seg:index | None -> ""
  in
  let header, a_count_offset =
    encode_header ~encrypted:(encrypted t) ~index ~base_seq ~base_gen
      ~base_checksum ~nonce
  in
  let path = Filename.concat t.dir (active_name index) in
  let oc = open_out_gen [ Open_wronly; Open_creat; Open_trunc; Open_binary ] 0o644 path in
  output_string oc header;
  flush oc;
  t.written <- t.written + String.length header;
  t.active <-
    Some
      {
        a_index = index;
        a_path = path;
        a_oc = Some oc;
        a_count_offset;
        a_nonce = nonce;
        a_frames = 0;
        a_bytes = String.length header;
        a_last_seq = base_seq - 1;
        a_last_gen = base_gen;
        a_last_checksum = base_checksum;
      }

(* Finalize the active segment: patch flags/count/span in the header,
   fsync, rename to the immutable name.  After the rename the file is
   never written again.  A crash anywhere in here is recoverable: the
   header patch keeps the frames intact, and the rename is atomic, so
   recovery sees either a (possibly finalized) [.act] or the sealed
   file — never a mix. *)
let seal_active_exn t =
  match t.active with
  | None -> ()
  | Some a when a.a_frames = 0 -> () (* nothing to seal *)
  | Some a ->
    (match a.a_oc with
    | Some oc ->
      flush oc;
      close_out oc;
      a.a_oc <- None
    | None -> ());
    let fd = open_out_gen [ Open_wronly; Open_binary ] 0o644 a.a_path in
    seek_out fd flags_offset;
    output_string fd
      (String.make 1
         (Char.chr (flag_sealed lor if encrypted t then flag_encrypted else 0)));
    seek_out fd a.a_count_offset;
    output_string fd (int_bytes a.a_frames);
    output_string fd (i64_bytes a.a_last_checksum);
    (match t.faults with Some f -> Storefault.on_sync f | None -> ());
    fsync_channel fd;
    close_out fd;
    let sealed_path = Filename.concat t.dir (sealed_name a.a_index) in
    Sys.rename a.a_path sealed_path;
    fsync_dir t.dir;
    t.dir_syncs <- t.dir_syncs + 1;
    t.seals <- t.seals + 1;
    let s =
      {
        s_index = a.a_index;
        s_path = sealed_path;
        s_base_seq = a.a_last_seq - a.a_frames + 1;
        s_end_seq = a.a_last_seq;
        s_bytes = a.a_bytes;
      }
    in
    t.sealed <- t.sealed @ [ s ];
    t.active <- None;
    t.synced <- t.written

(* Seal then immediately start the successor at the sealed segment's
   chain tail (not the journal tail — during attach mirroring the
   journal is already ahead of the frames written so far). *)
let roll_exn t =
  match t.active with
  | None -> ()
  | Some a when a.a_frames = 0 -> () (* still empty: nothing moved *)
  | Some a ->
    let base_seq = a.a_last_seq + 1 in
    let base_gen = a.a_last_gen in
    let base_checksum = a.a_last_checksum in
    seal_active_exn t;
    start_segment t ~base_seq ~base_gen ~base_checksum

let seal_active t = contain t (fun () -> roll_exn t)

(* ---- sink handlers ---- *)

let handle_append t (e : Journal.entry) =
  contain t (fun () ->
      (match t.faults with Some f -> Storefault.on_append f | None -> ());
      let a =
        match t.active with
        | Some a -> a
        | None -> invalid_arg "Segment_store: store is closed"
      in
      let oc =
        match a.a_oc with
        | Some oc -> oc
        | None -> invalid_arg "Segment_store: active segment is closed"
      in
      let plain = Journal.encode_entry e in
      let payload =
        match t.config.crypt with
        | Some c -> c.wrap ~nonce:a.a_nonce ~index:a.a_frames plain
        | None -> plain
      in
      let frame = int_bytes (String.length payload) ^ payload in
      let torn =
        match t.faults with
        | Some f ->
          let b = Storefault.frame_bytes f a.a_frames frame in
          if String.length b < String.length frame then Some b else None
        | None -> None
      in
      (match torn with
      | Some b ->
        (* A short write tears the frame mid-byte: persist the torn
           prefix (recovery drops it), then degrade — nothing after a
           partial frame could be decoded anyway. *)
        output_string oc b;
        flush oc;
        t.written <- t.written + String.length b;
        a.a_bytes <- a.a_bytes + String.length b;
        t.sink_errors <- t.sink_errors + 1;
        t.degraded <- true
      | None ->
        output_string oc frame;
        flush oc;
        t.written <- t.written + String.length frame;
        a.a_bytes <- a.a_bytes + String.length frame;
        a.a_frames <- a.a_frames + 1;
        a.a_last_seq <- e.Journal.seq;
        a.a_last_gen <- e.Journal.gen;
        a.a_last_checksum <- e.Journal.checksum;
        if a.a_bytes >= t.config.segment_bytes then roll_exn t))

let handle_sync t =
  contain t (fun () ->
      (match t.faults with Some f -> Storefault.on_sync f | None -> ());
      (match t.active with
      | Some { a_oc = Some oc; _ } -> fsync_channel oc
      | Some _ | None -> ());
      t.synced <- t.written)

(* Compaction moved the chain base: drop every sealed segment that now
   lies wholly below it, oldest first (deleting oldest-first keeps the
   remaining files a contiguous chain suffix even if we crash between
   unlinks), then pin the directory.  Segments straddling the base are
   retained untouched — recovery replays their extra prefix, which is
   digest-equivalent. *)
let handle_rewrite t =
  contain t (fun () ->
      let base = Journal.base_seq t.log in
      let drop, keep =
        List.partition (fun s -> s.s_end_seq < base) t.sealed
      in
      if drop <> [] then begin
        List.iter
          (fun s ->
            (try Sys.remove s.s_path with Sys_error _ -> ());
            t.written <- t.written - s.s_bytes;
            t.sealed_deleted <- t.sealed_deleted + 1)
          drop;
        t.sealed <- keep;
        fsync_dir t.dir;
        t.dir_syncs <- t.dir_syncs + 1;
        t.synced <- min t.synced t.written
      end)

(* ---- attach / close ---- *)

let segment_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f ->
         String.length f > 4
         && String.sub f 0 4 = "seg-"
         && (Filename.check_suffix f ".rvsg" || Filename.check_suffix f ".act"))
  |> List.sort compare

let attach ?(config = default_config) ?faults log ~dir =
  if config.segment_bytes < 256 then
    invalid_arg "Segment_store.attach: segment_bytes must be >= 256";
  if not (Sys.file_exists dir) then Unix.mkdir dir 0o755
  else if not (Sys.is_directory dir) then
    invalid_arg "Segment_store.attach: path exists and is not a directory";
  let t =
    {
      dir;
      log;
      config;
      faults;
      sealed = [];
      active = None;
      next_index = 0;
      written = 0;
      synced = 0;
      dir_syncs = 0;
      seals = 0;
      sealed_deleted = 0;
      stale_temps_removed = 0;
      sink_errors = 0;
      degraded = false;
      sink = None;
    }
  in
  (* Attach replaces whatever store was here: stale temp files (from a
     crashed [Journal_file] rewrite pointed at this directory, or any
     earlier tooling) are swept and counted; old segments are removed
     so the fresh image is the only truth. *)
  Array.iter
    (fun f ->
      let p = Filename.concat dir f in
      if Filename.check_suffix f ".tmp" then begin
        (try Sys.remove p with Sys_error _ -> ());
        t.stale_temps_removed <- t.stale_temps_removed + 1
      end)
    (Sys.readdir dir);
  List.iter
    (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (segment_files dir);
  start_segment t ~base_seq:(Journal.base_seq log)
    ~base_gen:(Journal.base_gen log)
    ~base_checksum:(Journal.base_checksum log);
  (* Mirror the journal's current entries into the fresh active
     segment (sealing on threshold as we go), then make it durable. *)
  List.iter (fun e -> handle_append t e) (Journal.entries log);
  (match t.active with
  | Some { a_oc = Some oc; _ } -> (try fsync_channel oc with Sys_error _ | Unix.Unix_error _ -> ())
  | Some _ | None -> ());
  fsync_dir dir;
  t.dir_syncs <- t.dir_syncs + 1;
  t.synced <- t.written;
  let sink =
    {
      Journal.on_append = (fun e -> handle_append t e);
      on_sync = (fun () -> handle_sync t);
      on_roll = (fun () -> contain t (fun () -> roll_exn t));
      on_rewrite = (fun () -> handle_rewrite t);
    }
  in
  t.sink <- Some sink;
  Journal.attach log sink;
  t

let sync t = handle_sync t

let close t =
  (match t.sink with
  | Some sink -> Journal.detach_sink t.log sink
  | None -> ());
  t.sink <- None;
  match t.active with
  | Some ({ a_oc = Some oc; _ } as a) ->
    contain t (fun () ->
        fsync_channel oc;
        t.synced <- t.written);
    close_out_noerr oc;
    a.a_oc <- None
  | Some _ | None -> ()

(* ---- recovery ---- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* Decode one segment's frames into plaintext entry frames, stopping
   at the first torn or unverifiable frame.  Returns the frames and
   whether the segment decoded cleanly to its end (a mid-chain stop
   means everything after is unrecoverable). *)
let segment_frames ~crypt (h : header) bytes =
  let buf = Buffer.create (String.length bytes) in
  let pos = ref h.h_frames_at in
  let index = ref 0 in
  let clean = ref true in
  (try
     while !pos < String.length bytes && !index < h.h_count do
       let payload = r_string bytes pos in
       let plain =
         if h.h_encrypted then
           match crypt with
           | None -> None
           | Some c -> c.unwrap ~nonce:h.h_nonce ~index:!index payload
         else Some payload
       in
       match plain with
       | None ->
         (* MAC reject: corrupt or forged frame — never replay it. *)
         clean := false;
         raise Exit
       | Some p ->
         Buffer.add_string buf p;
         incr index
     done
   with Truncated | Exit -> clean := false);
  (* A sealed segment that holds fewer frames than its finalized
     header promises was truncated after the fact. *)
  if h.h_sealed && !index < h.h_count then clean := false;
  (Buffer.contents buf, !index, !clean)

let recover_from_dir ?crypt dir =
  if not (Sys.file_exists dir && Sys.is_directory dir) then
    Error ("Segment_store: no such store: " ^ dir)
  else begin
    let files = segment_files dir in
    if files = [] then Error ("Segment_store: empty store: " ^ dir)
    else begin
      (* Walk the files strictly in name (= index) order, stopping at
         the first unreadable/undecodable header or chain gap: a later
         segment must never be spliced in over a damaged earlier one —
         that would recover a disjoint suffix, not a verified prefix.
         Only damage to the very first segment is a hard error (there
         is no prefix left to recover). *)
      let rec walk ~first acc expect = function
        | [] -> Ok (List.rev acc, expect)
        | f :: rest -> (
          let path = Filename.concat dir f in
          match read_file path with
          | exception Sys_error msg ->
            if first then Error ("Segment_store: " ^ msg) else Ok (List.rev acc, expect)
          | bytes -> (
            match decode_header bytes with
            | Error e -> if first then Error e else Ok (List.rev acc, expect)
            | Ok h ->
              if (not first) && Some h.h_base_seq <> expect then Ok (List.rev acc, expect)
              else
                walk ~first:false ((h, bytes) :: acc)
                  (Some (h.h_base_seq + h.h_count))
                  rest))
      in
      (* [expect] above uses the header count, which is exact only for
         sealed segments; the active segment is last, so its open count
         never gates a successor. *)
      match walk ~first:true [] None files with
      | Error e -> Error e
      | Ok ([], _) -> Error ("Segment_store: no decodable segment in " ^ dir)
      | Ok (((first, _) :: _ as all), _) ->
        if first.h_encrypted && crypt = None then
          Error "Segment_store: encrypted store and no key"
        else begin
          let frames = Buffer.create 4096 in
          let stop = ref false in
          List.iter
            (fun ((h : header), bytes) ->
              if not !stop then begin
                let fs, _, clean = segment_frames ~crypt h bytes in
                Buffer.add_string frames fs;
                if not clean then stop := true
              end)
            all;
          (* Synthesize the monolithic open-ended image and reuse the
             journal decoder — identical torn-tail semantics. *)
          let img = Buffer.create (Buffer.length frames + 64) in
          Buffer.add_string img "RVJL1";
          let b = Buffer.create 32 in
          w_int b first.h_base_seq;
          w_int b first.h_base_gen;
          w_i64 b first.h_base_checksum;
          w_int b Journal.open_count;
          Buffer.add_string img (Buffer.contents b);
          Buffer.add_buffer img frames;
          Journal.decode (Buffer.contents img)
        end
    end
  end
