(** Segmented journal store: sealed immutable segments plus one
    active segment, replacing the monolithic RVJL1 image for logs that
    outgrow rewrite-the-world compaction.

    A directory holds [seg-NNNNNN.rvsg] files (sealed — finalized
    header with exact frame count and span checksum, fsynced, never
    written again) and at most one [seg-NNNNNN.act] (active — open
    header, incrementally appended, flushed per entry, fsynced on
    checkpoint).  Each segment records its own chain base, so recovery
    concatenates segments in index order and re-derives a single
    continuous checksum chain; the active tail tolerates torn writes
    exactly as the monolithic image did.

    Compaction ({!Journal.compact} on the attached log) drops whole
    sealed segments that lie wholly below the new chain base — oldest
    first, no retained byte rewritten.  The typed layer rolls the
    active segment ({!Journal.roll}) before re-appending the retained
    block, so the cut lands on a segment boundary.

    Encryption-at-rest: install a {!crypt} and every frame payload is
    wrapped by an authenticated cipher (per-segment nonce, per-frame
    MAC) before hitting disk — plaintext never does.  The frame length
    prefix delimits ciphertext; corrupting either prefix or payload
    makes the frame MAC fail, and recovery stops there (the torn-tail
    contract, preserved under encryption).

    Error containment matches {!Journal_file}: write/fsync failures
    mark the store degraded and are swallowed; the in-memory journal
    stays authoritative. *)

(** Injected cipher hooks ([support] sits below [cryptosim], so the
    cipher itself lives in [Cryptosim.Atrest] and is passed in).
    [wrap ~nonce ~index plain] authenticates-then-encrypts one frame;
    [unwrap] inverts it, [None] on MAC failure; [fresh_nonce ~seg]
    derives the per-segment nonce. *)
type crypt = {
  wrap : nonce:string -> index:int -> string -> string;
  unwrap : nonce:string -> index:int -> string -> string option;
  fresh_nonce : seg:int -> string;
}

type config = {
  segment_bytes : int;  (** seal the active segment at this size *)
  crypt : crypt option;  (** encrypt-at-rest when present *)
}

(** 64 KiB segments, no encryption. *)
val default_config : config

type t

(** [attach log ~dir] replaces whatever store lives in [dir] (stale
    [*.tmp] files are swept and counted, old segments removed), writes
    the log's current entries into a fresh active segment (sealing on
    threshold), and installs the sink so later appends, syncs, rolls
    and compactions are mirrored.  [faults] injects a deterministic
    {!Storefault} plan for crash-matrix tests. *)
val attach : ?config:config -> ?faults:Storefault.t -> Journal.t -> dir:string -> t

val dir : t -> string

(** Path of the current active segment.
    @raise Invalid_argument when the store is closed. *)
val active_path : t -> string

(** Paths of the sealed segments, oldest first. *)
val sealed_paths : t -> string list

(** Bytes across all live segment files (flushed to the OS). *)
val written_bytes : t -> int

(** Bytes known durable; [= written_bytes] right after a checkpoint
    or seal. *)
val synced_bytes : t -> int

(** Directory fsyncs so far (attach, every seal, every deletion
    batch). *)
val dir_syncs : t -> int

(** Segments sealed so far (including those later deleted). *)
val seals : t -> int

(** Sealed segments currently live. *)
val sealed_count : t -> int

(** Sealed segments deleted by compaction so far. *)
val sealed_deleted : t -> int

(** Stale [*.tmp] files swept by {!attach}. *)
val stale_temps_removed : t -> int

(** Write/fsync failures swallowed (the store is then degraded). *)
val sink_errors : t -> int

(** [true] once an I/O failure stopped the mirroring; on-disk state is
    a stale but still-recoverable prefix. *)
val degraded : t -> bool

(** Seal the active segment now (if non-empty) and start a fresh one
    at the chain tail.  Equivalent to {!Journal.roll} reaching this
    sink. *)
val seal_active : t -> unit

(** Fsync the active segment; equivalent to {!Journal.sync}. *)
val sync : t -> unit

(** Detach from the log, fsync and close the active segment.  The
    directory remains recoverable. *)
val close : t -> unit

(** [recover_from_dir ?crypt dir] reads every segment in index order,
    verifies chain continuity across segment boundaries, decrypts
    frames when [crypt] is given, and returns the decoded journal —
    the longest verified prefix across the whole store.  Recovery
    stops at the first torn frame, MAC failure, truncated sealed
    segment, or inter-segment gap.  [Error] when the directory is
    missing/empty, no segment decodes, or the store is encrypted and
    no [crypt] was supplied. *)
val recover_from_dir : ?crypt:crypt -> string -> (Journal.t, string) result
