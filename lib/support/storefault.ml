(* Deterministic fault plan for storage backends and replica tails.

   The crash matrix used to be driven only by process kills and
   post-hoc byte surgery on the image; this plan lets a test script
   the fault at the exact I/O operation instead: the Nth frame write
   is torn short, the Nth fsync fails, the Nth append raises (ENOSPC),
   replica frames are held back.  Backends consult the plan at each
   operation and bump the matching counter, so assertions can check
   both the effect (recovered prefix) and that the fault actually
   fired. *)

type t = {
  mutable short_write_at : int option;
      (* frame write #n (0-based) is truncated to half its bytes *)
  mutable fail_sync_at : int option; (* fsync #n raises Sys_error *)
  mutable fail_append_at : int option; (* append #n raises Sys_error *)
  mutable hold_frames : bool; (* replica: queue frames, deliver nothing *)
  (* counters *)
  mutable writes : int;
  mutable syncs : int;
  mutable short_writes : int;
  mutable failed_syncs : int;
  mutable failed_appends : int;
}

let create () =
  {
    short_write_at = None;
    fail_sync_at = None;
    fail_append_at = None;
    hold_frames = false;
    writes = 0;
    syncs = 0;
    short_writes = 0;
    failed_syncs = 0;
    failed_appends = 0;
  }

(* Consulted by a backend before mirroring an append; raises when the
   plan says this append fails wholesale (simulated ENOSPC). *)
let on_append t =
  let n = t.writes in
  (match t.fail_append_at with
  | Some k when k = n ->
    t.failed_appends <- t.failed_appends + 1;
    t.writes <- n + 1;
    raise (Sys_error "Storefault: injected append failure (ENOSPC)")
  | _ -> ());
  t.writes <- n + 1

(* [frame_bytes t n frame] is what actually reaches the device for
   frame number [n]: the full frame, or a torn prefix when the plan
   schedules a short write there. *)
let frame_bytes t n frame =
  match t.short_write_at with
  | Some k when k = n ->
    t.short_writes <- t.short_writes + 1;
    String.sub frame 0 (String.length frame / 2)
  | _ -> frame

(* Consulted before each fsync; raises when the plan fails it. *)
let on_sync t =
  let n = t.syncs in
  t.syncs <- n + 1;
  match t.fail_sync_at with
  | Some k when k = n ->
    t.failed_syncs <- t.failed_syncs + 1;
    raise (Sys_error "Storefault: injected fsync failure")
  | _ -> ()
