(** Deterministic fault injection for storage backends and replica
    tails.

    A plan schedules faults by operation index — the Nth frame write
    torn short, the Nth fsync raising, the Nth append failing like
    ENOSPC, replica frames held in transit — so the crash matrix in
    [test_persistence.ml] can hit exact boundaries (mid-seal,
    mid-compaction, fsync edge) deterministically instead of only via
    process kills and post-hoc byte surgery.  Backends accept an
    optional plan at attach time ({!Segment_store.attach},
    {!Replica.create}) and bump the counters as faults fire. *)

type t = {
  mutable short_write_at : int option;
      (** frame write number (0-based) to truncate to half its bytes *)
  mutable fail_sync_at : int option;  (** fsync number to fail *)
  mutable fail_append_at : int option;
      (** append number to fail wholesale (simulated ENOSPC) *)
  mutable hold_frames : bool;
      (** replica tails: keep queueing, deliver nothing until cleared *)
  mutable writes : int;  (** frame writes attempted so far *)
  mutable syncs : int;  (** fsyncs attempted so far *)
  mutable short_writes : int;  (** scheduled short writes that fired *)
  mutable failed_syncs : int;
  mutable failed_appends : int;
}

(** A plan with no faults scheduled and all counters zero. *)
val create : unit -> t

(** [on_append t] counts an append; raises [Sys_error] when the plan
    fails this one. *)
val on_append : t -> unit

(** [frame_bytes t n frame] is what reaches the device for frame
    number [n] — the full frame, or a torn prefix on a scheduled short
    write. *)
val frame_bytes : t -> int -> string -> string

(** [on_sync t] counts an fsync; raises [Sys_error] when the plan
    fails this one. *)
val on_sync : t -> unit
