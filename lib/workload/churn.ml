type event =
  | Upgrade of { sw : int; outage : float }
  | Flap of { sw : int; port : int; down : float }
  | Attack_burst of { attack : Sdnctl.Attack.t; dwell : float }
  | Storm of { host : int; queries : int; spread : float }

type campaign = {
  c_seed : int;
  c_start : float;
  c_duration : float;
  c_events : (float * event) list;
}

type profile = {
  upgrades_per_min : float;
  flaps_per_min : float;
  attacks_per_min : float;
  storms_per_min : float;
  upgrade_outage : float;
  flap_down : float;
  attack_dwell : float;
  storm_queries : int;
  storm_spread : float;
}

let default_profile =
  {
    upgrades_per_min = 1.0;
    flaps_per_min = 2.0;
    attacks_per_min = 1.0;
    storms_per_min = 1.0;
    upgrade_outage = 2.0;
    flap_down = 1.5;
    attack_dwell = 3.0;
    storm_queries = 20;
    storm_spread = 2.0;
  }

type report = {
  mutable upgrades : int;
  mutable flaps : int;
  mutable attacks : int;
  mutable storms : int;
  mutable storm_queries_sent : int;
  mutable storm_answers : int;
  mutable storm_throttled : int;
}

let fresh_report () =
  {
    upgrades = 0;
    flaps = 0;
    attacks = 0;
    storms = 0;
    storm_queries_sent = 0;
    storm_answers = 0;
    storm_throttled = 0;
  }

let event_count c = List.length c.c_events

let describe = function
  | Upgrade { sw; outage } -> Printf.sprintf "upgrade s%d (%.1fs outage)" sw outage
  | Flap { sw; port; down } -> Printf.sprintf "flap s%d:%d (%.1fs down)" sw port down
  | Attack_burst { attack; dwell } ->
    Printf.sprintf "attack %s (%.1fs dwell)" (Sdnctl.Attack.describe attack) dwell
  | Storm { host; queries; spread } ->
    Printf.sprintf "storm h%d (%d queries over %.1fs)" host queries spread

(* Arrival times of a Poisson process at [per_min] events/minute over
   [start, start+duration), drawn from [rng]. *)
let arrivals rng ~per_min ~start ~duration =
  if per_min <= 0.0 then []
  else begin
    let mean_gap = 60.0 /. per_min in
    let times = ref [] and t = ref (start +. Support.Rng.exponential rng ~mean:mean_gap) in
    while !t < start +. duration do
      times := !t :: !times;
      t := !t +. Support.Rng.exponential rng ~mean:mean_gap
    done;
    List.rev !times
  end

(* A campaign is a pure function of (scenario topology + addressing,
   profile, seed): replaying the same seed on the same world yields the
   identical event program.  Each event class draws from its own split
   stream so changing one rate never perturbs the others' picks. *)
let plan (s : Scenario.t) profile ~seed ~start ~duration =
  if duration <= 0.0 then invalid_arg "Churn.plan: duration must be positive";
  let topo = Netsim.Net.topology s.net in
  let switches = Array.of_list (Netsim.Topology.switches topo) in
  let hosts = Array.of_list (Netsim.Topology.hosts topo) in
  if Array.length switches = 0 then invalid_arg "Churn.plan: no switches";
  if Array.length hosts = 0 then invalid_arg "Churn.plan: no hosts";
  let root = Support.Rng.create seed in
  let upgrade_rng = Support.Rng.split root in
  let flap_rng = Support.Rng.split root in
  let attack_rng = Support.Rng.split root in
  let storm_rng = Support.Rng.split root in
  let upgrades =
    arrivals upgrade_rng ~per_min:profile.upgrades_per_min ~start ~duration
    |> List.map (fun t ->
           let sw = switches.(Support.Rng.int upgrade_rng (Array.length switches)) in
           (t, Upgrade { sw; outage = profile.upgrade_outage }))
  in
  let flaps =
    arrivals flap_rng ~per_min:profile.flaps_per_min ~start ~duration
    |> List.filter_map (fun t ->
           (* Pick a switch with at least one switch-to-switch link and
              one of its structural ports. *)
           let rec pick attempts =
             if attempts = 0 then None
             else
               let sw = switches.(Support.Rng.int flap_rng (Array.length switches)) in
               match Netsim.Topology.neighbor_switches topo sw with
               | [] -> pick (attempts - 1)
               | neighbors ->
                 let port, _, _ =
                   List.nth neighbors (Support.Rng.int flap_rng (List.length neighbors))
                 in
                 Some (sw, port)
           in
           Option.map
             (fun (sw, port) -> (t, Flap { sw; port; down = profile.flap_down }))
             (pick 16))
  in
  let attacks =
    arrivals attack_rng ~per_min:profile.attacks_per_min ~start ~duration
    |> List.map (fun t ->
           let victim = hosts.(Support.Rng.int attack_rng (Array.length hosts)) in
           let rec other () =
             let h = hosts.(Support.Rng.int attack_rng (Array.length hosts)) in
             if h <> victim then h else other ()
           in
           let attack =
             match Support.Rng.int attack_rng 3 with
             | 1 when Array.length hosts > 1 ->
               Sdnctl.Attack.Exfiltrate { victim_host = victim; attacker_host = other () }
             | 0 | 1 -> Sdnctl.Attack.Blackhole { victim_host = victim }
             | _ -> Sdnctl.Attack.Meter_squeeze { victim_host = victim; rate_kbps = 64 }
           in
           (t, Attack_burst { attack; dwell = profile.attack_dwell }))
  in
  let storms =
    arrivals storm_rng ~per_min:profile.storms_per_min ~start ~duration
    |> List.map (fun t ->
           let host = hosts.(Support.Rng.int storm_rng (Array.length hosts)) in
           ( t,
             Storm
               { host; queries = profile.storm_queries; spread = profile.storm_spread } ))
  in
  let events =
    List.concat [ upgrades; flaps; attacks; storms ]
    |> List.stable_sort (fun (a, _) (b, _) -> compare a b)
  in
  { c_seed = seed; c_start = start; c_duration = duration; c_events = events }

let delete_of (spec : Ofproto.Flow_entry.spec) =
  Ofproto.Message.Flow_mod
    (Ofproto.Message.Delete_flow
       { match_ = spec.Ofproto.Flow_entry.match_; priority = Some spec.Ofproto.Flow_entry.priority })

let schedule (s : Scenario.t) campaign =
  let sim = Netsim.Net.sim s.net in
  let conn = Sdnctl.Provider.conn s.provider in
  let report = fresh_report () in
  List.iter
    (fun (time, event) ->
      match event with
      | Upgrade { sw; outage } ->
        (* Rolling upgrade: the switch reboots with empty tables (only
           the provider's rules — RVaaS intercepts carry their own
           cookie and are re-installed by the monitor's own repair
           path), then the provider re-pushes its slice. *)
        Netsim.Sim.schedule_at sim ~time (fun () ->
            report.upgrades <- report.upgrades + 1;
            Netsim.Net.send s.net conn ~sw
              (Ofproto.Message.Flow_mod
                 (Ofproto.Message.Delete_by_cookie Sdnctl.Provider.cookie)));
        Netsim.Sim.schedule_at sim ~time:(time +. outage) (fun () ->
            Sdnctl.Provider.reinstall s.provider ~sw)
      | Flap { sw; port; down } ->
        (* Link flap: data plane drops everything on the link both
           ways; the controller withdraws the routes using the port and
           restores exactly those rules when the link returns. *)
        let here = { Netsim.Topology.node = Netsim.Topology.Switch sw; port } in
        let far = Netsim.Topology.peer (Netsim.Net.topology s.net) here in
        let affected = Sdnctl.Provider.mods_via s.provider ~sw ~port in
        Netsim.Sim.schedule_at sim ~time (fun () ->
            report.flaps <- report.flaps + 1;
            Netsim.Net.set_link_faults s.net here (Netsim.Faults.loss 1.0);
            Option.iter
              (fun far -> Netsim.Net.set_link_faults s.net far (Netsim.Faults.loss 1.0))
              far;
            List.iter
              (fun (sw, msg) ->
                match msg with
                | Ofproto.Message.Flow_mod (Ofproto.Message.Add_flow spec) ->
                  Netsim.Net.send s.net conn ~sw (delete_of spec)
                | _ -> ())
              affected);
        Netsim.Sim.schedule_at sim ~time:(time +. down) (fun () ->
            Netsim.Net.clear_link_faults s.net here;
            Option.iter (fun far -> Netsim.Net.clear_link_faults s.net far) far;
            List.iter (fun (sw, msg) -> Netsim.Net.send s.net conn ~sw msg) affected)
      | Attack_burst { attack; dwell } ->
        Netsim.Sim.schedule_at sim ~time (fun () ->
            report.attacks <- report.attacks + 1);
        Sdnctl.Attack.launch s.net s.addressing ~conn
          (Sdnctl.Attack.Transient { attack; start = time; duration = dwell })
      | Storm { host; queries; spread } ->
        (* Flash crowd: one tenant fires a burst of queries through its
           agent; answers and throttle verdicts are tallied. *)
        Netsim.Sim.schedule_at sim ~time (fun () ->
            report.storms <- report.storms + 1;
            let agent = Scenario.agent s ~host in
            Rvaas.Client_agent.set_answer_callback agent (fun outcome ->
                report.storm_answers <- report.storm_answers + 1;
                if outcome.Rvaas.Client_agent.answer.Rvaas.Query.throttled then
                  report.storm_throttled <- report.storm_throttled + 1);
            let gap = spread /. float_of_int (max 1 queries) in
            for k = 0 to queries - 1 do
              Netsim.Sim.schedule sim ~delay:(float_of_int k *. gap) (fun () ->
                  report.storm_queries_sent <- report.storm_queries_sent + 1;
                  ignore
                    (Rvaas.Client_agent.send_query agent
                       (Rvaas.Query.make Rvaas.Query.Reachable_endpoints)))
            done))
    campaign.c_events;
  report

let execute (s : Scenario.t) campaign =
  let report = schedule s campaign in
  Scenario.run s ~until:(campaign.c_start +. campaign.c_duration +. 5.0);
  report
