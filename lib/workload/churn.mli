(** Churn campaigns: declarative long-running event programs.

    A campaign is a seeded, replayable schedule of operational churn —
    rolling switch upgrades, link flap storms, transient attack bursts
    and flash-crowd query storms — planned up front ({!plan}) as a pure
    function of (world, profile, seed) and executed on the scenario's
    {!Netsim.Sim} event loop.  The soak bench (E22) drives hours of
    simulated time through these programs; the differential churn tests
    replay the same program under both verification engines. *)

type event =
  | Upgrade of { sw : int; outage : float }
      (** rolling upgrade: the switch loses the provider's rules and
          gets its slice re-pushed after [outage] seconds *)
  | Flap of { sw : int; port : int; down : float }
      (** link flap: 100 % loss on the link both ways and withdrawal of
          the routes using the port, restored after [down] seconds *)
  | Attack_burst of { attack : Sdnctl.Attack.t; dwell : float }
      (** transient compromise: the attack is installed through the
          provider's connection and retracted after [dwell] seconds *)
  | Storm of { host : int; queries : int; spread : float }
      (** flash crowd: the host's agent fires [queries] queries evenly
          over [spread] seconds *)

type campaign = {
  c_seed : int;
  c_start : float;
  c_duration : float;
  c_events : (float * event) list;
      (** (absolute simulation time, event), ascending *)
}

(** Per-minute event rates and per-event magnitudes. *)
type profile = {
  upgrades_per_min : float;
  flaps_per_min : float;
  attacks_per_min : float;
  storms_per_min : float;
  upgrade_outage : float;
  flap_down : float;
  attack_dwell : float;
  storm_queries : int;
  storm_spread : float;
}

(** 1 upgrade, 2 flaps, 1 attack and 1 storm per minute; seconds-scale
    outages and dwells; 20-query storms. *)
val default_profile : profile

(** Tallies, updated live as the simulation executes scheduled
    events — read them mid-run for progress or at the end for the
    campaign total. *)
type report = {
  mutable upgrades : int;
  mutable flaps : int;
  mutable attacks : int;
  mutable storms : int;
  mutable storm_queries_sent : int;
  mutable storm_answers : int;
  mutable storm_throttled : int;
}

(** [plan s profile ~seed ~start ~duration] draws a campaign: each
    event class is a Poisson arrival process at its profile rate with
    targets picked uniformly from the scenario's world.  Pure in
    (world, profile, seed) — replaying the same seed yields the same
    program.  @raise Invalid_argument on a non-positive duration or an
    empty world. *)
val plan :
  Scenario.t -> profile -> seed:int -> start:float -> duration:float -> campaign

(** [schedule s campaign] registers every event on the scenario's
    simulator and returns the live report; the caller advances
    simulation time ({!Scenario.run}) at its own pace, interleaving
    measurements. *)
val schedule : Scenario.t -> campaign -> report

(** [execute s campaign] is [schedule] followed by running the
    simulation to the campaign end (plus settle time). *)
val execute : Scenario.t -> campaign -> report

(** [event_count campaign] is the number of planned events. *)
val event_count : campaign -> int

(** [describe event] is a short human-readable label. *)
val describe : event -> string
