(* Durable storage for the HA journal: a segmented store in [p_dir],
   optionally encrypted at rest with a key derived from the service
   keypair (deterministic in the scenario seed, so a separate recovery
   process re-derives it — the key-escrow stand-in). *)
type persist = {
  p_dir : string;
  p_segment_bytes : int;
  p_encrypt : bool;
}

type spec = {
  topo : Netsim.Topology.t;
  clients : int;
  seed : int;
  polling : Rvaas.Monitor.polling;
  provider_delay : float;
  rvaas_delay : float;
  rvaas_loss : float;
  rvaas_faults : Netsim.Faults.t;
  link_faults : Netsim.Faults.t;
  auth_timeout : float;
  auth_retry : Rvaas.Service.retry;
  poll_retry : float option;
  agent_resend : float option;
  isolation : bool;
  whitelist : (int * int) list;
  jurisdictions : string list;
  ha : Rvaas.Failover.config option;
  persist : persist option;
  engine : Rvaas.Plumbing.engine;
  frontend : Rvaas.Frontend.config;
  range_hosts : int;
}

let default_spec topo =
  {
    topo;
    clients = 2;
    seed = 42;
    polling = Rvaas.Monitor.Randomized 0.05;
    provider_delay = 1e-3;
    rvaas_delay = 1e-3;
    rvaas_loss = 0.0;
    rvaas_faults = Netsim.Faults.none;
    link_faults = Netsim.Faults.none;
    auth_timeout = 0.02;
    auth_retry = Rvaas.Service.no_retry;
    poll_retry = None;
    agent_resend = None;
    isolation = true;
    whitelist = [];
    jurisdictions = [ "EU"; "US"; "CH" ];
    ha = None;
    persist = None;
    engine = `Sweep;
    frontend = Rvaas.Frontend.default_config;
    range_hosts = 0;
  }

type t = {
  spec : spec;
  net : Netsim.Net.t;
  addressing : Sdnctl.Addressing.t;
  provider : Sdnctl.Provider.t;
  monitor : Rvaas.Monitor.t;
  service : Rvaas.Service.t;
  controller : Rvaas.Failover.t option;
  store : Support.Segment_store.t option;
  directory : Rvaas.Directory.t;
  geo_truth : Geo.Registry.t;
  agents : (int * Rvaas.Client_agent.t) list;
  service_keypair : Cryptosim.Keys.keypair;
}

let atrest_purpose = "journal-at-rest"

let storage_key_of keypair = Cryptosim.Keys.derive keypair ~purpose:atrest_purpose

let build spec =
  if spec.clients < 1 then invalid_arg "Scenario.build: need at least one client";
  if spec.range_hosts < 0 then invalid_arg "Scenario.build: range_hosts must be >= 0";
  let rng = Support.Rng.create spec.seed in
  let net = Netsim.Net.create ~seed:spec.seed spec.topo in
  (* Addressing: hosts round-robin over clients.  In range mode every
     topology host becomes the gateway of [range_hosts] addresses —
     millions of addresses ride on a handful of attachment points. *)
  let addressing = Sdnctl.Addressing.create () in
  for c = 0 to spec.clients - 1 do
    Sdnctl.Addressing.add_client addressing ~client:c ~name:(Printf.sprintf "client-%d" c)
  done;
  let hosts = Netsim.Topology.hosts spec.topo in
  List.iteri
    (fun i host ->
      let client = i mod spec.clients in
      if spec.range_hosts > 0 then
        ignore (Sdnctl.Addressing.add_range addressing ~host ~client ~count:spec.range_hosts)
      else ignore (Sdnctl.Addressing.add_host addressing ~host ~client))
    hosts;
  (* Provider control plane. *)
  let provider =
    Sdnctl.Provider.create net addressing
      ~policy:{ Sdnctl.Provider.isolation = spec.isolation; whitelist = spec.whitelist }
      ~conn_delay:spec.provider_delay
  in
  Sdnctl.Provider.install_all provider;
  (* Ground-truth switch locations. *)
  let geo_truth = Geo.Registry.create () in
  List.iter
    (fun sw ->
      Geo.Registry.set_switch geo_truth ~sw
        (Geo.Location.random rng ~jurisdictions:spec.jurisdictions))
    (Netsim.Topology.switches spec.topo);
  (* Client keys and directory. *)
  let directory = Rvaas.Directory.create () in
  let client_keys =
    List.init spec.clients (fun c -> (c, Cryptosim.Hmac.random_key rng))
  in
  List.iter
    (fun (c, key) ->
      let members = Sdnctl.Addressing.hosts_of_client addressing ~client:c in
      Rvaas.Directory.register directory
        {
          Rvaas.Directory.client = c;
          name = Printf.sprintf "client-%d" c;
          key;
          hosts =
            List.map (fun (h : Sdnctl.Addressing.host_info) -> (h.host, h.ip)) members;
          subnet = Some (Sdnctl.Addressing.subnet addressing ~client:c);
        })
    client_keys;
  (* Degraded data plane, if requested: every switch-to-switch and
     host-to-switch hop draws from the same fault model. *)
  if not (Netsim.Faults.is_none spec.link_faults) then
    Netsim.Net.set_default_link_faults net spec.link_faults;
  (* RVaaS monitor + service.  The same keypair serves every controller
     incarnation under HA, so clients' [service_public] stays valid
     across takeovers (the standby holds the same attested identity). *)
  let service_keypair = Cryptosim.Keys.generate rng ~owner:"rvaas" in
  let build_controller ~journal ~snapshot ~prefill ~conn =
    let monitor =
      Rvaas.Monitor.create net ~conn_delay:spec.rvaas_delay ~loss_prob:spec.rvaas_loss
        ~faults:spec.rvaas_faults ?poll_retry:spec.poll_retry ?snapshot ~journal ~prefill
        ?conn ~polling:spec.polling ()
    in
    let service =
      Rvaas.Service.create ~retry:spec.auth_retry ~engine:spec.engine
        ~frontend:spec.frontend net monitor ~directory ~geo:geo_truth
        ~keypair:service_keypair ~auth_timeout:spec.auth_timeout ()
    in
    (monitor, service)
  in
  let monitor, service, controller =
    match spec.ha with
    | None ->
      let monitor =
        Rvaas.Monitor.create net ~conn_delay:spec.rvaas_delay ~loss_prob:spec.rvaas_loss
          ~faults:spec.rvaas_faults ?poll_retry:spec.poll_retry ~polling:spec.polling ()
      in
      let service =
        Rvaas.Service.create ~retry:spec.auth_retry ~engine:spec.engine
          ~frontend:spec.frontend net monitor ~directory ~geo:geo_truth
          ~keypair:service_keypair ~auth_timeout:spec.auth_timeout ()
      in
      (monitor, service, None)
    | Some config ->
      let ctrl = Rvaas.Failover.start ~config ~build:build_controller net in
      (Rvaas.Failover.monitor ctrl, Rvaas.Failover.service ctrl, Some ctrl)
  in
  (* Durable journal storage: a segmented store tailing the HA journal
     (only the HA path owns a journal to persist). *)
  let store =
    match spec.persist with
    | None -> None
    | Some p ->
      let ctrl =
        match controller with
        | Some c -> c
        | None -> invalid_arg "Scenario.build: spec.persist requires spec.ha"
      in
      let crypt =
        if p.p_encrypt then
          Some (Cryptosim.Atrest.crypt ~key:(storage_key_of service_keypair))
        else None
      in
      let config = { Support.Segment_store.segment_bytes = p.p_segment_bytes; crypt } in
      Some
        (Support.Segment_store.attach ~config
           (Rvaas.Journal.log (Rvaas.Failover.journal ctrl))
           ~dir:p.p_dir)
  in
  let service_public = Rvaas.Service.public service in
  (* One agent per host. *)
  let agents =
    List.map
      (fun host ->
        let info = Option.get (Sdnctl.Addressing.host addressing ~host) in
        let key = List.assoc info.client client_keys in
        let agent =
          Rvaas.Client_agent.create net ~host ~client:info.client ~ip:info.ip ~key
            ~service_public ?resend_timeout:spec.agent_resend ()
        in
        (host, agent))
      hosts
  in
  let t =
    {
      spec;
      net;
      addressing;
      provider;
      monitor;
      service;
      controller;
      store;
      directory;
      geo_truth;
      agents;
      service_keypair;
    }
  in
  (* Let installation Flow-Mods land and one poll cycle complete. *)
  ignore (Netsim.Sim.run (Netsim.Net.sim net) ~until:(10.0 *. spec.provider_delay +. 0.01));
  t

let run t ~until = ignore (Netsim.Sim.run (Netsim.Net.sim t.net) ~until)

(* Under HA the controller incarnation can change (takeover); these
   accessors always resolve to the live one.  Without HA they are the
   record fields. *)
let monitor t =
  match t.controller with Some c -> Rvaas.Failover.monitor c | None -> t.monitor

let service t =
  match t.controller with Some c -> Rvaas.Failover.service c | None -> t.service

let controller t =
  match t.controller with
  | Some c -> c
  | None -> invalid_arg "Scenario.controller: spec.ha is None"

let store t =
  match t.store with
  | Some s -> s
  | None -> invalid_arg "Scenario.store: spec.persist is None"

let storage_key t = storage_key_of t.service_keypair

let agent t ~host = List.assoc host t.agents

let baseline t =
  let snapshot = Rvaas.Monitor.snapshot (monitor t) in
  Rvaas.Detector.baseline_of_flows
    (List.map
       (fun sw -> (sw, Rvaas.Snapshot.flows snapshot ~sw))
       (Rvaas.Snapshot.switches snapshot))

let policy_for t ~client =
  let topo = Netsim.Net.topology t.net in
  let own_points = Sdnctl.Addressing.access_points t.addressing topo ~client in
  let allowed_peer_points =
    List.concat_map
      (fun (src, dst) ->
        if dst = client then Sdnctl.Addressing.access_points t.addressing topo ~client:src
        else [])
      t.spec.whitelist
  in
  { (Rvaas.Detector.default_policy ~own_points) with allowed_peer_points }

let query_and_wait t ~host query ~timeout =
  let agent = agent t ~host in
  let result = ref None in
  Rvaas.Client_agent.set_answer_callback agent (fun outcome -> result := Some outcome);
  let nonce = Rvaas.Client_agent.send_query agent query in
  let sim = Netsim.Sim.now (Netsim.Net.sim t.net) in
  let deadline = sim +. timeout in
  let continue = ref true in
  while !continue do
    match !result with
    | Some _ -> continue := false
    | None ->
      let now = Netsim.Sim.now (Netsim.Net.sim t.net) in
      if now >= deadline then continue := false
      else run t ~until:(Float.min deadline (now +. (timeout /. 100.0)))
  done;
  (match !result with
  | Some outcome when not (String.equal outcome.Rvaas.Client_agent.answer.Rvaas.Query.nonce nonce)
    ->
    (* A stale outcome from an earlier query on this agent; ignore. *)
    result := None
  | Some _ | None -> ());
  !result

let actual_flows t sw = Ofproto.Flow_table.specs (Netsim.Net.table t.net ~sw)

let range_scope t ~host =
  Option.map
    (fun (r : Sdnctl.Addressing.range_info) ->
      Rvaas.Verifier.dst_prefix_hs ~value:r.r_base ~prefix_len:r.r_prefix_len)
    (Sdnctl.Addressing.range t.addressing ~host)

let address_count t = Sdnctl.Addressing.address_count t.addressing
