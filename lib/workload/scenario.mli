(** One-stop scenario builder: topology → running RVaaS deployment.

    Wires together everything a test, example or benchmark needs: the
    network runtime, client addressing, the provider control plane (and
    its compromised connection), the RVaaS monitor + service, the geo
    registry with ground-truth switch locations, and one client agent
    per host.  All randomness derives from [seed]. *)

(** Durable storage for the HA journal: a {!Support.Segment_store} in
    [p_dir] with [p_segment_bytes] segments; with [p_encrypt] every
    frame is encrypted at rest under a key derived from the service
    keypair — deterministic in the scenario seed, so a separate
    recovery process re-derives it ({!storage_key}). *)
type persist = {
  p_dir : string;
  p_segment_bytes : int;
  p_encrypt : bool;
}

type spec = {
  topo : Netsim.Topology.t;
  clients : int;  (** hosts are assigned to clients round-robin *)
  seed : int;
  polling : Rvaas.Monitor.polling;
  provider_delay : float;  (** provider control-channel latency *)
  rvaas_delay : float;  (** RVaaS control-channel latency *)
  rvaas_loss : float;  (** switch→RVaaS message loss probability
                           (legacy, monitor events only) *)
  rvaas_faults : Netsim.Faults.t;
      (** fault model for {e every} RVaaS control message *)
  link_faults : Netsim.Faults.t;  (** fault model for every data-plane hop *)
  auth_timeout : float;
  auth_retry : Rvaas.Service.retry;  (** auth-request retransmission policy *)
  poll_retry : float option;  (** stats-poll retry deadline (seconds) *)
  agent_resend : float option;  (** client answer-wait resend timeout *)
  isolation : bool;
  whitelist : (int * int) list;
  jurisdictions : string list;  (** ground-truth jurisdiction pool *)
  ha : Rvaas.Failover.config option;
      (** when set, the controller is built through {!Rvaas.Failover}:
          journalled, heartbeated, crash/partition-able, with
          [config.standbys] warm standbys armed from the start (quorum
          election among them on takeover) and, with
          [config.auto_compact], a self-bounding journal — all
          reachable via {!controller} *)
  persist : persist option;
      (** when set (requires [ha]), the journal is mirrored into a
          segmented on-disk store reachable via {!val-store} *)
  engine : Rvaas.Plumbing.engine;
      (** the service's verification engine: per-query sweeps
          ([`Sweep], the default) or the compiled plumbing graph
          ([`Compiled]) maintained incrementally from monitor deltas *)
  frontend : Rvaas.Frontend.config;
      (** the service's multi-tenant front-end (admission, coalescing,
          subsumption, batching); {!Rvaas.Frontend.default_config} —
          everything off — by default *)
  range_hosts : int;
      (** 0 (default): every topology host is one individually
          addressed endpoint.  [> 0]: range mode — every topology host
          becomes the gateway of a {!Sdnctl.Addressing.add_range}
          block of that many addresses, carried end-to-end as a single
          prefix ([Hs] cube) through routing, snapshot, verifier and
          plumbing; see {!range_scope} *)
}

(** [default_spec topo] — two clients, seed 42, randomized polling with
    a 50 ms mean, 1 ms control channels, no loss or faults, no retries,
    20 ms auth timeout, isolation on. *)
val default_spec : Netsim.Topology.t -> spec

type t = {
  spec : spec;
  net : Netsim.Net.t;
  addressing : Sdnctl.Addressing.t;
  provider : Sdnctl.Provider.t;
  monitor : Rvaas.Monitor.t;
      (** the {e initial} incarnation — under HA prefer {!val-monitor},
          which tracks takeovers *)
  service : Rvaas.Service.t;  (** initial incarnation; see {!val-service} *)
  controller : Rvaas.Failover.t option;  (** present iff [spec.ha] was set *)
  store : Support.Segment_store.t option;
      (** present iff [spec.persist] was set *)
  directory : Rvaas.Directory.t;
  geo_truth : Geo.Registry.t;
  agents : (int * Rvaas.Client_agent.t) list;  (** host id → agent *)
  service_keypair : Cryptosim.Keys.keypair;
}

(** [build spec] constructs the deployment and installs the provider
    configuration and RVaaS intercepts (runs the simulator briefly so
    all Flow-Mods land). *)
val build : spec -> t

(** [run t ~until] advances simulation to absolute time [until]. *)
val run : t -> until:float -> unit

(** [monitor t] is the {e live} monitor: the current controller
    incarnation's under HA (takeovers swap it), the built one
    otherwise. *)
val monitor : t -> Rvaas.Monitor.t

(** [service t] is the live service (see {!val-monitor}). *)
val service : t -> Rvaas.Service.t

(** [controller t] is the failover harness.
    @raise Invalid_argument when [spec.ha] was [None]. *)
val controller : t -> Rvaas.Failover.t

(** [store t] is the segmented on-disk journal store.
    @raise Invalid_argument when [spec.persist] was [None]. *)
val store : t -> Support.Segment_store.t

(** [storage_key t] is the encryption-at-rest key — derived from the
    service keypair, hence deterministic in [spec.seed]: a recovery
    process that rebuilds the scenario (or just the keypair) gets the
    same key.  Pair with {!Cryptosim.Atrest.crypt} for
    {!Support.Segment_store.recover_from_dir}. *)
val storage_key : t -> Cryptosim.Hmac.key

(** [agent t ~host] returns the host's agent.
    @raise Not_found for unknown hosts. *)
val agent : t -> host:int -> Rvaas.Client_agent.t

(** [baseline t] captures the current believed configuration as the
    drift baseline (call after [build], before any attack). *)
val baseline : t -> Rvaas.Detector.baseline

(** [policy_for t ~client] derives the client's default detector policy
    (its own access points, whitelisted peers' points included). *)
val policy_for : t -> client:int -> Rvaas.Detector.policy

(** [query_and_wait t ~host query ~timeout] sends a query from [host],
    advances the simulation until the answer arrives (or [timeout]
    simulated seconds elapsed), and returns the outcome. *)
val query_and_wait :
  t -> host:int -> Rvaas.Query.t -> timeout:float -> Rvaas.Client_agent.outcome option

(** [actual_flows t sw] reads the switch's real table (ground truth for
    agreement tests). *)
val actual_flows : t -> int -> Ofproto.Flow_entry.spec list

(** [range_scope t ~host] is the header-space cube covering the whole
    address range gatewayed by [host] (destination-IP prefix), or
    [None] when the host is not a range gateway.  Use as a query
    scope to verify millions of addresses in one cube. *)
val range_scope : t -> host:int -> Hspace.Hs.t option

(** [address_count t] is the total number of client addresses the
    deployment speaks for (ranges counted by their size). *)
val address_count : t -> int
