type params = { hosts_per_switch : int; link_delay : float; host_stride : int }

let default_params = { hosts_per_switch = 1; link_delay = 1e-4; host_stride = 1 }

let validate_params p =
  if p.hosts_per_switch < 0 then invalid_arg "Topogen: hosts_per_switch must be >= 0";
  if not (p.link_delay >= 0.0) (* also rejects nan *) then
    invalid_arg "Topogen: link_delay must be >= 0";
  if p.host_stride < 1 then invalid_arg "Topogen: host_stride must be >= 1"

(* Builder state: next free structural port per switch and next host id. *)
type builder = {
  topo : Netsim.Topology.t;
  params : params;
  next_port : (int, int) Hashtbl.t;
  mutable next_host : int;
  mutable host_site : int; (* host-eligible switches seen, for striding *)
}

let start params =
  validate_params params;
  {
    topo = Netsim.Topology.create ();
    params;
    next_port = Hashtbl.create 32;
    next_host = 0;
    host_site = 0;
  }

let add_switch b sw =
  Netsim.Topology.add_switch b.topo sw;
  Hashtbl.replace b.next_port sw b.params.hosts_per_switch

let claim_port b sw =
  let p = Hashtbl.find b.next_port sw in
  Hashtbl.replace b.next_port sw (p + 1);
  p

let link_switches b a c =
  let pa = claim_port b a and pc = claim_port b c in
  Netsim.Topology.connect b.topo
    { Netsim.Topology.node = Netsim.Topology.Switch a; port = pa }
    { Netsim.Topology.node = Netsim.Topology.Switch c; port = pc }
    ~delay:b.params.link_delay

(* Hosts go on every [host_stride]-th eligible switch (counted across
   the whole build), so internet-scale worlds can keep thousands of
   switches but a bounded population of attachment points.  Skipped
   switches still reserve ports 0..hosts_per_switch-1, keeping the
   structural port numbering identical at every stride. *)
let attach_hosts b sw =
  let site = b.host_site in
  b.host_site <- site + 1;
  if site mod b.params.host_stride = 0 then
    for port = 0 to b.params.hosts_per_switch - 1 do
      let host = b.next_host in
      b.next_host <- host + 1;
      Netsim.Topology.add_host b.topo host;
      Netsim.Topology.connect b.topo
        { Netsim.Topology.node = Netsim.Topology.Host host; port = 0 }
        { Netsim.Topology.node = Netsim.Topology.Switch sw; port }
        ~delay:b.params.link_delay
    done

let linear params n =
  if n < 1 then invalid_arg "Topogen.linear: need at least one switch";
  let b = start params in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  for sw = 0 to n - 2 do
    link_switches b sw (sw + 1)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let ring params n =
  if n < 3 then invalid_arg "Topogen.ring: need at least three switches";
  let b = start params in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  for sw = 0 to n - 1 do
    link_switches b sw ((sw + 1) mod n)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let star params n =
  if n < 1 then invalid_arg "Topogen.star: need at least one leaf";
  let b = start params in
  add_switch b 0;
  for leaf = 1 to n do
    add_switch b leaf;
    link_switches b 0 leaf;
    attach_hosts b leaf
  done;
  b.topo

let grid params ~rows ~cols =
  if rows < 1 || cols < 1 then invalid_arg "Topogen.grid: empty grid";
  let b = start params in
  let id r c = (r * cols) + c in
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      add_switch b (id r c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      if c + 1 < cols then link_switches b (id r c) (id r (c + 1));
      if r + 1 < rows then link_switches b (id r c) (id (r + 1) c)
    done
  done;
  for r = 0 to rows - 1 do
    for c = 0 to cols - 1 do
      attach_hosts b (id r c)
    done
  done;
  b.topo

let fat_tree params ~k =
  if k < 2 || k mod 2 <> 0 then invalid_arg "Topogen.fat_tree: k must be even and >= 2";
  let half = k / 2 in
  let cores = half * half in
  (* Switch ids: cores [0, cores); then per pod p: aggs
     [cores + p*k, cores + p*k + half) and edges
     [cores + p*k + half, cores + (p+1)*k). *)
  let agg p i = cores + (p * k) + i
  and edge p i = cores + (p * k) + half + i in
  let b = start params in
  for sw = 0 to cores + (k * k) - 1 do
    add_switch b sw
  done;
  for p = 0 to k - 1 do
    for a = 0 to half - 1 do
      (* Each aggregation switch connects to [half] cores. *)
      for c = 0 to half - 1 do
        link_switches b (agg p a) ((a * half) + c)
      done;
      (* And to every edge switch in its pod. *)
      for e = 0 to half - 1 do
        link_switches b (agg p a) (edge p e)
      done
    done;
    for e = 0 to half - 1 do
      attach_hosts b (edge p e)
    done
  done;
  b.topo

let leaf_spine params ~spines ~leaves =
  if spines < 1 then invalid_arg "Topogen.leaf_spine: need at least one spine";
  if leaves < 1 then invalid_arg "Topogen.leaf_spine: need at least one leaf";
  (* Spines are [0, spines); leaves follow.  Every leaf links to every
     spine (a full bipartite fabric); hosts attach to leaves only. *)
  let b = start params in
  for sw = 0 to spines + leaves - 1 do
    add_switch b sw
  done;
  for leaf = spines to spines + leaves - 1 do
    for spine = 0 to spines - 1 do
      link_switches b spine leaf
    done;
    attach_hosts b leaf
  done;
  b.topo

let waxman params rng ~n ~alpha ~beta =
  if n < 2 then invalid_arg "Topogen.waxman: need at least two switches";
  if not (alpha > 0.0 && alpha <= 1.0) then
    invalid_arg "Topogen.waxman: alpha must be in (0, 1]";
  if not (beta > 0.0) then invalid_arg "Topogen.waxman: beta must be > 0";
  let b = start params in
  let xs = Array.init n (fun _ -> Support.Rng.float rng 1.0)
  and ys = Array.init n (fun _ -> Support.Rng.float rng 1.0) in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  let dist i j = sqrt (((xs.(i) -. xs.(j)) ** 2.0) +. ((ys.(i) -. ys.(j)) ** 2.0)) in
  let max_dist = sqrt 2.0 in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let p = alpha *. exp (-.dist i j /. (beta *. max_dist)) in
      if Support.Rng.bernoulli rng p then link_switches b i j
    done
  done;
  (* Guarantee connectivity with a spanning chain. *)
  for sw = 0 to n - 2 do
    link_switches b sw (sw + 1)
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

let isp params ~core ~pops_per_core =
  if core < 3 then invalid_arg "Topogen.isp: need at least three core switches";
  if pops_per_core < 1 then invalid_arg "Topogen.isp: need at least one PoP per core";
  let b = start params in
  for sw = 0 to core - 1 do
    add_switch b sw
  done;
  for sw = 0 to core - 1 do
    link_switches b sw ((sw + 1) mod core)
  done;
  let next_pop = ref core in
  for c = 0 to core - 1 do
    for _ = 1 to pops_per_core do
      let pop = !next_pop in
      incr next_pop;
      add_switch b pop;
      link_switches b c pop;
      attach_hosts b pop
    done
  done;
  b.topo

let scale_free params rng ~n ~m =
  if m < 1 then invalid_arg "Topogen.scale_free: m must be >= 1";
  if n < m + 1 then invalid_arg "Topogen.scale_free: need n >= m + 1 switches";
  (* Barabási–Albert preferential attachment: seed with an (m+1)-clique
     so every early node has degree >= m, then each newcomer links to
     [m] distinct existing switches chosen with probability
     proportional to degree.  [stubs] holds one entry per link
     endpoint, so a uniform pick over it IS the degree-weighted pick. *)
  let b = start params in
  for sw = 0 to n - 1 do
    add_switch b sw
  done;
  let stubs = ref [] and stub_count = ref 0 in
  let note_link i j =
    link_switches b i j;
    stubs := i :: j :: !stubs;
    stub_count := !stub_count + 2
  in
  for i = 0 to m do
    for j = i + 1 to m do
      note_link i j
    done
  done;
  let stub_array = ref [||] and stub_array_len = ref 0 in
  for newcomer = m + 1 to n - 1 do
    (* Refresh the sampling array lazily; inserts since the last
       refresh only make high-degree nodes slightly under-weighted
       within one newcomer's picks, which BA tolerates. *)
    if !stub_array_len <> !stub_count then begin
      stub_array := Array.of_list !stubs;
      stub_array_len := !stub_count
    end;
    let chosen = Hashtbl.create m in
    let attempts = ref 0 in
    while Hashtbl.length chosen < m && !attempts < 50 * m do
      incr attempts;
      let pick = !stub_array.(Support.Rng.int rng !stub_array_len) in
      if pick <> newcomer && not (Hashtbl.mem chosen pick) then
        Hashtbl.replace chosen pick ()
    done;
    (* Degenerate corner (tiny graphs): fall back to the lowest ids
       not yet chosen so the node still gets m links. *)
    let next_fallback = ref 0 in
    while Hashtbl.length chosen < m do
      let c = !next_fallback in
      incr next_fallback;
      if c <> newcomer && not (Hashtbl.mem chosen c) then Hashtbl.replace chosen c ()
    done;
    Hashtbl.iter (fun target () -> note_link newcomer target) chosen
  done;
  for sw = 0 to n - 1 do
    attach_hosts b sw
  done;
  b.topo

type family =
  | Linear of int
  | Ring of int
  | Star of int
  | Grid of { rows : int; cols : int }
  | Fat_tree of { k : int }
  | Leaf_spine of { spines : int; leaves : int }
  | Waxman of { n : int; alpha : float; beta : float }
  | Isp of { core : int; pops_per_core : int }
  | Scale_free of { n : int; m : int }

let build params rng = function
  | Linear n -> linear params n
  | Ring n -> ring params n
  | Star n -> star params n
  | Grid { rows; cols } -> grid params ~rows ~cols
  | Fat_tree { k } -> fat_tree params ~k
  | Leaf_spine { spines; leaves } -> leaf_spine params ~spines ~leaves
  | Waxman { n; alpha; beta } -> waxman params rng ~n ~alpha ~beta
  | Isp { core; pops_per_core } -> isp params ~core ~pops_per_core
  | Scale_free { n; m } -> scale_free params rng ~n ~m

type multi = {
  md_topo : Netsim.Topology.t;
  md_domains : (int * int) array;
  md_peerings : (int * int) list;
}

let domain_of_switch multi sw =
  let found = ref None in
  Array.iteri
    (fun d (first, count) -> if !found = None && sw >= first && sw < first + count then found := Some d)
    multi.md_domains;
  !found

(* Stitch independently generated domains into one topology by copying
   nodes and links under id offsets, then wire [peering] links between
   each consecutive domain pair at rng-chosen border switches.  Peering
   ports are claimed above each switch's highest copied port. *)
let multi_domain params rng ~peering families =
  validate_params params;
  if families = [] then invalid_arg "Topogen.multi_domain: need at least one domain";
  if peering < 1 then invalid_arg "Topogen.multi_domain: need at least one peering link";
  let topo = Netsim.Topology.create () in
  let next_port = Hashtbl.create 64 in
  let bump_port sw port =
    let cur = Option.value ~default:0 (Hashtbl.find_opt next_port sw) in
    if port + 1 > cur then Hashtbl.replace next_port sw (port + 1)
  in
  let sw_off = ref 0 and host_off = ref 0 in
  let domains =
    List.map
      (fun family ->
        let part = build params (Support.Rng.split rng) family in
        let first = !sw_off in
        let switches = Netsim.Topology.switches part in
        List.iter (fun sw -> Netsim.Topology.add_switch topo (sw + first)) switches;
        List.iter (fun h -> Netsim.Topology.add_host topo (h + !host_off)) (Netsim.Topology.hosts part);
        let shift (e : Netsim.Topology.endpoint) =
          match e.Netsim.Topology.node with
          | Netsim.Topology.Switch sw ->
            bump_port (sw + first) e.Netsim.Topology.port;
            { Netsim.Topology.node = Netsim.Topology.Switch (sw + first); port = e.Netsim.Topology.port }
          | Netsim.Topology.Host h ->
            { Netsim.Topology.node = Netsim.Topology.Host (h + !host_off); port = e.Netsim.Topology.port }
        in
        List.iter
          (fun { Netsim.Topology.a; b; delay } ->
            Netsim.Topology.connect topo (shift a) (shift b) ~delay)
          (Netsim.Topology.links part);
        sw_off := first + List.length switches;
        host_off := !host_off + List.length (Netsim.Topology.hosts part);
        (first, List.length switches))
      families
  in
  let domains = Array.of_list domains in
  let claim sw =
    let p = Option.value ~default:0 (Hashtbl.find_opt next_port sw) in
    Hashtbl.replace next_port sw (p + 1);
    p
  in
  let peerings = ref [] in
  for d = 0 to Array.length domains - 2 do
    let first_a, count_a = domains.(d) and first_b, count_b = domains.(d + 1) in
    for _ = 1 to peering do
      let a = first_a + Support.Rng.int rng count_a
      and b = first_b + Support.Rng.int rng count_b in
      Netsim.Topology.connect topo
        { Netsim.Topology.node = Netsim.Topology.Switch a; port = claim a }
        { Netsim.Topology.node = Netsim.Topology.Switch b; port = claim b }
        ~delay:params.link_delay;
      peerings := (a, b) :: !peerings
    done
  done;
  { md_topo = topo; md_domains = domains; md_peerings = List.rev !peerings }

let switch_count topo = List.length (Netsim.Topology.switches topo)

let host_count topo = List.length (Netsim.Topology.hosts topo)
