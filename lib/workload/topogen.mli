(** Topology generators for tests and benchmarks.

    All generators number switches from 0 and hosts from 0, attach
    [hosts_per_switch] hosts to every [host_stride]-th host-eligible
    switch (beyond the structural ports), and use [link_delay] on every
    link.  Port numbering: ports 0..[hosts_per_switch-1] face hosts;
    structural (switch-to-switch) ports start at [hosts_per_switch]
    whether or not the switch actually received hosts.

    Every generator validates its parameters and raises
    [Invalid_argument] on combinations that would produce dangling
    ports, disconnected graphs or degenerate strata. *)

type params = {
  hosts_per_switch : int;  (** hosts attached per host-eligible switch *)
  link_delay : float;
  host_stride : int;
      (** attach hosts to every [host_stride]-th eligible switch
          (default 1 = every one) — internet-scale worlds keep
          thousands of switches but a bounded set of attachment
          points *)
}

val default_params : params

(** [linear p n] is a chain of [n] switches. *)
val linear : params -> int -> Netsim.Topology.t

(** [ring p n] is a cycle of [n] switches ([n >= 3]). *)
val ring : params -> int -> Netsim.Topology.t

(** [star p n] is one core switch with [n] leaves (switch 0 is the
    core; hosts attach to leaves only). *)
val star : params -> int -> Netsim.Topology.t

(** [grid p ~rows ~cols] is a [rows]×[cols] mesh. *)
val grid : params -> rows:int -> cols:int -> Netsim.Topology.t

(** [fat_tree p ~k] is a k-ary fat tree (k even): (k/2)² core switches,
    k pods of k/2 aggregation + k/2 edge switches; hosts attach to edge
    switches only.  [hosts_per_switch] hosts per edge switch. *)
val fat_tree : params -> k:int -> Netsim.Topology.t

(** [leaf_spine p ~spines ~leaves] is a two-tier data-center fabric:
    spines [0, spines), leaves following, every leaf wired to every
    spine.  Hosts attach to leaves only.  Scales to thousands of
    switches with diameter 2. *)
val leaf_spine : params -> spines:int -> leaves:int -> Netsim.Topology.t

(** [waxman p rng ~n ~alpha ~beta] is a Waxman random graph over [n]
    switches placed uniformly in the unit square, made connected by
    adding a spanning chain.  [alpha] must lie in (0, 1] and [beta]
    be positive. *)
val waxman : params -> Support.Rng.t -> n:int -> alpha:float -> beta:float -> Netsim.Topology.t

(** [isp p ~core ~pops_per_core] is a two-level ISP-like topology: a
    ring of [core] backbone switches (no hosts), each serving
    [pops_per_core] point-of-presence switches where hosts attach.
    Core switches are numbered [0, core); PoPs follow. *)
val isp : params -> core:int -> pops_per_core:int -> Netsim.Topology.t

(** [scale_free p rng ~n ~m] is a Barabási–Albert preferential-
    attachment graph ([n] switches, [m] links per newcomer, seeded
    with an (m+1)-clique): the heavy-tailed degree distribution of an
    ISP backbone.  Connected by construction.  Requires [m >= 1] and
    [n >= m + 1]. *)
val scale_free : params -> Support.Rng.t -> n:int -> m:int -> Netsim.Topology.t

(** A generator family with its parameters — the declarative form
    {!build} and {!multi_domain} consume. *)
type family =
  | Linear of int
  | Ring of int
  | Star of int
  | Grid of { rows : int; cols : int }
  | Fat_tree of { k : int }
  | Leaf_spine of { spines : int; leaves : int }
  | Waxman of { n : int; alpha : float; beta : float }
  | Isp of { core : int; pops_per_core : int }
  | Scale_free of { n : int; m : int }

(** [build p rng family] dispatches to the matching generator
    (deterministic families ignore [rng]). *)
val build : params -> Support.Rng.t -> family -> Netsim.Topology.t

(** A multi-domain composition: independently generated domains
    stitched with peering links. *)
type multi = {
  md_topo : Netsim.Topology.t;
  md_domains : (int * int) array;
      (** per domain, (first switch id, switch count) — switch and
          host ids are offset per domain in family-list order *)
  md_peerings : (int * int) list;
      (** switch pairs wired as peering points *)
}

(** [multi_domain p rng ~peering families] generates each family as
    its own domain and stitches consecutive domains with [peering]
    links at rng-chosen border switches.  Connected whenever every
    domain is.  @raise Invalid_argument on an empty family list or
    [peering < 1]. *)
val multi_domain :
  params -> Support.Rng.t -> peering:int -> family list -> multi

(** [domain_of_switch multi sw] is the domain index owning [sw]. *)
val domain_of_switch : multi -> int -> int option

(** [switch_count topo] / [host_count topo]: convenience. *)
val switch_count : Netsim.Topology.t -> int

val host_count : Netsim.Topology.t -> int
