type flow = {
  src_host : int;
  dst_host : int;
  rate_pps : float;
  size_bytes : int;
  start : float;
  duration : float;
}

type report = { flow : flow; sent : int; delivered : int }

let make_flow (s : Scenario.t) ~src_host ~dst_host ~rate_pps ~size_bytes ~start
    ~duration =
  (match Sdnctl.Addressing.host s.addressing ~host:src_host with
  | None -> invalid_arg "Trafficgen.make_flow: unknown source host"
  | Some _ -> ());
  (match Sdnctl.Addressing.host s.addressing ~host:dst_host with
  | None -> invalid_arg "Trafficgen.make_flow: unknown destination host"
  | Some _ -> ());
  if rate_pps <= 0.0 then invalid_arg "Trafficgen.make_flow: rate must be positive";
  { src_host; dst_host; rate_pps; size_bytes; start; duration }

(* Background load for soak runs: [count] constant-rate flows between
   rng-picked distinct host pairs, jittered starts across the first
   tenth of [duration]. *)
let random_flows (s : Scenario.t) rng ~count ~rate_pps ~size_bytes ~start ~duration =
  let hosts = Array.of_list (Netsim.Topology.hosts (Netsim.Net.topology s.net)) in
  if Array.length hosts < 2 then
    invalid_arg "Trafficgen.random_flows: need at least two hosts";
  List.init count (fun _ ->
      let src_host = hosts.(Support.Rng.int rng (Array.length hosts)) in
      let rec pick_dst () =
        let h = hosts.(Support.Rng.int rng (Array.length hosts)) in
        if h = src_host then pick_dst () else h
      in
      let jitter = Support.Rng.float rng (duration /. 10.0) in
      make_flow s ~src_host ~dst_host:(pick_dst ()) ~rate_pps ~size_bytes
        ~start:(start +. jitter) ~duration:(duration -. jitter))

(* Flows are tagged with a unique source port so receivers can count
   them apart; the base avoids the protocol's magic ports. *)
let flow_port index = 40000 + index

let run (s : Scenario.t) flows ~until =
  let sim = Netsim.Net.sim s.net in
  let sent = Array.make (List.length flows) 0 in
  let delivered = Array.make (List.length flows) 0 in
  (* Count arrivals by flow tag at each destination host. *)
  let by_port = Hashtbl.create 16 in
  List.iteri (fun i flow -> Hashtbl.replace by_port (flow_port i) (i, flow.dst_host)) flows;
  let hosts = List.sort_uniq compare (List.map (fun f -> f.dst_host) flows) in
  List.iter
    (fun host ->
      Netsim.Net.set_host_receiver s.net ~host (fun packet ->
          let port = Hspace.Header.get packet.Netsim.Packet.header Hspace.Field.Tp_src in
          match Hashtbl.find_opt by_port port with
          | Some (i, dst) when dst = host -> delivered.(i) <- delivered.(i) + 1
          | Some _ | None -> ()))
    hosts;
  List.iteri
    (fun i flow ->
      let src = Option.get (Sdnctl.Addressing.host s.addressing ~host:flow.src_host) in
      let dst = Option.get (Sdnctl.Addressing.host s.addressing ~host:flow.dst_host) in
      let header =
        Hspace.Header.udp ~src_ip:src.ip ~dst_ip:dst.ip ~src_port:(flow_port i)
          ~dst_port:9
      in
      let gap = 1.0 /. flow.rate_pps in
      let count = int_of_float (flow.duration /. gap) in
      for k = 0 to count - 1 do
        Netsim.Sim.schedule_at sim
          ~time:(flow.start +. (float_of_int k *. gap))
          (fun () ->
            sent.(i) <- sent.(i) + 1;
            Netsim.Net.host_send s.net ~host:flow.src_host
              (Netsim.Packet.make ~size_bytes:flow.size_bytes ~header "traffic"))
      done)
    flows;
  Scenario.run s ~until;
  List.mapi (fun i flow -> { flow; sent = sent.(i); delivered = delivered.(i) }) flows

let goodput_kbps r =
  if r.flow.duration <= 0.0 then 0.0
  else
    float_of_int (r.delivered * r.flow.size_bytes * 8) /. 1000.0 /. r.flow.duration
