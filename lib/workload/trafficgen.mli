(** Traffic generation: constant-rate UDP flows between hosts.

    Used to validate data-plane QoS behaviour (token-bucket meters,
    fairness attacks) against what RVaaS's configuration queries
    report: a meter-squeeze attack must show up both in the Fairness
    answer (configuration) and in the delivered goodput (behaviour). *)

type flow = {
  src_host : int;
  dst_host : int;
  rate_pps : float;  (** packets per second *)
  size_bytes : int;
  start : float;  (** absolute simulation time of the first packet *)
  duration : float;
}

(** [make_flow scenario ~src_host ~dst_host ~rate_pps ~size_bytes
    ~start ~duration] builds a flow addressed with the scenario's
    registered IPs.  @raise Invalid_argument on unknown hosts. *)
val make_flow :
  Scenario.t ->
  src_host:int ->
  dst_host:int ->
  rate_pps:float ->
  size_bytes:int ->
  start:float ->
  duration:float ->
  flow

(** [random_flows scenario rng ~count ~rate_pps ~size_bytes ~start
    ~duration] draws [count] flows between rng-picked distinct host
    pairs with starts jittered across the first tenth of [duration] —
    background data-plane load for soak campaigns.  Deterministic in
    [rng].  @raise Invalid_argument with fewer than two hosts. *)
val random_flows :
  Scenario.t ->
  Support.Rng.t ->
  count:int ->
  rate_pps:float ->
  size_bytes:int ->
  start:float ->
  duration:float ->
  flow list

type report = {
  flow : flow;
  sent : int;
  delivered : int;  (** packets that reached [dst_host] *)
}

(** [run scenario flows ~until] schedules every flow's packets,
    replaces the destination hosts' receivers with counters (the
    scenario's client agents stop receiving — use a dedicated scenario
    for traffic experiments), advances the simulation to [until] and
    reports per-flow delivery.  Flows are distinguished by a unique
    source UDP port per flow. *)
val run : Scenario.t -> flow list -> until:float -> report list

(** [goodput_kbps r] is the delivered rate over the flow duration. *)
val goodput_kbps : report -> float
