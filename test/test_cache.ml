(* Tier-1 coverage for the delta-aware reach cache.

   - Second-chance eviction: a full cache replaces stale entries one at
     a time and keeps recently-hit ones (the previous implementation
     dropped the whole table at capacity).
   - Delta invalidation: a Flow-Mod on switch [s] evicts exactly the
     entries whose reach pass traversed [s]; surviving entries still
     hit and agree with a fresh recomputation by the eager-guard
     reference verifier. *)

let check = Alcotest.check

(* ---- unit level: eviction and delta semantics on synthetic entries ---- *)

let fake_result traversed =
  {
    Rvaas.Verifier.endpoints = [];
    controller_hits = [];
    traversed;
    sample_paths = [];
    handoffs = [];
    rule_visits = 0;
  }

let key_of i =
  Rvaas.Reach_cache.key ~src_sw:i ~src_port:1 ~hs:(Rvaas.Verifier.ip_traffic_hs ())

let test_second_chance_eviction () =
  let cache = Rvaas.Reach_cache.create ~capacity:4 () in
  let snapshot = Rvaas.Snapshot.create () in
  for i = 0 to 3 do
    Rvaas.Reach_cache.add cache (key_of i) ~snapshot (fake_result [ i ])
  done;
  check Alcotest.int "at capacity" 4 (Rvaas.Reach_cache.length cache);
  (* Hit 0 and 1: they are now recently used. *)
  check Alcotest.bool "hit 0" true (Rvaas.Reach_cache.find cache (key_of 0) <> None);
  check Alcotest.bool "hit 1" true (Rvaas.Reach_cache.find cache (key_of 1) <> None);
  (* Two inserts beyond capacity must displace the un-hit entries 2 and
     3, never the recently-hit ones. *)
  Rvaas.Reach_cache.add cache (key_of 4) ~snapshot (fake_result [ 4 ]);
  Rvaas.Reach_cache.add cache (key_of 5) ~snapshot (fake_result [ 5 ]);
  check Alcotest.int "still at capacity" 4 (Rvaas.Reach_cache.length cache);
  check Alcotest.bool "recently-hit entry 0 retained" true
    (Rvaas.Reach_cache.find cache (key_of 0) <> None);
  check Alcotest.bool "recently-hit entry 1 retained" true
    (Rvaas.Reach_cache.find cache (key_of 1) <> None);
  check Alcotest.bool "stale entry displaced" true
    (Rvaas.Reach_cache.find cache (key_of 2) = None
    || Rvaas.Reach_cache.find cache (key_of 3) = None);
  let stats = Rvaas.Reach_cache.stats cache in
  check Alcotest.int "two capacity evictions" 2
    stats.Rvaas.Reach_cache.capacity_evictions

let test_delta_eviction_unit () =
  let cache = Rvaas.Reach_cache.create () in
  let snapshot = Rvaas.Snapshot.create () in
  (* Entry A traversed switches 0-1, entry B switches 2-3; the empty
     snapshot digests every switch as 0L. *)
  Rvaas.Reach_cache.add cache (key_of 0) ~snapshot (fake_result [ 0; 1 ]);
  Rvaas.Reach_cache.add cache (key_of 2) ~snapshot (fake_result [ 2; 3 ]);
  (* A confirming observation (digest unchanged) evicts nothing. *)
  Rvaas.Reach_cache.invalidate_switch cache ~sw:1 ~digest:0L;
  check Alcotest.int "unchanged digest keeps both" 2 (Rvaas.Reach_cache.length cache);
  (* A real change on switch 1 evicts exactly the entry that read it. *)
  Rvaas.Reach_cache.invalidate_switch cache ~sw:1 ~digest:42L;
  check Alcotest.int "one entry evicted" 1 (Rvaas.Reach_cache.length cache);
  check Alcotest.bool "traversing entry gone" true
    (Rvaas.Reach_cache.find cache (key_of 0) = None);
  check Alcotest.bool "independent entry kept" true
    (Rvaas.Reach_cache.find cache (key_of 2) <> None);
  let stats = Rvaas.Reach_cache.stats cache in
  check Alcotest.int "delta eviction counted" 1 stats.Rvaas.Reach_cache.delta_evictions

(* Regression: delta invalidation used to leave every evicted key in
   the second-chance ring forever — under a delta-heavy workload that
   never hits capacity the ring grew without bound (one dead key per
   add/invalidate cycle).  The purge must keep it within ~2x the live
   table across 10k cycles. *)
let test_clock_queue_bounded () =
  let cache = Rvaas.Reach_cache.create ~capacity:4096 () in
  let snapshot = Rvaas.Snapshot.create () in
  (* A few long-lived entries that never get invalidated (they traverse
     only switch 999) — the purge must preserve them. *)
  for i = 100_000 to 100_003 do
    Rvaas.Reach_cache.add cache (key_of i) ~snapshot (fake_result [ 999 ])
  done;
  for i = 0 to 9_999 do
    Rvaas.Reach_cache.add cache (key_of i) ~snapshot (fake_result [ 0 ]);
    (* The empty snapshot digests switch 0 as 0L; any other digest
       marks the entry stale and evicts it from the table. *)
    Rvaas.Reach_cache.invalidate_switch cache ~sw:0 ~digest:(Int64.of_int (i + 1))
  done;
  let live = Rvaas.Reach_cache.length cache in
  check Alcotest.int "only the long-lived entries remain" 4 live;
  check Alcotest.bool
    (Printf.sprintf "clock ring bounded (%d <= %d)"
       (Rvaas.Reach_cache.clock_length cache)
       ((2 * live) + 16))
    true
    (Rvaas.Reach_cache.clock_length cache <= (2 * live) + 16);
  let stats = Rvaas.Reach_cache.stats cache in
  check Alcotest.bool "purge actually ran" true (stats.Rvaas.Reach_cache.clock_purged > 0);
  (* Long-lived entries survived the purges. *)
  for i = 100_000 to 100_003 do
    check Alcotest.bool "long-lived entry still cached" true
      (Rvaas.Reach_cache.find cache (key_of i) <> None)
  done

(* ---- system level: Flow-Mod on one switch, queries on others ---- *)

let build topo =
  let s =
    Workload.Scenario.build
      { (Workload.Scenario.default_spec topo) with clients = 2; isolation = false }
  in
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.3);
  s

let endpoints_fingerprint (r : Rvaas.Verifier.reach_result) =
  List.map
    (fun ((ep : Rvaas.Verifier.endpoint), hs) ->
      Printf.sprintf "%d/%d/%d:%s" ep.host ep.sw ep.port
        (String.concat "+"
           (List.sort String.compare
              (List.map Hspace.Tern.to_string (Hspace.Hs.cubes hs)))))
    r.Rvaas.Verifier.endpoints

let test_delta_invalidation_end_to_end () =
  let topo = Workload.Topogen.linear Workload.Topogen.default_params 6 in
  let s = build topo in
  let cache = Rvaas.Service.reach_cache s.service in
  let stats = Rvaas.Reach_cache.stats cache in
  let points = Rvaas.Verifier.access_points (Netsim.Net.topology s.net) in
  let near = List.hd points in
  (* Scope the query to a neighbouring host's address so the reach pass
     stays local to the low end of the line. *)
  let far_host = (List.hd (List.rev points)).Rvaas.Verifier.host in
  let near_peer =
    (List.nth points 1).Rvaas.Verifier.host
  in
  let ip_of host =
    (Option.get (Sdnctl.Addressing.host s.addressing ~host)).Sdnctl.Addressing.ip
  in
  let hs_near = Rvaas.Verifier.dst_ip_hs (ip_of near_peer) in
  let r_near =
    Rvaas.Service.reach s.service ~src_sw:near.Rvaas.Verifier.sw
      ~src_port:near.Rvaas.Verifier.port ~hs:hs_near
  in
  (* A second cached entry that does traverse the far switch. *)
  let hs_far = Rvaas.Verifier.dst_ip_hs (ip_of far_host) in
  let r_far =
    Rvaas.Service.reach s.service ~src_sw:near.Rvaas.Verifier.sw
      ~src_port:near.Rvaas.Verifier.port ~hs:hs_far
  in
  (* Pick a switch the near query never consulted but the far one did:
     the Flow-Mod target. *)
  let mod_sw =
    List.find
      (fun sw -> not (List.mem sw r_near.Rvaas.Verifier.traversed))
      (List.rev r_far.Rvaas.Verifier.traversed)
  in
  let conn = Sdnctl.Provider.conn s.provider in
  let m = Ofproto.Match_.with_exact Ofproto.Match_.any Hspace.Field.Tp_src 7777 in
  Netsim.Net.send s.net conn ~sw:mod_sw
    (Ofproto.Message.Flow_mod
       (Ofproto.Message.Add_flow (Ofproto.Flow_entry.make_spec ~cookie:9 ~priority:55 m [])));
  Workload.Scenario.run s ~until:(Netsim.Sim.now (Netsim.Net.sim s.net) +. 0.2);
  check Alcotest.bool "change evicted the traversing entry" true
    (stats.Rvaas.Reach_cache.delta_evictions > 0);
  (* The untouched entry still hits... *)
  let hits0 = stats.Rvaas.Reach_cache.hits in
  let r_near' =
    Rvaas.Service.reach s.service ~src_sw:near.Rvaas.Verifier.sw
      ~src_port:near.Rvaas.Verifier.port ~hs:hs_near
  in
  check Alcotest.bool "surviving entry served from cache" true
    (stats.Rvaas.Reach_cache.hits > hits0);
  check
    Alcotest.(list string)
    "survivor unchanged" (endpoints_fingerprint r_near) (endpoints_fingerprint r_near');
  (* ...and agrees with a fresh pass of the eager-guard reference
     verifier over the believed configuration. *)
  let snapshot = Rvaas.Monitor.snapshot s.monitor in
  let flows_of sw = Rvaas.Snapshot.flows snapshot ~sw in
  let r_ref =
    Rvaas.Verifier_ref.reach ~flows_of (Netsim.Net.topology s.net)
      ~src_sw:near.Rvaas.Verifier.sw ~src_port:near.Rvaas.Verifier.port ~hs:hs_near
  in
  check
    Alcotest.(list string)
    "survivor matches reference recomputation" (endpoints_fingerprint r_ref)
    (endpoints_fingerprint r_near');
  (* The traversing entry was evicted: same query misses and recomputes. *)
  let misses0 = stats.Rvaas.Reach_cache.misses in
  let _ =
    Rvaas.Service.reach s.service ~src_sw:near.Rvaas.Verifier.sw
      ~src_port:near.Rvaas.Verifier.port ~hs:hs_far
  in
  check Alcotest.bool "evicted entry recomputed" true
    (stats.Rvaas.Reach_cache.misses > misses0)

let () =
  Alcotest.run "cache"
    [
      ( "reach-cache",
        [
          Alcotest.test_case "second-chance eviction" `Quick test_second_chance_eviction;
          Alcotest.test_case "delta eviction (unit)" `Quick test_delta_eviction_unit;
          Alcotest.test_case "clock queue stays bounded" `Quick test_clock_queue_bounded;
          Alcotest.test_case "delta invalidation end-to-end" `Quick
            test_delta_invalidation_end_to_end;
        ] );
    ]
